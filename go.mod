module levioso

go 1.22
