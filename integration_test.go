package levioso

// End-to-end integration smoke tests over the whole stack: LevC source ->
// compiler -> annotation pass -> out-of-order core under multiple policies ->
// experiment harness rendering. The per-package suites test each layer
// exhaustively; this file checks that the assembled product works as a whole,
// the way the README quickstart drives it.

import (
	"context"
	"strings"
	"testing"

	"levioso/internal/cpu"
	"levioso/internal/harness"
	"levioso/internal/lang"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/workloads"
)

func TestEndToEndPipeline(t *testing.T) {
	prog, err := lang.Compile("e2e.lc", `
var h[32];
func mix(x) { return (x * 2654435761) >> 9; }
func main() {
	var i;
	for (i = 0; i < 500; i = i + 1) {
		var k = mix(i) & 31;
		if (h[k] < 10) { h[k] = h[k] + 1; }
	}
	var acc = 0;
	for (i = 0; i < 32; i = i + 1) { acc = acc + h[i]; }
	print(acc);
	return acc & 255;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Hints) == 0 {
		t.Fatal("compiled program has no Levioso annotations")
	}
	want, err := ref.Run(prog, ref.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var unsafeCycles, leviosoCycles uint64
	for _, pol := range []string{"unsafe", "delay", "levioso", "levioso-ghost"} {
		c, err := cpu.New(prog, cpu.DefaultConfig(), secure.MustNew(pol))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.ExitCode != want.ExitCode || res.Output != want.Output {
			t.Errorf("%s: architectural mismatch: %d/%q vs %d/%q",
				pol, res.ExitCode, res.Output, want.ExitCode, want.Output)
		}
		switch pol {
		case "unsafe":
			unsafeCycles = res.Stats.Cycles
		case "levioso":
			leviosoCycles = res.Stats.Cycles
		}
	}
	if leviosoCycles < unsafeCycles {
		t.Errorf("levioso (%d cycles) faster than unsafe (%d)", leviosoCycles, unsafeCycles)
	}
}

func TestExperimentReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The cheap experiments end-to-end; the sweeps are covered by benches.
	for _, id := range []string{"config", "compiler"} {
		out, err := harness.RunExperiment(context.Background(), id, harness.NewRunOpts(workloads.SizeTest))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, ":") || len(out) < 100 {
			t.Errorf("%s: implausibly small report:\n%s", id, out)
		}
	}
}
