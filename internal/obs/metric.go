package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and never allocate.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: one atomic count per bucket plus
// a total count and sum. Buckets are upper bounds in ascending order with an
// implicit +Inf overflow bucket, matching the Prometheus "le" convention.
type Histogram struct {
	bounds []float64       // shared with the family; never mutated
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, safe to read and
// quantile without further synchronization. Concurrent Observes during the
// snapshot may make Count differ from the bucket total by in-flight
// observations; quantiles use the bucket total, so they are always
// internally consistent.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, ascending (no +Inf entry)
	Counts []uint64  // per-bucket counts, len(Bounds)+1; last is +Inf
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Total sums the bucket counts (the quantile population).
func (s HistSnapshot) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the covering bucket, the standard fixed-bucket estimator. Values in
// the +Inf bucket clamp to the highest finite bound; an empty histogram
// returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets is the standard wall-clock layout in seconds: 100µs to 60s,
// roughly logarithmic. Engine stages, HTTP requests and sweep cells all fit.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// SizeBuckets is the standard byte-size layout: 64 B to 16 MiB, covering
// request bodies and program images.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20}
}
