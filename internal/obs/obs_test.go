package obs

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives every metric kind from many goroutines
// at once — the whole point of the registry is that instrumented hot paths
// never take a lock beyond the first series creation, and the race detector
// (make ci) watches this test.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "shared counter")
			g := r.Gauge("hammer_level", "shared gauge")
			cv := r.CounterVec("hammer_by_worker_total", "labeled counter", "worker")
			h := r.Histogram("hammer_seconds", "shared histogram", LatencyBuckets())
			hv := r.HistogramVec("hammer_by_kind_seconds", "labeled histogram", LatencyBuckets(), "kind")
			lbl := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				cv.With(lbl).Inc()
				h.Observe(0.001 * float64(i%100))
				hv.With(lbl).Observe(0.01)
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("hammer_total", "shared counter").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hammer_level", "shared gauge").Value(); got != 0 {
		t.Fatalf("gauge drifted: %d", got)
	}
	var labeled uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		labeled += r.CounterVec("hammer_by_worker_total", "labeled counter", "worker").With(l).Value()
	}
	if labeled != workers*perWorker {
		t.Fatalf("labeled counters lost updates: %d", labeled)
	}
	s := r.Histogram("hammer_seconds", "shared histogram", LatencyBuckets()).Snapshot()
	if s.Count != workers*perWorker || s.Total() != s.Count {
		t.Fatalf("histogram count %d total %d, want %d", s.Count, s.Total(), workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("p50 %g outside first bucket", got)
	}
	if math.Abs(s.Sum-50.5) > 1e-9 {
		t.Fatalf("sum %g, want 50.5", s.Sum)
	}
	// Add 100 in (1,2]: p99 must move to the second bucket, p50 near the edge.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	s = h.Snapshot()
	if got := s.Quantile(0.99); got <= 1 || got > 2 {
		t.Fatalf("p99 %g outside second bucket", got)
	}
	// Overflow values clamp to the top finite bound.
	h.Observe(1e9)
	if got := h.Snapshot().Quantile(1.0); got != 8 {
		t.Fatalf("overflow quantile %g, want clamp to 8", got)
	}
	if empty := (HistSnapshot{}).Quantile(0.5); empty != 0 {
		t.Fatalf("empty histogram quantile %g", empty)
	}
}

// TestPromExposition pins the exact exposition text for a small registry —
// the format /metrics serves is a wire contract for scrapers.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "completed runs").Add(3)
	r.Gauge("in_flight", "live requests").Set(2)
	r.CounterVec("errs_total", "errors by kind", "kind").With("deadline").Inc()
	h := r.Histogram("dur_seconds", "durations", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP runs_total completed runs
# TYPE runs_total counter
runs_total 3
# HELP in_flight live requests
# TYPE in_flight gauge
in_flight 2
# HELP errs_total errors by kind
# TYPE errs_total counter
errs_total{kind="deadline"} 1
# HELP dur_seconds durations
# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.5"} 1
dur_seconds_bucket{le="1"} 2
dur_seconds_bucket{le="+Inf"} 3
dur_seconds_sum 6
dur_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("exposition drift:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	fams, err := ValidateProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition does not validate: %v", err)
	}
	if fams["dur_seconds"] != "histogram" || fams["runs_total"] != "counter" {
		t.Fatalf("family types wrong: %v", fams)
	}
}

func TestValidatePromRejectsGarbage(t *testing.T) {
	cases := []string{
		"not a metric line at all!",
		"# BOGUS name counter\n",
		"# TYPE name flavor\n",
		"# TYPE ok counter\nok{unterminated=\"v} 1\n",
		"# TYPE ok counter\nok nope\n",
		"orphan_sample 1\n", // no TYPE declaration
		"# TYPE ok counter\n9starts_with_digit 1\n",
	}
	for _, c := range cases {
		if _, err := ValidateProm(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Labeled samples with escapes and timestamps parse.
	good := "# TYPE ok counter\nok{a=\"x\\\"y\",b=\"z\"} 12 1700000000\n"
	if _, err := ValidateProm(strings.NewReader(good)); err != nil {
		t.Errorf("rejected %q: %v", good, err)
	}
}

func TestSpanRecordsStageHistogram(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	sp := StartSpan(ctx, "engine.simulate")
	time.Sleep(time.Millisecond)
	if d := sp.End(OutcomeOK); d <= 0 {
		t.Fatal("span measured nothing")
	}
	StartSpan(ctx, "engine.simulate").End("deadline")
	hv := r.HistogramVec("engine_stage_seconds", "engine pipeline stage duration by stage and outcome",
		LatencyBuckets(), "stage", "outcome")
	if n := hv.With("simulate", OutcomeOK).Snapshot().Count; n != 1 {
		t.Fatalf("ok series count %d", n)
	}
	if n := hv.With("simulate", "deadline").Snapshot().Count; n != 1 {
		t.Fatalf("deadline series count %d", n)
	}
	// A span on a bare context records into Default without panicking.
	StartSpan(context.Background(), "test.orphan").End(OutcomeOK)
	// Zero span is a no-op.
	var zero Span
	if zero.End(OutcomeOK) != 0 {
		t.Fatal("zero span recorded")
	}
}

func TestCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("burst_total", "cardinality bomb", "id")
	const extra = 100
	for i := 0; i < MaxSeriesPerFamily+extra; i++ {
		cv.With("id" + strconv.Itoa(i)).Inc()
	}
	f := cv.f
	f.mu.RLock()
	n := len(f.keys)
	f.mu.RUnlock()
	if n > MaxSeriesPerFamily+1 {
		t.Fatalf("family grew past the cap: %d series", n)
	}
	// Everything past the cap funnels into the single overflow series.
	if got := cv.With("overflow").Value(); got != extra {
		t.Fatalf("overflow series has %d, want %d", got, extra)
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("conflict_total", "now a gauge")
}
