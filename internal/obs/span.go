package obs

import (
	"context"
	"strings"
	"time"
)

type registryKey struct{}

// WithRegistry returns a context that carries r; spans and stage metrics
// recorded downstream land in it. Servers install their per-instance
// registry here so concurrent instances (and tests) stay isolated.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry carried by ctx, or Default when ctx is
// nil or carries none. It never returns nil, so call sites record
// unconditionally.
func FromContext(ctx context.Context) *Registry {
	if ctx != nil {
		if r, ok := ctx.Value(registryKey{}).(*Registry); ok && r != nil {
			return r
		}
	}
	return Default()
}

// Span measures one pipeline stage. It is a plain value — starting and
// ending a span performs no heap allocation beyond the metric series it
// records into (created once per (stage, outcome) pair).
//
// The stage name is "component.stage" ("engine.simulate", "harness.cell"):
// the component becomes the histogram family <component>_stage_seconds and
// the stage becomes its "stage" label, so every component's stages share one
// family and one bucket layout.
type Span struct {
	reg   *Registry
	stage string
	start time.Time
}

// StartSpan opens a span recording into ctx's registry.
func StartSpan(ctx context.Context, stage string) Span {
	return Span{reg: FromContext(ctx), stage: stage, start: time.Now()}
}

// OutcomeOK is the outcome label for a stage that completed.
const OutcomeOK = "ok"

// End closes the span, recording its duration under the given outcome label
// (OutcomeOK or a failure-kind string such as "deadline" or "divergence").
// It returns the measured duration. End on a zero Span is a no-op.
func (s Span) End(outcome string) time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	component, stage := "span", s.stage
	if i := strings.IndexByte(s.stage, '.'); i > 0 {
		component, stage = s.stage[:i], s.stage[i+1:]
	}
	s.reg.HistogramVec(component+"_stage_seconds",
		component+" pipeline stage duration by stage and outcome",
		LatencyBuckets(), "stage", "outcome").
		With(stage, outcome).Observe(d.Seconds())
	return d
}
