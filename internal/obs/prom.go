package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): families in registration order, each with its # HELP and
// # TYPE comments, series sorted by label values. Histograms render the
// cumulative _bucket{le=...} series plus _sum and _count, per convention.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	order := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, name := range order {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if err := f.writeProm(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) writeProm(w *bufio.Writer) error {
	f.mu.RLock()
	keys := append([]string(nil), f.keys...)
	f.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, key := range keys {
		f.mu.RLock()
		m := f.series[key]
		f.mu.RUnlock()
		values := splitKey(key, len(f.labels))
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values), m.(*Counter).Value())
		case kindGauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values), m.(*Gauge).Value())
		case kindHistogram:
			s := m.(*Histogram).Snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringLe(f.labels, values, le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, values), formatFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, values), cum)
		}
	}
	return nil
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\x1f", n)
}

// labelString renders {k="v",...}; empty when there are no labels.
func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringLe renders the histogram bucket label set with the trailing le.
func labelStringLe(labels, values []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		// Render integral bounds without an exponent so le="1" stays "1".
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateProm parses a Prometheus text exposition and returns the declared
// metric families (name -> type). It fails on any line that is neither a
// well-formed comment nor a well-formed sample, on samples whose family has
// no preceding # TYPE declaration, and on unparseable sample values — the
// checks the CI metrics smoke runs against a live /metrics scrape.
func ValidateProm(r io.Reader) (map[string]string, error) {
	families := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validMetricName(fields[2]) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				families[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := parseSampleName(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := families[strings.TrimSuffix(name, suf)]; ok && t == "histogram" && strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
				break
			}
		}
		if _, ok := families[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		val := strings.TrimSpace(rest)
		if i := strings.IndexByte(val, ' '); i >= 0 { // optional timestamp
			val = val[:i]
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, val, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// parseSampleName splits a sample line into its metric name and the
// remainder after the (optional) label set, validating label syntax.
func parseSampleName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = line[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", fmt.Errorf("sample %q: %w", name, err)
		}
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return "", "", fmt.Errorf("sample %q: missing value", name)
	}
	return name, rest[1:], nil
}

// scanLabels validates a {k="v",...} label block and returns its length.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validMetricName(s[start:i]) {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
