// Package obs is the repository's observability substrate: a dependency-free
// (stdlib-only) metrics registry plus a lightweight span API for per-stage
// tracing. Every layer — the engine pipeline, the levserve daemon, the sweep
// supervisor, the fuzzer — records into a Registry, and the registry renders
// itself in the Prometheus text exposition format for GET /metrics scrapes or
// end-of-run dumps.
//
// Three metric kinds cover the paper's measurement dimensions:
//
//   - Counter — a monotonically increasing atomic count (requests, retries,
//     findings). Counters only go up; rates are derived by the scraper.
//   - Gauge — an instantaneous atomic level (in-flight requests, worker
//     slots in use).
//   - Histogram — a fixed-bucket distribution with an atomic count per
//     bucket. Snapshots derive p50/p95/p99 by linear interpolation inside
//     the covering bucket; LatencyBuckets and SizeBuckets are the two
//     standard layouts.
//
// Metrics come in plain and labeled ("vec") families. Label values are
// caller-chosen strings, so families enforce a cardinality cap
// (MaxSeriesPerFamily): past the cap every new label combination collapses
// into one overflow series rather than growing without bound — a registry
// scraped by a production collector must never let a request-derived string
// mint unbounded time series. Keep label values to small closed sets (stage
// names, outcome kinds, route names); never label by program name, request
// ID, or anything user-controlled.
//
// None of this allocates on hot paths: observing into an existing series is
// a few atomic operations, and spans are plain values. Instrumentation sits
// at engine-stage granularity (one span per pipeline stage per run), never
// on the per-instruction simulator loop.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// MaxSeriesPerFamily caps the distinct label combinations one family will
// track. The combination that would exceed the cap — and every one after it —
// is folded into a single overflow series whose label values are all
// "overflow", so a label-cardinality bug degrades one family's resolution
// instead of growing the registry without bound.
const MaxSeriesPerFamily = 512

// metricKind discriminates the three families for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds an ordered set of metric families. The zero value is not
// usable; call NewRegistry. Lookups of existing series are lock-cheap
// (RWMutex read path); registration of new families or series takes the
// write lock once.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Command-line tools record here (and
// dump at exit with -metrics); servers build their own registry per instance
// so tests and multi-tenant embedding stay isolated.
func Default() *Registry { return defaultRegistry }

// family is one named metric family: a help string, a kind, a label schema,
// and the live series keyed by joined label values.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending

	mu     sync.RWMutex
	series map[string]any // label key -> *Counter | *Gauge | *Histogram
	keys   []string       // insertion order, for stable exposition
}

// labelKey joins label values with an unprintable separator; label values are
// arbitrary strings but never contain 0x1f in practice (and a collision only
// merges two series, it cannot corrupt).
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// get returns the family's series for the given label values, creating it
// with mk on first use and folding excess cardinality into the overflow
// series.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	if len(f.keys) >= MaxSeriesPerFamily {
		over := make([]string, len(f.labels))
		for i := range over {
			over[i] = "overflow"
		}
		key = labelKey(over)
		if m, ok := f.series[key]; ok {
			return m
		}
	}
	m = mk()
	f.series[key] = m
	f.keys = append(f.keys, key)
	return m
}

// register returns the named family, creating it on first use. Re-registering
// a name with a different kind or label schema is a programming error and
// panics: two call sites disagreeing about a metric's shape would silently
// split or corrupt the exposition otherwise.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{
				name: name, help: help, kind: kind,
				labels: append([]string(nil), labels...),
				series: make(map[string]any),
			}
			if kind == kindHistogram {
				f.buckets = append([]float64(nil), buckets...)
				if !sort.Float64sAreSorted(f.buckets) {
					r.mu.Unlock()
					panic("obs: histogram buckets must be ascending: " + name)
				}
			}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: %s re-registered as %s/%d labels (was %s/%d)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	return f
}

// Counter returns the registry's plain counter with the given name,
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// Gauge returns the registry's plain gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// Histogram returns the registry's plain histogram with the given name and
// bucket layout (upper bounds, ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label, in
// registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}
