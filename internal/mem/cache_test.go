package mem

import "testing"

func smallCache() *Cache {
	return NewCache(CacheConfig{Sets: 2, Ways: 2, LineBytes: 64, Latency: 2})
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) {
		t.Error("cold lookup hit")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("lookup after fill missed")
	}
	if !c.Lookup(0x1038) {
		t.Error("same line different offset missed")
	}
	if c.Lookup(0x1040) {
		t.Error("adjacent line hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 2 sets x 2 ways, 64B lines: set = (addr/64) % 2
	// Three lines mapping to set 0: 0x0, 0x80, 0x100.
	c.Fill(0x0)
	c.Fill(0x80)
	c.Lookup(0x0) // make 0x0 most recently used
	c.Fill(0x100) // evicts 0x80
	if !c.Probe(0x0) {
		t.Error("MRU line evicted")
	}
	if c.Probe(0x80) {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x100) {
		t.Error("filled line absent")
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestCacheProbeIsPure(t *testing.T) {
	c := smallCache()
	c.Fill(0x0)
	h, m := c.Stats.Hits, c.Stats.Misses
	c.Probe(0x0)
	c.Probe(0x40)
	if c.Stats.Hits != h || c.Stats.Misses != m {
		t.Error("Probe changed statistics")
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Fill(0x0)
	c.Flush(0x20) // same line
	if c.Probe(0x0) {
		t.Error("flush did not evict")
	}
	c.Flush(0x0) // already gone: no-op
	if c.Stats.Flushes != 1 {
		t.Errorf("flushes = %d", c.Stats.Flushes)
	}
}

func TestCacheDoubleFill(t *testing.T) {
	c := smallCache()
	c.Fill(0x0)
	c.Fill(0x0)
	c.Fill(0x80)
	if !c.Probe(0x0) || !c.Probe(0x80) {
		t.Error("double fill corrupted set")
	}
	if c.Stats.Evictions != 0 {
		t.Error("double fill evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig(), NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Cfg
	full := cfg.L1D.Latency + cfg.L2.Latency + cfg.MemLatency
	if lat := h.LoadLatency(0x2000); lat != full {
		t.Errorf("cold load lat = %d, want %d", lat, full)
	}
	if lat := h.LoadLatency(0x2000); lat != cfg.L1D.Latency {
		t.Errorf("warm load lat = %d, want %d", lat, cfg.L1D.Latency)
	}
	h.L1D.Flush(0x2000)
	if lat := h.LoadLatency(0x2000); lat != cfg.L1D.Latency+cfg.L2.Latency {
		t.Errorf("L2-hit load lat = %d", lat)
	}
}

func TestHierarchyInvisibleLoad(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierConfig(), NewMemory())
	cfg := h.Cfg
	full := cfg.L1D.Latency + cfg.L2.Latency + cfg.MemLatency
	// Invisible load of a cold line: full latency, and the line stays cold.
	if lat := h.InvisibleLoadLatency(0x3000); lat != full {
		t.Errorf("invisible cold lat = %d, want %d", lat, full)
	}
	if h.ProbeD(0x3000) || h.L2.Probe(0x3000) {
		t.Error("invisible load changed cache state")
	}
	// Second invisible load pays full latency again (miss amplification).
	if lat := h.InvisibleLoadLatency(0x3000); lat != full {
		t.Errorf("repeat invisible lat = %d, want %d", lat, full)
	}
	// Exposure fills without latency.
	h.FillVisible(0x3000)
	if !h.ProbeD(0x3000) {
		t.Error("FillVisible did not fill")
	}
	if lat := h.InvisibleLoadLatency(0x3000); lat != cfg.L1D.Latency {
		t.Errorf("invisible warm lat = %d", lat)
	}
}

func TestHierarchyFlushBothLevels(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierConfig(), NewMemory())
	h.LoadLatency(0x4000)
	h.Flush(0x4000)
	if h.L1D.Probe(0x4000) || h.L2.Probe(0x4000) {
		t.Error("flush left line resident")
	}
	full := h.Cfg.L1D.Latency + h.Cfg.L2.Latency + h.Cfg.MemLatency
	if lat := h.LoadLatency(0x4000); lat != full {
		t.Errorf("post-flush lat = %d, want %d", lat, full)
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierConfig(), NewMemory())
	cold := h.Cfg.L1I.Latency + h.Cfg.L2.Latency + h.Cfg.MemLatency
	if lat := h.FetchLatency(0x1000); lat != cold {
		t.Errorf("cold fetch = %d, want %d", lat, cold)
	}
	if lat := h.FetchLatency(0x1000); lat != h.Cfg.L1I.Latency {
		t.Errorf("warm fetch = %d", lat)
	}
	// I-fetch warms L2: a D-load of the same line is an L2 hit.
	h.L1D.Flush(0x1000)
	if lat := h.LoadLatency(0x1000); lat != h.Cfg.L1D.Latency+h.Cfg.L2.Latency {
		t.Errorf("load after fetch = %d", lat)
	}
}

func TestHierConfigValidate(t *testing.T) {
	bad := DefaultHierConfig()
	bad.L1D.Sets = 3
	if _, err := NewHierarchy(bad, NewMemory()); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	bad = DefaultHierConfig()
	bad.MemLatency = 0
	if _, err := NewHierarchy(bad, NewMemory()); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := smallCache()
	c.Fill(0x0)
	c.Fill(0x40)
	c.InvalidateAll()
	if c.Probe(0x0) || c.Probe(0x40) {
		t.Error("InvalidateAll left lines")
	}
}
