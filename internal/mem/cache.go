// Package mem provides the simulated physical memory and the cache hierarchy
// used by the out-of-order core. Cache state (which lines are resident) is
// the side channel every secure-speculation policy must protect: speculative
// fills perturb it by address, and the attack harness recovers secrets by
// timing probes against it.
package mem

import "fmt"

// CacheConfig describes one set-associative cache level.
type CacheConfig struct {
	Sets      int // number of sets (power of two)
	Ways      int
	LineBytes int // line size (power of two)
	Latency   int // access latency in cycles (hit cost at this level)
}

// Lines returns the total line capacity.
func (c CacheConfig) Lines() int { return c.Sets * c.Ways }

// SizeBytes returns the total data capacity.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

func (c CacheConfig) validate(name string) error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("mem: %s sets %d not a positive power of two", name, c.Sets)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s line bytes %d not a positive power of two", name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: %s ways %d invalid", name, c.Ways)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("mem: %s latency %d invalid", name, c.Latency)
	}
	return nil
}

// CacheStats counts accesses at one level.
type CacheStats struct {
	Hits, Misses, Evictions, Flushes uint64
}

// Cache is one tag-only set-associative cache level with LRU replacement.
// Data always lives in the backing Memory; the cache models presence and
// timing, which is exactly what the side channel needs.
type Cache struct {
	cfg   CacheConfig
	tags  [][]uint64 // [set][way] line address
	valid [][]bool
	used  [][]uint64 // [set][way] LRU stamp
	stamp uint64
	Stats CacheStats
}

// NewCache builds a cache; it panics on invalid geometry (configs are
// validated by Hierarchy construction first).
func NewCache(cfg CacheConfig) *Cache {
	c := &Cache{cfg: cfg}
	c.tags = make([][]uint64, cfg.Sets)
	c.valid = make([][]bool, cfg.Sets)
	c.used = make([][]uint64, cfg.Sets)
	for s := range c.tags {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.used[s] = make([]uint64, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) line(addr uint64) (set int, tag uint64) {
	l := addr / uint64(c.cfg.LineBytes)
	return int(l % uint64(c.cfg.Sets)), l
}

// Lookup reports whether addr's line is resident, updating LRU on hit but
// never filling.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.line(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.stamp++
			c.used[set][w] = c.stamp
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Probe reports residency without touching LRU or statistics (used by tests
// and the attack scorer, which must not perturb the state it observes).
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.line(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Fill inserts addr's line, evicting the LRU way if needed.
func (c *Cache) Fill(addr uint64) {
	set, tag := c.line(addr)
	// Already resident (racing fills): refresh LRU only.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.stamp++
			c.used[set][w] = c.stamp
			return
		}
	}
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.used[set][w] < c.used[set][victim] {
			victim = w
		}
	}
	if c.valid[set][victim] {
		c.Stats.Evictions++
	}
	c.valid[set][victim] = true
	c.tags[set][victim] = tag
	c.stamp++
	c.used[set][victim] = c.stamp
}

// Flush evicts addr's line if resident.
func (c *Cache) Flush(addr uint64) {
	set, tag := c.line(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.valid[set][w] = false
			c.Stats.Flushes++
			return
		}
	}
}

// InvalidateAll empties the cache (used between attack trials).
func (c *Cache) InvalidateAll() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}
