package mem

import (
	"encoding/binary"
	"fmt"

	"levioso/internal/isa"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
	// The page table covering [0, isa.MemLimit) is a two-level radix tree:
	// a fixed root of chunk pointers with 1 MiB leaf chunks allocated on
	// demand. Translation is two indexed loads — no hashing on the
	// simulator's hottest data lookup — while an empty memory costs only
	// the root array.
	numPages   = int(isa.MemLimit >> pageShift)
	chunkShift = 8 // pages per chunk: 256 pages = 1 MiB of address space
	chunkPages = 1 << chunkShift
	chunkMask  = chunkPages - 1
	numChunks  = numPages / chunkPages
)

type pageChunk [chunkPages]*[pageSize]byte

// Memory is a sparse, page-backed, little-endian byte-addressable memory.
// It bounds addresses to isa.MemLimit so a wild pointer in a guest program
// fails fast instead of allocating unbounded pages.
type Memory struct {
	chunks    [numChunks]*pageChunk
	allocated int
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{}
}

func (m *Memory) lookup(pn uint64) *[pageSize]byte {
	if pn >= uint64(numPages) {
		return nil
	}
	ch := m.chunks[pn>>chunkShift]
	if ch == nil {
		return nil
	}
	return ch[pn&chunkMask]
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	if pn >= uint64(numPages) {
		return nil // beyond MemLimit: never mapped
	}
	ch := m.chunks[pn>>chunkShift]
	if ch == nil {
		if !alloc {
			return nil
		}
		ch = new(pageChunk)
		m.chunks[pn>>chunkShift] = ch
	}
	p := ch[pn&chunkMask]
	if p == nil && alloc {
		p = new([pageSize]byte)
		ch[pn&chunkMask] = p
		m.allocated++
	}
	return p
}

func (m *Memory) check(addr uint64, size int) error {
	if addr >= isa.MemLimit || addr+uint64(size) > isa.MemLimit {
		return fmt.Errorf("memory access %#x size %d out of bounds", addr, size)
	}
	if size != 1 && addr%uint64(size) != 0 {
		return fmt.Errorf("misaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

// Read returns the little-endian value of size bytes at addr (1, 2, 4 or 8).
func (m *Memory) Read(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	// A checked access is aligned, so it never straddles a page.
	p := m.lookup(addr >> pageShift)
	if p == nil {
		return 0, nil
	}
	off := addr & pageMask
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(p[off:]), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:])), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:])), nil
	default:
		return uint64(p[off]), nil
	}
}

// Write stores the low size bytes of val at addr little-endian.
func (m *Memory) Write(addr uint64, size int, val uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	p := m.page(addr, true)
	off := addr & pageMask
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(p[off:], val)
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(val))
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(val))
	default:
		p[off] = byte(val)
	}
	return nil
}

// Load8 returns the byte at addr (zero if the page was never written or addr
// is outside simulated memory).
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores one byte at addr; stores beyond isa.MemLimit are dropped
// (checked access paths never get here — this matches Load8 reading the
// out-of-bounds region as zero).
func (m *Memory) Store8(addr uint64, b byte) {
	if p := m.page(addr, true); p != nil {
		p[addr&pageMask] = b
	}
}

// WriteBytes copies b to memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Store8(addr+uint64(i), v)
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Load8(addr + uint64(i))
	}
	return out
}

// Clone returns a deep copy of the memory (used by cosimulation to fork a
// reference machine from an initial state).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for ci, ch := range m.chunks {
		if ch == nil {
			continue
		}
		cch := new(pageChunk)
		for pi, p := range ch {
			if p == nil {
				continue
			}
			cp := new([pageSize]byte)
			*cp = *p
			cch[pi] = cp
		}
		c.chunks[ci] = cch
	}
	c.allocated = m.allocated
	return c
}

// Pages returns the number of allocated pages (test introspection).
func (m *Memory) Pages() int { return m.allocated }
