package mem

import (
	"fmt"

	"levioso/internal/isa"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, page-backed, little-endian byte-addressable memory.
// It bounds addresses to isa.MemLimit so a wild pointer in a guest program
// fails fast instead of allocating unbounded pages.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

func (m *Memory) check(addr uint64, size int) error {
	if addr >= isa.MemLimit || addr+uint64(size) > isa.MemLimit {
		return fmt.Errorf("memory access %#x size %d out of bounds", addr, size)
	}
	if size != 1 && addr%uint64(size) != 0 {
		return fmt.Errorf("misaligned %d-byte access at %#x", size, addr)
	}
	return nil
}

// Read returns the little-endian value of size bytes at addr (1, 2, 4 or 8).
func (m *Memory) Read(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.Load8(addr+uint64(i))) << (8 * i)
	}
	return v, nil
}

// Write stores the low size bytes of val at addr little-endian.
func (m *Memory) Write(addr uint64, size int, val uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		m.Store8(addr+uint64(i), byte(val>>(8*i)))
	}
	return nil
}

// Load8 returns the byte at addr (zero if the page was never written).
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores one byte at addr.
func (m *Memory) Store8(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// WriteBytes copies b to memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Store8(addr+uint64(i), v)
	}
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Load8(addr + uint64(i))
	}
	return out
}

// Clone returns a deep copy of the memory (used by cosimulation to fork a
// reference machine from an initial state).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Pages returns the number of allocated pages (test introspection).
func (m *Memory) Pages() int { return len(m.pages) }
