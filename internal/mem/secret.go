package mem

import "levioso/internal/isa"

// SecretSet answers "does this access touch secret-typed data?" for
// ProSpeCT-style policies. It combines the program's static secret ranges
// with a dynamic per-byte overlay fed by committed stores: storing a
// secret-tainted value classifies the destination bytes, storing a public
// value declassifies them (overwrite-to-declassify), exactly the
// memory-typing discipline of Daniel et al.'s ProSpeCT. Bytes never stored
// to fall back to the static ranges.
type SecretSet struct {
	ranges  []isa.SecretRange
	overlay map[uint64]bool // committed-store byte marks; overrides ranges
}

// NewSecretSet builds a set over the program's declared ranges. The slice is
// not copied; callers treat Program.Secrets as immutable after load.
func NewSecretSet(ranges []isa.SecretRange) *SecretSet {
	return &SecretSet{ranges: ranges, overlay: make(map[uint64]bool)}
}

// Secret reports whether any byte of [addr, addr+size) is secret-typed.
func (s *SecretSet) Secret(addr uint64, size int) bool {
	for i := 0; i < size; i++ {
		b := addr + uint64(i)
		if sec, ok := s.overlay[b]; ok {
			if sec {
				return true
			}
			continue
		}
		for _, r := range s.ranges {
			if r.Contains(b, 1) {
				return true
			}
		}
	}
	return false
}

// MarkStored records a committed store of size bytes at addr carrying
// secret-tainted (or public) data, updating the dynamic overlay.
func (s *SecretSet) MarkStored(addr uint64, size int, secret bool) {
	for i := 0; i < size; i++ {
		s.overlay[addr+uint64(i)] = secret
	}
}

// Reset drops the dynamic overlay, returning to the static typing.
func (s *SecretSet) Reset() {
	clear(s.overlay)
}
