package mem

import "fmt"

// HierConfig describes the full memory system.
type HierConfig struct {
	L1I, L1D, L2 CacheConfig
	MemLatency   int // DRAM access cycles beyond L2
}

// DefaultHierConfig mirrors the class of configuration used in the paper's
// gem5 setup, scaled to the suite's working sets: 32 KiB L1s, 256 KiB L2,
// ~100-cycle memory. (The paper's SPEC runs use a larger LLC against
// gigabyte-scale footprints; the ratio of footprint to capacity — which is
// what determines miss behaviour under speculation — is preserved.)
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:        CacheConfig{Sets: 64, Ways: 8, LineBytes: 64, Latency: 1},
		L1D:        CacheConfig{Sets: 64, Ways: 8, LineBytes: 64, Latency: 2},
		L2:         CacheConfig{Sets: 256, Ways: 16, LineBytes: 64, Latency: 12},
		MemLatency: 120,
	}
}

// Validate checks the configuration.
func (c HierConfig) Validate() error {
	if err := c.L1I.validate("L1I"); err != nil {
		return err
	}
	if err := c.L1D.validate("L1D"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("mem: memory latency %d invalid", c.MemLatency)
	}
	return nil
}

// Hierarchy is the two-level cache system over the physical memory.
type Hierarchy struct {
	Cfg  HierConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	Phys *Memory
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierConfig, phys *Memory) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{
		Cfg:  cfg,
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		Phys: phys,
	}, nil
}

// FetchLatency performs an instruction fetch at addr: returns the access
// latency and fills the I-side caches.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	if h.L1I.Lookup(addr) {
		return h.Cfg.L1I.Latency
	}
	lat := h.Cfg.L1I.Latency
	if h.L2.Lookup(addr) {
		lat += h.Cfg.L2.Latency
	} else {
		lat += h.Cfg.L2.Latency + h.Cfg.MemLatency
		h.L2.Fill(addr)
	}
	h.L1I.Fill(addr)
	return lat
}

// LoadLatency performs a visible data access at addr: returns the latency and
// fills the D-side caches. This is the state change Spectre observes.
func (h *Hierarchy) LoadLatency(addr uint64) int {
	if h.L1D.Lookup(addr) {
		return h.Cfg.L1D.Latency
	}
	lat := h.Cfg.L1D.Latency
	if h.L2.Lookup(addr) {
		lat += h.Cfg.L2.Latency
	} else {
		lat += h.Cfg.L2.Latency + h.Cfg.MemLatency
		h.L2.Fill(addr)
	}
	h.L1D.Fill(addr)
	return lat
}

// InvisibleLoadLatency computes the latency a load would incur right now
// WITHOUT changing any cache state — the InvisiSpec/GhostMinion-style
// invisible execution used by the `invisible` baseline policy. LRU and
// hit/miss statistics are untouched.
func (h *Hierarchy) InvisibleLoadLatency(addr uint64) int {
	if h.L1D.Probe(addr) {
		return h.Cfg.L1D.Latency
	}
	if h.L2.Probe(addr) {
		return h.Cfg.L1D.Latency + h.Cfg.L2.Latency
	}
	return h.Cfg.L1D.Latency + h.Cfg.L2.Latency + h.Cfg.MemLatency
}

// FillVisible makes addr's line resident in the D-side hierarchy without
// charging latency: the deferred "exposure" step of an invisible load once it
// becomes non-speculative, and the write-allocate step of a committed store.
func (h *Hierarchy) FillVisible(addr uint64) {
	h.L2.Fill(addr)
	h.L1D.Fill(addr)
}

// Flush evicts addr's line from the D-side hierarchy (CFLUSH semantics).
func (h *Hierarchy) Flush(addr uint64) {
	h.L1D.Flush(addr)
	h.L2.Flush(addr)
}

// ProbeD reports whether addr is resident in L1D (attack scorer helper;
// no state perturbation).
func (h *Hierarchy) ProbeD(addr uint64) bool { return h.L1D.Probe(addr) }

// HierStats snapshots the per-level access counters.
type HierStats struct {
	L1I, L1D, L2 CacheStats
}

// Stats returns the current per-level counters. Interposing wrappers (fault
// injection, instrumentation) forward this so the core's statistics stay
// attributable to the real caches.
func (h *Hierarchy) Stats() HierStats {
	return HierStats{L1I: h.L1I.Stats, L1D: h.L1D.Stats, L2: h.L2.Stats}
}
