package mem

import (
	"testing"
	"testing/quick"

	"levioso/internal/isa"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	f := func(addrRaw uint64, val uint64, sizeSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[sizeSel%4]
		addr := (addrRaw % (isa.MemLimit - 8)) &^ uint64(size-1)
		m := NewMemory()
		if err := m.Write(addr, size, val); err != nil {
			return false
		}
		got, err := m.Read(addr, size)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory()
	if err := m.Write(isa.MemLimit, 8, 1); err == nil {
		t.Error("write past MemLimit succeeded")
	}
	if _, err := m.Read(isa.MemLimit-4, 8); err == nil {
		t.Error("read straddling MemLimit succeeded")
	}
	if err := m.Write(17, 8, 1); err == nil {
		t.Error("misaligned 8-byte write succeeded")
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	v, err := m.Read(0x2000, 8)
	if err != nil || v != 0 {
		t.Errorf("fresh read = %d, %v", v, err)
	}
	if m.Pages() != 0 {
		t.Errorf("read allocated %d pages", m.Pages())
	}
}

func TestMemoryClone(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x1000, []byte{1, 2, 3})
	c := m.Clone()
	c.Store8(0x1000, 99)
	if m.Load8(0x1000) != 1 {
		t.Error("clone aliases original")
	}
	if c.Load8(0x1001) != 2 {
		t.Error("clone missing data")
	}
}
