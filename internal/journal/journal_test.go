package journal

import (
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	ID int    `json:"id"`
	S  string `json:"s"`
}

func TestAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	f, err := Open(path, func([]byte) { t.Error("load callback on empty file") })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Append(rec{ID: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3", f.Len())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var got []int
	f2, err := Open(path, func(line []byte) { got = append(got, len(line)) })
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if len(got) != 3 || f2.Len() != 3 {
		t.Errorf("reload saw %d lines, Len=%d, want 3", len(got), f2.Len())
	}
}

func TestTornTailHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	f, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Append(rec{ID: 1})
	f.Close()

	// A crash mid-append leaves a half-written record with no newline.
	h, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteString(`{"id":2,"s":"tor`)
	h.Close()

	lines := 0
	f2, err := Open(path, func([]byte) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if lines != 1 {
		t.Errorf("torn tail surfaced: %d intact lines, want 1", lines)
	}
	// The heal means the next append starts on a fresh line.
	if err := f2.Append(rec{ID: 3}); err != nil {
		t.Fatal(err)
	}
	f2.Close()

	lines = 0
	f3, err := Open(path, func([]byte) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if lines != 2 {
		t.Errorf("post-heal reload: %d intact lines, want 2", lines)
	}
}

func TestInvalidLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	os.WriteFile(path, []byte("{\"id\":1}\nnot json at all\n{\"id\":2}\n"), 0o644)
	lines := 0
	f, err := Open(path, func([]byte) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if lines != 2 {
		t.Errorf("%d valid lines surfaced, want 2", lines)
	}
}

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteAtomic(path, []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, []byte("v2\n")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2\n" {
		t.Fatalf("read back %q, %v", b, err)
	}
	// No temp droppings survive.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("directory has %d entries, want 1: %v", len(ents), ents)
	}
}
