// Package journal is the repository's crash-safe persistence primitive,
// factored out of the two places that had grown identical copies of it
// (the harness sweep journal and the fuzz session journal). It provides two
// disciplines:
//
//   - File: an append-only JSON-lines record. Each Append is a single write
//     followed by an fsync, so an interruption (crash, ^C, power loss) can
//     tear at most the final line and can lose at most the entry being
//     written — never previously recorded ones. Open replays every intact
//     line through a caller-supplied loader and heals a torn trailing line
//     so the next append starts clean instead of merging into garbage.
//
//   - WriteAtomic: whole-file replacement via temp file + fsync + rename,
//     so a reader sees either the old state or the complete new state,
//     never a torn file.
//
// Callers stay typed: harness.Journal, fuzz.Journal, and the fuzz campaign
// state are thin wrappers that own their entry schema and resume index; this
// package owns only the durability mechanics.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// maxLine bounds a single journal line. Fuzz repro entries can carry whole
// program listings in their finding details, so the bound is generous.
const maxLine = 1 << 22

// File is an open append-only JSON-lines journal. Safe for concurrent use.
type File struct {
	mu sync.Mutex
	f  *os.File
	n  int // intact lines loaded + appended
}

// Open opens (creating if absent) the journal at path and replays every
// intact recorded line through load, in file order. Lines that do not parse
// as JSON objects — a torn tail from an interrupted write, or foreign text —
// are skipped rather than poisoning the resume; the caller's loader decides
// what each line means. A torn trailing line is healed with a newline so the
// next Append starts on a fresh line (otherwise the first post-crash entry
// would merge into the garbage and be lost on the following load).
func Open(path string, load func(line []byte)) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	j := &File{f: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), maxLine)
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			continue // torn or foreign line: skipped, the caller re-runs it
		}
		j.n++
		load(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("journal: heal tail: %w", err)
			}
		}
	}
	return j, nil
}

// Append marshals v as one JSON line, writes it, and fsyncs before
// returning. The write is a single syscall, so an interruption tears at
// most this line; the fsync means a completed Append survives power loss.
func (j *File) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.n++
	return nil
}

// Len returns the number of intact lines loaded at Open plus lines appended
// since.
func (j *File) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Sync flushes to stable storage. Append already fsyncs per record; Sync is
// for callers that want an explicit durability point.
func (j *File) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *File) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// WriteAtomic replaces the file at path with data crash-safely: the bytes
// land in a temp file in the same directory, are fsynced, and are renamed
// over path. A crash at any point leaves either the previous file or the
// complete new one, never a torn mix.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
