package ref

import (
	"testing"

	"levioso/internal/isa"
)

func TestMachineStraightLine(t *testing.T) {
	p := isa.NewProgram()
	p.Text = []isa.Inst{
		{Op: isa.ADDI, Rd: isa.RegA0, Rs1: isa.RegZero, Imm: 5},
		{Op: isa.ADDI, Rd: isa.RegA1, Rs1: isa.RegA0, Imm: 3},
		{Op: isa.HALT, Rs1: isa.RegA1},
	}
	res, err := Run(p, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 8 || res.Insts != 3 {
		t.Errorf("res = %+v", res)
	}
}

func TestMachineInstLimit(t *testing.T) {
	p := isa.NewProgram()
	p.Text = []isa.Inst{
		{Op: isa.JAL, Rd: isa.RegZero, Imm: 0}, // self loop
	}
	if _, err := Run(p, Limits{MaxInsts: 100}); err == nil {
		t.Error("infinite loop did not hit instruction limit")
	}
}

func TestMachinePCOutsideText(t *testing.T) {
	p := isa.NewProgram()
	p.Text = []isa.Inst{{Op: isa.ADDI}} // falls off the end
	if _, err := Run(p, Limits{MaxInsts: 10}); err == nil {
		t.Error("run off text end did not error")
	}
}

func TestX0AlwaysZero(t *testing.T) {
	p := isa.NewProgram()
	p.Text = []isa.Inst{
		{Op: isa.ADDI, Rd: isa.RegZero, Rs1: isa.RegZero, Imm: 77},
		{Op: isa.HALT, Rs1: isa.RegZero},
	}
	res, err := Run(p, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("x0 = %d after write", res.ExitCode)
	}
}

func TestGPAndSPInitialized(t *testing.T) {
	p := isa.NewProgram()
	p.Data = []byte{42}
	p.Text = []isa.Inst{
		{Op: isa.LBU, Rd: isa.RegA0, Rs1: isa.RegGP, Imm: 0},
		// Push/pop on the stack.
		{Op: isa.ADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -8},
		{Op: isa.SD, Rs1: isa.RegSP, Rs2: isa.RegA0, Imm: 0},
		{Op: isa.LD, Rd: isa.RegA1, Rs1: isa.RegSP, Imm: 0},
		{Op: isa.HALT, Rs1: isa.RegA1},
	}
	res, err := Run(p, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", res.ExitCode)
	}
}
