// Package ref implements a functional (instruction-at-a-time) LEV64
// interpreter. It is the architectural reference model: the out-of-order core
// in internal/cpu must produce exactly the same final state and console
// output for every program, which the cosimulation tests enforce.
package ref

import (
	"fmt"
	"strconv"

	"levioso/internal/isa"
	"levioso/internal/mem"
)

// Result summarizes a completed functional run.
type Result struct {
	ExitCode uint64 // rs1 value of the HALT instruction
	Output   string // bytes written via PUTC/PUTI
	Insts    uint64 // dynamic instruction count (including the HALT)
	Regs     [isa.NumRegs]uint64
}

// Limits bounds a run.
type Limits struct {
	MaxInsts uint64 // 0 means DefaultMaxInsts
}

// DefaultMaxInsts bounds runaway programs in tests.
const DefaultMaxInsts = 200_000_000

// Machine is a functional LEV64 machine with sparse page-backed memory.
type Machine struct {
	Prog   *isa.Program
	PC     uint64
	Regs   [isa.NumRegs]uint64
	Mem    *mem.Memory
	Cycles uint64 // synthetic counter advanced by 1 per instruction; feeds RDCYCLE
	out    []byte
	halted bool
	exit   uint64
	insts  uint64
}

// New creates a machine with prog loaded and the standard register state
// (sp=StackTop, gp=DataBase, pc=entry).
func New(prog *isa.Program) *Machine {
	m := &Machine{Prog: prog, PC: prog.Entry, Mem: mem.NewMemory()}
	m.Regs[isa.RegSP] = isa.StackTop
	m.Regs[isa.RegGP] = isa.DataBase
	m.Mem.WriteBytes(isa.DataBase, prog.Data)
	return m
}

// Run executes prog to completion (HALT) and returns the result.
func Run(prog *isa.Program, lim Limits) (Result, error) {
	m := New(prog)
	max := lim.MaxInsts
	if max == 0 {
		max = DefaultMaxInsts
	}
	for !m.halted {
		if m.insts >= max {
			return Result{}, fmt.Errorf("ref: instruction limit %d exceeded at pc=%#x", max, m.PC)
		}
		if err := m.Step(); err != nil {
			return Result{}, err
		}
	}
	return Result{ExitCode: m.exit, Output: string(m.out), Insts: m.insts, Regs: m.Regs}, nil
}

// Halted reports whether the machine has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the HALT operand (valid after Halted).
func (m *Machine) ExitCode() uint64 { return m.exit }

// Output returns console output so far.
func (m *Machine) Output() string { return string(m.out) }

// Insts returns the dynamic instruction count so far.
func (m *Machine) Insts() uint64 { return m.insts }

// Step executes a single instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	in, ok := m.Prog.InstAt(m.PC)
	if !ok {
		return fmt.Errorf("ref: pc %#x outside text", m.PC)
	}
	m.insts++
	m.Cycles++
	next := m.PC + isa.InstBytes
	rs1 := m.Regs[in.Rs1]
	rs2 := m.Regs[in.Rs2]

	switch cls := in.Op.Class(); cls {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		b := rs2
		if in.Op.HasImm() {
			b = uint64(in.Imm)
		}
		m.setReg(in.Rd, isa.EvalALU(in.Op, rs1, b))
	case isa.ClassLoad:
		addr := rs1 + uint64(in.Imm)
		raw, err := m.Mem.Read(addr, in.Op.MemBytes())
		if err != nil {
			return fmt.Errorf("ref: pc %#x %v: %w", m.PC, in, err)
		}
		m.setReg(in.Rd, isa.ExtendLoad(in.Op, raw))
	case isa.ClassStore:
		addr := rs1 + uint64(in.Imm)
		if err := m.Mem.Write(addr, in.Op.MemBytes(), rs2); err != nil {
			return fmt.Errorf("ref: pc %#x %v: %w", m.PC, in, err)
		}
	case isa.ClassBranch:
		if isa.EvalBranch(in.Op, rs1, rs2) {
			next = in.BranchTarget(m.PC)
		}
	case isa.ClassJump:
		m.setReg(in.Rd, m.PC+isa.InstBytes)
		if in.Op == isa.JAL {
			next = in.BranchTarget(m.PC)
		} else {
			next = (rs1 + uint64(in.Imm)) &^ 1
		}
	case isa.ClassSystem:
		switch in.Op {
		case isa.FENCE:
			// No architectural effect.
		case isa.HALT:
			m.halted = true
			m.exit = rs1
		case isa.PUTC:
			m.out = append(m.out, byte(rs1))
		case isa.PUTI:
			m.out = strconv.AppendInt(m.out, int64(rs1), 10)
		case isa.RDCYCLE:
			m.setReg(in.Rd, m.Cycles)
		case isa.CFLUSH:
			// No architectural effect; microarchitectural only.
		default:
			return fmt.Errorf("ref: pc %#x: unimplemented system op %v", m.PC, in.Op)
		}
	}
	m.PC = next
	return nil
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}
