package lang

import (
	"strings"
	"testing"

	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
)

// run compiles src and executes it on the reference interpreter.
func run(t *testing.T, src string) ref.Result {
	t.Helper()
	prog, err := Compile("test.lc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	res, err := ref.Run(prog, ref.Limits{MaxInsts: 20_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestReturnConstant(t *testing.T) {
	res := run(t, `func main() { return 42; }`)
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-7 / 2", -3},
		{"1 << 10", 1024},
		{"-16 >> 2", -4}, // arithmetic shift
		{"0xff & 0x0f", 0x0f},
		{"0xf0 | 0x0f", 0xff},
		{"0xff ^ 0x0f", 0xf0},
		{"~0", -1},
		{"-(3 + 4)", -7},
		{"!0", 1},
		{"!5", 0},
		{"3 < 4", 1},
		{"4 < 3", 0},
		{"3 <= 3", 1},
		{"4 >= 5", 0},
		{"3 == 3", 1},
		{"3 != 3", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 7", 1},
	}
	for _, c := range cases {
		res := run(t, "func main() { return "+c.expr+"; }")
		if int64(res.ExitCode) != c.want {
			t.Errorf("%s = %d, want %d", c.expr, int64(res.ExitCode), c.want)
		}
	}
}

func TestLocalsAndLoops(t *testing.T) {
	res := run(t, `
func main() {
	var sum = 0;
	var i;
	for (i = 1; i <= 100; i = i + 1) {
		sum = sum + i;
	}
	return sum;
}`)
	if res.ExitCode != 5050 {
		t.Errorf("sum = %d", res.ExitCode)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	res := run(t, `
func main() {
	var n = 0;
	var i = 0;
	while (1) {
		i = i + 1;
		if (i > 100) { break; }
		if (i % 2 == 0) { continue; }
		n = n + i;
	}
	return n;   // sum of odd numbers 1..99 = 2500
}`)
	if res.ExitCode != 2500 {
		t.Errorf("n = %d", res.ExitCode)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	res := run(t, `
var total = 5;
var table[8];
var primes[] = {2, 3, 5, 7};

func main() {
	var i;
	for (i = 0; i < 8; i = i + 1) {
		table[i] = i * i;
	}
	total = total + table[7] + primes[3];
	return total;    // 5 + 49 + 7
}`)
	if res.ExitCode != 61 {
		t.Errorf("total = %d", res.ExitCode)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { return fib(15); }`)
	if res.ExitCode != 610 {
		t.Errorf("fib(15) = %d", res.ExitCode)
	}
}

func TestManyParams(t *testing.T) {
	res := run(t, `
func add8(a, b, c, d, e, f, g, h) {
	return a + b + c + d + e + f + g + h;
}
func main() { return add8(1, 2, 3, 4, 5, 6, 7, 8); }`)
	if res.ExitCode != 36 {
		t.Errorf("add8 = %d", res.ExitCode)
	}
}

func TestLiveAcrossCall(t *testing.T) {
	// x + f(y) forces a temporary live across the call.
	res := run(t, `
func twice(v) { return v * 2; }
func main() {
	var x = 10;
	return (x + 1) + twice(x) + (x + 2);
}`)
	if res.ExitCode != 43 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestNestedCalls(t *testing.T) {
	res := run(t, `
func inc(v) { return v + 1; }
func main() { return inc(inc(inc(0))) + inc(10); }`)
	if res.ExitCode != 14 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	res := run(t, `
var calls = 0;
func bump() { calls = calls + 1; return 1; }
func main() {
	var r = 0;
	if (0 && bump()) { r = 1; }
	if (1 || bump()) { r = r + 2; }
	return calls * 10 + r;   // bump never called: 0*10 + 2
}`)
	if res.ExitCode != 2 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestElseIfChain(t *testing.T) {
	res := run(t, `
func classify(x) {
	if (x < 10) { return 1; }
	else if (x < 100) { return 2; }
	else if (x < 1000) { return 3; }
	else { return 4; }
}
func main() {
	return classify(5)*1000 + classify(50)*100 + classify(500)*10 + classify(5000);
}`)
	if res.ExitCode != 1234 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestPrintAndPutc(t *testing.T) {
	res := run(t, `
func main() {
	print(123);
	putc('o');
	putc('k');
	putc('\n');
	return 0;
}`)
	if res.Output != "123\nok\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestScoping(t *testing.T) {
	res := run(t, `
func main() {
	var x = 1;
	{
		var x = 2;
		{
			var x = 3;
			if (x != 3) { return 100; }
		}
		if (x != 2) { return 200; }
	}
	return x;
}`)
	if res.ExitCode != 1 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestManyLocalsSpillToStack(t *testing.T) {
	// More locals than callee-saved registers: some land on the stack.
	res := run(t, `
func main() {
	var a=1; var b=2; var c=3; var d=4; var e=5; var f=6;
	var g=7; var h=8; var i=9; var j=10; var k=11; var l=12;
	var m=13; var n=14;
	return a+b+c+d+e+f+g+h+i+j+k+l+m+n;  // 105
}`)
	if res.ExitCode != 105 {
		t.Errorf("got %d", res.ExitCode)
	}
}

func TestCyclesBuiltin(t *testing.T) {
	res := run(t, `
func main() {
	var t0 = cycles();
	var i;
	var s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s + i; }
	var t1 = cycles();
	return t1 > t0;
}`)
	if res.ExitCode != 1 {
		t.Errorf("cycles not monotonic: %d", res.ExitCode)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no-main", `func f() { return 0; }`, "no main"},
		{"main-params", `func main(x) { return 0; }`, "no parameters"},
		{"undef-var", `func main() { return nope; }`, "undefined variable"},
		{"undef-func", `func main() { return nope(); }`, "undefined function"},
		{"arity", `func f(a) { return a; } func main() { return f(1, 2); }`, "takes 1 arguments"},
		{"array-no-index", `var a[4]; func main() { return a; }`, "without index"},
		{"scalar-indexed", `var s; func main() { return s[0]; }`, "not a global array"},
		{"redeclared", `func main() { var x; var x; return 0; }`, "redeclared"},
		{"redefined-func", `func f() { return 0; } func f() { return 1; } func main() { return 0; }`, "redefined"},
		{"break-outside", `func main() { break; return 0; }`, "break outside loop"},
		{"assign-to-call", `func f() { return 0; } func main() { f() = 3; return 0; }`, "assignment target"},
		{"bad-token", "func main() { return $; }", "unexpected character"},
		{"too-many-params", `func f(a,b,c,d,e,f,g,h,i) { return 0; } func main() { return 0; }`, "max 8"},
		{"unterminated", `func main() { return 0;`, "unterminated block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t.lc", c.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestHintsGeneratedForCompiledCode(t *testing.T) {
	prog, err := Compile("t.lc", `
func main() {
	var i;
	var s = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { s = s + i; }
	}
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	branches := 0
	for i, in := range prog.Text {
		if in.Op.IsBranch() {
			branches++
			if _, ok := prog.Hints[prog.PCOf(i)]; !ok {
				t.Errorf("branch at %#x lacks a hint", prog.PCOf(i))
			}
		}
	}
	if branches == 0 {
		t.Error("compiled loop produced no branches")
	}
}

// Compiled code must behave identically on the OoO core under every policy —
// the full-stack integration check.
func TestCompiledCodeOnCore(t *testing.T) {
	prog := MustCompile("t.lc", `
var table[64];
func hash(x) { return ((x * 2654435761) >> 13) & 63; }
func main() {
	var i;
	var hits = 0;
	for (i = 0; i < 300; i = i + 1) {
		table[hash(i)] = table[hash(i)] + 1;
		if (table[hash(i * 7)] > 2) { hits = hits + 1; }
	}
	return hits;
}`)
	want, err := ref.Run(prog, ref.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	c, err := cpu.New(prog, cfg, cpu.NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.ExitCode != want.ExitCode {
		t.Errorf("core exit = %d, ref = %d", got.ExitCode, want.ExitCode)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if c.ArchReg(r) != want.Regs[r] {
			t.Errorf("reg %s mismatch", r)
		}
	}
}

func TestDeepExpressionRejected(t *testing.T) {
	// Build an expression needing more than 7 live temporaries.
	expr := "1"
	for i := 0; i < 10; i++ {
		expr = "(" + expr + " + (2 * (3 + (4"
	}
	for i := 0; i < 10; i++ {
		expr = expr + "))))"
	}
	_, err := Compile("t.lc", "func main() { return "+expr+"; }")
	if err == nil {
		t.Skip("expression folded shallow enough") // acceptable either way
	}
	if !strings.Contains(err.Error(), "too complex") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConstantFolding(t *testing.T) {
	// The whole arithmetic tree folds away: no mul/div instructions remain.
	asmText, err := CompileToAsm("t.lc", `
func main() {
	return (3 * 4 + 100 / 5 - (6 % 4)) << 2;   // (12+20-2)<<2 = 120
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"mul", "div", "rem", "sll "} {
		if strings.Contains(asmText, op) {
			t.Errorf("folding left %q in:\n%s", op, asmText)
		}
	}
	res := run(t, `func main() { return (3 * 4 + 100 / 5 - (6 % 4)) << 2; }`)
	if res.ExitCode != 120 {
		t.Errorf("exit = %d, want 120", res.ExitCode)
	}
}

func TestFoldingMatchesRuntimeCornerCases(t *testing.T) {
	// Division by zero and shift masking must fold to the ISA's semantics.
	cases := []struct {
		expr string
		want int64
	}{
		{"7 / 0", -1},         // RISC-V: div by zero = -1
		{"7 % 0", 7},          // rem by zero = dividend
		{"1 << 64", 1},        // shift masked to 6 bits
		{"(0 - 16) >> 2", -4}, // arithmetic shift
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"!(3 < 2)", 1},
	}
	for _, c := range cases {
		res := run(t, "func main() { return "+c.expr+"; }")
		if int64(res.ExitCode) != c.want {
			t.Errorf("%s = %d, want %d", c.expr, int64(res.ExitCode), c.want)
		}
	}
}

func TestDeadBranchElimination(t *testing.T) {
	asmText, err := CompileToAsm("t.lc", `
var g;
func main() {
	if (1) { g = 5; } else { g = 7; }
	if (0) { g = 9; }
	while (0) { g = 11; }
	return g;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(asmText, "beq") || strings.Contains(asmText, "bne") {
		t.Errorf("dead branches survived:\n%s", asmText)
	}
	for _, dead := range []string{"li t0, 7", "li t0, 9", "li t0, 11"} {
		if strings.Contains(asmText, dead) {
			t.Errorf("dead code %q survived:\n%s", dead, asmText)
		}
	}
	res := run(t, `
var g;
func main() {
	if (1) { g = 5; } else { g = 7; }
	if (0) { g = 9; }
	return g;
}`)
	if res.ExitCode != 5 {
		t.Errorf("exit = %d, want 5", res.ExitCode)
	}
}

func TestShortCircuitConstLeft(t *testing.T) {
	// Constant left side must not suppress the right side's side effects
	// when the right side still matters.
	res := run(t, `
var n;
func bump() { n = n + 1; return n; }
func main() {
	var r = 1 && bump();   // bump must run: r = truthiness of bump()
	return r * 10 + n;     // 1*10 + 1
}`)
	if res.ExitCode != 11 {
		t.Errorf("exit = %d, want 11", res.ExitCode)
	}
	// And a false && must suppress it.
	res = run(t, `
var n;
func bump() { n = n + 1; return n; }
func main() {
	var r = 0 && bump();
	return r * 10 + n;     // 0
}`)
	if res.ExitCode != 0 {
		t.Errorf("exit = %d, want 0", res.ExitCode)
	}
}
