package lang

import "fmt"

// Recursive-descent parser with standard C precedence.

type parser struct {
	file string
	toks []token
	pos  int
}

// Parse turns LevC source into an AST.
func Parse(file, src string) (*Program, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "var"):
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at(tokKeyword, "secret"):
			p.advance()
			if !p.at(tokKeyword, "var") {
				return nil, p.errf("expected 'var' after 'secret'")
			}
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			g.Secret = true
			prog.Globals = append(prog.Globals, g)
		case p.at(tokKeyword, "func"):
			f, err := p.function()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected 'var', 'secret var' or 'func', got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) line() int  { return p.cur().line }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return t, p.errf("expected %s, got %s", want, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{File: p.file, Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

// global = "var" ident [ "[" [number] "]" ] [ "=" init ] ";"
// init   = constExpr | "{" constExpr {"," constExpr} "}"
func (p *parser) global() (*Global, error) {
	line := p.line()
	p.advance() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	g := &Global{Name: name.text, Size: -1, Line: line}
	if p.accept(tokPunct, "[") {
		if p.at(tokNumber, "") {
			g.Size = p.cur().val
			p.advance()
			if g.Size <= 0 {
				return nil, p.errf("array %q size must be positive", g.Name)
			}
		} else {
			g.Size = 0 // size from initializer
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		if p.accept(tokPunct, "{") {
			if !g.IsArray() {
				return nil, p.errf("scalar %q initialized with a list", g.Name)
			}
			for {
				v, err := p.constExpr()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, "}"); err != nil {
				return nil, err
			}
		} else {
			v, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			g.Init = []int64{v}
		}
	}
	if g.IsArray() {
		if g.Size == 0 {
			g.Size = int64(len(g.Init))
			if g.Size == 0 {
				return nil, p.errf("array %q has neither size nor initializer", g.Name)
			}
		}
		if int64(len(g.Init)) > g.Size {
			return nil, p.errf("array %q has %d initializers for %d elements", g.Name, len(g.Init), g.Size)
		}
	} else if len(g.Init) > 1 {
		return nil, p.errf("scalar %q has multiple initializers", g.Name)
	}
	_, err = p.expect(tokPunct, ";")
	return g, err
}

// constExpr = ["-"] number
func (p *parser) constExpr() (int64, error) {
	neg := p.accept(tokPunct, "-")
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.val, nil
	}
	return t.val, nil
}

// function = "func" ident "(" [ident {"," ident}] ")" block
func (p *parser) function() (*Func, error) {
	line := p.line()
	p.advance() // func
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &Func{Name: name.text, Line: line}
	if !p.at(tokPunct, ")") {
		for {
			param, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, param.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if len(f.Params) > 8 {
		return nil, p.errf("function %q has %d parameters (max 8)", f.Name, len(f.Params))
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	f.Body, err = p.block()
	return f, err
}

func (p *parser) block() (*Block, error) {
	line := p.line()
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{Line: line}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) statement() (Stmt, error) {
	line := p.line()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.accept(tokKeyword, "var"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name.text, Line: line}
		if p.accept(tokPunct, "=") {
			d.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		_, err = p.expect(tokPunct, ";")
		return d, err
	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &If{Cond: cond, Then: then, Line: line}
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				// else-if chains: wrap the nested if in a synthetic block.
				inner, err := p.statement()
				if err != nil {
					return nil, err
				}
				s.Else = &Block{Stmts: []Stmt{inner}, Line: p.line()}
			} else {
				s.Else, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return s, nil
	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: line}, nil
	case p.accept(tokKeyword, "for"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		s := &For{Line: line}
		var err error
		if !p.at(tokPunct, ";") {
			s.Init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ";") {
			s.Cond, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ")") {
			s.Post, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		s.Body, err = p.block()
		return s, err
	case p.accept(tokKeyword, "return"):
		s := &Return{Line: line}
		if !p.at(tokPunct, ";") {
			var err error
			s.Value, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		_, err := p.expect(tokPunct, ";")
		return s, err
	case p.accept(tokKeyword, "break"):
		_, err := p.expect(tokPunct, ";")
		return &Break{Line: line}, err
	case p.accept(tokKeyword, "continue"):
		_, err := p.expect(tokPunct, ";")
		return &Continue{Line: line}, err
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ";")
		return s, err
	}
}

// simpleStmt = assignment | var decl | expression (used directly by for-clauses)
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.line()
	if p.accept(tokKeyword, "var") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name.text, Line: line}
		if p.accept(tokPunct, "=") {
			d.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		switch x.(type) {
		case *Ident, *Index:
		default:
			return nil, p.errf("invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{Target: x, Value: v, Line: line}, nil
	}
	return &ExprStmt{X: x, Line: line}, nil
}

// Expression parsing: precedence climbing.
// Levels (loosest to tightest):
//
//	 1: ||
//	 2: &&
//	 3: |
//	 4: ^
//	 5: &
//	 6: == !=
//	 7: < <= > >=
//	 8: << >>
//	 9: + -
//	10: * / %
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		line := t.line
		p.advance()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.text, L: lhs, R: rhs, Line: line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &Num{Val: t.val, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ")")
		return x, err
	case t.kind == tokIdent:
		p.advance()
		id := &Ident{Name: t.text, Line: t.line}
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &Index{Base: id, Idx: idx, Line: t.line}, nil
		case p.accept(tokPunct, "("):
			call := &Call{Name: id.Name, Line: t.line}
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			_, err := p.expect(tokPunct, ")")
			return call, err
		}
		return id, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}
