package lang

// AST node types. Every node records its source line for diagnostics.

// Program is a parsed LevC source file.
type Program struct {
	Globals []*Global
	Funcs   []*Func
}

// Global is a file-scope variable or array declaration.
type Global struct {
	Name string
	// Size < 0: scalar. Size >= 0: array of Size elements (if initialized
	// with a list and no explicit size, Size == len(Init)).
	Size   int64
	Init   []int64 // constant initializers (scalar: at most one)
	Secret bool    // declared `secret var`: emitted with a .secret range
	Line   int
}

// IsArray reports whether the global is an array.
func (g *Global) IsArray() bool { return g.Size >= 0 }

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   *Block
	Line   int
}

// Statements.

// Block is a `{ ... }` statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Line  int
}

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Name string
	Init Expr // nil: zero-initialized
	Line int
}

// Assign stores Value into Target (an identifier or index expression).
type Assign struct {
	Target Expr // *Ident or *Index
	Value  Expr
	Line   int
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // nil if absent
	Line int
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body *Block
	Line int
}

// For is for(init; cond; post) body; any clause may be nil.
type For struct {
	Init Stmt // VarDecl, Assign or ExprStmt
	Cond Expr
	Post Stmt
	Body *Block
	Line int
}

// Return exits the enclosing function; Value may be nil (returns 0).
type Return struct {
	Value Expr
	Line  int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Line int }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}

// Expressions.

// Expr is any expression node.
type Expr interface{ exprNode() }

// Num is an integer literal.
type Num struct {
	Val  int64
	Line int
}

// Ident references a local, parameter or global scalar (or a global array
// when used as a call argument or index base).
type Ident struct {
	Name string
	Line int
}

// Index is base[idx] where base names a global array.
type Index struct {
	Base *Ident
	Idx  Expr
	Line int
}

// Unary is -x, !x or ~x.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operation, including short-circuit && and ||.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Call invokes a function or builtin (print, putc, cycles).
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*Num) exprNode()    {}
func (*Ident) exprNode()  {}
func (*Index) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Call) exprNode()   {}
