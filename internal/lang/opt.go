package lang

import "levioso/internal/isa"

// Constant folding and dead-branch elimination over the AST, run before code
// generation. Folding uses the ISA's own evaluation semantics (isa.EvalALU /
// isa.EvalBranch) so compile-time and run-time arithmetic can never disagree
// — including the RISC-V corner cases (division by zero yields -1, shift
// amounts are masked to 6 bits, MinInt64/-1 wraps).

// optimize rewrites the program in place.
func optimize(p *Program) {
	for _, f := range p.Funcs {
		f.Body = optBlock(f.Body)
	}
}

func optBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	var out []Stmt
	for _, s := range b.Stmts {
		if o := optStmt(s); o != nil {
			out = append(out, o)
		}
	}
	b.Stmts = out
	return b
}

// optStmt folds expressions inside s; it returns nil when the statement is
// provably dead (e.g. `if (0) {...}` with no else).
func optStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		return optBlock(s)
	case *VarDecl:
		if s.Init != nil {
			s.Init = foldExpr(s.Init)
		}
		return s
	case *Assign:
		// Fold the index of an array target but never the target itself.
		if ix, ok := s.Target.(*Index); ok {
			ix.Idx = foldExpr(ix.Idx)
		}
		s.Value = foldExpr(s.Value)
		return s
	case *If:
		s.Cond = foldExpr(s.Cond)
		s.Then = optBlock(s.Then)
		s.Else = optBlock(s.Else)
		if n, ok := s.Cond.(*Num); ok {
			// The branch direction is known at compile time.
			if n.Val != 0 {
				return s.Then
			}
			if s.Else != nil {
				return s.Else
			}
			return nil
		}
		return s
	case *While:
		s.Cond = foldExpr(s.Cond)
		s.Body = optBlock(s.Body)
		if n, ok := s.Cond.(*Num); ok && n.Val == 0 {
			return nil // while(0): dead
		}
		return s
	case *For:
		if s.Init != nil {
			s.Init = optStmt(s.Init)
		}
		if s.Cond != nil {
			s.Cond = foldExpr(s.Cond)
		}
		if s.Post != nil {
			s.Post = optStmt(s.Post)
		}
		s.Body = optBlock(s.Body)
		return s
	case *Return:
		if s.Value != nil {
			s.Value = foldExpr(s.Value)
		}
		return s
	case *ExprStmt:
		s.X = foldExpr(s.X)
		// A side-effect-free expression statement is dead.
		if _, isNum := s.X.(*Num); isNum {
			return nil
		}
		if _, isIdent := s.X.(*Ident); isIdent {
			return nil
		}
		return s
	default:
		return s
	}
}

// foldOps maps LevC arithmetic operators to the ISA op whose semantics
// define the fold.
var foldOps = map[string]isa.Op{
	"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV, "%": isa.REM,
	"&": isa.AND, "|": isa.OR, "^": isa.XOR, "<<": isa.SLL, ">>": isa.SRA,
}

var foldCmps = map[string]isa.Op{
	"<": isa.BLT, ">=": isa.BGE,
}

func foldExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Index:
		e.Idx = foldExpr(e.Idx)
		return e
	case *Call:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i])
		}
		return e
	case *Unary:
		e.X = foldExpr(e.X)
		n, ok := e.X.(*Num)
		if !ok {
			return e
		}
		switch e.Op {
		case "-":
			return &Num{Val: -n.Val, Line: e.Line}
		case "~":
			return &Num{Val: ^n.Val, Line: e.Line}
		case "!":
			if n.Val == 0 {
				return &Num{Val: 1, Line: e.Line}
			}
			return &Num{Val: 0, Line: e.Line}
		}
		return e
	case *Binary:
		e.L = foldExpr(e.L)
		// Short-circuit folding may skip evaluating R entirely.
		if e.Op == "&&" || e.Op == "||" {
			if ln, ok := e.L.(*Num); ok {
				lTrue := ln.Val != 0
				if e.Op == "&&" && !lTrue {
					return &Num{Val: 0, Line: e.Line}
				}
				if e.Op == "||" && lTrue {
					return &Num{Val: 1, Line: e.Line}
				}
				// Result is R's truthiness.
				e.R = foldExpr(e.R)
				if rn, ok := e.R.(*Num); ok {
					if rn.Val != 0 {
						return &Num{Val: 1, Line: e.Line}
					}
					return &Num{Val: 0, Line: e.Line}
				}
				// Keep `x && y` shape: truthiness conversion happens in
				// codegen via the branch lowering.
				return e
			}
			e.R = foldExpr(e.R)
			return e
		}
		e.R = foldExpr(e.R)
		ln, lok := e.L.(*Num)
		rn, rok := e.R.(*Num)
		if !lok || !rok {
			return e
		}
		a, b := uint64(ln.Val), uint64(rn.Val)
		if op, ok := foldOps[e.Op]; ok {
			return &Num{Val: int64(isa.EvalALU(op, a, b)), Line: e.Line}
		}
		var v bool
		switch e.Op {
		case "<":
			v = isa.EvalBranch(isa.BLT, a, b)
		case ">=":
			v = isa.EvalBranch(isa.BGE, a, b)
		case ">":
			v = isa.EvalBranch(isa.BLT, b, a)
		case "<=":
			v = isa.EvalBranch(isa.BGE, b, a)
		case "==":
			v = a == b
		case "!=":
			v = a != b
		default:
			return e
		}
		if v {
			return &Num{Val: 1, Line: e.Line}
		}
		return &Num{Val: 0, Line: e.Line}
	default:
		return e
	}
}
