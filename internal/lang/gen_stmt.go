package lang

import (
	"fmt"

	"levioso/internal/isa"
)

func (g *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		g.pushScope()
		for _, inner := range s.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		g.popScope()
		return nil

	case *VarDecl:
		loc, err := g.declare(s.Name, s.Line)
		if err != nil {
			return err
		}
		if s.Init != nil {
			r, err := g.expr(s.Init)
			if err != nil {
				return err
			}
			g.storeLocal(loc, r)
			g.freeTemp(r)
		} else if loc.inReg {
			g.emit("li %s, 0", loc.reg)
		} else {
			g.emit("sd zero, %s(sp)", g.slotPlaceholder(loc.slot))
		}
		return nil

	case *Assign:
		return g.assign(s)

	case *If:
		elseL := g.label()
		endL := elseL
		if s.Else != nil {
			endL = g.label()
		}
		if err := g.condBranch(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := g.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			g.emit("j %s", endL)
			g.placeLabel(elseL)
			if err := g.stmt(s.Else); err != nil {
				return err
			}
			g.placeLabel(endL)
		} else {
			g.placeLabel(elseL)
		}
		return nil

	case *While:
		startL, endL := g.label(), g.label()
		g.placeLabel(startL)
		if err := g.condBranch(s.Cond, endL, false); err != nil {
			return err
		}
		g.breakLbl = append(g.breakLbl, endL)
		g.contLbl = append(g.contLbl, startL)
		err := g.stmt(s.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.emit("j %s", startL)
		g.placeLabel(endL)
		return nil

	case *For:
		g.pushScope() // the init clause may declare a variable
		defer g.popScope()
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		startL, contL, endL := g.label(), g.label(), g.label()
		g.placeLabel(startL)
		if s.Cond != nil {
			if err := g.condBranch(s.Cond, endL, false); err != nil {
				return err
			}
		}
		g.breakLbl = append(g.breakLbl, endL)
		g.contLbl = append(g.contLbl, contL)
		err := g.stmt(s.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.placeLabel(contL)
		if s.Post != nil {
			if err := g.stmt(s.Post); err != nil {
				return err
			}
		}
		g.emit("j %s", startL)
		g.placeLabel(endL)
		return nil

	case *Return:
		if s.Value != nil {
			r, err := g.expr(s.Value)
			if err != nil {
				return err
			}
			g.emit("mv a0, %s", r)
			g.freeTemp(r)
		} else {
			g.emit("li a0, 0")
		}
		g.emit("j .L%s_ret", g.fn.Name)
		return nil

	case *Break:
		if len(g.breakLbl) == 0 {
			return g.errAt(s.Line, "break outside loop")
		}
		g.emit("j %s", g.breakLbl[len(g.breakLbl)-1])
		return nil

	case *Continue:
		if len(g.contLbl) == 0 {
			return g.errAt(s.Line, "continue outside loop")
		}
		g.emit("j %s", g.contLbl[len(g.contLbl)-1])
		return nil

	case *ExprStmt:
		r, err := g.expr(s.X)
		if err != nil {
			return err
		}
		g.freeTemp(r)
		return nil

	default:
		return fmt.Errorf("lang: unknown statement %T", s)
	}
}

func (g *codegen) assign(s *Assign) error {
	switch tgt := s.Target.(type) {
	case *Ident:
		if loc, ok := g.lookup(tgt.Name); ok {
			r, err := g.expr(s.Value)
			if err != nil {
				return err
			}
			g.storeLocal(loc, r)
			g.freeTemp(r)
			return nil
		}
		gi, ok := g.globals[tgt.Name]
		if !ok {
			return g.errAt(s.Line, "undefined variable %q", tgt.Name)
		}
		if gi.isArray {
			return g.errAt(s.Line, "array %q assigned without index", tgt.Name)
		}
		r, err := g.expr(s.Value)
		if err != nil {
			return err
		}
		g.emit("sd %s, %s", r, tgt.Name)
		g.freeTemp(r)
		return nil

	case *Index:
		gi, ok := g.globals[tgt.Base.Name]
		if !ok || !gi.isArray {
			return g.errAt(s.Line, "%q is not a global array", tgt.Base.Name)
		}
		rv, err := g.expr(s.Value)
		if err != nil {
			return err
		}
		ri, err := g.expr(tgt.Idx)
		if err != nil {
			return err
		}
		ra, err := g.allocTemp(s.Line)
		if err != nil {
			return err
		}
		g.emit("slli %s, %s, 3", ra, ri)
		g.freeTemp(ri)
		g.emit("sd %s, %s(%s)", rv, tgt.Base.Name, ra)
		g.freeTemp(ra)
		g.freeTemp(rv)
		return nil

	default:
		return g.errAt(s.Line, "invalid assignment target")
	}
}

// storeLocal moves r into a local's home location.
func (g *codegen) storeLocal(loc location, r isa.Reg) {
	if loc.inReg {
		if loc.reg != r {
			g.emit("mv %s, %s", loc.reg, r)
		}
	} else {
		g.emit("sd %s, %s(sp)", r, g.slotPlaceholder(loc.slot))
	}
}

// condBranch emits a branch to target taken when e's truth value equals
// whenTrue, short-circuiting && and || and fusing comparisons into branch
// instructions.
func (g *codegen) condBranch(e Expr, target string, whenTrue bool) error {
	switch e := e.(type) {
	case *Unary:
		if e.Op == "!" {
			return g.condBranch(e.X, target, !whenTrue)
		}
	case *Binary:
		switch e.Op {
		case "&&":
			if whenTrue {
				skip := g.label()
				if err := g.condBranch(e.L, skip, false); err != nil {
					return err
				}
				if err := g.condBranch(e.R, target, true); err != nil {
					return err
				}
				g.placeLabel(skip)
				return nil
			}
			if err := g.condBranch(e.L, target, false); err != nil {
				return err
			}
			return g.condBranch(e.R, target, false)
		case "||":
			if whenTrue {
				if err := g.condBranch(e.L, target, true); err != nil {
					return err
				}
				return g.condBranch(e.R, target, true)
			}
			skip := g.label()
			if err := g.condBranch(e.L, skip, true); err != nil {
				return err
			}
			if err := g.condBranch(e.R, target, false); err != nil {
				return err
			}
			g.placeLabel(skip)
			return nil
		case "<", "<=", ">", ">=", "==", "!=":
			r1, err := g.expr(e.L)
			if err != nil {
				return err
			}
			r2, err := g.expr(e.R)
			if err != nil {
				return err
			}
			op := e.Op
			if !whenTrue {
				op = negateCmp(op)
			}
			switch op {
			case "<":
				g.emit("blt %s, %s, %s", r1, r2, target)
			case ">=":
				g.emit("bge %s, %s, %s", r1, r2, target)
			case ">":
				g.emit("blt %s, %s, %s", r2, r1, target)
			case "<=":
				g.emit("bge %s, %s, %s", r2, r1, target)
			case "==":
				g.emit("beq %s, %s, %s", r1, r2, target)
			case "!=":
				g.emit("bne %s, %s, %s", r1, r2, target)
			}
			g.freeTemp(r1)
			g.freeTemp(r2)
			return nil
		}
	}
	// General case: evaluate to a register and branch on zero/nonzero.
	r, err := g.expr(e)
	if err != nil {
		return err
	}
	if whenTrue {
		g.emit("bnez %s, %s", r, target)
	} else {
		g.emit("beqz %s, %s", r, target)
	}
	g.freeTemp(r)
	return nil
}

func negateCmp(op string) string {
	switch op {
	case "<":
		return ">="
	case ">=":
		return "<"
	case ">":
		return "<="
	case "<=":
		return ">"
	case "==":
		return "!="
	case "!=":
		return "=="
	}
	panic("lang: not a comparison: " + op)
}
