// Package lang implements LevC, a small C-like systems language compiled to
// LEV64 assembly. It exists so the evaluation can run *compiled* workloads:
// the Levioso pass (internal/core) operates on the generated code exactly as
// the paper's LLVM pass operates on SPEC binaries.
//
// The language has one value type (64-bit signed integers), global scalars
// and arrays, functions with up to 8 parameters, the usual expression
// operators (with short-circuit && and ||), if/else, while, for, break,
// continue, and return. Builtins: print(x), putc(x), cycles().
//
//	var table[256];
//	var seed = 12345;
//
//	func hash(x) { return (x * 2654435761) >> 13; }
//
//	func main() {
//	    var i;
//	    for (i = 0; i < 100; i = i + 1) {
//	        table[hash(i) & 255] = i;
//	    }
//	    print(table[42]);
//	    return 0;
//	}
package lang

import (
	"fmt"
	"strconv"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	val  int64 // numbers
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("number %d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"var": true, "secret": true, "func": true, "if": true, "else": true,
	"while": true, "for": true, "return": true,
	"break": true, "continue": true,
}

// twoCharPunct lists the two-character operators, longest-match-first.
var twoCharPunct = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
}

// Error is a LevC front-end error with position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type lexer struct {
	file string
	src  string
	pos  int
	line int
	toks []token
}

func lex(file, src string) ([]token, error) {
	l := &lexer{file: file, src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &Error{File: l.file, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			goto content
		}
	}
content:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case isDigit(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(text, 0, 64)
			if uerr != nil {
				return token{}, l.errf("bad number %q", text)
			}
			v = int64(u)
		}
		return token{kind: tokNumber, text: text, val: v, line: l.line}, nil
	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated character literal")
		}
		var v int64
		if l.src[l.pos] == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated character literal")
			}
			switch l.src[l.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case 'r':
				v = '\r'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return token{}, l.errf("unknown escape \\%c", l.src[l.pos])
			}
		} else {
			v = int64(l.src[l.pos])
		}
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, l.errf("unterminated character literal")
		}
		l.pos++
		return token{kind: tokNumber, text: "'" + string(byte(v)) + "'", val: v, line: l.line}, nil
	default:
		for _, p := range twoCharPunct {
			if l.pos+2 <= len(l.src) && l.src[l.pos:l.pos+2] == p {
				l.pos += 2
				return token{kind: tokPunct, text: p, line: l.line}, nil
			}
		}
		if oneCharPunct(c) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", string(c))
	}
}

func oneCharPunct(c byte) bool {
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!',
		'<', '>', '=', '(', ')', '{', '}', '[', ']', ',', ';':
		return true
	}
	return false
}

func isAlpha(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}
func isDigit(c byte) bool { return '0' <= c && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
