package lang

import "levioso/internal/isa"

// expr generates code computing e and returns the register holding the
// result. The register is either a pool temporary (the caller frees it with
// freeTemp) or a callee-saved register holding a live local (freeTemp is a
// no-op for those; callers must never write through the returned register).
func (g *codegen) expr(e Expr) (isa.Reg, error) {
	switch e := e.(type) {
	case *Num:
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		g.emit("li %s, %d", rd, e.Val)
		return rd, nil

	case *Ident:
		if loc, ok := g.lookup(e.Name); ok {
			if loc.inReg {
				return loc.reg, nil
			}
			rd, err := g.allocTemp(e.Line)
			if err != nil {
				return 0, err
			}
			g.emit("ld %s, %s(sp)", rd, g.slotPlaceholder(loc.slot))
			return rd, nil
		}
		gi, ok := g.globals[e.Name]
		if !ok {
			return 0, g.errAt(e.Line, "undefined variable %q", e.Name)
		}
		if gi.isArray {
			return 0, g.errAt(e.Line, "array %q used without index", e.Name)
		}
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		g.emit("ld %s, %s", rd, e.Name)
		return rd, nil

	case *Index:
		gi, ok := g.globals[e.Base.Name]
		if !ok || !gi.isArray {
			return 0, g.errAt(e.Line, "%q is not a global array", e.Base.Name)
		}
		ri, err := g.expr(e.Idx)
		if err != nil {
			return 0, err
		}
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		g.emit("slli %s, %s, 3", rd, ri)
		g.freeTemp(ri)
		g.emit("ld %s, %s(%s)", rd, e.Base.Name, rd)
		return rd, nil

	case *Unary:
		r, err := g.expr(e.X)
		if err != nil {
			return 0, err
		}
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "-":
			g.emit("neg %s, %s", rd, r)
		case "~":
			g.emit("not %s, %s", rd, r)
		case "!":
			g.emit("seqz %s, %s", rd, r)
		default:
			return 0, g.errAt(e.Line, "unknown unary operator %q", e.Op)
		}
		g.freeTemp(r)
		return rd, nil

	case *Binary:
		return g.binaryExpr(e)

	case *Call:
		return g.call(e)

	default:
		return 0, g.errAt(0, "unknown expression %T", e)
	}
}

var arithInst = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
	"&": "and", "|": "or", "^": "xor", "<<": "sll",
	// >> is arithmetic: LevC integers are signed.
	">>": "sra",
}

func (g *codegen) binaryExpr(e *Binary) (isa.Reg, error) {
	// Short-circuit operators materialize a 0/1 value via branches.
	if e.Op == "&&" || e.Op == "||" {
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		falseL, endL := g.label(), g.label()
		if err := g.condBranch(e, falseL, false); err != nil {
			return 0, err
		}
		g.emit("li %s, 1", rd)
		g.emit("j %s", endL)
		g.placeLabel(falseL)
		g.emit("li %s, 0", rd)
		g.placeLabel(endL)
		return rd, nil
	}

	r1, err := g.expr(e.L)
	if err != nil {
		return 0, err
	}
	r2, err := g.expr(e.R)
	if err != nil {
		return 0, err
	}
	rd, err := g.allocTemp(e.Line)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case "<":
		g.emit("slt %s, %s, %s", rd, r1, r2)
	case ">":
		g.emit("slt %s, %s, %s", rd, r2, r1)
	case "<=":
		g.emit("slt %s, %s, %s", rd, r2, r1)
		g.emit("xori %s, %s, 1", rd, rd)
	case ">=":
		g.emit("slt %s, %s, %s", rd, r1, r2)
		g.emit("xori %s, %s, 1", rd, rd)
	case "==":
		g.emit("xor %s, %s, %s", rd, r1, r2)
		g.emit("seqz %s, %s", rd, rd)
	case "!=":
		g.emit("xor %s, %s, %s", rd, r1, r2)
		g.emit("snez %s, %s", rd, rd)
	default:
		inst, ok := arithInst[e.Op]
		if !ok {
			return 0, g.errAt(e.Line, "unknown operator %q", e.Op)
		}
		g.emit("%s %s, %s, %s", inst, rd, r1, r2)
	}
	g.freeTemp(r1)
	g.freeTemp(r2)
	return rd, nil
}

func (g *codegen) call(e *Call) (isa.Reg, error) {
	// Builtins.
	switch e.Name {
	case "print", "putc":
		if len(e.Args) != 1 {
			return 0, g.errAt(e.Line, "%s takes one argument", e.Name)
		}
		r, err := g.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		if e.Name == "print" {
			g.emit("puti %s", r)
			g.freeTemp(r)
			nl, err := g.allocTemp(e.Line)
			if err != nil {
				return 0, err
			}
			g.emit("li %s, '\\n'", nl)
			g.emit("putc %s", nl)
			// Reuse the newline temp as the (zero) result.
			g.emit("li %s, 0", nl)
			return nl, nil
		}
		g.emit("putc %s", r)
		return r, nil
	case "cycles":
		if len(e.Args) != 0 {
			return 0, g.errAt(e.Line, "cycles takes no arguments")
		}
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		g.emit("rdcycle %s", rd)
		return rd, nil
	}

	arity, ok := g.funcs[e.Name]
	if !ok {
		return 0, g.errAt(e.Line, "undefined function %q", e.Name)
	}
	if len(e.Args) != arity {
		return 0, g.errAt(e.Line, "%s takes %d arguments, got %d", e.Name, arity, len(e.Args))
	}

	// Fast path: enough free temporaries to hold every argument at once.
	free := 0
	for _, used := range g.tempInUse {
		if !used {
			free++
		}
	}
	if len(e.Args) <= free {
		args := make([]isa.Reg, len(e.Args))
		for i, a := range e.Args {
			r, err := g.expr(a)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		// Save the caller-saved temporaries that stay live across the call:
		// every in-use pool register that is not an argument home.
		isArg := map[isa.Reg]bool{}
		for _, r := range args {
			isArg[r] = true
		}
		var save []isa.Reg
		for _, r := range g.liveTemps() {
			if !isArg[r] {
				save = append(save, r)
			}
		}
		g.pushRegs(save)
		for i, r := range args {
			g.emit("mv %s, %s", isa.RegA0+isa.Reg(i), r)
			g.freeTemp(r)
		}
		g.emit("call %s", e.Name)
		rd, err := g.allocTemp(e.Line)
		if err != nil {
			return 0, err
		}
		g.emit("mv %s, %s", rd, isa.RegA0)
		g.popRegs(save)
		return rd, nil
	}

	// Spill path: evaluate each argument into a stack staging area, then
	// reload into the argument registers. Needed when arguments outnumber
	// the free temporaries (e.g. 8-argument calls in deep expressions).
	n := len(e.Args)
	g.emit("addi sp, sp, -%d", 8*n)
	g.spDisp += 8 * n
	for i, a := range e.Args {
		r, err := g.expr(a)
		if err != nil {
			return 0, err
		}
		g.emit("sd %s, %d(sp)", r, 8*i)
		g.freeTemp(r)
	}
	save := g.liveTemps()
	g.pushRegs(save)
	for i := range e.Args {
		g.emit("ld %s, %d(sp)", isa.RegA0+isa.Reg(i), 8*len(save)+8*i)
	}
	g.emit("call %s", e.Name)
	rd, err := g.allocTemp(e.Line)
	if err != nil {
		return 0, err
	}
	g.emit("mv %s, %s", rd, isa.RegA0)
	g.popRegs(save)
	g.emit("addi sp, sp, %d", 8*n)
	g.spDisp -= 8 * n
	return rd, nil
}
