package attack

// The attack programs, in LEV64 assembly. %SECRET% is substituted with the
// secret byte value before assembly. Shared conventions:
//
//   - probebuf is the 256-line flush+reload oracle (64 bytes per line).
//   - probe_best times a load from each line (fence/rdcycle bracketed) and
//     returns the index of the uniquely fastest one, or 0 if none stands out.
//   - flush_probe evicts the whole oracle.
//
// The victims never architecturally transmit the secret: ref-interpreter runs
// of these programs print a guess that cannot equal the secret (the reference
// model has no cache), which the tests use as a sanity check.

// Common tail: oracle flush + timing probe, shared by both attacks.
const probeTail = `
# --- flush_probe: evict every oracle line ---------------------------------
flush_probe:
	la t0, probebuf
	li t1, 0
fp_loop:
	slli t2, t1, 6
	add t3, t0, t2
	cflush 0(t3)
	addi t1, t1, 1
	li t4, 256
	blt t1, t4, fp_loop
	fence
	ret

# --- probe_best: flush+reload receiver ------------------------------------
# Returns a0 = index of the fastest oracle line (the leaked byte), or 0 when
# every line misses (nothing was leaked). s-registers used freely: called
# only from main's top level.
probe_best:
	la s1, probebuf
	li s2, 0              # candidate index
	li s3, 99999999       # best latency
	li s4, 0              # best index
pb_loop:
	slli t0, s2, 6
	add t1, s1, t0
	fence
	rdcycle s5
	lbu t2, 0(t1)
	add t6, t2, zero      # consume the value
	fence
	rdcycle s6
	sub t3, s6, s5
	bge t3, s3, pb_skip
	mv s3, t3
	mv s4, s2
pb_skip:
	addi s2, s2, 1
	li t4, 256
	blt s2, t4, pb_loop
	# Reject a "fastest" line that is not actually fast (threshold: an L2
	# hit costs ~14 cycles; an L1 hit ~2): if best latency exceeds the
	# threshold the probe saw only misses and the guess is noise.
	li t5, 12
	blt s3, t5, pb_have
	li s4, 0
pb_have:
	mv a0, s4
	ret
`

// secretMark declares the gadgets' secret byte as secret-typed data, so
// secret-aware (ProSpeCT-class) policies protect it. Appended to every
// standard gadget; the public V1 variant omits it to test the other half of
// the secret-typed contract (unmarked data leaks by design).
const secretMark = "\t.secret secret, 1\n"

// spectreV1PublicSrc is the bounds-check-bypass attack with its secret NOT
// declared secret-typed: identical machine code to spectreV1Src, but a
// secret-typed-coverage policy is contractually allowed (expected) to leak
// it. Against every other coverage class it behaves exactly like V1.
const spectreV1PublicSrc = `
main:
	# Victim touches its own secret once, non-transmittingly (warms the
	# line so the transient gadget's first load is fast).
	la t0, secret
	lbu t1, 0(t0)
	fence

	# Train the bounds check: 24 in-bounds calls.
	li s0, 0
train:
	andi a0, s0, 7
	call victim
	addi s0, s0, 1
	li t0, 24
	blt s0, t0, train

	# Evict the oracle and the bound (the bound miss opens the window).
	call flush_probe
	la t0, bound
	cflush 0(t0)
	fence

	# One malicious call: idx = &secret - &array1.
	la t0, secret
	la t1, array1
	sub a0, t0, t1
	call victim
	fence

	call probe_best
	puti a0
	halt a0

# --- victim: if (idx < bound) y = probebuf[array1[idx] * 64] --------------
victim:
	la t0, bound
	ld t1, 0(t0)
	bge a0, t1, v_done    # bounds check (trained not-taken)
	la t2, array1
	add t2, t2, a0
	lbu t3, 0(t2)         # reads the secret when idx is malicious
	slli t3, t3, 6
	la t4, probebuf
	add t4, t4, t3
	lbu t5, 0(t4)         # transmit: fills a secret-indexed line
v_done:
	ret
` + probeTail + `
	.data
array1:	.byte 1, 2, 3, 4, 5, 6, 7, 0
	.align 64
bound:	.quad 8
	.align 64
secret:	.byte %SECRET%
	.align 64
probebuf:
	.space 16384
`

// spectreV1Src is the bounds-check-bypass attack (sandbox threat model),
// with the secret byte declared secret-typed.
const spectreV1Src = spectreV1PublicSrc + secretMark

// spectreCTSrc is the constant-time-bypass attack (non-speculative secret).
//
// Phase A (public mode): mode=1, the "dump" path runs architecturally with a
// PUBLIC value in the dump register — this is what trains the branch.
// Phase B (secret mode): the secret is loaded into the register
// non-speculatively (no older unresolved branches — fenced), mode is cleared
// and flushed. The trained branch transiently steers execution into the dump
// path with the SECRET in the register.
const spectreCTSrc = `
main:
	# Phase A: train with public data.
	li s9, 0              # dump register: public value
	li t0, 1
	la t1, mode
	sd t0, 0(t1)          # mode = 1 (dump enabled)
	li s0, 0
ct_train:
	call victim_ct
	addi s0, s0, 1
	li t0, 24
	blt s0, t0, ct_train

	# Phase B: enter secret mode.
	la t1, mode
	sd zero, 0(t1)        # mode = 0 (dump architecturally dead)
	fence
	la t0, secret
	lbu s9, 0(t0)         # the secret: loaded NON-speculatively
	fence

	call flush_probe
	la t1, mode
	cflush 0(t1)          # the guard load will resolve late
	fence

	call victim_ct        # transient dump of the secret register
	fence

	call probe_best
	puti a0
	halt a0

# --- victim_ct: if (mode) dump(s9) ----------------------------------------
victim_ct:
	la t0, mode
	ld t1, 0(t0)          # guard (flushed in secret mode)
	beqz t1, ct_done      # trained: not taken (mode was 1)
	slli t2, s9, 6        # dump path: transmit the register
	la t3, probebuf
	add t3, t3, t2
	lbu t4, 0(t3)
ct_done:
	ret
` + probeTail + `
	.data
mode:	.quad 0
	.align 64
secret:	.byte %SECRET%
	.align 64
probebuf:
	.space 16384
` + secretMark

// spectreCTDataSrc is the data-dependence variant in the constant-time
// threat model: the secret sits in a register (loaded non-speculatively,
// untainted for STT-style tracking), a transient branch region copies it
// through plain ALU instructions — which no policy gates — and the
// transmitting load sits AFTER the reconvergence point, so it is
// control-independent of the mispredicted branch. Only tracking the *data*
// flow out of the region stops it:
//
//	unsafe        -> leaks
//	taint         -> leaks (secret is non-speculative, never tainted)
//	levioso-ctrl  -> leaks (transmitter is past the reconvergence point)
//	levioso       -> blocked (region write set seeds the dependency mask)
//	fence/delay/invisible -> blocked (transmitter is under an unresolved branch)
const spectreCTDataSrc = `
main:
	# Phase A: train with a public value in the dump register.
	li s9, 0
	li t0, 1
	la t1, mode
	sd t0, 0(t1)
	li s0, 0
ctd_train:
	call victim_ctd
	addi s0, s0, 1
	li t0, 24
	blt s0, t0, ctd_train

	# Phase B: secret mode.
	la t1, mode
	sd zero, 0(t1)
	fence
	la t0, secret
	lbu s9, 0(t0)         # non-speculative secret load (never tainted)
	fence

	call flush_probe
	la t1, mode
	cflush 0(t1)
	fence

	call victim_ctd
	fence

	call probe_best
	puti a0
	halt a0

# --- victim_ctd: t3 = mode ? s9 : 255;  y = probebuf[t3*64] ---------------
victim_ctd:
	la t0, mode
	ld t1, 0(t0)          # guard (flushed in secret mode)
	beqz t1, ctd_else     # trained: not taken (mode was 1)
	mv t3, s9             # ALU copy inside the region: no policy gates this
	j ctd_join
ctd_else:
	li t3, 255            # architectural-path sentinel line
ctd_join:                     # reconvergence: control-independent from here
	slli t3, t3, 6
	la t4, probebuf
	add t4, t4, t3
	lbu t5, 0(t4)         # transmitter, data-dependent on the region
	ret
` + probeTail + `
	.data
mode:	.quad 0
	.align 64
secret:	.byte %SECRET%
	.align 64
probebuf:
	.space 16384
` + secretMark

// spectreV1NoProbeSrc is Spectre-V1 with the receiver removed: it halts right
// after the transient window so tests can inspect the cache model directly.
const spectreV1NoProbeSrc = `
main:
	la t0, secret
	lbu t1, 0(t0)
	fence
	li s0, 0
train:
	andi a0, s0, 7
	call victim
	addi s0, s0, 1
	li t0, 24
	blt s0, t0, train
	call flush_probe
	la t0, bound
	cflush 0(t0)
	fence
	la t0, secret
	la t1, array1
	sub a0, t0, t1
	call victim
	fence
	li a0, 0
	puti a0
	halt a0

victim:
	la t0, bound
	ld t1, 0(t0)
	bge a0, t1, v_done
	la t2, array1
	add t2, t2, a0
	lbu t3, 0(t2)
	slli t3, t3, 6
	la t4, probebuf
	add t4, t4, t3
	lbu t5, 0(t4)
v_done:
	ret

flush_probe:
	la t0, probebuf
	li t1, 0
fp_loop:
	slli t2, t1, 6
	add t3, t0, t2
	cflush 0(t3)
	addi t1, t1, 1
	li t4, 256
	blt t1, t4, fp_loop
	fence
	ret

	.data
array1:	.byte 1, 2, 3, 4, 5, 6, 7, 0
	.align 64
bound:	.quad 8
	.align 64
secret:	.byte %SECRET%
	.align 64
probebuf:
	.space 16384
` + secretMark
