package attack

import (
	"testing"

	"levioso/internal/secure"
)

// The headline security table: unsafe leaks all three attacks; every
// comprehensive defense blocks all three; sandbox-only taint tracking blocks
// the V1 variants but not CT; the ctrl-only ablation blocks the
// control-dependent gadgets but leaks the data-dependence variant.
func TestSecurityMatrix(t *testing.T) {
	outcomes, err := Run([]string{"unsafe", "fence", "delay", "invisible", "taint", "levioso", "levioso-ctrl", "levioso-ghost"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		t.Logf("%-12s V1 %d/%d  CTD %d/%d  CT %d/%d", o.Policy,
			o.V1Correct, o.V1Trials, o.CTDCorrect, o.CTDTrials, o.CTCorrect, o.CTTrials)
		switch o.Policy {
		case "unsafe":
			if !o.V1Leaks() || !o.CTDLeaks() || !o.CTLeaks() {
				t.Errorf("unsafe should leak all: %+v", o)
			}
			if o.V1Correct != o.V1Trials || o.CTCorrect != o.CTTrials {
				t.Errorf("unsafe attack unreliable: %+v", o)
			}
		case "taint":
			if o.V1Leaks() {
				t.Errorf("taint should block V1 (speculative secret): %+v", o)
			}
			if !o.CTLeaks() || !o.CTDLeaks() {
				t.Errorf("taint should NOT block non-speculative-secret attacks: %+v", o)
			}
		case "levioso-ctrl":
			if o.V1Leaks() || o.CTLeaks() {
				t.Errorf("ctrl-only should still block control-dependent gadgets: %+v", o)
			}
			if !o.CTDLeaks() {
				t.Errorf("ctrl-only should LEAK the data-dependence variant (that is the ablation's point): %+v", o)
			}
		default:
			if o.V1Leaks() || o.CTDLeaks() || o.CTLeaks() {
				t.Errorf("%s should block all attacks: %+v", o.Policy, o)
			}
		}
	}
}

// Cross-check with the cache model directly: after the transient window the
// secret-indexed oracle line must be resident under unsafe and absent under
// every defense.
func TestOracleLineResidency(t *testing.T) {
	for _, pol := range secure.EvalNames() {
		resident, err := OracleLineResident(pol, 0x5a)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		want := pol == "unsafe"
		if resident != want {
			t.Errorf("%s: oracle line resident=%v, want %v", pol, resident, want)
		}
	}
}

func TestDefaultSecretsNonZero(t *testing.T) {
	for _, s := range DefaultSecrets {
		if s == 0 {
			t.Error("secret 0 is indistinguishable from a blocked probe")
		}
	}
}
