package attack

import (
	"testing"

	"levioso/internal/secure"
)

// The headline security table, judged entirely by the registry: every sweep
// configuration (every registered family, parameterized ones at every level)
// must leak exactly where its coverage contract says it leaks — no more
// (broken defense) and no less (broken attack machinery, or a defense
// over-restricting data it never promised to protect).
func TestSecurityMatrix(t *testing.T) {
	specs := secure.SweepSpecs()
	outcomes, err := Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(specs) {
		t.Fatalf("ran %d specs, got %d outcomes", len(specs), len(outcomes))
	}
	for _, o := range outcomes {
		t.Logf("%-28s V1 %d/%d  CTD %d/%d  CT %d/%d  Pub %d/%d", o.Policy,
			o.V1Correct, o.V1Trials, o.CTDCorrect, o.CTDTrials,
			o.CTCorrect, o.CTTrials, o.PubCorrect, o.PubTrials)
		want, err := ExpectedLeaks(o.Policy)
		if err != nil {
			t.Fatalf("%s: %v", o.Policy, err)
		}
		if got := o.Leaks(); got != want {
			t.Errorf("%s: leak matrix %+v, want %+v", o.Policy, got, want)
		}
	}
}

// Where the contract says "leaks", the attack must be reliable, not marginal:
// unsafe recovers every secret on every gadget.
func TestUnsafeAttacksReliable(t *testing.T) {
	outcomes, err := Run([]string{"unsafe"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomes[0]
	if o.V1Correct != o.V1Trials || o.CTCorrect != o.CTTrials ||
		o.CTDCorrect != o.CTDTrials || o.PubCorrect != o.PubTrials {
		t.Errorf("unsafe attack unreliable: %+v", o)
	}
}

// Cross-check with the cache model directly: after the transient window the
// secret-indexed oracle line must be resident exactly for the policies whose
// contract leaks V1 (the no-probe gadget's secret is declared, so prospect
// blocks it too).
func TestOracleLineResidency(t *testing.T) {
	for _, pol := range secure.EvalNames() {
		resident, err := OracleLineResident(pol, 0x5a)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		exp, err := ExpectedLeaks(pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if resident != exp.V1 {
			t.Errorf("%s: oracle line resident=%v, want %v", pol, resident, exp.V1)
		}
	}
}

func TestDefaultSecretsNonZero(t *testing.T) {
	for _, s := range DefaultSecrets {
		if s == 0 {
			t.Error("secret 0 is indistinguishable from a blocked probe")
		}
	}
}
