// Package attack implements the security evaluation (experiment T2): two
// transient-execution attacks run inside the simulator against each policy.
//
// Spectre-V1 (sandbox threat model, speculatively-accessed secret): a victim
// bounds-checks an attacker-controlled index; the attacker trains the branch,
// flushes the bound so the check resolves late, supplies an out-of-bounds
// index reaching a secret byte, and recovers it from the data cache with a
// flush+reload probe over a 256-line oracle array.
//
// Spectre-CT (constant-time threat model, NON-speculatively loaded secret):
// the victim holds a secret in a register, loaded long before and never used
// on any architecturally-reachable transmitting path while in secret mode. A
// "dump" path — architecturally benign, only ever executed with public data —
// is reached transiently via a trained branch whose guard load is flushed,
// transmitting the register secret. This is the attack that separates
// comprehensive defenses from sandbox-only taint tracking (STT class), which
// does not taint non-speculatively loaded data.
//
// Every gadget's secret byte is declared secret-typed (`.secret`), so the
// matrix also judges secret-aware (ProSpeCT-class) defenses. A fourth trial —
// Spectre-V1 with the secret deliberately NOT declared — probes the other half
// of the secret-typed contract: unmarked data is allowed to leak, and a
// secret-typed policy that blocks it is over-restricting.
//
// All attacks use only primitives the guest ISA provides (RDCYCLE timing,
// CFLUSH eviction), exactly as a real attacker would.
package attack

import (
	"fmt"
	"strconv"
	"strings"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/secure"
)

// Outcome reports one policy's results over the four attacks.
type Outcome struct {
	Policy     string
	V1Correct  int // secrets recovered by Spectre-V1 (control-dependent gadget)
	V1Trials   int
	CTDCorrect int // secrets recovered by the CT data-dependence variant
	CTDTrials  int
	CTCorrect  int // secrets recovered by Spectre-CT (non-speculative secret)
	CTTrials   int
	PubCorrect int // secrets recovered by Spectre-V1 with an UNDECLARED secret
	PubTrials  int
}

// V1Leaks reports whether Spectre-V1 recovered a majority of secrets.
func (o Outcome) V1Leaks() bool { return o.V1Correct*2 > o.V1Trials }

// CTDLeaks reports whether the data-dependence variant recovered a majority.
func (o Outcome) CTDLeaks() bool { return o.CTDCorrect*2 > o.CTDTrials }

// CTLeaks reports whether Spectre-CT recovered a majority of secrets.
func (o Outcome) CTLeaks() bool { return o.CTCorrect*2 > o.CTTrials }

// PubLeaks reports whether the undeclared-secret V1 variant recovered a
// majority — expected true for any policy whose contract only protects
// declared secrets.
func (o Outcome) PubLeaks() bool { return o.PubCorrect*2 > o.PubTrials }

// DefaultSecrets are the byte values recovered per trial (non-zero: a fully
// blocked probe degenerates to guessing line 0).
var DefaultSecrets = []byte{0x5a, 0x91, 0x2c, 0xe7}

// Expect is one row of the attack expectation matrix: which of the four
// attacks are expected to recover the secret under a policy. Derived from
// the policy's documented coverage contract (secure.CoverageOf), it turns
// the per-policy leak behaviour the test suite asserts by hand into data the
// fuzzer's security oracle can check on every invocation — a policy that
// stops leaking where it must leak (broken attack machinery) is as much a
// finding as one that leaks where it promised coverage.
type Expect struct {
	V1     bool // Spectre-V1: control-dependent gadget, speculative secret
	CTData bool // ct-data variant: data-dependent gadget, non-speculative secret
	CT     bool // Spectre-CT: control-dependent gadget, non-speculative secret
	Pub    bool // Spectre-V1 with the secret NOT declared secret-typed
}

// ExpectedLeaks returns the expectation-matrix row for a policy (spec strings
// accepted, e.g. "tunable:level=ctrl").
func ExpectedLeaks(policy string) (Expect, error) {
	cov, err := secure.CoverageOf(policy)
	if err != nil {
		return Expect{}, err
	}
	switch cov {
	case secure.CoverageNone:
		return Expect{V1: true, CTData: true, CT: true, Pub: true}, nil
	case secure.CoverageCtrl:
		// Control dependencies only: blocks the control-dependent gadgets
		// (marked or not), leaks the data-dependent one.
		return Expect{CTData: true}, nil
	case secure.CoverageSandbox:
		// Taint tracking never taints non-speculatively loaded data, so both
		// non-speculative-secret attacks get through.
		return Expect{CTData: true, CT: true}, nil
	case secure.CoverageSecret:
		// Declared secrets never reach a transmitter (all three marked gadgets
		// blocked); undeclared data leaks by design.
		return Expect{Pub: true}, nil
	default:
		return Expect{}, nil
	}
}

// Leaks collapses an Outcome into the Expect shape for matrix comparison.
func (o Outcome) Leaks() Expect {
	return Expect{V1: o.V1Leaks(), CTData: o.CTDLeaks(), CT: o.CTLeaks(), Pub: o.PubLeaks()}
}

// Run executes all four attacks under each named policy (spec strings
// accepted).
func Run(policies []string, secrets []byte) ([]Outcome, error) {
	if len(secrets) == 0 {
		secrets = DefaultSecrets
	}
	var out []Outcome
	for _, pol := range policies {
		o := Outcome{Policy: pol}
		for _, s := range secrets {
			guess, err := runOne(spectreV1Src, pol, s)
			if err != nil {
				return nil, fmt.Errorf("attack: v1 under %s: %w", pol, err)
			}
			o.V1Trials++
			if guess == s {
				o.V1Correct++
			}
			guess, err = runOne(spectreCTDataSrc, pol, s)
			if err != nil {
				return nil, fmt.Errorf("attack: ct-data under %s: %w", pol, err)
			}
			o.CTDTrials++
			if guess == s {
				o.CTDCorrect++
			}
			guess, err = runOne(spectreCTSrc, pol, s)
			if err != nil {
				return nil, fmt.Errorf("attack: ct under %s: %w", pol, err)
			}
			o.CTTrials++
			if guess == s {
				o.CTCorrect++
			}
			guess, err = runOne(spectreV1PublicSrc, pol, s)
			if err != nil {
				return nil, fmt.Errorf("attack: v1-public under %s: %w", pol, err)
			}
			o.PubTrials++
			if guess == s {
				o.PubCorrect++
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// runOne assembles the attack with the secret embedded, runs it under the
// policy, and returns the byte the attacker's probe recovered.
func runOne(template, policy string, secret byte) (byte, error) {
	src := strings.ReplaceAll(template, "%SECRET%", fmt.Sprint(secret))
	prog, err := asm.Assemble("attack.s", src)
	if err != nil {
		return 0, err
	}
	if _, err := core.Annotate(prog); err != nil {
		return 0, err
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 20_000_000
	c, err := cpu.New(prog, cfg, secure.MustNew(policy))
	if err != nil {
		return 0, err
	}
	res, err := c.Run()
	if err != nil {
		return 0, err
	}
	guess, err := strconv.Atoi(strings.TrimSpace(res.Output))
	if err != nil {
		return 0, fmt.Errorf("unparsable attack output %q", res.Output)
	}
	if guess < 0 || guess > 255 {
		return 0, fmt.Errorf("attack guessed %d, outside byte range", guess)
	}
	return byte(guess), nil
}

// Probe helper: verify directly against the cache model that the secret's
// oracle line is (or is not) resident after the transient window — used by
// tests to distinguish "probe failed" from "no leak happened".
func OracleLineResident(policy string, secret byte) (bool, error) {
	src := strings.ReplaceAll(spectreV1NoProbeSrc, "%SECRET%", fmt.Sprint(secret))
	prog, err := asm.Assemble("attack.s", src)
	if err != nil {
		return false, err
	}
	if _, err := core.Annotate(prog); err != nil {
		return false, err
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 20_000_000
	c, err := cpu.New(prog, cfg, secure.MustNew(policy))
	if err != nil {
		return false, err
	}
	if _, err := c.Run(); err != nil {
		return false, err
	}
	addr := prog.Symbols["probebuf"] + uint64(secret)*64
	return c.Hier.ProbeD(addr), nil
}
