package workloads

// The twelve-kernel suite. Comments on each state the SPEC CPU2017 behaviour
// class the kernel stands in for and the microarchitectural behaviour that
// matters for secure-speculation overhead.

// All returns the full suite in canonical order.
func All() []Workload {
	return []Workload{
		pchase, qsort, bsearch, hashjoin, strmatch, matmul,
		stencil, ctmix, treesearch, rle, fsm, bfs,
	}
}

// pchase: serial pointer chasing with value-dependent branches — the mcf
// class. Branches depend on loaded values, so they resolve late and keep a
// long speculation shadow over the following (control-independent) loads:
// the pattern Levioso exists to free.
var pchase = Workload{
	Name:  "pchase",
	Class: "mcf-like (latency-bound pointer chase)",
	Desc:  "permutation-ring chase; loaded values feed branches",
	test:  3000, ref: 40000,
	src: `
var next[32768];
var val[32768];

func main() {
	var n = 32768;
	var i;
	for (i = 0; i < n; i = i + 1) {
		next[i] = (i + 12713) & 32767;     // ring permutation (12713 odd)
		val[i] = (i * 2654435761) >> 5;
	}
	var p = 0;
	var acc = 0;
	var steps = %N%;
	for (i = 0; i < steps; i = i + 1) {
		p = next[p];                        // serial dependent load
		var v = val[p];
		if (v & 64) {                       // value-dependent, late-resolving
			acc = acc + v;
		} else {
			acc = acc - 1;
		}
	}
	print(acc & 65535);
	return acc & 255;
}`,
}

// qsort: recursive quicksort on pseudo-random keys — the sorting/branchy
// integer class (deepsjeng/xz flavour). Partition comparisons are
// data-dependent and mispredict heavily.
var qsort = Workload{
	Name:  "qsort",
	Class: "sort/branchy integer (xz-like)",
	Desc:  "recursive quicksort of LCG keys",
	test:  256, ref: 2048,
	src: `
var a[2048];

func swap(i, j) {
	var t = a[i];
	a[i] = a[j];
	a[j] = t;
	return 0;
}

func part(lo, hi) {
	var pivot = a[hi];
	var i = lo - 1;
	var j;
	for (j = lo; j < hi; j = j + 1) {
		if (a[j] <= pivot) {
			i = i + 1;
			swap(i, j);
		}
	}
	swap(i + 1, hi);
	return i + 1;
}

func qs(lo, hi) {
	if (lo >= hi) { return 0; }
	var p = part(lo, hi);
	qs(lo, p - 1);
	qs(p + 1, hi);
	return 0;
}

func main() {
	var n = %N%;
	var s = 88172645463325252;
	var i;
	for (i = 0; i < n; i = i + 1) {
		s = s * 6364136223846793005 + 1442695040888963407;
		a[i] = (s >> 33) & 1048575;
	}
	qs(0, n - 1);
	var bad = 0;
	for (i = 1; i < n; i = i + 1) {
		if (a[i - 1] > a[i]) { bad = bad + 1; }
	}
	print(bad);
	print(a[n / 2]);
	return bad;
}`,
}

// bsearch: repeated binary search — compare branches are essentially random
// AND every subsequent load truly depends on the branch outcome. This is the
// adversarial case for Levioso (true dependencies everywhere), keeping the
// suite honest.
var bsearch = Workload{
	Name:  "bsearch",
	Class: "search/index lookup (omnetpp-like)",
	Desc:  "binary search; every load truly depends on prior branches",
	test:  400, ref: 6000,
	src: `
var a[65536];

func find(key) {
	var lo = 0;
	var hi = 65535;
	while (lo < hi) {
		var mid = (lo + hi) >> 1;
		if (a[mid] < key) { lo = mid + 1; }
		else { hi = mid; }
	}
	return lo;
}

func main() {
	var i;
	for (i = 0; i < 65536; i = i + 1) { a[i] = i * 7; }
	var s = 12345;
	var acc = 0;
	var q = %N%;
	for (i = 0; i < q; i = i + 1) {
		s = s * 1103515245 + 12345;
		var key = (s >> 16) & 524287;
		acc = acc + find(key);
	}
	print(acc & 1048575);
	return acc & 255;
}`,
}

// hashjoin: hash build + probe with linear probing — the data-base/gcc class
// (hash-heavy, moderately predictable branches, scattered loads).
var hashjoin = Workload{
	Name:  "hashjoin",
	Class: "hash/database join (gcc-like)",
	Desc:  "linear-probing hash build then probe",
	test:  500, ref: 9000,
	src: `
var keys[32768];
var vals[32768];

func hash(k) { return ((k * 2654435761) >> 9) & 32767; }

func insert(k, v) {
	var h = hash(k);
	while (keys[h] != 0) { h = (h + 1) & 32767; }
	keys[h] = k;
	vals[h] = v;
	return h;
}

func probe(k) {
	var h = hash(k);
	while (keys[h] != 0) {
		if (keys[h] == k) { return vals[h]; }
		h = (h + 1) & 32767;
	}
	return 0 - 1;
}

func main() {
	var n = %N%;
	var i;
	var s = 7;
	for (i = 0; i < n; i = i + 1) {
		s = s * 1103515245 + 12345;
		insert(((s >> 13) & 262143) + 1, i);
	}
	var hits = 0;
	var acc = 0;
	s = 7;
	for (i = 0; i < 2 * n; i = i + 1) {
		s = s * 22695477 + 1;
		var r = probe(((s >> 13) & 262143) + 1);
		if (r >= 0) { hits = hits + 1; acc = acc + r; }
	}
	print(hits);
	print(acc & 65535);
	return hits & 255;
}`,
}

// strmatch: naive substring search over a small-alphabet text — the
// text-processing class (xalancbmk/perlbench flavour): short inner loops,
// early-exit comparisons.
var strmatch = Workload{
	Name:  "strmatch",
	Class: "string/text processing (xalancbmk-like)",
	Desc:  "naive pattern search, early-exit inner loop",
	test:  2000, ref: 24000,
	src: `
var text[32768];
var pat[8];

func main() {
	var n = %N%;
	var m = 6;
	var i;
	var s = 99;
	for (i = 0; i < n; i = i + 1) {
		s = s * 6364136223846793005 + 1442695040888963407;
		text[i] = (s >> 59) & 3;          // 4-letter alphabet
	}
	for (i = 0; i < m; i = i + 1) { pat[i] = (i * 3) & 3; }
	var found = 0;
	for (i = 0; i + m <= n; i = i + 1) {
		var j = 0;
		while (j < m && text[i + j] == pat[j]) { j = j + 1; }
		if (j == m) { found = found + 1; }
	}
	print(found);
	return found & 255;
}`,
}

// matmul: dense matrix multiply — the compute-bound, perfectly-predictable
// class (x264/nab flavour). All defenses should be near-free here except the
// fence baseline.
var matmul = Workload{
	Name:  "matmul",
	Class: "dense compute (x264-like)",
	Desc:  "NxN integer matrix multiply",
	test:  12, ref: 28,
	src: `
var A[1024];
var B[1024];
var C[1024];

func main() {
	var n = %N%;
	var i;
	var j;
	var k;
	for (i = 0; i < n * n; i = i + 1) {
		A[i] = (i * 17) & 255;
		B[i] = (i * 29) & 255;
	}
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			var sum = 0;
			for (k = 0; k < n; k = k + 1) {
				sum = sum + A[i * n + k] * B[k * n + j];
			}
			C[i * n + j] = sum;
		}
	}
	var acc = 0;
	for (i = 0; i < n * n; i = i + 1) { acc = acc + C[i]; }
	print(acc);
	return acc & 255;
}`,
}

// stencil: streaming 3-point stencil — the memory-streaming class
// (lbm/fotonik flavour): long predictable loops, high MLP.
var stencil = Workload{
	Name:  "stencil",
	Class: "memory streaming (lbm-like)",
	Desc:  "1-D 3-point stencil sweeps",
	test:  1, ref: 12,
	src: `
var u[32768];

func main() {
	var n = 32768;
	var passes = %N%;
	var i;
	var p;
	for (i = 0; i < n; i = i + 1) { u[i] = (i * 31) & 1023; }
	for (p = 0; p < passes; p = p + 1) {
		for (i = 1; i < n - 1; i = i + 1) {
			u[i] = (u[i - 1] + u[i] + u[i + 1]) >> 1;
		}
	}
	var acc = 0;
	for (i = 0; i < n; i = i + 1) { acc = acc + u[i]; }
	print(acc & 1048575);
	return acc & 255;
}`,
}

// ctmix: a constant-time mixing kernel (ChaCha-flavoured ARX rounds) — the
// crypto/constant-time class the paper's non-speculative-secret threat model
// cares about: no secret-dependent branches at all.
var ctmix = Workload{
	Name:  "ctmix",
	Class: "constant-time crypto (ARX rounds)",
	Desc:  "branch-free add-rotate-xor mixing over a state array",
	test:  60, ref: 700,
	src: `
var st[16];

func rotl(x, r) {
	return ((x << r) | ((x >> (64 - r)) & ((1 << r) - 1)));
}

func main() {
	var rounds = %N%;
	var i;
	var r;
	for (i = 0; i < 16; i = i + 1) { st[i] = i * 1111111 + 7; }
	for (r = 0; r < rounds; r = r + 1) {
		for (i = 0; i < 4; i = i + 1) {
			var a = st[i];
			var b = st[i + 4];
			var c = st[i + 8];
			var d = st[i + 12];
			a = a + b; d = rotl(d ^ a, 16);
			c = c + d; b = rotl(b ^ c, 12);
			a = a + b; d = rotl(d ^ a, 8);
			c = c + d; b = rotl(b ^ c, 7);
			st[i] = a;
			st[i + 4] = b;
			st[i + 8] = c;
			st[i + 12] = d;
		}
	}
	var acc = 0;
	for (i = 0; i < 16; i = i + 1) { acc = acc ^ st[i]; }
	print(acc & 1048575);
	return acc & 255;
}`,
}

// treesearch: binary search tree insert/lookup via index arrays — the
// game-tree/pointer class (deepsjeng-like): dependent loads chained through
// unpredictable comparisons.
var treesearch = Workload{
	Name:  "treesearch",
	Class: "tree search (deepsjeng-like)",
	Desc:  "BST build + lookups through index arrays",
	test:  300, ref: 5000,
	src: `
var key[16384];
var left[16384];
var right[16384];
var nnodes = 1;

func insert(k) {
	var cur = 0;
	while (1) {
		if (k < key[cur]) {
			if (left[cur] == 0) { break; }
			cur = left[cur];
		} else {
			if (right[cur] == 0) { break; }
			cur = right[cur];
		}
	}
	var idx = nnodes;
	nnodes = nnodes + 1;
	key[idx] = k;
	if (k < key[cur]) { left[cur] = idx; } else { right[cur] = idx; }
	return idx;
}

func lookup(k) {
	var cur = 0;
	var depth = 0;
	while (cur != 0 || depth == 0) {
		depth = depth + 1;
		if (key[cur] == k) { return depth; }
		if (k < key[cur]) { cur = left[cur]; } else { cur = right[cur]; }
		if (cur == 0) { return 0 - depth; }
	}
	return 0;
}

func main() {
	var n = %N%;
	key[0] = 500000;
	var s = 31;
	var i;
	for (i = 0; i < n; i = i + 1) {
		s = s * 6364136223846793005 + 1442695040888963407;
		insert((s >> 33) & 1048575);
	}
	var acc = 0;
	s = 31;
	for (i = 0; i < 2 * n; i = i + 1) {
		s = s * 22695477 + 1;
		acc = acc + lookup((s >> 13) & 1048575);
	}
	print(acc & 1048575);
	return acc & 255;
}`,
}

// rle: run-length encoding of bursty data — the compression class
// (xz-like): run-boundary branches with data-dependent run lengths.
var rle = Workload{
	Name:  "rle",
	Class: "compression (xz-like)",
	Desc:  "run-length encode bursty pseudo-random data",
	test:  3000, ref: 40000,
	src: `
var data[65536];
var out[65536];

func main() {
	var n = %N%;
	var i = 0;
	var s = 5;
	// Bursty input: runs of length 1..16.
	var pos = 0;
	while (pos < n) {
		s = s * 6364136223846793005 + 1442695040888963407;
		var runlen = ((s >> 40) & 15) + 1;
		var sym = (s >> 59) & 7;
		var j;
		for (j = 0; j < runlen && pos < n; j = j + 1) {
			data[pos] = sym;
			pos = pos + 1;
		}
	}
	var o = 0;
	i = 0;
	while (i < n) {
		var sym = data[i];
		var cnt = 1;
		while (i + cnt < n && data[i + cnt] == sym) { cnt = cnt + 1; }
		out[o] = sym;
		out[o + 1] = cnt;
		o = o + 2;
		i = i + cnt;
	}
	print(o);
	return o & 255;
}`,
}

// fsm: a table-driven finite state machine over pseudo-random input — the
// interpreter/lexer class (perlbench-like): every iteration's load address
// depends on the previous state (true data dependence through loads).
var fsm = Workload{
	Name:  "fsm",
	Class: "interpreter/FSM (perlbench-like)",
	Desc:  "table-driven DFA; state chained through loads",
	test:  4000, ref: 60000,
	src: `
var trans[256];
var counts[32];

func main() {
	var nstates = 32;
	var nsyms = 8;
	var i;
	for (i = 0; i < 256; i = i + 1) {
		trans[i] = (i * 2654435761 >> 11) & 31;
	}
	var state = 0;
	var s = 17;
	var n = %N%;
	for (i = 0; i < n; i = i + 1) {
		s = s * 1103515245 + 12345;
		var sym = (s >> 16) & 7;
		state = trans[state * 8 + sym];
		counts[state] = counts[state] + 1;
	}
	var acc = 0;
	for (i = 0; i < nstates; i = i + 1) { acc = acc + counts[i] * i; }
	print(acc);
	return acc & 255;
}`,
}

// bfs: breadth-first search over a synthetic graph — the graph-analytics
// class (irregular gathers, visited-set branches).
var bfs = Workload{
	Name:  "bfs",
	Class: "graph traversal (irregular gathers)",
	Desc:  "BFS over a ring+chords graph with an explicit queue",
	test:  600, ref: 16384,
	src: `
var adj[65536];
var visited[16384];
var queue[16384];

func main() {
	var n = %N%;
	var deg = 4;
	var i;
	var j;
	for (i = 0; i < n; i = i + 1) {
		adj[i * 4]     = (i + 1) % n;
		adj[i * 4 + 1] = (i + n - 1) % n;
		adj[i * 4 + 2] = (i * 2654435761 >> 7) % n;
		adj[i * 4 + 3] = (i * 40503 >> 3) % n;
	}
	var head = 0;
	var tail = 0;
	queue[tail] = 0;
	tail = tail + 1;
	visited[0] = 1;
	var reached = 1;
	var sumdist = 0;
	while (head < tail) {
		var u = queue[head];
		head = head + 1;
		var d = visited[u];
		for (j = 0; j < deg; j = j + 1) {
			var v = adj[u * 4 + j];
			if (visited[v] == 0) {
				visited[v] = d + 1;
				queue[tail] = v;
				tail = tail + 1;
				reached = reached + 1;
				sumdist = sumdist + d;
			}
		}
	}
	print(reached);
	print(sumdist & 1048575);
	return reached & 255;
}`,
}
