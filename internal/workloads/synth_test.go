package workloads

import (
	"testing"

	"levioso/internal/cfg"
	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
	"levioso/internal/secure"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(DefaultSynthConfig(7))
	b := Synthesize(DefaultSynthConfig(7))
	if a.src != b.src {
		t.Error("same seed produced different programs")
	}
	c := Synthesize(DefaultSynthConfig(8))
	if a.src == c.src {
		t.Error("different seeds produced identical programs")
	}
}

// Fuzz-style cosimulation: dozens of generated programs must run identically
// on the reference interpreter and the out-of-order core, under the baseline
// and under Levioso. This is the broadest correctness net in the repository.
func TestSynthCosimFuzz(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := DefaultSynthConfig(uint64(seed))
		cfg.OuterIters = 150
		// Vary the generator's character across seeds.
		cfg.BranchEntropy = float64(seed%5) / 4
		cfg.MaxDepth = 2 + seed%3
		cfg.Funcs = seed % 4
		w := Synthesize(cfg)
		prog, err := w.Build(SizeTest)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.src)
		}
		want, err := ref.Run(prog, ref.Limits{MaxInsts: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: ref: %v", seed, err)
		}
		for _, pol := range []string{"unsafe", "levioso"} {
			ccfg := cpu.DefaultConfig()
			ccfg.MaxCycles = 200_000_000
			c, err := cpu.New(prog, ccfg, secure.MustNew(pol))
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pol, err)
			}
			if got.ExitCode != want.ExitCode || got.Output != want.Output {
				t.Errorf("seed %d %s: got %d/%q want %d/%q",
					seed, pol, got.ExitCode, got.Output, want.ExitCode, want.Output)
			}
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if c.ArchReg(r) != want.Regs[r] {
					t.Errorf("seed %d %s: reg %s mismatch", seed, pol, r)
					break
				}
			}
		}
	}
}

func TestSynthEntropyAffectsMispredicts(t *testing.T) {
	mispredictRate := func(entropy float64) float64 {
		cfg := DefaultSynthConfig(99)
		cfg.BranchEntropy = entropy
		cfg.OuterIters = 600
		prog := Synthesize(cfg).MustBuild(SizeTest)
		c, err := cpu.New(prog, cpu.DefaultConfig(), cpu.NopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.MispredictRate()
	}
	lo := mispredictRate(0)
	hi := mispredictRate(1)
	t.Logf("mispredict rate: entropy 0 -> %.3f, entropy 1 -> %.3f", lo, hi)
	if hi <= lo {
		t.Errorf("entropy knob has no effect: %.3f vs %.3f", lo, hi)
	}
}

// Annotation invariants over generated programs: every real reconvergence
// point must post-dominate its branch, be reachable from both arms, and lie
// outside the branch's control-dependent region.
func TestSynthAnnotationProperties(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		cfgS := DefaultSynthConfig(uint64(seed))
		w := Synthesize(cfgS)
		prog := w.MustBuild(SizeTest)
		g, err := cfg.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Functions() {
			pdom := f.PostDominators()
			for _, bi := range f.AnalyzeBranches() {
				if bi.ReconvPC == 0 {
					continue
				}
				brBlock := g.BlockOf(bi.InstIndex).ID
				ri, ok := prog.InstIndex(bi.ReconvPC)
				if !ok {
					t.Fatalf("seed %d: reconv %#x outside text", seed, bi.ReconvPC)
				}
				rBlock := g.BlockOf(ri).ID
				if !pdom.Dominates(rBlock, brBlock) {
					t.Errorf("seed %d: reconv block %d does not post-dominate branch block %d",
						seed, rBlock, brBlock)
				}
				for _, reg := range bi.Region {
					if reg == rBlock {
						t.Errorf("seed %d: region contains its reconvergence block", seed)
					}
				}
				// The hint table must agree with the analysis.
				h := prog.Hints[bi.PC]
				if h.ReconvPC != bi.ReconvPC {
					t.Errorf("seed %d: hint %#x != analysis %#x", seed, h.ReconvPC, bi.ReconvPC)
				}
				if h.WriteSet != bi.WriteSet {
					t.Errorf("seed %d: hint writeset %s != analysis %s", seed, h.WriteSet, bi.WriteSet)
				}
			}
		}
	}
}
