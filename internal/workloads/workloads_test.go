package workloads

import (
	"testing"

	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
	"levioso/internal/secure"
)

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Class == "" || w.Desc == "" {
			t.Errorf("workload %q missing metadata", w.Name)
		}
	}
	if len(All()) != 12 {
		t.Errorf("suite has %d workloads, want 12", len(All()))
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("pchase"); !ok {
		t.Error("pchase not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus workload found")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All mismatch")
	}
}

// Every workload must build, validate, and produce identical architectural
// results on the reference interpreter and the out-of-order core.
func TestSuiteCosim(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Build(SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(prog, ref.Limits{MaxInsts: 10_000_000})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d insts, exit %d, output %q", w.Name, want.Insts, want.ExitCode, want.Output)
			if want.Insts < 5_000 {
				t.Errorf("test size too small: %d insts", want.Insts)
			}
			if want.Insts > 2_000_000 {
				t.Errorf("test size too large: %d insts", want.Insts)
			}
			cfg := cpu.DefaultConfig()
			cfg.MaxCycles = 50_000_000
			c, err := cpu.New(prog, cfg, cpu.NopPolicy{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got.ExitCode != want.ExitCode || got.Output != want.Output {
				t.Errorf("core %d/%q, ref %d/%q", got.ExitCode, got.Output, want.ExitCode, want.Output)
			}
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if c.ArchReg(r) != want.Regs[r] {
					t.Errorf("reg %s mismatch", r)
				}
			}
		})
	}
}

// Every workload must also be correct under the Levioso policy (full-stack:
// compiled code + annotations + dependency tracking).
func TestSuiteUnderLevioso(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.MustBuild(SizeTest)
			want, err := ref.Run(prog, ref.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := cpu.DefaultConfig()
			cfg.MaxCycles = 100_000_000
			c, err := cpu.New(prog, cfg, secure.MustNew("levioso"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got.ExitCode != want.ExitCode || got.Output != want.Output {
				t.Errorf("levioso %d/%q, ref %d/%q", got.ExitCode, got.Output, want.ExitCode, want.Output)
			}
		})
	}
}

func TestRefLargerThanTest(t *testing.T) {
	for _, w := range All() {
		if w.ref <= w.test {
			t.Errorf("%s: ref scale %d <= test scale %d", w.Name, w.ref, w.test)
		}
	}
}

func TestSourceScaling(t *testing.T) {
	w, _ := ByName("matmul")
	if w.Source(SizeTest) == w.Source(SizeRef) {
		t.Error("source does not change with size")
	}
}

func TestAnnotationsPresent(t *testing.T) {
	for _, w := range All() {
		prog := w.MustBuild(SizeTest)
		if len(prog.Hints) == 0 {
			t.Errorf("%s: no branch annotations", w.Name)
		}
	}
}
