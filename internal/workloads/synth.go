package workloads

import (
	"fmt"
	"strings"
)

// Synthetic workload generator: deterministic, seed-driven LevC programs
// with tunable control-flow and memory character. Used two ways:
//
//   - fuzz-style cosimulation tests: hundreds of generated programs must
//     behave identically on the reference interpreter and the out-of-order
//     core under every policy;
//   - characterization sweeps: programs whose branch entropy and memory
//     footprint are controlled knobs.
//
// Generated programs always terminate: all loops are counted `for` loops
// with literal bounds, and recursion is never emitted.

// SynthConfig tunes the generator.
type SynthConfig struct {
	Seed       uint64
	Funcs      int // helper functions (0..6)
	MaxDepth   int // statement nesting depth (>= 1)
	OuterIters int // main loop trip count
	ArrayLen   int // global array length (power of two preferred)
	// BranchEntropy in [0,1]: 0 emits only predictable comparisons against
	// loop counters; 1 emits only hash-based (effectively random) conditions.
	BranchEntropy float64
}

// DefaultSynthConfig returns a medium-complexity generator configuration.
func DefaultSynthConfig(seed uint64) SynthConfig {
	return SynthConfig{
		Seed:          seed,
		Funcs:         3,
		MaxDepth:      3,
		OuterIters:    300,
		ArrayLen:      1024,
		BranchEntropy: 0.5,
	}
}

// Synthesize generates a LevC workload from cfg.
func Synthesize(cfg SynthConfig) Workload {
	g := &synth{cfg: cfg, rng: cfg.Seed*2862933555777941757 + 3037000493}
	src := g.program()
	name := fmt.Sprintf("synth-%x", cfg.Seed)
	return Workload{
		Name:  name,
		Class: "synthetic (generated)",
		Desc:  fmt.Sprintf("seed=%d entropy=%.2f depth=%d", cfg.Seed, cfg.BranchEntropy, cfg.MaxDepth),
		src:   src,
		test:  1, ref: 1, // %N% unused: OuterIters is baked in
	}
}

type synth struct {
	cfg    SynthConfig
	rng    uint64
	vars   []string // in-scope integer variables
	buf    strings.Builder
	ind    int
	fns    []string // helper function names (each takes 1 arg)
	unique int      // counter for collision-free local names
	inMain bool     // main has the per-iteration LCG state `s` in scope
}

func (g *synth) rand() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 11
}

func (g *synth) intn(n int) int { return int(g.rand() % uint64(n)) }

func (g *synth) chance(p float64) bool {
	return float64(g.rand()%1000)/1000 < p
}

func (g *synth) w(format string, args ...interface{}) {
	g.buf.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *synth) program() string {
	g.w("// generated: seed=%d", g.cfg.Seed)
	g.w("var mem[%d];", g.cfg.ArrayLen)
	g.w("var aux[%d];", g.cfg.ArrayLen)
	g.w("var acc;")
	for i := 0; i < g.cfg.Funcs; i++ {
		name := fmt.Sprintf("f%d", i)
		g.w("func %s(x) {", name)
		g.ind++
		g.vars = []string{"x"}
		g.w("var r = x;")
		g.vars = append(g.vars, "r")
		n := 1 + g.intn(3)
		for j := 0; j < n; j++ {
			g.stmt(1)
		}
		g.w("return r & %d;", g.cfg.ArrayLen-1)
		g.ind--
		g.w("}")
		// Register the function only after its body is generated: bodies may
		// call earlier helpers but never themselves (guaranteed termination).
		g.fns = append(g.fns, name)
	}
	g.w("func main() {")
	g.ind++
	g.inMain = true
	g.vars = nil
	g.w("var i;")
	g.w("var s = %d;", 1+g.intn(1<<20))
	g.vars = append(g.vars, "i", "s")
	g.w("for (i = 0; i < %d; i = i + 1) {", g.cfg.ArrayLen)
	g.w("\tmem[i] = (i * 2654435761) >> 7;")
	g.w("\taux[i] = i * 3;")
	g.w("}")
	g.w("for (i = 0; i < %d; i = i + 1) {", g.cfg.OuterIters)
	g.ind++
	g.w("s = s * 6364136223846793005 + 1442695040888963407;")
	n := 2 + g.intn(3)
	for j := 0; j < n; j++ {
		g.stmt(1)
	}
	g.ind--
	g.w("}")
	g.w("print(acc & 1048575);")
	g.w("return acc & 255;")
	g.ind--
	g.w("}")
	return g.buf.String()
}

// cond emits a branch condition: predictable (counter-based) or hash-based
// per the entropy knob.
func (g *synth) cond() string {
	if g.chance(g.cfg.BranchEntropy) {
		if g.inMain {
			// Fresh LCG bits every iteration: effectively random direction.
			return fmt.Sprintf("((s >> %d) & 1) == 0", 20+g.intn(24))
		}
		return fmt.Sprintf("(((%s) * 2654435761) >> %d & 1) == 0",
			g.pick(), 8+g.intn(20))
	}
	// Predictable: a short periodic pattern on the induction variable,
	// which the gshare history learns quickly.
	v := "x"
	if g.inMain {
		v = "i"
	}
	return fmt.Sprintf("(%s & %d) < %d", v, 1<<uint(1+g.intn(2))-1, 1+g.intn(3))
}

func (g *synth) pick() string {
	if len(g.vars) == 0 {
		return "acc"
	}
	return g.vars[g.intn(len(g.vars))]
}

func (g *synth) index() string {
	return fmt.Sprintf("(%s) & %d", g.expr(1), g.cfg.ArrayLen-1)
}

func (g *synth) expr(depth int) string {
	switch {
	case depth >= 3 || g.chance(0.3):
		if g.chance(0.5) {
			return g.pick()
		}
		return fmt.Sprint(1 + g.intn(1000))
	case g.chance(0.25):
		arr := "mem"
		if g.chance(0.5) {
			arr = "aux"
		}
		return fmt.Sprintf("%s[(%s) & %d]", arr, g.expr(depth+1), g.cfg.ArrayLen-1)
	case g.chance(0.2) && len(g.fns) > 0:
		return fmt.Sprintf("%s(%s)", g.fns[g.intn(len(g.fns))], g.expr(depth+1))
	default:
		ops := []string{"+", "-", "*", "&", "|", "^", ">>"}
		op := ops[g.intn(len(ops))]
		r := g.expr(depth + 1)
		if op == ">>" {
			r = fmt.Sprint(1 + g.intn(16))
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1), op, r)
	}
}

func (g *synth) stmt(depth int) {
	switch {
	case depth < g.cfg.MaxDepth && g.chance(0.3):
		g.w("if (%s) {", g.cond())
		g.ind++
		g.stmt(depth + 1)
		g.ind--
		if g.chance(0.5) {
			g.w("} else {")
			g.ind++
			g.stmt(depth + 1)
			g.ind--
		}
		g.w("}")
	case depth < g.cfg.MaxDepth && g.chance(0.2):
		g.unique++
		v := fmt.Sprintf("k%d", g.unique)
		g.w("var %s;", v)
		g.w("for (%s = 0; %s < %d; %s = %s + 1) {", v, v, 2+g.intn(6), v, v)
		g.ind++
		saved := g.vars
		g.vars = append(append([]string{}, g.vars...), v)
		g.stmt(depth + 1)
		g.vars = saved
		g.ind--
		g.w("}")
	case g.chance(0.35):
		g.w("%s[%s] = %s;", pickArr(g), g.index(), g.expr(1))
	default:
		g.w("acc = acc + (%s);", g.expr(1))
	}
}

func pickArr(g *synth) string {
	if g.chance(0.5) {
		return "mem"
	}
	return "aux"
}
