// Package workloads provides the benchmark suite used for every performance
// experiment. SPEC CPU2017 (used by the paper) is proprietary, so the suite
// substitutes twelve kernels — written in LevC and compiled through the same
// pipeline the Levioso pass runs on — that span the behaviour space that
// drives secure-speculation overheads: branch misprediction rate, memory-
// level parallelism under unresolved branches, dependent-load chains, and
// constant-time code. Each workload names the SPEC behaviour class it stands
// in for.
package workloads

import (
	"fmt"
	"strings"

	"levioso/internal/isa"
	"levioso/internal/lang"
)

// Size selects the workload input scale.
type Size int

const (
	// SizeTest keeps runs small enough for unit tests (tens of thousands of
	// dynamic instructions).
	SizeTest Size = iota
	// SizeRef is the evaluation scale used by the benchmark harness
	// (hundreds of thousands of dynamic instructions per workload).
	SizeRef
)

// Workload is one benchmark kernel. The LevC source contains a single %N%
// scale marker substituted at build time.
type Workload struct {
	Name  string
	Class string // the SPEC CPU2017 behaviour class this stands in for
	Desc  string
	src   string
	test  int // %N% at SizeTest
	ref   int // %N% at SizeRef
}

// Build compiles the workload at the given size into an annotated program.
func (w Workload) Build(size Size) (*isa.Program, error) {
	n := w.ref
	if size == SizeTest {
		n = w.test
	}
	src := strings.ReplaceAll(w.src, "%N%", fmt.Sprint(n))
	prog, err := lang.Compile(w.Name+".lc", src)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", w.Name, err)
	}
	return prog, nil
}

// MustBuild is Build for the embedded suite; it panics on error.
func (w Workload) MustBuild(size Size) *isa.Program {
	p, err := w.Build(size)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the workload's LevC source at the given size (for listings
// and the compiler-statistics experiment).
func (w Workload) Source(size Size) string {
	n := w.ref
	if size == SizeTest {
		n = w.test
	}
	return strings.ReplaceAll(w.src, "%N%", fmt.Sprint(n))
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names lists the suite in canonical order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}
