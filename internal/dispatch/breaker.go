package dispatch

import "sync"

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	// breakerClosed: the worker is trusted; calls flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: the worker has failed too many times in a row; the
	// coordinator parks its slot for a cooldown instead of feeding it
	// cells that will probably die.
	breakerOpen
	// breakerHalfOpen: cooldown expired; exactly one trial call is allowed
	// through. Success closes the breaker, failure re-opens it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker tracks one worker slot's health. Only *transient* failures —
// simerr's transport/deadline/panic/shed kinds — count against the breaker:
// a permanent failure (bad program, divergence) is the cell's fault, proves
// the worker is answering correctly, and resets the streak. That split is
// the whole point of the typed failure taxonomy: without it a batch of
// genuinely-broken programs would trip every breaker and stall the healthy
// fleet.
//
// The breaker is advisory state; the coordinator owns the clock (it parks
// the slot and schedules the half-open probe), so the breaker itself needs
// no timers.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	streak    int // consecutive transient failures
	threshold int // streak length that trips closed → open
}

func newBreaker(threshold int) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	return &breaker{threshold: threshold}
}

// onSuccess records a healthy response (including permanent, cell-caused
// failures). Half-open trial success closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak = 0
	b.state = breakerClosed
}

// onFailure records a transient failure and reports whether the breaker
// tripped open on this call (closed streak exhausted, or a failed half-open
// trial). The caller parks the slot when tripped is true.
func (b *breaker) onFailure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The one trial call failed: straight back to open.
		b.state = breakerOpen
		return true
	case breakerClosed:
		b.streak++
		if b.streak >= b.threshold {
			b.state = breakerOpen
			return true
		}
	}
	return false
}

// halfOpen transitions open → half-open when the cooldown expires, arming
// the single trial call.
func (b *breaker) halfOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
	}
}

// current reports the state for metrics.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
