package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/simerr"
)

// WireSchemaVersion is the coordinator↔worker protocol generation. It is the
// same additive-fields-don't-bump discipline as the levserve HTTP schema: a
// worker and coordinator disagreeing on it refuse to pair at handshake time
// instead of misinterpreting frames mid-batch.
const WireSchemaVersion = 1

// maxFrameBytes bounds one NDJSON frame on both sides of the pipe. Program
// images are capped well below this by the HTTP body limit; a frame this
// large is a corrupted stream, not a big program.
const maxFrameBytes = 64 << 20

// wireHello is the first frame a worker writes after starting. The
// coordinator refuses workers whose schema version differs.
type wireHello struct {
	Hello *wireHelloBody `json:"hello"`
}

type wireHelloBody struct {
	SchemaVersion int `json:"schema_version"`
	PID           int `json:"pid"`
}

// wireRequest is one coordinator→worker frame: a health probe (Ping) or one
// cell to simulate. The program travels as its serialized LEV64 image
// (base64 in JSON); options mirror the levserve wire names, so the two JSON
// APIs stay mutually intelligible.
type wireRequest struct {
	ID         uint64 `json:"id"`
	Ping       bool   `json:"ping,omitempty"`
	Name       string `json:"name,omitempty"`
	Binary     []byte `json:"binary,omitempty"`
	Policy     string `json:"policy,omitempty"`
	ROB        int    `json:"rob,omitempty"`
	MaxCycles  uint64 `json:"max_cycles,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Verify     bool   `json:"verify,omitempty"`
}

// wireError carries a typed simulation failure across the pipe. Kind is the
// simerr kind name; the coordinator reconstitutes the classification with
// simerr.ParseKind, so transient/permanent retry decisions survive the
// process boundary.
type wireError struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// wireResponse is one worker→coordinator frame, answering the request with
// the matching ID.
type wireResponse struct {
	ID     uint64     `json:"id"`
	Pong   bool       `json:"pong,omitempty"`
	Exit   uint64     `json:"exit,omitempty"`
	Output string     `json:"output,omitempty"`
	Stats  *cpu.Stats `json:"stats,omitempty"`
	Error  *wireError `json:"error,omitempty"`
}

// transportErr builds a typed transport failure (always transient: the
// simulator is deterministic, so a cell whose result never arrived is safely
// retryable on another worker).
func transportErr(format string, args ...any) *simerr.RunError {
	return simerr.New(simerr.KindTransport, format, args...)
}

// ServeWorker runs the worker side of the dispatch protocol over r/w —
// typically a subprocess's stdin/stdout (levserve -worker). It writes the
// hello frame, then answers one request frame per line until r reaches EOF
// (the coordinator closing the pipe is the shutdown signal) or ctx is
// cancelled. Frames are processed strictly in order, one at a time: a worker
// process is one execution slot, and the coordinator scales by spawning more
// processes, not by multiplexing frames.
//
// A malformed frame answers with a transport-kind error (ID 0) instead of
// killing the worker: the coordinator treats the mismatched ID as a
// transport failure for the in-flight call and restarts the worker on its
// own schedule.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	send := func(resp wireResponse) error {
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("dispatch: worker encode: %w", err)
		}
		return bw.Flush()
	}
	if err := enc.Encode(wireHello{Hello: &wireHelloBody{
		SchemaVersion: WireSchemaVersion, PID: os.Getpid(),
	}}); err != nil {
		return fmt.Errorf("dispatch: worker hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dispatch: worker hello: %w", err)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)
	for sc.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var req wireRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if serr := send(wireResponse{Error: &wireError{
				Kind:      simerr.KindTransport.String(),
				Message:   fmt.Sprintf("dispatch: worker: bad frame: %v", err),
				Retryable: true,
			}}); serr != nil {
				return serr
			}
			continue
		}
		if req.Ping {
			if err := send(wireResponse{ID: req.ID, Pong: true}); err != nil {
				return err
			}
			continue
		}
		if err := send(runWireRequest(ctx, req)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dispatch: worker read: %w", err)
	}
	return nil
}

// runWireRequest executes one cell frame through the shared engine pipeline
// and renders the reply frame. Failures become typed wire errors; the engine
// already recovers panics into simerr.ErrPanic, so one poisoned cell cannot
// take the worker process down.
func runWireRequest(ctx context.Context, req wireRequest) wireResponse {
	prog, err := engine.Load(req.Name, req.Binary)
	if err == nil {
		var res *engine.Result
		ereq := engine.Request{
			Name:    req.Name,
			Program: prog,
			Verify:  req.Verify,
			Overrides: engine.Overrides{
				Policy:    req.Policy,
				ROBSize:   req.ROB,
				MaxCycles: req.MaxCycles,
				Deadline:  time.Duration(req.DeadlineMS) * time.Millisecond,
			},
		}
		if res, err = engine.Run(ctx, ereq); err == nil {
			st := res.Stats
			return wireResponse{ID: req.ID, Exit: res.ExitCode, Output: res.Output, Stats: &st}
		}
	}
	return wireResponse{ID: req.ID, Error: &wireError{
		Kind:      simerr.KindOf(err).String(),
		Message:   err.Error(),
		Retryable: simerr.Transient(err),
	}}
}

// errorFromWire reconstitutes a typed failure from its wire form, preserving
// the transient/permanent classification across the process boundary.
func errorFromWire(we *wireError) error {
	return &simerr.RunError{Kind: simerr.ParseKind(we.Kind), Detail: we.Message}
}
