package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/lru"
	"levioso/internal/simerr"
)

// WireSchemaVersion is the coordinator↔worker protocol generation. It is the
// same additive-fields-don't-bump discipline as the levserve HTTP schema: a
// worker and coordinator disagreeing on it refuse to pair at handshake time
// instead of misinterpreting frames mid-batch. The heartbeat (hb/hb_ms) and
// worker-cache (cached) fields are additive: an older peer ignores them.
const WireSchemaVersion = 1

// maxFrameBytes bounds one NDJSON frame on both sides of the pipe. Program
// images are capped well below this by the HTTP body limit; a frame this
// large is a corrupted stream, not a big program.
const maxFrameBytes = 64 << 20

// wireHello is the first frame a worker writes after starting. The
// coordinator refuses workers whose schema version differs.
type wireHello struct {
	Hello *wireHelloBody `json:"hello"`
}

type wireHelloBody struct {
	SchemaVersion int `json:"schema_version"`
	PID           int `json:"pid"`
	// HBMillis advertises the worker's heartbeat interval in milliseconds
	// (TCP workers only; 0 = no heartbeats). The coordinator derives its
	// partition-detection timeout from it.
	HBMillis int64 `json:"hb_ms,omitempty"`
}

// wireRequest is one coordinator→worker frame: a health probe (Ping) or one
// cell to simulate. The program travels as its serialized LEV64 image
// (base64 in JSON); options mirror the levserve wire names, so the two JSON
// APIs stay mutually intelligible.
type wireRequest struct {
	ID         uint64 `json:"id"`
	Ping       bool   `json:"ping,omitempty"`
	Name       string `json:"name,omitempty"`
	Binary     []byte `json:"binary,omitempty"`
	Policy     string `json:"policy,omitempty"`
	ROB        int    `json:"rob,omitempty"`
	MaxCycles  uint64 `json:"max_cycles,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	Verify     bool   `json:"verify,omitempty"`
}

// wireError carries a typed simulation failure across the pipe. Kind is the
// simerr kind name; the coordinator reconstitutes the classification with
// simerr.ParseKind, so transient/permanent retry decisions survive the
// process boundary.
type wireError struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// wireResponse is one worker→coordinator frame, answering the request with
// the matching ID. HB frames (TCP transport) carry no ID and interleave with
// responses; Cached marks a result served from the worker daemon's shared
// result cache, advertised back so the coordinator can count cross-daemon
// repeats.
type wireResponse struct {
	ID     uint64     `json:"id"`
	Pong   bool       `json:"pong,omitempty"`
	HB     bool       `json:"hb,omitempty"`
	Exit   uint64     `json:"exit,omitempty"`
	Output string     `json:"output,omitempty"`
	Stats  *cpu.Stats `json:"stats,omitempty"`
	Cached bool       `json:"cached,omitempty"`
	Error  *wireError `json:"error,omitempty"`
}

// transportErr builds a typed transport failure (always transient: the
// simulator is deterministic, so a cell whose result never arrived is safely
// retryable on another worker).
func transportErr(format string, args ...any) *simerr.RunError {
	return simerr.New(simerr.KindTransport, format, args...)
}

// serveOptions tunes one worker serve loop beyond the plain stdio defaults.
type serveOptions struct {
	// hbInterval, when positive, advertises and emits heartbeat frames —
	// the TCP transport's liveness signal, flowing even while a long
	// simulation is in progress.
	hbInterval time.Duration
	// cache, when non-nil, is the daemon-wide shared result cache: any
	// connection served by this daemon answers repeats from it and marks
	// the reply Cached.
	cache *lru.Cache[string, engine.Result]
}

// ServeWorker runs the worker side of the dispatch protocol over r/w —
// typically a subprocess's stdin/stdout (levserve -worker). It writes the
// hello frame, then answers one request frame per line until r reaches EOF
// (the coordinator closing the pipe is the shutdown signal) or ctx is
// cancelled. Frames are processed strictly in order, one at a time: a worker
// process is one execution slot, and the coordinator scales by spawning more
// processes, not by multiplexing frames.
//
// A malformed frame answers with a transport-kind error (ID 0) instead of
// killing the worker: the coordinator treats the mismatched ID as a
// transport failure for the in-flight call and restarts the worker on its
// own schedule.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	return serveFrames(ctx, r, w, serveOptions{})
}

// serveFrames is the shared worker loop behind ServeWorker (stdio) and the
// TCP listener: hello, then strictly-sequential request frames. Cancellation
// is a graceful drain — an in-flight call is cancelled through ctx (the
// engine surfaces that as a typed transient error) and its response frame is
// still written before the loop exits, so a SIGTERM'd worker daemon never
// leaves the coordinator waiting on a call it silently abandoned.
func serveFrames(ctx context.Context, r io.Reader, w io.Writer, opts serveOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	// Responses and heartbeats share the stream; the mutex keeps frames
	// whole when the heartbeat ticker fires mid-response.
	var wmu sync.Mutex
	send := func(resp any) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("dispatch: worker encode: %w", err)
		}
		return bw.Flush()
	}

	hello := wireHelloBody{SchemaVersion: WireSchemaVersion, PID: os.Getpid()}
	if opts.hbInterval > 0 {
		hello.HBMillis = opts.hbInterval.Milliseconds()
	}
	if err := send(wireHello{Hello: &hello}); err != nil {
		return fmt.Errorf("dispatch: worker hello: %w", err)
	}

	done := make(chan struct{})
	defer close(done)
	if opts.hbInterval > 0 {
		go func() {
			t := time.NewTicker(opts.hbInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if send(wireResponse{HB: true}) != nil {
						return // stream gone; the main loop is on its way out
					}
				}
			}
		}()
	}

	// Frames arrive through a reader goroutine so an idle loop can notice
	// cancellation immediately (the drain path) instead of blocking in Scan.
	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-done:
				return
			}
		}
		scanErr <- sc.Err()
		close(lines)
	}()

	for {
		var line []byte
		var ok bool
		select {
		case <-ctx.Done():
			return ctx.Err() // idle: nothing in flight, drain immediately
		case line, ok = <-lines:
		}
		if !ok {
			if err := <-scanErr; err != nil {
				return fmt.Errorf("dispatch: worker read: %w", err)
			}
			return nil
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			if serr := send(wireResponse{Error: &wireError{
				Kind:      simerr.KindTransport.String(),
				Message:   fmt.Sprintf("dispatch: worker: bad frame: %v", err),
				Retryable: true,
			}}); serr != nil {
				return serr
			}
			continue
		}
		if req.Ping {
			if err := send(wireResponse{ID: req.ID, Pong: true}); err != nil {
				return err
			}
			continue
		}
		if err := send(runWireRequest(ctx, req, opts.cache)); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err() // drain: the in-flight call was answered first
		}
	}
}

// runWireRequest executes one cell frame through the shared engine pipeline
// and renders the reply frame, consulting the daemon's shared result cache
// first when one is configured. Failures become typed wire errors; the engine
// already recovers panics into simerr.ErrPanic, so one poisoned cell cannot
// take the worker process down.
func runWireRequest(ctx context.Context, req wireRequest, cache *lru.Cache[string, engine.Result]) wireResponse {
	prog, err := engine.Load(req.Name, req.Binary)
	if err == nil {
		ereq := engine.Request{
			Name:    req.Name,
			Program: prog,
			Verify:  req.Verify,
			Overrides: engine.Overrides{
				Policy:    req.Policy,
				ROBSize:   req.ROB,
				MaxCycles: req.MaxCycles,
				Deadline:  time.Duration(req.DeadlineMS) * time.Millisecond,
			},
		}
		if err = ereq.Normalize(); err == nil {
			var key string
			var cacheable bool
			if cache != nil {
				key, cacheable = engine.CacheKey(prog, ereq.Policy, ereq.BuildConfig(), false, req.Verify)
				if cacheable {
					if res, ok := cache.Get(key); ok {
						st := res.Stats
						return wireResponse{ID: req.ID, Exit: res.ExitCode, Output: res.Output, Stats: &st, Cached: true}
					}
				}
			}
			var res *engine.Result
			if res, err = engine.Run(ctx, ereq); err == nil {
				if cacheable {
					cache.Put(key, *res)
				}
				st := res.Stats
				return wireResponse{ID: req.ID, Exit: res.ExitCode, Output: res.Output, Stats: &st}
			}
		}
	}
	return wireResponse{ID: req.ID, Error: &wireError{
		Kind:      simerr.KindOf(err).String(),
		Message:   err.Error(),
		Retryable: simerr.Transient(err),
	}}
}

// errorFromWire reconstitutes a typed failure from its wire form, preserving
// the transient/permanent classification across the process boundary.
func errorFromWire(we *wireError) error {
	return &simerr.RunError{Kind: simerr.ParseKind(we.Kind), Detail: we.Message}
}
