package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"levioso/internal/engine"
	"levioso/internal/isa"
)

// helloTimeout bounds how long a freshly spawned worker may take to produce
// its handshake frame before the coordinator declares the spawn failed.
const helloTimeout = 10 * time.Second

// Cell is one unit of batch work: a program plus the option surface that
// selects its simulation. Cells are immutable once handed to the
// coordinator; the marshaled program image for the stdio transport is
// computed lazily and shared across retries.
type Cell struct {
	// Name labels the cell in results, errors, and metrics.
	Name string
	// Program is the built program to simulate (immutable during runs).
	Program *isa.Program
	// Overrides selects policy, ROB size, cycle limit, and deadline.
	Overrides engine.Overrides
	// Verify cross-checks the run against the reference model.
	Verify bool

	imgOnce sync.Once
	img     []byte
	imgErr  error
}

// image returns the cell's serialized LEV64 image for the wire transport,
// marshaling once no matter how many attempts ship it.
func (c *Cell) image() ([]byte, error) {
	c.imgOnce.Do(func() {
		if c.Program == nil {
			c.imgErr = fmt.Errorf("dispatch: cell %q has no program", c.Name)
			return
		}
		c.img, c.imgErr = c.Program.MarshalBinary()
	})
	return c.img, c.imgErr
}

// request renders the cell as one wire frame.
func (c *Cell) request() (wireRequest, error) {
	img, err := c.image()
	if err != nil {
		return wireRequest{}, err
	}
	return wireRequest{
		Name:       c.Name,
		Binary:     img,
		Policy:     c.Overrides.Policy,
		ROB:        c.Overrides.ROBSize,
		MaxCycles:  c.Overrides.MaxCycles,
		DeadlineMS: int64(c.Overrides.Deadline / time.Millisecond),
		Verify:     c.Verify,
	}, nil
}

// Worker is one execution slot: a thing that can run one cell at a time.
// The coordinator owns the single-in-flight discipline; a Worker may assume
// Execute and Ping are never called concurrently on the same instance.
//
// Execute returns typed errors: simulation failures keep their simerr kind
// across the transport, and anything where the result simply never arrived
// (dead process, corrupt frame, abandoned call) is simerr.KindTransport —
// always transient, because the simulator is a deterministic pure function
// and the cell can be replayed on any other worker.
type Worker interface {
	Execute(ctx context.Context, c *Cell) (*engine.Result, error)
	Ping(ctx context.Context) error
	// Kill tears the worker down immediately (idempotent). Any in-flight
	// call fails with a transport error.
	Kill()
	// Close shuts the worker down cleanly and releases its resources.
	Close() error
}

// Spawner creates a fresh worker. The coordinator calls it at startup and
// again whenever it restarts a crashed worker.
type Spawner func(ctx context.Context) (Worker, error)

// ---- in-process worker ----

// inprocWorker runs cells directly through engine.Run in this process: zero
// transport overhead, native context cancellation. It is the default when
// no worker command is configured — the coordinator's retry/breaker
// machinery still applies, it just has far fewer ways to fail.
type inprocWorker struct{ killed atomic.Bool }

// Inproc returns a Spawner for in-process workers.
func Inproc() Spawner {
	return func(ctx context.Context) (Worker, error) { return &inprocWorker{}, nil }
}

func (w *inprocWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	if w.killed.Load() {
		return nil, transportErr("worker killed")
	}
	if c.Program == nil {
		return nil, fmt.Errorf("dispatch: cell %q has no program", c.Name)
	}
	return engine.Run(ctx, engine.Request{
		Name:      c.Name,
		Program:   c.Program,
		Verify:    c.Verify,
		Overrides: c.Overrides,
	})
}

func (w *inprocWorker) Ping(ctx context.Context) error {
	if w.killed.Load() {
		return transportErr("worker killed")
	}
	return nil
}

func (w *inprocWorker) Kill()        { w.killed.Store(true) }
func (w *inprocWorker) Close() error { w.Kill(); return nil }

// ---- wire-protocol worker client ----

// procHandle abstracts the thing on the far side of a stdio worker's pipes:
// a real subprocess, or a goroutine serving the same protocol in-process.
type procHandle interface {
	// kill tears the far side down (idempotent); it must unblock any
	// reader/writer on the pipes.
	kill()
	// wait blocks until the far side has exited.
	wait() error
}

// stdioWorker is the coordinator-side client for one worker speaking the
// NDJSON protocol over a byte stream. Calls are strictly sequential (the
// coordinator's slot ownership guarantees it); an abandoned call — context
// cancelled while a frame is in flight — poisons the worker, because the
// protocol has no cancel frame and the stream position is now unknown. The
// coordinator responds by killing and respawning it.
type stdioWorker struct {
	proc procHandle
	in   io.WriteCloser
	enc  *json.Encoder
	sc   *bufio.Scanner

	nextID   atomic.Uint64
	poisoned atomic.Bool
	killOnce sync.Once

	mu sync.Mutex // serializes call; belt over the coordinator's suspenders
}

// newStdioWorker wraps the pipe pair, performs the hello handshake, and
// returns a ready worker.
func newStdioWorker(ctx context.Context, proc procHandle, in io.WriteCloser, out io.Reader) (*stdioWorker, error) {
	w := &stdioWorker{proc: proc, in: in, enc: json.NewEncoder(in)}
	w.sc = bufio.NewScanner(out)
	w.sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)

	hello := make(chan error, 1)
	go func() {
		if !w.sc.Scan() {
			hello <- transportErr("worker exited before hello: %v", w.sc.Err())
			return
		}
		var h wireHello
		if err := json.Unmarshal(w.sc.Bytes(), &h); err != nil || h.Hello == nil {
			hello <- transportErr("bad hello frame: %q", w.sc.Text())
			return
		}
		if h.Hello.SchemaVersion != WireSchemaVersion {
			hello <- transportErr("worker speaks wire schema %d, coordinator speaks %d",
				h.Hello.SchemaVersion, WireSchemaVersion)
			return
		}
		hello <- nil
	}()
	timer := time.NewTimer(helloTimeout)
	defer timer.Stop()
	select {
	case err := <-hello:
		if err != nil {
			w.Kill()
			return nil, err
		}
		return w, nil
	case <-ctx.Done():
		w.Kill()
		return nil, transportErr("spawn cancelled: %v", ctx.Err())
	case <-timer.C:
		w.Kill()
		return nil, transportErr("worker hello timed out after %v", helloTimeout)
	}
}

// call ships one frame and waits for its reply. Write and read both happen
// in a helper goroutine so a stalled worker (full pipe, wedged process)
// cannot wedge the caller past its context.
func (w *stdioWorker) call(ctx context.Context, req wireRequest) (*wireResponse, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned.Load() {
		return nil, transportErr("worker poisoned by an abandoned call")
	}
	req.ID = w.nextID.Add(1)

	type outcome struct {
		resp *wireResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		if err := w.enc.Encode(req); err != nil {
			ch <- outcome{nil, transportErr("write to worker: %v", err)}
			return
		}
		if !w.sc.Scan() {
			ch <- outcome{nil, transportErr("worker stream ended: %v", w.sc.Err())}
			return
		}
		var resp wireResponse
		if err := json.Unmarshal(w.sc.Bytes(), &resp); err != nil {
			ch <- outcome{nil, transportErr("corrupt frame from worker: %v", err)}
			return
		}
		ch <- outcome{&resp, nil}
	}()

	select {
	case <-ctx.Done():
		// No cancel frame in the protocol: the stream position is now
		// unknown, so this worker can never be trusted again.
		w.poisoned.Store(true)
		return nil, transportErr("call abandoned: %v", ctx.Err())
	case out := <-ch:
		if out.err != nil {
			w.poisoned.Store(true)
			return nil, out.err
		}
		if out.resp.ID != req.ID {
			w.poisoned.Store(true)
			return nil, transportErr("frame id mismatch: got %d, want %d", out.resp.ID, req.ID)
		}
		return out.resp, nil
	}
}

func (w *stdioWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	req, err := c.request()
	if err != nil {
		return nil, err
	}
	resp, err := w.call(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, errorFromWire(resp.Error)
	}
	res := &engine.Result{ExitCode: resp.Exit, Output: resp.Output}
	if resp.Stats != nil {
		res.Stats = *resp.Stats
	}
	return res, nil
}

func (w *stdioWorker) Ping(ctx context.Context) error {
	resp, err := w.call(ctx, wireRequest{Ping: true})
	if err != nil {
		return err
	}
	if !resp.Pong {
		w.poisoned.Store(true)
		return transportErr("ping answered without pong")
	}
	return nil
}

func (w *stdioWorker) Kill() {
	w.killOnce.Do(func() {
		w.poisoned.Store(true)
		w.in.Close()
		w.proc.kill()
	})
}

func (w *stdioWorker) Close() error {
	// Closing stdin is the clean shutdown signal (the worker loop exits on
	// EOF); kill guarantees progress if it doesn't comply.
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.proc.wait()
	}()
	w.in.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		w.Kill()
		<-done
	}
	return nil
}

// ---- subprocess worker ----

// cmdHandle adapts an exec.Cmd to procHandle.
type cmdHandle struct {
	cmd      *exec.Cmd
	waitOnce sync.Once
	waitErr  error
}

func (h *cmdHandle) kill() {
	if h.cmd.Process != nil {
		h.cmd.Process.Kill()
	}
}

func (h *cmdHandle) wait() error {
	h.waitOnce.Do(func() { h.waitErr = h.cmd.Wait() })
	return h.waitErr
}

// Proc returns a Spawner that launches exe args... as a worker subprocess
// speaking the wire protocol on stdin/stdout (levserve -worker). Stderr is
// discarded — workers are disposable; diagnosis happens through typed
// errors and metrics, not log scraping.
func Proc(exe string, args ...string) Spawner {
	return func(ctx context.Context) (Worker, error) {
		cmd := exec.Command(exe, args...)
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, transportErr("spawn %s: %v", exe, err)
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			in.Close()
			return nil, transportErr("spawn %s: %v", exe, err)
		}
		if err := cmd.Start(); err != nil {
			in.Close()
			return nil, transportErr("spawn %s: %v", exe, err)
		}
		h := &cmdHandle{cmd: cmd}
		w, err := newStdioWorker(ctx, h, in, out)
		if err != nil {
			h.kill()
			h.wait() // reap
			return nil, err
		}
		return w, nil
	}
}

// ---- in-process pipe worker ----

// pipeHandle runs ServeWorker in a goroutine over in-memory pipes: the full
// wire protocol — framing, typed error round-trips, poisoning — without
// process-spawn overhead. Tests and single-binary deployments use it to
// exercise the exact code path a subprocess worker takes.
type pipeHandle struct {
	cancel context.CancelFunc
	inR    *io.PipeReader
	outW   *io.PipeWriter
	done   chan struct{}
	once   sync.Once
}

func (h *pipeHandle) kill() {
	h.once.Do(func() {
		h.cancel()
		h.inR.CloseWithError(io.EOF)
		h.outW.CloseWithError(io.ErrClosedPipe)
	})
}

func (h *pipeHandle) wait() error {
	<-h.done
	return nil
}

// Pipe returns a Spawner whose workers speak the wire protocol through
// in-memory pipes to a ServeWorker goroutine.
func Pipe() Spawner {
	return func(ctx context.Context) (Worker, error) {
		inR, inW := io.Pipe()   // coordinator → worker
		outR, outW := io.Pipe() // worker → coordinator
		wctx, cancel := context.WithCancel(context.Background())
		h := &pipeHandle{cancel: cancel, inR: inR, outW: outW, done: make(chan struct{})}
		go func() {
			defer close(h.done)
			ServeWorker(wctx, inR, outW)
			outW.Close()
		}()
		w, err := newStdioWorker(ctx, h, inW, outR)
		if err != nil {
			h.kill()
			return nil, err
		}
		return w, nil
	}
}
