package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"levioso/internal/engine"
	"levioso/internal/obs"
	"levioso/internal/simerr"
)

// startWorkerDaemon runs ListenWorkers on an ephemeral loopback port and
// returns its address. Cleanup drains it.
func startWorkerDaemon(t *testing.T, opts ListenOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ListenWorkers(ctx, ln, opts)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("worker daemon did not drain")
		}
	})
	return ln.Addr().String()
}

// testFleet builds a remote fleet over the addresses with test-speed tuning.
func testFleet(t *testing.T, cfg RemoteConfig, addrs ...string) *RemoteFleet {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = 2 * time.Millisecond
	}
	f, err := NewRemote(cfg, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRemoteMatchesEngine: a cell dispatched over real loopback TCP is
// bit-identical to a direct engine.Run.
func TestRemoteMatchesEngine(t *testing.T) {
	addr := startWorkerDaemon(t, ListenOptions{HeartbeatInterval: 25 * time.Millisecond})
	prog := testProgram(t)
	want := wantResult(t, prog, "levioso")

	reg := obs.NewRegistry()
	fleet := testFleet(t, RemoteConfig{Registry: reg}, addr)
	co := testCoordinator(t, Config{Workers: 2, Spawn: fleet.Spawner(), CacheEntries: -1, Registry: reg})
	got, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Verify: true,
		Overrides: engine.Overrides{Policy: "levioso"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(got, want) {
		t.Fatalf("remote result differs:\n got=%+v\nwant=%+v", got, want)
	}

	// The slot view names the peer it is connected to.
	var peers int
	for _, s := range co.Snapshot().Slots {
		if s.Peer == addr {
			peers++
		}
	}
	if peers == 0 {
		t.Fatalf("no slot reports peer %s: %+v", addr, co.Snapshot().Slots)
	}
}

// TestRemoteWorkerCacheAdvertised: with the coordinator's cache disabled, a
// repeat cell is served by the worker daemon's shared cache and the hit is
// advertised back to the coordinator.
func TestRemoteWorkerCacheAdvertised(t *testing.T) {
	addr := startWorkerDaemon(t, ListenOptions{HeartbeatInterval: 25 * time.Millisecond})
	prog := testProgram(t)

	reg := obs.NewRegistry()
	fleet := testFleet(t, RemoteConfig{Registry: reg}, addr)
	co := testCoordinator(t, Config{Workers: 1, Spawn: fleet.Spawner(), CacheEntries: -1, Registry: reg})
	cell := func() *Cell {
		return &Cell{Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"}}
	}
	first, err := co.Execute(context.Background(), cell())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution reported cached")
	}
	second, err := co.Execute(context.Background(), cell())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat cell not served from the worker daemon cache")
	}
	if !sameResult(first, second) {
		t.Fatalf("cached result differs:\n got=%+v\nwant=%+v", second, first)
	}
	ps := fleet.Peers()
	if len(ps) != 1 || ps[0].CacheHits < 1 {
		t.Fatalf("peer stats do not show the advertised cache hit: %+v", ps)
	}
}

// silentServer handshakes correctly — advertising a fast heartbeat — and
// then never sends another byte: the silent-partition scenario only the
// heartbeat watchdog can detect.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				json.NewEncoder(c).Encode(wireHello{Hello: &wireHelloBody{
					SchemaVersion: WireSchemaVersion, PID: 1, HBMillis: 10,
				}})
				// Keep the socket open but mute; close only when the peer does.
				buf := make([]byte, 1<<10)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestRemotePartitionDetection: a peer that goes silent mid-call trips the
// heartbeat watchdog with a typed transport error instead of hanging until
// the caller's context dies.
func TestRemotePartitionDetection(t *testing.T) {
	addr := silentServer(t)
	fleet := testFleet(t, RemoteConfig{HeartbeatTimeout: 150 * time.Millisecond}, addr)
	w, err := fleet.spawn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	prog := testProgram(t)
	start := time.Now()
	_, err = w.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("execute on a partitioned peer succeeded")
	}
	if simerr.KindOf(err) != simerr.KindTransport || !simerr.Transient(err) {
		t.Fatalf("partition error is %v (kind %v), want transient transport", err, simerr.KindOf(err))
	}
	if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("error does not name the partition: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("partition detection took %v, want ~150ms", elapsed)
	}
	if ps := fleet.Peers(); ps[0].Partitions < 1 {
		t.Fatalf("peer stats do not count the partition: %+v", ps)
	}
}

// rawServer accepts connections and hands each to fn.
func rawServer(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(conn)
		}
	}()
	return ln.Addr().String()
}

// TestRemoteHelloVersionMismatch: a daemon speaking a different wire schema
// is refused at handshake with a typed transport error, and a coordinator
// pointed only at such daemons fails fast with ErrAllWorkersDead instead of
// hanging the batch.
func TestRemoteHelloVersionMismatch(t *testing.T) {
	addr := rawServer(t, func(c net.Conn) {
		json.NewEncoder(c).Encode(wireHello{Hello: &wireHelloBody{SchemaVersion: 99, PID: 1}})
		// Linger until the coordinator hangs up; never close first, so the
		// refusal is provably the version check, not a read error.
		buf := make([]byte, 1)
		c.Read(buf)
		c.Close()
	})
	fleet := testFleet(t, RemoteConfig{}, addr)
	if _, err := fleet.spawn(context.Background()); err == nil {
		t.Fatal("spawn against a mismatched daemon succeeded")
	} else if simerr.KindOf(err) != simerr.KindTransport {
		t.Fatalf("mismatch error kind = %v, want transport: %v", simerr.KindOf(err), err)
	}

	reg := obs.NewRegistry()
	fleet2 := testFleet(t, RemoteConfig{Registry: reg}, addr)
	start := time.Now()
	co, err := New(context.Background(), Config{
		Workers: 2, Spawn: fleet2.Spawner(), CrashLoopBudget: 2,
		Backoff: 2 * time.Millisecond, Registry: reg,
	})
	if err == nil {
		co.Close()
		t.Fatal("coordinator started against version-mismatched daemons")
	}
	if !errors.Is(err, ErrAllWorkersDead) {
		t.Fatalf("coordinator error = %v, want ErrAllWorkersDead", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestRemoteOversizedFrame: a daemon answering with a >64MiB frame produces
// a typed transport error and trips the slot's breaker — never a hang.
func TestRemoteOversizedFrame(t *testing.T) {
	var wrote sync.WaitGroup
	addr := rawServer(t, func(c net.Conn) {
		defer c.Close()
		json.NewEncoder(c).Encode(wireHello{Hello: &wireHelloBody{SchemaVersion: WireSchemaVersion, PID: 1}})
		sc := bufio.NewScanner(c)
		sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)
		if !sc.Scan() {
			return
		}
		// One giant line, no newline needed: the client's scanner hits its
		// 64MiB cap first. Chunked so a mid-write hangup just stops us.
		wrote.Add(1)
		defer wrote.Done()
		chunk := make([]byte, 1<<20)
		for i := range chunk {
			chunk[i] = 'a'
		}
		for i := 0; i < 65; i++ {
			if _, err := c.Write(chunk); err != nil {
				return
			}
		}
	})
	reg := obs.NewRegistry()
	fleet := testFleet(t, RemoteConfig{Registry: reg}, addr)
	co := testCoordinator(t, Config{
		Workers: 1, Spawn: fleet.Spawner(), MaxAttempts: 2, BreakerThreshold: 1,
		Backoff: 2 * time.Millisecond, CrashLoopBudget: 50, CacheEntries: -1, Registry: reg,
	})
	prog := testProgram(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := co.Execute(ctx, &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"},
	})
	if err == nil {
		t.Fatal("oversized frame produced a result")
	}
	if simerr.KindOf(err) != simerr.KindTransport {
		t.Fatalf("oversized-frame error kind = %v, want transport: %v", simerr.KindOf(err), err)
	}
	if trips := co.Snapshot().BreakerTrips; trips < 1 {
		t.Fatalf("breaker never tripped: %+v", co.Snapshot())
	}
	wrote.Wait() // server writers done: no goroutine left mid-blast
}

// gatedWorker blocks Execute until released — the probe that proves
// duplicate in-flight cells coalesce instead of each taking a worker.
type gatedWorker struct {
	execs     *atomic.Int64
	started   chan struct{}
	startOnce *sync.Once
	release   chan struct{}
}

func (w *gatedWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	w.execs.Add(1)
	w.startOnce.Do(func() { close(w.started) })
	select {
	case <-w.release:
	case <-ctx.Done():
		return nil, transportErr("gated: %v", ctx.Err())
	}
	return engine.Run(ctx, engine.Request{
		Name: c.Name, Program: c.Program, Verify: c.Verify, Overrides: c.Overrides,
	})
}

func (w *gatedWorker) Ping(ctx context.Context) error { return nil }
func (w *gatedWorker) Kill()                          {}
func (w *gatedWorker) Close() error                   { return nil }

// TestSingleFlightDedup: identical cells submitted while the first is still
// executing wait for its flight and share the result — one simulation, not
// four — with the dedup hits counted.
func TestSingleFlightDedup(t *testing.T) {
	var execs atomic.Int64
	gw := &gatedWorker{
		execs: &execs, started: make(chan struct{}),
		startOnce: &sync.Once{}, release: make(chan struct{}),
	}
	sp := func(ctx context.Context) (Worker, error) { return gw, nil }
	co := testCoordinator(t, Config{Workers: 2, Spawn: sp})

	prog := testProgram(t)
	cell := func() *Cell {
		return &Cell{Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"}}
	}
	type outcome struct {
		res *engine.Result
		err error
	}
	results := make(chan outcome, 4)
	run := func() {
		res, err := co.Execute(context.Background(), cell())
		results <- outcome{res, err}
	}
	go run()
	<-gw.started
	for i := 0; i < 3; i++ {
		go run()
	}
	// Let the duplicates reach the flight wait before the leader finishes.
	time.Sleep(200 * time.Millisecond)
	close(gw.release)

	var cached int
	for i := 0; i < 4; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Cached {
			cached++
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("duplicate cells executed %d times, want 1", got)
	}
	if st := co.Snapshot(); st.DedupHits != 3 {
		t.Fatalf("dedup hits = %d (cached results seen: %d), want 3", st.DedupHits, cached)
	}
}

// TestSingleFlightWaiterSurvivesLeaderTransientFailure: when the leader's
// attempt dies transiently, waiting duplicates do not inherit the failure —
// they take their own turn.
func TestSingleFlightWaiterSurvivesLeaderTransientFailure(t *testing.T) {
	var execs atomic.Int64
	flaky := flakyOnce{started: make(chan struct{}), release: make(chan struct{})}
	sp := func(ctx context.Context) (Worker, error) {
		return &flakyOnceWorker{execs: &execs, f: &flaky}, nil
	}
	co := testCoordinator(t, Config{Workers: 1, Spawn: sp, MaxAttempts: 1, Backoff: time.Millisecond})

	prog := testProgram(t)
	cell := func() *Cell {
		return &Cell{Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"}}
	}
	// Leader fails its single attempt (MaxAttempts 1 makes the flight fail
	// transiently); the waiter must retry on its own and succeed.
	flaky.armed.Store(true)
	type outcome struct {
		res *engine.Result
		err error
	}
	results := make(chan outcome, 2)
	go func() {
		res, err := co.Execute(context.Background(), cell())
		results <- outcome{res, err}
	}()
	<-flaky.started
	go func() {
		res, err := co.Execute(context.Background(), cell())
		results <- outcome{res, err}
	}()
	time.Sleep(100 * time.Millisecond)
	close(flaky.release)

	var oks, fails int
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			if !simerr.Transient(o.err) {
				t.Fatalf("leader failure not transient: %v", o.err)
			}
			fails++
			continue
		}
		oks++
	}
	if oks < 1 {
		t.Fatalf("no caller succeeded (oks=%d fails=%d): the waiter inherited the leader's transient failure", oks, fails)
	}
}

// flakyOnce coordinates one injected transient failure.
type flakyOnce struct {
	armed     atomic.Bool
	started   chan struct{}
	startOnce sync.Once
	release   chan struct{}
}

type flakyOnceWorker struct {
	execs *atomic.Int64
	f     *flakyOnce
}

func (w *flakyOnceWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	w.execs.Add(1)
	if w.f.armed.CompareAndSwap(true, false) {
		w.f.startOnce.Do(func() { close(w.f.started) })
		select {
		case <-w.f.release:
		case <-ctx.Done():
		}
		return nil, transportErr("injected flake")
	}
	return engine.Run(ctx, engine.Request{
		Name: c.Name, Program: c.Program, Verify: c.Verify, Overrides: c.Overrides,
	})
}

func (w *flakyOnceWorker) Ping(ctx context.Context) error { return nil }
func (w *flakyOnceWorker) Kill()                          {}
func (w *flakyOnceWorker) Close() error                   { return nil }
