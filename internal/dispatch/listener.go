package dispatch

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"levioso/internal/engine"
	"levioso/internal/lru"
)

// ListenOptions tunes a worker daemon's TCP serve loop.
type ListenOptions struct {
	// HeartbeatInterval is the application-level liveness cadence advertised
	// in the hello frame and emitted between (and during) calls. 0 means the
	// default (1s); negative disables heartbeats.
	HeartbeatInterval time.Duration
	// CacheEntries sizes the daemon-wide shared result cache: every
	// connection served by this daemon answers repeats from it and
	// advertises the hit back to the coordinator. 0 means the default
	// (1024); negative disables the cache.
	CacheEntries int
	// DrainTimeout bounds the graceful drain after ctx is cancelled:
	// in-flight calls get this long to finish and write their responses
	// before remaining connections are force-closed. 0 means the default
	// (10s).
	DrainTimeout time.Duration
}

func (o *ListenOptions) normalize() {
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 1024
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 10 * time.Second
	}
}

// ListenWorkers serves the worker side of the dispatch protocol to every
// connection accepted on ln — the `levserve -worker-listen` daemon. Each
// connection is one execution slot (strictly sequential calls, the same
// contract as a stdio worker); a daemon serves many coordinators or many
// slots of one coordinator by accepting many connections. All connections
// share one result cache, so any worker serves any repeat across the fleet.
//
// Cancelling ctx starts a graceful drain: the listener closes (no new
// connections), idle connections exit immediately, busy connections answer
// the in-flight call (the cancellation surfaces as a typed transient error
// the coordinator retries elsewhere — never a silent abandonment), and
// anything still open after DrainTimeout is force-closed. ListenWorkers
// returns nil on a clean drain.
func ListenWorkers(ctx context.Context, ln net.Listener, opts ListenOptions) error {
	opts.normalize()
	if ctx == nil {
		ctx = context.Background()
	}
	cache := lru.New[string, engine.Result](opts.CacheEntries)
	sopts := serveOptions{cache: cache}
	if opts.HeartbeatInterval > 0 {
		sopts.hbInterval = opts.HeartbeatInterval
	}

	// Track live connections so the drain can force-close stragglers.
	var cmu sync.Mutex
	conns := make(map[net.Conn]struct{})

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				break
			}
			return err
		}
		cmu.Lock()
		conns[conn] = struct{}{}
		cmu.Unlock()
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			defer func() {
				cmu.Lock()
				delete(conns, c)
				cmu.Unlock()
				c.Close()
			}()
			// Errors here are per-connection (peer hung up, bad frame
			// cascade); the daemon keeps serving other connections.
			_ = serveFrames(ctx, c, c, sopts)
		}(conn)
	}

	// Drain: serveFrames exits on its own once the in-flight call (if any)
	// is answered; the deadline force-closes connections that are stuck
	// mid-read on a peer that stopped talking.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(opts.DrainTimeout):
		cmu.Lock()
		for c := range conns {
			c.Close()
		}
		cmu.Unlock()
		wg.Wait()
	}
	return nil
}
