package dispatch

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"levioso/internal/engine"
	"levioso/internal/isa"
	"levioso/internal/obs"
	"levioso/internal/simerr"
)

// TestMain re-execs the test binary as a wire-protocol worker when the
// marker variable is set: Proc(os.Args[0]) then spawns real subprocess
// workers that speak the real protocol over real pipes.
func TestMain(m *testing.M) {
	if os.Getenv("LEVIOSO_DISPATCH_WORKER") == "1" {
		if err := ServeWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Setenv("LEVIOSO_DISPATCH_WORKER", "1") // inherited by Proc children
	os.Exit(m.Run())
}

const testSrc = `
func main() {
	var i;
	var s = 7;
	for (i = 0; i < 50; i = i + 1) { s = s * 31 + i; }
	print(s & 1023);
	return s & 63;
}`

func testProgram(t *testing.T) *isa.Program {
	t.Helper()
	prog, _, err := engine.Compile("cell.lc", testSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func testCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	co, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// wantResult is the fault-free ground truth, computed directly.
func wantResult(t *testing.T, prog *isa.Program, policy string) *engine.Result {
	t.Helper()
	res, err := engine.Run(context.Background(), engine.Request{
		Name: "cell.lc", Program: prog, Verify: true,
		Overrides: engine.Overrides{Policy: policy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(a, b *engine.Result) bool {
	return a.ExitCode == b.ExitCode && a.Output == b.Output && a.Stats == b.Stats
}

// TestExecuteMatchesEngine proves every transport — inproc, in-memory pipe,
// real subprocess — produces bit-identical results to a direct engine.Run.
func TestExecuteMatchesEngine(t *testing.T) {
	prog := testProgram(t)
	want := wantResult(t, prog, "levioso")
	spawners := map[string]Spawner{"inproc": Inproc(), "pipe": Pipe(), "proc": Proc(os.Args[0])}
	for name, sp := range spawners {
		t.Run(name, func(t *testing.T) {
			co := testCoordinator(t, Config{Workers: 2, Spawn: sp, CacheEntries: -1})
			got, err := co.Execute(context.Background(), &Cell{
				Name: "cell.lc", Program: prog, Verify: true,
				Overrides: engine.Overrides{Policy: "levioso"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !sameResult(got, want) {
				t.Fatalf("dispatched result differs:\n got=%+v\nwant=%+v", got, want)
			}
		})
	}
}

// TestSharedCache: an identical second cell is served from the
// content-addressed cache without touching a worker.
func TestSharedCache(t *testing.T) {
	prog := testProgram(t)
	co := testCoordinator(t, Config{Workers: 1})
	cell := func() *Cell {
		return &Cell{Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"}}
	}
	first, err := co.Execute(context.Background(), cell())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution reported cached")
	}
	second, err := co.Execute(context.Background(), cell())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical second cell missed the cache")
	}
	if !sameResult(first, second) {
		t.Fatalf("cached result differs: %+v vs %+v", first, second)
	}
	if st := co.Snapshot(); st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
}

// TestTypedErrorRoundTrip: a permanent simulation failure keeps its simerr
// kind across the wire and is not retried.
func TestTypedErrorRoundTrip(t *testing.T) {
	prog := testProgram(t)
	reg := obs.NewRegistry()
	co := testCoordinator(t, Config{Workers: 1, Spawn: Pipe(), Registry: reg})
	_, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog,
		Overrides: engine.Overrides{Policy: "unsafe", MaxCycles: 10},
	})
	if !errors.Is(err, simerr.ErrCycleLimit) {
		t.Fatalf("want cycle-limit across the wire, got %v", err)
	}
	if st := co.Snapshot(); st.Retries != 0 {
		t.Fatalf("permanent failure consumed %d retries", st.Retries)
	}
}

// flakyWorker fails with transport errors until `failures` is drained,
// then delegates to a real inproc worker.
type flakyWorker struct {
	failures *atomic.Int64
	real     inprocWorker
}

func (w *flakyWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	if w.failures.Add(-1) >= 0 {
		return nil, transportErr("injected flake")
	}
	return w.real.Execute(ctx, c)
}
func (w *flakyWorker) Ping(ctx context.Context) error { return w.real.Ping(ctx) }
func (w *flakyWorker) Kill()                          { w.real.Kill() }
func (w *flakyWorker) Close() error                   { return w.real.Close() }

// TestRetriesRecoverTransient: transient failures burn retries, then the
// cell completes with the right answer.
func TestRetriesRecoverTransient(t *testing.T) {
	prog := testProgram(t)
	want := wantResult(t, prog, "levioso")
	var failures atomic.Int64
	failures.Store(2)
	co := testCoordinator(t, Config{
		Workers:     1,
		Spawn:       func(ctx context.Context) (Worker, error) { return &flakyWorker{failures: &failures}, nil },
		MaxAttempts: 4,
		Backoff:     time.Millisecond,
	})
	got, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Verify: true,
		Overrides: engine.Overrides{Policy: "levioso"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(got, want) {
		t.Fatal("recovered result differs from ground truth")
	}
	if st := co.Snapshot(); st.Retries != 2 || st.Restarts != 2 {
		t.Fatalf("want 2 retries and 2 restarts, got %+v", st)
	}
}

// TestBreakerTripsAndRecovers drives one worker through closed → open →
// half-open → closed and checks the trip is counted.
func TestBreakerTripsAndRecovers(t *testing.T) {
	prog := testProgram(t)
	var failures atomic.Int64
	failures.Store(2) // threshold: trips the breaker, worker stays alive
	co := testCoordinator(t, Config{
		Workers:          1,
		Spawn:            func(ctx context.Context) (Worker, error) { return &flakyWorker{failures: &failures}, nil },
		MaxAttempts:      5,
		Backoff:          time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
		CrashLoopBudget:  10,
	})
	got, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "fence"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Stats.Committed == 0 {
		t.Fatalf("bad recovered result: %+v", got)
	}
	st := co.Snapshot()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if s := co.slots[0].br.current(); s != breakerClosed {
		t.Fatalf("breaker should have closed after recovery, is %v", s)
	}
}

// TestCrashLoopBudgetExhaustion: a worker that always dies takes its slot
// down permanently; with one slot, the coordinator fails fast.
func TestCrashLoopBudgetExhaustion(t *testing.T) {
	prog := testProgram(t)
	var failures atomic.Int64
	failures.Store(1 << 30)
	co := testCoordinator(t, Config{
		Workers:         1,
		Spawn:           func(ctx context.Context) (Worker, error) { return &flakyWorker{failures: &failures}, nil },
		MaxAttempts:     50,
		Backoff:         time.Millisecond,
		BreakerCooldown: time.Millisecond,
		CrashLoopBudget: 3,
	})
	_, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "unsafe"},
	})
	if err == nil {
		t.Fatal("execute succeeded against a permanently dead fleet")
	}
	// The terminal state must arrive: either the acquire saw all workers
	// dead, or the last transport error surfaced after budget exhaustion.
	if st := co.Snapshot(); st.WorkersAlive != 0 {
		t.Fatalf("slot not retired: %+v", st)
	}
	if _, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "unsafe"},
	}); !errors.Is(err, ErrAllWorkersDead) {
		t.Fatalf("want ErrAllWorkersDead fast-fail, got %v", err)
	}
}

// TestAdmissionControlSheds: beyond QueueDepth, Admit returns a typed,
// transient, introspectable shed error.
func TestAdmissionControlSheds(t *testing.T) {
	co := testCoordinator(t, Config{Workers: 1, QueueDepth: 2})
	if err := co.Admit(2); err != nil {
		t.Fatal(err)
	}
	err := co.Admit(1)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	if shed.Pending != 2 || shed.Capacity != 2 {
		t.Fatalf("shed envelope: %+v", shed)
	}
	if !errors.Is(err, simerr.ErrShed) || !simerr.Transient(err) {
		t.Fatalf("shed error lost its taxonomy: %v", err)
	}
	co.Release(2)
	if err := co.Admit(1); err != nil {
		t.Fatalf("post-release admit failed: %v", err)
	}
	co.Release(1)
	if st := co.Snapshot(); st.Shed != 1 || st.Pending != 0 {
		t.Fatalf("admission counters: %+v", st)
	}
}

// TestConcurrentBatch floods a small pool with many concurrent cells across
// policies and checks every result against ground truth — the retry/slot
// machinery must neither lose nor cross wires under contention.
func TestConcurrentBatch(t *testing.T) {
	prog := testProgram(t)
	policies := []string{"unsafe", "fence", "levioso", "delay"}
	want := make(map[string]*engine.Result, len(policies))
	for _, p := range policies {
		want[p] = wantResult(t, prog, p)
	}
	co := testCoordinator(t, Config{Workers: 3, Spawn: Pipe(), QueueDepth: -1, CacheEntries: -1})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		p := policies[i%len(policies)]
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			got, err := co.Execute(context.Background(), &Cell{
				Name: "cell.lc", Program: prog, Verify: true,
				Overrides: engine.Overrides{Policy: p},
			})
			if err != nil {
				errs <- err
				return
			}
			if !sameResult(got, want[p]) {
				errs <- errors.New(p + ": result differs from ground truth")
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBadPolicyRejectedLocally: option validation fails before any worker
// or attempt is spent.
func TestBadPolicyRejectedLocally(t *testing.T) {
	prog := testProgram(t)
	co := testCoordinator(t, Config{Workers: 1})
	_, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "nonesuch"},
	})
	if !errors.Is(err, simerr.ErrBuild) {
		t.Fatalf("want typed build error, got %v", err)
	}
}

// TestWorkerKillMidCall: killing the subprocess under an in-flight call
// surfaces a transient transport error and the pool self-heals.
func TestWorkerKillMidCall(t *testing.T) {
	prog := testProgram(t)
	sp := Pipe()
	var cur atomic.Value // holds Worker
	wrap := func(ctx context.Context) (Worker, error) {
		w, err := sp(ctx)
		if err == nil {
			cur.Store(w)
		}
		return w, err
	}
	co := testCoordinator(t, Config{Workers: 1, Spawn: wrap, MaxAttempts: 3, Backoff: time.Millisecond})
	// Kill the live worker; the next call hits a dead pipe, gets a
	// transport error, and the restart path replaces the worker.
	cur.Load().(Worker).Kill()
	got, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "unsafe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Committed == 0 {
		t.Fatalf("bad result after self-heal: %+v", got)
	}
	if st := co.Snapshot(); st.Restarts == 0 {
		t.Fatalf("no restart recorded: %+v", st)
	}
}

// TestPingProbe: a health probe detects a silently killed worker and
// replaces it before any cell is wasted.
func TestPingProbe(t *testing.T) {
	sp := Proc(os.Args[0])
	var mu sync.Mutex
	var spawned []Worker
	wrap := func(ctx context.Context) (Worker, error) {
		w, err := sp(ctx)
		if err == nil {
			mu.Lock()
			spawned = append(spawned, w)
			mu.Unlock()
		}
		return w, err
	}
	co := testCoordinator(t, Config{Workers: 1, Spawn: wrap, ProbeInterval: 20 * time.Millisecond})
	mu.Lock()
	spawned[0].Kill()
	mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if co.Snapshot().Restarts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never detected the killed worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the pool still works.
	prog := testProgram(t)
	if _, err := co.Execute(context.Background(), &Cell{
		Name: "cell.lc", Program: prog, Overrides: engine.Overrides{Policy: "unsafe"},
	}); err != nil {
		t.Fatalf("post-probe execute: %v", err)
	}
}
