// Package dispatch is the fault-tolerant batch execution tier: a
// coordinator sharding simulation cells across a pool of workers, with
// per-cell retries, hedging, per-worker circuit breakers, crash-loop-bounded
// automatic restarts, admission control, and a content-addressed shared
// result cache.
//
// The design leans on one property end to end: the simulator is a
// deterministic pure function of (program, policy, config). That makes
// every failure safely retryable — a cell whose result never arrived can be
// replayed on any worker with no risk of double effects — and every repeat
// cacheable under engine.CacheKey. The failure taxonomy in internal/simerr
// does the rest of the work: transient kinds (transport, deadline, panic,
// shed) drive retries and breakers; permanent kinds (build, divergence,
// limits) are the cell's own fault, charged to the cell and never to the
// worker that faithfully reported them.
//
// Worker ownership is a token-in-channel discipline: each worker slot's
// token lives in the ready channel exactly when the slot is idle and
// trusted. Acquire is a channel receive; completion routes the token
// through breaker/restart logic back to the channel. This gives
// single-in-flight per worker (the stdio protocol requires it) without a
// lock-ordering problem in sight.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"levioso/internal/engine"
	"levioso/internal/lru"
	"levioso/internal/obs"
	"levioso/internal/simerr"
)

// Config sizes the coordinator. The zero value is usable: in-process
// workers, modest pool, retries and breakers on, hedging off.
type Config struct {
	// Workers is the number of worker slots. Default 4.
	Workers int
	// Spawn creates workers. Default Inproc().
	Spawn Spawner

	// MaxAttempts bounds per-cell attempts (first try included). Only
	// transient failures are retried. Default 3.
	MaxAttempts int
	// Backoff is the base retry delay, doubled per attempt (capped at
	// Backoff<<6) with ±50% jitter. Default 50ms.
	Backoff time.Duration
	// HedgeAfter launches a second attempt of a still-running cell on an
	// idle worker after this delay; first result wins. 0 disables hedging.
	HedgeAfter time.Duration

	// BreakerThreshold is the consecutive-transient-failure streak that
	// trips a worker's breaker open. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker parks its slot before
	// the half-open trial. Default 1s.
	BreakerCooldown time.Duration
	// CrashLoopBudget is the number of consecutive restarts (reset by any
	// healthy response) a slot may consume before it is declared
	// permanently dead. Default 5.
	CrashLoopBudget int

	// QueueDepth caps admitted-but-unfinished cells; beyond it, Admit
	// sheds with a typed retryable error instead of letting the queue
	// collapse. Default 8×Workers; negative means unlimited.
	QueueDepth int
	// CacheEntries sizes the shared content-addressed result cache.
	// Default 1024; negative disables caching.
	CacheEntries int

	// ProbeInterval pings idle workers this often, restarting any that
	// fail. 0 disables probing.
	ProbeInterval time.Duration

	// Registry receives the dispatch metrics. Default obs.Default().
	Registry *obs.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.Spawn == nil {
		out.Spawn = Inproc()
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.Backoff <= 0 {
		out.Backoff = 50 * time.Millisecond
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = time.Second
	}
	if out.CrashLoopBudget <= 0 {
		out.CrashLoopBudget = 5
	}
	if out.QueueDepth == 0 {
		out.QueueDepth = 8 * out.Workers
	}
	if out.CacheEntries == 0 {
		out.CacheEntries = 1024
	}
	if out.Registry == nil {
		out.Registry = obs.Default()
	}
	return out
}

// ShedError is the admission-control rejection: the queue is at capacity
// and the request was turned away before any work happened. It unwraps to a
// simerr.KindShed RunError, so errors.Is(err, simerr.ErrShed) and the
// transient classification both hold; the serve layer reads Pending and
// Capacity into the 503 envelope.
type ShedError struct {
	Pending  int64
	Capacity int64
	cause    *simerr.RunError
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("dispatch: shed: %d cells pending of %d capacity", e.Pending, e.Capacity)
}

func (e *ShedError) Unwrap() error { return e.cause }

// ErrAllWorkersDead reports that every slot exhausted its crash-loop
// budget. It is deliberately NOT transient: when the whole fleet is gone,
// retrying inside this process cannot help.
var ErrAllWorkersDead = errors.New("dispatch: all workers dead (crash-loop budget exhausted)")

// errClosed reports use after Close.
var errClosed = errors.New("dispatch: coordinator closed")

// slot is one worker position in the pool: the breaker and crash-loop
// accounting survive across the worker instances that pass through it.
type slot struct {
	id string
	br *breaker

	mu       sync.Mutex
	w        Worker
	restarts int // consecutive, reset by any healthy response
	dead     bool
}

// flight is one in-flight execution of a cache key: the leader runs the
// cell, duplicates wait on done and share the outcome.
type flight struct {
	done chan struct{}
	res  *engine.Result
	err  error
}

// Coordinator shards cells across the worker pool. Safe for concurrent use.
type Coordinator struct {
	cfg   Config
	slots []*slot
	ready chan *slot
	cache *lru.Cache[string, engine.Result]

	fmu     sync.Mutex
	flights map[string]*flight

	pending  atomic.Int64
	alive    atomic.Int64
	allDead  chan struct{}
	deadOnce sync.Once

	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	jmu sync.Mutex
	jit *rand.Rand

	mCells        *obs.CounterVec // outcome: ok | cached | failure kind
	mRetries      *obs.Counter
	mHedges       *obs.Counter
	mShed         *obs.Counter
	mRestarts     *obs.Counter
	mBreakerTrips *obs.Counter
	mBreakerState *obs.GaugeVec // worker: slot id; 0 closed, 1 open, 2 half-open
	mCacheHits    *obs.Counter
	mCacheMisses  *obs.Counter
	mDedupHits    *obs.Counter
	mQueueDepth   *obs.Gauge
	mAlive        *obs.Gauge
}

// New builds the coordinator and spawns the initial worker pool. A slot
// whose first spawn fails enters the normal restart path; New only errors
// when no worker at all could be started.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	c := cfg.withDefaults()
	co := &Coordinator{
		cfg:     c,
		ready:   make(chan *slot, c.Workers),
		cache:   lru.New[string, engine.Result](c.CacheEntries),
		flights: make(map[string]*flight),
		allDead: make(chan struct{}),
		closeCh: make(chan struct{}),
		jit:     rand.New(rand.NewSource(1)),
	}
	r := c.Registry
	co.mCells = r.CounterVec("dispatch_cells_total", "Batch cells by final outcome.", "outcome")
	co.mRetries = r.Counter("dispatch_retries_total", "Cell attempts beyond the first.")
	co.mHedges = r.Counter("dispatch_hedges_total", "Hedged duplicate attempts launched.")
	co.mShed = r.Counter("dispatch_shed_total", "Cells rejected by admission control.")
	co.mRestarts = r.Counter("dispatch_worker_restarts_total", "Worker restarts after transport failures.")
	co.mBreakerTrips = r.Counter("dispatch_breaker_trips_total", "Circuit breakers tripped open.")
	co.mBreakerState = r.GaugeVec("dispatch_breaker_state", "Breaker state per worker slot (0 closed, 1 open, 2 half-open).", "worker")
	co.mCacheHits = r.Counter("dispatch_cache_hits_total", "Shared result cache hits.")
	co.mCacheMisses = r.Counter("dispatch_cache_misses_total", "Shared result cache misses.")
	co.mDedupHits = r.Counter("dispatch_dedup_hits_total", "Duplicate in-flight cells coalesced by single-flight.")
	co.mQueueDepth = r.Gauge("dispatch_queue_depth", "Admitted cells currently pending.")
	co.mAlive = r.Gauge("dispatch_workers_alive", "Worker slots not yet declared dead.")

	co.alive.Store(int64(c.Workers))
	co.mAlive.Set(int64(c.Workers))
	var started int
	for i := 0; i < c.Workers; i++ {
		s := &slot{id: fmt.Sprintf("w%d", i), br: newBreaker(c.BreakerThreshold)}
		co.slots = append(co.slots, s)
		w, err := c.Spawn(ctx)
		if err == nil {
			s.w = w
			started++
			co.ready <- s
			continue
		}
		// First spawn failed: hand the slot to the restart path.
		co.wg.Add(1)
		go func(s *slot) {
			defer co.wg.Done()
			if co.respawn(s) {
				co.requeue(s)
			}
		}(s)
	}
	if started == 0 && c.Workers > 0 {
		// Give the async respawns a moment only in the degenerate all-failed
		// case; if nothing comes up the pool is useless.
		select {
		case s := <-co.ready:
			co.ready <- s
		case <-time.After(helloTimeout):
			co.Close()
			return nil, fmt.Errorf("dispatch: no worker could be started")
		case <-co.allDead:
			co.Close()
			return nil, ErrAllWorkersDead
		}
	}
	if c.ProbeInterval > 0 {
		co.wg.Add(1)
		go co.probeLoop()
	}
	return co, nil
}

// Close tears down the pool. In-flight calls fail with transport errors.
func (co *Coordinator) Close() error {
	if !co.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(co.closeCh)
	for _, s := range co.slots {
		s.mu.Lock()
		w := s.w
		s.w = nil
		s.mu.Unlock()
		if w != nil {
			w.Kill()
			w.Close()
		}
	}
	co.wg.Wait()
	return nil
}

// ---- admission control ----

// Admit reserves n cells of queue capacity, shedding with a *ShedError when
// the queue is full. Callers must Release what they Admit.
func (co *Coordinator) Admit(n int) error {
	if co.closed.Load() {
		return errClosed
	}
	cap := int64(co.cfg.QueueDepth)
	if cap < 0 {
		co.mQueueDepth.Set(co.pending.Add(int64(n)))
		return nil
	}
	for {
		cur := co.pending.Load()
		if cur+int64(n) > cap {
			co.mShed.Add(uint64(n))
			return &ShedError{
				Pending:  cur,
				Capacity: cap,
				cause:    simerr.New(simerr.KindShed, "%d pending of %d capacity", cur, cap),
			}
		}
		if co.pending.CompareAndSwap(cur, cur+int64(n)) {
			co.mQueueDepth.Set(cur + int64(n))
			return nil
		}
	}
}

// Release returns n units of admitted capacity.
func (co *Coordinator) Release(n int) {
	co.mQueueDepth.Set(co.pending.Add(-int64(n)))
}

// Pending reports the admitted-but-unfinished cell count (for the 503
// envelope and Retry-After estimation).
func (co *Coordinator) Pending() int64 { return co.pending.Load() }

// QueueDepth reports the admission capacity (negative = unlimited).
func (co *Coordinator) QueueDepth() int { return co.cfg.QueueDepth }

// ---- execution ----

// Execute runs one cell through admission, cache, and the retry loop.
func (co *Coordinator) Execute(ctx context.Context, cell *Cell) (*engine.Result, error) {
	if err := co.Admit(1); err != nil {
		return nil, err
	}
	defer co.Release(1)
	return co.ExecuteAdmitted(ctx, cell)
}

// ExecuteAdmitted runs one cell whose capacity was already reserved via
// Admit — the batch path admits the whole batch up front so a batch can
// never shed its own cells halfway through.
func (co *Coordinator) ExecuteAdmitted(ctx context.Context, cell *Cell) (*engine.Result, error) {
	res, err := co.run(ctx, cell)
	switch {
	case err == nil && res.Cached:
		co.mCells.With("cached").Inc()
	case err == nil:
		co.mCells.With("ok").Inc()
	default:
		co.mCells.With(simerr.KindOf(err).String()).Inc()
	}
	return res, err
}

// run is the cache + single-flight front of the retry loop. Identical cells
// — same content-addressed key — in flight at the same moment execute once:
// the first caller becomes the leader and runs the cell, duplicates wait on
// its flight and share the outcome. Dedup sits *before* the shared result
// cache, so a batch of repeats costs one simulation, not one per repeat that
// raced past a still-empty cache entry.
func (co *Coordinator) run(ctx context.Context, cell *Cell) (*engine.Result, error) {
	if err := cell.Overrides.Normalize(); err != nil {
		return nil, err // permanent: bad cell, no attempt consumed
	}
	key, cacheable := co.cellKey(cell)
	if !cacheable {
		return co.runAttempts(ctx, cell)
	}
	for {
		co.fmu.Lock()
		if cached, ok := co.cache.Get(key); ok {
			co.fmu.Unlock()
			co.mCacheHits.Inc()
			cached.Cached = true
			return &cached, nil
		}
		if f, ok := co.flights[key]; ok {
			co.fmu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, simerr.New(simerr.KindDeadline, "dispatch: %v", ctx.Err())
			case <-co.closeCh:
				return nil, errClosed
			}
			if f.err == nil {
				co.mDedupHits.Inc()
				cp := *f.res
				cp.Cached = true
				return &cp, nil
			}
			if !simerr.Transient(f.err) {
				// Deterministic failure: every duplicate shares it.
				co.mDedupHits.Inc()
				return nil, f.err
			}
			// The leader failed transiently — its deadline, its worker's
			// luck. A waiter must not inherit that fate: loop back and
			// take its own turn (or find the next leader already flying).
			continue
		}
		f := &flight{done: make(chan struct{})}
		co.flights[key] = f
		co.mCacheMisses.Inc()
		co.fmu.Unlock()

		res, err := co.runAttempts(ctx, cell)
		if err == nil {
			co.cache.Put(key, *res)
		}
		f.res, f.err = res, err
		co.fmu.Lock()
		delete(co.flights, key)
		co.fmu.Unlock()
		close(f.done)
		return res, err
	}
}

// runAttempts is the per-cell retry loop: transient failures retry with
// exponential backoff up to MaxAttempts, permanent failures return at once.
func (co *Coordinator) runAttempts(ctx context.Context, cell *Cell) (*engine.Result, error) {
	var lastErr error
	for attempt := 1; attempt <= co.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			co.mRetries.Inc()
			if err := co.sleepBackoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		res, err := co.attempt(ctx, cell)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !simerr.Transient(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// cellKey computes the content-addressed key for a normalized cell — the
// identity both the result cache and single-flight dedup coalesce on. A nil
// cache (caching disabled) still yields a key: dedup works either way, the
// lru no-op cache just never hits.
func (co *Coordinator) cellKey(cell *Cell) (string, bool) {
	if cell.Program == nil {
		return "", false
	}
	req := engine.Request{Name: cell.Name, Program: cell.Program, Overrides: cell.Overrides}
	return engine.CacheKey(cell.Program, cell.Overrides.Policy, req.BuildConfig(), false, cell.Verify)
}

// sleepBackoff waits the exponential-with-jitter delay before attempt n.
func (co *Coordinator) sleepBackoff(ctx context.Context, attempt int) error {
	shift := attempt - 2 // first retry waits ~Backoff
	if shift > 6 {
		shift = 6
	}
	base := co.cfg.Backoff << shift
	co.jmu.Lock()
	jitter := time.Duration(co.jit.Int63n(int64(base))) - base/2
	co.jmu.Unlock()
	t := time.NewTimer(base + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return simerr.New(simerr.KindDeadline, "dispatch: cancelled during backoff: %v", ctx.Err())
	case <-co.closeCh:
		return errClosed
	}
}

// attempt runs the cell once, with an optional hedge: if the primary is
// still running after HedgeAfter and an idle worker exists, a duplicate
// launches and the first completion wins. The loser runs to completion on
// its own worker (cancelling a stdio call would poison the worker — worse
// than finishing a deterministic simulation) and its result is discarded.
func (co *Coordinator) attempt(ctx context.Context, cell *Cell) (*engine.Result, error) {
	s, err := co.acquire(ctx)
	if err != nil {
		return nil, err
	}
	type outcome struct {
		res *engine.Result
		err error
	}
	out := make(chan outcome, 2)
	runOn := func(s *slot) {
		res, err := co.runOnSlot(ctx, s, cell)
		out <- outcome{res, err}
	}
	go runOn(s)

	outstanding := 1
	var hedgeC <-chan time.Time
	if co.cfg.HedgeAfter > 0 {
		t := time.NewTimer(co.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for outstanding > 0 {
		select {
		case o := <-out:
			outstanding--
			if o.err == nil {
				return o.res, nil
			}
			lastErr = o.err
		case <-hedgeC:
			hedgeC = nil
			if h, ok := co.tryAcquire(); ok {
				co.mHedges.Inc()
				outstanding++
				go runOn(h)
			}
		case <-ctx.Done():
			// Outstanding attempts clean their own slots up via runOnSlot.
			return nil, simerr.New(simerr.KindDeadline, "dispatch: %v", ctx.Err())
		}
	}
	return nil, lastErr
}

// runOnSlot executes the cell on the slot's current worker and routes the
// slot through breaker/restart accounting back toward the ready queue.
func (co *Coordinator) runOnSlot(ctx context.Context, s *slot, cell *Cell) (*engine.Result, error) {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		// Shouldn't happen (only live slots are in the ready queue), but
		// never wedge: route through the restart path.
		co.finish(s, true, true)
		return nil, transportErr("slot %s has no worker", s.id)
	}
	res, err := w.Execute(ctx, cell)
	kind := simerr.KindOf(err)
	transport := err != nil && kind == simerr.KindTransport
	if !transport {
		// Any answered call — success or a typed simulation failure — is a
		// healthy worker; the crash-loop streak resets.
		s.mu.Lock()
		s.restarts = 0
		s.mu.Unlock()
	}
	co.finish(s, transport, err != nil && kind.Transient())
	return res, err
}

// finish updates the slot's breaker and sends it down the recycle path.
// Never blocks the caller.
func (co *Coordinator) finish(s *slot, needRestart, transientFailure bool) {
	if transientFailure {
		if s.br.onFailure() {
			co.mBreakerTrips.Inc()
		}
	} else {
		s.br.onSuccess()
	}
	co.mBreakerState.With(s.id).Set(int64(s.br.current()))
	// Deliberately untracked: recycle goroutines are bounded by the pool
	// size and exit promptly on closeCh; tracking them in wg would race
	// Add against Close's Wait.
	go co.recycle(s, needRestart)
}

// recycle restarts the worker if its transport failed, serves the breaker
// cooldown if it is open, then requeues the slot.
func (co *Coordinator) recycle(s *slot, needRestart bool) {
	if needRestart {
		if !co.respawn(s) {
			return // dead or closing
		}
	}
	if s.br.current() == breakerOpen {
		t := time.NewTimer(co.cfg.BreakerCooldown)
		defer t.Stop()
		select {
		case <-t.C:
			s.br.halfOpen()
			co.mBreakerState.With(s.id).Set(int64(s.br.current()))
		case <-co.closeCh:
			return
		}
	}
	co.requeue(s)
}

// respawn replaces the slot's worker, burning crash-loop budget. Returns
// false when the slot is now dead or the coordinator is closing.
func (co *Coordinator) respawn(s *slot) bool {
	s.mu.Lock()
	old := s.w
	s.w = nil
	s.mu.Unlock()
	if old != nil {
		old.Kill()
		old.Close()
	}
	for {
		if co.closed.Load() {
			return false
		}
		s.mu.Lock()
		s.restarts++
		burned := s.restarts
		s.mu.Unlock()
		if burned > co.cfg.CrashLoopBudget {
			co.markDead(s)
			return false
		}
		co.mRestarts.Inc()
		w, err := co.cfg.Spawn(context.Background())
		if err == nil {
			s.mu.Lock()
			if co.closed.Load() {
				s.mu.Unlock()
				w.Kill()
				w.Close()
				return false
			}
			s.w = w
			s.mu.Unlock()
			return true
		}
		// Spawn itself failed: brief pause, then burn the next unit.
		t := time.NewTimer(co.cfg.Backoff)
		select {
		case <-t.C:
		case <-co.closeCh:
			t.Stop()
			return false
		}
	}
}

// markDead retires a slot permanently. When the last slot dies, allDead is
// closed and waiting acquires fail fast with ErrAllWorkersDead.
func (co *Coordinator) markDead(s *slot) {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
	left := co.alive.Add(-1)
	co.mAlive.Set(left)
	if left <= 0 {
		co.deadOnce.Do(func() { close(co.allDead) })
	}
}

// acquire blocks until an idle, trusted worker slot is available.
func (co *Coordinator) acquire(ctx context.Context) (*slot, error) {
	select {
	case s := <-co.ready:
		return s, nil
	default:
	}
	select {
	case s := <-co.ready:
		return s, nil
	case <-ctx.Done():
		return nil, simerr.New(simerr.KindDeadline, "dispatch: %v", ctx.Err())
	case <-co.allDead:
		return nil, ErrAllWorkersDead
	case <-co.closeCh:
		return nil, errClosed
	}
}

// tryAcquire grabs an idle slot without waiting (hedges and probes must
// never steal capacity from primary attempts that are blocked waiting).
func (co *Coordinator) tryAcquire() (*slot, bool) {
	select {
	case s := <-co.ready:
		return s, true
	default:
		return nil, false
	}
}

// requeue returns a slot token to the ready queue (capacity = pool size, so
// this never blocks).
func (co *Coordinator) requeue(s *slot) {
	if co.closed.Load() {
		return
	}
	co.ready <- s
}

// ---- health probing ----

// probeLoop periodically pings idle workers; a failed ping sends the slot
// through the normal transport-failure restart path before any cell is
// wasted on it.
func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.closeCh:
			return
		case <-t.C:
		}
		// Probe every currently-idle slot, at most one pass per tick.
		probed := make([]*slot, 0, len(co.slots))
		for {
			s, ok := co.tryAcquire()
			if !ok {
				break
			}
			probed = append(probed, s)
		}
		for _, s := range probed {
			s.mu.Lock()
			w := s.w
			s.mu.Unlock()
			if w == nil {
				co.finish(s, true, true)
				continue
			}
			pctx, cancel := context.WithTimeout(context.Background(), co.cfg.ProbeInterval)
			err := w.Ping(pctx)
			cancel()
			co.finish(s, err != nil, err != nil)
		}
	}
}

// ---- introspection ----

// Addressable is implemented by workers bound to a remote peer address
// (remoteWorker); Snapshot uses it to label slots with the host they are
// currently connected to.
type Addressable interface {
	Addr() string
}

// SlotStats is one worker slot's current disposition.
type SlotStats struct {
	ID      string `json:"id"`
	Breaker string `json:"breaker"` // closed | open | half-open
	// Peer is the remote address the slot's worker is connected to (empty
	// for local workers or a slot between workers).
	Peer string `json:"peer,omitempty"`
	Dead bool   `json:"dead,omitempty"`
}

// Stats is a point-in-time snapshot of the coordinator.
type Stats struct {
	WorkersAlive int64       `json:"workers_alive"`
	Pending      int64       `json:"pending"`
	Retries      uint64      `json:"retries"`
	Hedges       uint64      `json:"hedges"`
	Shed         uint64      `json:"shed"`
	Restarts     uint64      `json:"worker_restarts"`
	BreakerTrips uint64      `json:"breaker_trips"`
	DedupHits    uint64      `json:"dedup_hits"`
	Cache        lru.Stats   `json:"cache"`
	Slots        []SlotStats `json:"slots,omitempty"`
}

// Snapshot reports the coordinator's counters and per-slot state.
func (co *Coordinator) Snapshot() Stats {
	st := Stats{
		WorkersAlive: co.alive.Load(),
		Pending:      co.pending.Load(),
		Retries:      co.mRetries.Value(),
		Hedges:       co.mHedges.Value(),
		Shed:         co.mShed.Value(),
		Restarts:     co.mRestarts.Value(),
		BreakerTrips: co.mBreakerTrips.Value(),
		DedupHits:    co.mDedupHits.Value(),
		Cache:        co.cache.Stats(),
	}
	for _, s := range co.slots {
		s.mu.Lock()
		w := s.w
		dead := s.dead
		s.mu.Unlock()
		ss := SlotStats{ID: s.id, Breaker: s.br.current().String(), Dead: dead}
		if a, ok := w.(Addressable); ok {
			ss.Peer = a.Addr()
		}
		st.Slots = append(st.Slots, ss)
	}
	return st
}
