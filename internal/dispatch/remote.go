package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"levioso/internal/engine"
	"levioso/internal/obs"
)

// RemoteConfig tunes the coordinator side of the TCP worker transport. The
// zero value is usable.
type RemoteConfig struct {
	// DialTimeout bounds one TCP connect. Default 5s.
	DialTimeout time.Duration
	// RedialBackoff is the base delay before redialing a peer that just
	// failed, doubled per consecutive failure up to RedialMax, with ±50%
	// seeded jitter. Defaults 100ms / 10s.
	RedialBackoff time.Duration
	RedialMax     time.Duration
	// HeartbeatTimeout is how long a connection may go without any frame
	// (heartbeat or response) during a call before the peer is declared
	// partitioned. 0 derives it from the worker's advertised heartbeat
	// interval (3×, min 1s); workers that advertise no heartbeats get no
	// partition watchdog (calls still fail on socket death and ctx expiry).
	HeartbeatTimeout time.Duration
	// Seed drives the redial jitter. Default 1 — deterministic by default,
	// like every other seed in the system.
	Seed int64
	// WrapConn, when non-nil, decorates every dialed connection — the
	// faultinject seam for network chaos.
	WrapConn func(net.Conn) net.Conn
	// Registry receives the per-peer metric families. Default obs.Default().
	Registry *obs.Registry
}

func (c *RemoteConfig) withDefaults() RemoteConfig {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	if out.RedialBackoff <= 0 {
		out.RedialBackoff = 100 * time.Millisecond
	}
	if out.RedialMax <= 0 {
		out.RedialMax = 10 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Registry == nil {
		out.Registry = obs.Default()
	}
	return out
}

// PeerStats is a point-in-time view of one remote worker address — the
// operator's answer to "which host is degraded" without scraping /metrics.
type PeerStats struct {
	Addr      string `json:"addr"`
	Connected int64  `json:"connected"` // live connections (worker slots) to this peer
	Dials     uint64 `json:"dials"`
	DialFails uint64 `json:"dial_failures"`
	// Reconnects counts connections re-established after a previous
	// connection to this peer was lost.
	Reconnects uint64 `json:"reconnects"`
	// Partitions counts heartbeat-watchdog trips: the peer stopped talking
	// mid-call without closing the socket.
	Partitions uint64 `json:"partitions"`
	// CacheHits counts results this peer served from its daemon-wide shared
	// result cache (advertised back on the wire).
	CacheHits  uint64 `json:"cache_hits"`
	Heartbeats uint64 `json:"heartbeats"`
	// HeartbeatAgeMS is the time since any frame arrived from this peer;
	// -1 when nothing has ever been heard.
	HeartbeatAgeMS int64  `json:"heartbeat_age_ms"`
	LastError      string `json:"last_error,omitempty"`
}

// peer is the fleet's per-address state: dial backoff, lifetime counters,
// and the last-heard clock feeding PeerStats.
type peer struct {
	addr string

	mu          sync.Mutex
	consecFails int
	nextDial    time.Time
	lostConns   int // connections lost, not yet matched by a reconnect
	everUp      bool
	lastErr     string

	dials      atomic.Uint64
	dialFails  atomic.Uint64
	reconnects atomic.Uint64
	partitions atomic.Uint64
	cacheHits  atomic.Uint64
	heartbeats atomic.Uint64
	live       atomic.Int64
	lastHeard  atomic.Int64 // unix nanos of the latest frame; 0 = never
}

// RemoteFleet turns a set of worker-daemon addresses into a Spawner: each
// spawn dials the next address round-robin (skipping peers still serving a
// redial backoff), performs the hello handshake, and returns a Worker whose
// calls ride that one connection. Connection loss is the stdio abandoned-call
// discipline extended to socket death: the worker poisons itself, the
// coordinator's restart path calls the Spawner again, and the fleet's
// per-peer backoff keeps a down host from eating the crash-loop budget in a
// tight dial loop.
type RemoteFleet struct {
	cfg   RemoteConfig
	peers []*peer
	next  atomic.Uint64

	jmu sync.Mutex
	jit *rand.Rand

	mDials      *obs.CounterVec
	mDialFails  *obs.CounterVec
	mReconnects *obs.CounterVec
	mPartitions *obs.CounterVec
	mCacheHits  *obs.CounterVec
	mHeartbeats *obs.CounterVec
	mConnected  *obs.GaugeVec
}

// NewRemote builds a fleet over the given worker addresses.
func NewRemote(cfg RemoteConfig, addrs ...string) (*RemoteFleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dispatch: remote fleet needs at least one address")
	}
	c := cfg.withDefaults()
	f := &RemoteFleet{cfg: c, jit: rand.New(rand.NewSource(c.Seed))}
	for _, a := range addrs {
		f.peers = append(f.peers, &peer{addr: a})
	}
	r := c.Registry
	f.mDials = r.CounterVec("dispatch_remote_dials_total", "TCP dials attempted per worker peer.", "peer")
	f.mDialFails = r.CounterVec("dispatch_remote_dial_failures_total", "TCP dials failed per worker peer.", "peer")
	f.mReconnects = r.CounterVec("dispatch_remote_reconnects_total", "Connections re-established after loss, per peer.", "peer")
	f.mPartitions = r.CounterVec("dispatch_remote_partitions_total", "Heartbeat-watchdog partition detections per peer.", "peer")
	f.mCacheHits = r.CounterVec("dispatch_remote_cache_hits_total", "Worker-daemon shared-cache hits advertised per peer.", "peer")
	f.mHeartbeats = r.CounterVec("dispatch_remote_heartbeats_total", "Heartbeat frames received per peer.", "peer")
	f.mConnected = r.GaugeVec("dispatch_remote_connected", "Live connections per worker peer.", "peer")
	return f, nil
}

// Remote is the convenience form: a Spawner over the addresses with default
// lifecycle tuning.
func Remote(addrs ...string) Spawner {
	f, err := NewRemote(RemoteConfig{}, addrs...)
	if err != nil {
		return func(context.Context) (Worker, error) { return nil, err }
	}
	return f.Spawner()
}

// Spawner adapts the fleet to the coordinator's worker-creation seam.
func (f *RemoteFleet) Spawner() Spawner { return f.spawn }

// Peers snapshots every peer's connection state.
func (f *RemoteFleet) Peers() []PeerStats {
	out := make([]PeerStats, 0, len(f.peers))
	for _, p := range f.peers {
		p.mu.Lock()
		lastErr := p.lastErr
		p.mu.Unlock()
		age := int64(-1)
		if heard := p.lastHeard.Load(); heard != 0 {
			age = time.Since(time.Unix(0, heard)).Milliseconds()
		}
		out = append(out, PeerStats{
			Addr:           p.addr,
			Connected:      p.live.Load(),
			Dials:          p.dials.Load(),
			DialFails:      p.dialFails.Load(),
			Reconnects:     p.reconnects.Load(),
			Partitions:     p.partitions.Load(),
			CacheHits:      p.cacheHits.Load(),
			Heartbeats:     p.heartbeats.Load(),
			HeartbeatAgeMS: age,
			LastError:      lastErr,
		})
	}
	return out
}

// spawn dials one worker connection: round-robin over peers whose backoff
// has elapsed, or — when every peer is backing off — a bounded wait for the
// soonest one. At most one dial attempt per peer per spawn; persistent
// failure is reported to the coordinator, whose crash-loop budget remains
// the final arbiter of giving up.
func (f *RemoteFleet) spawn(ctx context.Context) (Worker, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(f.peers)
	start := int(f.next.Add(1)-1) % n
	now := time.Now()
	var lastErr error
	var soonest *peer
	var soonestAt time.Time
	for i := 0; i < n; i++ {
		p := f.peers[(start+i)%n]
		p.mu.Lock()
		at := p.nextDial
		p.mu.Unlock()
		if at.After(now) {
			if soonest == nil || at.Before(soonestAt) {
				soonest, soonestAt = p, at
			}
			continue
		}
		w, err := f.dial(ctx, p)
		if err == nil {
			return w, nil
		}
		lastErr = err
	}
	if lastErr == nil && soonest != nil {
		// Every peer is in backoff: wait out the shortest one, then one try.
		t := time.NewTimer(time.Until(soonestAt))
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, transportErr("spawn cancelled: %v", ctx.Err())
		}
		w, err := f.dial(ctx, soonest)
		if err == nil {
			return w, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// dial connects, decorates, and handshakes one peer, updating its backoff
// state either way.
func (f *RemoteFleet) dial(ctx context.Context, p *peer) (Worker, error) {
	p.dials.Add(1)
	f.mDials.With(p.addr).Inc()
	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, f.dialFailed(p, transportErr("dial %s: %v", p.addr, err))
	}
	if f.cfg.WrapConn != nil {
		conn = f.cfg.WrapConn(conn)
	}
	w, err := newRemoteWorker(ctx, f, p, conn)
	if err != nil {
		return nil, f.dialFailed(p, err)
	}
	f.dialSucceeded(p)
	return w, nil
}

// dialFailed records a failure and arms the peer's exponential backoff.
func (f *RemoteFleet) dialFailed(p *peer, err error) error {
	p.dialFails.Add(1)
	f.mDialFails.With(p.addr).Inc()
	p.mu.Lock()
	p.consecFails++
	shift := p.consecFails - 1
	if shift > 10 {
		shift = 10
	}
	delay := f.cfg.RedialBackoff << shift
	if delay > f.cfg.RedialMax {
		delay = f.cfg.RedialMax
	}
	f.jmu.Lock()
	jitter := time.Duration(f.jit.Int63n(int64(delay))) - delay/2
	f.jmu.Unlock()
	p.nextDial = time.Now().Add(delay + jitter)
	p.lastErr = err.Error()
	p.mu.Unlock()
	return err
}

// dialSucceeded resets the peer's backoff and settles reconnect accounting.
func (f *RemoteFleet) dialSucceeded(p *peer) {
	p.mu.Lock()
	p.consecFails = 0
	p.nextDial = time.Time{}
	p.lastErr = ""
	if p.everUp && p.lostConns > 0 {
		p.lostConns--
		p.reconnects.Add(1)
		f.mReconnects.With(p.addr).Inc()
	}
	p.everUp = true
	p.mu.Unlock()
	f.mConnected.With(p.addr).Set(p.live.Add(1))
}

// connLost records a dropped connection; the next successful dial to the
// peer counts as a reconnect.
func (f *RemoteFleet) connLost(p *peer) {
	f.mConnected.With(p.addr).Set(p.live.Add(-1))
	p.mu.Lock()
	p.lostConns++
	p.mu.Unlock()
}

// ---- remote worker ----

// remoteWorker is one coordinator-side connection to a worker daemon. It
// follows the stdio client discipline — strictly sequential calls, poisoning
// on abandonment or any framing surprise — plus two TCP-only behaviors: the
// read loop filters heartbeat frames, and a watchdog declares the peer
// partitioned when nothing (heartbeat or response) arrives for the
// heartbeat timeout, so a silently dropped peer fails the call instead of
// hanging the batch until ctx expiry.
type remoteWorker struct {
	f    *RemoteFleet
	p    *peer
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner

	hbTimeout time.Duration
	lastHeard atomic.Int64 // unix nanos; this connection only (the watchdog's clock)

	nextID   atomic.Uint64
	poisoned atomic.Bool
	killOnce sync.Once

	mu sync.Mutex
}

// Addr reports the peer address this worker is connected to (the
// Addressable seam for per-slot stats).
func (w *remoteWorker) Addr() string { return w.p.addr }

// newRemoteWorker performs the hello handshake on a fresh connection. The
// handshake read runs in a goroutine bounded by helloTimeout and ctx — the
// connection may be wrapped by a fault injector whose reads ignore socket
// deadlines, so the timer, not a read deadline, is the backstop (Close
// unblocks any reader).
func newRemoteWorker(ctx context.Context, f *RemoteFleet, p *peer, conn net.Conn) (*remoteWorker, error) {
	w := &remoteWorker{f: f, p: p, conn: conn, enc: json.NewEncoder(conn)}
	w.sc = bufio.NewScanner(conn)
	w.sc.Buffer(make([]byte, 0, 64<<10), maxFrameBytes)

	hello := make(chan error, 1)
	go func() {
		if !w.sc.Scan() {
			hello <- transportErr("%s closed before hello: %v", p.addr, w.sc.Err())
			return
		}
		w.heard()
		var h wireHello
		if err := json.Unmarshal(w.sc.Bytes(), &h); err != nil || h.Hello == nil {
			hello <- transportErr("bad hello frame from %s", p.addr)
			return
		}
		if h.Hello.SchemaVersion != WireSchemaVersion {
			hello <- transportErr("%s speaks wire schema %d, coordinator speaks %d",
				p.addr, h.Hello.SchemaVersion, WireSchemaVersion)
			return
		}
		if f.cfg.HeartbeatTimeout > 0 {
			w.hbTimeout = f.cfg.HeartbeatTimeout
		} else if h.Hello.HBMillis > 0 {
			w.hbTimeout = 3 * time.Duration(h.Hello.HBMillis) * time.Millisecond
			if w.hbTimeout < time.Second {
				w.hbTimeout = time.Second
			}
		}
		hello <- nil
	}()
	timer := time.NewTimer(helloTimeout)
	defer timer.Stop()
	select {
	case err := <-hello:
		if err != nil {
			conn.Close()
			return nil, err
		}
		return w, nil
	case <-ctx.Done():
		conn.Close()
		return nil, transportErr("spawn cancelled: %v", ctx.Err())
	case <-timer.C:
		conn.Close()
		return nil, transportErr("hello from %s timed out after %v", p.addr, helloTimeout)
	}
}

// heard stamps both the connection's watchdog clock and the peer's
// stats-facing one.
func (w *remoteWorker) heard() {
	now := time.Now().UnixNano()
	w.lastHeard.Store(now)
	w.p.lastHeard.Store(now)
}

// call ships one frame and waits for its non-heartbeat reply. The reader
// goroutine consumes heartbeats; the watchdog poisons the worker when the
// connection goes silent past the heartbeat timeout. Any failure closes the
// connection — unlike a stdio worker there is no process to reap, so Kill
// here is just the socket teardown that unblocks the reader.
func (w *remoteWorker) call(ctx context.Context, req wireRequest) (*wireResponse, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned.Load() {
		return nil, transportErr("worker %s poisoned by an earlier failure", w.p.addr)
	}
	req.ID = w.nextID.Add(1)
	// The watchdog measures silence within this call, not across idle gaps
	// (heartbeats queued while idle are only drained once a reader runs).
	w.heard()

	type outcome struct {
		resp *wireResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		if err := w.enc.Encode(req); err != nil {
			ch <- outcome{nil, transportErr("write to %s: %v", w.p.addr, err)}
			return
		}
		for {
			if !w.sc.Scan() {
				ch <- outcome{nil, transportErr("stream from %s ended: %v", w.p.addr, w.sc.Err())}
				return
			}
			w.heard()
			var resp wireResponse
			if err := json.Unmarshal(w.sc.Bytes(), &resp); err != nil {
				ch <- outcome{nil, transportErr("corrupt frame from %s: %v", w.p.addr, err)}
				return
			}
			if resp.HB {
				w.p.heartbeats.Add(1)
				w.f.mHeartbeats.With(w.p.addr).Inc()
				continue
			}
			ch <- outcome{&resp, nil}
			return
		}
	}()

	var wdC <-chan time.Time
	if w.hbTimeout > 0 {
		tick := w.hbTimeout / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		wd := time.NewTicker(tick)
		defer wd.Stop()
		wdC = wd.C
	}
	for {
		select {
		case <-ctx.Done():
			// Same rule as stdio: no cancel frame exists, the stream
			// position is unknown, the connection is done for.
			w.poison()
			return nil, transportErr("call to %s abandoned: %v", w.p.addr, ctx.Err())
		case <-wdC:
			if time.Since(time.Unix(0, w.lastHeard.Load())) > w.hbTimeout {
				w.p.partitions.Add(1)
				w.f.mPartitions.With(w.p.addr).Inc()
				w.poison()
				return nil, transportErr("peer %s partitioned: no frames for %v", w.p.addr, w.hbTimeout)
			}
		case out := <-ch:
			if out.err != nil {
				w.poison()
				return nil, out.err
			}
			if out.resp.ID != req.ID {
				w.poison()
				return nil, transportErr("frame id mismatch from %s: got %d, want %d", w.p.addr, out.resp.ID, req.ID)
			}
			return out.resp, nil
		}
	}
}

// poison marks the worker untrusted and tears the socket down (unblocking
// the reader goroutine).
func (w *remoteWorker) poison() {
	w.poisoned.Store(true)
	w.Kill()
}

func (w *remoteWorker) Execute(ctx context.Context, c *Cell) (*engine.Result, error) {
	req, err := c.request()
	if err != nil {
		return nil, err
	}
	resp, err := w.call(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != nil {
		return nil, errorFromWire(resp.Error)
	}
	res := &engine.Result{ExitCode: resp.Exit, Output: resp.Output}
	if resp.Stats != nil {
		res.Stats = *resp.Stats
	}
	if resp.Cached {
		res.Cached = true
		w.p.cacheHits.Add(1)
		w.f.mCacheHits.With(w.p.addr).Inc()
	}
	return res, nil
}

func (w *remoteWorker) Ping(ctx context.Context) error {
	resp, err := w.call(ctx, wireRequest{Ping: true})
	if err != nil {
		return err
	}
	if !resp.Pong {
		w.poison()
		return transportErr("ping to %s answered without pong", w.p.addr)
	}
	return nil
}

func (w *remoteWorker) Kill() {
	w.killOnce.Do(func() {
		w.poisoned.Store(true)
		w.conn.Close()
		w.f.connLost(w.p)
	})
}

func (w *remoteWorker) Close() error {
	// Closing the socket is the clean shutdown signal too: the daemon's
	// serve loop exits on EOF and keeps the daemon itself running.
	w.Kill()
	return nil
}
