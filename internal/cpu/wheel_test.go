package cpu

import (
	"testing"

	"levioso/internal/asm"
)

// The completion wheel keeps instructions whose latency exceeds the wheel
// circumference (wheelSize cycles) in their bucket across laps. These tests
// pin down lap survival and the Seq-order drain the complete stage relies on.

// TestWheelLapSurvivalAndSeqOrder drives the bucket logic directly: two
// instructions due this lap (scheduled out of order) must drain sorted by
// Seq, an instruction one full lap later must stay parked, and a recycled
// (squashed) instruction's stale entry must be dropped.
func TestWheelLapSurvivalAndSeqOrder(t *testing.T) {
	c := wildCore(t)
	const due = 5220 // bucket index due & wheelMask

	older := wildInst(c, 3, 0, 0)
	older.DoneCycle = due
	younger := wildInst(c, 5, 0, 0)
	younger.DoneCycle = due
	lapper := wildInst(c, 4, 0, 0)
	lapper.DoneCycle = due + wheelSize // same bucket, next lap

	stale := wildInst(c, 6, 0, 0)
	stale.DoneCycle = due

	// Schedule in scrambled order; the drain must still be Seq-sorted.
	c.schedule(younger)
	c.schedule(lapper)
	c.schedule(stale)
	c.schedule(older)
	c.freeInst(stale) // squashed and recycled: its wheel entry is now stale

	c.cycle = due
	got := c.dueNow()
	if len(got) != 2 || got[0] != older || got[1] != younger {
		t.Fatalf("lap 1 drain = %v entries, want [seq 3, seq 5] in order", seqs(got))
	}

	c.cycle = due + wheelSize
	got = c.dueNow()
	if len(got) != 1 || got[0] != lapper {
		t.Fatalf("lap 2 drain = %v, want [seq 4] after surviving a full lap", seqs(got))
	}
	if rest := c.dueNow(); len(rest) != 0 {
		t.Fatalf("bucket not empty after lap 2: %v", seqs(rest))
	}
}

func seqs(ds []*DynInst) []uint64 {
	out := make([]uint64, len(ds))
	for i, d := range ds {
		out[i] = d.Seq
	}
	return out
}

// TestWheelMultiLapLatencyCompletes runs a whole program whose multiply
// latency exceeds the wheel circumference several times over: every mul
// parks in its bucket for 3+ laps and the dependent chain must still commit
// in program order with the correct architectural result.
func TestWheelMultiLapLatencyCompletes(t *testing.T) {
	prog := asm.MustAssemble("t.s", `
main:
	li t0, 6
	li t1, 7
	mul t2, t0, t1     # latency > 3 wheel laps
	mul t3, t2, t0     # dependent: waits out another 3+ laps
	addi t4, t3, 0
	halt t4            # 6*7*6 = 252
`)
	cfg := DefaultConfig()
	cfg.MulLatency = 3*wheelSize + 129 // 3201 cycles: three full laps plus a partial
	cfg.WatchdogCycles = -1            // no commits while the muls are in flight
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 252 {
		t.Errorf("exit = %d, want 252", res.ExitCode)
	}
	if res.Stats.Cycles < 2*uint64(cfg.MulLatency) {
		t.Errorf("cycles = %d: dependent muls cannot both have paid %d-cycle latency",
			res.Stats.Cycles, cfg.MulLatency)
	}
}

// TestWheelLapUnderCommitStall holds commit frozen for multiple wheel
// circumferences (a faultinject-style CommitStall) while a long-latency
// divide is in flight; the pipeline must neither lose the completion nor
// commit out of order once the stall lifts.
func TestWheelLapUnderCommitStall(t *testing.T) {
	prog := asm.MustAssemble("t.s", `
main:
	li t0, 1000000
	li t1, 7
	div t2, t0, t1
	addi t3, t2, 1
	halt t3            # 142857+1
`)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = -1
	cfg.CommitStall = func(cycle uint64) bool { return cycle < 3*wheelSize }
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 142858 {
		t.Errorf("exit = %d, want 142858", res.ExitCode)
	}
	if res.Stats.Cycles < 3*wheelSize {
		t.Errorf("cycles = %d, want >= %d (commit was frozen that long)", res.Stats.Cycles, 3*wheelSize)
	}
}
