package cpu

import "levioso/internal/mem"

// MemSystem is the cache-hierarchy service the core consumes. *mem.Hierarchy
// is the canonical implementation; fault injectors and instrumentation wrap
// it (Config.WrapMem) to interpose on latencies and fills without the core
// noticing.
type MemSystem interface {
	// FetchLatency performs an instruction fetch at addr: returns the access
	// latency and fills the I-side caches.
	FetchLatency(addr uint64) int
	// LoadLatency performs a visible data access at addr.
	LoadLatency(addr uint64) int
	// InvisibleLoadLatency computes the latency a load would incur right now
	// without changing any cache state.
	InvisibleLoadLatency(addr uint64) int
	// FillVisible makes addr's line resident in the D-side hierarchy without
	// charging latency.
	FillVisible(addr uint64)
	// Flush evicts addr's line from the D-side hierarchy.
	Flush(addr uint64)
	// ProbeD reports whether addr is resident in L1D without perturbation.
	ProbeD(addr uint64) bool
	// Stats snapshots the per-level hit/miss counters.
	Stats() mem.HierStats
}

// BranchPredictor is the front-end prediction service the core consumes.
// *Predictor is the canonical implementation; wrappers (Config.WrapPred)
// interpose to inject mispredict storms or record prediction streams.
type BranchPredictor interface {
	// PredictBranch predicts a conditional branch's direction and returns the
	// PHT index for the commit-time update.
	PredictBranch(pc uint64) (taken bool, phtIdx int)
	// UpdateBranch trains the direction predictor at commit time.
	UpdateBranch(phtIdx int, taken bool)
	// PredictIndirect predicts a JALR target; ok is false on a BTB miss.
	PredictIndirect(pc uint64) (uint64, bool)
	// UpdateIndirect trains the BTB at commit time.
	UpdateIndirect(pc, target uint64)
	// PushRAS records a return address at a call.
	PushRAS(addr uint64)
	// PopRAS predicts a return target.
	PopRAS() uint64
	// Checkpoint captures speculative state at a control instruction.
	Checkpoint() PredCheckpoint
	// CheckpointInto captures the same state into an existing checkpoint,
	// reusing its buffers — the allocation-free form the core's fetch stage
	// calls. Wrappers that embed a BranchPredictor inherit it.
	CheckpointInto(cp *PredCheckpoint)
	// Recover restores a checkpoint and re-applies the actual outcome.
	Recover(cp PredCheckpoint, isCond, actualTaken bool)
}

var (
	_ MemSystem       = (*mem.Hierarchy)(nil)
	_ BranchPredictor = (*Predictor)(nil)
)
