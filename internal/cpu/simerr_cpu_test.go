package cpu

// Typed-error coverage for the core's abort paths: every way a run can die
// must surface a *simerr.RunError carrying the right kind, classification
// and run context, because the sweep supervisor's retry/degrade decisions
// key off them.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"levioso/internal/asm"
	"levioso/internal/simerr"
)

const busyLoopSrc = `
main:
	li t0, 100000
l:	addi t0, t0, -1
	bnez t0, l
	halt zero
`

func TestWatchdogTypedError(t *testing.T) {
	prog := asm.MustAssemble("t.s", busyLoopSrc)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 500
	// Freeze commit unconditionally: the pipeline keeps fetching and issuing
	// but nothing retires, which is exactly the hang the watchdog guards.
	cfg.CommitStall = func(uint64) bool { return true }
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if !errors.Is(err, simerr.ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", err)
	}
	var re *simerr.RunError
	if !errors.As(err, &re) {
		t.Fatalf("no RunError in chain: %v", err)
	}
	if re.Transient() {
		t.Error("watchdog must be permanent (deterministic sim reproduces it)")
	}
	if re.Cycle == 0 {
		t.Error("watchdog error lost the cycle context")
	}
	// deadlockInfo describes the stuck ROB head so failures are debuggable
	// from the error string alone.
	if !strings.Contains(re.Detail, "head seq=") && !strings.Contains(re.Detail, "window empty") {
		t.Errorf("watchdog detail lacks deadlock info: %q", re.Detail)
	}
}

func TestCycleLimitTypedError(t *testing.T) {
	prog := asm.MustAssemble("t.s", busyLoopSrc)
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if !errors.Is(err, simerr.ErrCycleLimit) {
		t.Fatalf("want ErrCycleLimit, got %v", err)
	}
	if simerr.Transient(err) {
		t.Error("cycle limit must be permanent")
	}
	var re *simerr.RunError
	if !errors.As(err, &re) || !strings.Contains(re.Detail, "cycle limit") {
		t.Errorf("cycle-limit detail missing: %v", err)
	}
}

func TestInstLimitTypedError(t *testing.T) {
	prog := asm.MustAssemble("t.s", busyLoopSrc)
	cfg := DefaultConfig()
	cfg.MaxInsts = 50
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if !errors.Is(err, simerr.ErrInstLimit) {
		t.Fatalf("want ErrInstLimit, got %v", err)
	}
}

func TestRunContextDeadlineTypedError(t *testing.T) {
	prog := asm.MustAssemble("t.s", busyLoopSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the first deadline check must abort the run
	c, err := New(prog, DefaultConfig(), NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunContext(ctx)
	if !errors.Is(err, simerr.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !simerr.Transient(err) {
		t.Error("deadline must be transient (a slow host is retryable)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("deadline error must wrap the context cause")
	}
}

func TestRunContextNilAndBackgroundComplete(t *testing.T) {
	prog := asm.MustAssemble("t.s", busyLoopSrc)
	for _, ctx := range []context.Context{nil, context.Background()} {
		c, err := New(prog, DefaultConfig(), NopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunContext(ctx)
		if err != nil {
			t.Fatalf("unbounded RunContext failed: %v", err)
		}
		if res.ExitCode != 0 {
			t.Errorf("exit = %d, want 0", res.ExitCode)
		}
	}
}
