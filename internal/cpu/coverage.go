package cpu

import (
	"math/bits"

	"levioso/internal/isa"
)

// Coverage event classes. Each observed microarchitectural event is folded
// into the sink as hash(class, site, outcome) — the site is the static
// instruction index, so the same event at a different program point is a
// different coverage bit, and the outcome disambiguates e.g. a taken from a
// mispredicted branch at one site.
const (
	covBranch     uint64 = iota // conditional/indirect commit: taken/mispredict bits
	covSquash                   // misprediction recovery: log2 squash depth
	covPolicyWait               // policy Decide returned Wait at this site
	covLoad                     // load commit: forwarded/invisible bits
	covAlias                    // LQ/SQ partial-overlap stall at this load
	covTaint                    // secret taint propagated into this destination
	covTransmit                 // transmitter commit: restricted/speculative bits
)

// CoverageWords sizes the coverage signature: 128 words = 8192 bits, the
// same order of magnitude as an AFL edge map scaled to the generator's
// program sizes (hundreds of static instructions, a handful of event
// classes and outcomes per site).
const CoverageWords = 128

// CoverageSink is a compact microarchitectural coverage signature: one bit
// per observed (event class, site, outcome) triple. Attach one via
// Config.Coverage to have the core record which speculation-relevant events
// a run actually exercised — branch outcomes, squash depths, policy
// restriction decisions, store-to-load alias stalls, secret-taint
// propagation. Marking is branch-free bit arithmetic on a fixed array; the
// hot loop pays a single predictable nil check per event site when no sink
// is attached.
//
// A sink is plain data with no interior pointers, so callers may copy,
// compare and serialize it freely. It is not safe for concurrent use by
// multiple cores; give each core its own sink and merge with Or.
type CoverageSink struct {
	Bits [CoverageWords]uint64
}

// mark folds one event into the signature. The mixer is the splitmix64
// finalizer over the packed triple — cheap, and consecutive sites spread
// across the whole map.
func (s *CoverageSink) mark(class, site, outcome uint64) {
	z := class<<40 ^ site<<8 ^ outcome
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s.Bits[(z>>6)%CoverageWords] |= 1 << (z & 63)
}

// Or merges another signature into s.
func (s *CoverageSink) Or(t *CoverageSink) {
	for i := range s.Bits {
		s.Bits[i] |= t.Bits[i]
	}
}

// Count returns the signature's population (set bits).
func (s *CoverageSink) Count() int {
	n := 0
	for _, w := range s.Bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// NewBits reports whether t contains any bit not already set in s.
func (s *CoverageSink) NewBits(t *CoverageSink) bool {
	for i, w := range t.Bits {
		if w&^s.Bits[i] != 0 {
			return true
		}
	}
	return false
}

// Reset clears the signature.
func (s *CoverageSink) Reset() { s.Bits = [CoverageWords]uint64{} }

// covBit packs a bool into an outcome bit.
func covBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// covSite maps a dynamic instruction onto its static coverage site (the
// text index of its PC).
func covSite(d *DynInst) uint64 {
	return (d.PC - isa.TextBase) / isa.InstBytes
}

// log2Bucket buckets a squash depth into its log2 class, so "squashed 3"
// and "squashed 200" are different coverage outcomes without one bit per
// possible depth.
func log2Bucket(n int) uint64 {
	return uint64(bits.Len(uint(n)))
}
