package cpu

import "math/bits"

// The completion wheel makes the writeback/recovery stage event-driven.
// Instead of scanning the whole ROB every cycle for instructions whose
// DoneCycle is now (O(window) per cycle, the classic gem5-class cost), the
// core files every executing instruction into a bucket keyed by the low bits
// of its completion cycle and the complete stage touches exactly one bucket
// per cycle. Latencies longer than the wheel circumference simply stay in
// their bucket across laps (one compare per lap); determinism is preserved
// by draining each bucket in sequence-number order, which is identical to
// the ROB order the scan-based stage used.

const (
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// wheelEntry is one scheduled completion. gen snapshots the instruction's
// recycle generation at schedule time: a squashed instruction is recycled
// (gen bumped) without touching the wheel, and its stale entry is dropped
// lazily when the bucket next comes around.
type wheelEntry struct {
	d   *DynInst
	gen uint32
}

// schedule files d to complete at d.DoneCycle.
func (c *Core) schedule(d *DynInst) {
	b := d.DoneCycle & wheelMask
	c.wheel[b] = append(c.wheel[b], wheelEntry{d: d, gen: d.gen})
	c.bucketBits[b>>6] |= 1 << (b & 63)
}

// dueNow drains the current cycle's bucket into c.dueBuf, in program
// (sequence) order, dropping stale entries and re-arming wheel laps.
func (c *Core) dueNow() []*DynInst {
	bucket := c.wheel[c.cycle&wheelMask]
	if len(bucket) == 0 {
		return nil
	}
	due := c.dueBuf[:0]
	keep := bucket[:0]
	for _, e := range bucket {
		if e.gen != e.d.gen {
			continue // squashed and recycled since scheduling: drop
		}
		if e.d.DoneCycle != c.cycle {
			keep = append(keep, e) // latency ≥ wheelSize: next lap
			continue
		}
		due = append(due, e.d)
	}
	c.wheel[c.cycle&wheelMask] = keep
	if len(keep) == 0 {
		b := c.cycle & wheelMask
		c.bucketBits[b>>6] &^= 1 << (b & 63)
	}
	c.dueBuf = due

	// Insertion sort by Seq: bucket order is issue order, and the oldest
	// mispredict must be selected and slots resolved oldest-first exactly as
	// the ROB scan did. Buckets hold at most a few in-flight completions.
	for i := 1; i < len(due); i++ {
		d := due[i]
		j := i - 1
		for j >= 0 && due[j].Seq > d.Seq {
			due[j+1] = due[j]
			j--
		}
		due[j+1] = d
	}
	return due
}

// wheelNext returns the cycle of the nearest bucket (in ring order, strictly
// after the current cycle's position) that holds any entry, and whether one
// exists. That cycle upper-bounds when the next completion can happen: no
// bucket position crossed before it holds anything, so every skipped-over
// cycle's complete stage would have found an empty bucket. The target bucket
// itself may hold only later-lap or stale entries — landing there and finding
// nothing due is harmless (the cycle is idle again and the skip repeats),
// and draining the bucket at that cycle is exactly what per-cycle stepping
// would have done.
func (c *Core) wheelNext() (uint64, bool) {
	best := uint64(0)
	found := false
	for wi, w := range c.bucketBits {
		for w != 0 {
			q := uint64(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			delta := (q - c.cycle) & wheelMask
			if delta == 0 {
				delta = wheelSize // current position: due again next lap
			}
			if t := c.cycle + delta; !found || t < best {
				best, found = t, true
			}
		}
	}
	return best, found
}
