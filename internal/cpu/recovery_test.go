package cpu

import (
	"errors"
	"testing"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/simerr"
)

// TestSquashedDivReleasesDivider is the regression test for the recovery bug
// where recoverFrom never reset divBusyUntil: a wrong-path DIV that had
// grabbed the unpipelined divider kept it busy for its full operand-dependent
// latency, stalling correct-path divides after the squash.
//
// The program takes a branch that gshare (cold PHT) predicts not-taken, so
// the fall-through DIV issues on the wrong path and occupies the divider for
// DivLatencyBase cycles before the branch resolves. With the fix, recovery
// releases the divider and the correct-path DIV runs immediately; without it
// the run takes > DivLatencyBase cycles.
func TestSquashedDivReleasesDivider(t *testing.T) {
	prog := asm.MustAssemble("divsquash.s", `
main:
	li t0, 1
	li t1, 100
	li t2, 7
	bne t0, zero, good   # taken; cold gshare predicts not-taken
	div t3, t1, t2       # wrong path: grabs the divider
	halt zero
good:
	div a0, t1, t2       # correct path: needs the divider
	halt a0              # 100/7 = 14
`)
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DivLatencyBase = 5000
	cfg.DivLatencyRange = 0
	cfg.MaxCycles = 100_000
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ExitCode != 14 {
		t.Errorf("exit = %d, want 14", res.ExitCode)
	}
	// The correct-path divide itself costs DivLatencyBase cycles; the bug
	// doubles that by making it first wait out the squashed divide's latency.
	if res.Stats.Cycles >= uint64(3*cfg.DivLatencyBase/2) {
		t.Errorf("run took %d cycles; squashed divide is still blocking the divider (fixed cost ~%d, buggy ~%d)",
			res.Stats.Cycles, cfg.DivLatencyBase, 2*cfg.DivLatencyBase)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("post-run invariants: %v", err)
	}
}

// TestWatchdogDisableSentinel checks the -1 sentinel: a run whose commit
// legitimately stalls longer than the default watchdog threshold completes
// with WatchdogCycles = -1, trips the watchdog with the default, and Validate
// rejects other negative values.
func TestWatchdogDisableSentinel(t *testing.T) {
	bad := DefaultConfig()
	bad.WatchdogCycles = -2
	if err := bad.Validate(); err == nil {
		t.Error("WatchdogCycles = -2 passed Validate")
	}

	prog := asm.MustAssemble("slowdiv.s", `
main:
	li t1, 100
	li t2, 7
	div a0, t1, t2
	halt a0
`)
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	run := func(watchdog int64) (Result, error) {
		cfg := DefaultConfig()
		cfg.DivLatencyBase = 150_000 // longer than the 100k default threshold
		cfg.DivLatencyRange = 0
		cfg.MaxCycles = 1_000_000
		cfg.WatchdogCycles = watchdog
		c, err := New(prog, cfg, NopPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}
	if _, err := run(0); !errors.Is(err, simerr.ErrWatchdog) {
		t.Errorf("default watchdog: want ErrWatchdog during the long divide, got %v", err)
	}
	res, err := run(-1)
	if err != nil {
		t.Fatalf("disabled watchdog: %v", err)
	}
	if res.ExitCode != 14 {
		t.Errorf("exit = %d, want 14", res.ExitCode)
	}
}
