package cpu

import (
	"fmt"

	"levioso/internal/isa"
)

// Core-owned free lists for the two objects the front end used to heap-
// allocate per dynamic instruction: DynInst and Checkpoint. The core is
// single-threaded, so a plain slice stack beats sync.Pool (no per-P caches,
// no GC clearing, deterministic reuse). Objects are reset on reuse, not on
// free, so the squash path stays cheap; the recycle generation counter lets
// the completion wheel detect stale references without the squash path ever
// touching the wheel.

// newDynInst returns a reset instruction object for fetch, reusing a
// recycled one when available.
func (c *Core) newDynInst(seq, pc uint64, m *instMeta) *DynInst {
	var d *DynInst
	if n := len(c.instPool); n > 0 {
		d = c.instPool[n-1]
		c.instPool = c.instPool[:n-1]
		gen := d.gen
		*d = DynInst{gen: gen}
	} else {
		d = &DynInst{}
		c.instAllocd++
	}
	d.Seq = seq
	d.PC = pc
	d.Inst = m.inst
	d.m = m
	d.BrSlot = -1
	return d
}

// freeInst recycles a retired or squashed instruction. The caller guarantees
// no live pipeline structure still reads through the pointer (dangling
// identity-only references like a younger load's FwdFrom are fine: they are
// only ever compared against nil).
func (c *Core) freeInst(d *DynInst) {
	d.gen++
	if d.Check != nil {
		c.freeCheck(d.Check)
		d.Check = nil
	}
	c.instPool = append(c.instPool, d)
}

// newCheckpoint returns a checkpoint for a control instruction. Contents are
// overwritten by CheckpointInto and the rename stage, so no reset is needed;
// the recycled RAS buffer is reused in place.
func (c *Core) newCheckpoint() *Checkpoint {
	if n := len(c.checkPool); n > 0 {
		ck := c.checkPool[n-1]
		c.checkPool = c.checkPool[:n-1]
		return ck
	}
	c.checkAllocd++
	return new(Checkpoint)
}

func (c *Core) freeCheck(ck *Checkpoint) {
	c.checkPool = append(c.checkPool, ck)
}

// CheckInvariants audits the core's recovery-sensitive internal state: the
// physical-register accounting, the program-order queues, the fence/divider
// bookkeeping, and the free pools. It exists for tests — in particular the
// mispredict-storm recovery tests — and is deliberately allowed to allocate.
// It returns nil when every invariant holds, and may be called at any cycle
// boundary (between Steps) or after a run completes.
func (c *Core) CheckInvariants() error {
	// --- physical register accounting -----------------------------------
	// Every physical register is exactly one of: an architectural mapping
	// (commitRT image), a live in-flight destination, or free. OldDst values
	// alias one of the first two until their instruction commits.
	owner := make([]string, c.cfg.NumPhysRegs)
	claim := func(p int, who string) error {
		if p < 0 || p >= len(owner) {
			return fmt.Errorf("cpu: invariant: %s claims out-of-range phys reg %d", who, p)
		}
		if owner[p] != "" {
			return fmt.Errorf("cpu: invariant: phys reg %d claimed by both %s and %s", p, owner[p], who)
		}
		owner[p] = who
		return nil
	}
	for r := 0; r < isa.NumRegs; r++ {
		if err := claim(c.commitRT[r], fmt.Sprintf("commitRT[%s]", isa.Reg(r))); err != nil {
			return err
		}
	}
	live := c.rob[c.robHead:]
	for _, d := range live {
		if d.Dst >= 0 {
			if err := claim(d.Dst, fmt.Sprintf("seq %d dst", d.Seq)); err != nil {
				return err
			}
		}
	}
	for _, p := range c.freeList {
		if err := claim(p, "freeList"); err != nil {
			return err
		}
	}
	for p, who := range owner {
		if who == "" {
			return fmt.Errorf("cpu: invariant: phys reg %d leaked (not architectural, live, or free)", p)
		}
	}
	// The speculative rename map must point at architectural or live
	// destinations, never at a free register.
	for r := 0; r < isa.NumRegs; r++ {
		p := c.rat[r]
		if p < 0 || p >= len(owner) {
			return fmt.Errorf("cpu: invariant: rat[%s] = %d out of range", isa.Reg(r), p)
		}
		if owner[p] == "freeList" {
			return fmt.Errorf("cpu: invariant: rat[%s] = %d points at a free register", isa.Reg(r), p)
		}
	}

	// --- window order ----------------------------------------------------
	for i := 1; i < len(live); i++ {
		if live[i].Seq <= live[i-1].Seq {
			return fmt.Errorf("cpu: invariant: rob order violated at seq %d", live[i].Seq)
		}
	}
	for _, d := range live {
		if d.Squashed {
			return fmt.Errorf("cpu: invariant: squashed seq %d still in window", d.Seq)
		}
	}

	// --- fence queue ------------------------------------------------------
	// Every in-flight fence seq must name a live FENCE/HALT, in ascending
	// program order.
	for i, seq := range c.fenceSeqs {
		if i > 0 && seq <= c.fenceSeqs[i-1] {
			return fmt.Errorf("cpu: invariant: fence queue out of order at %d", seq)
		}
		found := false
		for _, d := range live {
			if d.Seq == seq {
				found = d.m != nil && d.m.flags&mFenceHalt != 0
				break
			}
		}
		if !found {
			return fmt.Errorf("cpu: invariant: fence queue seq %d has no live FENCE/HALT", seq)
		}
	}

	// --- divider ----------------------------------------------------------
	// A busy divider must be owned by a live, executing divide; a squashed
	// owner must have released it (the recovery bugfix this guards).
	if c.divBusyUntil > c.cycle {
		ok := false
		for _, d := range live {
			if d.Seq == c.divBusySeq && d.m != nil && d.m.class == isa.ClassDiv && d.State == StateExecuting {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("cpu: invariant: divider busy until cycle %d but owner seq %d is not a live executing divide",
				c.divBusyUntil, c.divBusySeq)
		}
	}

	// --- fetch line -------------------------------------------------------
	if lb := uint64(c.cfg.Hier.L1I.LineBytes); c.lastFetchLine != ^uint64(0) &&
		c.lastFetchLine > (c.prog.TextEnd()-1)/lb {
		return fmt.Errorf("cpu: invariant: lastFetchLine %#x beyond text segment", c.lastFetchLine)
	}

	// --- pools ------------------------------------------------------------
	// No pooled object may still be reachable from a live structure, and the
	// pool must not hold duplicates.
	pooled := make(map[*DynInst]bool, len(c.instPool))
	for _, d := range c.instPool {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: DynInst pooled twice")
		}
		pooled[d] = true
	}
	for _, d := range live {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: live seq %d is in the free pool", d.Seq)
		}
	}
	for _, d := range c.readyQ {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: pooled DynInst in ready queue")
		}
	}
	// Issue-queue occupancy is counter-tracked; it must agree with the
	// per-instruction flags of the live window.
	inIQ := 0
	for _, d := range live {
		if d.inIQ {
			inIQ++
		}
	}
	if inIQ != c.iqCount {
		return fmt.Errorf("cpu: invariant: issue-queue occupancy %d but %d live instructions hold entries",
			c.iqCount, inIQ)
	}
	for _, d := range c.fetchBuf[c.fbHead:] {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: pooled DynInst in fetch buffer")
		}
	}
	for _, d := range c.lq[c.lqHead:] {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: pooled DynInst in load queue")
		}
	}
	for _, d := range c.sq[c.sqHead:] {
		if pooled[d] {
			return fmt.Errorf("cpu: invariant: pooled DynInst in store queue")
		}
	}
	if len(c.instPool) > c.instAllocd {
		return fmt.Errorf("cpu: invariant: %d pooled DynInsts exceed %d ever allocated",
			len(c.instPool), c.instAllocd)
	}
	ckPooled := make(map[*Checkpoint]bool, len(c.checkPool))
	for _, ck := range c.checkPool {
		if ckPooled[ck] {
			return fmt.Errorf("cpu: invariant: Checkpoint pooled twice")
		}
		ckPooled[ck] = true
	}
	for _, d := range live {
		if d.Check != nil && ckPooled[d.Check] {
			return fmt.Errorf("cpu: invariant: live seq %d holds a pooled Checkpoint", d.Seq)
		}
	}
	if len(c.checkPool) > c.checkAllocd {
		return fmt.Errorf("cpu: invariant: %d pooled Checkpoints exceed %d ever allocated",
			len(c.checkPool), c.checkAllocd)
	}
	return nil
}
