package cpu

import (
	"strings"
	"testing"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/isa"
	"levioso/internal/ref"
)

// runBoth executes src on the reference interpreter and the OoO core and
// checks architectural equivalence: exit code, console output, and all
// architectural registers.
func runBoth(t *testing.T, src string, pol Policy) (Result, ref.Result) {
	t.Helper()
	prog, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := core.Annotate(prog); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	want, err := ref.Run(prog, ref.Limits{MaxInsts: 5_000_000})
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 50_000_000
	c, err := New(prog, cfg, pol)
	if err != nil {
		t.Fatalf("new core: %v", err)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatalf("core run: %v", err)
	}
	if got.ExitCode != want.ExitCode {
		t.Errorf("exit = %d, want %d", got.ExitCode, want.ExitCode)
	}
	if got.Output != want.Output {
		t.Errorf("output = %q, want %q", got.Output, want.Output)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if c.ArchReg(r) != want.Regs[r] {
			t.Errorf("reg %s = %#x, want %#x", r, c.ArchReg(r), want.Regs[r])
		}
	}
	if got.Stats.Committed != want.Insts {
		t.Errorf("committed = %d, want %d", got.Stats.Committed, want.Insts)
	}
	return got, want
}

func TestStraightLine(t *testing.T) {
	res, _ := runBoth(t, `
main:
	li a0, 10
	li a1, 32
	add a0, a0, a1
	halt a0
`, NopPolicy{})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestLoopCosim(t *testing.T) {
	runBoth(t, `
main:
	li t0, 1000
	li t1, 0
loop:
	add t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	halt t1
`, NopPolicy{})
}

// Data-dependent branches force mispredictions and exercise recovery.
const branchySrc = `
main:
	li s0, 0        # accumulator
	li s1, 0        # i
	li s2, 200      # n
	li s3, 2654435761
loop:
	mul t0, s1, s3  # pseudo-random hash
	srli t0, t0, 13
	andi t0, t0, 1
	beqz t0, even
	addi s0, s0, 3
	j next
even:
	addi s0, s0, 5
next:
	addi s1, s1, 1
	blt s1, s2, loop
	halt s0
`

func TestBranchyCosim(t *testing.T) {
	res, _ := runBoth(t, branchySrc, NopPolicy{})
	if res.Stats.CondMispredicts == 0 {
		t.Error("expected mispredictions on hash-based branches")
	}
	if res.Stats.Squashed == 0 {
		t.Error("expected squashed instructions")
	}
}

func TestMemoryCosim(t *testing.T) {
	runBoth(t, `
main:
	la s0, arr
	li s1, 0       # i
	li s2, 64
fill:
	mul t0, s1, s1
	slli t1, s1, 3
	add t1, t1, s0
	sd t0, 0(t1)
	addi s1, s1, 1
	blt s1, s2, fill
	li s1, 0
	li s3, 0
sum:
	slli t1, s1, 3
	add t1, t1, s0
	ld t0, 0(t1)
	add s3, s3, t0
	addi s1, s1, 2
	blt s1, s2, sum
	halt s3
	.data
arr:	.space 512
`, NopPolicy{})
}

func TestStoreForwardCosim(t *testing.T) {
	res, _ := runBoth(t, `
main:
	la s0, buf
	li s1, 0
	li s2, 100
loop:
	sd s1, 0(s0)     # store then immediately load back
	ld t0, 0(s0)
	add s3, s3, t0
	addi s1, s1, 1
	blt s1, s2, loop
	halt s3
	.data
buf:	.space 8
`, NopPolicy{})
	if res.Stats.LoadForward == 0 {
		t.Error("expected store-to-load forwarding")
	}
}

func TestPartialOverlapStoreLoad(t *testing.T) {
	// Byte store then word load of the same location: forwarding impossible,
	// the load must wait for the store to commit.
	runBoth(t, `
main:
	la s0, buf
	li t0, 0x11223344
	sw t0, 0(s0)
	li t1, 0xff
	sb t1, 1(s0)
	lw a0, 0(s0)    # overlaps the byte store: must see 0x1122ff44
	li t2, 0x1122ff44
	bne a0, t2, bad
	li a0, 1
	halt a0
bad:
	halt zero
	.data
buf:	.space 8
`, NopPolicy{})
}

func TestCallsAndRecursion(t *testing.T) {
	// Recursive fibonacci: exercises RAS, calls, stack traffic.
	runBoth(t, `
main:
	li a0, 12
	call fib
	halt a0         # fib(12) = 144
fib:
	li t0, 2
	blt a0, t0, base
	addi sp, sp, -24
	sd ra, 0(sp)
	sd s0, 8(sp)
	mv s0, a0
	addi a0, a0, -1
	call fib
	sd a0, 16(sp)
	addi a0, s0, -2
	call fib
	ld t1, 16(sp)
	add a0, a0, t1
	ld ra, 0(sp)
	ld s0, 8(sp)
	addi sp, sp, 24
base:
	ret
`, NopPolicy{})
}

func TestIndirectJumpCosim(t *testing.T) {
	// Jump table through jalr.
	runBoth(t, `
main:
	li s0, 0
	li s1, 0
loop:
	andi t0, s1, 3
	slli t0, t0, 3
	la t1, table
	add t1, t1, t0
	ld t2, 0(t1)
	jalr ra, 0(t2)
	addi s1, s1, 1
	li t3, 50
	blt s1, t3, loop
	halt s0
f0:	addi s0, s0, 1
	ret
f1:	addi s0, s0, 10
	ret
f2:	addi s0, s0, 100
	ret
f3:	addi s0, s0, 1000
	ret
	.data
table:	.quad f0, f1, f2, f3
`, NopPolicy{})
}

func TestDivAndMul(t *testing.T) {
	runBoth(t, `
main:
	li s0, 1000000
	li s1, 7
	div t0, s0, s1    # 142857
	rem t1, s0, s1    # 1
	mul t2, t0, s1
	add t2, t2, t1    # reconstruct 1000000
	sub a0, s0, t2    # 0
	addi a0, a0, 55
	halt a0
`, NopPolicy{})
}

func TestFenceCosim(t *testing.T) {
	runBoth(t, `
main:
	li t0, 5
	beqz t0, skip
	fence
	addi t0, t0, 1
skip:
	halt t0
`, NopPolicy{})
}

func TestConsoleOrdering(t *testing.T) {
	_, want := runBoth(t, `
main:
	li s0, 0
loop:
	puti s0
	li t0, ','
	putc t0
	addi s0, s0, 1
	li t1, 5
	blt s0, t1, loop
	halt zero
`, NopPolicy{})
	if want.Output != "0,1,2,3,4," {
		t.Errorf("ref output = %q", want.Output)
	}
}

// All policies must preserve architectural semantics.
func TestAllPoliciesArchEquivalent(t *testing.T) {
	policies := []Policy{NopPolicy{}}
	// internal/secure policies are exercised from that package's tests and
	// from workload cosim; here we at least run the branchy program under
	// the NopPolicy plus a fence-like custom policy.
	for _, p := range policies {
		runBoth(t, branchySrc, p)
	}
}

func TestWrongPathOffTextRecovers(t *testing.T) {
	// A branch predicted into the last instruction region can run fetch off
	// the end of text; recovery must bring it back.
	runBoth(t, `
main:
	li s0, 0
	li s1, 100
loop:
	addi s0, s0, 1
	blt s0, s1, loop   # mostly taken; final not-taken may overfetch
	halt s0
`, NopPolicy{})
}

func TestLimitsOnInfiniteLoop(t *testing.T) {
	// A committing self-loop never trips the watchdog (progress is real);
	// the cycle limit must stop it.
	prog := asm.MustAssemble("t.s", `
main:
	j main
`)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("infinite loop did not trip the cycle limit")
	}
}

func TestWatchdogFires(t *testing.T) {
	// A load waiting forever: craft a program whose head instruction can
	// never complete by exhausting the divider with a dependence cycle is
	// hard to build architecturally, so instead use a zero watchdog budget
	// against a long-latency chain: the first cold load takes ~94 cycles
	// with no commits, so a 20-cycle watchdog must fire.
	prog := asm.MustAssemble("t.s", `
main:
	ld t0, 0(gp)
	halt t0
	.data
v:	.quad 1
`)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 20
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("watchdog did not fire on a long no-commit stretch")
	}
}

func TestCycleLimit(t *testing.T) {
	prog := asm.MustAssemble("t.s", `
main:
	li t0, 100000
l:	addi t0, t0, -1
	bnez t0, l
	halt zero
`)
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	c, _ := New(prog, cfg, NopPolicy{})
	if _, err := c.Run(); err == nil {
		t.Error("cycle limit did not trip")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	cfg = DefaultConfig()
	cfg.NumPhysRegs = 100
	if err := cfg.Validate(); err == nil {
		t.Error("too few phys regs accepted")
	}
	cfg = DefaultConfig()
	cfg.Predictor.BTBEntries = 3
	if err := cfg.Validate(); err == nil {
		t.Error("bad BTB accepted")
	}
}

func TestIPCReasonable(t *testing.T) {
	// Independent adds should reach multi-wide IPC on the default core.
	res, _ := runBoth(t, `
main:
	li s0, 0
	li s1, 0
	li s2, 0
	li s3, 0
	li t0, 5000
loop:
	addi s0, s0, 1
	addi s1, s1, 2
	addi s2, s2, 3
	addi s3, s3, 4
	addi t0, t0, -1
	bnez t0, loop
	add a0, s0, s1
	halt a0
`, NopPolicy{})
	if ipc := res.Stats.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %.2f, want >= 3 on independent adds", ipc)
	}
}

func TestRdcycleMonotonicOnCore(t *testing.T) {
	// Without serialization both rdcycles may execute in the same cycle, so
	// bracket with fences exactly as a real timing measurement would.
	prog := asm.MustAssemble("t.s", `
main:
	rdcycle t0
	fence
	nop
	fence
	rdcycle t1
	sltu a0, t0, t1
	halt a0
`)
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	c, _ := New(prog, DefaultConfig(), NopPolicy{})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Error("rdcycle not increasing")
	}
}

func TestCflushAffectsTiming(t *testing.T) {
	// Load, flush, load again: the second load must be slower.
	prog := asm.MustAssemble("t.s", `
main:
	la s0, v
	ld t0, 0(s0)     # warm
	fence
	rdcycle s1
	ld t1, 0(s0)     # hit
	add t6, t1, zero # use the value
	fence
	rdcycle s2
	cflush 0(s0)
	fence
	rdcycle s3
	ld t2, 0(s0)     # miss
	add t6, t2, zero
	fence
	rdcycle s4
	sub a0, s2, s1   # hit time
	sub a1, s4, s3   # miss time
	sltu a0, a0, a1  # hit < miss?
	halt a0
	.data
v:	.quad 7
`)
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	c, _ := New(prog, DefaultConfig(), NopPolicy{})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Error("flushed load not slower than cached load")
	}
}

// Saturate the Branch Dependency Table: with a huge branch-resolve latency a
// branch-dense loop holds more than core.NumSlots unresolved branches in the
// window, forcing rename to stall on table capacity — correctness must hold
// and the stalls must be visible in the statistics.
func TestBDTCapacityStall(t *testing.T) {
	src := `
main:
	li s0, 0
	li s1, 400
loop:
	beq s0, s1, out1
out1:
	bne s0, s1, c2
c2:
	beq zero, zero, c3
c3:
	addi s0, s0, 1
	blt s0, s1, loop
	halt s0
`
	prog, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(prog, ref.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BranchResolveLatency = 500
	cfg.MaxCycles = 50_000_000
	cfg.WatchdogCycles = 2_000_000
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != want.ExitCode {
		t.Errorf("exit = %d, want %d", res.ExitCode, want.ExitCode)
	}
	if res.Stats.BDTAllocStalls == 0 {
		t.Error("expected branch-table capacity stalls")
	}
}

// Deep recursion exercises the return address stack beyond its depth: RAS
// mispredictions must recover correctly.
func TestDeepRecursionRASOverflow(t *testing.T) {
	runBoth(t, `
main:
	li a0, 40      # recursion depth > RAS depth (16)
	call down
	halt a0
down:
	beqz a0, base
	addi sp, sp, -16
	sd ra, 0(sp)
	sd a0, 8(sp)
	addi a0, a0, -1
	call down
	ld t0, 8(sp)
	add a0, a0, t0
	ld ra, 0(sp)
	addi sp, sp, 16
	ret
base:
	li a0, 0
	ret
`, NopPolicy{})
}

// A store whose data arrives much later than its address must still forward
// correctly (the load waits for captured data).
func TestLateStoreDataForwarding(t *testing.T) {
	runBoth(t, `
main:
	la s0, cell
	li t0, 1000000
	li t1, 7
	div t2, t0, t1   # slow producer
	sd t2, 0(s0)     # store waits for div result
	ld a0, 0(s0)     # must see the divided value
	halt a0
	.data
cell:	.quad 0
`, NopPolicy{})
}

func TestCommitTrace(t *testing.T) {
	prog := asm.MustAssemble("t.s", `
main:
	li a0, 1
	beq a0, zero, skip
	addi a0, a0, 1
skip:
	halt a0
`)
	cfg := DefaultConfig()
	var buf strings.Builder
	cfg.Trace = &buf
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"addi a0, zero, 1", "beq", "halt", "<main+"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 4 {
		t.Errorf("trace has %d lines, want 4:\n%s", n, out)
	}
}

// A minimal core configuration (tiny queues, few registers, narrow widths)
// stresses every structural-stall path; architectural behaviour must hold.
func TestTinyCoreCosim(t *testing.T) {
	prog, err := asm.Assemble("t.s", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(prog, ref.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FetchWidth, cfg.RenameWidth, cfg.IssueWidth, cfg.CommitWidth = 2, 2, 2, 2
	cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize = 16, 6, 4, 3
	cfg.NumPhysRegs = 32 + 16 + 4
	cfg.FetchBufSize = 4
	cfg.NumALU, cfg.NumMul, cfg.NumMemPorts = 1, 1, 1
	cfg.BDTEntries = 4
	cfg.MaxCycles = 10_000_000
	c, err := New(prog, cfg, NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.ExitCode != want.ExitCode {
		t.Errorf("tiny core exit = %d, want %d", got.ExitCode, want.ExitCode)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if c.ArchReg(r) != want.Regs[r] {
			t.Errorf("tiny core reg %s mismatch", r)
		}
	}
}

func TestBDTEntriesValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BDTEntries = core.NumSlots + 1
	if err := cfg.Validate(); err == nil {
		t.Error("oversized BDTEntries accepted")
	}
}
