// Package cpu implements the cycle-level out-of-order superscalar LEV64 core
// used as the paper's evaluation vehicle: fetch with branch prediction,
// register renaming over a physical register file, a unified issue queue,
// a load/store queue with store-to-load forwarding, precise in-order commit,
// and immediate misprediction recovery from rename-map checkpoints.
//
// Secure-speculation policies (internal/secure) plug in through the Policy
// interface: they assign every renamed instruction a dependency mask over the
// core's Branch Dependency Table (internal/core) and decide at issue time
// whether a ready instruction may proceed, proceed invisibly, or wait.
package cpu

import (
	"fmt"
	"io"

	"levioso/internal/core"
	"levioso/internal/mem"
)

// Config holds every core parameter. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Pipeline widths (instructions per cycle).
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Window sizes.
	ROBSize      int
	IQSize       int
	LQSize       int
	SQSize       int
	NumPhysRegs  int
	FetchBufSize int

	// Functional units.
	NumALU      int
	NumMul      int
	NumMemPorts int // load/store address+access ports per cycle
	MulLatency  int
	// The divider is single and unpipelined; its latency depends on operand
	// magnitudes (DivLatencyBase..DivLatencyBase+DivLatencyRange), which is
	// what makes DIV a transmitter.
	DivLatencyBase  int
	DivLatencyRange int

	// Front-end redirect penalty after a misprediction resolves (cycles
	// before fetch delivers from the corrected path).
	RedirectPenalty int
	// BranchResolveLatency is the extra delay, beyond the 1-cycle compare,
	// between a control instruction issuing and its resolution broadcast
	// (squash or Branch Dependency Table clear) taking effect — the depth of
	// the execute/writeback pipeline a real core pays. It lengthens every
	// speculation shadow and is part of the misprediction penalty.
	BranchResolveLatency int

	Predictor PredConfig
	Hier      mem.HierConfig

	// Run limits: 0 means unlimited.
	MaxCycles uint64
	MaxInsts  uint64
	// WatchdogCycles aborts the run if no instruction commits for this many
	// cycles (a scheduling deadlock in the model). 0 uses the default of
	// 100,000 cycles — the zero value of a Config must stay protected, so
	// "off" needs an explicit sentinel: -1 disables the watchdog entirely
	// (for runs that legitimately stall commit longer than any threshold,
	// e.g. adversarial fault-injection studies). Other negative values are
	// rejected by Validate.
	WatchdogCycles int64

	// BDTEntries caps the number of in-flight tracked branches (at most
	// core.NumSlots, which is also the default when 0). Smaller tables are
	// cheaper hardware but stall rename when full — the hardware-cost
	// ablation in the BDT-size sweep.
	BDTEntries int

	// Trace, when non-nil, receives one line per committed instruction:
	// cycle, sequence number, pc, disassembly, and key pipeline events
	// (mispredicts, policy waits, invisible execution). Slow; for debugging.
	Trace io.Writer

	// Coverage, when non-nil, receives the run's microarchitectural coverage
	// signature: one bit per observed (event class, instruction site,
	// outcome) triple — branch outcomes, squash depths, policy restriction
	// events, LQ/SQ alias stalls, secret-taint propagation. The fuzzer's
	// corpus scheduler steers on it. Like the other hook fields it makes a
	// run uncacheable (engine.CacheKey): the sink is an output channel whose
	// effect a cached result would silently drop.
	Coverage *CoverageSink

	// WrapMem and WrapPred, when non-nil, interpose on the memory system and
	// branch predictor at core construction (internal/faultinject uses these
	// to inject stuck responses, delayed fills and mispredict storms). The
	// wrapper must forward everything it does not alter.
	WrapMem  func(MemSystem) MemSystem
	WrapPred func(BranchPredictor) BranchPredictor
	// CommitStall, when non-nil, is consulted once per cycle before the
	// commit stage runs; returning true freezes commit for that cycle (an
	// injected fault). A stall held longer than WatchdogCycles trips the
	// watchdog, which is exactly what fault-injection tests use it for.
	CommitStall func(cycle uint64) bool
}

// DefaultConfig returns the baseline core used throughout the evaluation
// (experiment T1): an 8-wide, 192-entry-ROB out-of-order core in the same
// class as the paper's gem5 configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:           8,
		RenameWidth:          8,
		IssueWidth:           8,
		CommitWidth:          8,
		ROBSize:              192,
		IQSize:               64,
		LQSize:               48,
		SQSize:               32,
		NumPhysRegs:          300,
		FetchBufSize:         24,
		NumALU:               6,
		NumMul:               2,
		NumMemPorts:          2,
		MulLatency:           3,
		DivLatencyBase:       8,
		DivLatencyRange:      24,
		RedirectPenalty:      6,
		BranchResolveLatency: 4,
		Predictor:            DefaultPredConfig(),
		Hier:                 mem.DefaultHierConfig(),
		WatchdogCycles:       100_000,
	}
}

// Validate checks structural requirements.
func (c Config) Validate() error {
	pos := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("cpu: %s must be positive, got %d", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"RenameWidth", c.RenameWidth},
		{"IssueWidth", c.IssueWidth}, {"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize}, {"IQSize", c.IQSize},
		{"LQSize", c.LQSize}, {"SQSize", c.SQSize},
		{"FetchBufSize", c.FetchBufSize},
		{"NumALU", c.NumALU}, {"NumMul", c.NumMul}, {"NumMemPorts", c.NumMemPorts},
		{"MulLatency", c.MulLatency}, {"DivLatencyBase", c.DivLatencyBase},
		{"RedirectPenalty", c.RedirectPenalty},
	}
	for _, ch := range checks {
		if err := pos(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.DivLatencyRange < 0 {
		return fmt.Errorf("cpu: DivLatencyRange must be non-negative")
	}
	if c.BranchResolveLatency < 0 {
		return fmt.Errorf("cpu: BranchResolveLatency must be non-negative")
	}
	if c.BDTEntries < 0 || c.BDTEntries > core.NumSlots {
		return fmt.Errorf("cpu: BDTEntries %d outside 0..%d", c.BDTEntries, core.NumSlots)
	}
	if c.WatchdogCycles < -1 {
		return fmt.Errorf("cpu: WatchdogCycles %d invalid (0 = default, -1 = disabled)", c.WatchdogCycles)
	}
	// Physical registers must cover the architectural state plus the ROB.
	if c.NumPhysRegs < 32+c.ROBSize {
		return fmt.Errorf("cpu: NumPhysRegs %d < 32+ROBSize %d (rename would deadlock)",
			c.NumPhysRegs, 32+c.ROBSize)
	}
	if err := c.Predictor.Validate(); err != nil {
		return err
	}
	return c.Hier.Validate()
}
