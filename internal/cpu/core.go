package cpu

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"

	"levioso/internal/core"
	"levioso/internal/isa"
	"levioso/internal/mem"
	"levioso/internal/simerr"
)

// Result summarizes a completed run.
type Result struct {
	ExitCode uint64
	Output   string
	Stats    Stats
}

// Core is one out-of-order LEV64 core.
type Core struct {
	cfg    Config
	prog   *isa.Program
	policy Policy

	BT   *core.BranchTable
	Hier MemSystem
	Phys *mem.Memory
	Pred BranchPredictor

	// Physical register file.
	regVal   []uint64
	regReady []bool
	rat      [isa.NumRegs]int // speculative rename map
	commitRT [isa.NumRegs]int // architectural (retirement) map
	freeList []int

	// Windows. rob/lq/sq are program-order queues with a moving head; iq is
	// age-ordered and filtered each cycle.
	rob     []*DynInst
	robHead int
	iq      []*DynInst
	lq      []*DynInst
	lqHead  int
	sq      []*DynInst
	sqHead  int

	fetchBuf []*DynInst

	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool
	lastFetchLine   uint64 // last I-cache line touched (avoid per-inst lookups)

	fenceSeqs []uint64 // in-flight FENCE/HALT sequence numbers, program order

	divBusyUntil uint64

	cycle uint64
	seq   uint64

	out      []byte
	halted   bool
	exitCode uint64

	stats           Stats
	lastCommitCycle uint64
}

// New builds a core with prog loaded, memory initialized, and the policy
// attached. Pass NopPolicy{} for an unprotected core.
func New(prog *isa.Program, cfg Config, pol Policy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	phys := mem.NewMemory()
	phys.WriteBytes(isa.DataBase, prog.Data)
	hier, err := mem.NewHierarchy(cfg.Hier, phys)
	if err != nil {
		return nil, err
	}
	var ms MemSystem = hier
	if cfg.WrapMem != nil {
		ms = cfg.WrapMem(ms)
	}
	var pred BranchPredictor = NewPredictor(cfg.Predictor)
	if cfg.WrapPred != nil {
		pred = cfg.WrapPred(pred)
	}
	c := &Core{
		cfg:    cfg,
		prog:   prog,
		policy: pol,
		BT:     core.NewBranchTable(prog),
		Hier:   ms,
		Phys:   phys,
		Pred:   pred,
	}
	c.regVal = make([]uint64, cfg.NumPhysRegs)
	c.regReady = make([]bool, cfg.NumPhysRegs)
	for r := 0; r < isa.NumRegs; r++ {
		c.rat[r] = r
		c.commitRT[r] = r
		c.regReady[r] = true
	}
	c.regVal[isa.RegSP] = isa.StackTop
	c.regVal[isa.RegGP] = isa.DataBase
	for p := isa.NumRegs; p < cfg.NumPhysRegs; p++ {
		c.freeList = append(c.freeList, p)
	}
	c.fetchPC = prog.Entry
	c.lastFetchLine = ^uint64(0)
	pol.Attach(c)
	pol.Reset()
	return c, nil
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Prog returns the loaded program.
func (c *Core) Prog() *isa.Program { return c.prog }

// Cycle returns the current cycle count.
func (c *Core) CycleCount() uint64 { return c.cycle }

// Halted reports whether a HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Output returns console output so far.
func (c *Core) Output() string { return string(c.out) }

// ArchReg returns the architectural (retired) value of register r.
func (c *Core) ArchReg(r isa.Reg) uint64 { return c.regVal[c.commitRT[r]] }

// Run simulates until HALT commits or a limit trips.
func (c *Core) Run() (Result, error) {
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
	}
	return c.result(), nil
}

// RunContext simulates until HALT commits, a limit trips, or ctx is done.
// Cancellation is cooperative — checked every few thousand cycles so the
// hot loop stays select-free — and surfaces as simerr.ErrDeadline, which the
// sweep supervisor classifies transient (a wall-clock budget, not a model
// property).
func (c *Core) RunContext(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Power-of-two mask so the check costs one AND per cycle. At the
	// simulator's throughput this bounds cancellation latency well under a
	// millisecond.
	const checkMask = 1<<13 - 1
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
		if c.cycle&checkMask == 0 {
			select {
			case <-ctx.Done():
				return Result{}, &simerr.RunError{
					Kind: simerr.KindDeadline, Cycle: c.cycle, PC: c.fetchPC,
					Err: ctx.Err(),
				}
			default:
			}
		}
	}
	return c.result(), nil
}

func (c *Core) result() Result {
	hs := c.Hier.Stats()
	c.stats.L1IHits = hs.L1I.Hits
	c.stats.L1IMisses = hs.L1I.Misses
	c.stats.L1DHits = hs.L1D.Hits
	c.stats.L1DMisses = hs.L1D.Misses
	c.stats.L2Hits = hs.L2.Hits
	c.stats.L2Misses = hs.L2.Misses
	c.stats.BDTAllocStalls = c.BT.AllocFailures
	c.stats.Cycles = c.cycle
	return Result{ExitCode: c.exitCode, Output: string(c.out), Stats: c.stats}
}

// Stats returns the statistics accumulated so far (cache counters are synced
// on read).
func (c *Core) Stats() Stats { return c.result().Stats }

// Step advances the core by one cycle.
func (c *Core) Step() error {
	if c.halted {
		return nil
	}
	c.cycle++
	if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
		return &simerr.RunError{
			Kind: simerr.KindCycleLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("cycle limit %d exceeded", c.cfg.MaxCycles),
		}
	}
	if c.cfg.MaxInsts > 0 && c.stats.Committed > c.cfg.MaxInsts {
		return &simerr.RunError{
			Kind: simerr.KindInstLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("instruction limit %d exceeded", c.cfg.MaxInsts),
		}
	}
	wd := c.cfg.WatchdogCycles
	if wd == 0 {
		wd = 100_000
	}
	if c.cycle-c.lastCommitCycle > wd {
		return &simerr.RunError{
			Kind: simerr.KindWatchdog, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("no commit for %d cycles (%s)", wd, c.deadlockInfo()),
		}
	}
	if c.cfg.CommitStall == nil || !c.cfg.CommitStall(c.cycle) {
		if err := c.commit(); err != nil {
			return err
		}
	}
	c.complete()
	c.issue()
	c.rename()
	c.fetch()
	return nil
}

// memFault builds the typed error for a committed access outside simulated
// memory (an architectural fault in the guest program, not a model bug).
func (c *Core) memFault(d *DynInst, what string, cause error) error {
	return &simerr.RunError{
		Kind: simerr.KindMemFault, Cycle: c.cycle, PC: d.PC,
		Detail: fmt.Sprintf("%s: %v addr=%#x committed", what, d.Inst, d.Addr),
		Err:    cause,
	}
}

func (c *Core) deadlockInfo() string {
	if c.robHead >= len(c.rob) {
		return fmt.Sprintf("window empty, fetchPC=%#x fetchHalted=%v", c.fetchPC, c.fetchHalted)
	}
	d := c.rob[c.robHead]
	return fmt.Sprintf("head seq=%d pc=%#x %v state=%d wait=%#x", d.Seq, d.PC, d.Inst, d.State, uint64(d.WaitMask))
}

// ---------------------------------------------------------------- commit --

func (c *Core) commit() error {
	for n := 0; n < c.cfg.CommitWidth && c.robHead < len(c.rob); n++ {
		d := c.rob[c.robHead]
		if d.State != StateDone {
			return nil
		}
		op := d.Inst.Op
		switch {
		case d.IsStore():
			if d.MemErr {
				return c.memFault(d, "store to invalid address", nil)
			}
			if err := c.Phys.Write(d.Addr, op.MemBytes(), d.Result); err != nil {
				return c.memFault(d, "store failed", err)
			}
			c.Hier.FillVisible(d.Addr)
			c.sqHead++
			c.stats.Stores++
		case d.IsLoad():
			if d.MemErr {
				return c.memFault(d, "load from invalid address", nil)
			}
			if d.Invisible && d.FwdFrom == nil {
				// Deferred exposure of an invisible load: the line becomes
				// architecturally cached only now that the load is safe, and
				// the load cannot retire until the exposure/validation access
				// completes (the InvisiSpec validation step). Because the
				// invisible execution never filled the cache, validation of a
				// missing line pays the full hierarchy latency again — the
				// dominant cost of the invisible-execution defense class.
				if d.exposeUntil == 0 {
					lat := c.Hier.InvisibleLoadLatency(d.Addr)
					c.Hier.FillVisible(d.Addr)
					d.exposeUntil = c.cycle + uint64(lat)
					c.compact()
					return nil
				}
				if c.cycle < d.exposeUntil {
					c.compact()
					return nil
				}
				c.stats.InvisibleLoads++
			}
			if d.FwdFrom != nil {
				c.stats.LoadForward++
			}
			c.lqHead++
			c.stats.Loads++
		case op == isa.PUTC:
			c.out = append(c.out, byte(d.Result))
		case op == isa.PUTI:
			c.out = appendInt(c.out, int64(d.Result))
		case op == isa.HALT:
			c.halted = true
			c.exitCode = d.Result
			c.popFence(d.Seq)
		case op == isa.FENCE:
			c.popFence(d.Seq)
		case d.IsCondBranch():
			c.Pred.UpdateBranch(d.PhtIdx, d.ActualTaken)
			c.stats.CondBranches++
			if d.Mispredict {
				c.stats.CondMispredicts++
			}
		case op == isa.JALR:
			if !d.UsedRAS {
				c.Pred.UpdateIndirect(d.PC, d.ActualNext)
			}
			c.stats.Indirects++
			if d.Mispredict {
				c.stats.IndMispredicts++
			}
		}
		if op.IsTransmitter() {
			c.stats.Transmitters++
			if d.EverWaited {
				c.stats.RestrictedTransmitters++
			}
			if d.specAtIssue {
				c.stats.SpecTransmitters++
			}
		}
		if d.Dst >= 0 {
			if d.OldDst >= 0 {
				c.freeList = append(c.freeList, d.OldDst)
			}
			c.commitRT[d.Inst.Rd] = d.Dst
		}
		if c.cfg.Trace != nil {
			c.traceCommit(d)
		}
		c.robHead++
		c.stats.Committed++
		c.lastCommitCycle = c.cycle
		if c.halted {
			break
		}
	}
	c.compact()
	return nil
}

// traceCommit writes one human-readable line per retired instruction.
func (c *Core) traceCommit(d *DynInst) {
	flags := ""
	if d.Mispredict {
		flags += " MISPREDICT"
	}
	if d.EverWaited {
		flags += " WAITED"
	}
	if d.Invisible {
		flags += " INVISIBLE"
	}
	if d.FwdFrom != nil {
		flags += " FWD"
	}
	loc := ""
	if sym, off, ok := c.prog.NearestSymbol(d.PC); ok {
		loc = fmt.Sprintf(" <%s+%#x>", sym, off)
	}
	fmt.Fprintf(c.cfg.Trace, "%10d seq=%-8d %#06x%s  %s%s\n",
		c.cycle, d.Seq, d.PC, loc, d.Inst, flags)
}

func (c *Core) popFence(seq uint64) {
	if len(c.fenceSeqs) > 0 && c.fenceSeqs[0] == seq {
		c.fenceSeqs = c.fenceSeqs[1:]
	}
}

func (c *Core) compact() {
	if c.robHead > 4*c.cfg.ROBSize {
		c.rob = append(c.rob[:0], c.rob[c.robHead:]...)
		c.robHead = 0
	}
	if c.lqHead > 4*c.cfg.LQSize {
		c.lq = append(c.lq[:0], c.lq[c.lqHead:]...)
		c.lqHead = 0
	}
	if c.sqHead > 4*c.cfg.SQSize {
		c.sq = append(c.sq[:0], c.sq[c.sqHead:]...)
		c.sqHead = 0
	}
}

// -------------------------------------------------------------- complete --

// complete handles instructions whose execution finishes this cycle:
// writeback, branch resolution, and misprediction recovery (oldest first).
func (c *Core) complete() {
	var recover *DynInst
	for i := c.robHead; i < len(c.rob); i++ {
		d := c.rob[i]
		if d.State != StateExecuting || d.DoneCycle != c.cycle {
			continue
		}
		d.State = StateDone
		if d.Dst >= 0 {
			c.regVal[d.Dst] = d.Result
			c.regReady[d.Dst] = true
		}
		if d.BrSlot >= 0 {
			if d.Mispredict && recover == nil {
				recover = d // oldest mispredict this cycle (rob order)
			} else if !d.Mispredict {
				c.resolveSlot(d)
			}
		}
	}
	if recover != nil {
		c.recoverFrom(recover)
	}
}

// resolveSlot retires a correctly-speculated control instruction's BDT slot
// and clears its bit from every in-flight dependency mask.
func (c *Core) resolveSlot(d *DynInst) {
	slot := d.BrSlot
	d.BrSlot = -1
	c.BT.Resolve(slot)
	c.policy.OnSlotResolved(slot)
	for i := c.robHead; i < len(c.rob); i++ {
		e := c.rob[i]
		e.WaitMask = e.WaitMask.Without(slot)
		e.DataMask = e.DataMask.Without(slot)
	}
}

// recoverFrom squashes everything younger than the mispredicted control
// instruction d and redirects fetch to the resolved target.
func (c *Core) recoverFrom(d *DynInst) {
	// Squash younger window contents, youngest first.
	for i := len(c.rob) - 1; i > c.robHead; i-- {
		e := c.rob[i]
		if e.Seq <= d.Seq {
			break
		}
		e.Squashed = true
		c.policy.OnSquash(e)
		if e.Dst >= 0 {
			c.freeList = append(c.freeList, e.Dst)
		}
		c.rob = c.rob[:i]
		c.stats.Squashed++
	}
	// Remove squashed entries from the side queues.
	c.iq = filterLive(c.iq)
	c.lq = trimYounger(c.lq, d.Seq)
	c.sq = trimYounger(c.sq, d.Seq)
	for len(c.fenceSeqs) > 0 && c.fenceSeqs[len(c.fenceSeqs)-1] > d.Seq {
		c.fenceSeqs = c.fenceSeqs[:len(c.fenceSeqs)-1]
	}
	c.fetchBuf = c.fetchBuf[:0]

	// Branch table: free younger slots, restore region state, then resolve
	// the mispredicted control instruction itself.
	c.BT.Squash(d.Seq, d.BrSlot)
	c.resolveSlot(d)

	// Restore the rename map and predictor state.
	c.rat = d.Check.RAT
	c.Pred.Recover(d.Check.Pred, d.IsCondBranch(), d.ActualTaken)
	if d.Inst.Op == isa.JALR {
		// Re-apply the RAS effect of the (now resolved) JALR.
		if d.UsedRAS {
			c.Pred.PopRAS()
		} else if d.Inst.Rd == isa.RegRA {
			c.Pred.PushRAS(d.PC + isa.InstBytes)
		}
	}

	c.fetchPC = d.ActualNext
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.fetchHalted = false
	c.lastFetchLine = ^uint64(0)
}

func filterLive(q []*DynInst) []*DynInst {
	out := q[:0]
	for _, d := range q {
		if !d.Squashed {
			out = append(out, d)
		}
	}
	return out
}

func trimYounger(q []*DynInst, seq uint64) []*DynInst {
	for len(q) > 0 && q[len(q)-1].Seq > seq {
		q = q[:len(q)-1]
	}
	return q
}

// ----------------------------------------------------------------- issue --

func (c *Core) issue() {
	aluFree := c.cfg.NumALU
	mulFree := c.cfg.NumMul
	memFree := c.cfg.NumMemPorts
	issued := 0

	// Drop finished/squashed entries, keeping age order.
	live := c.iq[:0]
	for _, d := range c.iq {
		if !d.Squashed && d.State != StateDone && d.State != StateExecuting {
			live = append(live, d)
		}
	}
	c.iq = live

	for _, d := range c.iq {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if d.State != StateRenamed {
			continue
		}
		// Serialization: nothing younger than an in-flight FENCE/HALT runs.
		if len(c.fenceSeqs) > 0 && d.Seq > c.fenceSeqs[0] {
			continue
		}
		op := d.Inst.Op
		// FENCE and HALT execute only from the window head.
		if (op == isa.FENCE || op == isa.HALT) && !c.isHead(d) {
			continue
		}
		if !c.srcsReady(d) {
			continue
		}
		// Memory structural checks first: a load blocked by an unresolved
		// older store address is a correctness stall, not a policy stall.
		var fwd *DynInst
		if d.IsLoad() || d.IsStore() || op == isa.CFLUSH {
			if memFree <= 0 {
				continue
			}
			c.computeAddr(d)
			if d.IsLoad() {
				ok, src := c.loadMayIssue(d)
				if !ok {
					continue
				}
				fwd = src
			}
		}
		switch op.Class() {
		case isa.ClassALU, isa.ClassBranch, isa.ClassJump:
			if aluFree <= 0 {
				continue
			}
		case isa.ClassMul:
			if mulFree <= 0 {
				continue
			}
		case isa.ClassDiv:
			if c.divBusyUntil > c.cycle {
				continue
			}
		case isa.ClassSystem:
			if op == isa.CFLUSH {
				// uses a memory port, checked above
			} else if aluFree <= 0 {
				continue
			}
		}
		// Policy gate.
		decision := c.policy.Decide(d)
		if decision == Wait {
			d.EverWaited = true
			c.stats.PolicyWaitEvents++
			continue
		}
		if op.IsTransmitter() && c.BT.Unresolved() != 0 {
			d.specAtIssue = true
		}
		// Fire.
		switch op.Class() {
		case isa.ClassALU, isa.ClassBranch, isa.ClassJump:
			aluFree--
		case isa.ClassMul:
			mulFree--
		case isa.ClassSystem:
			if op == isa.CFLUSH {
				memFree--
			} else {
				aluFree--
			}
		case isa.ClassLoad, isa.ClassStore:
			memFree--
		}
		c.execute(d, decision, fwd)
		issued++
	}
}

func (c *Core) isHead(d *DynInst) bool {
	return c.robHead < len(c.rob) && c.rob[c.robHead] == d
}

func (c *Core) srcsReady(d *DynInst) bool {
	if d.Src1 >= 0 && !c.regReady[d.Src1] {
		return false
	}
	if d.Src2 >= 0 && !c.regReady[d.Src2] {
		return false
	}
	return true
}

func (c *Core) srcVal(phys int) uint64 {
	if phys < 0 {
		return 0
	}
	return c.regVal[phys]
}

func (c *Core) computeAddr(d *DynInst) {
	if !d.AddrReady {
		d.Addr = c.srcVal(d.Src1) + uint64(d.Inst.Imm)
		d.AddrReady = true
	}
}

// loadMayIssue enforces conservative memory disambiguation: every older
// store's address must be known; an exact-match store with captured data
// forwards; any partial overlap stalls the load until the store commits.
func (c *Core) loadMayIssue(d *DynInst) (bool, *DynInst) {
	size := uint64(d.Inst.Op.MemBytes())
	var match *DynInst
	for i := c.sqHead; i < len(c.sq); i++ {
		s := c.sq[i]
		if s.Seq > d.Seq {
			break
		}
		if !s.AddrReady {
			return false, nil
		}
		ssize := uint64(s.Inst.Op.MemBytes())
		if s.Addr < d.Addr+size && d.Addr < s.Addr+ssize {
			if s.Addr == d.Addr && ssize == size && s.State == StateDone {
				match = s // youngest older exact match wins
			} else {
				return false, nil // partial overlap: wait for store commit
			}
		}
	}
	return true, match
}

// execute computes d's result and schedules completion.
func (c *Core) execute(d *DynInst, decision Decision, fwd *DynInst) {
	op := d.Inst.Op
	v1 := c.srcVal(d.Src1)
	v2 := c.srcVal(d.Src2)
	if op.HasImm() && op.Class() != isa.ClassLoad && op.Class() != isa.ClassStore &&
		op != isa.JALR && op != isa.CFLUSH && !op.IsBranch() && op != isa.JAL {
		v2 = uint64(d.Inst.Imm)
	}
	lat := 1
	switch op.Class() {
	case isa.ClassALU:
		d.Result = isa.EvalALU(op, v1, v2)
	case isa.ClassMul:
		d.Result = isa.EvalALU(op, v1, v2)
		lat = c.cfg.MulLatency
	case isa.ClassDiv:
		d.Result = isa.EvalALU(op, v1, v2)
		// Operand-dependent latency: what makes the divider a transmitter.
		lat = c.cfg.DivLatencyBase
		if c.cfg.DivLatencyRange > 0 {
			lat += bits.Len64(v1) * c.cfg.DivLatencyRange / 64
		}
		c.divBusyUntil = c.cycle + uint64(lat)
	case isa.ClassLoad:
		lat = c.executeLoad(d, decision, fwd)
	case isa.ClassStore:
		d.Result = v2
		if d.Addr+uint64(op.MemBytes()) > isa.MemLimit ||
			(op.MemBytes() > 1 && d.Addr%uint64(op.MemBytes()) != 0) {
			d.MemErr = true
		}
	case isa.ClassBranch:
		d.ActualTaken = isa.EvalBranch(op, v1, v2)
		if d.ActualTaken {
			d.ActualNext = d.Inst.BranchTarget(d.PC)
		} else {
			d.ActualNext = d.PC + isa.InstBytes
		}
		d.Mispredict = d.ActualNext != d.PredNext
		lat += c.cfg.BranchResolveLatency
	case isa.ClassJump:
		d.Result = d.PC + isa.InstBytes
		if op == isa.JAL {
			d.ActualNext = d.Inst.BranchTarget(d.PC)
		} else {
			d.ActualNext = (v1 + uint64(d.Inst.Imm)) &^ 1
			d.Mispredict = d.ActualNext != d.PredNext
			lat += c.cfg.BranchResolveLatency
		}
	case isa.ClassSystem:
		switch op {
		case isa.RDCYCLE:
			d.Result = c.cycle
		case isa.PUTC, isa.PUTI, isa.HALT:
			d.Result = v1
		case isa.CFLUSH:
			// Microarchitectural effect at execute time — this is the
			// speculative attack primitive the policies must gate.
			c.Hier.Flush(d.Addr)
		case isa.FENCE:
			// No effect; serialization handled at issue.
		}
	}
	d.State = StateExecuting
	d.DoneCycle = c.cycle + uint64(lat)
}

// executeLoad performs the data access and returns its latency.
func (c *Core) executeLoad(d *DynInst, decision Decision, fwd *DynInst) int {
	size := d.Inst.Op.MemBytes()
	if fwd != nil {
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		d.Result = isa.ExtendLoad(d.Inst.Op, fwd.Result&mask)
		d.FwdFrom = fwd
		c.policy.OnForward(d, fwd)
		return 1
	}
	raw, err := c.Phys.Read(d.Addr, size)
	if err != nil {
		// Wrong-path access outside simulated memory: produce a harmless
		// value with hit latency and no cache perturbation. If this load is
		// actually architectural the commit stage reports the fault.
		d.MemErr = true
		d.Result = 0
		return c.cfg.Hier.L1D.Latency
	}
	d.Result = isa.ExtendLoad(d.Inst.Op, raw)
	if decision == ProceedInvisible {
		d.Invisible = true
		return c.Hier.InvisibleLoadLatency(d.Addr)
	}
	return c.Hier.LoadLatency(d.Addr)
}

// ---------------------------------------------------------------- rename --

func (c *Core) rename() {
	for n := 0; n < c.cfg.RenameWidth && len(c.fetchBuf) > 0; n++ {
		d := c.fetchBuf[0]
		if len(c.rob)-c.robHead >= c.cfg.ROBSize {
			return
		}
		if len(c.iq) >= c.cfg.IQSize {
			return
		}
		op := d.Inst.Op
		if d.IsLoad() && len(c.lq)-c.lqHead >= c.cfg.LQSize {
			return
		}
		if d.IsStore() && len(c.sq)-c.sqHead >= c.cfg.SQSize {
			return
		}
		needsSlot := d.IsCondBranch() || op == isa.JALR
		bdtCap := c.cfg.BDTEntries
		if bdtCap == 0 {
			bdtCap = core.NumSlots
		}
		if needsSlot && c.BT.InFlight() >= bdtCap {
			c.BT.AllocFailures++
			return
		}
		hasDst := op.HasRd() && d.Inst.Rd != isa.RegZero
		if hasDst && len(c.freeList) == 0 {
			return
		}

		c.fetchBuf = c.fetchBuf[1:]
		c.BT.CloseRegions(d.PC)

		d.Src1, d.Src2, d.Dst, d.OldDst = -1, -1, -1, -1
		if op.HasRs1() && d.Inst.Rs1 != isa.RegZero {
			d.Src1 = c.rat[d.Inst.Rs1]
		}
		if op.HasRs2() && d.Inst.Rs2 != isa.RegZero {
			d.Src2 = c.rat[d.Inst.Rs2]
		}
		if hasDst {
			d.OldDst = c.rat[d.Inst.Rd]
			d.Dst = c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			c.regReady[d.Dst] = false
			c.rat[d.Inst.Rd] = d.Dst
		}

		// Policy sees the pre-allocation table state (its own slot is not a
		// dependency of itself).
		c.policy.OnRename(d)

		if needsSlot {
			slot, ok := c.BT.Alloc(d.Seq, d.PC)
			if !ok {
				// Should not happen: capacity checked above. Treat as stall.
				c.fetchBuf = append([]*DynInst{d}, c.fetchBuf...)
				return
			}
			d.BrSlot = slot
			d.Check.RAT = c.rat
		}
		if op == isa.FENCE || op == isa.HALT {
			c.fenceSeqs = append(c.fenceSeqs, d.Seq)
		}

		d.State = StateRenamed
		c.rob = append(c.rob, d)
		c.iq = append(c.iq, d)
		if d.IsLoad() {
			c.lq = append(c.lq, d)
		}
		if d.IsStore() {
			c.sq = append(c.sq, d)
		}
		c.stats.Renamed++
	}
}

// ----------------------------------------------------------------- fetch --

func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchStallUntil {
		return
	}
	lineBytes := uint64(c.cfg.Hier.L1I.LineBytes)
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf) < c.cfg.FetchBufSize; n++ {
		inst, ok := c.prog.InstAt(c.fetchPC)
		if !ok {
			// Wrong-path fetch ran outside the text segment; stall until a
			// misprediction recovery redirects us.
			c.fetchHalted = true
			return
		}
		if line := c.fetchPC / lineBytes; line != c.lastFetchLine {
			lat := c.Hier.FetchLatency(c.fetchPC)
			c.lastFetchLine = line
			if lat > c.cfg.Hier.L1I.Latency {
				// Miss: deliver nothing until the line arrives.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}
		c.seq++
		d := &DynInst{Seq: c.seq, PC: c.fetchPC, Inst: inst, BrSlot: -1}
		next := c.fetchPC + isa.InstBytes
		switch {
		case inst.Op.IsBranch():
			d.Check = &Checkpoint{Pred: c.Pred.Checkpoint()}
			taken, idx := c.Pred.PredictBranch(c.fetchPC)
			d.PredTaken, d.PhtIdx = taken, idx
			if taken {
				next = inst.BranchTarget(c.fetchPC)
			}
		case inst.Op == isa.JAL:
			next = inst.BranchTarget(c.fetchPC)
			if inst.Rd == isa.RegRA {
				c.Pred.PushRAS(c.fetchPC + isa.InstBytes)
			}
		case inst.Op == isa.JALR:
			d.Check = &Checkpoint{Pred: c.Pred.Checkpoint()}
			if inst.Rd == isa.RegZero && inst.Rs1 == isa.RegRA {
				next = c.Pred.PopRAS()
				d.UsedRAS = true
			} else {
				if tgt, hit := c.Pred.PredictIndirect(c.fetchPC); hit {
					next = tgt
				}
				if inst.Rd == isa.RegRA {
					c.Pred.PushRAS(c.fetchPC + isa.InstBytes)
				}
			}
		}
		d.PredNext = next
		c.fetchBuf = append(c.fetchBuf, d)
		c.stats.Fetched++
		c.fetchPC = next
		if inst.Op == isa.HALT {
			c.fetchHalted = true
			return
		}
		if inst.Op.IsControl() && next != d.PC+isa.InstBytes {
			return // taken-control fetch break
		}
	}
}

func appendInt(b []byte, v int64) []byte {
	return strconv.AppendInt(b, v, 10)
}
