package cpu

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"

	"levioso/internal/core"
	"levioso/internal/isa"
	"levioso/internal/mem"
	"levioso/internal/simerr"
)

// Result summarizes a completed run.
type Result struct {
	ExitCode uint64
	Output   string
	Stats    Stats
}

// Core is one out-of-order LEV64 core.
type Core struct {
	cfg    Config
	prog   *isa.Program
	policy Policy

	// meta is the decoded-instruction cache: one entry per static
	// instruction, indexed by text position (see meta.go).
	meta []instMeta

	BT   *core.BranchTable
	Hier MemSystem
	Phys *mem.Memory
	Pred BranchPredictor

	// Physical register file.
	regVal   []uint64
	regReady []bool
	rat      [isa.NumRegs]int // speculative rename map
	commitRT [isa.NumRegs]int // architectural (retirement) map
	freeList []int

	// Windows. rob/lq/sq are program-order queues with a moving head.
	rob     []*DynInst
	robHead int
	lq      []*DynInst
	lqHead  int
	sq      []*DynInst
	sqHead  int

	// Event-driven issue scheduling (see issue()). readyQ holds the
	// operand-ready, not-yet-issued instructions in age (Seq) order — the
	// only candidates the issue stage examines. waiters parks each queued
	// instruction on the physical registers it still needs; the writeback
	// path wakes the list instead of the issue stage rescanning the whole
	// queue every cycle. iqCount tracks issue-queue occupancy for rename's
	// capacity check; an issued instruction vacates its entry at the *next*
	// cycle's issue stage (via iqFreed), reproducing the drop timing of the
	// scan-based queue this design replaces.
	readyQ  []*DynInst
	waiters [][]waiter
	iqCount int
	iqFreed []waiter

	fetchBuf []*DynInst
	fbHead   int

	// Completion wheel (see wheel.go): executing instructions bucketed by
	// DoneCycle, so the complete stage touches only the instructions
	// finishing this cycle instead of scanning the window. bucketBits marks
	// the nonempty buckets so the idle fast-forward (see idleSkip) can find
	// the next completion event without walking the wheel.
	wheel      [wheelSize][]wheelEntry
	bucketBits [wheelSize / 64]uint64
	dueBuf     []*DynInst

	// active records whether the current cycle changed any simulation state
	// (committed, completed, issued, renamed, fetched, consulted a policy,
	// or bumped a stall counter). A cycle that did none of those is provably
	// a pure wait — identical state next cycle — so Run jumps the cycle
	// counter straight to the next timed event instead of replaying no-ops.
	active bool

	// Free pools (see pool.go): recycled DynInst/Checkpoint objects so the
	// steady-state fetch path performs no heap allocation.
	instPool    []*DynInst
	checkPool   []*Checkpoint
	instAllocd  int
	checkAllocd int

	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool
	lastFetchLine   uint64 // last I-cache line touched (avoid per-inst lookups)
	lineShift       uint   // log2(L1I line bytes): fetch-line math is a shift

	// nop is true when the attached policy is the NopPolicy baseline: every
	// policy hook is a no-op and no instruction ever carries a dependency
	// mask, so the hot loop skips the interface calls and the resolved-slot
	// mask-clearing walk entirely.
	nop bool
	// bdtCap is the resolved Branch Dependency Table capacity (Config
	// default applied once, not per renamed branch).
	bdtCap int

	// sec is the secret-taint state, allocated only when the policy
	// implements SecretTainter (see secret.go); nil otherwise.
	sec *secretState

	// cov is the attached coverage sink (Config.Coverage); nil for normal
	// runs, so every hook site costs one predictable branch.
	cov *CoverageSink

	fenceSeqs []uint64 // in-flight FENCE/HALT sequence numbers, program order

	divBusyUntil uint64
	divBusySeq   uint64 // Seq of the divide occupying the divider (0 = none)

	cycle uint64
	seq   uint64

	out      []byte
	halted   bool
	exitCode uint64

	stats           Stats
	lastCommitCycle uint64
}

// New builds a core with prog loaded, memory initialized, and the policy
// attached. Pass NopPolicy{} for an unprotected core.
func New(prog *isa.Program, cfg Config, pol Policy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	phys := mem.NewMemory()
	phys.WriteBytes(isa.DataBase, prog.Data)
	hier, err := mem.NewHierarchy(cfg.Hier, phys)
	if err != nil {
		return nil, err
	}
	var ms MemSystem = hier
	if cfg.WrapMem != nil {
		ms = cfg.WrapMem(ms)
	}
	var pred BranchPredictor = NewPredictor(cfg.Predictor)
	if cfg.WrapPred != nil {
		pred = cfg.WrapPred(pred)
	}
	c := &Core{
		cfg:    cfg,
		prog:   prog,
		policy: pol,
		meta:   buildMeta(prog),
		BT:     core.NewBranchTable(prog),
		Hier:   ms,
		Phys:   phys,
		Pred:   pred,
		cov:    cfg.Coverage,
	}
	c.regVal = make([]uint64, cfg.NumPhysRegs)
	c.regReady = make([]bool, cfg.NumPhysRegs)
	// Pre-size the wakeup lists (and the issue-scheduler queues below) so the
	// steady-state run allocates nothing: a register rarely collects more
	// than a handful of waiters, and the lists keep their capacity across
	// the ws[:0] reset in wake.
	c.waiters = make([][]waiter, cfg.NumPhysRegs)
	waiterSlab := make([]waiter, cfg.NumPhysRegs*8)
	for p := range c.waiters {
		c.waiters[p] = waiterSlab[p*8 : p*8 : (p+1)*8]
	}
	c.readyQ = make([]*DynInst, 0, cfg.IQSize+1)
	c.iqFreed = make([]waiter, 0, cfg.IssueWidth)
	// Pre-build the object pools from contiguous slabs sized to the window:
	// the steady-state loop then allocates nothing (no GC pressure charged
	// to the simulation), and window walks touch adjacent memory.
	instSlab := make([]DynInst, cfg.ROBSize+cfg.FetchBufSize+8)
	c.instPool = make([]*DynInst, 0, len(instSlab)+8)
	for i := range instSlab {
		c.instPool = append(c.instPool, &instSlab[i])
	}
	c.instAllocd = len(instSlab)
	checkSlab := make([]Checkpoint, core.NumSlots+cfg.FetchBufSize+8)
	c.checkPool = make([]*Checkpoint, 0, len(checkSlab)+8)
	for i := range checkSlab {
		c.checkPool = append(c.checkPool, &checkSlab[i])
	}
	c.checkAllocd = len(checkSlab)
	// Completion-wheel buckets share one slab; a bucket overflowing its
	// four-entry reservation grows out of it individually (and keeps the
	// larger capacity from then on).
	entrySlab := make([]wheelEntry, wheelSize*4)
	for b := range c.wheel {
		c.wheel[b] = entrySlab[b*4 : b*4 : (b+1)*4]
	}
	c.dueBuf = make([]*DynInst, 0, 64)
	c.rob = make([]*DynInst, 0, 4*cfg.ROBSize+cfg.ROBSize+8)
	c.lq = make([]*DynInst, 0, 4*cfg.LQSize+cfg.LQSize+8)
	c.sq = make([]*DynInst, 0, 4*cfg.SQSize+cfg.SQSize+8)
	c.fetchBuf = make([]*DynInst, 0, 4*cfg.FetchBufSize+cfg.FetchBufSize+8)
	for r := 0; r < isa.NumRegs; r++ {
		c.rat[r] = r
		c.commitRT[r] = r
		c.regReady[r] = true
	}
	c.regVal[isa.RegSP] = isa.StackTop
	c.regVal[isa.RegGP] = isa.DataBase
	for p := isa.NumRegs; p < cfg.NumPhysRegs; p++ {
		c.freeList = append(c.freeList, p)
	}
	c.fetchPC = prog.Entry
	c.lastFetchLine = ^uint64(0)
	c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.Hier.L1I.LineBytes)))
	c.bdtCap = cfg.BDTEntries
	if c.bdtCap == 0 {
		c.bdtCap = core.NumSlots
	}
	_, c.nop = pol.(NopPolicy)
	if _, ok := pol.(SecretTainter); ok {
		c.sec = newSecretState(c)
	}
	pol.Attach(c)
	pol.Reset()
	return c, nil
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Prog returns the loaded program.
func (c *Core) Prog() *isa.Program { return c.prog }

// Cycle returns the current cycle count.
func (c *Core) CycleCount() uint64 { return c.cycle }

// Halted reports whether a HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Output returns console output so far.
func (c *Core) Output() string { return string(c.out) }

// ArchReg returns the architectural (retired) value of register r.
func (c *Core) ArchReg(r isa.Reg) uint64 { return c.regVal[c.commitRT[r]] }

// Run simulates until HALT commits or a limit trips.
func (c *Core) Run() (Result, error) {
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
		c.idleSkip()
	}
	return c.result(), nil
}

// RunContext simulates until HALT commits, a limit trips, or ctx is done.
// Cancellation is cooperative — checked every few thousand cycles so the
// hot loop stays select-free — and surfaces as simerr.ErrDeadline, which the
// sweep supervisor classifies transient (a wall-clock budget, not a model
// property).
func (c *Core) RunContext(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Power-of-two mask so the check costs one AND per cycle. At the
	// simulator's throughput this bounds cancellation latency well under a
	// millisecond.
	const checkMask = 1<<13 - 1
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
		c.idleSkip()
		if c.cycle&checkMask == 0 {
			select {
			case <-ctx.Done():
				return Result{}, &simerr.RunError{
					Kind: simerr.KindDeadline, Cycle: c.cycle, PC: c.fetchPC,
					Err: ctx.Err(),
				}
			default:
			}
		}
	}
	return c.result(), nil
}

func (c *Core) result() Result {
	c.syncStats()
	return Result{ExitCode: c.exitCode, Output: string(c.out), Stats: c.stats}
}

// syncStats folds the service-owned counters (cache hierarchy, branch table)
// into c.stats. Everything else in Stats is maintained incrementally by the
// pipeline stages.
func (c *Core) syncStats() {
	hs := c.Hier.Stats()
	c.stats.L1IHits = hs.L1I.Hits
	c.stats.L1IMisses = hs.L1I.Misses
	c.stats.L1DHits = hs.L1D.Hits
	c.stats.L1DMisses = hs.L1D.Misses
	c.stats.L2Hits = hs.L2.Hits
	c.stats.L2Misses = hs.L2.Misses
	c.stats.BDTAllocStalls = c.BT.AllocFailures
	c.stats.Cycles = c.cycle
}

// Stats returns the statistics accumulated so far (cache counters are synced
// on read). Unlike result it does not snapshot the console output, so live
// observers — supervisor failure reports, periodic metrics — can poll it
// without copying the run's output buffer every call.
func (c *Core) Stats() Stats {
	c.syncStats()
	return c.stats
}

// Step advances the core by one cycle.
func (c *Core) Step() error {
	if c.halted {
		return nil
	}
	c.cycle++
	if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
		return &simerr.RunError{
			Kind: simerr.KindCycleLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("cycle limit %d exceeded", c.cfg.MaxCycles),
		}
	}
	if c.cfg.MaxInsts > 0 && c.stats.Committed > c.cfg.MaxInsts {
		return &simerr.RunError{
			Kind: simerr.KindInstLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("instruction limit %d exceeded", c.cfg.MaxInsts),
		}
	}
	wd := c.cfg.WatchdogCycles
	if wd == 0 {
		wd = 100_000
	}
	if wd > 0 && c.cycle-c.lastCommitCycle > uint64(wd) {
		return &simerr.RunError{
			Kind: simerr.KindWatchdog, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("no commit for %d cycles (%s)", wd, c.deadlockInfo()),
		}
	}
	c.active = false
	if c.cfg.CommitStall == nil || !c.cfg.CommitStall(c.cycle) {
		if err := c.commit(); err != nil {
			return err
		}
	}
	c.complete()
	c.issue()
	c.rename()
	c.fetch()
	return nil
}

// idleSkip advances the cycle counter to just before the next timed event
// when the cycle that just executed was provably a pure wait (no stage
// changed any state — see Core.active). Every skipped cycle would have been
// an identical no-op: the only cycle-dependent conditions in the pipeline
// are the completion wheel, the fetch-stall and divider release times, the
// invisible-load exposure at the commit head, and the watchdog/limit trips —
// all accounted for below. With a CommitStall hook installed (fault
// injection) cycles are never skipped, since the hook must be consulted
// every cycle.
func (c *Core) idleSkip() {
	if c.active || c.halted || c.cfg.CommitStall != nil {
		return
	}
	if c.cfg.MaxInsts > 0 && c.stats.Committed > c.cfg.MaxInsts {
		return // about to trip: let Step report it at the very next cycle
	}
	const never = ^uint64(0)
	next := never
	if t, ok := c.wheelNext(); ok {
		next = t
	}
	if !c.fetchHalted && c.fetchStallUntil > c.cycle && c.fetchStallUntil < next {
		next = c.fetchStallUntil
	}
	if c.divBusyUntil > c.cycle && c.divBusyUntil < next {
		next = c.divBusyUntil
	}
	if c.robHead < len(c.rob) {
		if d := c.rob[c.robHead]; d.State == StateDone && d.exposeUntil > c.cycle && d.exposeUntil < next {
			next = d.exposeUntil
		}
	}
	if next == never {
		return // no pending event: step normally (deadlock → watchdog)
	}
	wd := c.cfg.WatchdogCycles
	if wd == 0 {
		wd = 100_000
	}
	if wd > 0 {
		if trip := c.lastCommitCycle + uint64(wd) + 1; trip < next {
			next = trip
		}
	}
	if c.cfg.MaxCycles > 0 && c.cfg.MaxCycles+1 < next {
		next = c.cfg.MaxCycles + 1
	}
	if next > c.cycle+1 {
		c.cycle = next - 1 // the next Step lands exactly on the event cycle
	}
}

// memFault builds the typed error for a committed access outside simulated
// memory (an architectural fault in the guest program, not a model bug).
func (c *Core) memFault(d *DynInst, what string, cause error) error {
	return &simerr.RunError{
		Kind: simerr.KindMemFault, Cycle: c.cycle, PC: d.PC,
		Detail: fmt.Sprintf("%s: %v addr=%#x committed", what, d.Inst, d.Addr),
		Err:    cause,
	}
}

func (c *Core) deadlockInfo() string {
	if c.robHead >= len(c.rob) {
		return fmt.Sprintf("window empty, fetchPC=%#x fetchHalted=%v", c.fetchPC, c.fetchHalted)
	}
	d := c.rob[c.robHead]
	return fmt.Sprintf("head seq=%d pc=%#x %v state=%d wait=%#x", d.Seq, d.PC, d.Inst, d.State, uint64(d.WaitMask))
}

// ---------------------------------------------------------------- commit --

func (c *Core) commit() error {
	// Width and ROB length are invariant across the loop (commit only
	// advances robHead); hoisting them drops two reloads per retired
	// instruction that the compiler cannot eliminate across calls.
	cw := c.cfg.CommitWidth
	robLen := len(c.rob)
	for n := 0; n < cw && c.robHead < robLen; n++ {
		d := c.rob[c.robHead]
		if d.State != StateDone {
			return nil
		}
		m := d.m
		op := m.inst.Op
		switch {
		case m.flags&mStore != 0:
			if d.MemErr {
				return c.memFault(d, "store to invalid address", nil)
			}
			if err := c.Phys.Write(d.Addr, int(m.memBytes), d.Result); err != nil {
				return c.memFault(d, "store failed", err)
			}
			c.Hier.FillVisible(d.Addr)
			if c.sec != nil {
				c.sec.commitStore(d, int(m.memBytes))
			}
			c.sqHead++
			c.stats.Stores++
		case m.flags&mLoad != 0:
			if d.MemErr {
				return c.memFault(d, "load from invalid address", nil)
			}
			if d.Invisible && d.FwdFrom == nil {
				// Deferred exposure of an invisible load: the line becomes
				// architecturally cached only now that the load is safe, and
				// the load cannot retire until the exposure/validation access
				// completes (the InvisiSpec validation step). Because the
				// invisible execution never filled the cache, validation of a
				// missing line pays the full hierarchy latency again — the
				// dominant cost of the invisible-execution defense class.
				if d.exposeUntil == 0 {
					lat := c.Hier.InvisibleLoadLatency(d.Addr)
					c.Hier.FillVisible(d.Addr)
					d.exposeUntil = c.cycle + uint64(lat)
					c.active = true // exposure access started
					c.compact()
					return nil
				}
				if c.cycle < d.exposeUntil {
					c.compact()
					return nil
				}
				c.stats.InvisibleLoads++
			}
			if d.FwdFrom != nil {
				c.stats.LoadForward++
			}
			c.lqHead++
			c.stats.Loads++
			if c.cov != nil {
				c.cov.mark(covLoad, covSite(d), covBit(d.FwdFrom != nil)|covBit(d.Invisible)<<1)
			}
		case op == isa.PUTC:
			c.out = append(c.out, byte(d.Result))
		case op == isa.PUTI:
			c.out = appendInt(c.out, int64(d.Result))
		case op == isa.HALT:
			c.halted = true
			c.exitCode = d.Result
			c.popFence(d.Seq)
		case op == isa.FENCE:
			c.popFence(d.Seq)
		case m.flags&mCondBranch != 0:
			c.Pred.UpdateBranch(d.PhtIdx, d.ActualTaken)
			c.stats.CondBranches++
			if d.Mispredict {
				c.stats.CondMispredicts++
			}
			if c.cov != nil {
				c.cov.mark(covBranch, covSite(d), covBit(d.ActualTaken)|covBit(d.Mispredict)<<1)
			}
		case op == isa.JALR:
			if !d.UsedRAS {
				c.Pred.UpdateIndirect(d.PC, d.ActualNext)
			}
			c.stats.Indirects++
			if d.Mispredict {
				c.stats.IndMispredicts++
			}
			if c.cov != nil {
				// Outcome bit 2 marks the indirect class apart from the
				// conditional taken/mispredict encodings above.
				c.cov.mark(covBranch, covSite(d), 1<<2|covBit(d.Mispredict))
			}
		}
		if m.flags&mTransmitter != 0 {
			c.stats.Transmitters++
			if d.EverWaited {
				c.stats.RestrictedTransmitters++
			}
			if d.specAtIssue {
				c.stats.SpecTransmitters++
			}
			if c.cov != nil {
				c.cov.mark(covTransmit, covSite(d), covBit(d.EverWaited)|covBit(d.specAtIssue)<<1)
			}
		}
		if d.Dst >= 0 {
			if d.OldDst >= 0 {
				c.freeList = append(c.freeList, d.OldDst)
			}
			c.commitRT[d.Inst.Rd] = d.Dst
		}
		if c.cfg.Trace != nil {
			c.traceCommit(d)
		}
		c.robHead++
		c.stats.Committed++
		c.lastCommitCycle = c.cycle
		c.active = true
		// Retired: recycle the object. The dead ROB prefix is never read, and
		// the only surviving references (a younger load's FwdFrom) are
		// identity-only.
		c.freeInst(d)
		if c.halted {
			break
		}
	}
	c.compact()
	return nil
}

// traceCommit writes one human-readable line per retired instruction.
func (c *Core) traceCommit(d *DynInst) {
	flags := ""
	if d.Mispredict {
		flags += " MISPREDICT"
	}
	if d.EverWaited {
		flags += " WAITED"
	}
	if d.Invisible {
		flags += " INVISIBLE"
	}
	if d.FwdFrom != nil {
		flags += " FWD"
	}
	loc := ""
	if sym, off, ok := c.prog.NearestSymbol(d.PC); ok {
		loc = fmt.Sprintf(" <%s+%#x>", sym, off)
	}
	fmt.Fprintf(c.cfg.Trace, "%10d seq=%-8d %#06x%s  %s%s\n",
		c.cycle, d.Seq, d.PC, loc, d.Inst, flags)
}

func (c *Core) popFence(seq uint64) {
	if len(c.fenceSeqs) > 0 && c.fenceSeqs[0] == seq {
		c.fenceSeqs = c.fenceSeqs[1:]
	}
}

func (c *Core) compact() {
	if c.robHead > 4*c.cfg.ROBSize {
		c.rob = append(c.rob[:0], c.rob[c.robHead:]...)
		c.robHead = 0
	}
	if c.lqHead > 4*c.cfg.LQSize {
		c.lq = append(c.lq[:0], c.lq[c.lqHead:]...)
		c.lqHead = 0
	}
	if c.sqHead > 4*c.cfg.SQSize {
		c.sq = append(c.sq[:0], c.sq[c.sqHead:]...)
		c.sqHead = 0
	}
	if c.fbHead > 4*c.cfg.FetchBufSize {
		c.fetchBuf = append(c.fetchBuf[:0], c.fetchBuf[c.fbHead:]...)
		c.fbHead = 0
	}
}

// -------------------------------------------------------------- complete --

// complete handles instructions whose execution finishes this cycle:
// writeback, branch resolution, and misprediction recovery (oldest first).
// It is event-driven: the completion wheel hands back exactly the
// instructions whose DoneCycle is now, already in program order, so the cost
// is O(completions this cycle) instead of O(window).
func (c *Core) complete() {
	var recover *DynInst
	for _, d := range c.dueNow() {
		c.active = true
		d.State = StateDone
		if d.Dst >= 0 {
			c.regVal[d.Dst] = d.Result
			c.regReady[d.Dst] = true
			if len(c.waiters[d.Dst]) > 0 {
				c.wake(d.Dst)
			}
		}
		if d.BrSlot >= 0 {
			if d.Mispredict && recover == nil {
				recover = d // oldest mispredict this cycle (program order)
			} else if !d.Mispredict {
				c.resolveSlot(d)
			}
		}
	}
	if recover != nil {
		c.recoverFrom(recover)
	}
}

// resolveSlot retires a correctly-speculated control instruction's BDT slot
// and clears its bit from every in-flight dependency mask. The checkpoint is
// dead once the slot resolves (recovery can no longer target this
// instruction), so it is recycled here; recoverFrom therefore restores
// rename/predictor state before resolving the mispredicted instruction's own
// slot.
func (c *Core) resolveSlot(d *DynInst) {
	slot := d.BrSlot
	d.BrSlot = -1
	c.BT.Resolve(slot)
	// Under the NopPolicy no instruction ever carries a dependency mask
	// (OnRename is a no-op and masks reset with the object), so the
	// O(window) clearing walk is pure overhead and is skipped.
	if !c.nop {
		c.policy.OnSlotResolved(slot)
		for i := c.robHead; i < len(c.rob); i++ {
			e := c.rob[i]
			e.WaitMask = e.WaitMask.Without(slot)
			e.DataMask = e.DataMask.Without(slot)
		}
	}
	if d.Check != nil {
		c.freeCheck(d.Check)
		d.Check = nil
	}
}

// recoverFrom squashes everything younger than the mispredicted control
// instruction d and redirects fetch to the resolved target.
func (c *Core) recoverFrom(d *DynInst) {
	// Squash younger window contents, youngest first. The objects cannot be
	// recycled yet: the issue/load/store queues still reference them.
	nsq := 0
	for i := len(c.rob) - 1; i > c.robHead; i-- {
		e := c.rob[i]
		if e.Seq <= d.Seq {
			break
		}
		e.Squashed = true
		if !c.nop {
			c.policy.OnSquash(e)
		}
		if e.inIQ {
			e.inIQ = false
			c.iqCount--
		}
		if e.Dst >= 0 {
			c.freeList = append(c.freeList, e.Dst)
		}
		c.rob = c.rob[:i]
		c.stats.Squashed++
		nsq++
	}
	if c.cov != nil && nsq > 0 {
		c.cov.mark(covSquash, covSite(d), log2Bucket(nsq))
	}
	// A wrong-path divide occupying the divider is squashed with everything
	// else: a real core drops the operation when its station is flushed.
	// Without this, a squashed DIV's operand-dependent latency would block
	// correct-path divides after recovery.
	if c.divBusySeq > d.Seq {
		c.divBusyUntil = 0
		c.divBusySeq = 0
	}
	// Remove squashed entries from the side queues. Stale references left on
	// register wakeup lists and the vacate list are dropped lazily by their
	// generation tags.
	c.readyQ = filterLive(c.readyQ)
	c.lq = trimYounger(c.lq, c.lqHead, d.Seq)
	c.sq = trimYounger(c.sq, c.sqHead, d.Seq)
	for len(c.fenceSeqs) > 0 && c.fenceSeqs[len(c.fenceSeqs)-1] > d.Seq {
		c.fenceSeqs = c.fenceSeqs[:len(c.fenceSeqs)-1]
	}

	// Recycle the squashed instructions and the wrong-path fetch buffer.
	// Every live structure that could read through the pointers has been
	// filtered above; completion-wheel entries for in-flight squashed
	// instructions go stale via the generation bump in freeInst.
	for _, e := range c.rob[len(c.rob) : len(c.rob)+nsq] {
		c.freeInst(e)
	}
	for _, e := range c.fetchBuf[c.fbHead:] {
		c.freeInst(e)
	}
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0

	// Branch table: free younger slots and restore region state.
	c.BT.Squash(d.Seq, d.BrSlot)

	// Restore the rename map and predictor state.
	c.rat = d.Check.RAT
	c.Pred.Recover(d.Check.Pred, d.IsCondBranch(), d.ActualTaken)
	if d.Inst.Op == isa.JALR {
		// Re-apply the RAS effect of the (now resolved) JALR.
		if d.UsedRAS {
			c.Pred.PopRAS()
		} else if d.Inst.Rd == isa.RegRA {
			c.Pred.PushRAS(d.PC + isa.InstBytes)
		}
	}

	// Resolve the mispredicted control instruction's own slot last: this
	// recycles its checkpoint, which the restores above still read.
	c.resolveSlot(d)

	c.fetchPC = d.ActualNext
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.fetchHalted = false
	c.lastFetchLine = ^uint64(0)
}

func filterLive(q []*DynInst) []*DynInst {
	out := q[:0]
	for _, d := range q {
		if !d.Squashed {
			out = append(out, d)
		}
	}
	return out
}

// trimYounger pops queue entries younger than seq. It must stop at the
// queue's dead prefix (head): committed entries there have been recycled, so
// their Seq fields belong to unrelated newer instructions.
func trimYounger(q []*DynInst, head int, seq uint64) []*DynInst {
	for len(q) > head && q[len(q)-1].Seq > seq {
		q = q[:len(q)-1]
	}
	return q
}

// ----------------------------------------------------------------- issue --

// waiter is a generation-tagged instruction reference parked on a physical
// register's wakeup list (or the deferred issue-queue vacate list). The
// generation snapshot makes references to squash-recycled objects detectable,
// exactly as the completion wheel's entries are.
type waiter struct {
	d   *DynInst
	gen uint32
}

// wake delivers a register writeback to the instructions parked on it: each
// drops one pending operand and joins the ready queue (in age order) when its
// last one arrives. An instruction reading the same register through both
// source operands parked twice and is woken twice.
func (c *Core) wake(p int) {
	ws := c.waiters[p]
	for _, w := range ws {
		d := w.d
		if d.gen != w.gen || d.Squashed {
			continue // squashed since parking: drop the stale reference
		}
		if d.pending--; d.pending == 0 {
			c.readyInsert(d)
		}
	}
	c.waiters[p] = ws[:0]
}

// readyInsert files d into the ready queue at its age-ordered position.
// Wakeups arrive a few per cycle and mostly young, so the backward insertion
// scan is short; dispatch-time-ready instructions append directly (they are
// always the youngest).
func (c *Core) readyInsert(d *DynInst) {
	q := append(c.readyQ, d)
	i := len(q) - 1
	for i > 0 && q[i-1].Seq > d.Seq {
		q[i] = q[i-1]
		i--
	}
	q[i] = d
	c.readyQ = q
}

// issue is event-driven: it examines only the ready queue — instructions
// whose operands have all written back — instead of rescanning the whole
// issue queue every cycle. Selection order (age order over the ready subset)
// and all structural/policy gates are identical to the scan this replaces;
// an instruction blocked by a gate simply stays queued for the next cycle.
func (c *Core) issue() {
	// Instructions that fired last cycle vacate their issue-queue entry now:
	// the scan-based queue dropped them at the pass after they issued, so
	// rename's capacity check must see them occupying an entry one cycle.
	if len(c.iqFreed) > 0 {
		for _, w := range c.iqFreed {
			if w.d.gen == w.gen && w.d.inIQ {
				w.d.inIQ = false
				c.iqCount--
				c.active = true // occupancy drop: rename may now dispatch
			}
		}
		c.iqFreed = c.iqFreed[:0]
	}
	if len(c.readyQ) == 0 {
		return
	}
	aluFree := c.cfg.NumALU
	mulFree := c.cfg.NumMul
	memFree := c.cfg.NumMemPorts
	width := c.cfg.IssueWidth
	issued := 0
	// Serialization bound, hoisted: nothing younger than the oldest
	// in-flight FENCE/HALT runs.
	fenceSeq := ^uint64(0)
	if len(c.fenceSeqs) > 0 {
		fenceSeq = c.fenceSeqs[0]
	}

	keep := c.readyQ[:0]
	for _, d := range c.readyQ {
		if issued >= width {
			keep = append(keep, d)
			continue
		}
		if d.Seq > fenceSeq {
			keep = append(keep, d)
			continue
		}
		m := d.m
		// FENCE and HALT execute only from the window head.
		if m.flags&mFenceHalt != 0 && !c.isHead(d) {
			keep = append(keep, d)
			continue
		}
		// Memory structural checks first: a load blocked by an unresolved
		// older store address is a correctness stall, not a policy stall.
		var fwd *DynInst
		if m.flags&mMemPort != 0 {
			if memFree <= 0 {
				keep = append(keep, d)
				continue
			}
			c.computeAddr(d)
			if m.flags&mLoad != 0 {
				ok, src := c.loadMayIssue(d)
				if !ok {
					keep = append(keep, d)
					continue
				}
				fwd = src
			}
		}
		switch m.fu {
		case fuALU:
			if aluFree <= 0 {
				keep = append(keep, d)
				continue
			}
		case fuMul:
			if mulFree <= 0 {
				keep = append(keep, d)
				continue
			}
		case fuDiv:
			if c.divBusyUntil > c.cycle {
				keep = append(keep, d)
				continue
			}
		case fuMem:
			// Port availability checked in the mMemPort block above.
		}
		// Policy gate (skipped for the NopPolicy baseline: always Proceed).
		// A Decide call is activity even on Wait: it mutates policy state and
		// the wait statistics, so such cycles are never skipped.
		decision := Proceed
		if !c.nop {
			c.active = true
			decision = c.policy.Decide(d)
			if decision == Wait {
				d.EverWaited = true
				c.stats.PolicyWaitEvents++
				if c.cov != nil {
					c.cov.mark(covPolicyWait, covSite(d), 0)
				}
				keep = append(keep, d)
				continue
			}
		}
		if m.flags&mTransmitter != 0 && c.BT.Unresolved() != 0 {
			d.specAtIssue = true
		}
		// Fire.
		switch m.fu {
		case fuALU:
			aluFree--
		case fuMul:
			mulFree--
		case fuMem:
			memFree--
		case fuDiv:
			// The divider's occupancy is tracked by divBusyUntil.
		}
		c.execute(d, decision, fwd)
		c.iqFreed = append(c.iqFreed, waiter{d, d.gen})
		issued++
		c.active = true
	}
	c.readyQ = keep
}

func (c *Core) isHead(d *DynInst) bool {
	return c.robHead < len(c.rob) && c.rob[c.robHead] == d
}

func (c *Core) srcsReady(d *DynInst) bool {
	if d.Src1 >= 0 && !c.regReady[d.Src1] {
		return false
	}
	if d.Src2 >= 0 && !c.regReady[d.Src2] {
		return false
	}
	return true
}

func (c *Core) srcVal(phys int) uint64 {
	if phys < 0 {
		return 0
	}
	return c.regVal[phys]
}

func (c *Core) computeAddr(d *DynInst) {
	if !d.AddrReady {
		d.Addr = c.srcVal(d.Src1) + uint64(d.Inst.Imm)
		d.AddrReady = true
	}
}

// loadMayIssue enforces conservative memory disambiguation: every older
// store's address must be known; an exact-match store with captured data
// forwards; any partial overlap stalls the load until the store commits.
func (c *Core) loadMayIssue(d *DynInst) (bool, *DynInst) {
	size := uint64(d.m.memBytes)
	var match *DynInst
	for i := c.sqHead; i < len(c.sq); i++ {
		s := c.sq[i]
		if s.Seq > d.Seq {
			break
		}
		if !s.AddrReady {
			return false, nil
		}
		ssize := uint64(s.m.memBytes)
		// Wrap-safe overlap test: the unsigned differences measure the
		// (modular) distance from each interval's base to the other's, so
		// intervals straddling 2^64 — wild wrong-path addresses — still
		// compare correctly where `s.Addr < d.Addr+size` would wrap.
		if d.Addr-s.Addr < ssize || s.Addr-d.Addr < size {
			if s.Addr == d.Addr && ssize == size && s.State == StateDone {
				match = s // youngest older exact match wins
			} else {
				if c.cov != nil {
					c.cov.mark(covAlias, covSite(d), 0)
				}
				return false, nil // partial overlap: wait for store commit
			}
		}
	}
	return true, match
}

// execute runs d's compiled handler (see buildExec in meta.go) and schedules
// completion on the wheel.
func (c *Core) execute(d *DynInst, decision Decision, fwd *DynInst) {
	lat := d.m.exec(c, d, decision, fwd)
	if c.sec != nil {
		c.sec.afterExec(c, d, fwd)
	}
	d.State = StateExecuting
	d.DoneCycle = c.cycle + uint64(lat)
	c.schedule(d)
}

// ---------------------------------------------------------------- rename --

func (c *Core) rename() {
	// Occupancies and capacities are loop-hoisted: nothing called from the
	// loop body mutates them except the dispatch code below, which maintains
	// the locals in step. The compiler cannot prove that (calls through
	// c.policy and c.BT could alias anything), so hoisting by hand removes
	// four field reloads per renamed instruction.
	robOcc := len(c.rob) - c.robHead
	lqOcc := len(c.lq) - c.lqHead
	sqOcc := len(c.sq) - c.sqHead
	robCap, iqCap := c.cfg.ROBSize, c.cfg.IQSize
	lqCap, sqCap := c.cfg.LQSize, c.cfg.SQSize
	for n := 0; n < c.cfg.RenameWidth && c.fbHead < len(c.fetchBuf); n++ {
		d := c.fetchBuf[c.fbHead]
		if robOcc >= robCap {
			return
		}
		if c.iqCount >= iqCap {
			return
		}
		m := d.m
		if m.flags&mLoad != 0 && lqOcc >= lqCap {
			return
		}
		if m.flags&mStore != 0 && sqOcc >= sqCap {
			return
		}
		needsSlot := m.flags&mNeedsSlot != 0
		if needsSlot && c.BT.InFlight() >= c.bdtCap {
			c.BT.AllocFailures++
			c.active = true // the stall counter advances every stalled cycle
			return
		}
		hasDst := m.flags&mHasDst != 0
		if hasDst && len(c.freeList) == 0 {
			return
		}

		c.fbHead++
		// Region close only ever fires at annotated reconvergence points;
		// everywhere else CloseRegions is a no-op by construction, so the
		// call is gated on the decoded flag.
		if m.flags&mReconv != 0 {
			c.BT.CloseRegions(d.PC)
		}

		d.Src1, d.Src2, d.Dst, d.OldDst = -1, -1, -1, -1
		if m.flags&mSrc1 != 0 {
			d.Src1 = c.rat[d.Inst.Rs1]
		}
		if m.flags&mSrc2 != 0 {
			d.Src2 = c.rat[d.Inst.Rs2]
		}
		if hasDst {
			d.OldDst = c.rat[d.Inst.Rd]
			d.Dst = c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			c.regReady[d.Dst] = false
			c.rat[d.Inst.Rd] = d.Dst
		}

		// Policy sees the pre-allocation table state (its own slot is not a
		// dependency of itself).
		if !c.nop {
			c.policy.OnRename(d)
		}

		if needsSlot {
			slot, ok := c.BT.AllocHinted(d.Seq, d.PC, m.hint)
			if !ok {
				// Should not happen: capacity checked above. Treat as stall:
				// the buffer slot still holds d, so back the head up.
				c.fbHead--
				return
			}
			d.BrSlot = slot
			d.Check.RAT = c.rat
		}
		if m.flags&mFenceHalt != 0 {
			c.fenceSeqs = append(c.fenceSeqs, d.Seq)
		}

		d.State = StateRenamed
		c.rob = append(c.rob, d)
		robOcc++
		// Dispatch into the issue scheduler: claim an issue-queue entry and
		// either park on the still-pending source registers or go straight to
		// the ready queue (dispatch order is age order, so append keeps it
		// sorted). Readiness is monotone for live instructions — a physical
		// register never becomes unready while a reader is in flight — so a
		// count of outstanding writebacks is exact.
		d.inIQ = true
		c.iqCount++
		pend := int8(0)
		if d.Src1 >= 0 && !c.regReady[d.Src1] {
			c.waiters[d.Src1] = append(c.waiters[d.Src1], waiter{d, d.gen})
			pend++
		}
		if d.Src2 >= 0 && !c.regReady[d.Src2] {
			c.waiters[d.Src2] = append(c.waiters[d.Src2], waiter{d, d.gen})
			pend++
		}
		d.pending = pend
		if pend == 0 {
			c.readyQ = append(c.readyQ, d)
		}
		if m.flags&mLoad != 0 {
			c.lq = append(c.lq, d)
			lqOcc++
		}
		if m.flags&mStore != 0 {
			c.sq = append(c.sq, d)
			sqOcc++
		}
		c.stats.Renamed++
		c.active = true
	}
}

// ----------------------------------------------------------------- fetch --

func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchStallUntil {
		return
	}
	// Reset the ring once rename has drained it, so steady-state operation
	// appends into the same backing array instead of growing forever.
	if c.fbHead > 0 && c.fbHead == len(c.fetchBuf) {
		c.fetchBuf = c.fetchBuf[:0]
		c.fbHead = 0
	}
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf)-c.fbHead < c.cfg.FetchBufSize; n++ {
		// Every path below changes state (an instruction is delivered, the
		// front end halts, or an I-miss stall begins), so reaching the loop
		// body at all makes the cycle active.
		c.active = true
		m := c.metaAt(c.fetchPC)
		if m == nil {
			// Wrong-path fetch ran outside the text segment; stall until a
			// misprediction recovery redirects us.
			c.fetchHalted = true
			return
		}
		if line := c.fetchPC >> c.lineShift; line != c.lastFetchLine {
			lat := c.Hier.FetchLatency(c.fetchPC)
			c.lastFetchLine = line
			if lat > c.cfg.Hier.L1I.Latency {
				// Miss: deliver nothing until the line arrives.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}
		c.seq++
		d := c.newDynInst(c.seq, c.fetchPC, m)
		next := m.seqNext
		switch m.kind {
		case fkBranch:
			// Checkpoint before predicting: PredictBranch speculatively
			// updates the history the checkpoint must capture.
			d.Check = c.newCheckpoint()
			c.Pred.CheckpointInto(&d.Check.Pred)
			taken, idx := c.Pred.PredictBranch(c.fetchPC)
			d.PredTaken, d.PhtIdx = taken, idx
			if taken {
				next = m.target
			}
		case fkJAL:
			next = m.target
			if m.flags&mPushRAS != 0 {
				c.Pred.PushRAS(m.seqNext)
			}
		case fkJALR:
			d.Check = c.newCheckpoint()
			c.Pred.CheckpointInto(&d.Check.Pred)
			if m.flags&mRet != 0 {
				next = c.Pred.PopRAS()
				d.UsedRAS = true
			} else {
				if tgt, hit := c.Pred.PredictIndirect(c.fetchPC); hit {
					next = tgt
				}
				if m.flags&mPushRAS != 0 {
					c.Pred.PushRAS(m.seqNext)
				}
			}
		}
		d.PredNext = next
		c.fetchBuf = append(c.fetchBuf, d)
		c.stats.Fetched++
		c.fetchPC = next
		if m.kind == fkHALT {
			c.fetchHalted = true
			return
		}
		if m.flags&mControl != 0 && next != m.seqNext {
			return // taken-control fetch break
		}
	}
}

func appendInt(b []byte, v int64) []byte {
	return strconv.AppendInt(b, v, 10)
}
