package cpu

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"

	"levioso/internal/core"
	"levioso/internal/isa"
	"levioso/internal/mem"
	"levioso/internal/simerr"
)

// Result summarizes a completed run.
type Result struct {
	ExitCode uint64
	Output   string
	Stats    Stats
}

// Core is one out-of-order LEV64 core.
type Core struct {
	cfg    Config
	prog   *isa.Program
	policy Policy

	// meta is the decoded-instruction cache: one entry per static
	// instruction, indexed by text position (see meta.go).
	meta []instMeta

	BT   *core.BranchTable
	Hier MemSystem
	Phys *mem.Memory
	Pred BranchPredictor

	// Physical register file.
	regVal   []uint64
	regReady []bool
	rat      [isa.NumRegs]int // speculative rename map
	commitRT [isa.NumRegs]int // architectural (retirement) map
	freeList []int

	// Windows. rob/lq/sq are program-order queues with a moving head; iq is
	// age-ordered and filtered each cycle.
	rob     []*DynInst
	robHead int
	iq      []*DynInst
	lq      []*DynInst
	lqHead  int
	sq      []*DynInst
	sqHead  int

	fetchBuf []*DynInst
	fbHead   int

	// Completion wheel (see wheel.go): executing instructions bucketed by
	// DoneCycle, so the complete stage touches only the instructions
	// finishing this cycle instead of scanning the window.
	wheel  [wheelSize][]wheelEntry
	dueBuf []*DynInst

	// Free pools (see pool.go): recycled DynInst/Checkpoint objects so the
	// steady-state fetch path performs no heap allocation.
	instPool    []*DynInst
	checkPool   []*Checkpoint
	instAllocd  int
	checkAllocd int

	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool
	lastFetchLine   uint64 // last I-cache line touched (avoid per-inst lookups)

	fenceSeqs []uint64 // in-flight FENCE/HALT sequence numbers, program order

	divBusyUntil uint64
	divBusySeq   uint64 // Seq of the divide occupying the divider (0 = none)

	cycle uint64
	seq   uint64

	out      []byte
	halted   bool
	exitCode uint64

	stats           Stats
	lastCommitCycle uint64
}

// New builds a core with prog loaded, memory initialized, and the policy
// attached. Pass NopPolicy{} for an unprotected core.
func New(prog *isa.Program, cfg Config, pol Policy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	phys := mem.NewMemory()
	phys.WriteBytes(isa.DataBase, prog.Data)
	hier, err := mem.NewHierarchy(cfg.Hier, phys)
	if err != nil {
		return nil, err
	}
	var ms MemSystem = hier
	if cfg.WrapMem != nil {
		ms = cfg.WrapMem(ms)
	}
	var pred BranchPredictor = NewPredictor(cfg.Predictor)
	if cfg.WrapPred != nil {
		pred = cfg.WrapPred(pred)
	}
	c := &Core{
		cfg:    cfg,
		prog:   prog,
		policy: pol,
		meta:   buildMeta(prog),
		BT:     core.NewBranchTable(prog),
		Hier:   ms,
		Phys:   phys,
		Pred:   pred,
	}
	c.regVal = make([]uint64, cfg.NumPhysRegs)
	c.regReady = make([]bool, cfg.NumPhysRegs)
	for r := 0; r < isa.NumRegs; r++ {
		c.rat[r] = r
		c.commitRT[r] = r
		c.regReady[r] = true
	}
	c.regVal[isa.RegSP] = isa.StackTop
	c.regVal[isa.RegGP] = isa.DataBase
	for p := isa.NumRegs; p < cfg.NumPhysRegs; p++ {
		c.freeList = append(c.freeList, p)
	}
	c.fetchPC = prog.Entry
	c.lastFetchLine = ^uint64(0)
	pol.Attach(c)
	pol.Reset()
	return c, nil
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Prog returns the loaded program.
func (c *Core) Prog() *isa.Program { return c.prog }

// Cycle returns the current cycle count.
func (c *Core) CycleCount() uint64 { return c.cycle }

// Halted reports whether a HALT has committed.
func (c *Core) Halted() bool { return c.halted }

// Output returns console output so far.
func (c *Core) Output() string { return string(c.out) }

// ArchReg returns the architectural (retired) value of register r.
func (c *Core) ArchReg(r isa.Reg) uint64 { return c.regVal[c.commitRT[r]] }

// Run simulates until HALT commits or a limit trips.
func (c *Core) Run() (Result, error) {
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
	}
	return c.result(), nil
}

// RunContext simulates until HALT commits, a limit trips, or ctx is done.
// Cancellation is cooperative — checked every few thousand cycles so the
// hot loop stays select-free — and surfaces as simerr.ErrDeadline, which the
// sweep supervisor classifies transient (a wall-clock budget, not a model
// property).
func (c *Core) RunContext(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Power-of-two mask so the check costs one AND per cycle. At the
	// simulator's throughput this bounds cancellation latency well under a
	// millisecond.
	const checkMask = 1<<13 - 1
	for !c.halted {
		if err := c.Step(); err != nil {
			return Result{}, err
		}
		if c.cycle&checkMask == 0 {
			select {
			case <-ctx.Done():
				return Result{}, &simerr.RunError{
					Kind: simerr.KindDeadline, Cycle: c.cycle, PC: c.fetchPC,
					Err: ctx.Err(),
				}
			default:
			}
		}
	}
	return c.result(), nil
}

func (c *Core) result() Result {
	c.syncStats()
	return Result{ExitCode: c.exitCode, Output: string(c.out), Stats: c.stats}
}

// syncStats folds the service-owned counters (cache hierarchy, branch table)
// into c.stats. Everything else in Stats is maintained incrementally by the
// pipeline stages.
func (c *Core) syncStats() {
	hs := c.Hier.Stats()
	c.stats.L1IHits = hs.L1I.Hits
	c.stats.L1IMisses = hs.L1I.Misses
	c.stats.L1DHits = hs.L1D.Hits
	c.stats.L1DMisses = hs.L1D.Misses
	c.stats.L2Hits = hs.L2.Hits
	c.stats.L2Misses = hs.L2.Misses
	c.stats.BDTAllocStalls = c.BT.AllocFailures
	c.stats.Cycles = c.cycle
}

// Stats returns the statistics accumulated so far (cache counters are synced
// on read). Unlike result it does not snapshot the console output, so live
// observers — supervisor failure reports, periodic metrics — can poll it
// without copying the run's output buffer every call.
func (c *Core) Stats() Stats {
	c.syncStats()
	return c.stats
}

// Step advances the core by one cycle.
func (c *Core) Step() error {
	if c.halted {
		return nil
	}
	c.cycle++
	if c.cfg.MaxCycles > 0 && c.cycle > c.cfg.MaxCycles {
		return &simerr.RunError{
			Kind: simerr.KindCycleLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("cycle limit %d exceeded", c.cfg.MaxCycles),
		}
	}
	if c.cfg.MaxInsts > 0 && c.stats.Committed > c.cfg.MaxInsts {
		return &simerr.RunError{
			Kind: simerr.KindInstLimit, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("instruction limit %d exceeded", c.cfg.MaxInsts),
		}
	}
	wd := c.cfg.WatchdogCycles
	if wd == 0 {
		wd = 100_000
	}
	if wd > 0 && c.cycle-c.lastCommitCycle > uint64(wd) {
		return &simerr.RunError{
			Kind: simerr.KindWatchdog, Cycle: c.cycle, PC: c.fetchPC,
			Detail: fmt.Sprintf("no commit for %d cycles (%s)", wd, c.deadlockInfo()),
		}
	}
	if c.cfg.CommitStall == nil || !c.cfg.CommitStall(c.cycle) {
		if err := c.commit(); err != nil {
			return err
		}
	}
	c.complete()
	c.issue()
	c.rename()
	c.fetch()
	return nil
}

// memFault builds the typed error for a committed access outside simulated
// memory (an architectural fault in the guest program, not a model bug).
func (c *Core) memFault(d *DynInst, what string, cause error) error {
	return &simerr.RunError{
		Kind: simerr.KindMemFault, Cycle: c.cycle, PC: d.PC,
		Detail: fmt.Sprintf("%s: %v addr=%#x committed", what, d.Inst, d.Addr),
		Err:    cause,
	}
}

func (c *Core) deadlockInfo() string {
	if c.robHead >= len(c.rob) {
		return fmt.Sprintf("window empty, fetchPC=%#x fetchHalted=%v", c.fetchPC, c.fetchHalted)
	}
	d := c.rob[c.robHead]
	return fmt.Sprintf("head seq=%d pc=%#x %v state=%d wait=%#x", d.Seq, d.PC, d.Inst, d.State, uint64(d.WaitMask))
}

// ---------------------------------------------------------------- commit --

func (c *Core) commit() error {
	for n := 0; n < c.cfg.CommitWidth && c.robHead < len(c.rob); n++ {
		d := c.rob[c.robHead]
		if d.State != StateDone {
			return nil
		}
		m := d.m
		op := m.inst.Op
		switch {
		case m.flags&mStore != 0:
			if d.MemErr {
				return c.memFault(d, "store to invalid address", nil)
			}
			if err := c.Phys.Write(d.Addr, int(m.memBytes), d.Result); err != nil {
				return c.memFault(d, "store failed", err)
			}
			c.Hier.FillVisible(d.Addr)
			c.sqHead++
			c.stats.Stores++
		case m.flags&mLoad != 0:
			if d.MemErr {
				return c.memFault(d, "load from invalid address", nil)
			}
			if d.Invisible && d.FwdFrom == nil {
				// Deferred exposure of an invisible load: the line becomes
				// architecturally cached only now that the load is safe, and
				// the load cannot retire until the exposure/validation access
				// completes (the InvisiSpec validation step). Because the
				// invisible execution never filled the cache, validation of a
				// missing line pays the full hierarchy latency again — the
				// dominant cost of the invisible-execution defense class.
				if d.exposeUntil == 0 {
					lat := c.Hier.InvisibleLoadLatency(d.Addr)
					c.Hier.FillVisible(d.Addr)
					d.exposeUntil = c.cycle + uint64(lat)
					c.compact()
					return nil
				}
				if c.cycle < d.exposeUntil {
					c.compact()
					return nil
				}
				c.stats.InvisibleLoads++
			}
			if d.FwdFrom != nil {
				c.stats.LoadForward++
			}
			c.lqHead++
			c.stats.Loads++
		case op == isa.PUTC:
			c.out = append(c.out, byte(d.Result))
		case op == isa.PUTI:
			c.out = appendInt(c.out, int64(d.Result))
		case op == isa.HALT:
			c.halted = true
			c.exitCode = d.Result
			c.popFence(d.Seq)
		case op == isa.FENCE:
			c.popFence(d.Seq)
		case d.IsCondBranch():
			c.Pred.UpdateBranch(d.PhtIdx, d.ActualTaken)
			c.stats.CondBranches++
			if d.Mispredict {
				c.stats.CondMispredicts++
			}
		case op == isa.JALR:
			if !d.UsedRAS {
				c.Pred.UpdateIndirect(d.PC, d.ActualNext)
			}
			c.stats.Indirects++
			if d.Mispredict {
				c.stats.IndMispredicts++
			}
		}
		if op.IsTransmitter() {
			c.stats.Transmitters++
			if d.EverWaited {
				c.stats.RestrictedTransmitters++
			}
			if d.specAtIssue {
				c.stats.SpecTransmitters++
			}
		}
		if d.Dst >= 0 {
			if d.OldDst >= 0 {
				c.freeList = append(c.freeList, d.OldDst)
			}
			c.commitRT[d.Inst.Rd] = d.Dst
		}
		if c.cfg.Trace != nil {
			c.traceCommit(d)
		}
		c.robHead++
		c.stats.Committed++
		c.lastCommitCycle = c.cycle
		// Retired: recycle the object. The dead ROB prefix is never read, and
		// the only surviving references (a younger load's FwdFrom) are
		// identity-only.
		c.freeInst(d)
		if c.halted {
			break
		}
	}
	c.compact()
	return nil
}

// traceCommit writes one human-readable line per retired instruction.
func (c *Core) traceCommit(d *DynInst) {
	flags := ""
	if d.Mispredict {
		flags += " MISPREDICT"
	}
	if d.EverWaited {
		flags += " WAITED"
	}
	if d.Invisible {
		flags += " INVISIBLE"
	}
	if d.FwdFrom != nil {
		flags += " FWD"
	}
	loc := ""
	if sym, off, ok := c.prog.NearestSymbol(d.PC); ok {
		loc = fmt.Sprintf(" <%s+%#x>", sym, off)
	}
	fmt.Fprintf(c.cfg.Trace, "%10d seq=%-8d %#06x%s  %s%s\n",
		c.cycle, d.Seq, d.PC, loc, d.Inst, flags)
}

func (c *Core) popFence(seq uint64) {
	if len(c.fenceSeqs) > 0 && c.fenceSeqs[0] == seq {
		c.fenceSeqs = c.fenceSeqs[1:]
	}
}

func (c *Core) compact() {
	if c.robHead > 4*c.cfg.ROBSize {
		c.rob = append(c.rob[:0], c.rob[c.robHead:]...)
		c.robHead = 0
	}
	if c.lqHead > 4*c.cfg.LQSize {
		c.lq = append(c.lq[:0], c.lq[c.lqHead:]...)
		c.lqHead = 0
	}
	if c.sqHead > 4*c.cfg.SQSize {
		c.sq = append(c.sq[:0], c.sq[c.sqHead:]...)
		c.sqHead = 0
	}
	if c.fbHead > 4*c.cfg.FetchBufSize {
		c.fetchBuf = append(c.fetchBuf[:0], c.fetchBuf[c.fbHead:]...)
		c.fbHead = 0
	}
}

// -------------------------------------------------------------- complete --

// complete handles instructions whose execution finishes this cycle:
// writeback, branch resolution, and misprediction recovery (oldest first).
// It is event-driven: the completion wheel hands back exactly the
// instructions whose DoneCycle is now, already in program order, so the cost
// is O(completions this cycle) instead of O(window).
func (c *Core) complete() {
	var recover *DynInst
	for _, d := range c.dueNow() {
		d.State = StateDone
		if d.Dst >= 0 {
			c.regVal[d.Dst] = d.Result
			c.regReady[d.Dst] = true
		}
		if d.BrSlot >= 0 {
			if d.Mispredict && recover == nil {
				recover = d // oldest mispredict this cycle (program order)
			} else if !d.Mispredict {
				c.resolveSlot(d)
			}
		}
	}
	if recover != nil {
		c.recoverFrom(recover)
	}
}

// resolveSlot retires a correctly-speculated control instruction's BDT slot
// and clears its bit from every in-flight dependency mask. The checkpoint is
// dead once the slot resolves (recovery can no longer target this
// instruction), so it is recycled here; recoverFrom therefore restores
// rename/predictor state before resolving the mispredicted instruction's own
// slot.
func (c *Core) resolveSlot(d *DynInst) {
	slot := d.BrSlot
	d.BrSlot = -1
	c.BT.Resolve(slot)
	c.policy.OnSlotResolved(slot)
	for i := c.robHead; i < len(c.rob); i++ {
		e := c.rob[i]
		e.WaitMask = e.WaitMask.Without(slot)
		e.DataMask = e.DataMask.Without(slot)
	}
	if d.Check != nil {
		c.freeCheck(d.Check)
		d.Check = nil
	}
}

// recoverFrom squashes everything younger than the mispredicted control
// instruction d and redirects fetch to the resolved target.
func (c *Core) recoverFrom(d *DynInst) {
	// Squash younger window contents, youngest first. The objects cannot be
	// recycled yet: the issue/load/store queues still reference them.
	nsq := 0
	for i := len(c.rob) - 1; i > c.robHead; i-- {
		e := c.rob[i]
		if e.Seq <= d.Seq {
			break
		}
		e.Squashed = true
		c.policy.OnSquash(e)
		if e.Dst >= 0 {
			c.freeList = append(c.freeList, e.Dst)
		}
		c.rob = c.rob[:i]
		c.stats.Squashed++
		nsq++
	}
	// A wrong-path divide occupying the divider is squashed with everything
	// else: a real core drops the operation when its station is flushed.
	// Without this, a squashed DIV's operand-dependent latency would block
	// correct-path divides after recovery.
	if c.divBusySeq > d.Seq {
		c.divBusyUntil = 0
		c.divBusySeq = 0
	}
	// Remove squashed entries from the side queues.
	c.iq = filterLive(c.iq)
	c.lq = trimYounger(c.lq, c.lqHead, d.Seq)
	c.sq = trimYounger(c.sq, c.sqHead, d.Seq)
	for len(c.fenceSeqs) > 0 && c.fenceSeqs[len(c.fenceSeqs)-1] > d.Seq {
		c.fenceSeqs = c.fenceSeqs[:len(c.fenceSeqs)-1]
	}

	// Recycle the squashed instructions and the wrong-path fetch buffer.
	// Every live structure that could read through the pointers has been
	// filtered above; completion-wheel entries for in-flight squashed
	// instructions go stale via the generation bump in freeInst.
	for _, e := range c.rob[len(c.rob) : len(c.rob)+nsq] {
		c.freeInst(e)
	}
	for _, e := range c.fetchBuf[c.fbHead:] {
		c.freeInst(e)
	}
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0

	// Branch table: free younger slots and restore region state.
	c.BT.Squash(d.Seq, d.BrSlot)

	// Restore the rename map and predictor state.
	c.rat = d.Check.RAT
	c.Pred.Recover(d.Check.Pred, d.IsCondBranch(), d.ActualTaken)
	if d.Inst.Op == isa.JALR {
		// Re-apply the RAS effect of the (now resolved) JALR.
		if d.UsedRAS {
			c.Pred.PopRAS()
		} else if d.Inst.Rd == isa.RegRA {
			c.Pred.PushRAS(d.PC + isa.InstBytes)
		}
	}

	// Resolve the mispredicted control instruction's own slot last: this
	// recycles its checkpoint, which the restores above still read.
	c.resolveSlot(d)

	c.fetchPC = d.ActualNext
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.fetchHalted = false
	c.lastFetchLine = ^uint64(0)
}

func filterLive(q []*DynInst) []*DynInst {
	out := q[:0]
	for _, d := range q {
		if !d.Squashed {
			out = append(out, d)
		}
	}
	return out
}

// trimYounger pops queue entries younger than seq. It must stop at the
// queue's dead prefix (head): committed entries there have been recycled, so
// their Seq fields belong to unrelated newer instructions.
func trimYounger(q []*DynInst, head int, seq uint64) []*DynInst {
	for len(q) > head && q[len(q)-1].Seq > seq {
		q = q[:len(q)-1]
	}
	return q
}

// ----------------------------------------------------------------- issue --

func (c *Core) issue() {
	aluFree := c.cfg.NumALU
	mulFree := c.cfg.NumMul
	memFree := c.cfg.NumMemPorts
	issued := 0

	// Drop finished/squashed entries, keeping age order.
	live := c.iq[:0]
	for _, d := range c.iq {
		if !d.Squashed && d.State != StateDone && d.State != StateExecuting {
			live = append(live, d)
		}
	}
	c.iq = live

	for _, d := range c.iq {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if d.State != StateRenamed {
			continue
		}
		// Serialization: nothing younger than an in-flight FENCE/HALT runs.
		if len(c.fenceSeqs) > 0 && d.Seq > c.fenceSeqs[0] {
			continue
		}
		m := d.m
		// FENCE and HALT execute only from the window head.
		if m.flags&mFenceHalt != 0 && !c.isHead(d) {
			continue
		}
		if !c.srcsReady(d) {
			continue
		}
		// Memory structural checks first: a load blocked by an unresolved
		// older store address is a correctness stall, not a policy stall.
		var fwd *DynInst
		if m.flags&mMemPort != 0 {
			if memFree <= 0 {
				continue
			}
			c.computeAddr(d)
			if m.flags&mLoad != 0 {
				ok, src := c.loadMayIssue(d)
				if !ok {
					continue
				}
				fwd = src
			}
		}
		switch m.class {
		case isa.ClassALU, isa.ClassBranch, isa.ClassJump:
			if aluFree <= 0 {
				continue
			}
		case isa.ClassMul:
			if mulFree <= 0 {
				continue
			}
		case isa.ClassDiv:
			if c.divBusyUntil > c.cycle {
				continue
			}
		case isa.ClassSystem:
			if m.flags&mMemPort != 0 {
				// CFLUSH uses a memory port, checked above
			} else if aluFree <= 0 {
				continue
			}
		}
		// Policy gate.
		decision := c.policy.Decide(d)
		if decision == Wait {
			d.EverWaited = true
			c.stats.PolicyWaitEvents++
			continue
		}
		if m.flags&mTransmitter != 0 && c.BT.Unresolved() != 0 {
			d.specAtIssue = true
		}
		// Fire.
		switch m.class {
		case isa.ClassALU, isa.ClassBranch, isa.ClassJump:
			aluFree--
		case isa.ClassMul:
			mulFree--
		case isa.ClassSystem:
			if m.flags&mMemPort != 0 {
				memFree--
			} else {
				aluFree--
			}
		case isa.ClassLoad, isa.ClassStore:
			memFree--
		}
		c.execute(d, decision, fwd)
		issued++
	}
}

func (c *Core) isHead(d *DynInst) bool {
	return c.robHead < len(c.rob) && c.rob[c.robHead] == d
}

func (c *Core) srcsReady(d *DynInst) bool {
	if d.Src1 >= 0 && !c.regReady[d.Src1] {
		return false
	}
	if d.Src2 >= 0 && !c.regReady[d.Src2] {
		return false
	}
	return true
}

func (c *Core) srcVal(phys int) uint64 {
	if phys < 0 {
		return 0
	}
	return c.regVal[phys]
}

func (c *Core) computeAddr(d *DynInst) {
	if !d.AddrReady {
		d.Addr = c.srcVal(d.Src1) + uint64(d.Inst.Imm)
		d.AddrReady = true
	}
}

// loadMayIssue enforces conservative memory disambiguation: every older
// store's address must be known; an exact-match store with captured data
// forwards; any partial overlap stalls the load until the store commits.
func (c *Core) loadMayIssue(d *DynInst) (bool, *DynInst) {
	size := uint64(d.m.memBytes)
	var match *DynInst
	for i := c.sqHead; i < len(c.sq); i++ {
		s := c.sq[i]
		if s.Seq > d.Seq {
			break
		}
		if !s.AddrReady {
			return false, nil
		}
		ssize := uint64(s.m.memBytes)
		if s.Addr < d.Addr+size && d.Addr < s.Addr+ssize {
			if s.Addr == d.Addr && ssize == size && s.State == StateDone {
				match = s // youngest older exact match wins
			} else {
				return false, nil // partial overlap: wait for store commit
			}
		}
	}
	return true, match
}

// execute computes d's result and schedules completion on the wheel.
func (c *Core) execute(d *DynInst, decision Decision, fwd *DynInst) {
	m := d.m
	op := m.inst.Op
	v1 := c.srcVal(d.Src1)
	v2 := c.srcVal(d.Src2)
	if m.flags&mImmV2 != 0 {
		v2 = uint64(d.Inst.Imm)
	}
	lat := 1
	switch m.class {
	case isa.ClassALU:
		d.Result = isa.EvalALU(op, v1, v2)
	case isa.ClassMul:
		d.Result = isa.EvalALU(op, v1, v2)
		lat = c.cfg.MulLatency
	case isa.ClassDiv:
		d.Result = isa.EvalALU(op, v1, v2)
		// Operand-dependent latency: what makes the divider a transmitter.
		lat = c.cfg.DivLatencyBase
		if c.cfg.DivLatencyRange > 0 {
			lat += bits.Len64(v1) * c.cfg.DivLatencyRange / 64
		}
		c.divBusyUntil = c.cycle + uint64(lat)
		c.divBusySeq = d.Seq
	case isa.ClassLoad:
		lat = c.executeLoad(d, decision, fwd)
	case isa.ClassStore:
		d.Result = v2
		size := uint64(m.memBytes)
		if d.Addr+size > isa.MemLimit || (size > 1 && d.Addr%size != 0) {
			d.MemErr = true
		}
	case isa.ClassBranch:
		d.ActualTaken = isa.EvalBranch(op, v1, v2)
		if d.ActualTaken {
			d.ActualNext = m.target
		} else {
			d.ActualNext = m.seqNext
		}
		d.Mispredict = d.ActualNext != d.PredNext
		lat += c.cfg.BranchResolveLatency
	case isa.ClassJump:
		d.Result = m.seqNext
		if m.kind == fkJAL {
			d.ActualNext = m.target
		} else {
			d.ActualNext = (v1 + uint64(d.Inst.Imm)) &^ 1
			d.Mispredict = d.ActualNext != d.PredNext
			lat += c.cfg.BranchResolveLatency
		}
	case isa.ClassSystem:
		switch op {
		case isa.RDCYCLE:
			d.Result = c.cycle
		case isa.PUTC, isa.PUTI, isa.HALT:
			d.Result = v1
		case isa.CFLUSH:
			// Microarchitectural effect at execute time — this is the
			// speculative attack primitive the policies must gate.
			c.Hier.Flush(d.Addr)
		case isa.FENCE:
			// No effect; serialization handled at issue.
		}
	}
	d.State = StateExecuting
	d.DoneCycle = c.cycle + uint64(lat)
	c.schedule(d)
}

// executeLoad performs the data access and returns its latency.
func (c *Core) executeLoad(d *DynInst, decision Decision, fwd *DynInst) int {
	size := int(d.m.memBytes)
	if fwd != nil {
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		d.Result = isa.ExtendLoad(d.Inst.Op, fwd.Result&mask)
		d.FwdFrom = fwd
		c.policy.OnForward(d, fwd)
		return 1
	}
	raw, err := c.Phys.Read(d.Addr, size)
	if err != nil {
		// Wrong-path access outside simulated memory: produce a harmless
		// value with hit latency and no cache perturbation. If this load is
		// actually architectural the commit stage reports the fault.
		d.MemErr = true
		d.Result = 0
		return c.cfg.Hier.L1D.Latency
	}
	d.Result = isa.ExtendLoad(d.Inst.Op, raw)
	if decision == ProceedInvisible {
		d.Invisible = true
		return c.Hier.InvisibleLoadLatency(d.Addr)
	}
	return c.Hier.LoadLatency(d.Addr)
}

// ---------------------------------------------------------------- rename --

func (c *Core) rename() {
	for n := 0; n < c.cfg.RenameWidth && c.fbHead < len(c.fetchBuf); n++ {
		d := c.fetchBuf[c.fbHead]
		if len(c.rob)-c.robHead >= c.cfg.ROBSize {
			return
		}
		if len(c.iq) >= c.cfg.IQSize {
			return
		}
		m := d.m
		if m.flags&mLoad != 0 && len(c.lq)-c.lqHead >= c.cfg.LQSize {
			return
		}
		if m.flags&mStore != 0 && len(c.sq)-c.sqHead >= c.cfg.SQSize {
			return
		}
		needsSlot := m.flags&mNeedsSlot != 0
		bdtCap := c.cfg.BDTEntries
		if bdtCap == 0 {
			bdtCap = core.NumSlots
		}
		if needsSlot && c.BT.InFlight() >= bdtCap {
			c.BT.AllocFailures++
			return
		}
		hasDst := m.flags&mHasDst != 0
		if hasDst && len(c.freeList) == 0 {
			return
		}

		c.fbHead++
		c.BT.CloseRegions(d.PC)

		d.Src1, d.Src2, d.Dst, d.OldDst = -1, -1, -1, -1
		if m.flags&mSrc1 != 0 {
			d.Src1 = c.rat[d.Inst.Rs1]
		}
		if m.flags&mSrc2 != 0 {
			d.Src2 = c.rat[d.Inst.Rs2]
		}
		if hasDst {
			d.OldDst = c.rat[d.Inst.Rd]
			d.Dst = c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			c.regReady[d.Dst] = false
			c.rat[d.Inst.Rd] = d.Dst
		}

		// Policy sees the pre-allocation table state (its own slot is not a
		// dependency of itself).
		c.policy.OnRename(d)

		if needsSlot {
			slot, ok := c.BT.Alloc(d.Seq, d.PC)
			if !ok {
				// Should not happen: capacity checked above. Treat as stall:
				// the buffer slot still holds d, so back the head up.
				c.fbHead--
				return
			}
			d.BrSlot = slot
			d.Check.RAT = c.rat
		}
		if m.flags&mFenceHalt != 0 {
			c.fenceSeqs = append(c.fenceSeqs, d.Seq)
		}

		d.State = StateRenamed
		c.rob = append(c.rob, d)
		c.iq = append(c.iq, d)
		if m.flags&mLoad != 0 {
			c.lq = append(c.lq, d)
		}
		if m.flags&mStore != 0 {
			c.sq = append(c.sq, d)
		}
		c.stats.Renamed++
	}
}

// ----------------------------------------------------------------- fetch --

func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchStallUntil {
		return
	}
	// Reset the ring once rename has drained it, so steady-state operation
	// appends into the same backing array instead of growing forever.
	if c.fbHead > 0 && c.fbHead == len(c.fetchBuf) {
		c.fetchBuf = c.fetchBuf[:0]
		c.fbHead = 0
	}
	lineBytes := uint64(c.cfg.Hier.L1I.LineBytes)
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf)-c.fbHead < c.cfg.FetchBufSize; n++ {
		m := c.metaAt(c.fetchPC)
		if m == nil {
			// Wrong-path fetch ran outside the text segment; stall until a
			// misprediction recovery redirects us.
			c.fetchHalted = true
			return
		}
		if line := c.fetchPC / lineBytes; line != c.lastFetchLine {
			lat := c.Hier.FetchLatency(c.fetchPC)
			c.lastFetchLine = line
			if lat > c.cfg.Hier.L1I.Latency {
				// Miss: deliver nothing until the line arrives.
				c.fetchStallUntil = c.cycle + uint64(lat)
				return
			}
		}
		c.seq++
		d := c.newDynInst(c.seq, c.fetchPC, m)
		next := m.seqNext
		switch m.kind {
		case fkBranch:
			// Checkpoint before predicting: PredictBranch speculatively
			// updates the history the checkpoint must capture.
			d.Check = c.newCheckpoint()
			c.Pred.CheckpointInto(&d.Check.Pred)
			taken, idx := c.Pred.PredictBranch(c.fetchPC)
			d.PredTaken, d.PhtIdx = taken, idx
			if taken {
				next = m.target
			}
		case fkJAL:
			next = m.target
			if m.flags&mPushRAS != 0 {
				c.Pred.PushRAS(m.seqNext)
			}
		case fkJALR:
			d.Check = c.newCheckpoint()
			c.Pred.CheckpointInto(&d.Check.Pred)
			if m.flags&mRet != 0 {
				next = c.Pred.PopRAS()
				d.UsedRAS = true
			} else {
				if tgt, hit := c.Pred.PredictIndirect(c.fetchPC); hit {
					next = tgt
				}
				if m.flags&mPushRAS != 0 {
					c.Pred.PushRAS(m.seqNext)
				}
			}
		}
		d.PredNext = next
		c.fetchBuf = append(c.fetchBuf, d)
		c.stats.Fetched++
		c.fetchPC = next
		if m.kind == fkHALT {
			c.fetchHalted = true
			return
		}
		if m.flags&mControl != 0 && next != m.seqNext {
			return // taken-control fetch break
		}
	}
}

func appendInt(b []byte, v int64) []byte {
	return strconv.AppendInt(b, v, 10)
}
