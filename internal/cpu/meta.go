package cpu

import "levioso/internal/isa"

// The decoded-instruction metadata cache. The model fetches the same static
// instructions millions of times; re-deriving operand presence, op class,
// branch targets and fetch-time behaviour from the Inst encoding on every
// dynamic instance is pure overhead. New precomputes everything the pipeline
// stages ask per static instruction into a flat array indexed by text
// position, so the hot loop's "decode" is one bounds check and an array
// index. The cache is immutable after construction and derived entirely from
// the program text, so it cannot change model behaviour — only how fast the
// model evaluates it.

// fetchKind dispatches the fetch stage's control-flow handling.
type fetchKind uint8

const (
	fkPlain  fetchKind = iota // fetch continues sequentially
	fkBranch                  // conditional branch: predict direction
	fkJAL                     // direct jump: known target
	fkJALR                    // indirect jump: RAS or BTB
	fkHALT                    // stop fetching
)

// metaFlag packs the per-op predicates the rename/issue/execute/commit
// stages test per dynamic instruction.
type metaFlag uint16

const (
	mLoad        metaFlag = 1 << iota // reads data memory
	mStore                            // writes data memory
	mCondBranch                       // conditional branch
	mControl                          // can redirect fetch
	mTransmitter                      // transmitter op (load, div, cflush)
	mNeedsSlot                        // allocates a Branch Dependency Table slot
	mHasDst                           // writes an architectural register (not x0)
	mSrc1                             // reads Rs1 (not x0)
	mSrc2                             // reads Rs2 (not x0)
	mImmV2                            // execute uses the immediate as operand 2
	mFenceHalt                        // FENCE/HALT serialization semantics
	mPushRAS                          // JAL/JALR with rd == ra: push return address
	mRet                              // JALR x0, ra: predict via the RAS
	mMemPort                          // needs a memory port at issue (load/store/cflush)
)

// instMeta is the per-static-instruction cache entry.
type instMeta struct {
	inst     isa.Inst
	class    isa.Class
	kind     fetchKind
	flags    metaFlag
	memBytes uint8
	target   uint64 // branch/JAL: taken-path target
	seqNext  uint64 // pc + InstBytes
}

// buildMeta precomputes the metadata table for prog's text segment.
func buildMeta(prog *isa.Program) []instMeta {
	meta := make([]instMeta, len(prog.Text))
	for i, in := range prog.Text {
		pc := prog.PCOf(i)
		op := in.Op
		m := &meta[i]
		m.inst = in
		m.class = op.Class()
		m.memBytes = uint8(op.MemBytes())
		m.seqNext = pc + isa.InstBytes

		switch {
		case op.IsBranch():
			m.kind = fkBranch
			m.target = in.BranchTarget(pc)
		case op == isa.JAL:
			m.kind = fkJAL
			m.target = in.BranchTarget(pc)
		case op == isa.JALR:
			m.kind = fkJALR
		case op == isa.HALT:
			m.kind = fkHALT
		}

		if op.IsLoad() {
			m.flags |= mLoad
		}
		if op.IsStore() {
			m.flags |= mStore
		}
		if op.IsBranch() {
			m.flags |= mCondBranch
		}
		if op.IsControl() {
			m.flags |= mControl
		}
		if op.IsTransmitter() {
			m.flags |= mTransmitter
		}
		if op.IsBranch() || op == isa.JALR {
			m.flags |= mNeedsSlot
		}
		if op.HasRd() && in.Rd != isa.RegZero {
			m.flags |= mHasDst
		}
		if op.HasRs1() && in.Rs1 != isa.RegZero {
			m.flags |= mSrc1
		}
		if op.HasRs2() && in.Rs2 != isa.RegZero {
			m.flags |= mSrc2
		}
		if op.HasImm() && m.class != isa.ClassLoad && m.class != isa.ClassStore &&
			op != isa.JALR && op != isa.CFLUSH && !op.IsBranch() && op != isa.JAL {
			m.flags |= mImmV2
		}
		if op == isa.FENCE || op == isa.HALT {
			m.flags |= mFenceHalt
		}
		if op.IsLoad() || op.IsStore() || op == isa.CFLUSH {
			m.flags |= mMemPort
		}
		if op == isa.JAL && in.Rd == isa.RegRA {
			m.flags |= mPushRAS
		}
		if op == isa.JALR {
			if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
				m.flags |= mRet
			} else if in.Rd == isa.RegRA {
				m.flags |= mPushRAS
			}
		}
	}
	return meta
}

// metaAt resolves pc to its cache entry; nil if pc is outside the text
// segment or misaligned (same contract as Program.InstAt — a wrong-path
// fetch that runs off the program).
func (c *Core) metaAt(pc uint64) *instMeta {
	off := pc - isa.TextBase // wraps below TextBase; caught by the len check
	if off%isa.InstBytes != 0 {
		return nil
	}
	i := off / isa.InstBytes
	if i >= uint64(len(c.meta)) {
		return nil
	}
	return &c.meta[i]
}
