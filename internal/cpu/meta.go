package cpu

import (
	"math/bits"

	"levioso/internal/isa"
)

// The decoded-instruction metadata cache. The model fetches the same static
// instructions millions of times; re-deriving operand presence, op class,
// branch targets and fetch-time behaviour from the Inst encoding on every
// dynamic instance is pure overhead. New precomputes everything the pipeline
// stages ask per static instruction into a flat array indexed by text
// position, so the hot loop's "decode" is one bounds check and an array
// index. The cache is immutable after construction and derived entirely from
// the program text, so it cannot change model behaviour — only how fast the
// model evaluates it.
//
// Beyond flags and operands, each entry carries the instruction's *compiled*
// execute handler (threaded-code style): buildMeta selects a closure per
// static instruction with the op function, immediate, branch targets, memory
// size and bounds already resolved, so the execute stage is one indirect
// call instead of a class switch feeding op switches. Entries also pre-
// resolve everything PC-static the rename path used to look up per dynamic
// instance: the branch's Levioso annotation (hint), whether any annotated
// region reconverges at this PC (mReconv), and the functional-unit class the
// issue stage arbitrates (fu).

// fetchKind dispatches the fetch stage's control-flow handling.
type fetchKind uint8

const (
	fkPlain  fetchKind = iota // fetch continues sequentially
	fkBranch                  // conditional branch: predict direction
	fkJAL                     // direct jump: known target
	fkJALR                    // indirect jump: RAS or BTB
	fkHALT                    // stop fetching
)

// fuKind is the functional-unit class the issue stage arbitrates. It folds
// the per-class structural-hazard switches (availability check and unit
// consumption) into one precomputed tag.
type fuKind uint8

const (
	fuALU fuKind = iota // ALU op, branch, jump, non-memory system: an ALU slot
	fuMul               // pipelined multiplier
	fuDiv               // the single unpipelined divider (occupancy-checked)
	fuMem               // load/store/CFLUSH: a memory port
)

// metaFlag packs the per-op predicates the rename/issue/execute/commit
// stages test per dynamic instruction.
type metaFlag uint16

const (
	mLoad        metaFlag = 1 << iota // reads data memory
	mStore                            // writes data memory
	mCondBranch                       // conditional branch
	mControl                          // can redirect fetch
	mTransmitter                      // transmitter op (load, div, cflush)
	mNeedsSlot                        // allocates a Branch Dependency Table slot
	mHasDst                           // writes an architectural register (not x0)
	mSrc1                             // reads Rs1 (not x0)
	mSrc2                             // reads Rs2 (not x0)
	mImmV2                            // execute uses the immediate as operand 2
	mFenceHalt                        // FENCE/HALT serialization semantics
	mPushRAS                          // JAL/JALR with rd == ra: push return address
	mRet                              // JALR x0, ra: predict via the RAS
	mMemPort                          // needs a memory port at issue (load/store/cflush)
	mReconv                           // some annotated control region reconverges here
)

// execFn is a compiled execute handler: it computes the instruction's result
// and side effects and returns the execution latency in cycles. decision and
// fwd are only meaningful for loads (the policy verdict and the forwarding
// store selected at issue).
type execFn func(c *Core, d *DynInst, decision Decision, fwd *DynInst) int

// instMeta is the per-static-instruction cache entry.
type instMeta struct {
	inst     isa.Inst
	class    isa.Class
	kind     fetchKind
	fu       fuKind
	flags    metaFlag
	memBytes uint8
	target   uint64 // branch/JAL: taken-path target
	seqNext  uint64 // pc + InstBytes
	// hint is the branch's Levioso annotation, prefetched from prog.Hints so
	// the rename path never touches the map (zero value = conservative).
	hint isa.BranchHint
	exec execFn
}

// buildMeta precomputes the metadata table for prog's text segment.
func buildMeta(prog *isa.Program) []instMeta {
	meta := make([]instMeta, len(prog.Text))
	for i, in := range prog.Text {
		pc := prog.PCOf(i)
		op := in.Op
		m := &meta[i]
		m.inst = in
		m.class = op.Class()
		m.memBytes = uint8(op.MemBytes())
		m.seqNext = pc + isa.InstBytes

		switch {
		case op.IsBranch():
			m.kind = fkBranch
			m.target = in.BranchTarget(pc)
		case op == isa.JAL:
			m.kind = fkJAL
			m.target = in.BranchTarget(pc)
		case op == isa.JALR:
			m.kind = fkJALR
		case op == isa.HALT:
			m.kind = fkHALT
		}

		if op.IsLoad() {
			m.flags |= mLoad
		}
		if op.IsStore() {
			m.flags |= mStore
		}
		if op.IsBranch() {
			m.flags |= mCondBranch
		}
		if op.IsControl() {
			m.flags |= mControl
		}
		if op.IsTransmitter() {
			m.flags |= mTransmitter
		}
		if op.IsBranch() || op == isa.JALR {
			m.flags |= mNeedsSlot
			m.hint = prog.Hints[pc]
		}
		if op.HasRd() && in.Rd != isa.RegZero {
			m.flags |= mHasDst
		}
		if op.HasRs1() && in.Rs1 != isa.RegZero {
			m.flags |= mSrc1
		}
		if op.HasRs2() && in.Rs2 != isa.RegZero {
			m.flags |= mSrc2
		}
		if op.HasImm() && m.class != isa.ClassLoad && m.class != isa.ClassStore &&
			op != isa.JALR && op != isa.CFLUSH && !op.IsBranch() && op != isa.JAL {
			m.flags |= mImmV2
		}
		if op == isa.FENCE || op == isa.HALT {
			m.flags |= mFenceHalt
		}
		if op.IsLoad() || op.IsStore() || op == isa.CFLUSH {
			m.flags |= mMemPort
		}
		if op == isa.JAL && in.Rd == isa.RegRA {
			m.flags |= mPushRAS
		}
		if op == isa.JALR {
			if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
				m.flags |= mRet
			} else if in.Rd == isa.RegRA {
				m.flags |= mPushRAS
			}
		}

		switch m.class {
		case isa.ClassMul:
			m.fu = fuMul
		case isa.ClassDiv:
			m.fu = fuDiv
		case isa.ClassLoad, isa.ClassStore:
			m.fu = fuMem
		case isa.ClassSystem:
			if m.flags&mMemPort != 0 {
				m.fu = fuMem // CFLUSH
			} else {
				m.fu = fuALU
			}
		default:
			m.fu = fuALU
		}

		m.exec = buildExec(m)
	}
	// Mark reconvergence points: rename calls the Branch Dependency Table's
	// CloseRegions only at PCs where some annotated region can actually
	// close, which is a no-op everywhere else by construction (region close
	// compares the slot's reconvPC against the renamed PC).
	for _, h := range prog.Hints {
		if h.ReconvPC == 0 {
			continue
		}
		off := h.ReconvPC - isa.TextBase
		if off%isa.InstBytes == 0 && off/isa.InstBytes < uint64(len(meta)) {
			meta[off/isa.InstBytes].flags |= mReconv
		}
	}
	return meta
}

// buildExec compiles one static instruction into its execute handler. Each
// handler is behaviour-identical to the retired execute-stage class switch:
// same operand selection, same results, same latencies, same side effects —
// just resolved once at program load instead of per dynamic instance.
func buildExec(m *instMeta) execFn {
	op := m.inst.Op
	imm := uint64(m.inst.Imm)
	switch m.class {
	case isa.ClassALU:
		fn := aluFn(op)
		if m.flags&mImmV2 != 0 {
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				d.Result = fn(c.srcVal(d.Src1), imm)
				return 1
			}
		}
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			d.Result = fn(c.srcVal(d.Src1), c.srcVal(d.Src2))
			return 1
		}
	case isa.ClassMul:
		fn := aluFn(op)
		if m.flags&mImmV2 != 0 {
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				d.Result = fn(c.srcVal(d.Src1), imm)
				return c.cfg.MulLatency
			}
		}
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			d.Result = fn(c.srcVal(d.Src1), c.srcVal(d.Src2))
			return c.cfg.MulLatency
		}
	case isa.ClassDiv:
		fn := aluFn(op)
		useImm := m.flags&mImmV2 != 0
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			v1 := c.srcVal(d.Src1)
			v2 := c.srcVal(d.Src2)
			if useImm {
				v2 = imm
			}
			d.Result = fn(v1, v2)
			// Operand-dependent latency: what makes the divider a transmitter.
			lat := c.cfg.DivLatencyBase
			if c.cfg.DivLatencyRange > 0 {
				lat += bits.Len64(v1) * c.cfg.DivLatencyRange / 64
			}
			c.divBusyUntil = c.cycle + uint64(lat)
			c.divBusySeq = d.Seq
			return lat
		}
	case isa.ClassLoad:
		size := int(m.memBytes)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return func(c *Core, d *DynInst, decision Decision, fwd *DynInst) int {
			if fwd != nil {
				d.Result = isa.ExtendLoad(op, fwd.Result&mask)
				d.FwdFrom = fwd
				if !c.nop {
					c.policy.OnForward(d, fwd)
				}
				return 1
			}
			raw, err := c.Phys.Read(d.Addr, size)
			if err != nil {
				// Wrong-path access outside simulated memory: produce a
				// harmless value with hit latency and no cache perturbation.
				// If this load is actually architectural the commit stage
				// reports the fault.
				d.MemErr = true
				d.Result = 0
				return c.cfg.Hier.L1D.Latency
			}
			d.Result = isa.ExtendLoad(op, raw)
			if decision == ProceedInvisible {
				d.Invisible = true
				return c.Hier.InvisibleLoadLatency(d.Addr)
			}
			return c.Hier.LoadLatency(d.Addr)
		}
	case isa.ClassStore:
		// Overflow-safe bounds check baked in at build time: memBytes <= 8 <=
		// MemLimit, so the subtraction cannot underflow, while addr+size
		// wraps for wild wrong-path addresses near 2^64. Access sizes are
		// powers of two, so alignment is a mask test (zero mask for bytes).
		limit := isa.MemLimit - uint64(m.memBytes)
		alignMask := uint64(m.memBytes) - 1
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			d.Result = c.srcVal(d.Src2)
			if d.Addr > limit || d.Addr&alignMask != 0 {
				d.MemErr = true
			}
			return 1
		}
	case isa.ClassBranch:
		fn := branchFn(op)
		target, seqNext := m.target, m.seqNext
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			d.ActualTaken = fn(c.srcVal(d.Src1), c.srcVal(d.Src2))
			if d.ActualTaken {
				d.ActualNext = target
			} else {
				d.ActualNext = seqNext
			}
			d.Mispredict = d.ActualNext != d.PredNext
			return 1 + c.cfg.BranchResolveLatency
		}
	case isa.ClassJump:
		seqNext := m.seqNext
		if m.kind == fkJAL {
			target := m.target
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				d.Result = seqNext
				d.ActualNext = target
				return 1
			}
		}
		return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
			d.Result = seqNext
			d.ActualNext = (c.srcVal(d.Src1) + imm) &^ 1
			d.Mispredict = d.ActualNext != d.PredNext
			return 1 + c.cfg.BranchResolveLatency
		}
	case isa.ClassSystem:
		switch op {
		case isa.RDCYCLE:
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				d.Result = c.cycle
				return 1
			}
		case isa.PUTC, isa.PUTI, isa.HALT:
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				d.Result = c.srcVal(d.Src1)
				return 1
			}
		case isa.CFLUSH:
			return func(c *Core, d *DynInst, _ Decision, _ *DynInst) int {
				// Microarchitectural effect at execute time — this is the
				// speculative attack primitive the policies must gate.
				c.Hier.Flush(d.Addr)
				return 1
			}
		}
	}
	// FENCE (serialization handled at issue) and any future effect-free op.
	return func(*Core, *DynInst, Decision, *DynInst) int { return 1 }
}

// aluFn returns the value function for an ALU/MUL/DIV op. The closures
// mirror isa.EvalALU case for case (the differential oracles cross-check
// them against the reference interpreter, which still calls EvalALU).
func aluFn(op isa.Op) func(a, b uint64) uint64 {
	switch op {
	case isa.ADD, isa.ADDI:
		return func(a, b uint64) uint64 { return a + b }
	case isa.SUB:
		return func(a, b uint64) uint64 { return a - b }
	case isa.AND, isa.ANDI:
		return func(a, b uint64) uint64 { return a & b }
	case isa.OR, isa.ORI:
		return func(a, b uint64) uint64 { return a | b }
	case isa.XOR, isa.XORI:
		return func(a, b uint64) uint64 { return a ^ b }
	case isa.SLL, isa.SLLI:
		return func(a, b uint64) uint64 { return a << (b & 63) }
	case isa.SRL, isa.SRLI:
		return func(a, b uint64) uint64 { return a >> (b & 63) }
	case isa.SRA, isa.SRAI:
		return func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }
	case isa.SLT, isa.SLTI:
		return func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		}
	case isa.SLTU, isa.SLTIU:
		return func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		}
	default:
		// MUL/MULH/DIV/DIVU/REM/REMU, LUI, and anything added later fall
		// back to the shared evaluator (single op per closure, so the inner
		// switch predicts perfectly).
		return func(a, b uint64) uint64 { return isa.EvalALU(op, a, b) }
	}
}

// branchFn returns the taken predicate for a conditional branch op.
func branchFn(op isa.Op) func(a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return func(a, b uint64) bool { return a == b }
	case isa.BNE:
		return func(a, b uint64) bool { return a != b }
	case isa.BLT:
		return func(a, b uint64) bool { return int64(a) < int64(b) }
	case isa.BGE:
		return func(a, b uint64) bool { return int64(a) >= int64(b) }
	case isa.BLTU:
		return func(a, b uint64) bool { return a < b }
	case isa.BGEU:
		return func(a, b uint64) bool { return a >= b }
	default:
		return func(a, b uint64) bool { return isa.EvalBranch(op, a, b) }
	}
}

// metaAt resolves pc to its cache entry; nil if pc is outside the text
// segment or misaligned (same contract as Program.InstAt — a wrong-path
// fetch that runs off the program).
func (c *Core) metaAt(pc uint64) *instMeta {
	off := pc - isa.TextBase // wraps below TextBase; caught by the len check
	if off%isa.InstBytes != 0 {
		return nil
	}
	i := off / isa.InstBytes
	if i >= uint64(len(c.meta)) {
		return nil
	}
	return &c.meta[i]
}
