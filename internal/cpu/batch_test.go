package cpu

import (
	"context"
	"testing"

	"levioso/internal/asm"
	"levioso/internal/simerr"
)

// Batch stepping must be invisible to the simulation: a core advanced in
// quanta of any size commits exactly the sequence Run commits, and the pool
// runner's results must be index-aligned and bit-identical to individual
// runs.

var batchProgs = map[string]string{
	"loop": `
main:
	addi t0, zero, 200
	addi t1, zero, 0
loop:
	addi t1, t1, 3
	addi t0, t0, -1
	bne t0, zero, loop
	sd t1, 0(gp)
	halt zero
`,
	"chase": `
main:
	addi t0, zero, 64
	sd zero, 64(gp)
	addi t1, zero, 8
next:
	ld t0, 0(t0)
	addi t1, t1, -1
	bne t1, zero, next
	halt zero
`,
	"branchy": `
main:
	addi t0, zero, 100
	addi t2, zero, 0
top:
	andi t1, t0, 1
	beq t1, zero, even
	addi t2, t2, 7
	jal zero, join
even:
	addi t2, t2, -2
join:
	addi t0, t0, -1
	bne t0, zero, top
	sd t2, 8(gp)
	halt zero
`,
}

func batchCore(t *testing.T, src string) *Core {
	t.Helper()
	c, err := New(asm.MustAssemble("t.s", src), DefaultConfig(), NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStepManySlicingInvisible advances one core in odd-sized quanta and
// demands the exact Result a single Run produces.
func TestStepManySlicingInvisible(t *testing.T) {
	for name, src := range batchProgs {
		want, err := batchCore(t, src).Run()
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		c := batchCore(t, src)
		for !c.Halted() {
			if _, err := c.StepMany(1013); err != nil {
				t.Fatalf("%s: StepMany: %v", name, err)
			}
		}
		if got := c.result(); got != want {
			t.Errorf("%s: sliced run diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestStepManyBudget checks consumption accounting: a halted core consumes
// nothing, and a live core consumes at least the budget unless it halts
// (the idle fast-forward may overshoot by the length of a skipped gap).
func TestStepManyBudget(t *testing.T) {
	c := batchCore(t, batchProgs["loop"])
	n, err := c.StepMany(50)
	if err != nil {
		t.Fatal(err)
	}
	if n < 50 && !c.Halted() {
		t.Errorf("consumed %d cycles of a 50-cycle budget without halting", n)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n, err = c.StepMany(50); err != nil || n != 0 {
		t.Errorf("halted core consumed %d cycles (err %v), want 0", n, err)
	}
}

// TestRunBatchMatchesRun runs a mixed population through pools of several
// widths and demands every core's result equal its individually-run twin.
func TestRunBatchMatchesRun(t *testing.T) {
	var srcs []string
	for _, src := range batchProgs {
		for i := 0; i < 3; i++ { // population larger than the pool
			srcs = append(srcs, src)
		}
	}
	want := make([]Result, len(srcs))
	for i, src := range srcs {
		r, err := batchCore(t, src).Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{0, 1, 2, 16} {
		cores := make([]*Core, len(srcs))
		for i, src := range srcs {
			cores[i] = batchCore(t, src)
		}
		for i, br := range RunBatch(context.Background(), cores, workers) {
			if br.Err != nil {
				t.Fatalf("workers=%d core %d: %v", workers, i, br.Err)
			}
			if br.Res != want[i] {
				t.Errorf("workers=%d core %d diverged:\n got %+v\nwant %+v",
					workers, i, br.Res, want[i])
			}
		}
	}
}

// TestRunBatchCancelled: a dead context surfaces per-core as the same
// deadline kind RunContext reports, without running anything.
func TestRunBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cores := []*Core{batchCore(t, batchProgs["loop"]), batchCore(t, batchProgs["chase"])}
	for i, br := range RunBatch(ctx, cores, 2) {
		if simerr.KindOf(br.Err) != simerr.KindDeadline {
			t.Errorf("core %d: err %v, want deadline", i, br.Err)
		}
	}
}

// TestRunBatchEmpty: a zero-length population returns immediately.
func TestRunBatchEmpty(t *testing.T) {
	if out := RunBatch(context.Background(), nil, 4); len(out) != 0 {
		t.Errorf("got %d results for empty batch", len(out))
	}
}
