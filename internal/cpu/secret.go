package cpu

import "levioso/internal/mem"

// SecretTainter is the opt-in marker for policies that need the core to
// track secret-typed data (ProSpeCT-style). Only when the attached policy
// implements it does the core allocate the taint state and run the
// propagation hooks, so every other policy — including the golden baselines —
// pays nothing.
type SecretTainter interface {
	UsesSecretTaint()
}

// secretState tracks which physical registers and memory bytes currently
// hold secret-typed data. Register taint is written at execute time (the
// producing instruction's result is computed and, for loads, the forwarding
// store is still live) and read by Policy.Decide; because a consumer only
// reaches Decide after every source register has written back, the taint of
// its sources is always current. Memory taint combines the program's static
// secret ranges with a committed-store overlay (see mem.SecretSet).
type secretState struct {
	set    *mem.SecretSet
	regSec []bool // per physical register; stale entries are overwritten at reallocation's execute
}

func newSecretState(c *Core) *secretState {
	return &secretState{
		set:    mem.NewSecretSet(c.prog.Secrets),
		regSec: make([]bool, c.cfg.NumPhysRegs),
	}
}

// afterExec computes d's taint from its executed sources and publishes it to
// the destination register. Loads take the taint of the bytes read (or of
// the forwarding store's data), OR'd with the address register's taint —
// a secret-derived address makes the loaded value secret-dependent too.
// Stores taint only their data operand; the address influences *where* the
// overlay is marked at commit, not the stored value's secrecy.
func (s *secretState) afterExec(c *Core, d *DynInst, fwd *DynInst) {
	m := d.m
	var sec bool
	switch {
	case m.flags&mLoad != 0:
		if fwd != nil {
			sec = fwd.Secret
		} else if !d.MemErr {
			sec = s.set.Secret(d.Addr, int(m.memBytes))
		}
		sec = sec || s.reg(d.Src1)
	case m.flags&mStore != 0:
		sec = s.reg(d.Src2)
	default:
		sec = s.reg(d.Src1) || s.reg(d.Src2)
	}
	d.Secret = sec
	if d.Dst >= 0 {
		s.regSec[d.Dst] = sec
	}
	if sec && c.cov != nil {
		c.cov.mark(covTaint, covSite(d), 0)
	}
}

// commitStore records a retiring store into the memory-taint overlay:
// secret data classifies the destination bytes, public data declassifies
// them. Wrong-path stores never reach here, so the overlay is architectural.
func (s *secretState) commitStore(d *DynInst, size int) {
	s.set.MarkStored(d.Addr, size, d.Secret)
}

func (s *secretState) reg(p int) bool {
	return p >= 0 && s.regSec[p]
}

// RegSecret reports whether physical register p currently holds
// secret-tainted data. Always false when the active policy does not request
// secret tracking.
func (c *Core) RegSecret(p int) bool {
	return c.sec != nil && c.sec.reg(p)
}
