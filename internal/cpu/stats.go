package cpu

import (
	"fmt"
	"strings"
)

// Stats aggregates one run's performance counters.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64
	Renamed   uint64
	Squashed  uint64

	CondBranches    uint64 // committed conditional branches
	CondMispredicts uint64
	Indirects       uint64 // committed JALRs
	IndMispredicts  uint64

	Loads       uint64 // committed
	Stores      uint64
	LoadForward uint64 // committed loads satisfied by store forwarding

	// Transmitter restriction accounting (experiment F2).
	Transmitters           uint64 // committed transmitters (loads, div, cflush)
	RestrictedTransmitters uint64 // committed transmitters the policy ever blocked
	SpecTransmitters       uint64 // committed transmitters issued while >=1 older branch unresolved (what a conservative scheme must restrict)
	InvisibleLoads         uint64 // committed loads executed invisibly
	PolicyWaitEvents       uint64 // instruction-cycles spent policy-blocked

	BDTAllocStalls uint64 // rename stalls because the branch table was full

	// Memory system (copied from the hierarchy at run end).
	L1IHits, L1IMisses uint64
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns the conditional-branch misprediction ratio.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.CondMispredicts) / float64(s.CondBranches)
}

// RestrictedFrac returns the fraction of committed transmitters the active
// policy ever delayed.
func (s Stats) RestrictedFrac() float64 {
	if s.Transmitters == 0 {
		return 0
	}
	return float64(s.RestrictedTransmitters) / float64(s.Transmitters)
}

// SpecFrac returns the fraction of committed transmitters that were
// speculative at issue — the restriction fraction of a conservative
// (all-older-branches) scheme.
func (s Stats) SpecFrac() float64 {
	if s.Transmitters == 0 {
		return 0
	}
	return float64(s.SpecTransmitters) / float64(s.Transmitters)
}

// String renders a compact multi-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d insts=%d ipc=%.3f\n", s.Cycles, s.Committed, s.IPC())
	fmt.Fprintf(&b, "branches=%d mispredicts=%d (%.2f%%) indirects=%d indMiss=%d\n",
		s.CondBranches, s.CondMispredicts, 100*s.MispredictRate(), s.Indirects, s.IndMispredicts)
	fmt.Fprintf(&b, "loads=%d stores=%d fwd=%d invisible=%d\n", s.Loads, s.Stores, s.LoadForward, s.InvisibleLoads)
	fmt.Fprintf(&b, "transmitters=%d restricted=%d (%.1f%%) specAtIssue=%d (%.1f%%) waitEvents=%d\n",
		s.Transmitters, s.RestrictedTransmitters, 100*s.RestrictedFrac(),
		s.SpecTransmitters, 100*s.SpecFrac(), s.PolicyWaitEvents)
	fmt.Fprintf(&b, "L1D %d/%d L2 %d/%d L1I %d/%d bdtStalls=%d squashed=%d",
		s.L1DHits, s.L1DMisses, s.L2Hits, s.L2Misses, s.L1IHits, s.L1IMisses,
		s.BDTAllocStalls, s.Squashed)
	return b.String()
}
