package cpu

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"levioso/internal/simerr"
)

// Batch stepping: advance many independent cores on a small goroutine pool.
//
// The sweep, fuzz and dispatch tiers all run large populations of mutually
// independent simulations. Spawning one goroutine per simulation makes the
// scheduler interleave them at arbitrary points, so every preemption drags a
// different core's working set (ROB, rename tables, page chunks) through the
// host caches. The batch runner instead slices each core into fixed cycle
// quanta via StepMany and lets a bounded pool of workers round-robin the
// population: one core stays hot for a whole quantum, every core keeps
// making progress, and the number of live working sets equals the worker
// count rather than the population size.
//
// Slicing is invisible to the simulation: a core advanced by StepMany in any
// quantum sizes commits exactly the cycle/instruction sequence Run would
// (Step and the idle fast-forward are the only actors in both paths), so
// batch results are bit-identical to individual runs.

// StepMany advances the core by up to budget cycles (idle cycles jumped by
// the fast-forward count toward the budget, since they are simulated
// cycles) and returns the number consumed. It stops early when the core
// halts or a step fails. A halted core consumes nothing.
func (c *Core) StepMany(budget uint64) (uint64, error) {
	start := c.cycle
	for !c.halted && c.cycle-start < budget {
		if err := c.Step(); err != nil {
			return c.cycle - start, err
		}
		c.idleSkip()
	}
	return c.cycle - start, nil
}

// BatchResult is the outcome of one core in a RunBatch population: exactly
// what Run would have returned for that core.
type BatchResult struct {
	Res Result
	Err error
}

// batchQuantum is the slice size in simulated cycles. Large enough that the
// per-slice overhead (queue hop, context poll) is amortized over tens of
// thousands of steps; small enough that a population of slow cores
// interleaves fairly and cancellation latency stays in the milliseconds.
const batchQuantum = 1 << 16

// RunBatch advances every core to completion on a pool of `workers`
// goroutines (GOMAXPROCS when workers <= 0) and returns one BatchResult per
// core, index-aligned with the input. Cores must be independent (no shared
// mutable state); each core is only ever touched by one worker at a time.
// Cancellation is cooperative at quantum boundaries and surfaces per-core as
// simerr.KindDeadline, matching RunContext. A panic inside a core is
// captured as that core's simerr.KindPanic failure instead of crashing the
// whole batch — one poisoned simulation must not take down its cohort.
func RunBatch(ctx context.Context, cores []*Core, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(cores))
	if len(cores) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cores) {
		workers = len(cores)
	}
	// Buffered to the population size, so a worker's requeue of an
	// unfinished core can never block: at most len(cores) indices are
	// outstanding at any moment.
	queue := make(chan int, len(cores))
	for i := range cores {
		queue <- i
	}
	var mu sync.Mutex
	remaining := len(cores)
	finish := func(i int, r BatchResult) {
		out[i] = r
		mu.Lock()
		remaining--
		last := remaining == 0
		mu.Unlock()
		if last {
			close(queue) // releases every worker's range loop
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				c := cores[i]
				select {
				case <-ctx.Done():
					finish(i, BatchResult{Err: &simerr.RunError{
						Kind: simerr.KindDeadline, Cycle: c.cycle, PC: c.fetchPC,
						Err: ctx.Err(),
					}})
					continue
				default:
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = &simerr.RunError{
								Kind: simerr.KindPanic, Cycle: c.cycle, PC: c.fetchPC,
								Err: fmt.Errorf("batch core panic: %v\n%s", r, debug.Stack()),
							}
						}
					}()
					_, err = c.StepMany(batchQuantum)
					return err
				}()
				switch {
				case err != nil:
					finish(i, BatchResult{Err: err})
				case c.halted:
					finish(i, BatchResult{Res: c.result()})
				default:
					queue <- i // unfinished: back of the line
				}
			}
		}()
	}
	wg.Wait()
	return out
}
