package cpu

import "fmt"

// PredConfig configures the front-end predictors.
type PredConfig struct {
	GShareBits  int // log2 of the pattern history table size
	HistoryBits int // global history length
	BTBEntries  int // direct-mapped indirect-target buffer (power of two)
	RASDepth    int // return address stack entries
	// ForceMispredictRate, when in (0,1], overrides the gshare direction
	// prediction with a deterministic pseudo-random predictor that is wrong
	// for approximately this fraction of conditional branches. Used by the
	// predictor-quality sensitivity sweep (experiment F4); 0 disables it.
	ForceMispredictRate float64
}

// DefaultPredConfig returns the baseline predictor.
func DefaultPredConfig() PredConfig {
	return PredConfig{GShareBits: 14, HistoryBits: 12, BTBEntries: 1024, RASDepth: 16}
}

// Validate checks the predictor geometry.
func (c PredConfig) Validate() error {
	if c.GShareBits < 1 || c.GShareBits > 24 {
		return fmt.Errorf("cpu: GShareBits %d out of range", c.GShareBits)
	}
	if c.HistoryBits < 0 || c.HistoryBits > 32 {
		return fmt.Errorf("cpu: HistoryBits %d out of range", c.HistoryBits)
	}
	if c.BTBEntries <= 0 || c.BTBEntries&(c.BTBEntries-1) != 0 {
		return fmt.Errorf("cpu: BTBEntries %d not a positive power of two", c.BTBEntries)
	}
	if c.RASDepth <= 0 {
		return fmt.Errorf("cpu: RASDepth %d invalid", c.RASDepth)
	}
	if c.ForceMispredictRate < 0 || c.ForceMispredictRate > 1 {
		return fmt.Errorf("cpu: ForceMispredictRate %f out of range", c.ForceMispredictRate)
	}
	return nil
}

// PredCheckpoint snapshots the speculative predictor state at a control
// instruction, for recovery on misprediction.
type PredCheckpoint struct {
	History uint64
	RAS     []uint64
	RASTop  int
}

// Predictor is the front-end branch prediction unit: a gshare direction
// predictor, a direct-mapped BTB for indirect targets, and a return address
// stack. Direction/target state is updated speculatively at prediction time
// (history, RAS) and non-speculatively at commit (counters, BTB).
type Predictor struct {
	cfg     PredConfig
	pht     []uint8 // 2-bit saturating counters
	history uint64
	btbTag  []uint64
	btbTgt  []uint64
	ras     []uint64
	rasTop  int // index of next push slot

	// forceLCG drives the deterministic degraded predictor for F4.
	forceLCG uint64

	Lookups     uint64
	CondPredict uint64
}

// NewPredictor builds the predictor.
func NewPredictor(cfg PredConfig) *Predictor {
	return &Predictor{
		cfg:    cfg,
		pht:    make([]uint8, 1<<cfg.GShareBits),
		btbTag: make([]uint64, cfg.BTBEntries),
		btbTgt: make([]uint64, cfg.BTBEntries),
		ras:    make([]uint64, cfg.RASDepth),
	}
}

func (p *Predictor) phtIndex(pc uint64) int {
	h := p.history & (1<<uint(p.cfg.HistoryBits) - 1)
	return int((pc/8 ^ h) & (1<<uint(p.cfg.GShareBits) - 1))
}

// PredictBranch predicts a conditional branch's direction and speculatively
// updates the global history. The returned index identifies the PHT entry for
// the commit-time update.
func (p *Predictor) PredictBranch(pc uint64) (taken bool, phtIdx int) {
	p.Lookups++
	p.CondPredict++
	phtIdx = p.phtIndex(pc)
	taken = p.pht[phtIdx] >= 2
	if p.cfg.ForceMispredictRate > 0 {
		// Deterministic LCG draw; when it lands under the target rate the
		// prediction is intentionally independent of program behaviour
		// (fixed "taken"), approximating a predictor of the desired quality.
		p.forceLCG = p.forceLCG*6364136223846793005 + 1442695040888963407
		draw := float64(p.forceLCG>>11) / float64(1<<53)
		if draw < p.cfg.ForceMispredictRate*2 {
			// Randomize the direction rather than forcing a mispredict so
			// the achieved mispredict rate ≈ rate (a random guess is wrong
			// half the time).
			taken = p.forceLCG&(1<<20) != 0
		}
	}
	p.history = p.history<<1 | b2u(taken)
	return taken, phtIdx
}

// UpdateBranch trains the PHT entry at commit time with the actual outcome.
func (p *Predictor) UpdateBranch(phtIdx int, taken bool) {
	c := p.pht[phtIdx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pht[phtIdx] = c
}

// PredictIndirect predicts a JALR target via the BTB; ok is false on a tag
// miss (the front end then falls through and will almost surely mispredict).
func (p *Predictor) PredictIndirect(pc uint64) (uint64, bool) {
	p.Lookups++
	i := int(pc / 8 % uint64(p.cfg.BTBEntries))
	if p.btbTag[i] == pc {
		return p.btbTgt[i], true
	}
	return 0, false
}

// UpdateIndirect trains the BTB at commit time.
func (p *Predictor) UpdateIndirect(pc, target uint64) {
	i := int(pc / 8 % uint64(p.cfg.BTBEntries))
	p.btbTag[i] = pc
	p.btbTgt[i] = target
}

// PushRAS records a return address at a call.
func (p *Predictor) PushRAS(addr uint64) {
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % p.cfg.RASDepth
}

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() uint64 {
	p.rasTop = (p.rasTop - 1 + p.cfg.RASDepth) % p.cfg.RASDepth
	return p.ras[p.rasTop]
}

// Checkpoint captures speculative state for a control instruction.
func (p *Predictor) Checkpoint() PredCheckpoint {
	var cp PredCheckpoint
	p.CheckpointInto(&cp)
	return cp
}

// CheckpointInto captures speculative state into cp, reusing cp's RAS buffer
// when it has capacity. This is the allocation-free form the core's hot loop
// uses: checkpoints live in a core-owned pool and their RAS snapshot buffers
// are recycled with them.
func (p *Predictor) CheckpointInto(cp *PredCheckpoint) {
	cp.History = p.history
	cp.RAS = append(cp.RAS[:0], p.ras...)
	cp.RASTop = p.rasTop
}

// Recover restores speculative state from a checkpoint taken at a
// mispredicted control instruction and re-applies the actual outcome.
func (p *Predictor) Recover(cp PredCheckpoint, isCond, actualTaken bool) {
	p.history = cp.History
	copy(p.ras, cp.RAS)
	p.rasTop = cp.RASTop
	if isCond {
		p.history = p.history<<1 | b2u(actualTaken)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
