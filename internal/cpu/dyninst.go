package cpu

import (
	"levioso/internal/core"
	"levioso/internal/isa"
)

// InstState tracks a dynamic instruction's progress through the window.
type InstState uint8

const (
	StateRenamed   InstState = iota // in window, waiting for operands/policy
	StateIssued                     // sent to a functional unit this cycle
	StateExecuting                  // occupying a unit / waiting for memory
	StateDone                       // result produced
)

// DynInst is one in-flight dynamic instruction.
type DynInst struct {
	Seq  uint64 // global program-order sequence number (1-based)
	PC   uint64
	Inst isa.Inst

	// Fetch-time prediction state.
	PredNext  uint64 // predicted next PC (fetch continued here)
	PredTaken bool   // conditional branches: predicted direction
	PhtIdx    int    // PHT entry used (conditional branches)
	UsedRAS   bool   // JALR predicted via the return address stack
	Check     *Checkpoint

	// Rename results: physical register indices, -1 when absent.
	Dst, Src1, Src2 int
	OldDst          int

	State     InstState
	DoneCycle uint64 // cycle the result becomes available (while executing)
	Result    uint64

	// Memory state.
	Addr      uint64 // effective address (valid once AddrReady)
	AddrReady bool
	MemErr    bool     // wrong-path access outside simulated memory
	FwdFrom   *DynInst // store that forwarded its data, if any
	// Secret marks the result (for stores: the data) secret-tainted. Only
	// maintained when the active policy implements SecretTainter.
	Secret bool

	// Control state.
	ActualNext  uint64 // resolved next PC
	ActualTaken bool
	Mispredict  bool
	BrSlot      int // Branch Dependency Table slot, -1 if none

	// Policy state. WaitMask names the BDT slots that must resolve before
	// this instruction may execute under the active policy; the core clears
	// bits as branches resolve. DataMask is the dependency mask of the value
	// this instruction produces (propagated through rename and forwarding).
	WaitMask   core.Mask
	DataMask   core.Mask
	Invisible  bool // executed as an invisible load (no cache state change)
	EverWaited bool // was ready but policy-blocked at least once (stats)

	Squashed    bool
	specAtIssue bool   // issued while >= 1 older branch was unresolved (stats)
	exposeUntil uint64 // invisible loads: cycle the commit-time exposure/validation completes

	// m caches the static instruction's precomputed metadata (op class,
	// operand presence, fetch behaviour); set by the core at fetch. gen is
	// the recycle generation: bumped each time the object returns to the
	// core's free pool, so completion-wheel entries referencing a squashed
	// instruction can be detected as stale. Both survive the reset-on-reuse
	// (gen explicitly, m by reassignment).
	m   *instMeta
	gen uint32

	// Event-driven issue state (see issue() in core.go): pending counts the
	// source operands still awaiting writeback; inIQ marks the instruction's
	// issue-queue occupancy for the rename-stage capacity check. Both zero on
	// recycle.
	pending int8
	inIQ    bool
}

// Checkpoint captures rename and predictor state at a control instruction,
// allowing single-cycle recovery on misprediction.
type Checkpoint struct {
	RAT  [isa.NumRegs]int
	Pred PredCheckpoint
}

// The predicate accessors answer from the decoded metadata when the core set
// it (the hot path — one flag test, no op-table lookups); DynInsts fabricated
// outside a core fall back to the op predicates.

// IsLoad reports whether the instruction reads data memory.
func (d *DynInst) IsLoad() bool {
	if d.m != nil {
		return d.m.flags&mLoad != 0
	}
	return d.Inst.Op.IsLoad()
}

// IsStore reports whether the instruction writes data memory.
func (d *DynInst) IsStore() bool {
	if d.m != nil {
		return d.m.flags&mStore != 0
	}
	return d.Inst.Op.IsStore()
}

// IsCondBranch reports whether this is a conditional branch.
func (d *DynInst) IsCondBranch() bool {
	if d.m != nil {
		return d.m.flags&mCondBranch != 0
	}
	return d.Inst.Op.IsBranch()
}

// IsControl reports whether the instruction can redirect fetch.
func (d *DynInst) IsControl() bool {
	if d.m != nil {
		return d.m.flags&mControl != 0
	}
	return d.Inst.Op.IsControl()
}

// IsTransmitter reports whether the instruction is a transmitter op (load,
// divide, cache flush) — the class every policy gates. Policies call this on
// every Decide, so it answers from the decoded flag.
func (d *DynInst) IsTransmitter() bool {
	if d.m != nil {
		return d.m.flags&mTransmitter != 0
	}
	return d.Inst.Op.IsTransmitter()
}

// Decision is a policy's verdict on a ready-to-issue instruction.
type Decision uint8

const (
	// Proceed lets the instruction execute normally.
	Proceed Decision = iota
	// ProceedInvisible executes a load without changing cache state
	// (InvisiSpec/GhostMinion-style); the fill happens when the load becomes
	// safe. Only meaningful for loads.
	ProceedInvisible
	// Wait blocks the instruction this cycle.
	Wait
)

// Policy is a secure-speculation policy plugged into the core. The core
// calls OnRename in program order (including wrong-path instructions),
// Decide whenever a data-ready instruction is considered for issue,
// OnSlotResolved when a Branch Dependency Table slot resolves (so the policy
// clears the slot from its own tables), and OnSquash for every squashed
// instruction. Attach gives the policy access to the core's BDT and
// configuration; Reset is called at the start of every run.
type Policy interface {
	Name() string
	Attach(c *Core)
	Reset()
	OnRename(d *DynInst)
	Decide(d *DynInst) Decision
	OnForward(load, store *DynInst)
	OnSlotResolved(slot int)
	OnSquash(d *DynInst)
}

// NopPolicy is the unprotected baseline: full speculative execution.
// (internal/secure re-exports it as the `unsafe` policy.)
type NopPolicy struct{}

// Name implements Policy.
func (NopPolicy) Name() string { return "unsafe" }

// Attach implements Policy.
func (NopPolicy) Attach(*Core) {}

// Reset implements Policy.
func (NopPolicy) Reset() {}

// OnRename implements Policy.
func (NopPolicy) OnRename(*DynInst) {}

// Decide implements Policy.
func (NopPolicy) Decide(*DynInst) Decision { return Proceed }

// OnForward implements Policy.
func (NopPolicy) OnForward(_, _ *DynInst) {}

// OnSlotResolved implements Policy.
func (NopPolicy) OnSlotResolved(int) {}

// OnSquash implements Policy.
func (NopPolicy) OnSquash(*DynInst) {}
