package cpu

import (
	"testing"

	"levioso/internal/asm"
	"levioso/internal/isa"
)

// Regression tests for the uint64 address-wrap bugs in the wrong-path memory
// model: the store bounds check and loadMayIssue's overlap test both computed
// addr+size, which wraps for wild speculative addresses near 2^64 — exactly
// the addresses wrong-path pointer chases manufacture.

// wildCore builds a core over a tiny store+load program so tests can craft
// in-flight memory instructions directly against the disambiguation logic.
func wildCore(t *testing.T) *Core {
	t.Helper()
	prog := asm.MustAssemble("t.s", `
main:
	sd t0, 0(t1)
	ld t2, 0(t1)
	halt zero
`)
	c, err := New(prog, DefaultConfig(), NopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// wildInst fabricates an in-flight memory instruction at text index idx with a
// resolved effective address.
func wildInst(c *Core, seq uint64, idx int, addr uint64) *DynInst {
	pc := isa.TextBase + uint64(idx)*isa.InstBytes
	d := c.newDynInst(seq, pc, c.metaAt(pc))
	d.Dst, d.Src1, d.Src2 = -1, -1, -1
	d.Addr, d.AddrReady = addr, true
	return d
}

// The store bounds check must flag an 8-byte store at 0xFFFFFFFFFFFFFFF8:
// addr+size wraps to 0, which the old comparison read as in-bounds.
func TestStoreBoundsWildAddressWrap(t *testing.T) {
	c := wildCore(t)
	cases := []struct {
		addr    uint64
		wantErr bool
	}{
		{0xFFFFFFFFFFFFFFF8, true}, // aligned, wraps past 2^64
		{isa.MemLimit, true},       // first invalid address
		{isa.MemLimit - 4, true},   // straddles the limit
		{isa.MemLimit - 8, false},  // last valid doubleword
		{isa.DataBase + 16, false}, // ordinary in-bounds store
	}
	for i, tc := range cases {
		d := wildInst(c, uint64(10+i), 0, tc.addr)
		c.execute(d, Proceed, nil)
		if d.MemErr != tc.wantErr {
			t.Errorf("store addr %#x: MemErr = %v, want %v", tc.addr, d.MemErr, tc.wantErr)
		}
	}
}

// loadMayIssue must see a store at 0xFFFFFFFFFFFFFFF8 (bytes F8..FF) and a
// load at 0xFFFFFFFFFFFFFFFC as overlapping even though the load's interval
// end wraps past 2^64. The old comparison missed the overlap and let the load
// issue past the conflicting older store.
func TestLoadMayIssuePartialOverlapStraddles2e64(t *testing.T) {
	c := wildCore(t)
	st := wildInst(c, 1, 0, 0xFFFFFFFFFFFFFFF8)
	st.State = StateExecuting
	c.sq = append(c.sq, st)

	ld := wildInst(c, 2, 1, 0xFFFFFFFFFFFFFFFC)
	ok, fwd := c.loadMayIssue(ld)
	if ok || fwd != nil {
		t.Errorf("load %#x vs older store %#x: issued (ok=%v fwd=%v), want stall on partial overlap",
			ld.Addr, st.Addr, ok, fwd != nil)
	}
}

// An exact-match store→load pair at a wild address must still forward once
// the store's data is captured; the wrapping interval test hid the match.
func TestLoadMayIssueExactForwardAtWildAddress(t *testing.T) {
	c := wildCore(t)
	st := wildInst(c, 1, 0, 0xFFFFFFFFFFFFFFF8)
	st.State = StateDone
	st.Result = 0xDEAD
	c.sq = append(c.sq, st)

	ld := wildInst(c, 2, 1, 0xFFFFFFFFFFFFFFF8)
	ok, fwd := c.loadMayIssue(ld)
	if !ok || fwd != st {
		t.Errorf("exact-match wild load: ok=%v fwd=%v, want forwarding from the older store", ok, fwd == st)
	}
}

// Disjoint wild intervals must not stall, and a wild load must not collide
// with an unrelated low store (no phantom overlaps from the rewrite).
func TestLoadMayIssueDisjointWildAddresses(t *testing.T) {
	cases := []struct {
		name           string
		stAddr, ldAddr uint64
	}{
		{"adjacent below", 0xFFFFFFFFFFFFFFF8, 0xFFFFFFFFFFFFFFF0},
		{"wild load vs low store", 0x100000, 0xFFFFFFFFFFFFFFF8},
		{"low load vs wild store", 0xFFFFFFFFFFFFFFF8, 0x100000},
	}
	for _, tc := range cases {
		c := wildCore(t)
		st := wildInst(c, 1, 0, tc.stAddr)
		st.State = StateExecuting
		c.sq = append(c.sq, st)
		ld := wildInst(c, 2, 1, tc.ldAddr)
		ok, fwd := c.loadMayIssue(ld)
		if !ok || fwd != nil {
			t.Errorf("%s: store %#x load %#x: ok=%v fwd=%v, want issue with no forward",
				tc.name, tc.stAddr, tc.ldAddr, ok, fwd != nil)
		}
	}
}

// End-to-end: a trained pointer chase whose mispredicted final iteration
// dereferences a wild pointer at 0xFFFFFFFFFFFFFFF8. The wrong path performs
// a store and two loads (one exact match, one partial overlap) whose
// intervals straddle 2^64; the run must stay architecturally identical to
// the reference and recover cleanly.
func TestWrongPathPointerChaseStraddles2e64(t *testing.T) {
	runBoth(t, `
main:
	la s0, ptrs
	la s5, slots
	li t0, -8          # 0xFFFFFFFFFFFFFFF8: wild pointer for the 11th slot
	sd t0, 80(s0)
	li s1, 0           # i
	li s2, 0
	li t1, 10
fillp:                     # ptrs[i] = &slots[i] for i < 10
	slli t2, s1, 3
	add t3, t2, s0
	add t4, t2, s5
	sd t4, 0(t3)
	addi s1, s1, 1
	blt s1, t1, fillp
	li s1, 0
	li s4, 0
	li s7, 7000000
	li s8, 700000
chase:
	div t5, s7, s8     # slow bound (10): delays branch resolution so the
	beq s1, t5, done   # wrong path below runs with the wild pointer
	slli t2, s1, 3
	add t3, t2, s0
	ld t6, 0(t3)       # p = ptrs[i]; wrong path reads ptrs[10] = 0xFF..F8
	sd s1, 0(t6)       # wild wrong-path store: bytes F8..FF
	ld t4, 0(t6)       # exact-match reload: must forward, not read memory
	lw t2, 4(t6)       # partial overlap straddling 2^64: must stall
	add s4, s4, t4
	add s4, s4, t2
	addi s1, s1, 1
	j chase
done:
	halt s4            # sum 0..9 = 45
	.data
ptrs:	.space 96
slots:	.space 96
`, NopPolicy{})
}
