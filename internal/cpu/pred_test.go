package cpu

import "testing"

// train predicts pc and applies the actual outcome the way the core does:
// PHT update at commit plus history repair on a misprediction.
func train(p *Predictor, pc uint64, actual bool) bool {
	cp := p.Checkpoint()
	pred, idx := p.PredictBranch(pc)
	p.UpdateBranch(idx, actual)
	if pred != actual {
		p.Recover(cp, true, actual)
	}
	return pred
}

func TestGShareLearnsBias(t *testing.T) {
	p := NewPredictor(DefaultPredConfig())
	pc := uint64(0x1000)
	// Train strongly taken: long enough for the history to stabilize.
	for i := 0; i < 40; i++ {
		train(p, pc, true)
	}
	cp := p.Checkpoint()
	taken, _ := p.PredictBranch(pc)
	p.Recover(cp, true, true)
	if !taken {
		t.Error("predictor did not learn a taken bias")
	}
}

func TestGShareAlternatingWithHistory(t *testing.T) {
	p := NewPredictor(DefaultPredConfig())
	pc := uint64(0x2000)
	// Alternating pattern: with global history the PHT can learn it.
	correct := 0
	outcome := false
	for i := 0; i < 200; i++ {
		if train(p, pc, outcome) == outcome {
			correct++
		}
		outcome = !outcome
	}
	// After warmup the alternation should be nearly perfect.
	if correct < 150 {
		t.Errorf("alternating pattern: %d/200 correct", correct)
	}
}

func TestBTBRoundTrip(t *testing.T) {
	p := NewPredictor(DefaultPredConfig())
	if _, hit := p.PredictIndirect(0x3000); hit {
		t.Error("cold BTB hit")
	}
	p.UpdateIndirect(0x3000, 0x4000)
	tgt, hit := p.PredictIndirect(0x3000)
	if !hit || tgt != 0x4000 {
		t.Errorf("BTB = %#x, %v", tgt, hit)
	}
	// Aliasing entry replaces.
	alias := 0x3000 + uint64(DefaultPredConfig().BTBEntries)*8
	p.UpdateIndirect(alias, 0x5000)
	if _, hit := p.PredictIndirect(0x3000); hit {
		t.Error("evicted BTB entry still hits")
	}
}

func TestRASLIFO(t *testing.T) {
	p := NewPredictor(DefaultPredConfig())
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if got := p.PopRAS(); got != 0x200 {
		t.Errorf("pop = %#x", got)
	}
	if got := p.PopRAS(); got != 0x100 {
		t.Errorf("pop = %#x", got)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultPredConfig()
	p := NewPredictor(cfg)
	for i := 0; i < cfg.RASDepth+2; i++ {
		p.PushRAS(uint64(i))
	}
	// The two oldest entries were overwritten; the newest pops first.
	if got := p.PopRAS(); got != uint64(cfg.RASDepth+1) {
		t.Errorf("pop after overflow = %d", got)
	}
}

func TestCheckpointRecover(t *testing.T) {
	p := NewPredictor(DefaultPredConfig())
	p.PushRAS(0xaa)
	cp := p.Checkpoint()
	// Speculative damage.
	p.PredictBranch(0x1000)
	p.PopRAS()
	p.PushRAS(0xdead)
	p.Recover(cp, true, true)
	if got := p.PopRAS(); got != 0xaa {
		t.Errorf("RAS after recover = %#x", got)
	}
}

func TestForcedMispredictRateDegrades(t *testing.T) {
	cfg := DefaultPredConfig()
	cfg.ForceMispredictRate = 0.5
	p := NewPredictor(cfg)
	pc := uint64(0x1000)
	wrong := 0
	for i := 0; i < 2000; i++ {
		if !train(p, pc, true) { // always-taken branch
			wrong++
		}
	}
	// An always-taken branch is normally ~100% right; with rate 0.5 roughly
	// half the predictions are random, so ~25%+ should be wrong.
	if wrong < 200 {
		t.Errorf("forced mispredict rate had no effect: %d/2000 wrong", wrong)
	}
}

func TestPredConfigValidate(t *testing.T) {
	cfg := DefaultPredConfig()
	cfg.GShareBits = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad GShareBits accepted")
	}
	cfg = DefaultPredConfig()
	cfg.ForceMispredictRate = 2
	if err := cfg.Validate(); err == nil {
		t.Error("bad rate accepted")
	}
	cfg = DefaultPredConfig()
	cfg.RASDepth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("bad RAS depth accepted")
	}
}
