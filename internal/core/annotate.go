// Package core implements the Levioso hardware/software co-design from
// "Levioso: Efficient Compiler-Informed Secure Speculation" (DAC 2024).
//
// The software half (Annotate) is the compiler pass: for every conditional
// branch it computes the reconvergence point (immediate post-dominator) and
// the register write set of the branch's control-dependent region, and embeds
// them as isa.BranchHint annotations in the binary.
//
// The hardware half (BranchTable, DepState) is the in-core mechanism: a
// table of in-flight branches whose control regions are tracked against the
// annotated reconvergence points, and per-physical-register dependency masks
// propagated through rename. Together they give every dynamic instruction its
// set of *true* branch dependencies, so a secure-speculation policy can delay
// a transmitter only until the branches it actually depends on resolve,
// instead of all older unresolved branches.
package core

import (
	"fmt"

	"levioso/internal/cfg"
	"levioso/internal/isa"
)

// AnnotateStats summarizes a compiler pass run, feeding experiment T3.
type AnnotateStats struct {
	Functions    int // functions analyzed
	Branches     int // conditional branches seen
	Annotated    int // branches given a real reconvergence point
	Conservative int // branches with no reconvergence point (hint 0)
	RegionBlocks int // total blocks across all regions
	WriteRegs    int // total registers across all write sets
	TableBytes   int // size of the annotation table in the binary image
}

// AvgRegionBlocks returns the mean control-dependent region size, in basic
// blocks, over annotated branches.
func (s AnnotateStats) AvgRegionBlocks() float64 {
	if s.Annotated == 0 {
		return 0
	}
	return float64(s.RegionBlocks) / float64(s.Annotated)
}

// AvgWriteRegs returns the mean write-set size over annotated branches.
func (s AnnotateStats) AvgWriteRegs() float64 {
	if s.Annotated == 0 {
		return 0
	}
	return float64(s.WriteRegs) / float64(s.Annotated)
}

// Annotate runs the Levioso compiler pass over prog, replacing prog.Hints
// with freshly computed branch annotations. Branches whose reconvergence
// point cannot be established (indirect control flow, arms that leave the
// function) receive the conservative hint (ReconvPC 0), which the hardware
// treats as "depend on this branch until it resolves, and keep its region
// open for everything younger".
func Annotate(prog *isa.Program) (AnnotateStats, error) {
	g, err := cfg.Build(prog)
	if err != nil {
		return AnnotateStats{}, fmt.Errorf("core: %w", err)
	}
	var st AnnotateStats
	hints := make(map[uint64]isa.BranchHint)
	for _, f := range g.Functions() {
		st.Functions++
		for _, bi := range f.AnalyzeBranches() {
			// A branch shared between two functions (shared tail) keeps the
			// more conservative of the two analyses.
			if old, ok := hints[bi.PC]; ok {
				if old.ReconvPC == 0 {
					continue
				}
				if bi.ReconvPC == 0 {
					hints[bi.PC] = isa.BranchHint{ReconvPC: 0, WriteSet: cfg.AllRegsMask}
					continue
				}
				// Both real but different: fall back to conservative.
				if old.ReconvPC != bi.ReconvPC {
					hints[bi.PC] = isa.BranchHint{ReconvPC: 0, WriteSet: cfg.AllRegsMask}
					continue
				}
				hints[bi.PC] = isa.BranchHint{ReconvPC: old.ReconvPC, WriteSet: old.WriteSet.Union(bi.WriteSet)}
				continue
			}
			hints[bi.PC] = isa.BranchHint{ReconvPC: bi.ReconvPC, WriteSet: bi.WriteSet}
		}
	}
	// Branches in unreachable code (not in any function) get conservative
	// hints so the table is total over branch PCs.
	for i, in := range prog.Text {
		if in.Op.IsBranch() {
			pc := prog.PCOf(i)
			if _, ok := hints[pc]; !ok {
				hints[pc] = isa.BranchHint{ReconvPC: 0, WriteSet: cfg.AllRegsMask}
			}
		}
	}
	prog.Hints = hints
	for _, h := range hints {
		st.Branches++
		if h.ReconvPC == 0 {
			st.Conservative++
		} else {
			st.Annotated++
			st.WriteRegs += h.WriteSet.Count()
		}
	}
	// Region sizes are a per-function analysis detail; recompute totals from
	// the per-function results for reporting.
	for _, f := range g.Functions() {
		for _, bi := range f.AnalyzeBranches() {
			if bi.ReconvPC != 0 {
				st.RegionBlocks += len(bi.Region)
			}
		}
	}
	st.TableBytes = len(hints) * 20 // pc u64 + reconv u64 + writeset u32
	if err := prog.Validate(); err != nil {
		return st, fmt.Errorf("core: annotated program invalid: %w", err)
	}
	return st, nil
}
