package core

import (
	"testing"

	"levioso/internal/asm"
	"levioso/internal/isa"
)

func TestAnnotateDiamond(t *testing.T) {
	p := asm.MustAssemble("t.s", `
main:
	beq a0, zero, else_
	addi t0, t0, 1
	j join
else_:
	addi t1, t1, 2
join:
	halt zero
`)
	st, err := Annotate(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 1 || st.Annotated != 1 || st.Conservative != 0 {
		t.Errorf("stats = %+v", st)
	}
	h, ok := p.Hints[p.Symbols["main"]]
	if !ok {
		t.Fatal("no hint for the branch")
	}
	if h.ReconvPC != p.Symbols["join"] {
		t.Errorf("reconv = %#x, want join", h.ReconvPC)
	}
	want := isa.RegMask(0).Set(isa.RegT0).Set(isa.RegT1)
	if h.WriteSet != want {
		t.Errorf("writeset = %s, want %s", h.WriteSet, want)
	}
	if st.AvgRegionBlocks() <= 0 || st.AvgWriteRegs() != 2 {
		t.Errorf("avg region %f, avg writes %f", st.AvgRegionBlocks(), st.AvgWriteRegs())
	}
}

func TestAnnotateIsTotalOverBranches(t *testing.T) {
	// Unreachable branch (after halt, not a call target) still gets a hint.
	p := asm.MustAssemble("t.s", `
main:
	halt zero
dead:
	beq a0, zero, dead2
dead2:
	halt zero
`)
	if _, err := Annotate(p); err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Text {
		if in.Op.IsBranch() {
			if _, ok := p.Hints[p.PCOf(i)]; !ok {
				t.Errorf("branch at %#x has no hint", p.PCOf(i))
			}
		}
	}
}

func TestMaskOps(t *testing.T) {
	var m Mask
	m = m.With(0).With(63).With(5)
	if !m.Has(0) || !m.Has(63) || !m.Has(5) || m.Has(4) {
		t.Errorf("mask membership wrong: %b", m)
	}
	if m.Count() != 3 {
		t.Errorf("count = %d", m.Count())
	}
	m = m.Without(5)
	if m.Has(5) || m.Count() != 2 {
		t.Errorf("without failed: %b", m)
	}
}

func branchProg(t *testing.T) *isa.Program {
	t.Helper()
	p := asm.MustAssemble("t.s", `
main:
	beq a0, zero, join
	addi t0, t0, 1
join:
	beq a1, zero, join2
	addi t1, t1, 1
join2:
	halt zero
`)
	if _, err := Annotate(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBranchTableRegionLifecycle(t *testing.T) {
	p := branchProg(t)
	bt := NewBranchTable(p)
	b1pc := p.Symbols["main"]
	joinPC := p.Symbols["join"]

	bt.CloseRegions(b1pc)
	if bt.OpenMask() != 0 {
		t.Fatal("open mask nonzero before any branch")
	}
	s1, ok := bt.Alloc(1, b1pc)
	if !ok {
		t.Fatal("alloc failed")
	}
	if !bt.OpenMask().Has(s1) || !bt.Unresolved().Has(s1) {
		t.Error("slot not open/unresolved after alloc")
	}

	// Next instruction (inside region): region still open.
	bt.CloseRegions(b1pc + isa.InstBytes)
	if !bt.OpenMask().Has(s1) {
		t.Error("region closed too early")
	}

	// Reconvergence point: region closes, branch still unresolved.
	bt.CloseRegions(joinPC)
	if bt.OpenMask().Has(s1) {
		t.Error("region open past reconvergence")
	}
	if !bt.Unresolved().Has(s1) {
		t.Error("branch resolved by region close")
	}

	bt.Resolve(s1)
	if bt.Unresolved() != 0 || bt.InFlight() != 0 {
		t.Error("resolve did not free slot")
	}
}

func TestBranchTableUnannotatedStaysOpen(t *testing.T) {
	p := branchProg(t)
	// Remove annotations: regions never close.
	p.Hints = map[uint64]isa.BranchHint{}
	bt := NewBranchTable(p)
	s, _ := bt.Alloc(1, p.Symbols["main"])
	for pc := p.Symbols["main"]; pc < p.TextEnd(); pc += isa.InstBytes {
		bt.CloseRegions(pc)
	}
	if !bt.OpenMask().Has(s) {
		t.Error("unannotated branch region closed")
	}
}

func TestBranchTableSquashRestoresRegions(t *testing.T) {
	p := branchProg(t)
	bt := NewBranchTable(p)
	b1pc := p.Symbols["main"]
	joinPC := p.Symbols["join"]

	s1, _ := bt.Alloc(1, b1pc) // B1, region open
	// B2 renamed while B1's region open (B2 is at joinPC... use seq 2 at join:
	// first close regions at join — B1 closes — then realloc. To exercise the
	// snapshot we allocate B2 *before* reaching B1's reconvergence.)
	s2, _ := bt.Alloc(2, b1pc+isa.InstBytes) // pretend branch inside region
	if bt.OpenMask() != Mask(0).With(s1).With(s2) {
		t.Fatalf("open = %b", bt.OpenMask())
	}
	// Wrong-path fetch reaches B1's reconvergence: B1 closes.
	bt.CloseRegions(joinPC)
	if bt.OpenMask().Has(s1) {
		t.Fatal("B1 should be closed")
	}
	// B2 mispredicted: squash younger than seq 2, restore regions as of B2's
	// rename — B1 must be open again.
	bt.Squash(2, s2)
	if !bt.OpenMask().Has(s1) {
		t.Error("squash did not restore B1's open region")
	}
	if !bt.OpenMask().Has(s2) {
		t.Error("mispredicted branch's own region not restored")
	}
	bt.Resolve(s2)
	if bt.OpenMask().Has(s2) {
		t.Error("resolve left region open")
	}
}

func TestBranchTableSquashDoesNotReopenResolved(t *testing.T) {
	p := branchProg(t)
	bt := NewBranchTable(p)
	s1, _ := bt.Alloc(1, p.Symbols["main"])
	s2, _ := bt.Alloc(2, p.Symbols["join"])
	// B1 resolves while B2 in flight.
	bt.Resolve(s1)
	// B2 mispredicts: B1 must not reopen.
	bt.Squash(2, s2)
	if bt.OpenMask().Has(s1) {
		t.Error("resolved branch region reopened by squash")
	}
}

func TestBranchTableExhaustion(t *testing.T) {
	p := branchProg(t)
	bt := NewBranchTable(p)
	for i := 0; i < NumSlots; i++ {
		if _, ok := bt.Alloc(uint64(i+1), p.Symbols["main"]); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if _, ok := bt.Alloc(999, p.Symbols["main"]); ok {
		t.Error("alloc succeeded on full table")
	}
	if bt.AllocFailures != 1 {
		t.Errorf("AllocFailures = %d", bt.AllocFailures)
	}
	// Squash everything younger than 1 frees 63 slots.
	bt.Squash(1, 0)
	if got := bt.InFlight(); got != 1 {
		t.Errorf("in flight after squash = %d, want 1", got)
	}
	bt.SquashAll()
	if bt.InFlight() != 0 || bt.Unresolved() != 0 {
		t.Error("SquashAll left state")
	}
}

func TestDepState(t *testing.T) {
	d := NewDepState(8)
	d.Set(3, Mask(0).With(1).With(7))
	d.Set(4, Mask(0).With(1))
	d.ClearSlot(1)
	if d.Get(3) != Mask(0).With(7) {
		t.Errorf("reg3 = %b", d.Get(3))
	}
	if d.Get(4) != 0 {
		t.Errorf("reg4 = %b", d.Get(4))
	}
	d.Reset()
	if d.Get(3) != 0 {
		t.Error("reset failed")
	}
}

func TestAnnotateSharedTailConservativeMerge(t *testing.T) {
	// Two functions share a tail block containing a branch; the two analyses
	// may disagree, and the merge must stay sound (here they agree, so the
	// hint should be real).
	p := asm.MustAssemble("t.s", `
main:
	call f
	call g
	halt zero
f:
	addi a0, a0, 1
	j shared
g:
	addi a0, a0, 2
shared:
	beq a0, zero, sj
	addi t0, t0, 1
sj:
	ret
`)
	st, err := Annotate(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 1 {
		t.Fatalf("branches = %d", st.Branches)
	}
	h := p.Hints[p.Symbols["shared"]]
	if h.ReconvPC != p.Symbols["sj"] {
		t.Errorf("shared-tail reconv = %#x, want sj", h.ReconvPC)
	}
}
