package core

import (
	"math/bits"

	"levioso/internal/isa"
)

// NumSlots is the capacity of the Branch Dependency Table: the maximum number
// of in-flight (unresolved) conditional branches tracked precisely. The
// rename stage stalls when all slots are busy, which the paper's design sizes
// to be rare (a 192-entry ROB almost never holds 64 unresolved branches).
const NumSlots = 64

// Mask is a bitset over Branch Dependency Table slots. An instruction's
// dependency mask names the in-flight branches it must wait for (under a
// given policy) before it may expose its execution to the memory system.
type Mask uint64

// Has reports whether slot s is in the mask.
func (m Mask) Has(s int) bool { return m&(1<<uint(s)) != 0 }

// With returns m with slot s added.
func (m Mask) With(s int) Mask { return m | 1<<uint(s) }

// Without returns m with slot s removed.
func (m Mask) Without(s int) Mask { return m &^ (1 << uint(s)) }

// Count returns the number of slots in the mask.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// slot holds per-in-flight-branch state.
type slot struct {
	busy     bool
	seq      uint64 // global sequence number of the branch instruction
	pc       uint64
	reconvPC uint64 // 0: no annotation, region never closes
	writeSet isa.RegMask
	open     bool // control region still open at the rename point
	// openSnap is the table's open-mask as of this branch's rename,
	// used to restore region state on misprediction recovery.
	openSnap Mask
}

// BranchTable is the Levioso Branch Dependency Table. The rename stage
// drives it in program order (speculatively — wrong-path instructions pass
// through it too and their effects are undone by Squash):
//
//  1. For every instruction, CloseRegions(pc) first closes the control
//     region of any open branch whose annotated reconvergence point is pc.
//  2. OpenMask() then gives the set of branches the instruction is
//     control-dependent on.
//  3. Conditional branches additionally call Alloc to claim a slot.
//
// Resolution and recovery: Resolve frees a slot when its branch executes
// correctly; Squash(seq) frees every slot younger than seq and restores the
// open-region state captured when the surviving branch was renamed.
type BranchTable struct {
	prog       *isa.Program
	slots      [NumSlots]slot
	unresolved Mask
	open       Mask
	// live mirrors the busy bits of slots, maintained incrementally so the
	// rename-path capacity check (InFlight) and slot allocation never scan
	// the table.
	live Mask
	// AllocFailures counts rename stalls due to a full table (experiment F2
	// reports how often the capacity fallback engages).
	AllocFailures uint64
}

// NewBranchTable returns a table that reads annotations from prog.
func NewBranchTable(prog *isa.Program) *BranchTable {
	return &BranchTable{prog: prog}
}

// Reset clears all state.
func (t *BranchTable) Reset() {
	*t = BranchTable{prog: t.prog}
}

// CloseRegions must be called once per instruction, in rename order, with the
// instruction's PC before any other query for that instruction. Reaching a
// branch's reconvergence point proves control independence for everything
// younger, so the branch's region closes.
func (t *BranchTable) CloseRegions(pc uint64) {
	if t.open == 0 {
		return
	}
	for m := t.open; m != 0; {
		s := bits.TrailingZeros64(uint64(m))
		m = m.Without(s)
		if t.slots[s].reconvPC != 0 && t.slots[s].reconvPC == pc {
			t.slots[s].open = false
			t.open = t.open.Without(s)
		}
	}
}

// OpenMask returns the set of branches whose control regions are open at the
// current rename point: the control-dependency mask for the next instruction.
func (t *BranchTable) OpenMask() Mask { return t.open }

// UnresolvedMask returns the set of allocated, unresolved branches. This is
// the conservative "all older branches" mask used by the fence/delay/taint
// baseline policies.
func (t *BranchTable) Unresolved() Mask { return t.unresolved }

// Alloc claims a slot for a conditional branch with global sequence number
// seq at pc. It returns the slot index, or ok=false when the table is full
// (the caller must stall rename). The annotation is looked up in the program
// image; unannotated branches get a never-closing region.
func (t *BranchTable) Alloc(seq, pc uint64) (int, bool) {
	return t.AllocHinted(seq, pc, t.prog.Hints[pc]) // zero value = conservative
}

// AllocHinted is Alloc with the branch's annotation already resolved — the
// cpu's decoded-metadata cache prefetches hints at program load, so the
// per-dynamic-branch map lookup disappears from the rename path.
func (t *BranchTable) AllocHinted(seq, pc uint64, h isa.BranchHint) (int, bool) {
	free := ^t.live
	if free == 0 {
		t.AllocFailures++
		return 0, false
	}
	s := bits.TrailingZeros64(uint64(free))
	t.slots[s] = slot{
		busy:     true,
		seq:      seq,
		pc:       pc,
		reconvPC: h.ReconvPC,
		writeSet: h.WriteSet,
		open:     true,
		openSnap: t.open,
	}
	t.unresolved = t.unresolved.With(s)
	t.open = t.open.With(s)
	t.live = t.live.With(s)
	return s, true
}

// Resolve marks the branch in slot s resolved and frees the slot. The caller
// clears the slot's bit from any dependency masks it holds (the CPU walks the
// window; policies walk their register tables).
func (t *BranchTable) Resolve(s int) {
	if !t.slots[s].busy {
		return
	}
	t.slots[s] = slot{}
	t.unresolved = t.unresolved.Without(s)
	t.open = t.open.Without(s)
	t.live = t.live.Without(s)
}

// Squash frees every slot belonging to a branch younger than seq (exclusive)
// and restores the open-region state to what it was when the branch with
// sequence number seq was renamed: openSnap masked by the branches still
// unresolved (a region must not reopen for a branch that resolved while the
// squashing branch was in flight).
//
// Pass the sequence number and slot of the mispredicted branch; its own
// region state is also restored (its region reopens conceptually, but the
// branch is resolved immediately after, so the caller follows with Resolve).
func (t *BranchTable) Squash(seq uint64, slotIdx int) {
	for m := t.live; m != 0; {
		i := bits.TrailingZeros64(uint64(m))
		m = m.Without(i)
		if t.slots[i].seq > seq {
			t.slots[i] = slot{}
			t.unresolved = t.unresolved.Without(i)
			t.open = t.open.Without(i)
			t.live = t.live.Without(i)
		}
	}
	if t.slots[slotIdx].busy && t.slots[slotIdx].seq == seq {
		// Open regions as of the mispredicted branch's rename, restricted to
		// branches still in flight, plus the branch itself (resolved next).
		t.open = (t.slots[slotIdx].openSnap & t.unresolved).With(slotIdx)
	}
}

// SquashAll frees every slot (full pipeline flush).
func (t *BranchTable) SquashAll() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	t.unresolved = 0
	t.open = 0
	t.live = 0
}

// WriteSet returns the annotated region write set of the branch in slot s.
func (t *BranchTable) WriteSet(s int) isa.RegMask { return t.slots[s].writeSet }

// SlotSeq returns the sequence number of the branch in slot s (0 if free).
func (t *BranchTable) SlotSeq(s int) uint64 { return t.slots[s].seq }

// InFlight returns the number of busy slots.
func (t *BranchTable) InFlight() int { return t.live.Count() }
