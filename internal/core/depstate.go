package core

// DepState is the per-physical-register dependency-mask file used by
// tracking policies (Levioso and the taint baseline): for each physical
// register it records the set of in-flight branches the register's value may
// depend on. Rename-stage propagation:
//
//	mask(dst) = controlMask(inst) | mask(src1) | mask(src2) | extra
//
// where controlMask is policy-specific (Levioso: open regions; taint: zero
// for register ops) and extra covers value taint sources (taint policy:
// all unresolved branches for speculatively executed loads).
type DepState struct {
	reg []Mask
	// dirty lists the registers holding a nonzero mask, so the per-resolve
	// column clear touches only those instead of sweeping the whole file.
	// A register stays listed (isDirty) until a clear observes it zero.
	dirty   []int32
	isDirty []bool
}

// NewDepState returns a mask file for nPhys physical registers.
func NewDepState(nPhys int) *DepState {
	return &DepState{
		reg:     make([]Mask, nPhys),
		dirty:   make([]int32, 0, nPhys),
		isDirty: make([]bool, nPhys),
	}
}

// Get returns the mask of physical register p.
func (d *DepState) Get(p int) Mask { return d.reg[p] }

// Set records the mask of physical register p.
func (d *DepState) Set(p int, m Mask) {
	d.reg[p] = m
	if m != 0 && !d.isDirty[p] {
		d.isDirty[p] = true
		d.dirty = append(d.dirty, int32(p))
	}
}

// ClearSlot removes a resolved branch's bit from every register mask.
// Hardware implements this as a column clear across the mask file; here only
// the registers with any dependency at all are touched, and ones that drop
// to zero leave the dirty list.
func (d *DepState) ClearSlot(s int) {
	bit := Mask(1) << uint(s)
	out := d.dirty[:0]
	for _, p := range d.dirty {
		m := d.reg[p] &^ bit
		d.reg[p] = m
		if m == 0 {
			d.isDirty[p] = false
			continue
		}
		out = append(out, p)
	}
	d.dirty = out
}

// Reset zeroes all masks. Every nonzero entry is on the dirty list (Set adds
// registers on the zero→nonzero edge and only ClearSlot delists them), so
// sweeping the list clears the whole file.
func (d *DepState) Reset() {
	for _, p := range d.dirty {
		d.reg[p] = 0
		d.isDirty[p] = false
	}
	d.dirty = d.dirty[:0]
}
