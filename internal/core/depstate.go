package core

// DepState is the per-physical-register dependency-mask file used by
// tracking policies (Levioso and the taint baseline): for each physical
// register it records the set of in-flight branches the register's value may
// depend on. Rename-stage propagation:
//
//	mask(dst) = controlMask(inst) | mask(src1) | mask(src2) | extra
//
// where controlMask is policy-specific (Levioso: open regions; taint: zero
// for register ops) and extra covers value taint sources (taint policy:
// all unresolved branches for speculatively executed loads).
type DepState struct {
	reg []Mask
}

// NewDepState returns a mask file for nPhys physical registers.
func NewDepState(nPhys int) *DepState {
	return &DepState{reg: make([]Mask, nPhys)}
}

// Get returns the mask of physical register p.
func (d *DepState) Get(p int) Mask { return d.reg[p] }

// Set records the mask of physical register p.
func (d *DepState) Set(p int, m Mask) { d.reg[p] = m }

// ClearSlot removes a resolved branch's bit from every register mask.
// Hardware implements this as a column clear across the mask file.
func (d *DepState) ClearSlot(s int) {
	bit := Mask(1) << uint(s)
	for i := range d.reg {
		d.reg[i] &^= bit
	}
}

// Reset zeroes all masks.
func (d *DepState) Reset() {
	for i := range d.reg {
		d.reg[i] = 0
	}
}
