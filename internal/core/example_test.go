package core_test

import (
	"fmt"

	"levioso/internal/asm"
	"levioso/internal/core"
)

// Annotate computes, for every conditional branch, its reconvergence point
// and the registers its control-dependent region may write — the information
// Levioso hardware uses to restrict only truly-dependent transmitters.
func ExampleAnnotate() {
	prog := asm.MustAssemble("example.s", `
main:
	beq a0, zero, else_
	addi t0, t0, 1
	j join
else_:
	addi t1, t1, 2
join:
	halt zero
`)
	stats, err := core.Annotate(prog)
	if err != nil {
		panic(err)
	}
	h := prog.Hints[prog.Symbols["main"]]
	fmt.Printf("branches annotated: %d\n", stats.Annotated)
	fmt.Printf("reconvergence at join: %v\n", h.ReconvPC == prog.Symbols["join"])
	fmt.Printf("region writes: %s\n", h.WriteSet)
	// Output:
	// branches annotated: 1
	// reconvergence at join: true
	// region writes: {t0,t1}
}

// The Branch Dependency Table is the hardware half: regions open when a
// branch is renamed and close when fetch reaches the annotated reconvergence
// point — long before the branch itself resolves.
func ExampleBranchTable() {
	prog := asm.MustAssemble("example.s", `
main:
	beq a0, zero, join
	addi t0, t0, 1
join:
	halt zero
`)
	if _, err := core.Annotate(prog); err != nil {
		panic(err)
	}
	bt := core.NewBranchTable(prog)
	slot, _ := bt.Alloc(1, prog.Symbols["main"])
	fmt.Printf("after branch: region open = %v\n", bt.OpenMask().Has(slot))
	bt.CloseRegions(prog.Symbols["join"]) // fetch reached reconvergence
	fmt.Printf("at reconvergence: region open = %v, branch resolved = %v\n",
		bt.OpenMask().Has(slot), !bt.Unresolved().Has(slot))
	// Output:
	// after branch: region open = true
	// at reconvergence: region open = false, branch resolved = false
}
