// Package prof wires the standard runtime profiles into the command-line
// tools. Both levsim and levbench register -cpuprofile/-memprofile through
// it, so hot-loop work on the simulator can be measured on exactly the
// workload that motivated it instead of a synthetic benchmark.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered on a flag set.
type Flags struct {
	cpuPath *string
	memPath *string
	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to fs. Call Start after the flag
// set is parsed and Stop before the process exits (the tools funnel their
// exits through one point so the profiles are flushed even on failure).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpuPath: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memPath: fs.String("memprofile", "", "write an allocation profile to this file at exit"),
	}
}

// Start begins CPU profiling if requested.
func (p *Flags) Start() error {
	if *p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(*p.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop flushes the CPU profile and writes the allocation profile. Safe to
// call when no profile was requested, and idempotent.
func (p *Flags) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if *p.memPath != "" {
		f, err := os.Create(*p.memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // settle live-heap numbers before the snapshot
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
		*p.memPath = "" // idempotence
	}
}
