package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/dispatch"
	"levioso/internal/engine"
	"levioso/internal/simerr"
)

// BatchRequest is the JSON body of POST /v1/batch: many simulate cells in
// one request. Each cell accepts the SimRequest fields (except ref, which
// has no batch path). The whole batch is admitted or shed atomically — a
// batch never loses half its cells to admission control partway through.
type BatchRequest struct {
	Cells []SimRequest `json:"cells"`
}

// BatchCellResult is one NDJSON line of the /v1/batch response stream,
// emitted in completion order as cells finish. Index identifies the cell in
// the request's cells array; exactly one of the result fields or Error is
// meaningful.
type BatchCellResult struct {
	Index     int        `json:"index"`
	Exit      uint64     `json:"exit,omitempty"`
	Output    string     `json:"output,omitempty"`
	Stats     *cpu.Stats `json:"stats,omitempty"`
	Cached    bool       `json:"cached,omitempty"`
	Error     *ErrorBody `json:"error,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms"`
}

// BatchTrailer is the final NDJSON line: the batch-level summary. Its
// "done" key is how clients distinguish it from cell lines (and detect a
// truncated stream when it never arrives).
type BatchTrailer struct {
	Done          bool  `json:"done"`
	SchemaVersion int   `json:"schema_version"`
	Completed     int   `json:"completed"`
	Failed        int   `json:"failed"`
	ElapsedMS     int64 `json:"elapsed_ms"`
}

// handleBatch runs POST /v1/batch: decode strictly, admit the whole batch
// (or shed with Retry-After), fan the cells out through the dispatch
// coordinator, and stream one NDJSON line per cell as it completes, trailer
// last. A client that disconnects keeps every line already streamed —
// partial results are the contract, not an error — and its departure
// cancels the remaining cells.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()
	if r.ContentLength >= 0 {
		s.mBodyBytes.Observe(float64(r.ContentLength))
	}

	var br BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&br); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				simerr.New(simerr.KindBuild, "serve: request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest,
			simerr.New(simerr.KindBuild, "serve: bad batch body: %v", err))
		return
	}
	n := len(br.Cells)
	if n == 0 {
		writeError(w, http.StatusBadRequest,
			simerr.New(simerr.KindBuild, "serve: batch has no cells"))
		return
	}
	if n > s.cfg.MaxBatchCells {
		writeError(w, http.StatusBadRequest,
			simerr.New(simerr.KindBuild, "serve: batch of %d cells exceeds the %d-cell limit", n, s.cfg.MaxBatchCells))
		return
	}

	// Whole-batch admission: shed now, with backpressure hints, or own
	// capacity for every cell until the stream ends.
	if err := s.dispatch.Admit(n); err != nil {
		s.rejected.Add(1)
		s.mRejected.Inc()
		s.writeUnavailable(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.dispatch.Release(n)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Fan out. The channel is buffered to the batch size so cell goroutines
	// can always deliver and exit, even if the client hangs up and the
	// writer loop below stops consuming.
	lines := make(chan BatchCellResult, n)
	var wg sync.WaitGroup
	for i, cell := range br.Cells {
		wg.Add(1)
		go func(i int, cell SimRequest) {
			defer wg.Done()
			lines <- s.runBatchCell(r, i, cell)
		}(i, cell)
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	enc := json.NewEncoder(w)
	completed, failed := 0, 0
	clientGone := false
	for line := range lines {
		if line.Error != nil {
			failed++
			s.failures.Add(1)
		} else {
			completed++
		}
		if clientGone {
			continue // keep draining so the counters stay truthful
		}
		if err := enc.Encode(line); err != nil {
			// The client hung up mid-stream: everything already flushed is
			// theirs to keep. Returning from the handler cancels
			// r.Context(), which reels the remaining cells in fast; the
			// buffered channel lets their goroutines finish regardless.
			clientGone = true
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !clientGone {
		enc.Encode(BatchTrailer{
			Done:          true,
			SchemaVersion: SchemaVersion,
			Completed:     completed,
			Failed:        failed,
			ElapsedMS:     time.Since(start).Milliseconds(),
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runBatchCell resolves and executes one batch cell, rendering its stream
// line. Build failures (bad source, unknown policy, ref requests) are
// per-cell errors — one broken cell never takes the batch down.
func (s *Server) runBatchCell(r *http.Request, index int, sr SimRequest) BatchCellResult {
	start := time.Now()
	fail := func(err error) BatchCellResult {
		return BatchCellResult{
			Index: index,
			Error: &ErrorBody{
				Kind:      simerr.KindOf(err).String(),
				Message:   err.Error(),
				Retryable: simerr.Transient(err),
			},
			ElapsedMS: time.Since(start).Milliseconds(),
		}
	}
	if sr.Ref {
		return fail(simerr.New(simerr.KindBuild, "serve: batch cells cannot request the reference model"))
	}
	req, err := sr.engineRequest()
	if err != nil {
		return fail(err)
	}
	prog, _, err := engine.Resolve(r.Context(), &req)
	if err != nil {
		return fail(err)
	}

	ov := req.Overrides
	if sr.DeadlineMS > 0 {
		ov.Deadline = time.Duration(sr.DeadlineMS) * time.Millisecond
	} else if s.cfg.DefaultDeadline > 0 {
		ov.Deadline = s.cfg.DefaultDeadline
	}
	res, err := s.dispatch.ExecuteAdmitted(r.Context(), &dispatch.Cell{
		Name:      req.Name,
		Program:   prog,
		Overrides: ov,
		Verify:    req.Verify,
	})
	if err != nil {
		return fail(err)
	}
	stats := res.Stats
	return BatchCellResult{
		Index:     index,
		Exit:      res.ExitCode,
		Output:    res.Output,
		Stats:     &stats,
		Cached:    res.Cached,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
}
