// Package serve implements levserve, the HTTP/JSON simulation daemon over
// internal/engine. One Server owns a bounded worker pool (at most Workers
// simulations in flight, the same semaphore pattern as the sweep
// supervisor), per-request wall-clock deadlines, and an LRU result cache
// keyed by (program hash, policy, config digest) — the simulator is
// deterministic, so repeated sweep cells are served without re-simulating.
// Request contexts are threaded into the engine end to end: a client that
// disconnects cancels its in-flight simulation and frees the worker slot.
//
// Endpoints:
//
//	POST /v1/simulate  — run one request (JSON body, see SimRequest)
//	POST /v1/batch     — run many cells, streamed back as NDJSON (BatchRequest)
//	GET  /v1/policies  — list secure-speculation policies
//	GET  /v1/workloads — list the embedded benchmark suite
//	GET  /v1/stats     — server counters (requests, cache hits, in-flight)
//	GET  /v1/version   — wire-schema version plus build information
//	GET  /metrics      — Prometheus text exposition (internal/obs registry)
//	GET  /healthz      — liveness
//	GET  /debug/pprof/ — optional profiling (Config.EnablePprof)
//
// # Wire protocol versioning
//
// Every successful JSON reply carries "schema_version" (the SchemaVersion
// constant); clients pin on it instead of sniffing field shapes. Unknown
// top-level fields in a SimRequest are rejected with 400 — a misspelled
// option fails loudly instead of being silently ignored.
//
// # Error envelope
//
// Every error response — 400 (malformed request), 413 (body too large),
// 422 (simulation failed), 503 (gave up queueing for a worker), 504
// (deadline expired) — shares one JSON shape:
//
//	{"error": {"kind": "deadline", "message": "...", "retryable": true}}
//
// kind is the typed simerr failure class (build, deadline, divergence,
// watchdog, cycle-limit, inst-limit, panic, mem-fault, unknown) and
// retryable mirrors simerr.Transient, so sweep clients classify failures
// exactly the way the in-process supervisor does. The kind is also echoed
// in the X-Error-Kind response header.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"levioso/internal/cli"
	"levioso/internal/cpu"
	"levioso/internal/dispatch"
	"levioso/internal/engine"
	"levioso/internal/obs"
	"levioso/internal/secure"
	"levioso/internal/simerr"
	"levioso/internal/workloads"
)

// SchemaVersion is the wire-protocol generation. It bumps when a JSON
// response shape changes incompatibly; additive optional fields do not bump
// it. Carried in every successful response as "schema_version".
//
// v2: GET /v1/policies returns full self-describing descriptors (objects)
// under "policies" instead of a bare name list; POST /v1/simulate accepts
// "params" for parameterized policies.
//
// v3: coverage-guided fuzz campaigns — POST /v1/fuzz, GET /v1/fuzz/{id},
// GET /v1/fuzz/{id}/findings — and GET /v1/version now enumerates the
// mounted routes under "routes".
const SchemaVersion = 3

// Config tunes a Server. The zero value picks sane defaults.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// CacheEntries is the LRU result-cache capacity (default 256;
	// negative disables caching).
	CacheEntries int
	// DefaultDeadline bounds requests that do not set deadline_ms
	// (default 60s; negative means no default bound).
	DefaultDeadline time.Duration
	// MaxBody caps the request body size in bytes (default 8 MiB).
	MaxBody int64
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (see accessRecord). Lines are mutex-serialized.
	AccessLog io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints on a public daemon are opt-in).
	EnablePprof bool

	// FuzzDir is the base directory for /v1/fuzz campaign state
	// (default: "levserve-fuzz" under the OS temp directory). Each campaign
	// id gets a subdirectory holding its crash-safe state file and repros.
	FuzzDir string

	// Dispatch, when non-nil, configures the batch-execution coordinator
	// (worker count, spawner, retry/breaker tuning — see dispatch.Config).
	// Nil gets in-process workers sized like the simulate pool. The
	// coordinator's metrics always land in this server's registry.
	Dispatch *dispatch.Config
	// MaxBatchCells caps cells per /v1/batch request (default 1024).
	MaxBatchCells int

	// Remote, when non-empty, dispatches batch cells to worker daemons at
	// these TCP addresses (levserve -worker-listen) instead of local
	// workers; Dispatch.Spawn, if also set, is overridden. Worker count
	// defaults to len(Remote) so each peer gets one connection.
	Remote []string
	// RemoteConfig tunes the TCP transport lifecycle (dial timeout, redial
	// backoff, heartbeat timeout, fault-injection conn wrapper). Its
	// Registry is replaced by this server's.
	RemoteConfig dispatch.RemoteConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = time.Minute
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.MaxBatchCells <= 0 {
		c.MaxBatchCells = 1024
	}
	return c
}

// Server is the levserve HTTP handler plus its worker pool, result cache,
// and metrics registry.
type Server struct {
	cfg      Config
	sem      chan struct{}
	cache    *resultCache
	mux      *http.ServeMux
	reg      *obs.Registry
	dispatch *dispatch.Coordinator
	fleet    *dispatch.RemoteFleet // non-nil when cfg.Remote is set

	// fuzz campaign lifecycle: id -> run, plus the context every campaign
	// goroutine runs under (Close cancels it).
	fuzzMu     sync.Mutex
	fuzzRuns   map[string]*campaignRun
	fuzzCtx    context.Context
	fuzzCancel context.CancelFunc

	accessLog io.Writer
	logMu     sync.Mutex
	idBase    string
	idSeq     atomic.Uint64

	requests atomic.Uint64
	failures atomic.Uint64
	rejected atomic.Uint64
	inFlight atomic.Int64

	// sim-path metrics, resolved once at construction (the hot path only
	// touches atomics, never the registry's family map).
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	mRejected    *obs.Counter
	mSimInflight *obs.Gauge
	mBodyBytes   *obs.Histogram
}

// New builds a server with the given configuration. Each server owns its
// own obs.Registry (served at GET /metrics), so tests and multi-tenant
// embeddings never share series. The error is the batch coordinator's: with
// the default in-process workers it cannot fail, but a Dispatch
// configuration spawning subprocess workers can. Close releases the
// coordinator's workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.Workers),
		cache:     newResultCache(cfg.CacheEntries),
		mux:       http.NewServeMux(),
		reg:       reg,
		accessLog: cfg.AccessLog,
		idBase:    fmt.Sprintf("%08x", uint32(time.Now().UnixNano())),

		mCacheHits:   reg.Counter("levserve_cache_hits_total", "simulate requests served from the result cache"),
		mCacheMisses: reg.Counter("levserve_cache_misses_total", "cacheable simulate requests that missed the result cache"),
		mRejected:    reg.Counter("levserve_rejected_total", "requests that gave up while queueing for a worker slot"),
		mSimInflight: reg.Gauge("levserve_sim_inflight", "simulations currently occupying a worker slot"),
		mBodyBytes:   reg.Histogram("levserve_request_body_bytes", "declared simulate request body sizes in bytes", obs.SizeBuckets()),
	}
	s.fuzzRuns = make(map[string]*campaignRun)
	s.fuzzCtx, s.fuzzCancel = context.WithCancel(context.Background())
	dcfg := dispatch.Config{}
	if cfg.Dispatch != nil {
		dcfg = *cfg.Dispatch
	}
	if len(cfg.Remote) > 0 {
		rc := cfg.RemoteConfig
		rc.Registry = reg
		fleet, err := dispatch.NewRemote(rc, cfg.Remote...)
		if err != nil {
			return nil, fmt.Errorf("serve: remote worker fleet: %w", err)
		}
		s.fleet = fleet
		dcfg.Spawn = fleet.Spawner()
		if dcfg.Workers <= 0 {
			dcfg.Workers = len(cfg.Remote)
		}
	}
	if dcfg.Workers <= 0 {
		dcfg.Workers = cfg.Workers
	}
	dcfg.Registry = reg // batch-tier metrics belong to this server's /metrics
	co, err := dispatch.New(context.Background(), dcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: starting batch coordinator: %w", err)
	}
	s.dispatch = co

	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/policies", s.instrument("policies", s.handlePolicies))
	s.mux.HandleFunc("GET /v1/workloads", s.instrument("workloads", s.handleWorkloads))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	s.mux.HandleFunc("POST /v1/fuzz", s.instrument("fuzz", s.handleFuzzStart))
	s.mux.HandleFunc("GET /v1/fuzz/{id}", s.instrument("fuzz_status", s.handleFuzzStatus))
	s.mux.HandleFunc("GET /v1/fuzz/{id}/findings", s.instrument("fuzz_findings", s.handleFuzzFindings))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts down the batch coordinator and its workers, and cancels any
// running fuzz campaigns (their state files keep every committed case, so a
// later server resumes them). In-flight batch cells fail with transport
// errors; the plain simulate path is unaffected.
func (s *Server) Close() error {
	s.fuzzCancel()
	return s.dispatch.Close()
}

// Metrics returns the server's metric registry (what GET /metrics serves).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SimRequest is the JSON body of POST /v1/simulate. Exactly one program
// input — source, asm, binary (base64), or workload — must be set. Unknown
// top-level fields are rejected with 400.
type SimRequest struct {
	Name     string `json:"name,omitempty"`
	Source   string `json:"source,omitempty"`   // LevC source
	Asm      string `json:"asm,omitempty"`      // LEV64 assembly
	Binary   []byte `json:"binary,omitempty"`   // LEV64 image, base64 in JSON
	Workload string `json:"workload,omitempty"` // embedded suite name
	Size     string `json:"size,omitempty"`     // workload scale: test|ref (default test)

	NoAnnotate bool              `json:"no_annotate,omitempty"`
	Policy     string            `json:"policy,omitempty"` // spec string, default "unsafe"
	Params     map[string]string `json:"params,omitempty"` // policy parameters (merged over Policy's inline ones)
	ROB        int               `json:"rob,omitempty"`
	MaxCycles  uint64            `json:"max_cycles,omitempty"`
	Ref        bool              `json:"ref,omitempty"`
	Verify     bool              `json:"verify,omitempty"`
	DeadlineMS int64             `json:"deadline_ms,omitempty"`
}

// simRequestFields lists the accepted SimRequest keys, for the unknown-field
// rejection message. Keep in sync with the struct tags above.
const simRequestFields = "name, source, asm, binary, workload, size, no_annotate, policy, params, rob, max_cycles, ref, verify, deadline_ms"

// SimResponse is the JSON reply of POST /v1/simulate.
type SimResponse struct {
	SchemaVersion int       `json:"schema_version"`
	Exit          uint64    `json:"exit"`
	Output        string    `json:"output"`
	Ref           bool      `json:"ref,omitempty"`
	Insts         uint64    `json:"insts,omitempty"`
	Stats         cpu.Stats `json:"stats"`
	Cached        bool      `json:"cached"`
	ElapsedMS     int64     `json:"elapsed_ms"`
}

// ErrorEnvelope is the JSON shape of every error response (see the package
// comment). The envelope nests under "error" so a client can distinguish a
// failure reply from a result with one key test.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries the typed failure classification. QueueDepth appears on
// load-related rejections (503/504) so a backing-off client can see how far
// behind the server is, alongside the Retry-After header.
type ErrorBody struct {
	Kind       string `json:"kind"`      // simerr kind: build, deadline, ...
	Message    string `json:"message"`   // human-readable cause
	Retryable  bool   `json:"retryable"` // mirrors simerr.Transient
	QueueDepth int64  `json:"queue_depth,omitempty"`
}

// ServerStats is the JSON reply of GET /v1/stats.
type ServerStats struct {
	SchemaVersion  int    `json:"schema_version"`
	Requests       uint64 `json:"requests"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	Failures       uint64 `json:"failures"`
	Rejected       uint64 `json:"rejected"`
	InFlight       int64  `json:"in_flight"`
	Workers        int    `json:"workers"`
	CacheEntries   int    `json:"cache_entries"`
	// Dispatch is the batch tier: worker fleet health, retry/breaker/shed
	// counters, and the shared batch result cache.
	Dispatch dispatch.Stats `json:"dispatch"`
	// RemotePeers reports per-peer connection state (address, live
	// connections, reconnects, partitions, heartbeat age) when the batch
	// tier dispatches to remote TCP workers.
	RemotePeers []dispatch.PeerStats `json:"remote_peers,omitempty"`
}

// VersionInfo is the JSON reply of GET /v1/version.
type VersionInfo struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	Routes        []string `json:"routes"` // mounted method+path patterns
	Module        string   `json:"module,omitempty"`
	Revision      string   `json:"vcs_revision,omitempty"`
	BuildTime     string   `json:"vcs_time,omitempty"`
	Modified      bool     `json:"vcs_modified,omitempty"`
}

// apiRoutes enumerates the wire API for /v1/version, so clients discover
// capabilities (is /v1/fuzz mounted?) instead of probing with 404s. Keep in
// sync with the registrations in New.
func apiRoutes() []string {
	return []string{
		"POST /v1/simulate",
		"POST /v1/batch",
		"POST /v1/fuzz",
		"GET /v1/fuzz/{id}",
		"GET /v1/fuzz/{id}/findings",
		"GET /v1/policies",
		"GET /v1/workloads",
		"GET /v1/stats",
		"GET /v1/version",
		"GET /metrics",
		"GET /healthz",
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// statusFor maps the typed failure taxonomy onto HTTP statuses: build
// problems are the client's fault, deadlines are timeouts, everything else
// is a completed-but-failed simulation.
func statusFor(err error) int {
	switch simerr.KindOf(err) {
	case simerr.KindBuild:
		return http.StatusBadRequest
	case simerr.KindDeadline:
		return http.StatusGatewayTimeout
	case simerr.KindUnknown:
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// writeError renders the unified error envelope and stamps the kind into
// the X-Error-Kind header for the middleware's error counter.
func writeError(w http.ResponseWriter, status int, err error) {
	kind := simerr.KindOf(err).String()
	w.Header().Set(errKindHeader, kind)
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Kind:      kind,
		Message:   err.Error(),
		Retryable: simerr.Transient(err),
	}})
}

// queueDepth is the server's total backlog: simulate requests in flight
// plus admitted-but-unfinished batch cells.
func (s *Server) queueDepth() int64 {
	return s.inFlight.Load() + s.dispatch.Pending()
}

// retryAfterSeconds estimates when a shed or timed-out client should come
// back: roughly one queue-drain's worth of time, clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	workers := int64(s.cfg.Workers)
	if workers < 1 {
		workers = 1
	}
	sec := 1 + s.queueDepth()/workers
	if sec > 60 {
		sec = 60
	}
	return int(sec)
}

// writeUnavailable renders load-related failures (503 shed/queue-give-up,
// 504 deadline): the envelope gains the live queue depth and the response
// carries a Retry-After so well-behaved clients back off instead of
// hammering a saturated server.
func (s *Server) writeUnavailable(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	kind := simerr.KindOf(err).String()
	w.Header().Set(errKindHeader, kind)
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Kind:       kind,
		Message:    err.Error(),
		Retryable:  simerr.Transient(err),
		QueueDepth: s.queueDepth(),
	}})
}

// writeEngineError routes a simulation failure to the right renderer:
// load-related statuses get the Retry-After treatment, everything else the
// plain envelope.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
		s.writeUnavailable(w, status, err)
		return
	}
	writeError(w, status, err)
}

// engineRequest translates the wire request into an engine request,
// resolving workload names against the embedded suite. Option validation is
// engine.Overrides.Normalize — the same bounds the command-line flags run —
// so a request rejected here is rejected identically by levsim.
func (sr *SimRequest) engineRequest() (engine.Request, error) {
	req := engine.Request{
		Name:       sr.Name,
		Source:     sr.Source,
		AsmText:    sr.Asm,
		Binary:     sr.Binary,
		NoAnnotate: sr.NoAnnotate,
		UseRef:     sr.Ref,
		Verify:     sr.Verify,
		Overrides: engine.Overrides{
			Policy:    sr.Policy,
			Params:    sr.Params,
			ROBSize:   sr.ROB,
			MaxCycles: sr.MaxCycles,
		},
	}
	if sr.DeadlineMS < 0 {
		return req, simerr.New(simerr.KindBuild, "serve: negative deadline_ms %d", sr.DeadlineMS)
	}
	if err := req.Normalize(); err != nil {
		return req, err
	}
	if sr.Workload != "" {
		if sr.Source != "" || sr.Asm != "" || len(sr.Binary) > 0 {
			return req, simerr.New(simerr.KindBuild,
				"serve: workload %q conflicts with an inline program input", sr.Workload)
		}
		w, ok := workloads.ByName(sr.Workload)
		if !ok {
			return req, simerr.New(simerr.KindBuild,
				"serve: unknown workload %q (have %v)", sr.Workload, workloads.Names())
		}
		size := workloads.SizeTest
		if sr.Size != "" {
			var err error
			if size, err = cli.ParseSize(sr.Size); err != nil {
				return req, simerr.New(simerr.KindBuild, "serve: %v", err)
			}
		}
		prog, err := w.Build(size)
		if err != nil {
			return req, err
		}
		req.Program = prog
		if req.Name == "" {
			req.Name = sr.Workload
		}
	}
	return req, nil
}

// decodeSimRequest parses the body strictly: unknown top-level fields are a
// 400 with the accepted field list, so a misspelled option ("polcy") fails
// loudly instead of silently running under the default policy.
func decodeSimRequest(body io.Reader, sr *SimRequest) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(sr); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return simerr.New(simerr.KindBuild,
				"serve: %v (accepted fields: %s)", err, simRequestFields)
		}
		return err
	}
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()
	if r.ContentLength >= 0 {
		s.mBodyBytes.Observe(float64(r.ContentLength))
	}

	var sr SimRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := decodeSimRequest(body, &sr); err != nil {
		// An oversized body (fuzz-shaped programs can be arbitrarily large)
		// is a distinct, typed condition: 413 with the build kind, so
		// clients can tell "shrink your request" from "your JSON is bad".
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				simerr.New(simerr.KindBuild, "serve: request body exceeds %d bytes", mbe.Limit))
			return
		}
		if simerr.KindOf(err) == simerr.KindUnknown {
			err = simerr.New(simerr.KindBuild, "serve: bad request body: %v", err)
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := sr.engineRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Resolve the program up front: build errors answer immediately without
	// consuming a worker slot, and the resolved image is what the cache is
	// keyed on.
	prog, _, err := engine.Resolve(r.Context(), &req)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	req.Program, req.Source, req.AsmText, req.Binary = prog, "", "", nil

	cfg := req.BuildConfig()
	key, cacheable := engine.CacheKeyObserved(r.Context(), prog, req.Policy, cfg, req.UseRef, req.Verify)
	if cacheable {
		if res, ok := s.cache.Get(key); ok {
			s.mCacheHits.Inc()
			s.writeResult(w, res, true, start)
			return
		}
		s.mCacheMisses.Inc()
	}

	// Per-request deadline on top of the client's own cancellation.
	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if sr.DeadlineMS > 0 {
		deadline = time.Duration(sr.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// Bounded worker pool: wait for a slot, but give up if the request dies
	// first (client disconnect or deadline spent queueing). The give-up is a
	// transient condition — the envelope says retryable, and a backoff-retry
	// against a drained server succeeds.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.rejected.Add(1)
		s.mRejected.Inc()
		s.writeUnavailable(w, http.StatusServiceUnavailable, &simerr.RunError{
			Kind:   simerr.KindDeadline,
			Detail: "serve: request cancelled while waiting for a worker",
			Err:    ctx.Err(),
		})
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	s.mSimInflight.Inc()
	defer func() {
		s.inFlight.Add(-1)
		s.mSimInflight.Dec()
	}()

	res, err := engine.Run(ctx, req)
	if err != nil {
		s.failures.Add(1)
		s.writeEngineError(w, err)
		return
	}
	if cacheable {
		s.cache.Put(key, *res)
	}
	s.writeResult(w, *res, false, start)
}

func (s *Server) writeResult(w http.ResponseWriter, res engine.Result, cached bool, start time.Time) {
	writeJSON(w, http.StatusOK, SimResponse{
		SchemaVersion: SchemaVersion,
		Exit:          res.ExitCode,
		Output:        res.Output,
		Ref:           res.Ref,
		Insts:         res.RefInsts,
		Stats:         res.Stats,
		Cached:        cached,
		ElapsedMS:     time.Since(start).Milliseconds(),
	})
}

// PolicyInfo is one self-describing registry entry in GET /v1/policies:
// everything a client needs to enumerate, select, and parameterize a policy
// without hardcoding names.
type PolicyInfo struct {
	Name        string         `json:"name"`
	Summary     string         `json:"summary"`
	ThreatModel string         `json:"threat_model"`
	Coverage    string         `json:"coverage"` // under default parameters
	Eval        bool           `json:"eval"`
	Ablation    bool           `json:"ablation"`
	Params      []secure.Param `json:"params,omitempty"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	var infos []PolicyInfo
	for _, d := range secure.Descriptors() {
		infos = append(infos, PolicyInfo{
			Name:        d.Name,
			Summary:     d.Summary,
			ThreatModel: d.ThreatModel,
			Coverage:    d.CoverageFor(nil).String(),
			Eval:        d.Eval,
			Ablation:    d.Ablation,
			Params:      d.Params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": SchemaVersion,
		"policies":       infos,
		"eval":           engine.EvalPolicies(),
		"sweep":          engine.SweepPolicies(),
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name  string `json:"name"`
		Class string `json:"class"`
		Desc  string `json:"desc"`
	}
	var out []wl
	for _, ww := range workloads.All() {
		out = append(out, wl{Name: ww.Name, Class: ww.Class, Desc: ww.Desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": SchemaVersion,
		"workloads":      out,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	v := VersionInfo{SchemaVersion: SchemaVersion, GoVersion: runtime.Version(), Routes: apiRoutes()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				v.Revision = kv.Value
			case "vcs.time":
				v.BuildTime = kv.Value
			case "vcs.modified":
				v.Modified = kv.Value == "true"
			}
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format (version 0.0.4 — what every scraper speaks).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteProm(w)
}

// Stats snapshots the server counters. The cache numbers come from one
// locked snapshot of the LRU, so hits/misses/evictions and the entry count
// always describe the same cache state.
func (s *Server) Stats() ServerStats {
	cs := s.cache.Stats()
	var peers []dispatch.PeerStats
	if s.fleet != nil {
		peers = s.fleet.Peers()
	}
	return ServerStats{
		RemotePeers:    peers,
		SchemaVersion:  SchemaVersion,
		Requests:       s.requests.Load(),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheEvictions: cs.Evictions,
		Failures:       s.failures.Load(),
		Rejected:       s.rejected.Load(),
		InFlight:       s.inFlight.Load(),
		Workers:        s.cfg.Workers,
		CacheEntries:   cs.Entries,
		Dispatch:       s.dispatch.Snapshot(),
	}
}
