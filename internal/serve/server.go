// Package serve implements levserve, the HTTP/JSON simulation daemon over
// internal/engine. One Server owns a bounded worker pool (at most Workers
// simulations in flight, the same semaphore pattern as the sweep
// supervisor), per-request wall-clock deadlines, and an LRU result cache
// keyed by (program hash, policy, config digest) — the simulator is
// deterministic, so repeated sweep cells are served without re-simulating.
// Request contexts are threaded into the engine end to end: a client that
// disconnects cancels its in-flight simulation and frees the worker slot.
//
// Endpoints:
//
//	POST /v1/simulate  — run one request (JSON body, see SimRequest)
//	GET  /v1/policies  — list secure-speculation policies
//	GET  /v1/workloads — list the embedded benchmark suite
//	GET  /v1/stats     — server counters (requests, cache hits, in-flight)
//	GET  /healthz      — liveness
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"levioso/internal/cli"
	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/simerr"
	"levioso/internal/workloads"
)

// Config tunes a Server. The zero value picks sane defaults.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// CacheEntries is the LRU result-cache capacity (default 256;
	// negative disables caching).
	CacheEntries int
	// DefaultDeadline bounds requests that do not set deadline_ms
	// (default 60s; negative means no default bound).
	DefaultDeadline time.Duration
	// MaxBody caps the request body size in bytes (default 8 MiB).
	MaxBody int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = time.Minute
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	return c
}

// Server is the levserve HTTP handler plus its worker pool and cache.
type Server struct {
	cfg   Config
	sem   chan struct{}
	cache *lru
	mux   *http.ServeMux

	requests  atomic.Uint64
	cacheHits atomic.Uint64
	failures  atomic.Uint64
	rejected  atomic.Uint64
	inFlight  atomic.Int64
}

// New builds a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		cache: newLRU(cfg.CacheEntries),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s
}

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// SimRequest is the JSON body of POST /v1/simulate. Exactly one program
// input — source, asm, binary (base64), or workload — must be set.
type SimRequest struct {
	Name     string `json:"name,omitempty"`
	Source   string `json:"source,omitempty"`   // LevC source
	Asm      string `json:"asm,omitempty"`      // LEV64 assembly
	Binary   []byte `json:"binary,omitempty"`   // LEV64 image, base64 in JSON
	Workload string `json:"workload,omitempty"` // embedded suite name
	Size     string `json:"size,omitempty"`     // workload scale: test|ref (default test)

	NoAnnotate bool   `json:"no_annotate,omitempty"`
	Policy     string `json:"policy,omitempty"` // default "unsafe"
	ROB        int    `json:"rob,omitempty"`
	MaxCycles  uint64 `json:"max_cycles,omitempty"`
	Ref        bool   `json:"ref,omitempty"`
	Verify     bool   `json:"verify,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// SimResponse is the JSON reply of POST /v1/simulate.
type SimResponse struct {
	Exit      uint64    `json:"exit"`
	Output    string    `json:"output"`
	Ref       bool      `json:"ref,omitempty"`
	Insts     uint64    `json:"insts,omitempty"`
	Stats     cpu.Stats `json:"stats"`
	Cached    bool      `json:"cached"`
	ElapsedMS int64     `json:"elapsed_ms"`
}

// errResponse is the JSON error reply: the message plus the typed failure
// kind, so sweep clients classify failures the same way the supervisor does.
type errResponse struct {
	Error     string `json:"error"`
	Kind      string `json:"kind"`
	Transient bool   `json:"transient"`
}

// ServerStats is the JSON reply of GET /v1/stats.
type ServerStats struct {
	Requests     uint64 `json:"requests"`
	CacheHits    uint64 `json:"cache_hits"`
	Failures     uint64 `json:"failures"`
	Rejected     uint64 `json:"rejected"`
	InFlight     int64  `json:"in_flight"`
	Workers      int    `json:"workers"`
	CacheEntries int    `json:"cache_entries"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// statusFor maps the typed failure taxonomy onto HTTP statuses: build
// problems are the client's fault, deadlines are timeouts, everything else
// is a completed-but-failed simulation.
func statusFor(err error) int {
	switch simerr.KindOf(err) {
	case simerr.KindBuild:
		return http.StatusBadRequest
	case simerr.KindDeadline:
		return http.StatusGatewayTimeout
	case simerr.KindUnknown:
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errResponse{
		Error:     err.Error(),
		Kind:      simerr.KindOf(err).String(),
		Transient: simerr.Transient(err),
	})
}

// engineRequest translates the wire request into an engine request,
// resolving workload names against the embedded suite.
func (sr *SimRequest) engineRequest() (engine.Request, error) {
	policy := sr.Policy
	if policy == "" {
		policy = "unsafe"
	}
	req := engine.Request{
		Name:       sr.Name,
		Source:     sr.Source,
		AsmText:    sr.Asm,
		Binary:     sr.Binary,
		NoAnnotate: sr.NoAnnotate,
		Policy:     policy,
		ROBSize:    sr.ROB,
		MaxCycles:  sr.MaxCycles,
		UseRef:     sr.Ref,
		Verify:     sr.Verify,
	}
	if sr.Workload != "" {
		if sr.Source != "" || sr.Asm != "" || len(sr.Binary) > 0 {
			return req, fmt.Errorf("serve: workload %q conflicts with an inline program input", sr.Workload)
		}
		w, ok := workloads.ByName(sr.Workload)
		if !ok {
			return req, fmt.Errorf("serve: unknown workload %q (have %v)", sr.Workload, workloads.Names())
		}
		size := workloads.SizeTest
		if sr.Size != "" {
			var err error
			if size, err = cli.ParseSize(sr.Size); err != nil {
				return req, fmt.Errorf("serve: %w", err)
			}
		}
		prog, err := w.Build(size)
		if err != nil {
			return req, err
		}
		req.Program = prog
		if req.Name == "" {
			req.Name = sr.Workload
		}
	}
	return req, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()

	var sr SimRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(body).Decode(&sr); err != nil {
		// An oversized body (fuzz-shaped programs can be arbitrarily large)
		// is a distinct, typed condition: 413 with the build kind, so
		// clients can tell "shrink your request" from "your JSON is bad".
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				simerr.New(simerr.KindBuild, "serve: request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	req, err := sr.engineRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Resolve the program up front: build errors answer immediately without
	// consuming a worker slot, and the resolved image is what the cache is
	// keyed on.
	prog, _, err := engine.Resolve(&req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	req.Program, req.Source, req.AsmText, req.Binary = prog, "", "", nil

	cfg := req.BuildConfig()
	key, cacheable := engine.CacheKey(prog, req.Policy, cfg, req.UseRef, req.Verify)
	if cacheable {
		if res, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			s.writeResult(w, res, true, start)
			return
		}
	}

	// Per-request deadline on top of the client's own cancellation.
	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if sr.DeadlineMS > 0 {
		deadline = time.Duration(sr.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// Bounded worker pool: wait for a slot, but give up if the request dies
	// first (client disconnect or deadline spent queueing).
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: request cancelled while waiting for a worker: %w", ctx.Err()))
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	res, err := engine.Run(ctx, req)
	if err != nil {
		s.failures.Add(1)
		writeError(w, statusFor(err), err)
		return
	}
	if cacheable {
		s.cache.put(key, *res)
	}
	s.writeResult(w, *res, false, start)
}

func (s *Server) writeResult(w http.ResponseWriter, res engine.Result, cached bool, start time.Time) {
	writeJSON(w, http.StatusOK, SimResponse{
		Exit:      res.ExitCode,
		Output:    res.Output,
		Ref:       res.Ref,
		Insts:     res.RefInsts,
		Stats:     res.Stats,
		Cached:    cached,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"policies": engine.Policies(),
		"eval":     engine.EvalPolicies(),
	})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name  string `json:"name"`
		Class string `json:"class"`
		Desc  string `json:"desc"`
	}
	var out []wl
	for _, ww := range workloads.All() {
		out = append(out, wl{Name: ww.Name, Class: ww.Class, Desc: ww.Desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:     s.requests.Load(),
		CacheHits:    s.cacheHits.Load(),
		Failures:     s.failures.Load(),
		Rejected:     s.rejected.Load(),
		InFlight:     s.inFlight.Load(),
		Workers:      s.cfg.Workers,
		CacheEntries: s.cache.len(),
	}
}
