package serve

import (
	"levioso/internal/engine"
	"levioso/internal/lru"
)

// resultCache is the per-process simulate result cache: an LRU keyed by the
// engine's (program hash, policy, config digest) cache key. The simulator is
// deterministic, so entries never go stale; capacity is the only eviction
// pressure. Values are stored by value — callers get a copy and can set
// response-local flags (Cached) without mutating the cached entry.
//
// Hit/miss/eviction counting lives inside lru.Cache, under the same mutex as
// the lookup, so /v1/stats and /metrics report numbers consistent with the
// cache state (the old handler-side atomic counters could drift from it
// under concurrent access). The batch tier uses the dispatch coordinator's
// shared cache instead — see internal/dispatch.
type resultCache = lru.Cache[string, engine.Result]

func newResultCache(max int) *resultCache {
	return lru.New[string, engine.Result](max)
}
