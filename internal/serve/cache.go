package serve

import (
	"container/list"
	"sync"

	"levioso/internal/engine"
)

// lru is a fixed-capacity least-recently-used result cache keyed by the
// engine's (program hash, policy, config digest) cache key. The simulator is
// deterministic, so entries never go stale; capacity is the only eviction
// pressure. Values are stored by value — callers get a copy and can set
// response-local flags (Cached) without mutating the cached entry.
type lru struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val engine.Result
}

func newLRU(max int) *lru {
	if max <= 0 {
		return nil
	}
	return &lru{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns a copy of the cached result and promotes the entry.
func (c *lru) get(key string) (engine.Result, bool) {
	if c == nil {
		return engine.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return engine.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts (or refreshes) an entry, evicting the least recently used
// entry past capacity.
func (c *lru) put(key string, val engine.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lru) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
