package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"levioso/internal/dispatch"
	"levioso/internal/engine"
)

// startWorkerDaemons runs n TCP worker daemons on loopback and returns
// their addresses. Cleanup drains them.
func startWorkerDaemons(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var addrs []string
	var dones []chan struct{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		done := make(chan struct{})
		dones = append(dones, done)
		go func(ln net.Listener) {
			defer close(done)
			dispatch.ListenWorkers(ctx, ln, dispatch.ListenOptions{
				HeartbeatInterval: 25 * time.Millisecond,
			})
		}(ln)
	}
	t.Cleanup(func() {
		cancel()
		for _, done := range dones {
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Error("worker daemon did not drain")
			}
		}
	})
	return addrs
}

// TestServeRemoteBatch is the multi-host quick-start as a test: one
// coordinator daemon fronting two TCP worker daemons, a /v1/batch request
// whose cells all round-trip through real sockets, and /v1/stats reporting
// the per-peer fleet state.
func TestServeRemoteBatch(t *testing.T) {
	addrs := startWorkerDaemons(t, 2)
	s, ts := startServer(t, Config{
		Remote: addrs,
		RemoteConfig: dispatch.RemoteConfig{
			DialTimeout:   2 * time.Second,
			RedialBackoff: 2 * time.Millisecond,
		},
		Dispatch: &dispatch.Config{Workers: 4, CacheEntries: -1},
	})

	// Ground truth for the one batch cell shape we send.
	want, err := engine.Run(context.Background(), engine.Request{
		Name: "hist.lc", Source: histSrc, Verify: true,
		Overrides: engine.Overrides{Policy: "levioso"},
	})
	if err != nil {
		t.Fatal(err)
	}

	cells := make([]SimRequest, 8)
	for i := range cells {
		cells[i] = SimRequest{Name: "hist.lc", Source: histSrc, Policy: "levioso", Verify: true}
	}
	body, err := json.Marshal(BatchRequest{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	var got int
	var trailer BatchTrailer
	for sc.Scan() {
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Done != nil {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var line BatchCellResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Error != nil {
			t.Fatalf("cell %d failed: %+v", line.Index, line.Error)
		}
		if line.Exit != want.ExitCode || line.Output != want.Output || line.Stats == nil || *line.Stats != want.Stats {
			t.Fatalf("cell %d differs from engine run:\n got=%+v\nwant=%+v", line.Index, line, want)
		}
		got++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != len(cells) || !trailer.Done || trailer.Completed != len(cells) || trailer.Failed != 0 {
		t.Fatalf("stream: %d cells, trailer %+v", got, trailer)
	}

	// /v1/stats names both peers with live connection state.
	st := s.Stats()
	if len(st.RemotePeers) != 2 {
		t.Fatalf("stats report %d remote peers, want 2: %+v", len(st.RemotePeers), st.RemotePeers)
	}
	seen := map[string]bool{}
	var dials uint64
	for _, p := range st.RemotePeers {
		seen[p.Addr] = true
		dials += p.Dials
	}
	for _, a := range addrs {
		if !seen[a] {
			t.Fatalf("peer %s missing from stats: %+v", a, st.RemotePeers)
		}
	}
	if dials < 2 {
		t.Fatalf("stats show %d dials across peers, want ≥2: %+v", dials, st.RemotePeers)
	}
	var httpStats ServerStats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&httpStats); err != nil {
		t.Fatal(err)
	}
	if len(httpStats.RemotePeers) != 2 {
		t.Fatalf("GET /v1/stats remote_peers = %+v, want both peers", httpStats.RemotePeers)
	}
}
