package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"levioso/internal/engine"
	"levioso/internal/secure"
)

const histSrc = `
var h[16];
func main() {
	var i;
	var s = 7;
	for (i = 0; i < 300; i = i + 1) {
		s = s * 1103515245 + 12345;
		var k = (s >> 16) & 15;
		if (h[k] < 9) { h[k] = h[k] + 1; }
	}
	var acc = 0;
	for (i = 0; i < 16; i = i + 1) { acc = acc + h[i]; }
	print(acc);
	return acc & 255;
}`

const spinSrc = `
func main() {
	var i;
	var s = 1;
	for (i = 0; i < 200000000; i = i + 1) { s = s + i; }
	return 0;
}`

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSimulate(t *testing.T, url string, req SimRequest) (SimResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SimResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

// TestServeSmoke is the make ci smoke test: one simulate request completes,
// an identical second request is served from the cache with identical
// results, and the handler shuts down cleanly with the test server.
func TestServeSmoke(t *testing.T) {
	s, ts := startServer(t, Config{})
	req := SimRequest{Name: "hist.lc", Source: histSrc, Policy: "levioso", Verify: true}

	first, resp := postSimulate(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	second, resp := postSimulate(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp.StatusCode)
	}
	if !second.Cached {
		t.Fatal("identical second request was not a cache hit")
	}
	if first.Exit != second.Exit || first.Output != second.Output || first.Stats != second.Stats {
		t.Fatalf("cached result differs:\n first=%+v\n second=%+v", first, second)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Requests != 2 {
		t.Fatalf("server counters wrong: %+v", st)
	}
}

// TestServeConcurrentMatchesEngine fans N parallel simulate requests across
// policies and checks every response against a direct engine.Run of the same
// request — the daemon is a transport, not a different pipeline.
func TestServeConcurrentMatchesEngine(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4, CacheEntries: -1})
	policies := []string{"unsafe", "fence", "delay", "invisible", "levioso", "levioso-ghost", "taint", "levioso-ctrl"}

	var wg sync.WaitGroup
	errs := make(chan error, len(policies))
	for _, pol := range policies {
		wg.Add(1)
		go func(pol string) {
			defer wg.Done()
			got, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Policy: pol})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", pol, resp.StatusCode)
				return
			}
			want, err := engine.Run(context.Background(), engine.Request{Source: histSrc, Overrides: engine.Overrides{Policy: pol}})
			if err != nil {
				errs <- err
				return
			}
			if got.Exit != want.ExitCode || got.Output != want.Output || got.Stats != want.Stats {
				errs <- fmt.Errorf("%s: served result differs from engine.Run:\n got=%+v\n want=%+v", pol, got, want)
			}
		}(pol)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeClientCancel proves an in-flight request is cancelled by client
// disconnect without wedging the worker pool: with a single worker, a
// cancelled long-running request must still leave the pool usable for the
// next request.
func TestServeClientCancel(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, CacheEntries: -1})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(SimRequest{Source: spinSrc, MaxCycles: 2_000_000_000})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Let the simulation start, then hang up.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("expected cancelled client request, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request did not return")
	}

	// The single worker slot must be free again: a quick request completes.
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		got, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Policy: "unsafe"})
		if resp.StatusCode != http.StatusOK || got.Stats.Committed == 0 {
			t.Errorf("post-cancel request failed: status=%d res=%+v", resp.StatusCode, got)
		}
	}()
	select {
	case <-fastDone:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool wedged after client cancellation")
	}
	if st := s.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight count leaked: %+v", st)
	}
}

// TestServeWorkloadAndRef runs an embedded suite workload and a reference-
// model request through the daemon.
func TestServeWorkloadAndRef(t *testing.T) {
	_, ts := startServer(t, Config{})
	got, resp := postSimulate(t, ts.URL, SimRequest{Workload: "pchase", Size: "test", Policy: "levioso"})
	if resp.StatusCode != http.StatusOK || got.Stats.Committed == 0 {
		t.Fatalf("workload request failed: status=%d res=%+v", resp.StatusCode, got)
	}
	rres, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Ref: true})
	if resp.StatusCode != http.StatusOK || !rres.Ref || rres.Insts == 0 {
		t.Fatalf("ref request failed: status=%d res=%+v", resp.StatusCode, rres)
	}
}

// TestServeBadRequests checks the error taxonomy maps onto HTTP statuses.
func TestServeBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []struct {
		name string
		req  SimRequest
		want int
	}{
		{"no input", SimRequest{}, http.StatusBadRequest},
		{"two inputs", SimRequest{Source: histSrc, Workload: "pchase"}, http.StatusBadRequest},
		{"unknown workload", SimRequest{Workload: "nonesuch"}, http.StatusBadRequest},
		{"unknown policy", SimRequest{Source: histSrc, Policy: "nonesuch"}, http.StatusBadRequest},
		{"bad source", SimRequest{Source: "func main( {"}, http.StatusBadRequest},
		{"deadline", SimRequest{Source: spinSrc, MaxCycles: 2_000_000_000, DeadlineMS: 20}, http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		_, resp := postSimulate(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
}

// TestServePoliciesDescriptors checks GET /v1/policies against the registry:
// every family appears as a full descriptor (summary, threat model, coverage),
// parameterized families carry their parameter schema, and the sweep list
// matches the registry's.
func TestServePoliciesDescriptors(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		SchemaVersion int          `json:"schema_version"`
		Policies      []PolicyInfo `json:"policies"`
		Eval          []string     `json:"eval"`
		Sweep         []string     `json:"sweep"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version %d, want %d", body.SchemaVersion, SchemaVersion)
	}
	byName := make(map[string]PolicyInfo)
	for _, p := range body.Policies {
		byName[p.Name] = p
	}
	for i, name := range secure.Names() {
		p, ok := byName[name]
		if !ok {
			t.Errorf("policy %q missing from /v1/policies", name)
			continue
		}
		if body.Policies[i].Name != name {
			t.Errorf("descriptor %d is %q, want %q (registry order)", i, body.Policies[i].Name, name)
		}
		if p.Summary == "" || p.ThreatModel == "" || p.Coverage == "" {
			t.Errorf("policy %q descriptor incomplete: %+v", name, p)
		}
	}
	if len(byName["tunable"].Params) == 0 {
		t.Error("tunable descriptor carries no parameter schema")
	}
	if want := secure.SweepSpecs(); !slices.Equal(body.Sweep, want) {
		t.Errorf("sweep = %v, want %v", body.Sweep, want)
	}
	if want := secure.EvalNames(); !slices.Equal(body.Eval, want) {
		t.Errorf("eval = %v, want %v", body.Eval, want)
	}
}

// TestServePolicyParams exercises the params field: an out-of-band level
// selects the same configuration as the inline spec (identical stats), and an
// invalid value is a 400.
func TestServePolicyParams(t *testing.T) {
	_, ts := startServer(t, Config{CacheEntries: -1})
	inline, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Policy: "tunable:level=ctrl"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline spec: status %d", resp.StatusCode)
	}
	viaParams, resp := postSimulate(t, ts.URL,
		SimRequest{Source: histSrc, Policy: "tunable", Params: map[string]string{"level": "ctrl"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("params: status %d", resp.StatusCode)
	}
	if inline.Stats != viaParams.Stats {
		t.Errorf("params selected a different configuration:\n inline=%+v\n params=%+v",
			inline.Stats, viaParams.Stats)
	}
	_, resp = postSimulate(t, ts.URL,
		SimRequest{Source: histSrc, Policy: "tunable", Params: map[string]string{"level": "extreme"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid level: status %d, want 400", resp.StatusCode)
	}
}

// TestServeMetaEndpoints covers the discovery endpoints.
func TestServeMetaEndpoints(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, path := range []string{"/healthz", "/v1/policies", "/v1/workloads", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", engine.Result{ExitCode: 1})
	c.Put("b", engine.Result{ExitCode: 2})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", engine.Result{ExitCode: 3}) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	if disabled := newResultCache(-1); disabled != nil {
		t.Fatal("negative capacity should disable the cache")
	}
}

// An oversized request body must come back as a typed 413, not a generic
// 400: clients distinguish "shrink your program" from "fix your request".
func TestServeBodyTooLarge(t *testing.T) {
	_, ts := startServer(t, Config{MaxBody: 512})
	big := SimRequest{Source: "// " + strings.Repeat("x", 4096) + "\n" + histSrc}
	_, resp := postSimulate(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	// A request under the cap on the same server still works.
	small, resp := postSimulate(t, ts.URL, SimRequest{Source: "func main() { print(7); return 0; }"})
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(small.Output) != "7" {
		t.Fatalf("small request after 413: status %d output %q", resp.StatusCode, small.Output)
	}
}
