package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"levioso/internal/obs"
)

// postFuzz posts a raw body to /v1/fuzz and decodes the status reply when
// the request was accepted.
func postFuzz(t *testing.T, url string, body []byte) (FuzzStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/fuzz", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FuzzStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

// waitFuzzDone polls GET /v1/fuzz/{id} until the campaign leaves "running".
func waitFuzzDone(t *testing.T, url, id string) FuzzStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		body, resp := getBody(t, url+"/v1/fuzz/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll: HTTP %d\n%s", resp.StatusCode, body)
		}
		var st FuzzStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign did not finish")
	return FuzzStatus{}
}

// fuzzTestBody is the small fast campaign the serve tests share.
func fuzzTestBody(t *testing.T, req FuzzRequest) []byte {
	t.Helper()
	if req.Seed == 0 {
		req.Seed = 7
	}
	if req.Count == 0 {
		req.Count = 6
	}
	if req.Profiles == nil {
		req.Profiles = []string{"store-load", "branch-storm"}
	}
	if req.Policies == nil {
		req.Policies = []string{"unsafe"}
	}
	req.NoStorm = true
	req.NoShrink = true
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeFuzzEndToEnd drives a campaign through the daemon: POST starts it
// (202 + generated id), status polls reach "done" with sane counters, the
// findings endpoint serves the bucket list, re-POSTing the same id with a
// larger count resumes rather than restarts, and the campaign's metrics
// land in this server's /metrics exposition.
func TestServeFuzzEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{FuzzDir: t.TempDir()})

	st, resp := postFuzz(t, ts.URL, fuzzTestBody(t, FuzzRequest{}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/fuzz: status %d", resp.StatusCode)
	}
	if st.SchemaVersion != SchemaVersion || st.ID == "" {
		t.Fatalf("accepted reply malformed: %+v", st)
	}

	done := waitFuzzDone(t, ts.URL, st.ID)
	if done.Status != "done" || done.Summary == nil {
		t.Fatalf("campaign did not complete cleanly: %+v", done)
	}
	if got := done.Summary.Cases + done.Summary.Resumed; got != 6 {
		t.Errorf("cases+resumed = %d, want 6", got)
	}
	if done.Summary.Execs == 0 || done.Summary.CoverageBits == 0 {
		t.Errorf("summary counters empty: %+v", done.Summary)
	}

	// Findings come off the crash-safe state file, whatever their count.
	body, fresp := getBody(t, ts.URL+"/v1/fuzz/"+st.ID+"/findings")
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("findings: HTTP %d", fresp.StatusCode)
	}
	var ff FuzzFindings
	if err := json.Unmarshal([]byte(body), &ff); err != nil {
		t.Fatal(err)
	}
	if ff.SchemaVersion != SchemaVersion || ff.ID != st.ID || ff.Findings == nil {
		t.Errorf("findings reply malformed: %s", body)
	}

	// Re-POST the finished id with a larger count: the campaign resumes from
	// its directory — the 6 committed cases are never re-executed.
	st2, resp := postFuzz(t, ts.URL, fuzzTestBody(t, FuzzRequest{ID: st.ID, Count: 9}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume POST: status %d", resp.StatusCode)
	}
	done2 := waitFuzzDone(t, ts.URL, st2.ID)
	if done2.Status != "done" || done2.Summary == nil {
		t.Fatalf("resumed campaign failed: %+v", done2)
	}
	if done2.Summary.Resumed != 6 || done2.Summary.Cases != 3 {
		t.Errorf("resume executed %d/%d (resumed/cases), want 6/3", done2.Summary.Resumed, done2.Summary.Cases)
	}

	// The campaign instruments are part of this server's exposition.
	mbody, mresp := getBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", mresp.StatusCode)
	}
	types, err := obs.ValidateProm(strings.NewReader(mbody))
	if err != nil {
		t.Fatalf("unparseable exposition:\n%v", err)
	}
	for fam, kind := range map[string]string{
		"fuzz_campaign_cases_total":   "counter",
		"fuzz_campaign_execs_total":   "counter",
		"fuzz_campaign_coverage_bits": "gauge",
		"fuzz_campaign_corpus_size":   "gauge",
	} {
		if types[fam] != kind {
			t.Errorf("family %s: type %q, want %q", fam, types[fam], kind)
		}
	}
}

// TestServeFuzzErrors pins the fuzz endpoints' error taxonomy to the unified
// envelope: 404 for unknown campaigns, 400 for malformed requests, each with
// the kind in the body and the X-Error-Kind header.
func TestServeFuzzErrors(t *testing.T) {
	_, ts := startServer(t, Config{FuzzDir: t.TempDir()})

	for _, path := range []string{"/v1/fuzz/nonesuch", "/v1/fuzz/nonesuch/findings"} {
		body, resp := getBody(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: HTTP %d, want 404", path, resp.StatusCode)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("%s: not an error envelope: %s", path, body)
		}
		if env.Error.Kind != "build" || !strings.Contains(env.Error.Message, "nonesuch") {
			t.Errorf("%s: envelope %+v", path, env)
		}
		if resp.Header.Get("X-Error-Kind") != "build" {
			t.Errorf("%s: X-Error-Kind %q", path, resp.Header.Get("X-Error-Kind"))
		}
	}

	bad := []struct {
		name string
		body []byte
	}{
		{"unknown field", []byte(`{"profles":["store-load"]}`)},
		{"invalid id", []byte(`{"id":"../escape"}`)},
		{"dotfile id", []byte(`{"id":".hidden"}`)},
		{"unknown profile", []byte(`{"profiles":["nonesuch"]}`)},
		{"unknown policy", []byte(`{"policies":["nonesuch"]}`)},
		{"negative count", []byte(`{"count":-1}`)},
		{"negative deadline", []byte(`{"deadline_ms":-5}`)},
	}
	for _, tc := range bad {
		_, resp := postFuzz(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
		if resp.Header.Get("X-Error-Kind") != "build" {
			t.Errorf("%s: X-Error-Kind %q, want build", tc.name, resp.Header.Get("X-Error-Kind"))
		}
	}

	// The unknown-field rejection names the accepted fields.
	resp, err := http.Post(ts.URL+"/v1/fuzz", "application/json", strings.NewReader(`{"profles":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Error.Message, "profles") || !strings.Contains(env.Error.Message, "profiles") {
		t.Errorf("unknown-field message unhelpful: %q", env.Error.Message)
	}
}

// TestServeFuzzPoolFull503 pins the load-shed contract: a campaign occupies
// a worker slot for its whole life, so with one worker a second campaign is
// refused with the retryable 503 envelope, and re-POSTing the running id is
// a 409. The running campaign is cancelled by server Close.
func TestServeFuzzPoolFull503(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, FuzzDir: t.TempDir()})

	// A long campaign (no count bound, 1h duration cap via deadline default)
	// holds the only slot. Count is large enough to outlive the test.
	st, resp := postFuzz(t, ts.URL, fuzzTestBody(t, FuzzRequest{ID: "hog", Count: 1_000_000}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long campaign: status %d", resp.StatusCode)
	}

	// Same id again while running: conflict.
	_, resp = postFuzz(t, ts.URL, fuzzTestBody(t, FuzzRequest{ID: st.ID, Count: 1_000_000}))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate running id: HTTP %d, want 409", resp.StatusCode)
	}

	// A different campaign: no slot free, retryable 503 with Retry-After.
	resp2, err := http.Post(ts.URL+"/v1/fuzz", "application/json",
		bytes.NewReader(fuzzTestBody(t, FuzzRequest{ID: "second"})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pool-full campaign: HTTP %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp2.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Kind != "deadline" || !env.Error.Retryable {
		t.Errorf("503 envelope should be retryable deadline kind: %+v", env)
	}
}

// TestServeVersionRoutes asserts /v1/version advertises the fuzz routes —
// the v3 schema's discovery contract.
func TestServeVersionRoutes(t *testing.T) {
	_, ts := startServer(t, Config{})
	body, resp := getBody(t, ts.URL+"/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"POST /v1/fuzz", "GET /v1/fuzz/{id}", "GET /v1/fuzz/{id}/findings"} {
		found := false
		for _, r := range v.Routes {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("route %q missing from /v1/version: %v", want, v.Routes)
		}
	}
}
