package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"levioso/internal/fuzz"
	"levioso/internal/obs"
	"levioso/internal/simerr"
)

// The fuzz endpoints put coverage-guided campaigns behind the daemon:
//
//	POST /v1/fuzz                — start (or resume) a campaign, 202 + id
//	GET  /v1/fuzz/{id}           — live status and progress counters
//	GET  /v1/fuzz/{id}/findings  — finding buckets, served live from the
//	                               crash-safe campaign state file
//
// A campaign occupies one slot of the same bounded worker pool as
// /v1/simulate for its whole life — a saturated pool answers 503 with the
// usual Retry-After envelope rather than queueing an hours-long job behind
// interactive requests. Campaign state lives under Config.FuzzDir/<id>, so
// re-POSTing a finished campaign's id with a larger count resumes it from
// its directory exactly like `levfuzz -campaign`.

// FuzzRequest is the JSON body of POST /v1/fuzz. Unknown top-level fields
// are rejected with 400, mirroring /v1/simulate. Everything funnels into
// fuzz.Options.Normalize — a request rejected here is rejected identically
// by the levfuzz command line.
type FuzzRequest struct {
	// ID names the campaign (and its state directory). Optional: the server
	// generates one. Re-using a finished campaign's id resumes it.
	ID           string   `json:"id,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	Count        int      `json:"count,omitempty"`
	Profiles     []string `json:"profiles,omitempty"`
	Policies     []string `json:"policies,omitempty"`
	MaxCycles    uint64   `json:"max_cycles,omitempty"`
	DeadlineMS   int64    `json:"deadline_ms,omitempty"`
	ShrinkBudget int      `json:"shrink_budget,omitempty"`
	NoShrink     bool     `json:"no_shrink,omitempty"`
	NoStorm      bool     `json:"no_storm,omitempty"`
	Blind        bool     `json:"blind,omitempty"`
}

// fuzzRequestFields lists the accepted FuzzRequest keys, for the
// unknown-field rejection message. Keep in sync with the struct tags above.
const fuzzRequestFields = "id, seed, count, profiles, policies, max_cycles, deadline_ms, shrink_budget, no_shrink, no_storm, blind"

// FuzzStatus is the JSON reply of POST /v1/fuzz and GET /v1/fuzz/{id}.
type FuzzStatus struct {
	SchemaVersion int           `json:"schema_version"`
	ID            string        `json:"id"`
	Status        string        `json:"status"` // running | done | failed
	Error         string        `json:"error,omitempty"`
	Progress      fuzz.Progress `json:"progress"`
	Summary       *FuzzSummary  `json:"summary,omitempty"` // once done
}

// FuzzSummary is the completed campaign's outcome on the wire.
type FuzzSummary struct {
	Cases        int   `json:"cases"`
	Resumed      int   `json:"resumed"`
	Skipped      int   `json:"skipped"`
	Execs        int   `json:"execs"`
	Mutated      int   `json:"mutated"`
	CoverageBits int   `json:"coverage_bits"`
	CorpusSize   int   `json:"corpus_size"`
	Findings     int   `json:"findings"`
	ElapsedMS    int64 `json:"elapsed_ms"`
}

// FuzzFindings is the JSON reply of GET /v1/fuzz/{id}/findings.
type FuzzFindings struct {
	SchemaVersion int                   `json:"schema_version"`
	ID            string                `json:"id"`
	Status        string                `json:"status"`
	Findings      []*fuzz.FindingBucket `json:"findings"`
}

// campaignRun is one campaign's lifecycle inside the server.
type campaignRun struct {
	id  string
	dir string

	mu       sync.Mutex
	status   string // running | done | failed
	err      string
	progress fuzz.Progress
	summary  *fuzz.CampaignSummary
}

func (c *campaignRun) snapshot() FuzzStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := FuzzStatus{
		SchemaVersion: SchemaVersion,
		ID:            c.id,
		Status:        c.status,
		Error:         c.err,
		Progress:      c.progress,
	}
	if c.summary != nil {
		st.Summary = &FuzzSummary{
			Cases:        c.summary.Cases,
			Resumed:      c.summary.Resumed,
			Skipped:      c.summary.Skipped,
			Execs:        c.summary.Execs,
			Mutated:      c.summary.Mutated,
			CoverageBits: c.summary.CoverageBits,
			CorpusSize:   c.summary.CorpusSize,
			Findings:     c.summary.FindingCount,
			ElapsedMS:    c.summary.Elapsed.Milliseconds(),
		}
	}
	return st
}

// fuzzDir resolves the campaign base directory.
func (s *Server) fuzzDir() string {
	if s.cfg.FuzzDir != "" {
		return s.cfg.FuzzDir
	}
	return filepath.Join(os.TempDir(), "levserve-fuzz")
}

// validCampaignID keeps ids safe as directory names: nonempty, bounded, one
// path segment, no dotfiles.
func validCampaignID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

func decodeFuzzRequest(body io.Reader, fr *FuzzRequest) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(fr); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return simerr.New(simerr.KindBuild,
				"serve: %v (accepted fields: %s)", err, fuzzRequestFields)
		}
		return err
	}
	return nil
}

// options translates the wire request into normalized campaign options.
func (fr *FuzzRequest) options() (fuzz.Options, error) {
	opt := fuzz.Options{
		Seed:         fr.Seed,
		Count:        fr.Count,
		Policies:     fr.Policies,
		MaxCycles:    fr.MaxCycles,
		ShrinkBudget: fr.ShrinkBudget,
		NoShrink:     fr.NoShrink,
		NoStorm:      fr.NoStorm,
		Blind:        fr.Blind,
	}
	for _, p := range fr.Profiles {
		opt.Profiles = append(opt.Profiles, fuzz.Profile(p))
	}
	if fr.DeadlineMS < 0 {
		return opt, simerr.New(simerr.KindBuild, "serve: negative deadline_ms %d", fr.DeadlineMS)
	}
	opt.Deadline = time.Duration(fr.DeadlineMS) * time.Millisecond
	err := opt.Normalize()
	return opt, err
}

func (s *Server) handleFuzzStart(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)

	var fr FuzzRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := decodeFuzzRequest(body, &fr); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				simerr.New(simerr.KindBuild, "serve: request body exceeds %d bytes", mbe.Limit))
			return
		}
		if simerr.KindOf(err) == simerr.KindUnknown {
			err = simerr.New(simerr.KindBuild, "serve: bad request body: %v", err)
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt, err := fr.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := fr.ID
	if id == "" {
		id = fmt.Sprintf("fz%s-%04d", s.idBase, s.idSeq.Add(1))
	} else if !validCampaignID(id) {
		writeError(w, http.StatusBadRequest,
			simerr.New(simerr.KindBuild, "serve: invalid campaign id %q (one path segment of [A-Za-z0-9._-], not starting with a dot)", id))
		return
	}

	s.fuzzMu.Lock()
	if prev, ok := s.fuzzRuns[id]; ok {
		prev.mu.Lock()
		running := prev.status == "running"
		prev.mu.Unlock()
		if running {
			s.fuzzMu.Unlock()
			writeError(w, http.StatusConflict,
				simerr.New(simerr.KindBuild, "serve: fuzz campaign %q is already running", id))
			return
		}
		// A finished campaign's id may be re-POSTed: the new run resumes
		// from the same directory (the state-file digest rejects option
		// mismatches).
	}

	// One worker slot for the campaign's whole life, acquired non-blocking:
	// a full pool answers 503 now rather than parking an hours-long job.
	select {
	case s.sem <- struct{}{}:
	default:
		s.fuzzMu.Unlock()
		s.rejected.Add(1)
		s.mRejected.Inc()
		s.writeUnavailable(w, http.StatusServiceUnavailable, &simerr.RunError{
			Kind:   simerr.KindDeadline,
			Detail: "serve: no worker slot free for a fuzz campaign",
			Err:    context.DeadlineExceeded,
		})
		return
	}

	run := &campaignRun{id: id, dir: filepath.Join(s.fuzzDir(), id), status: "running"}
	s.fuzzRuns[id] = run
	s.fuzzMu.Unlock()

	opt.Progress = func(p fuzz.Progress) {
		run.mu.Lock()
		run.progress = p
		run.mu.Unlock()
	}

	s.inFlight.Add(1)
	s.mSimInflight.Inc()
	go func() {
		defer func() {
			<-s.sem
			s.inFlight.Add(-1)
			s.mSimInflight.Dec()
		}()
		// The campaign's obs instruments (fuzz_campaign_*) land in this
		// server's registry, so /metrics reports coverage growth, executions
		// and finding throughput live.
		ctx := obs.WithRegistry(s.fuzzCtx, s.reg)
		sum, err := fuzz.Campaign(ctx, run.dir, opt)
		run.mu.Lock()
		defer run.mu.Unlock()
		if err != nil {
			s.failures.Add(1)
			run.status, run.err = "failed", err.Error()
			return
		}
		run.status, run.summary = "done", sum
	}()

	writeJSON(w, http.StatusAccepted, run.snapshot())
}

// lookupFuzz resolves {id} or answers the 404 envelope itself.
func (s *Server) lookupFuzz(w http.ResponseWriter, r *http.Request) *campaignRun {
	id := r.PathValue("id")
	s.fuzzMu.Lock()
	run, ok := s.fuzzRuns[id]
	s.fuzzMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			simerr.New(simerr.KindBuild, "serve: unknown fuzz campaign %q", id))
		return nil
	}
	return run
}

func (s *Server) handleFuzzStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	run := s.lookupFuzz(w, r)
	if run == nil {
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

func (s *Server) handleFuzzFindings(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	run := s.lookupFuzz(w, r)
	if run == nil {
		return
	}
	buckets, err := fuzz.LoadFindings(run.dir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if buckets == nil {
		buckets = []*fuzz.FindingBucket{}
	}
	st := run.snapshot()
	writeJSON(w, http.StatusOK, FuzzFindings{
		SchemaVersion: SchemaVersion,
		ID:            st.ID,
		Status:        st.Status,
		Findings:      buckets,
	})
}
