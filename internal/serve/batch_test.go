package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"levioso/internal/dispatch"
	"levioso/internal/engine"
)

// postBatch sends a batch and parses the NDJSON stream into cell lines and
// the trailer.
func postBatch(t *testing.T, url string, br BatchRequest) ([]BatchCellResult, *BatchTrailer, *http.Response) {
	t.Helper()
	body, err := json.Marshal(br)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, resp
	}
	var cells []BatchCellResult
	var trailer *BatchTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"done":true`)) {
			trailer = new(BatchTrailer)
			if err := json.Unmarshal(sc.Bytes(), trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var line BatchCellResult
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		cells = append(cells, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cells, trailer, resp
}

// TestBatchStreamsCorrectResults: a mixed batch comes back complete, every
// cell bit-identical to a direct engine.Run, no index lost or duplicated,
// and the trailer accounts for every line.
func TestBatchStreamsCorrectResults(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4})
	policies := []string{"unsafe", "fence", "levioso", "delay"}
	var br BatchRequest
	for i := 0; i < 12; i++ {
		br.Cells = append(br.Cells, SimRequest{
			Source: histSrc, Policy: policies[i%len(policies)], Verify: true,
		})
	}
	cells, trailer, resp := postBatch(t, ts.URL, br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if trailer == nil || !trailer.Done || trailer.Completed != 12 || trailer.Failed != 0 {
		t.Fatalf("trailer: %+v", trailer)
	}
	if len(cells) != 12 {
		t.Fatalf("%d cell lines, want 12", len(cells))
	}
	seen := make(map[int]bool)
	for _, line := range cells {
		if line.Error != nil {
			t.Fatalf("cell %d failed: %+v", line.Index, line.Error)
		}
		if seen[line.Index] {
			t.Fatalf("cell %d streamed twice", line.Index)
		}
		seen[line.Index] = true
		want, err := engine.Run(context.Background(), engine.Request{
			Source: histSrc, Verify: true,
			Overrides: engine.Overrides{Policy: br.Cells[line.Index].Policy},
		})
		if err != nil {
			t.Fatal(err)
		}
		if line.Exit != want.ExitCode || line.Output != want.Output || *line.Stats != want.Stats {
			t.Fatalf("cell %d differs from engine.Run", line.Index)
		}
	}
}

// TestBatchPerCellErrors: one broken cell fails alone with a typed error;
// the rest of the batch completes.
func TestBatchPerCellErrors(t *testing.T) {
	_, ts := startServer(t, Config{})
	br := BatchRequest{Cells: []SimRequest{
		{Source: histSrc, Policy: "unsafe"},
		{Source: "func main( {"},              // parse error
		{Source: histSrc, Policy: "nonesuch"}, // unknown policy
		{Source: histSrc, Ref: true},          // no batch ref path
	}}
	cells, trailer, resp := postBatch(t, ts.URL, br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if trailer == nil || trailer.Completed != 1 || trailer.Failed != 3 {
		t.Fatalf("trailer: %+v", trailer)
	}
	for _, line := range cells {
		if line.Index == 0 {
			if line.Error != nil {
				t.Fatalf("healthy cell failed: %+v", line.Error)
			}
			continue
		}
		if line.Error == nil || line.Error.Kind != "build" {
			t.Fatalf("cell %d: want typed build error, got %+v", line.Index, line.Error)
		}
	}
}

// TestBatchShedsWithRetryAfter: a batch beyond the admission cap is shed
// atomically with 503, Retry-After, the shed kind, and queue depth in the
// envelope.
func TestBatchShedsWithRetryAfter(t *testing.T) {
	s, ts := startServer(t, Config{Dispatch: &dispatch.Config{Workers: 1, QueueDepth: 2}})
	var br BatchRequest
	for i := 0; i < 3; i++ {
		br.Cells = append(br.Cells, SimRequest{Source: histSrc})
	}
	body, _ := json.Marshal(br)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	if kind := resp.Header.Get("X-Error-Kind"); kind != "shed" {
		t.Fatalf("error kind %q, want shed", kind)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !env.Error.Retryable {
		t.Fatalf("shed must be retryable: %+v", env.Error)
	}
	if st := s.Stats(); st.Dispatch.Shed == 0 {
		t.Fatalf("shed not counted: %+v", st.Dispatch)
	}
	// A batch that fits still goes through on the same server.
	cells, trailer, resp2 := postBatch(t, ts.URL, BatchRequest{Cells: br.Cells[:2]})
	if resp2.StatusCode != http.StatusOK || trailer == nil || trailer.Completed != 2 {
		t.Fatalf("in-cap batch after shed: status=%d trailer=%+v cells=%d",
			resp2.StatusCode, trailer, len(cells))
	}
}

// TestBatchClientDisconnectKeepsPartialResults: a client that hangs up
// mid-stream keeps the lines already flushed, and the server neither wedges
// nor leaks the admitted capacity.
func TestBatchClientDisconnectKeepsPartialResults(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, Dispatch: &dispatch.Config{Workers: 1}, CacheEntries: -1})
	var br BatchRequest
	// One fast cell, then slow spinners the client will not wait for. The
	// batch cache is disabled per-cell by distinct max_cycles values.
	br.Cells = append(br.Cells, SimRequest{Source: histSrc, Policy: "unsafe"})
	for i := 0; i < 3; i++ {
		br.Cells = append(br.Cells, SimRequest{
			Source: spinSrc, MaxCycles: uint64(1_000_000_000 + i),
		})
	}
	body, _ := json.Marshal(br)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed line — a partial result — then hang up.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line before disconnect: %v", sc.Err())
	}
	var first BatchCellResult
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Error != nil {
		t.Fatalf("first streamed cell failed: %+v", first.Error)
	}
	cancel()
	resp.Body.Close()

	// The admitted capacity must drain once the cancelled cells unwind.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := s.Stats(); st.Dispatch.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admitted capacity leaked: %+v", s.Stats().Dispatch)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And the server still serves.
	got, resp3 := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Policy: "unsafe"})
	if resp3.StatusCode != http.StatusOK || got.Stats.Committed == 0 {
		t.Fatalf("server wedged after batch disconnect: %d %+v", resp3.StatusCode, got)
	}
}

// TestBatchValidation pins the request-level 400s.
func TestBatchValidation(t *testing.T) {
	_, ts := startServer(t, Config{MaxBatchCells: 2})
	for name, body := range map[string]string{
		"empty":     `{"cells":[]}`,
		"unknown":   `{"cells":[{"polcy":"fence"}]}`,
		"oversized": `{"cells":[{},{},{}]}`,
		"malformed": `{nope`,
	} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
