package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"levioso/internal/obs"
)

// errKindHeader carries the typed failure kind from writeError back to the
// instrumentation middleware (and to clients, where it doubles as a cheap
// way to classify a failure without parsing the body).
const errKindHeader = "X-Error-Kind"

// statusWriter records the status code and byte count an inner handler
// produced, for the per-route metrics and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the NDJSON
// batch endpoint) can push each line as it completes.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessRecord is one JSON access-log line. Fields are flat and stable so
// the log is grep- and jq-friendly:
//
//	{"time":"2026-08-06T10:15:04Z","id":"1a2b3c4d-0007","method":"POST",
//	 "path":"/v1/simulate","route":"simulate","status":200,"bytes":312,
//	 "elapsed_ms":41,"kind":""}
type accessRecord struct {
	Time      string `json:"time"`
	ID        string `json:"id"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Route     string `json:"route"`
	Status    int    `json:"status"`
	Bytes     int    `json:"bytes"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Kind      string `json:"kind,omitempty"` // typed failure kind on errors
}

// nextID issues a process-unique request ID: a per-server random-ish base
// (startup nanoseconds) plus a sequence number. Cheap, collision-free within
// one server, and short enough to grep for.
func (s *Server) nextID() string {
	return fmt.Sprintf("%s-%04d", s.idBase, s.idSeq.Add(1))
}

// instrument wraps a route handler with the observability spine: request ID
// issuance (echoed in X-Request-ID), the per-server obs registry installed
// into the request context (so engine stage spans land in this server's
// /metrics, not the process default), per-route request/latency/in-flight/
// error-kind metrics, and one JSON access-log line when configured.
//
// The route label is a fixed small set (one per registered handler), never
// the raw URL path — see the cardinality rules in internal/obs.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.CounterVec("levserve_requests_total",
		"HTTP requests served, by route", "route").With(route)
	latency := s.reg.HistogramVec("levserve_request_seconds",
		"request wall-clock latency in seconds, by route",
		obs.LatencyBuckets(), "route").With(route)
	errors := s.reg.CounterVec("levserve_errors_total",
		"error responses (status >= 400), by route and typed failure kind",
		"route", "kind")
	inflight := s.reg.Gauge("levserve_inflight_requests",
		"HTTP requests currently being handled")

	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.nextID()
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRegistry(r.Context(), s.reg))

		inflight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		inflight.Dec()

		elapsed := time.Since(start)
		requests.Inc()
		latency.Observe(elapsed.Seconds())
		kind := sw.Header().Get(errKindHeader)
		if sw.status >= 400 {
			k := kind
			if k == "" {
				k = "http_" + strconv.Itoa(sw.status)
			}
			errors.With(route, k).Inc()
		}
		if s.accessLog != nil {
			s.logAccess(accessRecord{
				Time:      time.Now().UTC().Format(time.RFC3339),
				ID:        id,
				Method:    r.Method,
				Path:      r.URL.Path,
				Route:     route,
				Status:    sw.status,
				Bytes:     sw.bytes,
				ElapsedMS: elapsed.Milliseconds(),
				Kind:      kind,
			})
		}
	}
}

// logAccess writes one JSON line, mutex-serialized so concurrent handlers
// never interleave partial lines.
func (s *Server) logAccess(rec accessRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.accessLog.Write(append(line, '\n'))
}
