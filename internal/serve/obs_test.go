package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"levioso/internal/obs"
)

// getBody fetches a path and returns the body and response.
func getBody(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp
}

// TestServeMetricsSmoke is the make ci observability smoke: boot a server,
// run one simulate, scrape /metrics, and fail on unparseable exposition
// lines or missing required metric families. This is the same contract an
// external Prometheus scraper relies on.
func TestServeMetricsSmoke(t *testing.T) {
	_, ts := startServer(t, Config{})

	got, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc, Policy: "levioso"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d, want %d", got.SchemaVersion, SchemaVersion)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}

	body, mresp := getBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	types, err := obs.ValidateProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("unparseable exposition:\n%v\n---\n%s", err, body)
	}
	// The families a dashboard is built on: per-route serve counters and
	// the per-stage engine histograms (the simulate above must have landed
	// compile/assemble/annotate/simulate spans in this server's registry).
	required := map[string]string{
		"levserve_requests_total":     "counter",
		"levserve_request_seconds":    "histogram",
		"levserve_inflight_requests":  "gauge",
		"levserve_cache_misses_total": "counter",
		"engine_stage_seconds":        "histogram",
		"engine_runs_total":           "counter",
	}
	for fam, kind := range required {
		if types[fam] != kind {
			t.Errorf("family %s: type %q, want %q\n%s", fam, types[fam], kind, body)
		}
	}
	for _, series := range []string{
		`engine_stage_seconds_count{stage="simulate",outcome="ok"}`,
		`engine_stage_seconds_count{stage="compile",outcome="ok"}`,
		`levserve_requests_total{route="simulate"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("missing series %s in exposition:\n%s", series, body)
		}
	}
}

// TestServeErrorEnvelope asserts every failure status renders the unified
// {"error":{kind,message,retryable}} envelope with a sensible kind.
func TestServeErrorEnvelope(t *testing.T) {
	_, ts := startServer(t, Config{MaxBody: 16 << 10})

	post := func(body []byte) (*http.Response, ErrorEnvelope) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("status %d: response is not an error envelope: %v", resp.StatusCode, err)
		}
		return resp, env
	}
	mustJSON := func(sr SimRequest) []byte {
		b, err := json.Marshal(sr)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantKind   string
		retryable  bool
	}{
		{"malformed json", []byte("{nope"), http.StatusBadRequest, "build", false},
		{"unknown field", []byte(`{"polcy":"levioso"}`), http.StatusBadRequest, "build", false},
		{"unknown policy", mustJSON(SimRequest{Source: histSrc, Policy: "nonesuch"}), http.StatusBadRequest, "build", false},
		{"no input", mustJSON(SimRequest{}), http.StatusBadRequest, "build", false},
		{"negative deadline", mustJSON(SimRequest{Source: histSrc, DeadlineMS: -5}), http.StatusBadRequest, "build", false},
		{"body too large", mustJSON(SimRequest{Source: strings.Repeat("//x\n", 16<<10) + histSrc}), http.StatusRequestEntityTooLarge, "build", false},
		{"cycle limit", mustJSON(SimRequest{Source: spinSrc, MaxCycles: 1000}), http.StatusUnprocessableEntity, "cycle-limit", false},
		{"deadline", mustJSON(SimRequest{Source: spinSrc, MaxCycles: 2_000_000_000, DeadlineMS: 20}), http.StatusGatewayTimeout, "deadline", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, env := post(tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (%+v)", resp.StatusCode, tc.wantStatus, env)
			}
			if env.Error.Kind != tc.wantKind {
				t.Errorf("kind %q, want %q (%+v)", env.Error.Kind, tc.wantKind, env)
			}
			if env.Error.Retryable != tc.retryable {
				t.Errorf("retryable %v, want %v (%+v)", env.Error.Retryable, tc.retryable, env)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
			if got := resp.Header.Get("X-Error-Kind"); got != tc.wantKind {
				t.Errorf("X-Error-Kind %q, want %q", got, tc.wantKind)
			}
		})
	}

	// The unknown-field rejection must name the accepted fields — the whole
	// point is telling the client what to fix.
	resp, env := post([]byte(`{"polcy":"levioso"}`))
	resp.Body.Close()
	if !strings.Contains(env.Error.Message, "polcy") || !strings.Contains(env.Error.Message, "policy") {
		t.Errorf("unknown-field message unhelpful: %q", env.Error.Message)
	}
}

// TestServeQueueGiveUp503 pins down the 503 path: with one worker occupied
// by a long simulation, a short-deadline request must give up while queueing
// with a retryable deadline-kind envelope.
func TestServeQueueGiveUp503(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, CacheEntries: -1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the only worker slot until its own deadline fires.
		postSimulate(t, ts.URL, SimRequest{Source: spinSrc, MaxCycles: 2_000_000_000, DeadlineMS: 2000})
	}()
	time.Sleep(200 * time.Millisecond) // let the spinner claim the slot

	body, _ := json.Marshal(SimRequest{Source: histSrc, DeadlineMS: 100})
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%+v)", resp.StatusCode, env)
	}
	if env.Error.Kind != "deadline" || !env.Error.Retryable {
		t.Fatalf("503 envelope should be retryable deadline kind: %+v", env)
	}
	wg.Wait()
}

// TestServeVersion covers the version endpoint's stability contract.
func TestServeVersion(t *testing.T) {
	_, ts := startServer(t, Config{})
	body, resp := getBody(t, ts.URL+"/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d, want %d", v.SchemaVersion, SchemaVersion)
	}
	if v.GoVersion == "" {
		t.Fatal("missing go_version")
	}
}

// TestServeAccessLog asserts the structured access log: one JSON line per
// request with the documented fields, and the request ID matching the
// X-Request-ID response header.
func TestServeAccessLog(t *testing.T) {
	var buf syncBuffer
	_, ts := startServer(t, Config{AccessLog: &buf})

	_, resp := postSimulate(t, ts.URL, SimRequest{Source: histSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 access-log line, got %d:\n%s", len(lines), buf.String())
	}
	var rec accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access-log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.ID != id {
		t.Errorf("log id %q != header id %q", rec.ID, id)
	}
	if rec.Method != "POST" || rec.Path != "/v1/simulate" || rec.Route != "simulate" || rec.Status != 200 {
		t.Errorf("access record fields wrong: %+v", rec)
	}
	if _, err := time.Parse(time.RFC3339, rec.Time); err != nil {
		t.Errorf("timestamp not RFC3339: %q", rec.Time)
	}
}

// TestServePprofGate asserts the pprof mounts are opt-in.
func TestServePprofGate(t *testing.T) {
	_, off := startServer(t, Config{})
	if _, resp := getBody(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without the flag: status %d", resp.StatusCode)
	}
	_, on := startServer(t, Config{EnablePprof: true})
	if _, resp := getBody(t, on.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with the flag: status %d", resp.StatusCode)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the handler writes from
// request goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
