package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/obs"
)

// CacheKey derives a stable result-cache key for simulating prog under the
// given policy and configuration: sha256 over (program image, policy name,
// config digest, run-mode flags). The simulator is deterministic, so two
// requests with equal keys produce identical results — this is what lets
// levserve serve repeated sweep cells without re-simulating.
//
// The second return value reports cacheability. Requests whose configuration
// carries behavioral hooks — a trace writer, fault-injection wrappers, a
// commit-stall callback, a coverage sink — are not cacheable: the hooks are
// opaque side channels whose effects cannot be keyed (and a cached result
// would silently skip filling the coverage sink).
func CacheKey(prog *isa.Program, policy string, cfg cpu.Config, useRef, verify bool) (string, bool) {
	if cfg.Trace != nil || cfg.WrapMem != nil || cfg.WrapPred != nil || cfg.CommitStall != nil || cfg.Coverage != nil {
		return "", false
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		return "", false
	}
	h := sha256.New()
	h.Write(img)
	// Config is plain scalars once the hook fields are zeroed (they already
	// are, checked above), so the fmt rendering is deterministic.
	fmt.Fprintf(h, "|policy=%s|ref=%t|verify=%t|cfg=%+v", policy, useRef, verify, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// CacheKeyObserved is CacheKey with its computation time recorded into ctx's
// obs registry (engine_stage_seconds{stage="cachekey"}). Key derivation
// hashes the whole program image, so a serving layer keying every request
// wants it on its latency dashboard next to the pipeline stages.
func CacheKeyObserved(ctx context.Context, prog *isa.Program, policy string, cfg cpu.Config, useRef, verify bool) (string, bool) {
	sp := obs.StartSpan(ctx, "engine.cachekey")
	key, ok := CacheKey(prog, policy, cfg, useRef, verify)
	sp.End(obs.OutcomeOK)
	return key, ok
}
