// Package engine owns the Levioso run pipeline as a typed API. Every entry
// point in the repository — the command-line tools under cmd/, the experiment
// harness (internal/harness), and the levserve daemon (internal/serve) — is a
// thin adapter over the same four composable steps:
//
//	Load     — unmarshal a LEV64 binary image
//	Compile  — LevC source (or assembly, via Assemble) → annotated program
//	Simulate — run a program on the out-of-order core under a named policy
//	Verify   — cross-check a run against the functional reference model
//
// Run composes the steps for the common case: a Request names exactly one
// program input (pre-built Program, Binary image, LevC Source, or AsmText),
// a policy, config overrides, and verify/trace/deadline options; the Result
// carries the exit code, console output, statistics, and (when the input was
// compiled) the annotation-pass statistics. Failures are typed
// *simerr.RunError values, so supervisors and servers classify them without
// string matching, and context cancellation is threaded end to end — through
// the core's cooperative RunContext check and through the reference
// interpreter's step loop alike.
//
// Keeping the pipeline behind one seam is what lets the sweep supervisor's
// fault injection, journaling, and retries, and levserve's caching and
// worker-pool bounding, apply uniformly to every entry point instead of
// being re-implemented per main.
package engine

import (
	"context"
	"io"
	"time"

	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/obs"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/simerr"
)

// MaxROBOverride bounds the ROBSize override: larger windows than this are
// configuration mistakes (the physical register file would dwarf memory),
// and the bound keeps flag parsing and JSON decoding rejecting them
// identically.
const MaxROBOverride = 1 << 14

// Overrides is the common run-option surface every entry point shares: the
// policy and the config overrides a caller may apply on top of a core
// configuration. cli flag parsing and levserve JSON decoding both funnel
// through Normalize, so bounds checks and defaults live in exactly one
// place and a request rejected on the command line is rejected identically
// over HTTP.
type Overrides struct {
	// Policy is the secure-speculation policy spec (see Policies and
	// secure.Resolve): a name, optionally with parameters —
	// "tunable:level=ctrl". Empty means the registry baseline; Normalize
	// canonicalizes.
	Policy string
	// Params are out-of-band policy parameters merged over any inline in
	// Policy (explicit map wins). Normalize folds them into the canonical
	// Policy spec and clears the map.
	Params map[string]string
	// ROBSize, when positive, overrides the ROB size (the physical register
	// file is widened to match if needed). Bounded by MaxROBOverride.
	ROBSize int
	// MaxCycles, when positive, overrides the cycle limit.
	MaxCycles uint64
	// Deadline bounds the run's wall-clock time (0 = none). Expiry
	// surfaces as simerr.ErrDeadline, classified transient.
	Deadline time.Duration
}

// Normalize applies defaults and validates bounds, returning a typed
// KindBuild error on anything out of range: negative or oversized ROB
// overrides, negative deadlines, unknown policy specs. The policy spec and
// any out-of-band Params are resolved against the registry (the single
// unknown-policy check in the system — secure.Resolve formats the error) and
// replaced by the canonical spec string, so caches, logs, and stats keys
// downstream all see one spelling per configuration. Run normalizes its
// request itself, so direct callers may skip this; cli and serve call it
// eagerly to reject bad requests before any work happens.
func (o *Overrides) Normalize() error {
	if o.Policy == "" {
		o.Policy = secure.BaselineName()
	}
	spec, err := secure.Resolve(o.Policy, o.Params)
	if err != nil {
		return &simerr.RunError{Kind: simerr.KindBuild, Detail: "policy", Err: err}
	}
	o.Policy = spec.String()
	o.Params = nil
	if o.ROBSize < 0 || o.ROBSize > MaxROBOverride {
		return simerr.New(simerr.KindBuild, "engine: ROB override %d out of range [0, %d]", o.ROBSize, MaxROBOverride)
	}
	if o.Deadline < 0 {
		return simerr.New(simerr.KindBuild, "engine: negative deadline %v", o.Deadline)
	}
	return nil
}

// Request describes one pipeline invocation. Exactly one program input —
// Program, Binary, Source, or AsmText — must be set. The embedded Overrides
// carry the policy and config-override knobs shared by every entry point.
type Request struct {
	// Name labels the program in diagnostics and cache keys (typically the
	// input file or workload name). Defaults to "prog".
	Name string

	// Program is a pre-built program (the harness path: built once, shared
	// by many concurrent runs; a built *isa.Program is immutable during
	// simulation).
	Program *isa.Program
	// Binary is a LEV64 binary image to Load.
	Binary []byte
	// Source is LevC source to Compile.
	Source string
	// AsmText is LEV64 assembly to Assemble.
	AsmText string

	// NoAnnotate skips the Levioso annotation pass for Source/AsmText
	// inputs (Binary and Program inputs carry whatever annotations they
	// were built with).
	NoAnnotate bool

	// Overrides is the shared option surface: policy, ROB/cycle-limit
	// overrides, wall-clock deadline. See Overrides.Normalize.
	Overrides

	// Config, when non-nil, replaces the default core configuration.
	// The Overrides apply on top of it either way.
	Config *cpu.Config
	// Trace, when non-nil, receives the per-commit pipeline trace (slow).
	Trace io.Writer

	// UseRef runs the program on the functional reference model instead of
	// the out-of-order core (no policy, no Stats).
	UseRef bool
	// Verify cross-checks the core run against the reference model and
	// fails with simerr.KindDivergence on mismatch.
	Verify bool
	// Want, when non-nil and Verify is set, is the precomputed reference
	// result to check against (the harness computes it once per workload
	// and shares it across policy cells). Nil means Run computes it.
	Want *ref.Result
}

// name returns the diagnostic label for the request.
func (r *Request) name() string {
	if r.Name != "" {
		return r.Name
	}
	return "prog"
}

// BuildConfig resolves the request's effective core configuration: the
// explicit Config (or the engine default) with the common overrides applied.
func (r *Request) BuildConfig() cpu.Config {
	cfg := cpu.DefaultConfig()
	if r.Config != nil {
		cfg = *r.Config
	}
	if r.MaxCycles > 0 {
		cfg.MaxCycles = r.MaxCycles
	}
	if r.Trace != nil {
		cfg.Trace = r.Trace
	}
	if r.ROBSize > 0 {
		cfg.ROBSize = r.ROBSize
		if cfg.NumPhysRegs < 32+r.ROBSize {
			cfg.NumPhysRegs = 32 + r.ROBSize + 64
		}
	}
	return cfg
}

// Result summarizes a completed pipeline run.
type Result struct {
	ExitCode uint64
	Output   string
	// Stats is the core's run statistics (zero when Ref).
	Stats cpu.Stats
	// Ref marks a run executed on the functional reference model.
	Ref bool
	// RefInsts is the dynamic instruction count of a reference run.
	RefInsts uint64
	// Annotation carries the Levioso pass statistics when the request's
	// input was compiled or assembled with annotation.
	Annotation *core.AnnotateStats
	// Cached marks a result served from a cache above the engine (levserve
	// sets it; Run never does).
	Cached bool
}

// ExitStatus funnels the program's exit code into a shell exit status.
func (r *Result) ExitStatus() int { return int(r.ExitCode) & 0x7f }

// Run executes the whole pipeline for one request: normalize the option
// surface, resolve the program input (Load/Compile/Assemble), then either a
// reference run (UseRef) or a core simulation under the named policy, then
// the optional reference cross-check. All failures are typed
// *simerr.RunError values.
//
// Every stage records a duration/outcome observation into the obs registry
// carried by ctx (obs.Default when none): the engine_stage_seconds histogram
// family with stage ∈ {load, compile, assemble, annotate, simulate,
// reference, verify} and outcome "ok" or the failure kind, plus the
// engine_runs_total counter. Instrumentation is per stage, never per
// instruction, so its cost is amortized over entire simulations.
func Run(ctx context.Context, req Request) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		obs.FromContext(ctx).CounterVec("engine_runs_total",
			"completed engine pipeline runs by outcome", "outcome").
			With(outcomeOf(err)).Inc()
	}()
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	prog, annot, err := Resolve(ctx, &req)
	if err != nil {
		return nil, err
	}
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	if req.UseRef {
		sp := obs.StartSpan(ctx, "engine.reference")
		rres, err := Reference(ctx, prog, ref.Limits{})
		sp.End(outcomeOf(err))
		if err != nil {
			return nil, err
		}
		return &Result{
			ExitCode: rres.ExitCode, Output: rres.Output,
			Ref: true, RefInsts: rres.Insts, Annotation: annot,
		}, nil
	}
	sp := obs.StartSpan(ctx, "engine.simulate")
	sres, err := Simulate(ctx, prog, req.BuildConfig(), req.Policy)
	sp.End(outcomeOf(err))
	if err != nil {
		return nil, err
	}
	if req.Verify {
		want := req.Want
		if want == nil {
			// Reference classifies its own failures (deadline, instruction
			// limit, architectural fault) — pass them through rather than
			// re-wrapping, so a deadline stays KindDeadline for the caller.
			rsp := obs.StartSpan(ctx, "engine.reference")
			w, err := Reference(ctx, prog, ref.Limits{})
			rsp.End(outcomeOf(err))
			if err != nil {
				return nil, err
			}
			want = &w
		}
		vsp := obs.StartSpan(ctx, "engine.verify")
		err := VerifyAgainst(sres.ExitCode, sres.Output, *want)
		vsp.End(outcomeOf(err))
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		ExitCode: sres.ExitCode, Output: sres.Output,
		Stats: sres.Stats, Annotation: annot,
	}, nil
}

// outcomeOf maps a stage result onto its span outcome label: "ok" or the
// typed failure kind.
func outcomeOf(err error) string {
	if err == nil {
		return obs.OutcomeOK
	}
	return simerr.KindOf(err).String()
}

// Policies lists every secure-speculation policy family name, baseline first.
func Policies() []string { return secure.Names() }

// EvalPolicies lists the policies in the headline evaluation, in
// presentation order.
func EvalPolicies() []string { return secure.EvalNames() }

// SweepPolicies lists one canonical spec per distinct policy configuration:
// every family, parameterized families at every parameter value.
func SweepPolicies() []string { return secure.SweepSpecs() }

// PolicyUsage is the one-line flag/help text for the policy option,
// generated from the registry.
func PolicyUsage() string { return secure.FlagUsage() }

// BaselinePolicy is the registry's designated baseline (the unprotected
// core), used as the flag default and the overhead denominator.
func BaselinePolicy() string { return secure.BaselineName() }
