package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/ref"
	"levioso/internal/simerr"
)

// histSrc is a small branchy kernel: deterministic output, real annotations.
const histSrc = `
var h[16];
func main() {
	var i;
	var s = 7;
	for (i = 0; i < 400; i = i + 1) {
		s = s * 1103515245 + 12345;
		var k = (s >> 16) & 15;
		if (h[k] < 9) { h[k] = h[k] + 1; }
	}
	var acc = 0;
	for (i = 0; i < 16; i = i + 1) { acc = acc + h[i]; }
	print(acc);
	return acc & 255;
}`

// spinSrc runs long enough for deadline/cancellation tests to interrupt it.
const spinSrc = `
func main() {
	var i;
	var s = 1;
	for (i = 0; i < 200000000; i = i + 1) { s = s + i; }
	return 0;
}`

func TestRunFromSourceVerified(t *testing.T) {
	for _, pol := range []string{"unsafe", "levioso"} {
		res, err := Run(context.Background(), Request{
			Name: "hist.lc", Source: histSrc, Verify: true,
			Overrides: Overrides{Policy: pol},
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Output == "" || res.Stats.Committed == 0 {
			t.Fatalf("%s: empty result: %+v", pol, res)
		}
		if res.Annotation == nil || res.Annotation.Branches == 0 {
			t.Fatalf("%s: compiled run carries no annotation stats", pol)
		}
	}
}

func TestRunBinaryMatchesSource(t *testing.T) {
	prog, _, err := Compile("hist.lc", histSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	img, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromSrc, err := Run(context.Background(), Request{Source: histSrc, Overrides: Overrides{Policy: "levioso"}})
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Run(context.Background(), Request{Binary: img, Overrides: Overrides{Policy: "levioso"}})
	if err != nil {
		t.Fatal(err)
	}
	if fromSrc.ExitCode != fromBin.ExitCode || fromSrc.Output != fromBin.Output ||
		fromSrc.Stats != fromBin.Stats {
		t.Fatalf("binary round-trip diverges from source run:\n src=%+v\n bin=%+v", fromSrc, fromBin)
	}
}

func TestRunReferenceModel(t *testing.T) {
	sim, err := Run(context.Background(), Request{Source: histSrc})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := Run(context.Background(), Request{Source: histSrc, UseRef: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Ref || rres.RefInsts == 0 {
		t.Fatalf("reference run not marked: %+v", rres)
	}
	if rres.ExitCode != sim.ExitCode || rres.Output != sim.Output {
		t.Fatalf("ref/core mismatch: ref=%+v core=%+v", rres, sim)
	}
}

func TestResolveRejectsBadInputCounts(t *testing.T) {
	for _, req := range []Request{
		{},                                   // no input
		{Source: histSrc, Binary: []byte{1}}, // two inputs
	} {
		if _, _, err := Resolve(context.Background(), &req); !errors.Is(err, simerr.ErrBuild) {
			t.Fatalf("want typed build error, got %v", err)
		}
	}
}

func TestSimulateUnknownPolicy(t *testing.T) {
	prog, _, err := Compile("hist.lc", histSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Simulate(context.Background(), prog, cpu.DefaultConfig(), "nonesuch")
	if !errors.Is(err, simerr.ErrBuild) {
		t.Fatalf("want build error for unknown policy, got %v", err)
	}
}

func TestRunDeadline(t *testing.T) {
	_, err := Run(context.Background(), Request{
		Source: spinSrc, Overrides: Overrides{Deadline: 10 * time.Millisecond},
	})
	if !errors.Is(err, simerr.ErrDeadline) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestReferenceCancellation(t *testing.T) {
	prog, _, err := Compile("spin.lc", spinSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := Reference(ctx, prog, ref.Limits{}); !errors.Is(err, simerr.ErrDeadline) {
		t.Fatalf("want deadline error from reference run, got %v", err)
	}
}

func TestVerifyAgainst(t *testing.T) {
	want := ref.Result{ExitCode: 3, Output: "ok"}
	if err := VerifyAgainst(3, "ok", want); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainst(3, "bad", want); !errors.Is(err, simerr.ErrDivergence) {
		t.Fatalf("want divergence, got %v", err)
	}
}

func TestCacheKey(t *testing.T) {
	prog, _, err := Compile("hist.lc", histSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	k1, ok := CacheKey(prog, "levioso", cfg, false, false)
	if !ok || k1 == "" {
		t.Fatal("clean config should be cacheable")
	}
	k2, ok := CacheKey(prog, "levioso", cfg, false, false)
	if !ok || k2 != k1 {
		t.Fatalf("key not stable: %s vs %s", k1, k2)
	}
	if k3, _ := CacheKey(prog, "delay", cfg, false, false); k3 == k1 {
		t.Fatal("policy not keyed")
	}
	cfg2 := cfg
	cfg2.ROBSize = 96
	if k4, _ := CacheKey(prog, "levioso", cfg2, false, false); k4 == k1 {
		t.Fatal("config not keyed")
	}
	if k5, _ := CacheKey(prog, "levioso", cfg, true, false); k5 == k1 {
		t.Fatal("run mode not keyed")
	}
	hooked := cfg
	hooked.CommitStall = func(uint64) bool { return false }
	if _, ok := CacheKey(prog, "levioso", hooked, false, false); ok {
		t.Fatal("hooked config must not be cacheable")
	}
}

func TestBuildConfigOverrides(t *testing.T) {
	req := Request{Overrides: Overrides{ROBSize: 320, MaxCycles: 1234}}
	cfg := req.BuildConfig()
	if cfg.ROBSize != 320 || cfg.MaxCycles != 1234 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.NumPhysRegs < 32+320 {
		t.Fatalf("phys regs not widened for ROB: %d", cfg.NumPhysRegs)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
