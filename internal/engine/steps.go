package engine

import (
	"context"
	"fmt"
	"runtime/debug"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/lang"
	"levioso/internal/obs"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/simerr"
)

// buildErr wraps a pre-simulation failure into the typed taxonomy.
func buildErr(name, stage string, err error) *simerr.RunError {
	return &simerr.RunError{
		Kind:   simerr.KindBuild,
		Detail: fmt.Sprintf("%s: %s", name, stage),
		Err:    err,
	}
}

// Resolve materializes the request's program input. Exactly one of Program,
// Binary, Source, AsmText must be set; anything else is a typed build error.
// The annotation statistics are non-nil only when Resolve ran the Levioso
// pass (Source/AsmText inputs without NoAnnotate). Each build stage it runs
// (load, compile, assemble, annotate) records a span into ctx's obs
// registry; pre-built Program inputs record nothing.
func Resolve(ctx context.Context, req *Request) (*isa.Program, *core.AnnotateStats, error) {
	n := 0
	if req.Program != nil {
		n++
	}
	if req.Binary != nil {
		n++
	}
	if req.Source != "" {
		n++
	}
	if req.AsmText != "" {
		n++
	}
	if n != 1 {
		return nil, nil, buildErr(req.name(), "request",
			fmt.Errorf("engine: want exactly one program input (Program, Binary, Source, AsmText), got %d", n))
	}
	switch {
	case req.Program != nil:
		return req.Program, nil, nil
	case req.Binary != nil:
		sp := obs.StartSpan(ctx, "engine.load")
		prog, err := Load(req.name(), req.Binary)
		sp.End(outcomeOf(err))
		return prog, nil, err
	case req.Source != "":
		sp := obs.StartSpan(ctx, "engine.compile")
		text, err := lang.CompileToAsm(req.name(), req.Source)
		sp.End(outcomeOf(err))
		if err != nil {
			return nil, nil, buildErr(req.name(), "compile", err)
		}
		return assembleStaged(ctx, req, req.name()+".s", "internal: generated assembly rejected", text)
	default:
		return assembleStaged(ctx, req, req.name(), "assemble", req.AsmText)
	}
}

// assembleStaged runs the assemble and (optionally) annotate stages with
// span instrumentation — the tail both Source and AsmText inputs share.
func assembleStaged(ctx context.Context, req *Request, file, stage, text string) (*isa.Program, *core.AnnotateStats, error) {
	sp := obs.StartSpan(ctx, "engine.assemble")
	prog, err := asm.Assemble(file, text)
	sp.End(outcomeOf(err))
	if err != nil {
		return nil, nil, buildErr(req.name(), stage, err)
	}
	if req.NoAnnotate {
		return prog, nil, nil
	}
	asp := obs.StartSpan(ctx, "engine.annotate")
	prog, annot, err := annotateProg(req.name(), prog, true)
	asp.End(outcomeOf(err))
	return prog, annot, err
}

// Load unmarshals a LEV64 binary image.
func Load(name string, img []byte) (*isa.Program, error) {
	prog := new(isa.Program)
	if err := prog.UnmarshalBinary(img); err != nil {
		return nil, buildErr(name, "load", err)
	}
	return prog, nil
}

// EmitAsm compiles LevC source to LEV64 assembly text (the levc -S path).
func EmitAsm(name, src string) (string, error) {
	text, err := lang.CompileToAsm(name, src)
	if err != nil {
		return "", buildErr(name, "compile", err)
	}
	return text, nil
}

// Compile compiles LevC source into an executable program image, optionally
// running the Levioso annotation pass (the statistics are returned when it
// ran). This is the same pipeline lang.Compile and the workload suite use.
func Compile(name, src string, annotate bool) (*isa.Program, *core.AnnotateStats, error) {
	text, err := lang.CompileToAsm(name, src)
	if err != nil {
		return nil, nil, buildErr(name, "compile", err)
	}
	prog, err := asm.Assemble(name+".s", text)
	if err != nil {
		return nil, nil, buildErr(name, "internal: generated assembly rejected", err)
	}
	return annotateProg(name, prog, annotate)
}

// Assemble assembles LEV64 assembly into a program image, optionally running
// the Levioso annotation pass (hand-written assembly benefits from the same
// reconvergence analysis as compiled code).
func Assemble(name, src string, annotate bool) (*isa.Program, *core.AnnotateStats, error) {
	prog, err := asm.Assemble(name, src)
	if err != nil {
		return nil, nil, buildErr(name, "assemble", err)
	}
	return annotateProg(name, prog, annotate)
}

func annotateProg(name string, prog *isa.Program, annotate bool) (*isa.Program, *core.AnnotateStats, error) {
	if !annotate {
		return prog, nil, nil
	}
	st, err := core.Annotate(prog)
	if err != nil {
		return nil, nil, buildErr(name, "annotate", err)
	}
	return prog, &st, nil
}

// Annotate runs the Levioso annotation pass on an already-built program and
// returns the pass statistics (the compiler-statistics experiment re-runs it
// on workload builds to measure the pass itself).
func Annotate(prog *isa.Program) (core.AnnotateStats, error) {
	st, err := core.Annotate(prog)
	if err != nil {
		return core.AnnotateStats{}, buildErr("prog", "annotate", err)
	}
	return st, nil
}

// Listing disassembles a program image (levc -l, levas -l, levdump).
func Listing(prog *isa.Program) string { return asm.Listing(prog) }

// Simulate runs prog on the out-of-order core under the named policy. A
// panic anywhere inside — the core, a policy, an injected fault — is
// recovered into simerr.ErrPanic, so one bad run cannot take down a sweep
// supervisor or a serving daemon. Unknown policies and invalid
// configurations surface as simerr.KindBuild.
func Simulate(ctx context.Context, prog *isa.Program, cfg cpu.Config, policy string) (res cpu.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &simerr.RunError{
				Kind:   simerr.KindPanic,
				Detail: fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	pol, err := secure.New(policy)
	if err != nil {
		return cpu.Result{}, &simerr.RunError{Kind: simerr.KindBuild, Detail: "policy", Err: err}
	}
	c, err := cpu.New(prog, cfg, pol)
	if err != nil {
		return cpu.Result{}, &simerr.RunError{Kind: simerr.KindBuild, Detail: "core construction failed", Err: err}
	}
	return c.RunContext(ctx)
}

// Reference runs prog on the functional reference interpreter with
// cooperative context cancellation (checked every few thousand
// instructions), mirroring the core's RunContext contract: expiry surfaces
// as simerr.ErrDeadline, the instruction limit as simerr.ErrInstLimit, and
// an architectural fault (bad PC, out-of-range or misaligned access) as
// simerr.ErrMemFault — every failure is a typed *simerr.RunError, so fuzzing
// oracles and supervisors never have to string-match reference errors.
func Reference(ctx context.Context, prog *isa.Program, lim ref.Limits) (ref.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m := ref.New(prog)
	max := lim.MaxInsts
	if max == 0 {
		max = ref.DefaultMaxInsts
	}
	const checkMask = 1<<14 - 1
	for !m.Halted() {
		if m.Insts() >= max {
			return ref.Result{}, &simerr.RunError{
				Kind: simerr.KindInstLimit, PC: m.PC,
				Detail: fmt.Sprintf("ref: instruction limit %d exceeded", max),
			}
		}
		if err := m.Step(); err != nil {
			return ref.Result{}, &simerr.RunError{
				Kind: simerr.KindMemFault, PC: m.PC,
				Detail: "reference step faulted", Err: err,
			}
		}
		if m.Insts()&checkMask == 0 {
			select {
			case <-ctx.Done():
				return ref.Result{}, &simerr.RunError{
					Kind: simerr.KindDeadline, PC: m.PC, Err: ctx.Err(),
				}
			default:
			}
		}
	}
	return ref.Result{
		ExitCode: m.ExitCode(), Output: m.Output(),
		Insts: m.Insts(), Regs: m.Regs,
	}, nil
}

// VerifyAgainst cross-checks a core run's architectural outcome (exit code
// and console output) against a reference result, failing with a typed
// divergence error on mismatch.
func VerifyAgainst(exit uint64, output string, want ref.Result) error {
	if exit != want.ExitCode || output != want.Output {
		return &simerr.RunError{
			Kind: simerr.KindDivergence,
			Detail: fmt.Sprintf("got exit %d output %q, want %d %q",
				exit, output, want.ExitCode, want.Output),
		}
	}
	return nil
}
