package engine

import (
	"context"
	"errors"
	"testing"

	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
	"levioso/internal/simerr"
)

// Every malformed input, whatever the entry path, must surface as a typed
// *simerr.RunError of the build class — supervisors, levserve's status
// mapping and the fuzz oracles all classify on the kind, never on strings.
func TestMalformedInputsAreTypedBuildErrors(t *testing.T) {
	good, _, err := Compile("hist.lc", histSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	img, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  Request
	}{
		{"no input", Request{}},
		{"two inputs", Request{Source: histSrc, AsmText: "main:\n\thalt zero\n"}},
		{"bad magic", Request{Binary: []byte("NOTLEV\x00 not a binary")}},
		{"truncated binary", Request{Binary: img[:len(img)/2]}},
		{"asm syntax error", Request{AsmText: "main:\n\tbogus t0, t1\n"}},
		{"levc syntax error", Request{Source: "func main( {"}},
		{"unknown policy", Request{Source: histSrc, Overrides: Overrides{Policy: "nonesuch"}}},
		{"invalid config", Request{Source: histSrc, Config: &cpu.Config{ROBSize: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), tc.req)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			var re *simerr.RunError
			if !errors.As(err, &re) {
				t.Fatalf("untyped error: %v", err)
			}
			if re.Kind != simerr.KindBuild {
				t.Fatalf("kind %v, want build (%v)", re.Kind, err)
			}
		})
	}
}

// A reference-model instruction limit is a limits-class failure, not a build
// failure: the program was fine, the budget was not.
func TestReferenceInstLimitTyped(t *testing.T) {
	prog, _, err := Compile("hist.lc", histSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reference(context.Background(), prog, ref.Limits{MaxInsts: 16})
	if !errors.Is(err, simerr.ErrInstLimit) {
		t.Fatalf("want instruction-limit error, got %v", err)
	}
	if !simerr.IsLimit(err) {
		t.Fatalf("IsLimit(%v) = false", err)
	}
}

// Execution running off the end of text is an architectural memory fault.
func TestReferenceRunOffTextTyped(t *testing.T) {
	prog := &isa.Program{
		Text:  []isa.Inst{{Op: isa.ADDI, Rd: isa.Reg(5), Imm: 1}}, // no halt
		Entry: isa.TextBase,
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := Reference(context.Background(), prog, ref.Limits{})
	if !errors.Is(err, simerr.ErrMemFault) {
		t.Fatalf("want memory-fault error, got %v", err)
	}
}
