// Package fuzz is the differential fuzzing subsystem: a seeded random
// program generator over the LEV64 ISA, a stack of correctness and security
// oracles run over every generated program under every registered policy, a
// delta-debugging shrinker that reduces failures to minimal repros, and a
// crash-safe corpus that persists them.
//
// The generator is deliberately constrained so that every generated program
// is *architecturally boring*: it terminates (forward branches and counted,
// non-nested loops only), never faults (memory operands are masked into the
// data segment with natural alignment), and never reads the cycle counter
// (RDCYCLE would make output legitimately diverge between the core and the
// reference model). Within those constraints it is free to be
// microarchitecturally vicious — that is the point: any divergence the
// oracles observe is a simulator bug, never a generator artifact.
//
// Register discipline: x3 (gp) holds the data base and is never written;
// x31 is the address-masking scratch; x30 is the loop counter; x5 is the
// pointer-chase pointer; x6..x29 are general value registers.
package fuzz

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"

	"levioso/internal/core"
	"levioso/internal/engine"
	"levioso/internal/isa"
)

// Profile selects a generation strategy: which instruction mix the random
// programs are weighted toward.
type Profile string

const (
	// ProfileBranchStorm is dense data-dependent control flow: deep
	// speculation, frequent mispredicts, recovery storms.
	ProfileBranchStorm Profile = "branch-storm"
	// ProfilePointerChase is serially-dependent loads walking a pointer
	// chain through the data segment: long load shadows for policies to
	// stall in.
	ProfilePointerChase Profile = "pointer-chase"
	// ProfileStoreLoad is store→load aliasing bursts over a small scratch
	// region: forwarding, partial overlaps, memory-order squashes.
	ProfileStoreLoad Profile = "store-load"
	// ProfileDivPressure serializes on the single unpipelined divider,
	// including divides under unresolved branches (wrong-path divides must
	// release the unit on squash).
	ProfileDivPressure Profile = "div-pressure"
	// ProfileWildAddr manufactures wrong-path memory accesses at wild
	// addresses — just below 2^64 (where addr+size wraps), exactly at and
	// just past isa.MemLimit, and straddling the limit — behind
	// late-resolving, architecturally always-taken guards. The shadows run
	// only transiently, so the reference run stays clean while the core's
	// wrong-path memory model (bounds checks, store-load disambiguation,
	// invisible-load bookkeeping) is exercised at the exact addresses the
	// historical uint64-wrap bugs corrupted.
	ProfileWildAddr Profile = "wild-addr"
	// ProfileGadget generates randomized Spectre-V1-shaped attack programs
	// (train/flush/transient-access/probe) with a planted secret; the
	// security oracle checks that covering policies keep the probe blind.
	ProfileGadget Profile = "gadget"
)

// Profiles lists every generation profile.
func Profiles() []Profile {
	return []Profile{ProfileBranchStorm, ProfilePointerChase, ProfileStoreLoad, ProfileDivPressure, ProfileWildAddr, ProfileGadget}
}

// ParseProfiles parses a comma-separated profile list ("" or "all" selects
// every profile).
func ParseProfiles(s string) ([]Profile, error) {
	if s == "" || s == "all" {
		return Profiles(), nil
	}
	var out []Profile
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for _, p := range Profiles() {
			if part == string(p) {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fuzz: unknown profile %q (have %v)", part, Profiles())
		}
	}
	if len(out) == 0 {
		return Profiles(), nil
	}
	return out, nil
}

// Case is one generated fuzz input: the program plus the metadata the
// oracles need to judge it.
type Case struct {
	Seed    uint64
	Index   int
	Profile Profile
	Prog    *isa.Program
	// TimingDep marks programs whose architectural output legitimately
	// depends on microarchitectural timing (the gadget profile reads
	// RDCYCLE): the differential and retired-count oracles are skipped,
	// the determinism, invariants and security oracles still apply.
	TimingDep bool
	// Secret is the planted secret byte of a gadget case (zero otherwise).
	Secret byte
}

// CaseSeed derives the per-case seed from the session seed and case index
// (splitmix64 finalizer: consecutive indices give uncorrelated streams).
func CaseSeed(base uint64, index int) uint64 {
	z := base + uint64(index)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Generate builds the case for (profile, seed). Generation is fully
// deterministic in its arguments.
func Generate(profile Profile, seed uint64, index int) (*Case, error) {
	rng := rand.New(rand.NewSource(int64(seed)))
	c := &Case{Seed: seed, Index: index, Profile: profile}
	var err error
	switch profile {
	case ProfileGadget:
		c.TimingDep = true
		c.Prog, c.Secret, err = genGadget(rng)
	case ProfileBranchStorm, ProfilePointerChase, ProfileStoreLoad, ProfileDivPressure, ProfileWildAddr:
		c.Prog, err = genRandom(profile, rng)
	default:
		return nil, fmt.Errorf("fuzz: unknown profile %q", profile)
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: generate %s seed=%#x: %w", profile, seed, err)
	}
	return c, nil
}

// Name returns the case's stable diagnostic label.
func (c *Case) Name() string {
	return fmt.Sprintf("fuzz-%s-%06d", c.Profile, c.Index)
}

// ---------------------------------------------------------- random profiles

const (
	genDataLen     = 4096 // data segment size
	genScratchBase = 2048 // stores land in [genScratchBase, genDataLen)
	genChainSlots  = 256  // pointer-chase chain occupies [0, genScratchBase)

	regAddr  = isa.Reg(31) // address-masking scratch
	regCnt   = isa.Reg(30) // loop counter
	regChase = isa.Reg(5)  // pointer-chase pointer
)

// valueReg picks a general value register (x6..x29): never gp, the address
// scratch, the loop counter, or the chase pointer, so the generator's
// structural invariants survive any interleaving of blocks.
func (g *progGen) valueReg() isa.Reg { return isa.Reg(6 + g.rng.Intn(24)) }

type blockKind int

const (
	bALU blockKind = iota
	bALUImm
	bLoad      // masked random-address load (3 insts)
	bStore     // masked random-address store into scratch (4 insts)
	bStoreLoad // aliasing burst over one scratch slot
	bBranch    // forward conditional branch over a shadow
	bLoop      // counted, non-nested loop
	bDiv       // chained divider ops
	bJal       // forward unconditional jump
	bCflush    // cache-line evict (a transmitter)
	bFence
	bPut   // console output (differential signal)
	bChase // pointer-chase step(s)
	bWild  // transient window of wild-address loads/stores
	numBlockKinds
)

var profileWeights = map[Profile][numBlockKinds]int{
	ProfileBranchStorm:  {bALU: 4, bALUImm: 4, bLoad: 2, bStore: 1, bStoreLoad: 1, bBranch: 9, bLoop: 3, bDiv: 1, bJal: 2, bCflush: 1, bFence: 1, bPut: 2},
	ProfilePointerChase: {bALU: 2, bALUImm: 2, bLoad: 3, bStore: 1, bStoreLoad: 1, bBranch: 2, bLoop: 2, bDiv: 1, bJal: 1, bCflush: 2, bFence: 1, bPut: 2, bChase: 9},
	ProfileStoreLoad:    {bALU: 2, bALUImm: 2, bLoad: 3, bStore: 3, bStoreLoad: 9, bBranch: 2, bLoop: 2, bDiv: 1, bJal: 1, bCflush: 1, bFence: 1, bPut: 2},
	ProfileDivPressure:  {bALU: 2, bALUImm: 2, bLoad: 1, bStore: 1, bStoreLoad: 1, bBranch: 5, bLoop: 2, bDiv: 9, bJal: 1, bCflush: 1, bFence: 1, bPut: 2},
	ProfileWildAddr:     {bALU: 2, bALUImm: 2, bLoad: 2, bStore: 1, bStoreLoad: 2, bBranch: 3, bLoop: 2, bDiv: 1, bJal: 1, bCflush: 2, bFence: 1, bPut: 2, bWild: 9},
}

var (
	aluOps    = []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU, isa.MUL, isa.MULH}
	aluImmOps = []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI, isa.SLTIU}
	divOps    = []isa.Op{isa.DIV, isa.DIVU, isa.REM, isa.REMU}
	loadOps   = []isa.Op{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
	storeOps  = []isa.Op{isa.SB, isa.SH, isa.SW, isa.SD}
	branchOps = []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
)

type progGen struct {
	rng     *rand.Rand
	prof    Profile
	weights [numBlockKinds]int
	text    []isa.Inst
	data    []byte
}

func genRandom(profile Profile, rng *rand.Rand) (*isa.Program, error) {
	g := &progGen{rng: rng, prof: profile, weights: profileWeights[profile]}
	g.initData()
	g.prologue()
	for n := 14 + rng.Intn(24); n > 0; n-- {
		g.emitBlock()
	}
	g.epilogue()

	prog := &isa.Program{
		Text:    g.text,
		Data:    g.data,
		Entry:   isa.TextBase,
		Symbols: map[string]uint64{},
		Hints:   map[uint64]isa.BranchHint{},
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if _, err := core.Annotate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (g *progGen) emit(in isa.Inst) { g.text = append(g.text, in) }

// initData fills the data segment: pseudo-random bytes everywhere, and for
// the pointer-chase profile a closed permutation chain of absolute data
// addresses over the first genChainSlots 8-byte slots (so a chase load
// always yields another valid chain address — stores are masked into the
// scratch half and can never corrupt the chain).
func (g *progGen) initData() {
	g.data = make([]byte, genDataLen)
	g.rng.Read(g.data)
	if g.prof == ProfilePointerChase {
		perm := g.rng.Perm(genChainSlots)
		for i, p := range perm {
			binary.LittleEndian.PutUint64(g.data[i*8:], isa.DataBase+uint64(p)*8)
		}
	}
}

// prologue seeds a spread of value registers with varied 64-bit constants
// and initializes the chase pointer.
func (g *progGen) prologue() {
	for n := 8 + g.rng.Intn(5); n > 0; n-- {
		r := g.valueReg()
		switch g.rng.Intn(3) {
		case 0:
			g.emit(isa.Inst{Op: isa.ADDI, Rd: r, Rs1: isa.RegZero, Imm: int64(g.rng.Intn(4096) - 2048)})
		case 1:
			g.emit(isa.Inst{Op: isa.LUI, Rd: r, Imm: int64(g.rng.Intn(1<<20) - 1<<19)})
			g.emit(isa.Inst{Op: isa.ORI, Rd: r, Rs1: r, Imm: int64(g.rng.Intn(2048))})
		default:
			g.emit(isa.Inst{Op: isa.ADDI, Rd: r, Rs1: isa.RegZero, Imm: int64(g.rng.Intn(4096) - 2048)})
			g.emit(isa.Inst{Op: isa.SLLI, Rd: r, Rs1: r, Imm: int64(1 + g.rng.Intn(31))})
			g.emit(isa.Inst{Op: isa.XORI, Rd: r, Rs1: r, Imm: int64(g.rng.Intn(2048))})
		}
	}
	if g.prof == ProfilePointerChase {
		g.emit(isa.Inst{Op: isa.ADDI, Rd: regChase, Rs1: isa.RegGP, Imm: int64(8 * g.rng.Intn(genChainSlots))})
	}
}

// epilogue makes the architectural state observable (console output is the
// differential signal) and halts with a data-dependent exit code.
func (g *progGen) epilogue() {
	for i := 0; i < 3; i++ {
		g.emit(isa.Inst{Op: isa.PUTI, Rs1: g.valueReg()})
	}
	for i := 0; i < 2; i++ {
		g.emit(isa.Inst{Op: isa.LD, Rd: regAddr, Rs1: isa.RegGP, Imm: int64(8 * g.rng.Intn(genDataLen/8))})
		g.emit(isa.Inst{Op: isa.PUTI, Rs1: regAddr})
	}
	if g.prof == ProfilePointerChase {
		g.emit(isa.Inst{Op: isa.PUTI, Rs1: regChase})
	}
	g.emit(isa.Inst{Op: isa.HALT, Rs1: g.valueReg()})
}

func (g *progGen) pickKind() blockKind {
	total := 0
	for _, w := range g.weights {
		total += w
	}
	n := g.rng.Intn(total)
	for k, w := range g.weights {
		if n < w {
			return blockKind(k)
		}
		n -= w
	}
	return bALU
}

func (g *progGen) emitBlock() {
	switch g.pickKind() {
	case bALU, bALUImm, bDiv, bPut, bFence, bChase:
		g.emit(g.straightInst())
	case bLoad:
		g.emitMaskedLoad()
	case bStore:
		g.emitMaskedStore()
	case bStoreLoad:
		g.emitStoreLoadBurst()
	case bBranch:
		g.emitForwardBranch()
	case bWild:
		g.emitWildWindow()
	case bLoop:
		g.emitLoop()
	case bJal:
		skip := 1 + g.rng.Intn(3)
		g.emit(isa.Inst{Op: isa.JAL, Rd: isa.RegZero, Imm: int64((skip + 1) * isa.InstBytes)})
		for i := 0; i < skip; i++ {
			g.emit(g.straightInst())
		}
	case bCflush:
		g.emit(isa.Inst{Op: isa.CFLUSH, Rs1: isa.RegGP, Imm: int64(64 * g.rng.Intn(genDataLen/64))})
	}
}

// straightInst returns exactly one control-free instruction — branch shadows
// and loop bodies are built from these, so the byte offsets of the enclosing
// branch stay trivially correct.
func (g *progGen) straightInst() isa.Inst {
	// Re-pick within the single-instruction kinds, keeping the profile's
	// relative weights for them.
	for {
		switch k := g.pickKind(); k {
		case bALU:
			return isa.Inst{Op: aluOps[g.rng.Intn(len(aluOps))], Rd: g.valueReg(), Rs1: g.valueReg(), Rs2: g.valueReg()}
		case bALUImm:
			op := aluImmOps[g.rng.Intn(len(aluImmOps))]
			imm := int64(g.rng.Intn(4096) - 2048)
			if op == isa.SLLI || op == isa.SRLI || op == isa.SRAI {
				imm = int64(g.rng.Intn(64))
			}
			return isa.Inst{Op: op, Rd: g.valueReg(), Rs1: g.valueReg(), Imm: imm}
		case bDiv:
			return isa.Inst{Op: divOps[g.rng.Intn(len(divOps))], Rd: g.valueReg(), Rs1: g.valueReg(), Rs2: g.valueReg()}
		case bLoad:
			op := loadOps[g.rng.Intn(len(loadOps))]
			size := op.MemBytes()
			return isa.Inst{Op: op, Rd: g.valueReg(), Rs1: isa.RegGP, Imm: int64(size * g.rng.Intn(genDataLen/size))}
		case bStore:
			op := storeOps[g.rng.Intn(len(storeOps))]
			size := op.MemBytes()
			off := genScratchBase + size*g.rng.Intn((genDataLen-genScratchBase)/size)
			return isa.Inst{Op: op, Rs1: isa.RegGP, Rs2: g.valueReg(), Imm: int64(off)}
		case bCflush:
			return isa.Inst{Op: isa.CFLUSH, Rs1: isa.RegGP, Imm: int64(64 * g.rng.Intn(genDataLen/64))}
		case bFence:
			return isa.Inst{Op: isa.FENCE}
		case bPut:
			return isa.Inst{Op: isa.PUTI, Rs1: g.valueReg()}
		case bChase:
			if g.prof == ProfilePointerChase {
				return isa.Inst{Op: isa.LD, Rd: regChase, Rs1: regChase}
			}
		}
	}
}

// emitMaskedLoad reads a data-dependent — but always in-bounds, always
// aligned — address: mask the value into [0, genDataLen) at the access
// size's alignment, rebase onto gp, load.
func (g *progGen) emitMaskedLoad() {
	op := loadOps[g.rng.Intn(len(loadOps))]
	size := op.MemBytes()
	g.emit(isa.Inst{Op: isa.ANDI, Rd: regAddr, Rs1: g.valueReg(), Imm: int64(genDataLen - size)})
	g.emit(isa.Inst{Op: isa.ADD, Rd: regAddr, Rs1: regAddr, Rs2: isa.RegGP})
	g.emit(isa.Inst{Op: op, Rd: g.valueReg(), Rs1: regAddr})
}

// emitMaskedStore writes a data-dependent address confined to the scratch
// half of the data segment (the ORI sets the scratch bit after the
// alignment-preserving mask), so stores can never corrupt the pointer-chase
// chain in the lower half.
func (g *progGen) emitMaskedStore() {
	op := storeOps[g.rng.Intn(len(storeOps))]
	size := op.MemBytes()
	g.emit(isa.Inst{Op: isa.ANDI, Rd: regAddr, Rs1: g.valueReg(), Imm: int64(genDataLen - genScratchBase - size)})
	g.emit(isa.Inst{Op: isa.ORI, Rd: regAddr, Rs1: regAddr, Imm: int64(genScratchBase)})
	g.emit(isa.Inst{Op: isa.ADD, Rd: regAddr, Rs1: regAddr, Rs2: isa.RegGP})
	g.emit(isa.Inst{Op: op, Rs1: regAddr, Rs2: g.valueReg()})
}

// emitStoreLoadBurst exercises the store queue: a store to one 16-byte
// scratch slot followed (possibly after filler) by a load that fully or
// partially overlaps it — forwarding hits, partial-overlap stalls, and
// same-address replays all come from here.
func (g *progGen) emitStoreLoadBurst() {
	base := int64(genScratchBase + 16*g.rng.Intn((genDataLen-genScratchBase)/16))
	st := storeOps[g.rng.Intn(len(storeOps))]
	g.emit(isa.Inst{Op: st, Rs1: isa.RegGP, Rs2: g.valueReg(), Imm: base})
	for n := g.rng.Intn(3); n > 0; n-- {
		g.emit(isa.Inst{Op: aluOps[g.rng.Intn(len(aluOps))], Rd: g.valueReg(), Rs1: g.valueReg(), Rs2: g.valueReg()})
	}
	type overlap struct {
		op  isa.Op
		off int64
	}
	variants := []overlap{
		{isa.LD, 0}, {isa.LW, 0}, {isa.LW, 4}, {isa.LHU, 2}, {isa.LBU, int64(g.rng.Intn(8))},
	}
	v := variants[g.rng.Intn(len(variants))]
	g.emit(isa.Inst{Op: v.op, Rd: g.valueReg(), Rs1: isa.RegGP, Imm: base + v.off})
}

// emitWildWindow builds a transient wild-address window: an architecturally
// always-taken branch whose condition depends on a (possibly just-evicted)
// load, guarding a shadow of loads and stores at the addresses the
// wrong-path memory model must contain — a few doublewords below 2^64
// (where addr+size wraps), exactly at and just past isa.MemLimit, straddling
// the limit boundary, or an unmasked random register. The guard is always
// taken, so the shadow never commits and the program stays architecturally
// clean under every policy, while mispredicted visits drive the transient
// machinery (bounds checks, store-load disambiguation, invisible loads)
// through exactly the address shapes of the historical uint64-wrap bugs.
func (g *progGen) emitWildWindow() {
	off := int64(8 * g.rng.Intn(genDataLen/8))
	if g.rng.Intn(2) == 0 {
		g.emit(isa.Inst{Op: isa.CFLUSH, Rs1: isa.RegGP, Imm: off &^ 63})
	}
	g.emit(isa.Inst{Op: isa.LD, Rd: regAddr, Rs1: isa.RegGP, Imm: off})
	// v < v is zero for every v, but the core only learns that after the
	// load returns — until then the guard below is unresolved.
	g.emit(isa.Inst{Op: isa.SLTU, Rd: regAddr, Rs1: regAddr, Rs2: regAddr})
	const memLimitShift = 28 // log2(isa.MemLimit)
	wild := g.valueReg()
	var shadow []isa.Inst
	switch g.rng.Intn(4) {
	case 0: // a few doublewords below 2^64
		shadow = append(shadow,
			isa.Inst{Op: isa.ADDI, Rd: wild, Rs1: isa.RegZero, Imm: int64(-8 * (1 + g.rng.Intn(250)))})
	case 1: // exactly at / just past MemLimit
		shadow = append(shadow,
			isa.Inst{Op: isa.ADDI, Rd: wild, Rs1: isa.RegZero, Imm: 1},
			isa.Inst{Op: isa.SLLI, Rd: wild, Rs1: wild, Imm: memLimitShift},
			isa.Inst{Op: isa.ADDI, Rd: wild, Rs1: wild, Imm: int64(8 * g.rng.Intn(256))})
	case 2: // straddling the limit: in-bounds base, out-of-bounds tail
		shadow = append(shadow,
			isa.Inst{Op: isa.ADDI, Rd: wild, Rs1: isa.RegZero, Imm: 1},
			isa.Inst{Op: isa.SLLI, Rd: wild, Rs1: wild, Imm: memLimitShift},
			isa.Inst{Op: isa.ADDI, Rd: wild, Rs1: wild, Imm: -4})
	default:
		// Unmasked random register: whatever wild value the program has
		// computed so far becomes a wrong-path pointer.
	}
	for n := 1 + g.rng.Intn(2); n > 0; n-- {
		if g.rng.Intn(2) == 0 {
			shadow = append(shadow, isa.Inst{Op: isa.LD, Rd: g.valueReg(), Rs1: wild, Imm: int64(8 * g.rng.Intn(4))})
		} else {
			shadow = append(shadow, isa.Inst{Op: isa.SD, Rs1: wild, Rs2: g.valueReg(), Imm: int64(8 * g.rng.Intn(4))})
		}
	}
	g.emit(isa.Inst{Op: isa.BEQ, Rs1: regAddr, Rs2: isa.RegZero, Imm: int64((len(shadow) + 1) * isa.InstBytes)})
	for _, in := range shadow {
		g.emit(in)
	}
}

// emitForwardBranch emits a data-dependent conditional branch over a short
// straight-line shadow: the shadow is the transient window the policies must
// police, and the data-dependent condition keeps the predictor honest.
func (g *progGen) emitForwardBranch() {
	op := branchOps[g.rng.Intn(len(branchOps))]
	rs2 := g.valueReg()
	if g.rng.Intn(3) == 0 {
		rs2 = isa.RegZero
	}
	skip := 1 + g.rng.Intn(4)
	g.emit(isa.Inst{Op: op, Rs1: g.valueReg(), Rs2: rs2, Imm: int64((skip + 1) * isa.InstBytes)})
	for i := 0; i < skip; i++ {
		g.emit(g.straightInst())
	}
}

// emitLoop emits a counted loop on the dedicated counter register. Loops
// never nest (the body is straight-line), so termination is structural.
func (g *progGen) emitLoop() {
	n := 1 + g.rng.Intn(10)
	g.emit(isa.Inst{Op: isa.ADDI, Rd: regCnt, Rs1: isa.RegZero, Imm: int64(n)})
	body := 2 + g.rng.Intn(5)
	for i := 0; i < body; i++ {
		g.emit(g.straightInst())
	}
	g.emit(isa.Inst{Op: isa.ADDI, Rd: regCnt, Rs1: regCnt, Imm: -1})
	g.emit(isa.Inst{Op: isa.BNE, Rs1: regCnt, Rs2: isa.RegZero, Imm: -int64((body + 1) * isa.InstBytes)})
}

// ----------------------------------------------------------- gadget profile

// gadgetTemplate is a randomized Spectre-V1-shaped victim+attacker in the
// shape of internal/attack's gadget: train a bounds check, evict the bound
// and the oracle, make one out-of-bounds call that transiently reads the
// secret and transmits it through a secret-indexed load, then recover it
// with a flush+reload probe. %TRAIN%, %SECRET%, %JUNK% and %PAD% randomize
// the training count, the planted byte, and instruction padding so the
// security property is checked across gadget variants, not one fixed text.
const gadgetTemplate = `
main:
	la t0, secret
	lbu t1, 0(t0)
	fence

	li s0, 0
train:
	andi a0, s0, 7
	call victim
%JUNK%	addi s0, s0, 1
	li t0, %TRAIN%
	blt s0, t0, train

	call flush_probe
	la t0, bound
	cflush 0(t0)
	fence

	la t0, secret
	la t1, array1
	sub a0, t0, t1
	call victim
	fence

	call probe_best
	puti a0
	halt a0

# --- victim: if (idx < bound) y = probebuf[array1[idx] * 64] --------------
victim:
	la t0, bound
	ld t1, 0(t0)
	bge a0, t1, v_done
	la t2, array1
	add t2, t2, a0
	lbu t3, 0(t2)
%PAD%	slli t3, t3, 6
	la t4, probebuf
	add t4, t4, t3
	lbu t5, 0(t4)
v_done:
	ret

# --- flush_probe: evict every oracle line ---------------------------------
flush_probe:
	la t0, probebuf
	li t1, 0
fp_loop:
	slli t2, t1, 6
	add t3, t0, t2
	cflush 0(t3)
	addi t1, t1, 1
	li t4, 256
	blt t1, t4, fp_loop
	fence
	ret

# --- probe_best: flush+reload receiver ------------------------------------
probe_best:
	la s1, probebuf
	li s2, 0
	li s3, 99999999
	li s4, 0
pb_loop:
	slli t0, s2, 6
	add t1, s1, t0
	fence
	rdcycle s5
	lbu t2, 0(t1)
	add t6, t2, zero
	fence
	rdcycle s6
	sub t3, s6, s5
	bge t3, s3, pb_skip
	mv s3, t3
	mv s4, s2
pb_skip:
	addi s2, s2, 1
	li t4, 256
	blt s2, t4, pb_loop
	li t5, 12
	blt s3, t5, pb_have
	li s4, 0
pb_have:
	mv a0, s4
	ret

	.data
array1:	.byte 1, 2, 3, 4, 5, 6, 7, 0
	.align 64
bound:	.quad 8
	.align 64
secret:	.byte %SECRET%
	.secret secret, 1
	.align 64
probebuf:
	.space 16384
`

// genGadget renders and assembles one randomized gadget, returning the
// annotated program and the planted secret byte.
func genGadget(rng *rand.Rand) (*isa.Program, byte, error) {
	secret := byte(1 + rng.Intn(255))
	train := 16 + rng.Intn(16)
	// Junk in the training loop shifts gadget alignment; pad in the
	// transient window lengthens it (t6 is dead in the victim).
	var junk, pad strings.Builder
	for n := rng.Intn(4); n > 0; n-- {
		fmt.Fprintf(&junk, "\tadd s11, s11, s0\n")
	}
	for n := rng.Intn(4); n > 0; n-- {
		fmt.Fprintf(&pad, "\tori t6, t3, %d\n", rng.Intn(64))
	}
	src := strings.NewReplacer(
		"%SECRET%", fmt.Sprint(secret),
		"%TRAIN%", fmt.Sprint(train),
		"%JUNK%\t", junk.String()+"\t",
		"%PAD%\t", pad.String()+"\t",
	).Replace(gadgetTemplate)
	prog, _, err := engine.Assemble("fuzz-gadget.s", src, true)
	if err != nil {
		return nil, 0, err
	}
	return prog, secret, nil
}
