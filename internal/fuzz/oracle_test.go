package fuzz

import (
	"context"
	"slices"
	"testing"

	"levioso/internal/engine"
	"levioso/internal/faultinject"
)

// quickPolicies keeps per-test oracle runs cheap; the full policy matrix is
// exercised by the corpus replay test and the levfuzz smoke in make ci.
var quickPolicies = []string{"unsafe", "fence", "levioso"}

// A sample of every profile must come out of the full oracle stack clean:
// the generator's contract is programs that terminate, never fault, and
// agree with the reference model under every policy.
func TestOraclesCleanOnGenerated(t *testing.T) {
	for _, p := range Profiles() {
		c, err := Generate(p, CaseSeed(3, 1), 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		v := RunOracles(context.Background(), c, Options{Policies: quickPolicies})
		if v.Skipped {
			t.Errorf("%s: skipped: %s", p, v.SkipReason)
		}
		for _, f := range v.Findings {
			t.Errorf("%s: unexpected finding: %s", p, f)
		}
	}
}

// The generated Spectre-V1 gadgets must actually leak on the unprotected
// baseline — otherwise the security oracle is checking a dead probe.
func TestGadgetLeaksOnUnsafe(t *testing.T) {
	leaks := 0
	const n = 3
	for i := 0; i < n; i++ {
		c, err := Generate(ProfileGadget, CaseSeed(11, i), i)
		if err != nil {
			t.Fatal(err)
		}
		v := RunOracles(context.Background(), c, Options{Policies: []string{"unsafe"}, NoStorm: true})
		for _, f := range v.Findings {
			t.Errorf("%s: %s", c.Name(), f)
		}
		if v.GadgetLeakUnsafe {
			leaks++
		}
	}
	if leaks == 0 {
		t.Fatalf("0/%d gadgets leaked on the unsafe baseline", n)
	}
}

// The differential oracle must catch a genuinely timing-dependent program:
// RDCYCLE reads real core cycles while the reference model counts retired
// instructions, so printing it diverges — and the shrinker must preserve
// exactly the divergence class while minimizing.
func TestDifferentialCatchesRDCYCLE(t *testing.T) {
	src := "main:\n\taddi t1, zero, 5\n\taddi t2, zero, 6\n\tadd t3, t1, t2\n\trdcycle t0\n\tputi t0\n\thalt zero\n"
	prog, _, err := engine.Assemble("rdcycle-div.s", src, true)
	if err != nil {
		t.Fatal(err)
	}
	c := &Case{Seed: 1, Profile: ProfileBranchStorm, Prog: prog}
	opt := Options{Policies: []string{"unsafe"}, NoStorm: true}
	v := RunOracles(context.Background(), c, opt)
	var target *Finding
	for i, f := range v.Findings {
		if f.Oracle == OracleDifferential {
			target = &v.Findings[i]
		}
	}
	if target == nil {
		t.Fatalf("no differential finding; got %v", v.Findings)
	}

	res := Shrink(context.Background(), c, *target, opt)
	if !res.Reproduced {
		t.Fatal("shrinker could not reproduce the divergence")
	}
	if res.FinalInsts > 3 {
		t.Errorf("shrunk to %d instructions, want <= 3 (rdcycle+puti+halt)", res.FinalInsts)
	}
	found := false
	for _, f := range res.Findings {
		if f.sameClass(*target) {
			found = true
		}
	}
	if !found {
		t.Errorf("shrunk findings %v lost the target class %v", res.Findings, *target)
	}
}

// Mutation check: a seeded commit-stall fault injected under the oracle
// stack must surface as a watchdog (limits) finding and shrink to a tiny
// repro — this is the ISSUE's acceptance criterion, kept as a regression.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	plan := &faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.CommitStall, Start: 100},
	}}
	opt := Options{Policies: []string{"unsafe"}, Faults: plan, NoStorm: true}
	c, err := Generate(ProfileBranchStorm, CaseSeed(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	v := RunOracles(context.Background(), c, opt)
	var target *Finding
	for i, f := range v.Findings {
		if f.Oracle == OracleLimits {
			target = &v.Findings[i]
		}
	}
	if target == nil {
		t.Fatalf("commit stall produced no limits finding; got %v", v.Findings)
	}

	res := Shrink(context.Background(), c, *target, opt)
	if !res.Reproduced {
		t.Fatal("shrinker could not reproduce the stall")
	}
	if res.FinalInsts > 25 {
		t.Errorf("shrunk repro has %d instructions, want <= 25", res.FinalInsts)
	}
	if res.Ratio() <= 0 {
		t.Errorf("shrink ratio %.2f, want > 0 (started at %d insts)", res.Ratio(), res.OrigInsts)
	}
}

// The determinism and storm-invariants oracles must tolerate a mispredict
// storm: it costs cycles but can never change architecture.
func TestStormKeepsArchitecture(t *testing.T) {
	c, err := Generate(ProfilePointerChase, CaseSeed(5, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	v := RunOracles(context.Background(), c, Options{Policies: []string{"unsafe"}})
	for _, f := range v.Findings {
		t.Errorf("storm stage: %s", f)
	}
}

// SecurityMatrix replays the attack gadgets against the documented leak
// expectations for the full registry sweep (every family, parameterized
// families at every level) — drift in either direction (protection
// regressing, or the attack dying) is a finding.
func TestSecurityMatrixClean(t *testing.T) {
	if testing.Short() {
		t.Skip("attack replay is slow")
	}
	for _, f := range SecurityMatrix(engine.SweepPolicies()) {
		t.Errorf("matrix drift: %s", f)
	}
}

// The generated gadgets declare their planted secret secret-typed, so the
// default oracle sweep (which includes prospect and every tunable level)
// holds secret-aware policies to their contract: prospect must keep the
// probe blind on a gadget case.
func TestGadgetSecretTypedJudgesProspect(t *testing.T) {
	sweep := Options{}.withDefaults().Policies
	for _, want := range []string{"prospect", "tunable:level=none", "tunable:level=comprehensive"} {
		if !slices.Contains(sweep, want) {
			t.Errorf("default oracle sweep omits %q: %v", want, sweep)
		}
	}
	c, err := Generate(ProfileGadget, CaseSeed(11, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Prog.Secrets) == 0 {
		t.Fatal("gadget profile plants no declared secret")
	}
	v := RunOracles(context.Background(), c, Options{Policies: []string{"prospect"}, NoStorm: true})
	for _, f := range v.Findings {
		t.Errorf("prospect on gadget: %s", f)
	}
	if v.GadgetLeakUnsafe {
		t.Error("prospect leaked a declared secret (recorded as expected leak)")
	}
}

func TestParseFaultSpec(t *testing.T) {
	plan, err := ParseFaultSpec("commit-stall:start=1000;delay-fill:extra=10:end=0x200", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || len(plan.Faults) != 2 {
		t.Fatalf("got %+v", plan)
	}
	if plan.Faults[0].Kind != faultinject.CommitStall || plan.Faults[0].Start != 1000 {
		t.Errorf("fault 0: %+v", plan.Faults[0])
	}
	if plan.Faults[1].Kind != faultinject.DelayFill || plan.Faults[1].Extra != 10 || plan.Faults[1].End != 0x200 {
		t.Errorf("fault 1: %+v", plan.Faults[1])
	}
	if p, err := ParseFaultSpec("  ", 1); err != nil || p != nil {
		t.Errorf("blank spec: %v %v", p, err)
	}
	for _, bad := range []string{"no-such-kind", "commit-stall:oops", "commit-stall:start=xyz", "stuck-load:depth=3"} {
		if _, err := ParseFaultSpec(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
