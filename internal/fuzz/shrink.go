package fuzz

import (
	"context"
	"strings"

	"levioso/internal/core"
	"levioso/internal/isa"
)

// ShrinkResult is the outcome of minimizing a failing case.
type ShrinkResult struct {
	// Case is the minimized case (the program replaced; metadata kept).
	Case *Case
	// Reproduced reports whether the original program reproduced the target
	// finding under the narrowed predicate at all (it always should — the
	// stack is deterministic — but the shrinker refuses to "minimize" a
	// failure it cannot see).
	Reproduced bool
	OrigInsts  int
	FinalInsts int
	// Evals counts oracle-stack evaluations spent.
	Evals int
	// Findings are the shrunk program's findings, re-validated against the
	// same oracle stack — what gets persisted in the repro.
	Findings []Finding
}

// Ratio returns the size reduction (1 - final/orig), 0 when nothing shrank.
func (r ShrinkResult) Ratio() float64 {
	if r.OrigInsts == 0 || r.FinalInsts >= r.OrigInsts {
		return 0
	}
	return 1 - float64(r.FinalInsts)/float64(r.OrigInsts)
}

// Shrink delta-debugs c.Prog to a minimal program that still triggers the
// target finding's failure class under the same oracle stack: chunked then
// single instruction removal (with branch-offset remapping), NOP
// substitution, and operand canonicalization, every candidate re-validated
// (structure, annotation pass, full oracle predicate) before acceptance.
//
// The predicate is narrowed to the target's policy (and the storm stage is
// dropped unless the target came from it), so each evaluation costs a
// handful of runs rather than the whole policy matrix. Work is bounded by
// Options.ShrinkBudget evaluations and the context.
func Shrink(ctx context.Context, c *Case, target Finding, opt Options) ShrinkResult {
	opt = opt.withDefaults()
	popt := opt
	if target.Policy != "" {
		popt.Policies = []string{target.Policy}
	}
	popt.NoStorm = !strings.Contains(target.Kind, "storm")

	s := &shrinker{ctx: ctx, base: c, target: target, opt: popt, budget: opt.ShrinkBudget}
	res := ShrinkResult{Case: c, OrigInsts: len(c.Prog.Text), FinalInsts: len(c.Prog.Text)}

	// Baseline: the unmodified program must reproduce under the narrowed
	// predicate; its findings are the fallback repro payload.
	if !s.try(c.Prog.Text) {
		res.Evals = s.evals
		return res
	}
	res.Reproduced = true

	text := append([]isa.Inst(nil), c.Prog.Text...)
	for {
		before := len(text)
		text = s.removalPass(text)
		text = s.nopPass(text)
		text = s.canonPass(text)
		if len(text) == before && !s.changed {
			break
		}
		if s.exhausted() {
			break
		}
		s.changed = false
	}

	res.Case = s.acceptedCase()
	res.FinalInsts = len(res.Case.Prog.Text)
	res.Evals = s.evals
	res.Findings = s.findings
	return res
}

type shrinker struct {
	ctx     context.Context
	base    *Case
	target  Finding
	opt     Options
	evals   int
	budget  int
	changed bool // a non-size-reducing pass (NOP/canon) accepted something

	accepted *isa.Program // last accepted candidate program
	findings []Finding    // its findings
}

func (s *shrinker) exhausted() bool {
	return s.evals >= s.budget || s.ctx.Err() != nil
}

// try rebuilds, revalidates, re-annotates and re-judges one candidate text;
// it accepts (and records) the candidate iff the target failure class
// reproduces.
func (s *shrinker) try(text []isa.Inst) bool {
	if s.exhausted() {
		return false
	}
	prog := rebuild(s.base.Prog, text)
	if prog == nil {
		return false
	}
	s.evals++
	cand := *s.base
	cand.Prog = prog
	verdict := RunOracles(s.ctx, &cand, s.opt)
	for _, f := range verdict.Findings {
		if f.sameClass(s.target) {
			s.accepted = prog
			s.findings = verdict.Findings
			return true
		}
	}
	return false
}

// acceptedCase wraps the last accepted program in a copy of the base case
// (acceptance is monotonic: every accepted candidate reproduced the target).
func (s *shrinker) acceptedCase() *Case {
	cand := *s.base
	if s.accepted != nil {
		cand.Prog = s.accepted
	}
	return &cand
}

// removalPass is the ddmin loop: try dropping chunks, halving the chunk
// size down to single instructions.
func (s *shrinker) removalPass(text []isa.Inst) []isa.Inst {
	for chunk := len(text) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(text) && !s.exhausted(); {
			end := i + chunk
			if end > len(text) {
				end = len(text)
			}
			if cand := removeRange(text, i, end); cand != nil && s.try(cand) {
				text = cand
				continue // same i: the next chunk slid into place
			}
			i += chunk
		}
		if s.exhausted() {
			break
		}
	}
	return text
}

var nopInst = isa.Inst{Op: isa.ADDI} // addi x0, x0, 0

// nopPass replaces instructions with NOPs — the shift-free fallback when
// removal is blocked by branch offsets.
func (s *shrinker) nopPass(text []isa.Inst) []isa.Inst {
	for i := 0; i < len(text) && !s.exhausted(); i++ {
		if text[i] == nopInst || text[i].Op == isa.HALT {
			continue
		}
		cand := append([]isa.Inst(nil), text...)
		cand[i] = nopInst
		if s.try(cand) {
			text = cand
			s.changed = true
		}
	}
	return text
}

// canonPass canonicalizes operands instruction by instruction: zero the
// immediate (control flow excluded — its immediate is the CFG), then each
// register field. Every simplification is individually re-validated.
func (s *shrinker) canonPass(text []isa.Inst) []isa.Inst {
	for i := 0; i < len(text) && !s.exhausted(); i++ {
		in := text[i]
		if in == nopInst {
			continue
		}
		var variants []isa.Inst
		if in.Op.HasImm() && in.Imm != 0 && !in.Op.IsControl() {
			v := in
			v.Imm = 0
			variants = append(variants, v)
		}
		if in.Op.HasRs2() && in.Rs2 != isa.RegZero {
			v := in
			v.Rs2 = isa.RegZero
			variants = append(variants, v)
		}
		if in.Op.HasRs1() && in.Rs1 != isa.RegZero {
			v := in
			v.Rs1 = isa.RegZero
			variants = append(variants, v)
		}
		if in.Op.HasRd() && in.Rd != isa.RegZero && in.Op != isa.JAL {
			v := in
			v.Rd = isa.RegZero
			variants = append(variants, v)
		}
		for _, variant := range variants {
			if s.exhausted() {
				break
			}
			cand := append([]isa.Inst(nil), text...)
			cand[i] = variant
			if s.try(cand) {
				text = cand
				s.changed = true
				break
			}
		}
	}
	return text
}

// removeRange deletes text[start:end), remapping every surviving branch/JAL
// byte offset (and giving targets that pointed into the removed range the
// next surviving instruction). Returns nil when the result cannot be a
// structurally valid program (a control op left without a target, or a
// branch collapsing onto itself).
func removeRange(text []isa.Inst, start, end int) []isa.Inst {
	n := len(text)
	if start >= end || end > n || end-start >= n {
		return nil
	}
	newIdx := make([]int, n+1) // old index -> new index of next survivor
	kept := 0
	for i := 0; i < n; i++ {
		newIdx[i] = kept
		if i < start || i >= end {
			kept++
		}
	}
	newIdx[n] = kept // "text end" sentinel for forward targets past removal

	out := make([]isa.Inst, 0, kept)
	for i := 0; i < n; i++ {
		if i >= start && i < end {
			continue
		}
		in := text[i]
		if in.Op.IsBranch() || in.Op == isa.JAL {
			tgt := i + int(in.Imm)/isa.InstBytes
			if tgt < 0 || tgt > n {
				return nil
			}
			newImm := int64(newIdx[tgt]-newIdx[i]) * isa.InstBytes
			if newImm == 0 || newIdx[tgt] >= kept {
				return nil // self-loop, or target fell off the text
			}
			in.Imm = newImm
		}
		out = append(out, in)
	}
	return out
}

// rebuild wraps a candidate text in a fresh program sharing the immutable
// data segment, revalidates the structure, and re-runs the annotation pass
// (stale hints would make the Levioso policies unsound on the shrunk CFG).
// Returns nil when the candidate is not a valid program.
func rebuild(orig *isa.Program, text []isa.Inst) *isa.Program {
	// Generated programs always enter at the first instruction (gadget
	// sources open with main:), so removal never has to remap the entry.
	if idx, ok := orig.InstIndex(orig.Entry); !ok || idx != 0 {
		return nil
	}
	prog := &isa.Program{
		Text:    text,
		Data:    orig.Data,
		Entry:   isa.TextBase,
		Symbols: orig.Symbols,
		Hints:   map[uint64]isa.BranchHint{},
	}
	if err := prog.Validate(); err != nil {
		return nil
	}
	if _, err := core.Annotate(prog); err != nil {
		return nil
	}
	return prog
}
