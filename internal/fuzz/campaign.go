package fuzz

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/journal"
	"levioso/internal/obs"
	"levioso/internal/simerr"
)

// A campaign is the coverage-guided tier above Run: a sequential, resumable
// loop in which every case is either generated fresh or mutated from a
// corpus of programs that previously reached new machine behavior. Each case
// runs with a fresh cpu.CoverageSink; the union of the signatures of all its
// oracle runs is compared against the campaign's global coverage map, and a
// case that lights new bits joins the mutation corpus. After every case the
// whole campaign state — corpus, coverage map, finding buckets, next index —
// is rewritten atomically (journal.WriteAtomic), so a kill -9 at any point
// loses at most the in-flight case and a rerun resumes exactly where it
// stopped, replaying no completed case.
//
// The campaign is deliberately sequential: corpus evolution feeds back into
// case construction, so a deterministic schedule requires that case i sees
// exactly the corpus left by cases 0..i-1. That is also what makes resume
// bit-identical to an uninterrupted run.

// CampaignStateName is the state file inside a campaign directory.
const CampaignStateName = "campaign.json"

// campaignStateVersion is the on-disk state format version.
const campaignStateVersion = 1

// Progress is the running-totals snapshot handed to Options.Progress after
// every committed case (the levserve /v1/fuzz status endpoint serves these).
type Progress struct {
	Index        int `json:"index"`         // cases committed so far (absolute)
	Count        int `json:"count"`         // campaign target (0: unbounded)
	Cases        int `json:"cases"`         // cases executed this invocation
	Resumed      int `json:"resumed"`       // cases inherited from the state file
	Skipped      int `json:"skipped"`       // cases the oracles could not judge
	Execs        int `json:"execs"`         // executions this invocation (incl. shrinking)
	Mutated      int `json:"mutated"`       // cases produced by corpus mutation
	CoverageBits int `json:"coverage_bits"` // global coverage map population
	Corpus       int `json:"corpus"`        // mutation corpus size
	Findings     int `json:"findings"`      // findings recorded over the campaign's life
}

// FindingBucket aggregates campaign findings by failure class — the same
// (oracle, policy, kind) triple the shrinker preserves while minimizing.
type FindingBucket struct {
	Oracle     string   `json:"oracle"`
	Policy     string   `json:"policy,omitempty"`
	Kind       string   `json:"kind,omitempty"`
	Count      int      `json:"count"`
	FirstIndex int      `json:"first_index"`       // case index of the first observation
	Example    string   `json:"example,omitempty"` // detail string of the first observation
	Repros     []string `json:"repros,omitempty"`  // repro file names (capped)
}

// maxBucketRepros caps the repro list per bucket: the first few minimal
// repros of a failure class are diagnostic, the hundredth is disk usage.
const maxBucketRepros = 8

// CampaignSummary is one Campaign invocation's outcome.
type CampaignSummary struct {
	Cases        int // cases executed this invocation
	Resumed      int // cases inherited from the state file
	Skipped      int
	Execs        int
	Mutated      int
	CoverageBits int // global coverage map population at exit
	CorpusSize   int
	FindingCount int              // findings over the campaign's whole life
	Buckets      []*FindingBucket // sorted by class key
	Elapsed      time.Duration
}

// campaignState is the on-disk campaign snapshot. Everything a resumed
// invocation needs to reproduce the interrupted one's decisions is here;
// nothing else is (per-case seeds re-derive from Seed via CaseSeed).
type campaignState struct {
	Version   int                       `json:"version"`
	Seed      uint64                    `json:"seed"`
	Digest    string                    `json:"digest"` // option digest; a resume must match
	NextIndex int                       `json:"next_index"`
	Skipped   int                       `json:"skipped"`
	Execs     int                       `json:"execs"`
	Mutated   int                       `json:"mutated"`
	Coverage  string                    `json:"coverage"` // global map, base64
	Corpus    []*corpusEntry            `json:"corpus,omitempty"`
	Findings  map[string]*FindingBucket `json:"findings,omitempty"`
}

func (st *campaignState) findingCount() int {
	n := 0
	for _, b := range st.Findings {
		n += b.Count
	}
	return n
}

// optionsDigest pins every option that shapes per-case verdicts. A campaign
// directory resumed under a different digest would silently mix verdict
// streams, so Campaign refuses it. Count is deliberately excluded: raising
// it extends a finished campaign without changing any completed case.
func optionsDigest(o Options) string {
	return fmt.Sprintf("v%d profiles=%v policies=%v maxcycles=%d refmax=%d nostorm=%t noshrink=%t shrinkbudget=%d blind=%t faults=%v",
		campaignStateVersion, o.Profiles, o.Policies, o.MaxCycles, o.RefMaxInsts,
		o.NoStorm, o.NoShrink, o.ShrinkBudget, o.Blind, o.Faults)
}

// Campaign runs (or resumes) the coverage-guided campaign in dir until Count
// cases are committed, the Duration elapses, or the context is canceled.
// Interrupted in-flight cases are never committed, so stopping a campaign at
// any point — including kill -9 mid-write — and rerunning the identical
// invocation yields a state file bit-identical to an uninterrupted run's.
func Campaign(ctx context.Context, dir string, opt Options) (*CampaignSummary, error) {
	if err := opt.Normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fuzz: campaign dir: %w", err)
	}
	statePath := filepath.Join(dir, CampaignStateName)
	digest := optionsDigest(opt)
	st, err := loadCampaignState(statePath, opt.Seed, digest)
	if err != nil {
		return nil, err
	}
	global, err := decodeCoverage(st.Coverage)
	if err != nil {
		return nil, err
	}

	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}

	start := time.Now()
	met := newCampaignMetrics(ctx)
	met.covBits.Set(int64(global.Count()))
	met.corpus.Set(int64(len(st.Corpus)))

	sum := &CampaignSummary{Resumed: st.NextIndex}
	for idx := st.NextIndex; opt.Count == 0 || idx < opt.Count; idx++ {
		if ctx.Err() != nil {
			break
		}

		cov := new(cpu.CoverageSink)
		copt := opt
		copt.Coverage = cov
		c, parent, verdict, shrink := judgeCampaignCase(ctx, copt, idx, st.Corpus)

		// A case cut short by cancellation or the wall clock is not a
		// verdict: leave it uncommitted so the resumed campaign re-runs it in
		// full. (This is the determinism guarantee — a partially-judged case
		// must never contaminate the corpus or the coverage map.)
		if ctx.Err() != nil {
			break
		}

		if parent >= 0 {
			mutantFindings(&verdict)
		}

		// Persist the (shrunk) repro for any finding, as Run does.
		var reproName string
		if len(verdict.Findings) > 0 {
			final, findings, orig := c, verdict.Findings, 0
			if shrink != nil {
				final, findings, orig = shrink.Case, shrink.Findings, shrink.OrigInsts
			}
			if final != nil {
				if r, rerr := NewRepro(final, opt.Policies, findings, orig); rerr == nil {
					if _, werr := r.Write(dir); werr == nil {
						reproName = r.FileName()
					}
				}
			}
		}

		// Coverage accounting and corpus admission. Gadget cases contribute
		// to the map but never to the mutation corpus (see corpusEntry).
		fresh := newBitCount(global, cov)
		if fresh > 0 && c != nil && c.Profile != ProfileGadget {
			img, merr := c.Prog.MarshalBinary()
			if merr == nil {
				st.Corpus = append(st.Corpus, &corpusEntry{
					Index: idx, Parent: parent, Profile: c.Profile,
					Binary: img, NewBits: fresh, Insts: len(c.Prog.Text),
				})
			}
		}
		global.Or(cov)

		for _, f := range verdict.Findings {
			key := bucketKey(f)
			b := st.Findings[key]
			if b == nil {
				b = &FindingBucket{Oracle: f.Oracle, Policy: f.Policy, Kind: f.Kind, FirstIndex: idx, Example: f.Detail}
				if st.Findings == nil {
					st.Findings = map[string]*FindingBucket{}
				}
				st.Findings[key] = b
			}
			b.Count++
			if reproName != "" && len(b.Repros) < maxBucketRepros &&
				(len(b.Repros) == 0 || b.Repros[len(b.Repros)-1] != reproName) {
				b.Repros = append(b.Repros, reproName)
			}
			logf(opt.Log, "fuzz: campaign %06d: %s", idx, f)
		}

		execs := verdict.Execs
		if shrink != nil {
			execs += shrink.Evals
		}
		st.NextIndex = idx + 1
		st.Execs += execs
		if verdict.Skipped {
			st.Skipped++
		}
		if parent >= 0 {
			st.Mutated++
		}
		st.Coverage = encodeCoverage(global)
		if err := saveCampaignState(statePath, st); err != nil {
			return nil, err
		}

		sum.Cases++
		sum.Execs += execs
		if verdict.Skipped {
			sum.Skipped++
		}
		if parent >= 0 {
			sum.Mutated++
		}

		met.cases.Inc()
		met.execs.Add(uint64(execs))
		met.findings.Add(uint64(len(verdict.Findings)))
		if parent >= 0 {
			met.mutated.Inc()
		}
		met.covBits.Set(int64(global.Count()))
		met.corpus.Set(int64(len(st.Corpus)))

		if opt.Progress != nil {
			opt.Progress(Progress{
				Index: st.NextIndex, Count: opt.Count,
				Cases: sum.Cases, Resumed: sum.Resumed, Skipped: sum.Skipped,
				Execs: sum.Execs, Mutated: sum.Mutated,
				CoverageBits: global.Count(), Corpus: len(st.Corpus),
				Findings: st.findingCount(),
			})
		}
	}

	sum.CoverageBits = global.Count()
	sum.CorpusSize = len(st.Corpus)
	sum.FindingCount = st.findingCount()
	keys := make([]string, 0, len(st.Findings))
	for k := range st.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sum.Buckets = append(sum.Buckets, st.Findings[k])
	}
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// judgeCampaignCase builds and judges one campaign case with panic
// isolation, shrinking the first finding when configured. The shrinker runs
// without the coverage sink: the case's signature reflects its judging runs,
// not however many shrink candidates happened to execute.
func judgeCampaignCase(ctx context.Context, opt Options, idx int, corpus []*corpusEntry) (c *Case, parent int, verdict Verdict, shrink *ShrinkResult) {
	parent = -1
	defer func() {
		if r := recover(); r != nil {
			verdict.add(Finding{Oracle: OraclePanic, Kind: "campaign",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())})
		}
	}()

	c, parent, err := scheduleCase(opt, idx, corpus)
	if err != nil {
		verdict.add(Finding{Oracle: OracleGenerator, Kind: "generate", Detail: err.Error()})
		return nil, parent, verdict, nil
	}

	verdict = RunOracles(ctx, c, opt)
	if len(verdict.Findings) == 0 || opt.NoShrink || ctx.Err() != nil {
		return c, parent, verdict, nil
	}
	sopt := opt
	sopt.Coverage = nil
	res := Shrink(ctx, c, verdict.Findings[0], sopt)
	return c, parent, verdict, &res
}

// mutantFindings drops generator-oracle findings from a mutated case's
// verdict. The generator's architectural-cleanliness contract covers
// generated programs; a mutant that faults on the reference model is an
// uninteresting input to discard (as a skip), not a simulator bug to report.
func mutantFindings(v *Verdict) {
	kept := v.Findings[:0]
	dropped := false
	for _, f := range v.Findings {
		if f.Oracle == OracleGenerator {
			dropped = true
			continue
		}
		kept = append(kept, f)
	}
	v.Findings = kept
	if dropped && len(kept) == 0 {
		v.Skipped, v.SkipReason = true, "mutant faulted on reference"
	}
}

// LoadFindings reads the finding buckets out of a campaign directory's state
// file without touching anything else — the levserve findings endpoint
// serves these while the campaign is still running (the state file is
// rewritten atomically, so a concurrent read always sees a complete
// snapshot). A directory with no state file yet yields no buckets.
func LoadFindings(dir string) ([]*FindingBucket, error) {
	b, err := os.ReadFile(filepath.Join(dir, CampaignStateName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: campaign state: %w", err)
	}
	st := new(campaignState)
	if err := json.Unmarshal(b, st); err != nil {
		return nil, &simerr.RunError{Kind: simerr.KindBuild, Detail: "campaign state", Err: err}
	}
	keys := make([]string, 0, len(st.Findings))
	for k := range st.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*FindingBucket, 0, len(keys))
	for _, k := range keys {
		out = append(out, st.Findings[k])
	}
	return out, nil
}

func loadCampaignState(path string, seed uint64, digest string) (*campaignState, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &campaignState{Version: campaignStateVersion, Seed: seed, Digest: digest}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: campaign state: %w", err)
	}
	st := new(campaignState)
	if err := json.Unmarshal(b, st); err != nil {
		return nil, &simerr.RunError{Kind: simerr.KindBuild, Detail: "campaign state " + path, Err: err}
	}
	if st.Version != campaignStateVersion {
		return nil, simerr.New(simerr.KindBuild, "fuzz: campaign state %s: version %d, want %d", path, st.Version, campaignStateVersion)
	}
	if st.Seed != seed {
		return nil, simerr.New(simerr.KindBuild, "fuzz: campaign state %s: seed %#x, resumed with %#x", path, st.Seed, seed)
	}
	if st.Digest != digest {
		return nil, simerr.New(simerr.KindBuild, "fuzz: campaign state %s: options changed since the campaign started (state %q, now %q)", path, st.Digest, digest)
	}
	return st, nil
}

// saveCampaignState rewrites the state file atomically (temp file, fsync,
// rename): a crash at any instant leaves either the previous complete state
// or the new one, never a torn file.
func saveCampaignState(path string, st *campaignState) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("fuzz: encode campaign state: %w", err)
	}
	return journal.WriteAtomic(path, append(b, '\n'))
}

// campaignMetrics is the campaign's obs instrument set (registry from ctx,
// like newSessionMetrics).
type campaignMetrics struct {
	cases    *obs.Counter
	execs    *obs.Counter
	mutated  *obs.Counter
	findings *obs.Counter
	covBits  *obs.Gauge
	corpus   *obs.Gauge
}

func newCampaignMetrics(ctx context.Context) *campaignMetrics {
	reg := obs.FromContext(ctx)
	return &campaignMetrics{
		cases:    reg.Counter("fuzz_campaign_cases_total", "campaign cases committed"),
		execs:    reg.Counter("fuzz_campaign_execs_total", "campaign executions, including shrinking"),
		mutated:  reg.Counter("fuzz_campaign_mutated_total", "campaign cases produced by corpus mutation"),
		findings: reg.Counter("fuzz_campaign_findings_total", "campaign findings recorded"),
		covBits:  reg.Gauge("fuzz_campaign_coverage_bits", "global coverage map population"),
		corpus:   reg.Gauge("fuzz_campaign_corpus_size", "mutation corpus size"),
	}
}
