package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"levioso/internal/faultinject"
)

// ParseFaultSpec parses levfuzz's -inject flag into a fault plan. The
// grammar is semicolon-separated faults, each a kind optionally followed by
// colon-separated key=value parameters:
//
//	kind[:key=value[:key=value...]][;kind...]
//
// Kinds: stuck-load, delay-fill, mispredict-storm, commit-stall, panic.
// Keys: start, end, addr (hex ok), extra, prob, first.
//
// Example: "commit-stall:start=1000" stalls commit from cycle 1000 forever —
// the mutation-check fault that must surface as a watchdog finding.
// Returns nil for an empty spec.
func ParseFaultSpec(spec string, seed int64) (*faultinject.Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &faultinject.Plan{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, fmt.Errorf("fuzz: fault spec %q: %w", part, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return plan, nil
}

func parseFault(s string) (faultinject.Fault, error) {
	fields := strings.Split(s, ":")
	var f faultinject.Fault
	switch fields[0] {
	case "stuck-load":
		f.Kind = faultinject.StuckLoad
	case "delay-fill":
		f.Kind = faultinject.DelayFill
	case "mispredict-storm":
		f.Kind = faultinject.MispredictStorm
		f.Prob = 0.5
	case "commit-stall":
		f.Kind = faultinject.CommitStall
	case "panic":
		f.Kind = faultinject.Panic
	default:
		return f, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("parameter %q is not key=value", kv)
		}
		var err error
		switch key {
		case "start":
			f.Start, err = strconv.ParseUint(val, 0, 64)
		case "end":
			f.End, err = strconv.ParseUint(val, 0, 64)
		case "addr":
			f.Addr, err = strconv.ParseUint(val, 0, 64)
		case "extra":
			f.Extra, err = strconv.Atoi(val)
		case "prob":
			f.Prob, err = strconv.ParseFloat(val, 64)
		case "first":
			f.FirstAttempts, err = strconv.Atoi(val)
		default:
			return f, fmt.Errorf("unknown parameter %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("parameter %s: %w", key, err)
		}
	}
	return f, nil
}
