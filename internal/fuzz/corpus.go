package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"levioso/internal/engine"
	"levioso/internal/isa"
	"levioso/internal/journal"
)

// ReproVersion is the on-disk repro format version.
const ReproVersion = 1

// Repro is one persisted finding: the (shrunk) program as a LEV64 binary
// image plus everything needed to re-judge it deterministically — the
// oracle replay test reloads these and re-runs the full stack.
type Repro struct {
	Version   int       `json:"version"`
	Name      string    `json:"name"`
	Seed      uint64    `json:"seed"`
	Index     int       `json:"index"`
	Profile   Profile   `json:"profile"`
	TimingDep bool      `json:"timing_dep,omitempty"`
	Secret    byte      `json:"secret,omitempty"`
	Policies  []string  `json:"policies,omitempty"` // policies the verdict ran under
	Binary    []byte    `json:"binary"`             // isa.Program image (base64 in JSON)
	Insts     int       `json:"insts"`
	OrigInsts int       `json:"orig_insts,omitempty"` // pre-shrink size (0: not shrunk)
	Findings  []Finding `json:"findings,omitempty"`
	Listing   string    `json:"listing,omitempty"` // disassembly, for humans
}

// NewRepro packages a judged case for persistence.
func NewRepro(c *Case, policies []string, findings []Finding, origInsts int) (*Repro, error) {
	img, err := c.Prog.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("fuzz: marshal repro: %w", err)
	}
	r := &Repro{
		Version: ReproVersion, Name: c.Name(),
		Seed: c.Seed, Index: c.Index, Profile: c.Profile,
		TimingDep: c.TimingDep, Secret: c.Secret,
		Policies: policies, Binary: img, Insts: len(c.Prog.Text),
		Findings: findings, Listing: engine.Listing(c.Prog),
	}
	if origInsts > len(c.Prog.Text) {
		r.OrigInsts = origInsts
	}
	return r, nil
}

// Case reconstructs the runnable case from a loaded repro.
func (r *Repro) Case() (*Case, error) {
	prog := new(isa.Program)
	if err := prog.UnmarshalBinary(r.Binary); err != nil {
		return nil, fmt.Errorf("fuzz: repro %s: %w", r.Name, err)
	}
	return &Case{
		Seed: r.Seed, Index: r.Index, Profile: r.Profile,
		Prog: prog, TimingDep: r.TimingDep, Secret: r.Secret,
	}, nil
}

// FileName is the repro's stable corpus file name.
func (r *Repro) FileName() string { return r.Name + ".json" }

// Write persists the repro into dir crash-safely (journal.WriteAtomic: temp
// file, fsync, atomic rename) — a crash leaves either the old state or the
// complete new file, never a torn repro.
func (r *Repro) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("fuzz: encode repro: %w", err)
	}
	b = append(b, '\n')
	path := filepath.Join(dir, r.FileName())
	if err := journal.WriteAtomic(path, b); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads one repro file.
func LoadRepro(path string) (*Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Repro)
	if err := json.Unmarshal(b, r); err != nil {
		return nil, fmt.Errorf("fuzz: parse repro %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("fuzz: repro %s: version %d, want %d", path, r.Version, ReproVersion)
	}
	return r, nil
}

// LoadCorpus reads every repro in dir, sorted by file name for
// deterministic replay order.
func LoadCorpus(dir string) ([]*Repro, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Repro
	for _, p := range paths {
		r, err := LoadRepro(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ------------------------------------------------------------- run journal

// Entry is one completed (or skipped) fuzz case in the session journal.
// Entries are keyed by case index: a resumed session re-derives the same
// (seed, profile) for an index and trusts the recorded verdict instead of
// re-executing.
type Entry struct {
	Index    int       `json:"index"`
	Seed     uint64    `json:"seed"`
	Profile  Profile   `json:"profile"`
	Verdict  string    `json:"verdict"` // "ok" | "skip" | "finding"
	Findings []Finding `json:"findings,omitempty"`
	Repro    string    `json:"repro,omitempty"` // repro file name in the corpus dir
	Execs    int       `json:"execs"`
}

// Journal is the fuzz session's append-only JSON-lines progress record,
// keyed by case index. Durability mechanics (single-write appends, fsync per
// record, torn-tail healing on open) live in internal/journal; this wrapper
// owns the Entry schema and the index-keyed resume map.
type Journal struct {
	mu   sync.Mutex
	f    *journal.File
	seen map[int]Entry
}

// JournalName is the journal's file name inside a corpus directory.
const JournalName = "journal.jsonl"

// OpenJournal opens (creating if absent) the session journal at path and
// loads every entry recorded by earlier invocations. A torn trailing line
// (the write a crash interrupted) is skipped and healed so the next append
// starts clean.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{seen: make(map[int]Entry)}
	f, err := journal.Open(path, func(line []byte) {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return // foreign line: the case just re-runs
		}
		j.seen[e.Index] = e
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the recorded entry for a case index, if any.
func (j *Journal) Lookup(index int) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.seen[index]
	return e, ok
}

// Record appends one entry and fsyncs before returning — a power loss can
// lose at most the entry being written, never completed cases. Safe for
// concurrent use by the worker goroutines.
func (j *Journal) Record(e Entry) error {
	if err := j.f.Append(e); err != nil {
		return err
	}
	j.mu.Lock()
	j.seen[e.Index] = e
	j.mu.Unlock()
	return nil
}

// Len returns the number of recorded cases.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
