package fuzz

import (
	"encoding/base64"
	"encoding/binary"
	"math/bits"

	"levioso/internal/cpu"
	"levioso/internal/simerr"
)

// Coverage signatures are produced by the core (cpu.CoverageSink): every run
// the oracle stack performs under a campaign records which microarchitectural
// events it touched — branch outcomes, squash depths, policy restrictions,
// load forwarding and aliasing, secret-taint propagation, transmitter state.
// The campaign keeps a global union of every signature ever seen; a case
// whose signature sets bits the union lacks has reached new machine behavior
// and is admitted to the mutation corpus. This file holds the glue the
// campaign needs around the raw sink: the state-file encoding and the
// new-bits accounting.

// encodeCoverage serializes a sink for the campaign state file
// (little-endian words, base64 — 1366 bytes for the 8192-bit map).
func encodeCoverage(s *cpu.CoverageSink) string {
	b := make([]byte, 8*cpu.CoverageWords)
	for i, w := range s.Bits {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(b)
}

// decodeCoverage is the inverse; an empty string decodes to an empty sink so
// a fresh state file needs no special case.
func decodeCoverage(enc string) (*cpu.CoverageSink, error) {
	s := new(cpu.CoverageSink)
	if enc == "" {
		return s, nil
	}
	b, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, &simerr.RunError{Kind: simerr.KindBuild, Detail: "campaign coverage map", Err: err}
	}
	if len(b) != 8*cpu.CoverageWords {
		return nil, simerr.New(simerr.KindBuild, "fuzz: campaign coverage map: %d bytes, want %d", len(b), 8*cpu.CoverageWords)
	}
	for i := range s.Bits {
		s.Bits[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return s, nil
}

// newBitCount returns how many bits of sig are absent from the global map —
// the case's coverage contribution, and the corpus admission criterion.
func newBitCount(global, sig *cpu.CoverageSink) int {
	n := 0
	for i, w := range sig.Bits {
		n += bits.OnesCount64(w &^ global.Bits[i])
	}
	return n
}

// bucketKey is the campaign's finding-class key: findings with the same
// (oracle, policy, kind) triple — the shrinker's equivalence class — land in
// the same bucket regardless of detail strings.
func bucketKey(f Finding) string {
	return f.Oracle + "/" + f.Policy + "/" + f.Kind
}
