package fuzz

import (
	"math/rand"

	"levioso/internal/isa"
)

// The campaign scheduler decides, per case index, whether to generate a
// fresh program from the profile cycle or to mutate a corpus entry that
// previously discovered new coverage. Everything is derived from the
// per-case seed (CaseSeed) and the corpus contents at that index, so a
// resumed campaign — which replays the same indices over the same persisted
// corpus — makes bit-identical decisions.

// corpusEntry is one coverage-discovering program retained for mutation.
// Gadget cases are never admitted: their probe loop's output is the security
// oracle's signal, and mutating it yields garbled probes misreported as
// findings rather than new machine behavior.
type corpusEntry struct {
	Index   int     `json:"index"`    // case index that discovered it
	Parent  int     `json:"parent"`   // case index it was mutated from (-1: fresh)
	Profile Profile `json:"profile"`  // generation profile of its root ancestor
	Binary  []byte  `json:"binary"`   // isa.Program image (base64 in JSON)
	NewBits int     `json:"new_bits"` // coverage bits it contributed on admission
	Insts   int     `json:"insts"`    // program size, for the status endpoint
	Picks   int     `json:"picks"`    // times chosen as a mutation parent

	prog *isa.Program // decoded lazily; not persisted
}

// program decodes (and caches) the entry's program image.
func (e *corpusEntry) program() (*isa.Program, error) {
	if e.prog == nil {
		p := new(isa.Program)
		if err := p.UnmarshalBinary(e.Binary); err != nil {
			return nil, err
		}
		e.prog = p
	}
	return e.prog, nil
}

// scheduleCase produces the case for one campaign index: fresh generation
// when the corpus is empty, the campaign is blind, or the seeded coin says
// explore (~1 in 3); otherwise a mutant of a corpus entry, biased toward
// entries that contributed more coverage. A mutant that cannot be built
// (every candidate failed revalidation) falls back to fresh generation, so
// the scheduler never wedges on a corpus of unmutatable programs.
// Returns the case and the parent case index (-1 when generated fresh).
func scheduleCase(opt Options, idx int, corpus []*corpusEntry) (*Case, int, error) {
	seed := CaseSeed(opt.Seed, idx)
	rng := rand.New(rand.NewSource(int64(seed)))

	fresh := func() (*Case, int, error) {
		profile := opt.Profiles[idx%len(opt.Profiles)]
		c, err := Generate(profile, seed, idx)
		return c, -1, err
	}

	if opt.Blind || len(corpus) == 0 || rng.Intn(3) == 0 {
		return fresh()
	}

	e := pickEntry(rng, corpus)
	prog, err := e.program()
	if err != nil {
		// A corrupt corpus entry (hand-edited state file) degrades to fresh
		// generation rather than killing the campaign.
		return fresh()
	}
	// A second (possibly identical) pick donates splice material.
	donor, err := pickEntry(rng, corpus).program()
	if err != nil {
		donor = prog
	}
	mutated := mutate(rng, prog, donor)
	if mutated == nil {
		return fresh()
	}
	e.Picks++
	c := &Case{Seed: seed, Index: idx, Profile: e.Profile, Prog: mutated}
	return c, e.Index, nil
}

// pickEntry samples the corpus weighted by coverage contribution decayed by
// exploitation: an entry that lit 40 new bits is a richer mutation source
// than one that lit 1, but an entry already mutated many times has had its
// neighborhood harvested and yields the floor weight.
func pickEntry(rng *rand.Rand, corpus []*corpusEntry) *corpusEntry {
	weight := func(e *corpusEntry) int { return e.NewBits/(1+e.Picks) + 1 }
	total := 0
	for _, e := range corpus {
		total += weight(e)
	}
	n := rng.Intn(total)
	for _, e := range corpus {
		if n < weight(e) {
			return e
		}
		n -= weight(e)
	}
	return corpus[len(corpus)-1]
}

// mutate applies stacked mutations to prog's text and revalidates the
// result through the shrinker's rebuild (structural validation plus the
// annotation re-pass). Splicing donor material in dominates the mix: the
// coverage signature keys on instruction sites, so structural changes that
// shift and recombine code light far more new signature bits than operand
// tweaks. Returns nil when no valid mutant emerged within the attempt
// budget.
func mutate(rng *rand.Rand, prog, donor *isa.Program) *isa.Program {
	for attempt := 0; attempt < 8; attempt++ {
		text := append([]isa.Inst(nil), prog.Text...)
		changed := false
		for n := 2 + rng.Intn(5); n > 0; n-- {
			var cand []isa.Inst
			switch rng.Intn(10) {
			case 0:
				cand = mutImm(rng, text)
			case 1:
				cand = mutReg(rng, text)
			case 2:
				chunk := 1 + rng.Intn(8)
				start := rng.Intn(len(text))
				end := start + chunk
				if end > len(text) {
					end = len(text)
				}
				cand = removeRange(text, start, end)
			case 3:
				cand = mutRetarget(rng, text)
			default:
				cand = mutSplice(rng, text, donor.Text)
			}
			if cand != nil {
				text = cand
				changed = true
			}
		}
		if !changed {
			continue
		}
		if p := rebuild(prog, text); p != nil {
			return p
		}
	}
	return nil
}

// mutImm re-randomizes one immediate. Memory-op offsets are only touched
// when the base is gp (a fixed data-segment access) and stay size-aligned
// and in-bounds — the generator's never-faults contract must survive
// mutation on the architectural path. Shift amounts stay in [0, 64);
// everything else stays in the I-immediate range. Control-flow immediates
// are the CFG and belong to mutRetarget.
func mutImm(rng *rand.Rand, text []isa.Inst) []isa.Inst {
	var idxs []int
	for i, in := range text {
		if !in.Op.HasImm() || in.Op.IsControl() {
			continue
		}
		if (in.Op.MemBytes() > 0 || in.Op == isa.CFLUSH) && in.Rs1 != isa.RegGP {
			continue // computed address: the offset is part of the masking
		}
		idxs = append(idxs, i)
	}
	if len(idxs) == 0 {
		return nil
	}
	i := idxs[rng.Intn(len(idxs))]
	out := append([]isa.Inst(nil), text...)
	in := &out[i]
	switch {
	case in.Op == isa.CFLUSH:
		in.Imm = int64(64 * rng.Intn(genDataLen/64))
	case in.Op.IsStore():
		size := in.Op.MemBytes()
		in.Imm = int64(genScratchBase + size*rng.Intn((genDataLen-genScratchBase)/size))
	case in.Op.MemBytes() > 0:
		size := in.Op.MemBytes()
		in.Imm = int64(size * rng.Intn(genDataLen/size))
	case in.Op == isa.SLLI || in.Op == isa.SRLI || in.Op == isa.SRAI:
		in.Imm = int64(rng.Intn(64))
	case in.Op == isa.LUI:
		in.Imm = int64(rng.Intn(1<<20) - 1<<19)
	default:
		in.Imm = int64(rng.Intn(4096) - 2048)
	}
	return out
}

// mutReg rewires one operand among the generator's general value registers
// (x6..x29). The special registers — gp, the address scratch, the loop
// counter, the chase pointer — are never touched, so the structural
// invariants that keep generated programs terminating and in-bounds hold
// for every mutant.
func mutReg(rng *rand.Rand, text []isa.Inst) []isa.Inst {
	isValue := func(r isa.Reg) bool { return r >= 6 && r <= 29 }
	type slot struct{ inst, field int }
	var slots []slot
	for i, in := range text {
		if in.Op.HasRd() && isValue(in.Rd) {
			slots = append(slots, slot{i, 0})
		}
		if in.Op.HasRs1() && isValue(in.Rs1) {
			slots = append(slots, slot{i, 1})
		}
		if in.Op.HasRs2() && isValue(in.Rs2) {
			slots = append(slots, slot{i, 2})
		}
	}
	if len(slots) == 0 {
		return nil
	}
	s := slots[rng.Intn(len(slots))]
	out := append([]isa.Inst(nil), text...)
	r := isa.Reg(6 + rng.Intn(24))
	switch s.field {
	case 0:
		out[s.inst].Rd = r
	case 1:
		out[s.inst].Rs1 = r
	default:
		out[s.inst].Rs2 = r
	}
	return out
}

// mutSplice inserts a chunk of straight-line, non-faulting donor
// instructions into the text, remapping every surviving branch/JAL offset
// across the insertion point (the inverse of removeRange's remap). This is
// the recombination operator: it produces genuinely new program layouts out
// of coverage-rich material, which matters because the signature keys on
// instruction sites — an inserted chunk both contributes its own sites and
// shifts every downstream site.
func mutSplice(rng *rand.Rand, text, donor []isa.Inst) []isa.Inst {
	chunk := safeChunk(rng, donor)
	if chunk == nil {
		return nil
	}
	// Insert after the first instruction at the earliest, keeping the
	// generator's prologue (gp/data setup) first.
	p := 1 + rng.Intn(len(text))
	k := len(chunk)
	out := make([]isa.Inst, 0, len(text)+k)
	out = append(out, text[:p]...)
	out = append(out, chunk...)
	out = append(out, text[p:]...)
	shift := func(x int) int {
		if x < p {
			return x
		}
		return x + k
	}
	for i, in := range text {
		if !in.Op.IsBranch() && in.Op != isa.JAL {
			continue
		}
		tgt := i + int(in.Imm)/isa.InstBytes
		if tgt < 0 || tgt > len(text) {
			return nil
		}
		out[shift(i)].Imm = int64(shift(tgt)-shift(i)) * isa.InstBytes
	}
	return out
}

// safeChunk copies a run of donor instructions that cannot fault or diverge
// in any register/memory context: no control flow (offsets would dangle), no
// HALT (dead code after it wastes the mutant), and memory ops only when
// gp-relative (the generator keeps those offsets in-bounds; computed
// addresses depend on masking instructions that may not come along).
func safeChunk(rng *rand.Rand, donor []isa.Inst) []isa.Inst {
	if len(donor) == 0 {
		return nil
	}
	safe := func(in isa.Inst) bool {
		if in.Op.IsControl() || in.Op == isa.HALT || in.Op == isa.RDCYCLE {
			return false
		}
		if (in.Op.MemBytes() > 0 || in.Op == isa.CFLUSH) && in.Rs1 != isa.RegGP {
			return false
		}
		return true
	}
	for attempt := 0; attempt < 6; attempt++ {
		start := rng.Intn(len(donor))
		want := 2 + rng.Intn(15)
		var chunk []isa.Inst
		for i := start; i < len(donor) && len(chunk) < want; i++ {
			if !safe(donor[i]) {
				break
			}
			chunk = append(chunk, donor[i])
		}
		if len(chunk) >= 2 {
			return chunk
		}
	}
	return nil
}

// mutRetarget points one forward branch or jump at a different forward
// target. Backward branches are loop latches and are left alone (retargeting
// one risks a non-terminating mutant; the reference model would run it to
// its instruction limit on every execution).
func mutRetarget(rng *rand.Rand, text []isa.Inst) []isa.Inst {
	n := len(text)
	var idxs []int
	for i, in := range text {
		if (in.Op.IsBranch() || in.Op == isa.JAL) && in.Imm > 0 && i < n-1 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	i := idxs[rng.Intn(len(idxs))]
	span := n - 1 - i
	if span > 8 {
		span = 8
	}
	tgt := i + 1 + rng.Intn(span)
	out := append([]isa.Inst(nil), text...)
	out[i].Imm = int64(tgt-i) * isa.InstBytes
	return out
}
