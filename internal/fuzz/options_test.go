package fuzz

import (
	"reflect"
	"testing"
	"time"

	"levioso/internal/engine"
	"levioso/internal/simerr"
)

func TestNormalizeDefaults(t *testing.T) {
	var o Options
	if err := o.Normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Count != 64 {
		t.Errorf("Count = %d, want 64", o.Count)
	}
	if o.Workers < 1 || o.Workers > 8 {
		t.Errorf("Workers = %d, want 1..8", o.Workers)
	}
	if !reflect.DeepEqual(o.Profiles, Profiles()) {
		t.Errorf("Profiles = %v", o.Profiles)
	}
	if !reflect.DeepEqual(o.Policies, engine.SweepPolicies()) {
		t.Errorf("Policies = %v", o.Policies)
	}
	if o.MaxCycles != 4_000_000 || o.RefMaxInsts != 2_000_000 {
		t.Errorf("limits: %d / %d", o.MaxCycles, o.RefMaxInsts)
	}
	if o.Deadline != 30*time.Second || o.ShrinkBudget != 250 {
		t.Errorf("deadline %v, budget %d", o.Deadline, o.ShrinkBudget)
	}
}

func TestNormalizeDurationKeepsCountUnbounded(t *testing.T) {
	o := Options{Duration: time.Second}
	if err := o.Normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Count != 0 {
		t.Errorf("Count = %d, want 0 (duration-bounded)", o.Count)
	}
}

func TestNormalizeRejectsBounds(t *testing.T) {
	cases := map[string]Options{
		"negative count":    {Count: -1},
		"huge count":        {Count: MaxCount + 1},
		"negative workers":  {Workers: -1},
		"too many workers":  {Workers: MaxWorkers + 1},
		"negative duration": {Duration: -time.Second},
		"negative deadline": {Deadline: -time.Second},
		"negative snapshot": {SnapshotEvery: -time.Second},
		"negative budget":   {ShrinkBudget: -1},
		"unknown profile":   {Profiles: []Profile{"no-such"}},
		"unknown policy":    {Policies: []string{"no-such-policy"}},
	}
	for name, o := range cases {
		err := o.Normalize()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if k := simerr.KindOf(err); k != simerr.KindBuild {
			t.Errorf("%s: kind %v, want build", name, k)
		}
	}
}

// Policy specs come back canonicalized, so journals, campaign digests, and
// finding attributions see one spelling per configuration regardless of how
// the caller spelled it.
func TestNormalizeCanonicalizesPolicies(t *testing.T) {
	for _, p := range engine.SweepPolicies() {
		o := Options{Policies: []string{p}}
		if err := o.Normalize(); err != nil {
			t.Fatalf("sweep policy %q rejected: %v", p, err)
		}
		if len(o.Policies) != 1 {
			t.Fatalf("policy %q: got %v", p, o.Policies)
		}
		// Idempotence: the canonical spelling canonicalizes to itself.
		o2 := Options{Policies: []string{o.Policies[0]}}
		if err := o2.Normalize(); err != nil {
			t.Fatal(err)
		}
		if o2.Policies[0] != o.Policies[0] {
			t.Errorf("canonicalization not idempotent: %q -> %q", o.Policies[0], o2.Policies[0])
		}
	}
}
