package fuzz

import (
	"bytes"
	"testing"
)

// Generation must be a pure function of (profile, seed, index): the journal
// and the shrinker both rely on re-deriving the identical program.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		for i := 0; i < 4; i++ {
			seed := CaseSeed(42, i)
			a, err := Generate(p, seed, i)
			if err != nil {
				t.Fatalf("%s[%d]: %v", p, i, err)
			}
			b, err := Generate(p, seed, i)
			if err != nil {
				t.Fatalf("%s[%d]: %v", p, i, err)
			}
			ab, err := a.Prog.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			bb, err := b.Prog.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, bb) {
				t.Errorf("%s[%d]: same seed, different program", p, i)
			}
			if a.Secret != b.Secret || a.TimingDep != b.TimingDep {
				t.Errorf("%s[%d]: same seed, different metadata", p, i)
			}
		}
	}
}

// Distinct seeds must give distinct programs (or the fuzzer explores nothing).
func TestGenerateVaries(t *testing.T) {
	a, err := Generate(ProfileBranchStorm, CaseSeed(1, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ProfileBranchStorm, CaseSeed(1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := a.Prog.MarshalBinary()
	bb, _ := b.Prog.MarshalBinary()
	if bytes.Equal(ab, bb) {
		t.Error("different case seeds produced the identical program")
	}
}

// Every generated program must be structurally valid and carry branch hints
// from the annotation pass (the Levioso policies are unsound without them).
func TestGeneratedProgramsAnnotated(t *testing.T) {
	for _, p := range Profiles() {
		c, err := Generate(p, CaseSeed(7, 3), 3)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := c.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", p, err)
		}
		hasBranch := false
		for _, in := range c.Prog.Text {
			if in.Op.IsBranch() {
				hasBranch = true
			}
		}
		if hasBranch && len(c.Prog.Hints) == 0 {
			t.Errorf("%s: branches present but no hints", p)
		}
	}
}

func TestParseProfiles(t *testing.T) {
	all, err := ParseProfiles("")
	if err != nil || len(all) != len(Profiles()) {
		t.Fatalf("empty spec: got %v, %v", all, err)
	}
	two, err := ParseProfiles("gadget, branch-storm")
	if err != nil || len(two) != 2 || two[0] != ProfileGadget || two[1] != ProfileBranchStorm {
		t.Fatalf("two-profile spec: got %v, %v", two, err)
	}
	if _, err := ParseProfiles("no-such-profile"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestCaseSeedSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := CaseSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
}
