// Package fuzz is the differential fuzzing subsystem: a seeded program
// generator over the LEV64 ISA, an oracle stack that judges every generated
// program under every registered secure-speculation policy (architectural
// differential vs the reference model, bit-exact determinism, core
// invariants under fault-injected squash storms, the gadget security oracle,
// and panic/limit capture through simerr), an auto-shrinker that minimizes
// failures to small repros, and a crash-safe corpus (atomic repro files plus
// a journaled session that resumes without re-executing completed cases).
package fuzz

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"levioso/internal/obs"
)

// Record is one reported finding with its case attribution (Index -1: the
// session-level security matrix check).
type Record struct {
	Index   int
	Name    string
	Finding Finding
	Repro   string // repro file name, when persisted
}

// Summary aggregates one session.
type Summary struct {
	Cases   int // cases judged this session (excluding resumed)
	Resumed int // cases satisfied from the journal without re-execution
	Skipped int // cases the oracles could not judge (deadline/degenerate)
	Execs   int // simulator + reference executions (including shrinking)
	Elapsed time.Duration

	Findings []Record
	ByOracle map[string]int

	// Shrink effectiveness: total pre-/post-shrink instruction counts over
	// the shrunk repros, and oracle evaluations spent shrinking.
	ShrunkFrom, ShrunkTo, ShrinkEvals int

	// GadgetLeaksUnsafe counts gadget cases whose probe recovered the secret
	// on the unprotected baseline — proof the generated gadgets actually leak.
	GadgetLeaksUnsafe int
}

// ExecsPerSec is the session throughput.
func (s *Summary) ExecsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Execs) / s.Elapsed.Seconds()
}

// ShrinkRatio is the aggregate size reduction across shrunk repros.
func (s *Summary) ShrinkRatio() float64 {
	if s.ShrunkFrom == 0 {
		return 0
	}
	return 1 - float64(s.ShrunkTo)/float64(s.ShrunkFrom)
}

// Run executes one fuzzing session: Workers goroutines pull case indices
// from a shared counter, generate, judge, shrink and persist. Panics in a
// worker are isolated into OraclePanic findings for that case. With a corpus
// directory, completed cases are journaled (fsync per entry); a rerun of the
// same session resumes from the journal, trusting recorded verdicts instead
// of re-executing.
//
// Run normalizes its options itself (Normalize), so a caller-side bounds
// mistake surfaces as a typed KindBuild error before any case executes.
func Run(ctx context.Context, cfg Options) (*Summary, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}

	var journal *Journal
	if cfg.CorpusDir != "" {
		if err := os.MkdirAll(cfg.CorpusDir, 0o755); err != nil {
			return nil, fmt.Errorf("fuzz: corpus dir: %w", err)
		}
		var err error
		journal, err = OpenJournal(filepath.Join(cfg.CorpusDir, JournalName))
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	sum := &Summary{ByOracle: map[string]int{}}
	met := newSessionMetrics(ctx)

	// The once-per-session matrix check: the three attack gadgets replayed
	// under every policy against the documented leak expectations.
	if !cfg.NoMatrix {
		for _, f := range SecurityMatrix(cfg.Policies) {
			sum.Findings = append(sum.Findings, Record{Index: -1, Name: "security-matrix", Finding: f})
			sum.ByOracle[f.Oracle]++
			met.findings.With(f.Oracle).Inc()
			logf(cfg.Log, "fuzz: security-matrix: %s", f)
		}
	}

	// The periodic snapshot reads the lock-free obs counters, never the
	// mutex-guarded Summary, so it can tick at any rate without contending
	// with the workers.
	snapDone := make(chan struct{})
	if cfg.SnapshotEvery > 0 && cfg.Log != nil {
		go func() {
			t := time.NewTicker(cfg.SnapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-snapDone:
					return
				case <-t.C:
					elapsed := time.Since(start)
					execs := met.execs.Value()
					logf(cfg.Log, "fuzz: snapshot cases=%d execs=%d execs/s=%.0f findings=%d shrink-evals=%d elapsed=%s",
						met.cases.Value(), execs,
						float64(execs)/elapsed.Seconds(),
						met.findingCount.Value(), met.shrinkEvals.Value(),
						elapsed.Round(time.Second))
				}
			}
		}()
	}

	var (
		mu   sync.Mutex
		next int64
		wg   sync.WaitGroup
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(atomic.AddInt64(&next, 1) - 1)
				if cfg.Count > 0 && idx >= cfg.Count {
					return
				}
				if ctx.Err() != nil {
					return
				}
				runOne(ctx, cfg, journal, idx, &mu, sum, met)
			}
		}()
	}
	wg.Wait()
	close(snapDone)

	sort.Slice(sum.Findings, func(i, j int) bool { return sum.Findings[i].Index < sum.Findings[j].Index })
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// sessionMetrics is the session's obs counter set, resolved once per Run so
// workers only touch atomics. The registry comes from ctx (levfuzz uses the
// process default; tests can isolate one via obs.WithRegistry).
type sessionMetrics struct {
	cases        *obs.Counter
	execs        *obs.Counter
	skipped      *obs.Counter
	shrinkEvals  *obs.Counter
	findingCount *obs.Counter
	findings     *obs.CounterVec
}

func newSessionMetrics(ctx context.Context) *sessionMetrics {
	reg := obs.FromContext(ctx)
	return &sessionMetrics{
		cases:        reg.Counter("fuzz_cases_total", "fuzz cases judged (excluding journal-resumed)"),
		execs:        reg.Counter("fuzz_execs_total", "simulator and reference executions, including shrinking"),
		skipped:      reg.Counter("fuzz_skipped_total", "cases the oracles could not judge"),
		shrinkEvals:  reg.Counter("fuzz_shrink_evals_total", "oracle evaluations spent shrinking findings"),
		findingCount: reg.Counter("fuzz_findings_reported_total", "findings reported across all oracles"),
		findings:     reg.CounterVec("fuzz_findings_total", "findings reported, by oracle", "oracle"),
	}
}

// runOne generates, judges, shrinks and persists a single case index.
func runOne(ctx context.Context, cfg Options, journal *Journal, idx int, mu *sync.Mutex, sum *Summary, met *sessionMetrics) {
	profile := cfg.Profiles[idx%len(cfg.Profiles)]

	// Resume: a journaled verdict stands in for re-execution entirely.
	if journal != nil {
		if e, ok := journal.Lookup(idx); ok {
			mu.Lock()
			sum.Resumed++
			if e.Verdict == "skip" {
				sum.Skipped++
			}
			for _, f := range e.Findings {
				sum.Findings = append(sum.Findings, Record{Index: idx, Name: caseName(profile, idx), Finding: f, Repro: e.Repro})
				sum.ByOracle[f.Oracle]++
			}
			mu.Unlock()
			return
		}
	}

	c, verdict, shrink := judgeOne(ctx, cfg, profile, idx)

	// A case cut short by the session clock is not a verdict: leave it out of
	// the journal so a resumed session re-runs it properly.
	if ctx.Err() != nil && c != nil && len(verdict.Findings) == 0 && !verdict.Skipped {
		return
	}

	name := caseName(profile, idx)
	if c != nil {
		name = c.Name()
	}

	entry := Entry{Index: idx, Seed: CaseSeed(cfg.Seed, idx), Profile: profile, Verdict: "ok", Execs: verdict.Execs}
	var reproName string
	if len(verdict.Findings) > 0 {
		entry.Verdict = "finding"
		entry.Findings = verdict.Findings
		if cfg.CorpusDir != "" {
			final := c
			findings := verdict.Findings
			orig := 0
			if shrink != nil {
				final, findings, orig = shrink.Case, shrink.Findings, shrink.OrigInsts
			}
			if r, err := NewRepro(final, cfg.Policies, findings, orig); err == nil {
				if _, err := r.Write(cfg.CorpusDir); err == nil {
					reproName = r.FileName()
				} else {
					logf(cfg.Log, "fuzz: %s: repro write failed: %v", name, err)
				}
			}
		}
		entry.Repro = reproName
	} else if verdict.Skipped {
		entry.Verdict = "skip"
	}

	met.cases.Inc()
	met.execs.Add(uint64(verdict.Execs))
	if verdict.Skipped {
		met.skipped.Inc()
	}
	if shrink != nil {
		met.execs.Add(uint64(shrink.Evals))
		met.shrinkEvals.Add(uint64(shrink.Evals))
	}
	for _, f := range verdict.Findings {
		met.findingCount.Inc()
		met.findings.With(f.Oracle).Inc()
	}

	mu.Lock()
	sum.Cases++
	sum.Execs += verdict.Execs
	if verdict.Skipped {
		sum.Skipped++
	}
	if verdict.GadgetLeakUnsafe {
		sum.GadgetLeaksUnsafe++
	}
	if shrink != nil {
		sum.Execs += shrink.Evals // each eval is at least one execution
		sum.ShrinkEvals += shrink.Evals
		if shrink.Reproduced && shrink.FinalInsts < shrink.OrigInsts {
			sum.ShrunkFrom += shrink.OrigInsts
			sum.ShrunkTo += shrink.FinalInsts
		}
	}
	for _, f := range verdict.Findings {
		sum.Findings = append(sum.Findings, Record{Index: idx, Name: name, Finding: f, Repro: reproName})
		sum.ByOracle[f.Oracle]++
	}
	mu.Unlock()

	for _, f := range verdict.Findings {
		logf(cfg.Log, "fuzz: %s: %s", name, f)
	}

	if journal != nil {
		if err := journal.Record(entry); err != nil {
			logf(cfg.Log, "fuzz: %s: journal: %v", name, err)
		}
	}
}

// judgeOne generates and judges one case with panic isolation, shrinking the
// first finding when configured. Returns the (possibly shrunk-source) case,
// its verdict, and the shrink result when one ran.
func judgeOne(ctx context.Context, cfg Options, profile Profile, idx int) (c *Case, verdict Verdict, shrink *ShrinkResult) {
	defer func() {
		if r := recover(); r != nil {
			verdict.add(Finding{Oracle: OraclePanic, Kind: "worker",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())})
		}
	}()

	c, err := Generate(profile, CaseSeed(cfg.Seed, idx), idx)
	if err != nil {
		verdict.add(Finding{Oracle: OracleGenerator, Kind: "generate", Detail: err.Error()})
		return nil, verdict, nil
	}

	verdict = RunOracles(ctx, c, cfg)
	if len(verdict.Findings) == 0 || cfg.NoShrink {
		return c, verdict, nil
	}

	res := Shrink(ctx, c, verdict.Findings[0], cfg)
	return c, verdict, &res
}

func caseName(p Profile, idx int) string { return fmt.Sprintf("fuzz-%s-%06d", p, idx) }

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
