package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestReproRoundTrip(t *testing.T) {
	c, err := Generate(ProfileStoreLoad, CaseSeed(9, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	findings := []Finding{{Oracle: OracleLimits, Policy: "unsafe", Kind: "watchdog", Detail: "x"}}
	r, err := NewRepro(c, []string{"unsafe"}, findings, 120)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := r.Write(dir)
	if err != nil {
		t.Fatal(err)
	}

	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name() || got.Seed != c.Seed || got.OrigInsts != 120 || !reflect.DeepEqual(got.Findings, findings) {
		t.Errorf("round trip changed metadata: %+v", got)
	}
	c2, err := got.Case()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.Prog.MarshalBinary()
	have, _ := c2.Prog.MarshalBinary()
	if string(want) != string(have) {
		t.Error("round trip changed the program image")
	}

	// No temp droppings survive a successful write.
	if tmp, _ := filepath.Glob(filepath.Join(dir, ".repro-*")); len(tmp) != 0 {
		t.Errorf("leftover temp files: %v", tmp)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil || len(corpus) != 1 {
		t.Fatalf("LoadCorpus: %v, %v", corpus, err)
	}
}

func TestJournalResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	cfg := Options{
		Seed:      1,
		Count:     3,
		Workers:   2,
		CorpusDir: dir,
		NoMatrix:  true,
		Policies:  []string{"unsafe"},
		NoStorm:   true,
	}
	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cases != 3 || first.Resumed != 0 {
		t.Fatalf("first session: cases=%d resumed=%d", first.Cases, first.Resumed)
	}

	// Same session again, extended: the three journaled cases must resume
	// with zero re-execution and identical verdicts; only the new ones run.
	cfg.Count = 6
	second, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 3 || second.Cases != 3 {
		t.Errorf("second session: cases=%d resumed=%d, want 3/3", second.Cases, second.Resumed)
	}
	if len(second.Findings) != len(first.Findings)*2 && len(first.Findings) == 0 && len(second.Findings) != 0 {
		t.Errorf("verdicts changed across resume: %v -> %v", first.Findings, second.Findings)
	}
}

func TestJournalHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JournalName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Entry{Index: 0, Verdict: "ok", Execs: 5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Entry{Index: 1, Verdict: "finding", Execs: 7}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a torn half-written trailing record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":2,"verdict":"o`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("after torn tail: %d entries, want 2", j2.Len())
	}
	if _, ok := j2.Lookup(2); ok {
		t.Error("torn entry resurrected")
	}
	if e, ok := j2.Lookup(1); !ok || e.Verdict != "finding" || e.Execs != 7 {
		t.Errorf("entry 1: %+v, %v", e, ok)
	}

	// The healed journal must accept (and later read back) a clean append.
	if err := j2.Record(Entry{Index: 2, Verdict: "ok", Execs: 9}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if e, ok := j3.Lookup(2); !ok || e.Execs != 9 {
		t.Errorf("post-heal append lost: %+v, %v", e, ok)
	}
}
