package fuzz

import (
	"io"
	"runtime"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/faultinject"
	"levioso/internal/secure"
	"levioso/internal/simerr"
)

// MaxWorkers bounds the Workers option: more parallel oracle stacks than
// this is a configuration mistake (each worker runs whole policy sweeps),
// and the bound keeps flag parsing and JSON decoding rejecting it
// identically.
const MaxWorkers = 64

// MaxCount bounds the Count option for the same reason: a million-case
// request through the HTTP handler is a typo, not a plan.
const MaxCount = 1_000_000

// Options is the single option surface for the fuzzing subsystem — one
// session (Run), one campaign (Campaign), and every oracle-stack invocation
// share it. It mirrors engine.Overrides: cmd/levfuzz flag parsing and the
// levserve /v1/fuzz JSON handler both funnel through Normalize, so
// defaults, bounds checks, and policy-spec canonicalization live in exactly
// one place and a request rejected on the command line is rejected
// identically over HTTP.
type Options struct {
	// --------------------------------------------------------- session ----

	// Seed is the session base seed; case i derives its own seed from it
	// (CaseSeed), which is what makes sessions and campaigns resumable
	// without persisting generator state.
	Seed uint64
	// Profiles cycles per fresh case index (default: all profiles).
	Profiles []Profile
	// Count bounds the number of cases (0 with Duration set: unbounded;
	// 0 without: 64). For a campaign the count is absolute: resuming a
	// half-done campaign with the same Count finishes the remainder.
	Count int
	// Duration bounds the session wall clock (0: run until Count).
	Duration time.Duration
	// Workers is the parallel worker count for Run (default: GOMAXPROCS,
	// capped at 8; hard-bounded by MaxWorkers). Campaigns are sequential —
	// corpus evolution must be deterministic — and ignore it.
	Workers int
	// CorpusDir, when set, receives shrunk repros and the resume journal
	// (Run). Campaigns name their own directory and ignore it.
	CorpusDir string
	// NoShrink persists findings unshrunk.
	NoShrink bool
	// NoMatrix skips the once-per-session attack expectation matrix check.
	NoMatrix bool
	// Log, when set, receives progress lines as findings appear.
	Log io.Writer
	// SnapshotEvery, when positive and Log is set, emits a periodic
	// one-line throughput snapshot so long unbounded sessions stay
	// observable.
	SnapshotEvery time.Duration

	// ---------------------------------------------------------- oracle ----

	// Policies to run every case under (default: the full registry sweep —
	// every family, parameterized families at every level). Normalize
	// resolves each spec against the registry and replaces it with the
	// canonical spelling, so journals, findings, and campaign digests all
	// see one spelling per configuration.
	Policies []string
	// MaxCycles bounds each core run (default 4M; gadget cases get at
	// least 20M — the probe loop is long).
	MaxCycles uint64
	// RefMaxInsts bounds the reference pre-run (default 2M; generated
	// programs retire well under 100k instructions, so hitting this means
	// the case is degenerate and is skipped, not failed).
	RefMaxInsts uint64
	// Deadline bounds each run's wall-clock time (default 30s). Expiry
	// skips the run (deadlines are machine load, not simulator bugs).
	Deadline time.Duration
	// Faults, when non-nil, is attached (via a fresh seeded injector per
	// run, keeping runs deterministic) to every core-path simulation —
	// the mutation-testing knob: an injected commit stall or squash storm
	// must surface as oracle findings.
	Faults *faultinject.Plan
	// NoStorm skips the squash-storm invariants pass (the shrinker narrows
	// to it only when the target finding came from the storm stage).
	NoStorm bool
	// ShrinkBudget caps oracle-stack evaluations during shrinking
	// (default 250).
	ShrinkBudget int
	// Coverage, when non-nil, accumulates the microarchitectural coverage
	// signature of every run the oracle stack performs (the campaign
	// scheduler attaches a fresh sink per case and feeds the union back
	// into corpus selection).
	Coverage *cpu.CoverageSink

	// -------------------------------------------------------- campaign ----

	// Blind disables coverage-guided corpus mutation in a campaign: every
	// case is generated fresh from the profile cycle, exactly like Run.
	// The control arm of the coverage-growth comparison.
	Blind bool
	// Progress, when non-nil, is called by Campaign after every completed
	// case with the campaign's running totals (the levserve /v1/fuzz
	// status endpoint polls these).
	Progress func(Progress)
}

// Normalize applies defaults and validates bounds, returning a typed
// KindBuild error on anything out of range: negative counts or durations,
// oversized worker pools, unknown profiles or policy specs. Policy specs
// are resolved against the registry (secure.Resolve formats the
// unknown-policy error) and replaced by their canonical spelling. Run and
// Campaign normalize their options themselves; cli and serve call it
// eagerly to reject bad requests before any work happens.
func (o *Options) Normalize() error {
	if o.Count < 0 || o.Count > MaxCount {
		return simerr.New(simerr.KindBuild, "fuzz: count %d out of range [0, %d]", o.Count, MaxCount)
	}
	if o.Workers < 0 || o.Workers > MaxWorkers {
		return simerr.New(simerr.KindBuild, "fuzz: workers %d out of range [0, %d]", o.Workers, MaxWorkers)
	}
	if o.Duration < 0 {
		return simerr.New(simerr.KindBuild, "fuzz: negative duration %v", o.Duration)
	}
	if o.Deadline < 0 {
		return simerr.New(simerr.KindBuild, "fuzz: negative deadline %v", o.Deadline)
	}
	if o.SnapshotEvery < 0 {
		return simerr.New(simerr.KindBuild, "fuzz: negative snapshot interval %v", o.SnapshotEvery)
	}
	if o.ShrinkBudget < 0 {
		return simerr.New(simerr.KindBuild, "fuzz: negative shrink budget %d", o.ShrinkBudget)
	}
	if len(o.Profiles) == 0 {
		o.Profiles = Profiles()
	} else {
		for _, p := range o.Profiles {
			if !knownProfile(p) {
				return simerr.New(simerr.KindBuild, "fuzz: unknown profile %q (have %v)", p, Profiles())
			}
		}
	}
	if len(o.Policies) == 0 {
		o.Policies = engine.SweepPolicies()
	} else {
		canon := make([]string, len(o.Policies))
		for i, p := range o.Policies {
			spec, err := secure.Resolve(p, nil)
			if err != nil {
				return &simerr.RunError{Kind: simerr.KindBuild, Detail: "policy", Err: err}
			}
			canon[i] = spec.String()
		}
		o.Policies = canon
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Count == 0 && o.Duration <= 0 {
		o.Count = 64
	}
	*o = o.withDefaults()
	return nil
}

// withDefaults fills the oracle-stack defaults without validating. The
// oracle entry points (RunOracles, Shrink) apply it so direct callers —
// tests, the replay suite — can pass sparse Options; the session/campaign
// entry points run the full Normalize instead.
func (o Options) withDefaults() Options {
	if len(o.Policies) == 0 {
		o.Policies = engine.SweepPolicies()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 4_000_000
	}
	if o.RefMaxInsts == 0 {
		o.RefMaxInsts = 2_000_000
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * time.Second
	}
	if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 250
	}
	return o
}

func knownProfile(p Profile) bool {
	for _, q := range Profiles() {
		if p == q {
			return true
		}
	}
	return false
}
