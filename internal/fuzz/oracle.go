package fuzz

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"levioso/internal/attack"
	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/faultinject"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/simerr"
)

// Oracle families. Every Finding is attributed to the oracle that observed
// it, which is what the summary table and the shrinker's match target key on.
const (
	// OracleDifferential: architectural mismatch against internal/ref —
	// exit code, console output, retired-instruction count, or a core-side
	// fault/divergence on a program the reference model completes.
	OracleDifferential = "differential"
	// OracleDeterminism: the same program under the same policy twice did
	// not produce bit-identical results (exit, output, cpu.Stats).
	OracleDeterminism = "determinism"
	// OracleInvariants: Core.CheckInvariants failed after completion or
	// after a fault-injected squash storm.
	OracleInvariants = "invariants"
	// OracleSecurity: a policy that promises coverage let a gadget's probe
	// recover the planted secret, or the attack expectation matrix moved.
	OracleSecurity = "security"
	// OracleLimits: watchdog or cycle/instruction-limit exhaustion on a
	// program the reference model completes (funneled through simerr).
	OracleLimits = "limits"
	// OraclePanic: a panic captured anywhere in a run.
	OraclePanic = "panic"
	// OracleBuild: an unexpected pre-simulation failure.
	OracleBuild = "build"
	// OracleGenerator: the generated program faulted on the reference model
	// — a generator bug worth failing loudly on.
	OracleGenerator = "generator"
)

// Finding is one oracle failure. The (Oracle, Policy, Kind) triple
// identifies the failure class — the shrinker preserves it while minimizing.
type Finding struct {
	Oracle string `json:"oracle"`
	Policy string `json:"policy,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Detail string `json:"detail,omitempty"`
}

func (f Finding) String() string {
	s := f.Oracle
	if f.Policy != "" {
		s += "/" + f.Policy
	}
	if f.Kind != "" {
		s += " (" + f.Kind + ")"
	}
	if f.Detail != "" {
		s += ": " + f.Detail
	}
	return s
}

// sameClass reports whether two findings are the same failure class (the
// shrinker's acceptance criterion: detail strings may change as the program
// shrinks, the class must not).
func (f Finding) sameClass(g Finding) bool {
	return f.Oracle == g.Oracle && f.Policy == g.Policy && f.Kind == g.Kind
}

// Verdict is the oracle stack's judgement of one case.
type Verdict struct {
	Findings []Finding
	// Skipped marks a case the oracles could not judge at all (reference
	// deadline or instruction limit).
	Skipped    bool
	SkipReason string
	// SkippedRuns counts individual runs dropped on wall-clock deadlines
	// while the rest of the stack still ran.
	SkippedRuns int
	// Execs counts simulator/reference executions performed.
	Execs int
	// GadgetLeakUnsafe records that the unsafe baseline recovered the
	// planted secret — the expected leak that proves the generated gadget
	// actually works (a statistic, not a finding).
	GadgetLeakUnsafe bool
}

func (v *Verdict) add(f Finding) { v.Findings = append(v.Findings, f) }

// RunOracles runs the full oracle stack over one case:
//
//	(a) architectural differential vs internal/ref (exit code, output,
//	    retired-instruction count) under every policy,
//	(b) determinism — the identical run twice must be bit-identical,
//	(c) Core.CheckInvariants after completion and after a fault-injected
//	    squash storm (plus an architectural re-check: injected faults are
//	    microarchitectural and must never change architecture),
//	(d) the security oracle for gadget cases — a covering policy must keep
//	    the probe blind to the planted secret,
//	(e) panic/limit capture funneled through simerr.
//
// The stack is deterministic: the same case with the same options yields the
// same verdict, which is what makes corpus replay and journal resume exact.
func RunOracles(ctx context.Context, c *Case, opt Options) Verdict {
	opt = opt.withDefaults()
	var v Verdict

	maxCycles := opt.MaxCycles
	if c.TimingDep && maxCycles < 20_000_000 {
		maxCycles = 20_000_000
	}

	want, err := refRun(ctx, c, opt)
	v.Execs++
	if err != nil {
		switch k := simerr.KindOf(err); k {
		case simerr.KindDeadline:
			v.Skipped, v.SkipReason = true, "reference deadline"
		case simerr.KindInstLimit:
			v.Skipped, v.SkipReason = true, "reference instruction limit"
		default:
			// The generator guarantees architecturally clean programs; a
			// reference fault means the generator (or a shrink candidate)
			// broke that contract.
			v.add(Finding{Oracle: OracleGenerator, Kind: k.String(), Detail: err.Error()})
		}
		return v
	}

	for _, pol := range opt.Policies {
		runPolicyOracles(ctx, &v, c, pol, want, maxCycles, opt)
	}
	return v
}

// runPolicyOracles runs oracles (a), (b), (d) and both (c) stages for one
// policy.
func runPolicyOracles(ctx context.Context, v *Verdict, c *Case, pol string, want ref.Result, maxCycles uint64, opt Options) {
	// (a) + (e): one engine run with the reference cross-check.
	res, err := engineRun(ctx, c, pol, maxCycles, opt, !c.TimingDep, &want)
	v.Execs++
	if err != nil {
		f, skip := classifyRunErr(pol, err)
		if skip {
			v.SkippedRuns++
			return
		}
		v.add(f)
		return
	}
	if !c.TimingDep && res.Stats.Committed != want.Insts {
		v.add(Finding{
			Oracle: OracleDifferential, Policy: pol, Kind: "retired-count",
			Detail: fmt.Sprintf("core committed %d instructions, reference executed %d", res.Stats.Committed, want.Insts),
		})
	}

	// (d): the probe's guess must not equal the planted secret under any
	// policy whose contract covers the V1 (control-dependent) shape.
	if c.Profile == ProfileGadget {
		checkGadgetLeak(v, c, pol, res.Output)
	}

	// (b): bit-identical determinism of the identical request.
	res2, err2 := engineRun(ctx, c, pol, maxCycles, opt, false, nil)
	v.Execs++
	switch {
	case err2 != nil:
		if simerr.KindOf(err2) == simerr.KindDeadline {
			v.SkippedRuns++
		} else {
			v.add(Finding{
				Oracle: OracleDeterminism, Policy: pol, Kind: simerr.KindOf(err2).String(),
				Detail: "second identical run failed: " + err2.Error(),
			})
		}
	case res2.ExitCode != res.ExitCode || res2.Output != res.Output || res2.Stats != res.Stats:
		v.add(Finding{
			Oracle: OracleDeterminism, Policy: pol, Kind: "stats",
			Detail: fmt.Sprintf("same seed, different outcome: exit %d/%d, output %q/%q, cycles %d/%d",
				res.ExitCode, res2.ExitCode, res.Output, res2.Output, res.Stats.Cycles, res2.Stats.Cycles),
		})
	}

	// (c): invariants after clean completion, then under a squash storm.
	coreInvariants(ctx, v, c, pol, want, maxCycles, opt, false)
	if !opt.NoStorm {
		coreInvariants(ctx, v, c, pol, want, maxCycles, opt, true)
	}
}

// checkGadgetLeak implements oracle (d) for one policy's run output.
func checkGadgetLeak(v *Verdict, c *Case, pol string, output string) {
	guess, err := strconv.Atoi(strings.TrimSpace(output))
	if err != nil {
		v.add(Finding{Oracle: OracleSecurity, Policy: pol, Kind: "unparsable",
			Detail: fmt.Sprintf("gadget output %q is not a probe guess", output)})
		return
	}
	exp, err := attack.ExpectedLeaks(pol)
	if err != nil {
		return // policy outside the documented matrix: no contract to hold
	}
	// The V1 column assumes the gadget's secret is declared secret-typed;
	// cases without a secrets section (older corpus entries) are judged by
	// the undeclared-secret column instead, so secret-typed policies are
	// only held to the contract the program actually invokes.
	expLeak := exp.V1
	if len(c.Prog.Secrets) == 0 {
		expLeak = exp.Pub
	}
	if guess != int(c.Secret) {
		return
	}
	if expLeak {
		// The unprotected baseline leaking is the gadget working as built.
		v.GadgetLeakUnsafe = true
		return
	}
	v.add(Finding{Oracle: OracleSecurity, Policy: pol, Kind: "v1-leak",
		Detail: fmt.Sprintf("probe recovered planted secret %d under %s (coverage promised)", c.Secret, pol)})
}

// coreInvariants is oracle (c): a direct core run (so the post-run core is
// inspectable), CheckInvariants, and — because injected faults and storms
// are microarchitectural only — an architectural re-check against the
// reference result.
func coreInvariants(ctx context.Context, v *Verdict, c *Case, pol string, want ref.Result, maxCycles uint64, opt Options, storm bool) {
	stage := "completion"
	if storm {
		stage = "storm"
	}
	defer func() {
		if r := recover(); r != nil {
			v.add(Finding{Oracle: OraclePanic, Policy: pol, Kind: stage,
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack())})
		}
	}()

	p, err := secure.New(pol)
	if err != nil {
		v.add(Finding{Oracle: OracleBuild, Policy: pol, Kind: stage, Detail: err.Error()})
		return
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = maxCycles
	cfg.Coverage = opt.Coverage
	if plan := combinedPlan(c, opt, storm); plan != nil {
		faultinject.New(*plan, 1).Attach(&cfg)
	}
	core, err := cpu.New(c.Prog, cfg, p)
	if err != nil {
		v.add(Finding{Oracle: OracleBuild, Policy: pol, Kind: stage, Detail: err.Error()})
		return
	}
	rctx, cancel := runCtx(ctx, opt)
	defer cancel()
	res, err := core.RunContext(rctx)
	v.Execs++
	if err != nil {
		f, skip := classifyRunErr(pol, err)
		if skip {
			v.SkippedRuns++
			return
		}
		f.Kind = stage + ":" + f.Kind
		v.add(f)
		return
	}
	if ierr := core.CheckInvariants(); ierr != nil {
		v.add(Finding{Oracle: OracleInvariants, Policy: pol, Kind: stage, Detail: ierr.Error()})
	}
	if !c.TimingDep && (res.ExitCode != want.ExitCode || res.Output != want.Output) {
		v.add(Finding{Oracle: OracleDifferential, Policy: pol, Kind: stage,
			Detail: fmt.Sprintf("microarchitectural faults changed architecture: exit %d output %q, want %d %q",
				res.ExitCode, res.Output, want.ExitCode, want.Output)})
	}
}

// combinedPlan merges the session's injected faults with the storm fault.
// The seed mixes the case seed so storms differ per case but reproduce
// exactly per (case, options).
func combinedPlan(c *Case, opt Options, storm bool) *faultinject.Plan {
	if opt.Faults == nil && !storm {
		return nil
	}
	plan := faultinject.Plan{Seed: int64(c.Seed ^ 0x53746f726d)}
	if opt.Faults != nil {
		plan.Seed ^= opt.Faults.Seed
		plan.Faults = append(plan.Faults, opt.Faults.Faults...)
	}
	if storm {
		plan.Faults = append(plan.Faults, faultinject.Fault{Kind: faultinject.MispredictStorm, Prob: 0.5})
	}
	return &plan
}

// classifyRunErr folds a typed run failure into its oracle family.
// Deadlines are skips, not findings (wall-clock, not simulator state).
func classifyRunErr(pol string, err error) (Finding, bool) {
	k := simerr.KindOf(err)
	switch {
	case k == simerr.KindDeadline:
		return Finding{}, true
	case k == simerr.KindDivergence || k == simerr.KindMemFault:
		return Finding{Oracle: OracleDifferential, Policy: pol, Kind: k.String(), Detail: err.Error()}, false
	case simerr.IsLimit(err):
		return Finding{Oracle: OracleLimits, Policy: pol, Kind: k.String(), Detail: err.Error()}, false
	case k == simerr.KindPanic:
		return Finding{Oracle: OraclePanic, Policy: pol, Kind: k.String(), Detail: err.Error()}, false
	default:
		return Finding{Oracle: OracleBuild, Policy: pol, Kind: k.String(), Detail: err.Error()}, false
	}
}

func runCtx(ctx context.Context, opt Options) (context.Context, context.CancelFunc) {
	if opt.Deadline > 0 {
		return context.WithTimeout(ctx, opt.Deadline)
	}
	return context.WithCancel(ctx)
}

func refRun(ctx context.Context, c *Case, opt Options) (ref.Result, error) {
	rctx, cancel := runCtx(ctx, opt)
	defer cancel()
	return engine.Reference(rctx, c.Prog, ref.Limits{MaxInsts: opt.RefMaxInsts})
}

func engineRun(ctx context.Context, c *Case, pol string, maxCycles uint64, opt Options, verify bool, want *ref.Result) (*engine.Result, error) {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = maxCycles
	cfg.Coverage = opt.Coverage
	if opt.Faults != nil {
		// A fresh injector per run: the injector is stateful (PRNG, cycle
		// clock), and sharing one would break run-to-run determinism.
		faultinject.New(*opt.Faults, 1).Attach(&cfg)
	}
	req := engine.Request{
		Name: c.Name(), Program: c.Prog, Config: &cfg,
		Overrides: engine.Overrides{Policy: pol, Deadline: opt.Deadline},
	}
	if verify {
		req.Verify = true
		req.Want = want
	}
	return engine.Run(ctx, req)
}

// SecurityMatrix replays the four internal/attack gadgets under each policy
// and checks every outcome against the documented expectation matrix
// (attack.ExpectedLeaks). It catches drift in both directions: a covering
// policy that starts leaking, and an attack that stops working (unsafe MUST
// leak — otherwise the security oracle is checking a broken probe).
// Policies outside the documented matrix are ignored.
func SecurityMatrix(policies []string) []Finding {
	var known []string
	for _, p := range policies {
		if _, err := attack.ExpectedLeaks(p); err == nil {
			known = append(known, p)
		}
	}
	if len(known) == 0 {
		return nil
	}
	outs, err := attack.Run(known, nil)
	if err != nil {
		return []Finding{{Oracle: OracleSecurity, Kind: "matrix", Detail: err.Error()}}
	}
	var fs []Finding
	for _, o := range outs {
		exp, _ := attack.ExpectedLeaks(o.Policy)
		if got := o.Leaks(); got != exp {
			fs = append(fs, Finding{
				Oracle: OracleSecurity, Policy: o.Policy, Kind: "matrix",
				Detail: fmt.Sprintf("attack leak matrix {V1,CTData,CT}: got %+v, want %+v", got, exp),
			})
		}
	}
	return fs
}
