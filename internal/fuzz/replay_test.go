package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"levioso/internal/engine"
)

const corpusDir = "testdata/corpus"

// corpusSeed is the fixed session seed the checked-in regression corpus was
// generated from (UPDATE_FUZZ_CORPUS=1 go test -run TestUpdateCorpus).
const corpusSeed = 2024

// TestCorpusReplay replays every checked-in repro through the complete
// oracle stack under every registered policy — twice, asserting bit-identical
// verdicts. This is the regression gate: a simulator change that breaks
// architecture, determinism, invariants or the security contracts on any
// corpus program fails here before a fuzzing session ever runs.
func TestCorpusReplay(t *testing.T) {
	corpus, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < len(Profiles()) {
		t.Fatalf("corpus has %d repros, want at least one per profile (%d)", len(corpus), len(Profiles()))
	}
	opt := Options{Policies: engine.Policies()}
	for _, r := range corpus {
		c, err := r.Case()
		if err != nil {
			t.Fatal(err)
		}
		v1 := RunOracles(context.Background(), c, opt)
		if v1.Skipped {
			t.Errorf("%s: skipped: %s", r.Name, v1.SkipReason)
			continue
		}
		for _, f := range v1.Findings {
			t.Errorf("%s: regression: %s", r.Name, f)
		}
		v2 := RunOracles(context.Background(), c, opt)
		if !reflect.DeepEqual(v1, v2) {
			t.Errorf("%s: replay verdicts differ:\n  first:  %+v\n  second: %+v", r.Name, v1, v2)
		}
	}
}

// TestUpdateCorpus regenerates the seed corpus: one finding-free case per
// profile at the fixed corpus seed. Gated behind UPDATE_FUZZ_CORPUS=1 so a
// plain test run never rewrites testdata.
func TestUpdateCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to regenerate the seed corpus")
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range old {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	opt := Options{Policies: engine.Policies()}
	for i, p := range Profiles() {
		c, err := Generate(p, CaseSeed(corpusSeed, i), i)
		if err != nil {
			t.Fatal(err)
		}
		v := RunOracles(context.Background(), c, opt)
		if len(v.Findings) > 0 || v.Skipped {
			t.Fatalf("%s: seed corpus case must be clean: findings=%v skipped=%v", c.Name(), v.Findings, v.Skipped)
		}
		r, err := NewRepro(c, opt.Policies, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		path, err := r.Write(corpusDir)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d insts)", path, r.Insts)
	}
}
