package fuzz

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"levioso/internal/faultinject"
	"levioso/internal/simerr"
)

// campaignTestOptions is the small, fast configuration the campaign tests
// share: one policy, no storm stage, no gadget profile (its probe loop costs
// 20M cycles per run).
func campaignTestOptions() Options {
	return Options{
		Seed:     7,
		Count:    12,
		Profiles: []Profile{ProfileStoreLoad, ProfileBranchStorm},
		Policies: []string{"unsafe"},
		NoStorm:  true,
		NoShrink: true,
	}
}

func readState(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, CampaignStateName))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The determinism guarantee: a campaign canceled mid-run and resumed yields
// a state file bit-identical to an uninterrupted run's — same corpus, same
// coverage map, same finding buckets, same counters.
func TestCampaignResumeDeterminism(t *testing.T) {
	opt := campaignTestOptions()

	full := t.TempDir()
	sumA, err := Campaign(context.Background(), full, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sumA.Cases != opt.Count || sumA.Resumed != 0 {
		t.Fatalf("uninterrupted: cases=%d resumed=%d", sumA.Cases, sumA.Resumed)
	}

	// Interrupt after 5 committed cases, then resume.
	split := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	iopt := opt
	iopt.Progress = func(p Progress) {
		if p.Index >= 5 {
			cancel()
		}
	}
	if _, err := Campaign(ctx, split, iopt); err != nil {
		t.Fatal(err)
	}
	sumB, err := Campaign(context.Background(), split, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sumB.Resumed != 5 || sumB.Cases != opt.Count-5 {
		t.Errorf("resumed run: cases=%d resumed=%d, want %d/5", sumB.Cases, sumB.Resumed, opt.Count-5)
	}

	if a, b := readState(t, full), readState(t, split); string(a) != string(b) {
		t.Errorf("resumed state diverged from uninterrupted state:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", a, b)
	}
	if sumA.CoverageBits != sumB.CoverageBits || sumA.CorpusSize != sumB.CorpusSize {
		t.Errorf("coverage %d/%d, corpus %d/%d across resume",
			sumA.CoverageBits, sumB.CoverageBits, sumA.CorpusSize, sumB.CorpusSize)
	}
}

// A resumed campaign must refuse a changed configuration instead of silently
// mixing verdict streams.
func TestCampaignRejectsChangedOptions(t *testing.T) {
	opt := campaignTestOptions()
	opt.Count = 2
	dir := t.TempDir()
	if _, err := Campaign(context.Background(), dir, opt); err != nil {
		t.Fatal(err)
	}

	changed := opt
	changed.Policies = []string{"fence"}
	if _, err := Campaign(context.Background(), dir, changed); simerr.KindOf(err) != simerr.KindBuild {
		t.Errorf("changed policies accepted: %v", err)
	}
	reseeded := opt
	reseeded.Seed = 99
	if _, err := Campaign(context.Background(), dir, reseeded); simerr.KindOf(err) != simerr.KindBuild {
		t.Errorf("changed seed accepted: %v", err)
	}
	// Raising Count extends the campaign; it must NOT be rejected.
	extended := opt
	extended.Count = 4
	sum, err := Campaign(context.Background(), dir, extended)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 2 || sum.Cases != 2 {
		t.Errorf("extension: cases=%d resumed=%d, want 2/2", sum.Cases, sum.Resumed)
	}
}

// TestCampaignKillResumeHelper is the subprocess body of
// TestCampaignKillResume: it runs the shared campaign in the directory named
// by the environment and is killed (SIGKILL) by the parent mid-run.
func TestCampaignKillResumeHelper(t *testing.T) {
	dir := os.Getenv("LEVFUZZ_CAMPAIGN_DIR")
	if dir == "" {
		t.Skip("subprocess helper: run by TestCampaignKillResume")
	}
	opt := campaignTestOptions()
	opt.Count = 24
	if _, err := Campaign(context.Background(), dir, opt); err != nil {
		t.Fatal(err)
	}
}

// Crash-safety under a real kill -9: the state file is rewritten atomically
// after every case, so a SIGKILL at an arbitrary instant loses at most the
// in-flight case. The resumed campaign re-executes nothing committed and
// converges to the exact state an uninterrupted run produces.
func TestCampaignKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess campaign")
	}
	opt := campaignTestOptions()
	opt.Count = 24

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCampaignKillResumeHelper")
	cmd.Env = append(os.Environ(), "LEVFUZZ_CAMPAIGN_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for at least 3 committed cases, then kill -9.
	statePath := filepath.Join(dir, CampaignStateName)
	deadline := time.Now().Add(60 * time.Second)
	killedAt := -1
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(statePath); err == nil {
			var st struct {
				NextIndex int `json:"next_index"`
			}
			if json.Unmarshal(b, &st) == nil && st.NextIndex >= 3 {
				killedAt = st.NextIndex
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if killedAt < 0 {
		t.Fatal("subprocess campaign made no progress")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	sum, err := Campaign(context.Background(), dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	// No committed case re-executes: everything the subprocess persisted is
	// resumed, only the remainder runs. (The subprocess may have committed
	// more cases after our last poll, so >= killedAt.)
	if sum.Resumed < killedAt {
		t.Errorf("resumed %d cases, subprocess had committed >= %d", sum.Resumed, killedAt)
	}
	if sum.Resumed+sum.Cases != opt.Count {
		t.Errorf("resumed %d + executed %d != count %d", sum.Resumed, sum.Cases, opt.Count)
	}

	// And the converged state matches an uninterrupted run bit for bit.
	ref := t.TempDir()
	if _, err := Campaign(context.Background(), ref, opt); err != nil {
		t.Fatal(err)
	}
	if a, b := readState(t, ref), readState(t, dir); string(a) != string(b) {
		t.Error("post-kill state diverged from uninterrupted state")
	}
}

// The coverage-guided scheduler must beat blind generation: same seed, same
// case budget, strictly more coverage-signature bits discovered.
func TestCampaignGuidedBeatsBlind(t *testing.T) {
	opt := campaignTestOptions()
	opt.Count = 60
	opt.Profiles = []Profile{ProfileBranchStorm, ProfileStoreLoad, ProfilePointerChase}

	guided, err := Campaign(context.Background(), t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	bopt := opt
	bopt.Blind = true
	blind, err := Campaign(context.Background(), t.TempDir(), bopt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage bits: guided=%d blind=%d (corpus %d, mutated %d)",
		guided.CoverageBits, blind.CoverageBits, guided.CorpusSize, guided.Mutated)
	if guided.Mutated == 0 {
		t.Error("guided campaign never mutated")
	}
	if guided.CoverageBits <= blind.CoverageBits {
		t.Errorf("guided coverage %d not larger than blind %d", guided.CoverageBits, blind.CoverageBits)
	}
}

// Mutation check under the scheduler: a planted commit-stall fault must
// still surface as a limits finding, get shrunk, and land in a campaign
// bucket with its repro.
func TestCampaignInjectedFaultCaught(t *testing.T) {
	opt := campaignTestOptions()
	opt.Count = 3
	opt.Profiles = []Profile{ProfileBranchStorm}
	opt.NoShrink = false
	opt.ShrinkBudget = 60
	opt.Faults = &faultinject.Plan{Seed: 1, Faults: []faultinject.Fault{
		{Kind: faultinject.CommitStall, Start: 100},
	}}

	dir := t.TempDir()
	sum, err := Campaign(context.Background(), dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var hit *FindingBucket
	for _, b := range sum.Buckets {
		if b.Oracle == OracleLimits {
			hit = b
		}
	}
	if hit == nil {
		t.Fatalf("no limits bucket from the injected stall; buckets: %+v", sum.Buckets)
	}
	if len(hit.Repros) == 0 {
		t.Fatal("limits bucket has no repro")
	}
	r, err := LoadRepro(filepath.Join(dir, hit.Repros[0]))
	if err != nil {
		t.Fatal(err)
	}
	if r.OrigInsts == 0 || r.Insts >= r.OrigInsts {
		t.Errorf("repro not shrunk: %d insts (orig %d)", r.Insts, r.OrigInsts)
	}
}
