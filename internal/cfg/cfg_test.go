package cfg

import (
	"testing"

	"levioso/internal/asm"
	"levioso/internal/isa"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// diamond: if/else that reconverges.
const diamondSrc = `
main:
	li t0, 1
	beq t0, zero, else_
then_:
	addi a0, a0, 1
	j join
else_:
	addi a1, a1, 2
join:
	addi a2, a2, 3
	halt a2
`

func TestDiamondCFG(t *testing.T) {
	g := build(t, diamondSrc)
	// Expect 4 blocks: entry(+branch), then, else, join.
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", g.NumBlocks(), g)
	}
	entry := g.Blocks[0]
	if entry.Term != TermBranch || len(entry.Succs) != 2 {
		t.Errorf("entry term = %v succs = %v", entry.Term, entry.Succs)
	}
	join := g.BlockOf(mustIdx(t, g.Prog, "join"))
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v", join.Preds)
	}
	if join.Term != TermHalt {
		t.Errorf("join term = %v", join.Term)
	}
}

func TestDiamondReconvergence(t *testing.T) {
	g := build(t, diamondSrc)
	funcs := g.Functions()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d, want 1", len(funcs))
	}
	infos := funcs[0].AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d, want 1", len(infos))
	}
	bi := infos[0]
	if bi.ReconvPC != g.Prog.Symbols["join"] {
		t.Errorf("reconv = %#x, want join %#x", bi.ReconvPC, g.Prog.Symbols["join"])
	}
	// Region: then_ and else_ blocks; writes a0 and a1 only.
	if len(bi.Region) != 2 {
		t.Errorf("region = %v, want 2 blocks", bi.Region)
	}
	want := isa.RegMask(0).Set(isa.RegA0).Set(isa.RegA1)
	if bi.WriteSet != want {
		t.Errorf("writeset = %s, want %s", bi.WriteSet, want)
	}
}

func TestLoopReconvergence(t *testing.T) {
	g := build(t, `
main:
	li t0, 10
loop:
	addi t0, t0, -1
	bnez t0, loop
exit:
	halt zero
`)
	funcs := g.Functions()
	infos := funcs[0].AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d, want 1", len(infos))
	}
	bi := infos[0]
	// Loop back-branch reconverges at the exit block.
	if bi.ReconvPC != g.Prog.Symbols["exit"] {
		t.Errorf("reconv = %#x, want exit %#x", bi.ReconvPC, g.Prog.Symbols["exit"])
	}
	// Region is the loop body itself (reachable from the taken successor
	// without passing exit): writes t0.
	if !bi.WriteSet.Has(isa.RegT0) {
		t.Errorf("writeset %s missing t0", bi.WriteSet)
	}
}

func TestNestedIfReconvergence(t *testing.T) {
	g := build(t, `
main:
	beq a0, zero, outer_else
	beq a1, zero, inner_else
	addi t0, t0, 1
	j inner_join
inner_else:
	addi t1, t1, 1
inner_join:
	addi t2, t2, 1
	j outer_join
outer_else:
	addi t3, t3, 1
outer_join:
	halt zero
`)
	funcs := g.Functions()
	infos := funcs[0].AnalyzeBranches()
	if len(infos) != 2 {
		t.Fatalf("branches = %d, want 2", len(infos))
	}
	outer, inner := infos[0], infos[1]
	if outer.ReconvPC != g.Prog.Symbols["outer_join"] {
		t.Errorf("outer reconv = %#x, want %#x", outer.ReconvPC, g.Prog.Symbols["outer_join"])
	}
	if inner.ReconvPC != g.Prog.Symbols["inner_join"] {
		t.Errorf("inner reconv = %#x, want %#x", inner.ReconvPC, g.Prog.Symbols["inner_join"])
	}
	// Outer region includes everything through both arms: t0..t3.
	for _, r := range []isa.Reg{isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3} {
		if !outer.WriteSet.Has(r) {
			t.Errorf("outer writeset %s missing %s", outer.WriteSet, r)
		}
	}
	// Inner region is just the two arms: t0, t1 but not t2.
	want := isa.RegMask(0).Set(isa.RegT0).Set(isa.RegT1)
	if inner.WriteSet != want {
		t.Errorf("inner writeset = %s, want %s", inner.WriteSet, want)
	}
}

func TestCallInRegionUsesABISummary(t *testing.T) {
	g := build(t, `
main:
	beq a0, zero, join
	call helper
join:
	halt zero
helper:
	addi s2, s2, 1
	ret
`)
	funcs := g.Functions()
	// main and helper.
	if len(funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(funcs))
	}
	var mainF *Func
	for _, f := range funcs {
		if f.Name() == "main" {
			mainF = f
		}
	}
	infos := mainF.AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d", len(infos))
	}
	bi := infos[0]
	if bi.ReconvPC != g.Prog.Symbols["join"] {
		t.Errorf("reconv = %#x, want join", bi.ReconvPC)
	}
	if bi.WriteSet != CallerSavedMask {
		t.Errorf("writeset = %s, want caller-saved %s", bi.WriteSet, CallerSavedMask)
	}
	// Note: s2 written by the callee is callee-saved and correctly absent.
	if bi.WriteSet.Has(isa.RegS2) {
		t.Error("callee-saved register leaked into write set")
	}
}

func TestBranchOverReturnIsConservative(t *testing.T) {
	// One arm returns: paths do not reconverge inside the function.
	g := build(t, `
main:
	call f
	halt a0
f:
	beq a0, zero, early
	addi a0, a0, 1
	ret
early:
	li a0, 0
	ret
`)
	var fFunc *Func
	for _, fn := range g.Functions() {
		if fn.Name() == "f" {
			fFunc = fn
		}
	}
	infos := fFunc.AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d", len(infos))
	}
	if infos[0].ReconvPC != 0 {
		t.Errorf("reconv = %#x, want 0 (conservative)", infos[0].ReconvPC)
	}
	if infos[0].WriteSet != AllRegsMask {
		t.Errorf("writeset = %s, want all", infos[0].WriteSet)
	}
}

func TestIndirectJumpIsConservative(t *testing.T) {
	g := build(t, `
main:
	la t0, tgt
	beq a0, zero, ind
	addi a1, a1, 1
	j done
ind:
	jalr t1, 0(t0)   # indirect, statically unknown
done:
	halt zero
tgt:
	halt zero
`)
	funcs := g.Functions()
	infos := funcs[0].AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d", len(infos))
	}
	if infos[0].ReconvPC != 0 {
		t.Errorf("reconv = %#x, want 0: one arm ends in an indirect jump", infos[0].ReconvPC)
	}
}

func TestDominators(t *testing.T) {
	g := build(t, diamondSrc)
	f := g.Functions()[0]
	dom := f.Dominators()
	entry := f.Entry
	join := g.BlockOf(mustIdx(t, g.Prog, "join")).ID
	thenB := g.BlockOf(mustIdx(t, g.Prog, "then_")).ID
	if !dom.Dominates(entry, join) {
		t.Error("entry should dominate join")
	}
	if dom.Dominates(thenB, join) {
		t.Error("then_ should not dominate join")
	}
	if id, ok := dom.Idom(join); !ok || id != entry {
		t.Errorf("idom(join) = %d, %v; want entry %d", id, ok, entry)
	}
	if _, ok := dom.Idom(entry); ok {
		t.Error("entry has an idom")
	}
}

func TestPostDominates(t *testing.T) {
	g := build(t, diamondSrc)
	f := g.Functions()[0]
	pdom := f.PostDominators()
	entry := f.Entry
	join := g.BlockOf(mustIdx(t, g.Prog, "join")).ID
	thenB := g.BlockOf(mustIdx(t, g.Prog, "then_")).ID
	if !pdom.Dominates(join, entry) {
		t.Error("join should post-dominate entry")
	}
	if pdom.Dominates(thenB, entry) {
		t.Error("then_ should not post-dominate entry")
	}
}

func TestFunctionPartition(t *testing.T) {
	g := build(t, `
main:
	call a
	call b
	halt zero
a:
	addi t0, t0, 1
	ret
b:
	addi t1, t1, 1
	ret
`)
	funcs := g.Functions()
	names := map[string]bool{}
	for _, f := range funcs {
		names[f.Name()] = true
	}
	for _, want := range []string{"main", "a", "b"} {
		if !names[want] {
			t.Errorf("missing function %q (got %v)", want, names)
		}
	}
}

func TestInfiniteLoopNoReconv(t *testing.T) {
	g := build(t, `
main:
	beq a0, zero, spin
	halt zero
spin:
	j spin
`)
	infos := g.Functions()[0].AnalyzeBranches()
	if len(infos) != 1 {
		t.Fatalf("branches = %d", len(infos))
	}
	// One arm never terminates: the branch has no real post-dominator.
	if infos[0].ReconvPC != 0 {
		t.Errorf("reconv = %#x, want 0", infos[0].ReconvPC)
	}
}

func TestEmptyProgram(t *testing.T) {
	p := isa.NewProgram()
	if _, err := Build(p); err == nil {
		t.Error("Build on empty program succeeded")
	}
}

func mustIdx(t *testing.T, p *isa.Program, sym string) int {
	t.Helper()
	addr, ok := p.Symbols[sym]
	if !ok {
		t.Fatalf("no symbol %q", sym)
	}
	i, ok := p.InstIndex(addr)
	if !ok {
		t.Fatalf("symbol %q not in text", sym)
	}
	return i
}
