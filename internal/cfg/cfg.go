// Package cfg builds control-flow graphs over LEV64 program text and provides
// the dominance and control-dependence analyses the Levioso compiler pass
// (internal/core) is built on.
//
// The graph is constructed at the binary level, directly from decoded
// instructions, so the same analysis applies to LevC compiler output and to
// hand-written assembly. Analysis is intraprocedural: JAL with a link
// register is treated as a call that falls through (the callee is summarized
// by the ABI), JALR through ra is a return, and any other indirect jump is
// treated as an unknown exit, forcing conservative results for branches whose
// region could reach it.
package cfg

import (
	"fmt"
	"sort"

	"levioso/internal/isa"
)

// TermKind classifies how a basic block ends.
type TermKind uint8

const (
	TermFall     TermKind = iota // falls through to the next block
	TermBranch                   // conditional branch: taken + fallthrough succs
	TermJump                     // unconditional JAL with rd=zero
	TermCall                     // JAL with a link register: falls through, callee noted
	TermReturn                   // JALR through ra (or any JALR with rd=zero reading ra)
	TermIndirect                 // JALR with unknown target: unknown exit
	TermHalt                     // HALT
)

func (k TermKind) String() string {
	switch k {
	case TermFall:
		return "fall"
	case TermBranch:
		return "branch"
	case TermJump:
		return "jump"
	case TermCall:
		return "call"
	case TermReturn:
		return "return"
	case TermIndirect:
		return "indirect"
	case TermHalt:
		return "halt"
	default:
		return fmt.Sprintf("term(%d)", uint8(k))
	}
}

// Block is a basic block: instructions [Start, End) by index into the
// program text.
type Block struct {
	ID         int
	Start, End int   // instruction index range
	Succs      []int // successor block IDs (intra-procedural edges only)
	Preds      []int // predecessor block IDs
	Term       TermKind
	CallTarget int // entry block of the callee for TermCall, -1 otherwise
}

// Graph is the whole-text control-flow graph.
type Graph struct {
	Prog    *isa.Program
	Blocks  []*Block
	blockOf []int // instruction index -> block ID
}

// Build constructs the CFG for prog's entire text segment.
func Build(prog *isa.Program) (*Graph, error) {
	n := len(prog.Text)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program")
	}
	// Mark leaders: entry, control-flow targets, and instructions after any
	// terminator (branch, jump, call, return, halt).
	leader := make([]bool, n)
	markPC := func(pc uint64) error {
		i, ok := prog.InstIndex(pc)
		if !ok {
			return fmt.Errorf("cfg: control target %#x outside text", pc)
		}
		leader[i] = true
		return nil
	}
	leader[0] = true
	if i, ok := prog.InstIndex(prog.Entry); ok {
		leader[i] = true
	}
	for i, in := range prog.Text {
		pc := prog.PCOf(i)
		switch {
		case in.Op.IsBranch():
			if err := markPC(in.BranchTarget(pc)); err != nil {
				return nil, err
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == isa.JAL:
			if err := markPC(in.BranchTarget(pc)); err != nil {
				return nil, err
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == isa.JALR, in.Op == isa.HALT:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	// Carve blocks.
	g := &Graph{Prog: prog, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i, CallTarget: -1}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			start = i
		}
	}
	// Classify terminators and wire edges.
	for _, b := range g.Blocks {
		last := prog.Text[b.End-1]
		lastPC := prog.PCOf(b.End - 1)
		switch {
		case last.Op.IsBranch():
			b.Term = TermBranch
			tgt, _ := prog.InstIndex(last.BranchTarget(lastPC))
			g.addEdge(b.ID, g.blockOf[tgt])
			if b.End < n {
				g.addEdge(b.ID, g.blockOf[b.End])
			}
		case last.Op == isa.JAL && last.Rd == isa.RegZero:
			b.Term = TermJump
			tgt, _ := prog.InstIndex(last.BranchTarget(lastPC))
			g.addEdge(b.ID, g.blockOf[tgt])
		case last.Op == isa.JAL:
			b.Term = TermCall
			tgt, _ := prog.InstIndex(last.BranchTarget(lastPC))
			b.CallTarget = g.blockOf[tgt]
			if b.End < n {
				g.addEdge(b.ID, g.blockOf[b.End])
			}
		case last.Op == isa.JALR:
			if last.Rd == isa.RegZero && last.Rs1 == isa.RegRA {
				b.Term = TermReturn
			} else {
				b.Term = TermIndirect
			}
		case last.Op == isa.HALT:
			b.Term = TermHalt
		default:
			b.Term = TermFall
			if b.End < n {
				g.addEdge(b.ID, g.blockOf[b.End])
			}
		}
	}
	return g, nil
}

func (g *Graph) addEdge(from, to int) {
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// BlockOf returns the block containing instruction index i.
func (g *Graph) BlockOf(i int) *Block { return g.Blocks[g.blockOf[i]] }

// NumBlocks returns the number of basic blocks.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// BranchIndices returns the instruction indices of all conditional branches,
// in program order.
func (g *Graph) BranchIndices() []int {
	var out []int
	for i, in := range g.Prog.Text {
		if in.Op.IsBranch() {
			out = append(out, i)
		}
	}
	return out
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var b []byte
	for _, blk := range g.Blocks {
		b = append(b, fmt.Sprintf("B%d [%d,%d) %s -> %v\n",
			blk.ID, blk.Start, blk.End, blk.Term, blk.Succs)...)
	}
	return string(b)
}

// Functions partitions the graph into functions. A function entry is the
// program entry or any call target; its body is every block reachable from
// the entry following intra-procedural edges (calls fall through, returns
// stop). Blocks reachable from multiple entries belong to each (rare; e.g.
// shared tails), which keeps the analysis sound per function.
func (g *Graph) Functions() []*Func {
	entrySet := map[int]bool{}
	if i, ok := g.Prog.InstIndex(g.Prog.Entry); ok {
		entrySet[g.blockOf[i]] = true
	}
	for _, b := range g.Blocks {
		if b.Term == TermCall && b.CallTarget >= 0 {
			entrySet[b.CallTarget] = true
		}
	}
	entries := make([]int, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Ints(entries)

	var funcs []*Func
	for _, e := range entries {
		f := &Func{Graph: g, Entry: e, Member: make(map[int]bool)}
		var stack []int
		push := func(id int) {
			if !f.Member[id] {
				f.Member[id] = true
				stack = append(stack, id)
			}
		}
		push(e)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			f.BlockIDs = append(f.BlockIDs, id)
			for _, s := range g.Blocks[id].Succs {
				push(s)
			}
		}
		sort.Ints(f.BlockIDs)
		funcs = append(funcs, f)
	}
	return funcs
}

// Func is one function's view of the graph: the entry block and the set of
// member blocks reachable from it intra-procedurally.
type Func struct {
	Graph    *Graph
	Entry    int
	BlockIDs []int
	Member   map[int]bool
}

// Name returns the symbol at the function's entry, if any.
func (f *Func) Name() string {
	pc := f.Graph.Prog.PCOf(f.Graph.Blocks[f.Entry].Start)
	if s, ok := f.Graph.Prog.SymbolAt(pc); ok {
		return s
	}
	return fmt.Sprintf("func@%#x", pc)
}
