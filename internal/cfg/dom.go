package cfg

// Dominator computation using the Cooper–Harvey–Kennedy iterative algorithm,
// applied per function. Post-dominators (the basis of reconvergence points)
// are immediate dominators of the reversed graph rooted at a virtual exit.

// idoms computes immediate dominators on an abstract directed graph with n
// nodes rooted at root. succs enumerates edges. The returned slice maps each
// node to its immediate dominator, with idom[root] == root and -1 for nodes
// unreachable from root.
func idoms(n, root int, succs func(int) []int) []int {
	// Postorder DFS from root (iterative: explicit stack with visit state).
	order := make([]int, 0, n) // postorder sequence
	number := make([]int, n)   // node -> postorder number + 1 (0 = unvisited)
	preds := make([][]int, n)  // reverse edges among reachable nodes
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: root}}
	visited := make([]bool, n)
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := succs(f.node)
		if f.next < len(ss) {
			s := ss[f.next]
			f.next++
			preds[s] = append(preds[s], f.node)
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		number[f.node] = len(order) + 1
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for number[a] < number[b] {
				a = idom[a]
			}
			for number[b] < number[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		// Reverse postorder, skipping the root (last in postorder).
		for i := len(order) - 2; i >= 0; i-- {
			node := order[i]
			newIdom := -1
			for _, p := range preds[node] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[node] != newIdom {
				idom[node] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// DomTree holds a function's dominator or post-dominator relation over local
// node indices (positions in Func.BlockIDs), plus the virtual exit for
// post-dominators.
type DomTree struct {
	f     *Func
	local map[int]int // block ID -> local index
	idom  []int       // local index -> local idom (or exit), -1 unreachable
	exit  int         // local index of the virtual exit (post-dom only), else -1
}

// exitLike reports whether the block leaves the function (or the program, or
// goes somewhere statically unknown).
func exitLike(b *Block) bool {
	switch b.Term {
	case TermReturn, TermHalt, TermIndirect:
		return true
	}
	return len(b.Succs) == 0
}

// PostDominators computes the immediate post-dominator tree of f, rooted at
// a virtual exit that every return/halt/indirect block feeds.
func (f *Func) PostDominators() *DomTree {
	m := len(f.BlockIDs)
	local := make(map[int]int, m)
	for i, id := range f.BlockIDs {
		local[id] = i
	}
	exit := m // virtual exit node
	// Reversed-graph successors: for the exit, all exit-like blocks; for a
	// block, its CFG predecessors (restricted to the function).
	succs := func(n int) []int {
		if n == exit {
			var out []int
			for i, id := range f.BlockIDs {
				if exitLike(f.Graph.Blocks[id]) {
					out = append(out, i)
				}
			}
			return out
		}
		var out []int
		for _, p := range f.Graph.Blocks[f.BlockIDs[n]].Preds {
			if li, ok := local[p]; ok {
				out = append(out, li)
			}
		}
		return out
	}
	return &DomTree{f: f, local: local, idom: idoms(m+1, exit, succs), exit: exit}
}

// Dominators computes the immediate dominator tree of f rooted at its entry.
func (f *Func) Dominators() *DomTree {
	m := len(f.BlockIDs)
	local := make(map[int]int, m)
	for i, id := range f.BlockIDs {
		local[id] = i
	}
	root := local[f.Entry]
	succs := func(n int) []int {
		var out []int
		for _, s := range f.Graph.Blocks[f.BlockIDs[n]].Succs {
			if li, ok := local[s]; ok {
				out = append(out, li)
			}
		}
		return out
	}
	return &DomTree{f: f, local: local, idom: idoms(m, root, succs), exit: -1}
}

// Idom returns the immediate (post-)dominator of block id as a block ID.
// ok is false when the idom is the virtual exit, the root itself, or the
// block is unreachable — i.e. whenever there is no real dominating block.
func (t *DomTree) Idom(id int) (int, bool) {
	li, ok := t.local[id]
	if !ok {
		return 0, false
	}
	d := t.idom[li]
	if d == -1 || d == t.exit || d == li {
		return 0, false
	}
	return t.f.BlockIDs[d], true
}

// Dominates reports whether block a (post-)dominates block b, both given as
// block IDs. Every block dominates itself.
func (t *DomTree) Dominates(a, b int) bool {
	la, ok1 := t.local[a]
	lb, ok2 := t.local[b]
	if !ok1 || !ok2 {
		return false
	}
	// Walk up from b.
	for {
		if lb == la {
			return true
		}
		d := t.idom[lb]
		if d == -1 || d == lb {
			return false
		}
		if t.exit >= 0 && d == t.exit {
			return false
		}
		lb = d
	}
}
