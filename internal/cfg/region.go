package cfg

import "levioso/internal/isa"

// CallerSavedMask is the ABI summary used for calls inside a branch's
// control-dependent region: a callee may clobber the link register, the
// temporaries and the argument registers. Callee-saved registers are restored
// before return, so they never carry a speculatively-divergent value out of a
// region through a call.
var CallerSavedMask = func() isa.RegMask {
	var m isa.RegMask
	m = m.Set(isa.RegRA)
	for r := isa.RegT0; r <= isa.RegT2; r++ {
		m = m.Set(r)
	}
	for r := isa.RegA0; r <= isa.RegA7; r++ {
		m = m.Set(r)
	}
	for r := isa.RegT3; r <= isa.RegT6; r++ {
		m = m.Set(r)
	}
	return m
}()

// AllRegsMask covers every writable register; it is the conservative write
// set used when a branch has no computable reconvergence point.
var AllRegsMask = func() isa.RegMask {
	var m isa.RegMask
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		m = m.Set(r)
	}
	return m
}()

// BranchInfo is the analysis result for one conditional branch: its
// reconvergence point (0 when unknown) and the register write set of its
// control-dependent region. This is exactly the information encoded as
// isa.BranchHint by the Levioso pass.
type BranchInfo struct {
	InstIndex int    // instruction index of the branch
	PC        uint64 // address of the branch
	ReconvPC  uint64 // address of the immediate post-dominator block, 0 if none
	Region    []int  // block IDs control-dependent on the branch
	WriteSet  isa.RegMask
}

// AnalyzeBranches computes BranchInfo for every conditional branch in f.
// Results are in program order.
func (f *Func) AnalyzeBranches() []BranchInfo {
	pdom := f.PostDominators()
	var out []BranchInfo
	g := f.Graph
	for _, id := range f.BlockIDs {
		b := g.Blocks[id]
		if b.Term != TermBranch {
			continue
		}
		info := BranchInfo{
			InstIndex: b.End - 1,
			PC:        g.Prog.PCOf(b.End - 1),
		}
		ip, ok := pdom.Idom(id)
		// Post-dominance can hold vacuously when one arm has no terminating
		// path (e.g. an unconditional self-loop): the "reconvergence" block
		// is then never reached on that outcome and marking instructions
		// after it independent of the branch would leak the predicate. Keep
		// the analysis termination-insensitive (as in the paper) but reject
		// reconvergence points that one arm cannot even reach.
		if ok {
			for _, s := range g.Blocks[id].Succs {
				if !f.reaches(s, ip) {
					ok = false
					break
				}
			}
		}
		if !ok {
			// No real reconvergence point (paths may leave the function or
			// never rejoin). The hardware treats ReconvPC 0 as "never
			// reconverges in view": fully conservative for this branch.
			info.ReconvPC = 0
			info.WriteSet = AllRegsMask
			out = append(out, info)
			continue
		}
		info.ReconvPC = g.Prog.PCOf(g.Blocks[ip].Start)
		info.Region = f.regionBlocks(id, ip)
		info.WriteSet = f.regionWriteSet(info.Region)
		out = append(out, info)
	}
	return out
}

// regionBlocks returns the blocks reachable from branch block id's successors
// without passing through the reconvergence block ip. These are the blocks
// whose execution depends on the branch outcome.
func (f *Func) regionBlocks(id, ip int) []int {
	g := f.Graph
	seen := map[int]bool{ip: true}
	var stack, region []int
	for _, s := range g.Blocks[id].Succs {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.Member[x] {
			continue
		}
		region = append(region, x)
		for _, s := range g.Blocks[x].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return region
}

// reaches reports whether block 'to' is reachable from block 'from' along
// intra-procedural edges (including from == to).
func (f *Func) reaches(from, to int) bool {
	if from == to {
		return true
	}
	g := f.Graph
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[x].Succs {
			if s == to {
				return true
			}
			if !seen[s] && f.Member[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// regionWriteSet unions the destination registers of every instruction in the
// region, with calls summarized by the ABI caller-saved set.
func (f *Func) regionWriteSet(region []int) isa.RegMask {
	var m isa.RegMask
	g := f.Graph
	for _, id := range region {
		b := g.Blocks[id]
		for i := b.Start; i < b.End; i++ {
			if rd, ok := g.Prog.Text[i].DestReg(); ok {
				m = m.Set(rd)
			}
		}
		if b.Term == TermCall {
			m = m.Union(CallerSavedMask)
		}
	}
	return m
}
