// Package secure implements the secure-speculation policies evaluated in the
// paper: the unprotected baseline, three hardware-only defense families
// (fence, delay, invisible — plus the sandbox-only taint tracker for
// reference), and Levioso itself.
//
// All policies share the core's Branch Dependency Table (internal/core): at
// rename each instruction receives a wait mask over in-flight branch slots,
// the core clears bits as branches resolve, and the policy's Decide hook
// blocks ready transmitters whose mask has not drained. The policies differ
// only in *which* branches end up in the mask:
//
//	unsafe     — none: full speculation (insecure baseline).
//	fence      — every instruction waits for all older branches
//	             (lfence-after-every-branch semantics).
//	delay      — transmitters wait for all older branches (comprehensive
//	             delay-on-speculation; the paper's ~51% baseline class).
//	invisible  — speculative loads execute without changing cache state and
//	             become visible when safe (InvisiSpec/GhostMinion class; the
//	             paper's ~43% baseline class); speculative div/cflush wait.
//	taint      — dataflow tracking from speculative loads only (STT class;
//	             sound for the sandbox model, NOT comprehensive — included
//	             for reference, as in the paper's related-work comparison).
//	levioso    — transmitters wait only for their *true* dependencies: the
//	             branches whose annotated control region they sit in, plus
//	             branches reached through register/memory dataflow.
//
// Two additional variants bracket levioso for the ablation study (F5):
// levioso-ctrl drops the data half (UNSOUND — leaks the ct-data attack;
// cost-attribution only) and levioso-ghost, an extension beyond the paper,
// executes truly-dependent loads invisibly instead of stalling them.
package secure

import (
	"fmt"

	"levioso/internal/cpu"
)

// New returns the policy with the given name. Valid names are listed by
// Names.
func New(name string) (cpu.Policy, error) {
	switch name {
	case "unsafe":
		return cpu.NopPolicy{}, nil
	case "fence":
		return &fencePolicy{}, nil
	case "delay":
		return &delayPolicy{}, nil
	case "invisible":
		return &invisiblePolicy{}, nil
	case "taint":
		return newTracking("taint", false, true), nil
	case "levioso":
		return newTracking("levioso", true, true), nil
	case "levioso-ctrl":
		// Ablation (experiment F5): control dependencies only, no dataflow
		// propagation. NOT sound against data-dependent leaks; measures what
		// the data half of the annotation costs.
		return newTracking("levioso-ctrl", true, false), nil
	case "levioso-ghost":
		// Extension beyond the paper: truly-dependent loads execute
		// invisibly (InvisiSpec-style) instead of stalling, keeping both
		// comprehensive coverage and Levioso's precision. Divider and flush
		// transmitters still wait for their true dependencies.
		return newTracking("levioso-ghost", true, true), nil
	default:
		return nil, fmt.Errorf("secure: unknown policy %q (have %v)", name, Names())
	}
}

// MustNew is New for known-valid names; it panics on error.
func MustNew(name string) cpu.Policy {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists all policy names, baseline first.
func Names() []string {
	return []string{"unsafe", "fence", "delay", "invisible", "taint", "levioso", "levioso-ctrl", "levioso-ghost"}
}

// EvalNames lists the policies in the headline evaluation (experiment F1),
// in presentation order.
func EvalNames() []string {
	return []string{"unsafe", "fence", "delay", "invisible", "levioso"}
}

// Coverage classifies the security contract a policy promises. It is the
// machine-readable form of the coverage column in the package comment: the
// fuzzing security oracle uses it to decide which policies MUST block a
// generated attack gadget, and the attack expectation matrix derives the
// per-attack leak expectations from it.
type Coverage int

const (
	// CoverageNone promises nothing: full speculation (the unsafe baseline).
	CoverageNone Coverage = iota
	// CoverageCtrl restricts control-dependent transmissions only — the
	// levioso-ctrl ablation. UNSOUND against data-dependent leaks; it exists
	// for cost attribution, and the oracle holds it to exactly that contract.
	CoverageCtrl
	// CoverageSandbox restricts transmissions of speculatively-accessed data
	// only (the STT/taint class): sound for the sandbox threat model, leaks
	// non-speculatively loaded secrets.
	CoverageSandbox
	// CoverageComprehensive restricts every transient transmission.
	CoverageComprehensive
)

func (c Coverage) String() string {
	switch c {
	case CoverageNone:
		return "none"
	case CoverageCtrl:
		return "control-only"
	case CoverageSandbox:
		return "sandbox"
	case CoverageComprehensive:
		return "comprehensive"
	default:
		return "invalid"
	}
}

// CoverageOf returns the documented security contract of a policy.
func CoverageOf(name string) (Coverage, error) {
	switch name {
	case "unsafe":
		return CoverageNone, nil
	case "levioso-ctrl":
		return CoverageCtrl, nil
	case "taint":
		return CoverageSandbox, nil
	case "fence", "delay", "invisible", "levioso", "levioso-ghost":
		return CoverageComprehensive, nil
	default:
		return CoverageNone, fmt.Errorf("secure: unknown policy %q (have %v)", name, Names())
	}
}

// ------------------------------------------------------------------ fence --

// fencePolicy: no instruction younger than an unresolved branch executes.
type fencePolicy struct {
	c *cpu.Core
}

func (p *fencePolicy) Name() string          { return "fence" }
func (p *fencePolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *fencePolicy) Reset()                {}
func (p *fencePolicy) OnSlotResolved(int)    {}
func (p *fencePolicy) OnSquash(*cpu.DynInst) {}

func (p *fencePolicy) OnRename(d *cpu.DynInst) {
	d.WaitMask = p.c.BT.Unresolved()
}

func (p *fencePolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask != 0 {
		return cpu.Wait
	}
	return cpu.Proceed
}

func (p *fencePolicy) OnForward(_, _ *cpu.DynInst) {}

// ------------------------------------------------------------------ delay --

// delayPolicy: transmitters wait for all older unresolved branches.
type delayPolicy struct {
	c *cpu.Core
}

func (p *delayPolicy) Name() string          { return "delay" }
func (p *delayPolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *delayPolicy) Reset()                {}
func (p *delayPolicy) OnSlotResolved(int)    {}
func (p *delayPolicy) OnSquash(*cpu.DynInst) {}

func (p *delayPolicy) OnRename(d *cpu.DynInst) {
	if d.IsTransmitter() {
		d.WaitMask = p.c.BT.Unresolved()
	}
}

func (p *delayPolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask != 0 {
		return cpu.Wait
	}
	return cpu.Proceed
}

func (p *delayPolicy) OnForward(_, _ *cpu.DynInst) {}

// -------------------------------------------------------------- invisible --

// invisiblePolicy: speculative loads run invisibly (no cache state change,
// exposure deferred to commit); speculative div/cflush wait as in delay.
type invisiblePolicy struct {
	c *cpu.Core
}

func (p *invisiblePolicy) Name() string          { return "invisible" }
func (p *invisiblePolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *invisiblePolicy) Reset()                {}
func (p *invisiblePolicy) OnSlotResolved(int)    {}
func (p *invisiblePolicy) OnSquash(*cpu.DynInst) {}

func (p *invisiblePolicy) OnRename(d *cpu.DynInst) {
	if d.IsTransmitter() {
		d.WaitMask = p.c.BT.Unresolved()
	}
}

func (p *invisiblePolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask == 0 {
		return cpu.Proceed
	}
	if d.IsLoad() {
		return cpu.ProceedInvisible
	}
	return cpu.Wait // divider occupancy and flushes cannot be hidden
}

func (p *invisiblePolicy) OnForward(_, _ *cpu.DynInst) {}
