// Package secure implements the secure-speculation policies evaluated in the
// paper: the unprotected baseline, the hardware-only defense families
// (fence, delay, invisible, the sandbox-only taint tracker), Levioso itself
// and its ablation/extension variants, a ProSpeCT-style secret-typed
// constant-time policy, and a runtime-tunable co-design family.
//
// Every policy is registered in one self-describing table (see registry.go):
// name, constructor, coverage contract, threat-model documentation and
// tunable parameters live in a single Descriptor, and every consumer — the
// engine's override validation, the CLI flag help, the serve API's
// /v1/policies, the attack expectation matrix, the fuzz security oracle —
// derives from it. Adding a policy means adding one registry entry.
//
// Policies are selected by spec string: a family name, optionally followed
// by parameters (`tunable:level=ctrl`). Canonical specs (defaults applied,
// keys sorted) are what Policy.Name() returns and what cache keys carry.
//
// All delay-class policies share the core's Branch Dependency Table
// (internal/core): at rename each instruction receives a wait mask over
// in-flight branch slots, the core clears bits as branches resolve, and the
// policy's Decide hook blocks ready transmitters whose mask has not drained.
// The policies differ in *which* branches end up in the mask — and, for
// prospect, in whether the operands are secret-tainted at all.
package secure

import "levioso/internal/cpu"

// Coverage classifies the security contract a policy promises. It is the
// machine-readable form of the threat-model column in the registry: the
// fuzzing security oracle uses it to decide which policies MUST block a
// generated attack gadget, and the attack expectation matrix derives the
// per-attack leak expectations from it.
type Coverage int

const (
	// CoverageNone promises nothing: full speculation (the unsafe baseline).
	CoverageNone Coverage = iota
	// CoverageCtrl restricts control-dependent transmissions only — the
	// levioso-ctrl ablation. UNSOUND against data-dependent leaks; it exists
	// for cost attribution, and the oracle holds it to exactly that contract.
	CoverageCtrl
	// CoverageSandbox restricts transmissions of speculatively-accessed data
	// only (the STT/taint class): sound for the sandbox threat model, leaks
	// non-speculatively loaded secrets.
	CoverageSandbox
	// CoverageSecret restricts transient transmissions of secret-typed data
	// only (the ProSpeCT class): declared secrets are protected under every
	// attack, unmarked (public) data leaks by contract.
	CoverageSecret
	// CoverageComprehensive restricts every transient transmission.
	CoverageComprehensive
)

func (c Coverage) String() string {
	switch c {
	case CoverageNone:
		return "none"
	case CoverageCtrl:
		return "control-only"
	case CoverageSandbox:
		return "sandbox"
	case CoverageSecret:
		return "secret-typed"
	case CoverageComprehensive:
		return "comprehensive"
	default:
		return "invalid"
	}
}

// ------------------------------------------------------------------ fence --

// fencePolicy: no instruction younger than an unresolved branch executes.
type fencePolicy struct {
	c *cpu.Core
}

func (p *fencePolicy) Name() string          { return "fence" }
func (p *fencePolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *fencePolicy) Reset()                {}
func (p *fencePolicy) OnSlotResolved(int)    {}
func (p *fencePolicy) OnSquash(*cpu.DynInst) {}

func (p *fencePolicy) OnRename(d *cpu.DynInst) {
	d.WaitMask = p.c.BT.Unresolved()
}

func (p *fencePolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask != 0 {
		return cpu.Wait
	}
	return cpu.Proceed
}

func (p *fencePolicy) OnForward(_, _ *cpu.DynInst) {}

// ------------------------------------------------------------------ delay --

// delayPolicy: transmitters wait for all older unresolved branches. The
// name is parameterized because tunable:level=comprehensive reuses the
// mechanism under its own canonical spec.
type delayPolicy struct {
	name string
	c    *cpu.Core
}

func (p *delayPolicy) Name() string          { return p.name }
func (p *delayPolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *delayPolicy) Reset()                {}
func (p *delayPolicy) OnSlotResolved(int)    {}
func (p *delayPolicy) OnSquash(*cpu.DynInst) {}

func (p *delayPolicy) OnRename(d *cpu.DynInst) {
	if d.IsTransmitter() {
		d.WaitMask = p.c.BT.Unresolved()
	}
}

func (p *delayPolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask != 0 {
		return cpu.Wait
	}
	return cpu.Proceed
}

func (p *delayPolicy) OnForward(_, _ *cpu.DynInst) {}

// -------------------------------------------------------------- invisible --

// invisiblePolicy: speculative loads run invisibly (no cache state change,
// exposure deferred to commit); speculative div/cflush wait as in delay.
type invisiblePolicy struct {
	c *cpu.Core
}

func (p *invisiblePolicy) Name() string          { return "invisible" }
func (p *invisiblePolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *invisiblePolicy) Reset()                {}
func (p *invisiblePolicy) OnSlotResolved(int)    {}
func (p *invisiblePolicy) OnSquash(*cpu.DynInst) {}

func (p *invisiblePolicy) OnRename(d *cpu.DynInst) {
	if d.IsTransmitter() {
		d.WaitMask = p.c.BT.Unresolved()
	}
}

func (p *invisiblePolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask == 0 {
		return cpu.Proceed
	}
	if d.IsLoad() {
		return cpu.ProceedInvisible
	}
	return cpu.Wait // divider occupancy and flushes cannot be hidden
}

func (p *invisiblePolicy) OnForward(_, _ *cpu.DynInst) {}
