package secure

import (
	"testing"

	"levioso/internal/asm"
	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/isa"
	"levioso/internal/ref"
)

// A branchy, load-heavy kernel with hard-to-predict branches: the kind of
// code where the policies separate.
const kernelSrc = `
main:
	la s0, arr
	li s1, 0        # i
	li s2, 256      # n
	li s3, 0        # sum
	li s4, 2654435761
fill:
	mul t0, s1, s4
	srli t0, t0, 7
	slli t1, s1, 3
	add t1, t1, s0
	sd t0, 0(t1)
	addi s1, s1, 1
	blt s1, s2, fill
	li s1, 0
loop:
	slli t1, s1, 3
	add t1, t1, s0
	ld t0, 0(t1)     # load under the loop branch's shadow
	andi t2, t0, 1
	beqz t2, even    # data-dependent, mispredicts often
	add s3, s3, t0
	j next
even:
	sub s3, s3, t0
next:
	addi s1, s1, 1
	blt s1, s2, loop
	halt s3
	.data
arr:	.space 2048
`

func compileKernel(t *testing.T, src string) *isa.Program {
	t.Helper()
	prog, err := asm.Assemble("k.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Annotate(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

func runPolicy(t *testing.T, prog *isa.Program, name string) cpu.Result {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 20_000_000
	c, err := cpu.New(prog, cfg, MustNew(name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("policy %s: %v", name, err)
	}
	// Architectural equivalence against the reference model.
	want, err := ref.Run(prog, ref.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != want.ExitCode || res.Output != want.Output {
		t.Errorf("policy %s: exit/output %d/%q, want %d/%q",
			name, res.ExitCode, res.Output, want.ExitCode, want.Output)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if got := c.ArchReg(r); got != want.Regs[r] {
			t.Errorf("policy %s: reg %s = %#x, want %#x", name, r, got, want.Regs[r])
		}
	}
	return res
}

func TestAllPoliciesPreserveSemantics(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			runPolicy(t, prog, name)
		})
	}
}

func TestOverheadOrdering(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	cycles := map[string]uint64{}
	for _, name := range Names() {
		cycles[name] = runPolicy(t, prog, name).Stats.Cycles
	}
	t.Logf("cycles: %v", cycles)
	if cycles["unsafe"] > cycles["levioso"] {
		t.Errorf("levioso (%d) faster than unsafe (%d)", cycles["levioso"], cycles["unsafe"])
	}
	if cycles["levioso"] > cycles["delay"] {
		t.Errorf("levioso (%d) slower than delay (%d)", cycles["levioso"], cycles["delay"])
	}
	if cycles["delay"] > cycles["fence"] {
		t.Errorf("delay (%d) slower than fence (%d)", cycles["delay"], cycles["fence"])
	}
	// Levioso must recover a real fraction of the delay overhead.
	delayOv := float64(cycles["delay"]-cycles["unsafe"]) / float64(cycles["unsafe"])
	levOv := float64(cycles["levioso"]-cycles["unsafe"]) / float64(cycles["unsafe"])
	if delayOv > 0.02 && levOv > 0.9*delayOv {
		t.Errorf("levioso overhead %.3f not meaningfully below delay %.3f", levOv, delayOv)
	}
}

func TestUnsafeNeverRestricts(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	res := runPolicy(t, prog, "unsafe")
	if res.Stats.RestrictedTransmitters != 0 || res.Stats.PolicyWaitEvents != 0 {
		t.Errorf("unsafe restricted: %+v", res.Stats)
	}
}

func TestLeviosoRestrictsFewerThanDelay(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	lev := runPolicy(t, prog, "levioso").Stats
	del := runPolicy(t, prog, "delay").Stats
	if lev.RestrictedTransmitters >= del.RestrictedTransmitters {
		t.Errorf("levioso restricted %d, delay %d: compiler info bought nothing",
			lev.RestrictedTransmitters, del.RestrictedTransmitters)
	}
}

func TestInvisibleLoadsAreCounted(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	res := runPolicy(t, prog, "invisible")
	if res.Stats.InvisibleLoads == 0 {
		t.Error("invisible policy executed no invisible loads")
	}
}

func TestUnknownPolicy(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Control-independent loads must not be restricted by Levioso.
// The load of b[0] below is after the branch's reconvergence point and uses
// only pre-branch values, so Levioso lets it run while delay blocks it.
func TestLeviosoFreesControlIndependentLoad(t *testing.T) {
	src := `
main:
	la s0, a
	la s1, b
	li s2, 0
	li s3, 0
	li s4, 200
	li s5, 2654435761
loop:
	mul t0, s2, s5
	srli t0, t0, 9
	andi t0, t0, 1
	ld s6, 0(s0)       # slow-ish producer for the branch
	beq t0, s6, taken  # unpredictable, resolves late
	addi s3, s3, 1
taken:
	ld t1, 0(s1)       # reconvergence: control- and data-independent
	add s3, s3, t1
	addi s2, s2, 1
	blt s2, s4, loop
	halt s3
	.data
a:	.quad 2
b:	.quad 5
`
	prog := compileKernel(t, src)
	lev := runPolicy(t, prog, "levioso").Stats
	del := runPolicy(t, prog, "delay").Stats
	if lev.Cycles >= del.Cycles {
		t.Errorf("levioso %d cycles >= delay %d on control-independent loads",
			lev.Cycles, del.Cycles)
	}
}

// A value produced inside a branch region and consumed by a later transmitter
// must keep the transmitter restricted under Levioso (data dependence).
func TestLeviosoTracksDataDependence(t *testing.T) {
	src := `
main:
	la s0, a
	li s1, 0
	li s2, 100
	li s5, 2654435761
loop:
	mul t0, s1, s5
	srli t0, t0, 11
	andi t0, t0, 7
	beqz t0, zero_
	li t1, 8         # written in region
	j join
zero_:
	li t1, 0         # written in region
join:
	add t2, s0, t1   # data-dependent on the branch
	ld t3, 0(t2)     # transmitter: must wait for the branch under levioso
	add s3, s3, t3
	addi s1, s1, 1
	blt s1, s2, loop
	halt s3
	.data
a:	.quad 11, 22
`
	prog := compileKernel(t, src)
	lev := runPolicy(t, prog, "levioso").Stats
	if lev.RestrictedTransmitters == 0 {
		t.Error("levioso did not restrict a data-dependent transmitter")
	}
	// levioso-ctrl (ablation, unsound) should restrict fewer.
	ctrl := runPolicy(t, prog, "levioso-ctrl").Stats
	if ctrl.RestrictedTransmitters >= lev.RestrictedTransmitters {
		t.Errorf("ctrl-only restricted %d >= full %d: data tracking had no effect",
			ctrl.RestrictedTransmitters, lev.RestrictedTransmitters)
	}
}

func TestNamesStable(t *testing.T) {
	names := Names()
	if names[0] != "unsafe" {
		t.Errorf("baseline must be first: names = %v", names)
	}
	// Every policy's Name() is the canonical form of its spec (for
	// parameter-free families that is the bare name; for parameterized ones
	// the defaults-applied spec string).
	for _, n := range names {
		canon, err := Canonical(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := MustNew(n).Name(); got != canon {
			t.Errorf("policy %q reports name %q, want canonical %q", n, got, canon)
		}
	}
	for _, n := range EvalNames() {
		MustNew(n)
	}
	for _, n := range AblationNames() {
		MustNew(n)
	}
	// Sweep specs are already canonical and construct to matching names.
	for _, s := range SweepSpecs() {
		if got := MustNew(s).Name(); got != s {
			t.Errorf("sweep spec %q constructs policy named %q", s, got)
		}
	}
}

// The levioso-ghost extension (truly-dependent loads run invisibly instead
// of stalling) must preserve semantics, block every attack, and cost no more
// than plain levioso.
func TestLeviosoGhostExtension(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	ghost := runPolicy(t, prog, "levioso-ghost").Stats
	lev := runPolicy(t, prog, "levioso").Stats
	t.Logf("levioso %d cycles, levioso-ghost %d cycles", lev.Cycles, ghost.Cycles)
	if ghost.Cycles > lev.Cycles+lev.Cycles/20 {
		t.Errorf("ghost (%d) should not be meaningfully slower than levioso (%d)",
			ghost.Cycles, lev.Cycles)
	}
}
