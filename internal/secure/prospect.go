package secure

import "levioso/internal/cpu"

// prospectPolicy is the ProSpeCT-style constant-time defense (Daniel et al.,
// "ProSpeCT: Provably Secure Speculation for the Constant-Time Policy"):
// the program declares which memory is secret-typed (`.secret` / `secret
// var`), the core tracks a secret-taint bit through register dataflow,
// loads and store-forwarding (see cpu.SecretTainter), and only a transient
// transmitter whose *operand* is secret-tainted is delayed. Transmitters
// over public data — and every transmitter in a program with no declared
// secrets — proceed at full speed, which is the mechanism's selling point:
// constant-time code pays (near) zero overhead.
//
// The contract is CoverageSecret: declared secrets never reach a transient
// transmitter operand, while unmarked data leaks by design (the attack
// matrix and fuzz oracle hold it to exactly that).
type prospectPolicy struct {
	c *cpu.Core
}

// UsesSecretTaint opts the core into secret-taint tracking.
func (p *prospectPolicy) UsesSecretTaint() {}

func (p *prospectPolicy) Name() string          { return "prospect" }
func (p *prospectPolicy) Attach(c *cpu.Core)    { p.c = c }
func (p *prospectPolicy) Reset()                {}
func (p *prospectPolicy) OnSlotResolved(int)    {}
func (p *prospectPolicy) OnSquash(*cpu.DynInst) {}

// OnRename marks transmitters with the full unresolved-branch set; the core
// drains the mask as branches resolve, so at Decide time a nonzero mask
// means "still transient".
func (p *prospectPolicy) OnRename(d *cpu.DynInst) {
	if d.IsTransmitter() {
		d.WaitMask = p.c.BT.Unresolved()
	}
}

// Decide delays a transient transmitter only when one of its source
// registers is secret-tainted. Operand taint is current here: Decide runs
// once every source has written back, and the core publishes a producer's
// taint at execute, strictly before the ready wakeup.
func (p *prospectPolicy) Decide(d *cpu.DynInst) cpu.Decision {
	if d.WaitMask != 0 && (p.c.RegSecret(d.Src1) || p.c.RegSecret(d.Src2)) {
		return cpu.Wait
	}
	return cpu.Proceed
}

func (p *prospectPolicy) OnForward(_, _ *cpu.DynInst) {}
