package secure

import (
	"fmt"
	"sort"
	"strings"

	"levioso/internal/cpu"
)

// Param describes one tunable parameter of a policy family: its name, what
// it does, the default applied when a spec omits it, and the closed set of
// accepted values. Everything here is metadata the registry consumers
// (CLI help, /v1/policies, docs) render without knowing the policy.
type Param struct {
	Name    string   `json:"name"`
	Doc     string   `json:"doc"`
	Default string   `json:"default"`
	Enum    []string `json:"enum"`
}

// Descriptor is the self-describing registration record for one policy
// family. The registry below is the single source of truth: construction,
// name listings, coverage contracts, attack expectations, CLI help, the
// serve API's /v1/policies and the fuzz oracle's sweep all derive from it,
// so adding a policy means adding exactly one entry here.
type Descriptor struct {
	Name        string  // family name (the spec's part before ':')
	Summary     string  // one-line mechanism description
	ThreatModel string  // the contract, in threat-model terms
	Eval        bool    // in the headline overhead evaluation (F1/F3/F4)
	Ablation    bool    // in the Levioso ablation set (F5)
	Params      []Param // tunable parameters; empty for fixed policies

	// cov is the fixed coverage contract; covFn overrides it for families
	// whose contract depends on their parameters (coverage-as-a-function-
	// of-params). covFn receives a full parameter map (defaults applied).
	cov   Coverage
	covFn func(params map[string]string) Coverage

	// build constructs the policy for a resolved spec (defaults applied,
	// values validated). The policy's Name() must equal spec.String().
	build func(spec Spec) (cpu.Policy, error)
}

// CoverageFor returns the coverage contract under the given full parameter
// map (defaults applied).
func (d *Descriptor) CoverageFor(params map[string]string) Coverage {
	if d.covFn != nil {
		return d.covFn(params)
	}
	return d.cov
}

// registry lists every policy family, baseline first. Order is presentation
// order everywhere (flag help, README table, experiment columns); new
// families are appended so existing column layouts never shift.
var registry = []Descriptor{
	{
		Name:        "unsafe",
		Summary:     "full speculation, no restrictions",
		ThreatModel: "none — the insecure calibration baseline; leaks every attack",
		Eval:        true, Ablation: true,
		cov:   CoverageNone,
		build: func(Spec) (cpu.Policy, error) { return cpu.NopPolicy{}, nil },
	},
	{
		Name:        "fence",
		Summary:     "every instruction waits for all older branches (lfence-after-every-branch)",
		ThreatModel: "comprehensive: no instruction executes transiently at all",
		Eval:        true,
		cov:         CoverageComprehensive,
		build:       func(Spec) (cpu.Policy, error) { return &fencePolicy{}, nil },
	},
	{
		Name:        "delay",
		Summary:     "transmitters wait for all older unresolved branches",
		ThreatModel: "comprehensive: every transient transmission is delayed (the paper's ~51% baseline class)",
		Eval:        true,
		cov:         CoverageComprehensive,
		build:       func(s Spec) (cpu.Policy, error) { return &delayPolicy{name: s.String()}, nil },
	},
	{
		Name:        "invisible",
		Summary:     "speculative loads run invisibly, exposed when safe; div/cflush wait",
		ThreatModel: "comprehensive: transient execution leaves no visible cache state (InvisiSpec/GhostMinion class, ~43% baseline)",
		Eval:        true,
		cov:         CoverageComprehensive,
		build:       func(Spec) (cpu.Policy, error) { return &invisiblePolicy{}, nil },
	},
	{
		Name:        "taint",
		Summary:     "dataflow tracking from speculative loads; tainted transmitters wait (STT class)",
		ThreatModel: "sandbox: speculatively-accessed data cannot be transmitted; non-speculatively loaded secrets leak by contract",
		Eval:        true, Ablation: true,
		cov: CoverageSandbox,
		build: func(s Spec) (cpu.Policy, error) {
			return newTracking(s.String(), trackingOpts{data: true, loadsTaint: true}), nil
		},
	},
	{
		Name:        "levioso",
		Summary:     "transmitters wait only for true control+data dependencies (compiler-annotated regions)",
		ThreatModel: "comprehensive: every truly-dependent transient transmission is delayed — the paper's design",
		Eval:        true, Ablation: true,
		cov: CoverageComprehensive,
		build: func(s Spec) (cpu.Policy, error) {
			return newTracking(s.String(), trackingOpts{ctrl: true, data: true}), nil
		},
	},
	{
		Name:        "levioso-ctrl",
		Summary:     "ablation: Levioso's control half only, no dataflow propagation",
		ThreatModel: "control-only — UNSOUND against data-dependent leaks; exists for cost attribution",
		Ablation:    true,
		cov:         CoverageCtrl,
		build: func(s Spec) (cpu.Policy, error) {
			return newTracking(s.String(), trackingOpts{ctrl: true}), nil
		},
	},
	{
		Name:        "levioso-ghost",
		Summary:     "extension: truly-dependent loads execute invisibly instead of stalling",
		ThreatModel: "comprehensive: Levioso precision with invisible execution for the load class",
		Ablation:    true,
		cov:         CoverageComprehensive,
		build: func(s Spec) (cpu.Policy, error) {
			return newTracking(s.String(), trackingOpts{ctrl: true, data: true, ghostLoads: true}), nil
		},
	},
	{
		Name:        "prospect",
		Summary:     "secret-typed data is tracked through dataflow; only secret-tainted transient transmitters wait (ProSpeCT class)",
		ThreatModel: "constant-time: declared secrets never reach a transient transmitter operand; unmarked (public) data leaks by contract",
		Eval:        true,
		cov:         CoverageSecret,
		build:       func(Spec) (cpu.Policy, error) { return &prospectPolicy{}, nil },
	},
	{
		Name:        "tunable",
		Summary:     "runtime-selectable protection level (HW/SW co-design class)",
		ThreatModel: "the contract of the configured level: none, control-only, sandbox, or comprehensive",
		Params: []Param{{
			Name:    "level",
			Doc:     "protection level applied at request time",
			Default: "comprehensive",
			Enum:    []string{"none", "ctrl", "sandbox", "comprehensive"},
		}},
		covFn: func(params map[string]string) Coverage {
			switch params["level"] {
			case "none":
				return CoverageNone
			case "ctrl":
				return CoverageCtrl
			case "sandbox":
				return CoverageSandbox
			default:
				return CoverageComprehensive
			}
		},
		build: func(s Spec) (cpu.Policy, error) {
			name := s.String()
			switch s.Params["level"] {
			case "none":
				return nopNamed{name: name}, nil
			case "ctrl":
				return newTracking(name, trackingOpts{ctrl: true}), nil
			case "sandbox":
				return newTracking(name, trackingOpts{data: true, loadsTaint: true}), nil
			default:
				return &delayPolicy{name: name}, nil
			}
		},
	},
}

// Descriptors returns the registration table in presentation order.
// Callers must not mutate the entries.
func Descriptors() []*Descriptor {
	out := make([]*Descriptor, len(registry))
	for i := range registry {
		out[i] = &registry[i]
	}
	return out
}

// Lookup returns the descriptor for a family name. The error here is the
// single unknown-policy message every layer reports.
func Lookup(name string) (*Descriptor, error) {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i], nil
		}
	}
	return nil, fmt.Errorf("secure: unknown policy %q (have %v)", name, Names())
}

// Spec is a resolved policy selection: a family name plus the full
// parameter map (defaults applied). Its String form is the canonical spec —
// what Policy.Name() returns and what cache keys, reports and the serve API
// carry.
type Spec struct {
	Name   string
	Params map[string]string
}

// String renders the canonical spec: the bare name for parameter-free
// families, otherwise name:k=v[,k=v...] with keys sorted.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k])
	}
	return b.String()
}

// ParseSpec splits a spec string (name[:k=v[,k=v...]]) into its parts
// without consulting the registry.
func ParseSpec(spec string) (name string, params map[string]string, err error) {
	name, rest, has := strings.Cut(spec, ":")
	if name == "" {
		return "", nil, fmt.Errorf("secure: empty policy spec")
	}
	if !has {
		return name, nil, nil
	}
	params = make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("secure: bad policy parameter %q in %q (want key=value)", kv, spec)
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("secure: duplicate policy parameter %q in %q", k, spec)
		}
		params[k] = v
	}
	return name, params, nil
}

// Resolve parses a spec string, merges extra parameters over it (extra
// wins), validates every parameter against the family's declaration, applies
// defaults, and returns the full Spec. This is the one funnel every layer's
// policy validation goes through.
func Resolve(spec string, extra map[string]string) (Spec, error) {
	name, params, err := ParseSpec(spec)
	if err != nil {
		return Spec{}, err
	}
	d, err := Lookup(name)
	if err != nil {
		return Spec{}, err
	}
	merged := make(map[string]string, len(params)+len(extra))
	for k, v := range params {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	full := make(map[string]string, len(d.Params))
	for i := range d.Params {
		p := &d.Params[i]
		v, ok := merged[p.Name]
		if !ok {
			full[p.Name] = p.Default
			continue
		}
		delete(merged, p.Name)
		valid := false
		for _, e := range p.Enum {
			if v == e {
				valid = true
				break
			}
		}
		if !valid {
			return Spec{}, fmt.Errorf("secure: policy %s: parameter %s=%q invalid (want one of %v)",
				d.Name, p.Name, v, p.Enum)
		}
		full[p.Name] = v
	}
	for k := range merged {
		if _, ok := full[k]; !ok {
			return Spec{}, fmt.Errorf("secure: policy %s has no parameter %q", d.Name, k)
		}
	}
	if len(full) == 0 {
		full = nil
	}
	return Spec{Name: d.Name, Params: full}, nil
}

// Canonical returns the canonical form of a spec string (defaults applied,
// parameters sorted). Two specs selecting the same configuration always
// canonicalize identically, so cache keys and reports never alias.
func Canonical(spec string) (string, error) {
	s, err := Resolve(spec, nil)
	if err != nil {
		return "", err
	}
	return s.String(), nil
}

// New constructs the policy a spec selects. Valid family names are listed
// by Names; parameterized families accept name:key=value[,key=value...].
func New(spec string) (cpu.Policy, error) {
	s, err := Resolve(spec, nil)
	if err != nil {
		return nil, err
	}
	d, _ := Lookup(s.Name)
	return d.build(s)
}

// MustNew is New for known-valid specs; it panics on error.
func MustNew(spec string) cpu.Policy {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists all policy family names, baseline first.
func Names() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].Name
	}
	return out
}

// BaselineName is the registry's designated baseline: the unprotected core
// every overhead number is measured against. It is always the first entry.
func BaselineName() string {
	return registry[0].Name
}

// EvalNames lists the policies in the headline evaluation (experiment F1),
// in presentation order, baseline first.
func EvalNames() []string {
	var out []string
	for i := range registry {
		if registry[i].Eval {
			out = append(out, registry[i].Name)
		}
	}
	return out
}

// AblationNames lists the Levioso ablation set (experiment F5), baseline
// first.
func AblationNames() []string {
	var out []string
	for i := range registry {
		if registry[i].Ablation {
			out = append(out, registry[i].Name)
		}
	}
	return out
}

// SweepSpecs lists one canonical spec per distinct policy configuration:
// every parameter-free family once, and every combination of enum values
// for parameterized families. This is the exhaustive sweep the fuzz
// security oracle and the attack smoke matrix run.
func SweepSpecs() []string {
	var out []string
	for i := range registry {
		d := &registry[i]
		for _, params := range paramCombos(d.Params) {
			out = append(out, Spec{Name: d.Name, Params: params}.String())
		}
	}
	return out
}

// paramCombos enumerates every combination of enum values; a family with no
// parameters yields one nil combination.
func paramCombos(ps []Param) []map[string]string {
	if len(ps) == 0 {
		return []map[string]string{nil}
	}
	rest := paramCombos(ps[1:])
	var out []map[string]string
	for _, v := range ps[0].Enum {
		for _, r := range rest {
			m := map[string]string{ps[0].Name: v}
			for k, rv := range r {
				m[k] = rv
			}
			out = append(out, m)
		}
	}
	return out
}

// CoverageOf returns the security contract a spec promises — for
// parameterized families, the contract of the configured values.
func CoverageOf(spec string) (Coverage, error) {
	s, err := Resolve(spec, nil)
	if err != nil {
		return CoverageNone, err
	}
	d, _ := Lookup(s.Name)
	return d.CoverageFor(s.Params), nil
}

// FlagUsage renders the one-line CLI help for policy flags, derived from
// the registry so flag help can never drift from the policy set.
func FlagUsage() string {
	var parts []string
	for i := range registry {
		d := &registry[i]
		p := d.Name
		for j := range d.Params {
			pr := &d.Params[j]
			p += fmt.Sprintf("[:%s=%s]", pr.Name, strings.Join(pr.Enum, "|"))
		}
		parts = append(parts, p)
	}
	return "secure-speculation policy: " + strings.Join(parts, ", ")
}

// PolicyTable renders the registry as a markdown table (README's policy
// section embeds this output; a test keeps them in sync).
func PolicyTable() string {
	var b strings.Builder
	b.WriteString("| policy | coverage | threat model | tunables |\n")
	b.WriteString("|---|---|---|---|\n")
	for i := range registry {
		d := &registry[i]
		cov := d.CoverageFor(defaultParams(d)).String()
		if d.covFn != nil {
			var covs []string
			for _, params := range paramCombos(d.Params) {
				covs = append(covs, d.CoverageFor(params).String())
			}
			cov = "per level: " + strings.Join(dedupe(covs), ", ")
		}
		tun := "—"
		if len(d.Params) > 0 {
			var ts []string
			for j := range d.Params {
				p := &d.Params[j]
				ts = append(ts, fmt.Sprintf("`%s` ∈ {%s}, default `%s`",
					p.Name, strings.Join(p.Enum, ", "), p.Default))
			}
			tun = strings.Join(ts, "; ")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", d.Name, cov, d.ThreatModel, tun)
	}
	return b.String()
}

func defaultParams(d *Descriptor) map[string]string {
	if len(d.Params) == 0 {
		return nil
	}
	m := make(map[string]string, len(d.Params))
	for i := range d.Params {
		m[d.Params[i].Name] = d.Params[i].Default
	}
	return m
}

func dedupe(in []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// nopNamed is the NopPolicy baseline under another name, used by
// tunable:level=none. It intentionally does NOT satisfy the core's exact
// NopPolicy fast-path type check, but the hook set is identical no-ops, so
// its timing matches unsafe cycle for cycle.
type nopNamed struct {
	cpu.NopPolicy
	name string
}

func (p nopNamed) Name() string { return p.name }
