package secure

import (
	"os"
	"strings"
	"testing"
)

// Registry completeness: every registered family is fully described, every
// distinct configuration is constructible, has a coverage contract, and
// canonicalizes stably. This is the single-source-of-truth guarantee the
// downstream layers (engine, serve, cli, attack, fuzz) rely on.
func TestRegistryCompleteness(t *testing.T) {
	names := Names()
	if len(names) != len(Descriptors()) {
		t.Fatalf("Names()=%d entries, Descriptors()=%d", len(names), len(Descriptors()))
	}
	seen := make(map[string]bool)
	for _, d := range Descriptors() {
		if d.Name == "" || d.Summary == "" || d.ThreatModel == "" {
			t.Errorf("descriptor %+v missing name/summary/threat model", d)
		}
		if seen[d.Name] {
			t.Errorf("duplicate registration %q", d.Name)
		}
		seen[d.Name] = true
		for _, p := range d.Params {
			if p.Name == "" || p.Default == "" || len(p.Enum) == 0 {
				t.Errorf("policy %s: parameter %+v incomplete", d.Name, p)
			}
			ok := false
			for _, e := range p.Enum {
				ok = ok || e == p.Default
			}
			if !ok {
				t.Errorf("policy %s: default %q not in enum %v", d.Name, p.Default, p.Enum)
			}
		}
	}
	for _, spec := range SweepSpecs() {
		pol, err := New(spec)
		if err != nil {
			t.Errorf("sweep spec %q not constructible: %v", spec, err)
			continue
		}
		if pol.Name() != spec {
			t.Errorf("spec %q constructs policy named %q", spec, pol.Name())
		}
		if _, err := CoverageOf(spec); err != nil {
			t.Errorf("spec %q has no coverage contract: %v", spec, err)
		}
		canon, err := Canonical(spec)
		if err != nil || canon != spec {
			t.Errorf("sweep spec %q not canonical (got %q, err %v)", spec, canon, err)
		}
	}
	// Flag help and the docs table must mention every family.
	usage, table := FlagUsage(), PolicyTable()
	for _, n := range names {
		if !strings.Contains(usage, n) {
			t.Errorf("FlagUsage() omits %q: %s", n, usage)
		}
		if !strings.Contains(table, "`"+n+"`") {
			t.Errorf("PolicyTable() omits %q", n)
		}
	}
	// Table rows appear in Names() order.
	last := -1
	for _, n := range names {
		i := strings.Index(table, "| `"+n+"`")
		if i < 0 || i < last {
			t.Errorf("PolicyTable() row for %q missing or out of order", n)
		}
		last = i
	}
}

// The README's policy table is PolicyTable() output pasted verbatim; this
// keeps the docs from drifting when the registry grows.
func TestReadmeTableInSync(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), PolicyTable()) {
		t.Errorf("README.md policy table is out of sync with the registry — paste this:\n%s", PolicyTable())
	}
}

func TestSpecResolution(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical; "" = error expected
	}{
		{"unsafe", "unsafe"},
		{"levioso", "levioso"},
		{"tunable", "tunable:level=comprehensive"},
		{"tunable:level=ctrl", "tunable:level=ctrl"},
		{"tunable:level=none", "tunable:level=none"},
		{"prospect", "prospect"},
		{"bogus", ""},
		{"", ""},
		{"tunable:level=extreme", ""},
		{"tunable:mode=ctrl", ""},
		{"tunable:level=ctrl,level=none", ""},
		{"tunable:level", ""},
		{"unsafe:level=ctrl", ""},
	}
	for _, c := range cases {
		got, err := Canonical(c.spec)
		if c.want == "" {
			if err == nil {
				t.Errorf("Canonical(%q) = %q, want error", c.spec, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("Canonical(%q) = %q, %v; want %q", c.spec, got, err, c.want)
		}
	}
	// Out-of-band parameters (engine.Overrides.Params) merge over the spec
	// string, with the explicit map winning.
	s, err := Resolve("tunable:level=sandbox", map[string]string{"level": "ctrl"})
	if err != nil || s.String() != "tunable:level=ctrl" {
		t.Errorf("Resolve merge = %v, %v", s, err)
	}
	if _, err := Resolve("unsafe", map[string]string{"level": "ctrl"}); err == nil {
		t.Error("parameter on parameter-free family accepted")
	}
}

func TestTunableCoverageByLevel(t *testing.T) {
	want := map[string]Coverage{
		"tunable:level=none":          CoverageNone,
		"tunable:level=ctrl":          CoverageCtrl,
		"tunable:level=sandbox":       CoverageSandbox,
		"tunable:level=comprehensive": CoverageComprehensive,
		"tunable":                     CoverageComprehensive,
		"prospect":                    CoverageSecret,
	}
	for spec, cov := range want {
		got, err := CoverageOf(spec)
		if err != nil || got != cov {
			t.Errorf("CoverageOf(%q) = %v, %v; want %v", spec, got, err, cov)
		}
	}
}

// A gadget whose transmitter's address derives from loaded data, with an
// unpredictable branch keeping speculation shadows open. With tbl declared
// secret, prospect must restrict the dependent transmitter; with no secret
// declaration the identical program must run completely unrestricted — at
// exactly the unprotected core's cycle count. That timing identity on
// secret-free programs is the ProSpeCT selling point.
const secretKernelSrc = `
main:
	la s0, tbl
	la s1, probe
	li s2, 0
	li s3, 256
	li s4, 0
	li s5, 2654435761
loop:
	mul t5, s2, s5
	srli t5, t5, 11
	andi t5, t5, 1
	beqz t5, skip      # unpredictable: long speculation shadows
	addi s4, s4, 1
skip:
	slli t0, s2, 3
	add t0, t0, s0
	ld t1, 0(t0)       # reads tbl (secret when declared)
	andi t1, t1, 127
	slli t1, t1, 3
	add t1, t1, s1
	ld t2, 0(t1)       # transmitter: address derived from loaded data
	add s4, s4, t2
	addi s2, s2, 1
	blt s2, s3, loop
	halt s4
	.data
tbl:
	.quad 7, 23, 99, 41, 8, 120, 63, 5
	.space 1984
probe:
	.space 1024
`

func TestProspectRestrictsOnlySecretData(t *testing.T) {
	public := compileKernel(t, secretKernelSrc)
	marked := compileKernel(t, secretKernelSrc+"\t.secret tbl, 2048\n")

	withSecret := runPolicy(t, marked, "prospect").Stats
	if withSecret.PolicyWaitEvents == 0 {
		t.Error("prospect never delayed a secret-dependent transmitter")
	}

	noSecret := runPolicy(t, public, "prospect").Stats
	if noSecret.PolicyWaitEvents != 0 || noSecret.RestrictedTransmitters != 0 {
		t.Errorf("prospect restricted a secret-free program: %+v", noSecret)
	}
	unsafe := runPolicy(t, public, "unsafe").Stats
	if noSecret.Cycles != unsafe.Cycles {
		t.Errorf("prospect on secret-free program: %d cycles, unsafe %d — should be identical",
			noSecret.Cycles, unsafe.Cycles)
	}
}

// Store-forwarding must carry the secret taint: a secret value staged
// through memory (store then load back from a public scratch slot) is still
// secret when a dependent transmitter consumes it.
func TestProspectTaintSurvivesStoreForwarding(t *testing.T) {
	src := `
main:
	la s0, key
	la s1, scratch
	la s2, probe
	li s3, 0
	li s4, 200
	li s5, 2654435761
loop:
	mul t5, s3, s5
	srli t5, t5, 10
	andi t5, t5, 1
	beqz t5, skip
	addi s6, s6, 1
skip:
	ld t0, 0(s0)       # secret
	sd t0, 0(s1)       # stage through public scratch
	ld t1, 0(s1)       # forwarded: taint must survive
	andi t1, t1, 63
	slli t1, t1, 3
	add t1, t1, s2
	ld t2, 0(t1)       # transmitter on forwarded secret
	add s6, s6, t2
	addi s3, s3, 1
	blt s3, s4, loop
	halt s6
	.data
key:
	.quad 41
scratch:
	.quad 0
probe:
	.space 1024
	.secret key, 8
`
	prog := compileKernel(t, src)
	st := runPolicy(t, prog, "prospect").Stats
	if st.LoadForward == 0 {
		t.Skip("no store-forwarding occurred; gadget did not exercise the path")
	}
	if st.PolicyWaitEvents == 0 {
		t.Error("prospect never delayed a transmitter fed by a forwarded secret")
	}
}

// tunable:level=none is the baseline under another name: architecturally
// identical AND cycle-identical to unsafe, despite not taking the core's
// NopPolicy fast path.
func TestTunableNoneMatchesUnsafe(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	none := runPolicy(t, prog, "tunable:level=none").Stats
	unsafe := runPolicy(t, prog, "unsafe").Stats
	if none.Cycles != unsafe.Cycles {
		t.Errorf("tunable:level=none %d cycles, unsafe %d — must be identical",
			none.Cycles, unsafe.Cycles)
	}
}

// Each tunable level reproduces the timing of the mechanism it selects.
func TestTunableLevelsMatchMechanisms(t *testing.T) {
	prog := compileKernel(t, kernelSrc)
	pairs := [][2]string{
		{"tunable:level=ctrl", "levioso-ctrl"},
		{"tunable:level=sandbox", "taint"},
		{"tunable:level=comprehensive", "delay"},
	}
	for _, pr := range pairs {
		a := runPolicy(t, prog, pr[0]).Stats
		b := runPolicy(t, prog, pr[1]).Stats
		if pr[0] == "tunable:level=ctrl" {
			// levioso-ctrl gates on annotated regions; tunable's ctrl level
			// reuses the same tracking configuration, so timing matches.
			if a.Cycles != b.Cycles {
				t.Errorf("%s %d cycles, %s %d", pr[0], a.Cycles, pr[1], b.Cycles)
			}
			continue
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%s %d cycles, %s %d — same mechanism must time identically",
				pr[0], a.Cycles, pr[1], b.Cycles)
		}
	}
}
