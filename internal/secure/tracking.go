package secure

import (
	"levioso/internal/core"
	"levioso/internal/cpu"
)

// trackingPolicy implements the dependency-tracking policies over the Branch
// Dependency Table and the per-physical-register mask file:
//
//   - levioso:      ctrl=true,  data=true   (true control + data dependencies)
//   - levioso-ctrl: ctrl=true,  data=false  (ablation: control only)
//   - taint:        ctrl=false, data=true   (STT-class: dataflow from
//     speculative loads only; sandbox threat model)
//
// Mask discipline: OnRename snapshots the control component (open regions for
// Levioso, nothing for taint) into WaitMask; the core clears WaitMask bits as
// branches resolve. The full dependency mask — control | source-register
// masks — is evaluated at issue time, when source masks are final (a source's
// mask can only change before its value becomes ready, and Decide runs only
// once operands are ready). On Proceed the instruction's destination mask is
// published for its consumers.
type trackingPolicy struct {
	name       string
	useCtrl    bool
	useData    bool
	loadsTaint bool // taint: load results depend on all branches they ran under
	// ghostLoads: instead of stalling a truly-dependent load, execute it
	// invisibly (no cache state change, exposure+validation when safe) —
	// the levioso-ghost extension combining the paper's precision with
	// invisible execution. Divider/flush transmitters still wait.
	ghostLoads bool

	c   *cpu.Core
	dep *core.DepState
}

func newTracking(name string, ctrl, data bool) *trackingPolicy {
	return &trackingPolicy{
		name:       name,
		useCtrl:    ctrl,
		useData:    data,
		loadsTaint: name == "taint",
		ghostLoads: name == "levioso-ghost",
	}
}

func (p *trackingPolicy) Name() string { return p.name }

func (p *trackingPolicy) Attach(c *cpu.Core) {
	p.c = c
	p.dep = core.NewDepState(c.Config().NumPhysRegs)
}

func (p *trackingPolicy) Reset() {
	if p.dep != nil {
		p.dep.Reset()
	}
}

func (p *trackingPolicy) OnRename(d *cpu.DynInst) {
	if p.useCtrl {
		d.WaitMask = p.c.BT.OpenMask()
	}
	if p.loadsTaint && d.IsLoad() {
		// The load's result is speculative under every branch in flight at
		// its rename; the core clears these bits as branches resolve, so by
		// issue time DataMask holds exactly the still-unresolved set.
		d.DataMask = p.c.BT.Unresolved()
	}
}

func (p *trackingPolicy) Decide(d *cpu.DynInst) cpu.Decision {
	m := d.WaitMask
	if p.useData {
		if d.Src1 >= 0 {
			m |= p.dep.Get(d.Src1)
		}
		if d.Src2 >= 0 {
			m |= p.dep.Get(d.Src2)
		}
	}
	decision := cpu.Proceed
	if d.IsTransmitter() && m != 0 {
		if p.ghostLoads && d.IsLoad() {
			decision = cpu.ProceedInvisible
		} else {
			return cpu.Wait
		}
	}
	if p.useData {
		out := m
		if p.loadsTaint && d.IsLoad() {
			out |= d.DataMask
		}
		d.DataMask = out
		if d.Dst >= 0 {
			p.dep.Set(d.Dst, out)
		}
	}
	return decision
}

// OnForward propagates the forwarding store's value dependencies into the
// load's result: consumers of the load issue strictly after the load
// completes, so publishing here is early enough.
func (p *trackingPolicy) OnForward(load, store *cpu.DynInst) {
	if !p.useData {
		return
	}
	m := load.DataMask | store.DataMask
	load.DataMask = m
	if load.Dst >= 0 {
		p.dep.Set(load.Dst, m)
	}
}

func (p *trackingPolicy) OnSlotResolved(slot int) {
	p.dep.ClearSlot(slot)
}

func (p *trackingPolicy) OnSquash(*cpu.DynInst) {}
