package secure

import (
	"levioso/internal/core"
	"levioso/internal/cpu"
)

// trackingPolicy implements the dependency-tracking policies over the Branch
// Dependency Table and the per-physical-register mask file:
//
//   - levioso:      ctrl=true,  data=true   (true control + data dependencies)
//   - levioso-ctrl: ctrl=true,  data=false  (ablation: control only)
//   - taint:        ctrl=false, data=true   (STT-class: dataflow from
//     speculative loads only; sandbox threat model)
//
// Mask discipline: OnRename snapshots the control component (open regions for
// Levioso, nothing for taint) into WaitMask; the core clears WaitMask bits as
// branches resolve. The full dependency mask — control | source-register
// masks — is evaluated at issue time, when source masks are final (a source's
// mask can only change before its value becomes ready, and Decide runs only
// once operands are ready). On Proceed the instruction's destination mask is
// published for its consumers.
type trackingPolicy struct {
	name string
	trackingOpts

	c   *cpu.Core
	dep *core.DepState
}

// trackingOpts selects the tracking mechanism explicitly (the registry
// builds several named configurations over the same implementation):
// ctrl gates on open annotated control regions, data propagates masks
// through register dataflow, loadsTaint makes every speculative load's
// result depend on all branches it ran under (the STT model), and
// ghostLoads executes a truly-dependent load invisibly (no cache state
// change, exposure+validation when safe) instead of stalling it — the
// levioso-ghost extension. Divider/flush transmitters always wait.
type trackingOpts struct {
	ctrl       bool
	data       bool
	loadsTaint bool
	ghostLoads bool
}

func newTracking(name string, opts trackingOpts) *trackingPolicy {
	return &trackingPolicy{name: name, trackingOpts: opts}
}

func (p *trackingPolicy) Name() string { return p.name }

func (p *trackingPolicy) Attach(c *cpu.Core) {
	p.c = c
	p.dep = core.NewDepState(c.Config().NumPhysRegs)
}

func (p *trackingPolicy) Reset() {
	if p.dep != nil {
		p.dep.Reset()
	}
}

func (p *trackingPolicy) OnRename(d *cpu.DynInst) {
	if p.ctrl {
		d.WaitMask = p.c.BT.OpenMask()
	}
	if p.loadsTaint && d.IsLoad() {
		// The load's result is speculative under every branch in flight at
		// its rename; the core clears these bits as branches resolve, so by
		// issue time DataMask holds exactly the still-unresolved set.
		d.DataMask = p.c.BT.Unresolved()
	}
}

func (p *trackingPolicy) Decide(d *cpu.DynInst) cpu.Decision {
	m := d.WaitMask
	if p.data {
		if d.Src1 >= 0 {
			m |= p.dep.Get(d.Src1)
		}
		if d.Src2 >= 0 {
			m |= p.dep.Get(d.Src2)
		}
	}
	decision := cpu.Proceed
	if d.IsTransmitter() && m != 0 {
		if p.ghostLoads && d.IsLoad() {
			decision = cpu.ProceedInvisible
		} else {
			return cpu.Wait
		}
	}
	if p.data {
		out := m
		if p.loadsTaint && d.IsLoad() {
			out |= d.DataMask
		}
		d.DataMask = out
		if d.Dst >= 0 {
			p.dep.Set(d.Dst, out)
		}
	}
	return decision
}

// OnForward propagates the forwarding store's value dependencies into the
// load's result: consumers of the load issue strictly after the load
// completes, so publishing here is early enough.
func (p *trackingPolicy) OnForward(load, store *cpu.DynInst) {
	if !p.data {
		return
	}
	m := load.DataMask | store.DataMask
	load.DataMask = m
	if load.Dst >= 0 {
		p.dep.Set(load.Dst, m)
	}
}

func (p *trackingPolicy) OnSlotResolved(slot int) {
	p.dep.ClearSlot(slot)
}

func (p *trackingPolicy) OnSquash(*cpu.DynInst) {}
