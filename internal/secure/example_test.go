package secure_test

import (
	"fmt"

	"levioso/internal/cpu"
	"levioso/internal/lang"
	"levioso/internal/secure"
)

// Running the same compiled program under the unprotected core and under
// Levioso: architectural results are identical; only timing differs.
func Example() {
	prog := lang.MustCompile("demo.lc", `
var data[256];
func main() {
	var i;
	var sum = 0;
	for (i = 0; i < 256; i = i + 1) { data[i] = i * 3; }
	for (i = 0; i < 256; i = i + 1) {
		if (data[i] & 4) { sum = sum + data[i]; }
	}
	return sum & 255;
}`)
	var exits [2]uint64
	for i, name := range []string{"unsafe", "levioso"} {
		c, err := cpu.New(prog, cpu.DefaultConfig(), secure.MustNew(name))
		if err != nil {
			panic(err)
		}
		res, err := c.Run()
		if err != nil {
			panic(err)
		}
		exits[i] = res.ExitCode
	}
	fmt.Printf("same architectural result: %v\n", exits[0] == exits[1])
	// Output:
	// same architectural result: true
}

// New rejects unknown policy names; known families are selected by name
// (never by position in Names(), which grows as policies are registered).
func ExampleNew() {
	_, err := secure.New("spectre-proof")
	fmt.Println(err != nil)
	for _, name := range []string{"unsafe", "levioso"} {
		fmt.Println(secure.MustNew(name).Name())
	}
	// Output:
	// true
	// unsafe
	// levioso
}
