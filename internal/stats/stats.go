// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to reproduce the paper's tables and figures:
// geometric means for overhead aggregation, aligned ASCII tables, and
// text bar charts for figure-style output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs. Non-positive entries are clamped
// to a small epsilon (overheads are ratios ≥ 0; a zero would annihilate the
// mean). It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a ratio as a percentage with one decimal ("23.4%").
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Bar renders a proportional text bar of at most width characters.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// Table is an aligned ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row (padded/truncated to the header width).
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Left-align the first column, right-align the rest (numbers).
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
