package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Errorf("GeoMean(1,4) = %f", g)
	}
	if g := GeoMean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-9 {
		t.Errorf("GeoMean(2,2,2) = %f", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %f", g)
	}
	// Zero entries are clamped, not fatal.
	if g := GeoMean([]float64{0, 1}); g <= 0 {
		t.Errorf("GeoMean with zero = %f", g)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("Mean = %f", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %f", m)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.234); got != "23.4%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####" {
		t.Errorf("Bar = %q", b)
	}
	if b := Bar(0.001, 10, 10); b != "#" {
		t.Errorf("tiny Bar = %q (nonzero values get at least one mark)", b)
	}
	if b := Bar(20, 10, 10); b != "##########" {
		t.Errorf("clamped Bar = %q", b)
	}
	if b := Bar(0, 10, 10); b != "" {
		t.Errorf("zero Bar = %q", b)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.Add("alpha", "1")
	tab.Add("b", "22")
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: "value" column right-aligned.
	if !strings.HasSuffix(lines[3], "    1") && !strings.Contains(lines[3], " 1") {
		t.Errorf("row = %q", lines[3])
	}
	// Short rows are padded.
	tab.Add("only-one-cell")
	if !strings.Contains(tab.String(), "only-one-cell") {
		t.Error("short row dropped")
	}
}
