package cli

import (
	"errors"
	"flag"
	"io"
	"testing"

	"levioso/internal/simerr"
	"levioso/internal/workloads"
)

func TestParseSize(t *testing.T) {
	if s, err := ParseSize("test"); err != nil || s != workloads.SizeTest {
		t.Fatalf("test: %v %v", s, err)
	}
	if s, err := ParseSize("ref"); err != nil || s != workloads.SizeRef {
		t.Fatalf("ref: %v %v", s, err)
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestExitStatus(t *testing.T) {
	if got := ExitStatus(0); got != 0 {
		t.Fatalf("0 -> %d", got)
	}
	if got := ExitStatus(255); got != 127 {
		t.Fatalf("255 -> %d, want low 7 bits", got)
	}
}

func TestSimFlagsRequest(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sf := RegisterSim(fs)
	if err := fs.Parse([]string{"-policy", "levioso", "-rob", "96", "-deadline", "5s"}); err != nil {
		t.Fatal(err)
	}
	req, err := sf.Request("x.bin")
	if err != nil {
		t.Fatal(err)
	}
	if req.Policy != "levioso" || req.ROBSize != 96 || req.Deadline.Seconds() != 5 {
		t.Fatalf("flag translation wrong: %+v", req)
	}
	cfg := req.BuildConfig()
	if cfg.ROBSize != 96 {
		t.Fatalf("ROB override lost: %+v", cfg)
	}
}

func TestSimFlagsRequestRejectsBadOverrides(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sf := RegisterSim(fs)
	if err := fs.Parse([]string{"-policy", "nonesuch"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Request("x.bin"); !errors.Is(err, simerr.ErrBuild) {
		t.Fatalf("want typed build error for unknown policy, got %v", err)
	}
}

func TestDefaultOut(t *testing.T) {
	if got := DefaultOut("a/b.lc", ".lc", ".bin"); got != "a/b.bin" {
		t.Fatal(got)
	}
}

func TestFailClassifiesTypedErrors(t *testing.T) {
	// Fail must not panic and must return 1 for both plain and typed errors.
	if Fail("tool", errors.New("plain")) != 1 {
		t.Fatal("plain error status")
	}
	if Fail("tool", &simerr.RunError{Kind: simerr.KindWatchdog}) != 1 {
		t.Fatal("typed error status")
	}
}
