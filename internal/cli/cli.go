// Package cli is the shared adapter layer between the cmd/ mains and the
// engine: common flag groups (simulate options, build-tool options, profile
// hooks), size/policy parsing, output writing, and exit-code funneling. Every
// main is a thin flag-to-engine.Request translation over these helpers, so
// usage conventions, error rendering and exit statuses stay identical across
// the seven binaries instead of drifting per main.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"levioso/internal/engine"
	"levioso/internal/obs"
	"levioso/internal/prof"
	"levioso/internal/simerr"
	"levioso/internal/workloads"
)

// Fail reports err on stderr prefixed with the tool name and returns the
// conventional failure status 1. Typed simulation failures additionally
// report their classification (kind, transience) and any captured panic
// stack, so every tool renders engine errors the same way.
func Fail(tool string, err error) int {
	var re *simerr.RunError
	if errors.As(err, &re) {
		fmt.Fprintf(os.Stderr, "%s: run failed: kind=%s transient=%v\n",
			tool, re.Kind, re.Transient())
		if re.Stack != "" {
			fmt.Fprintln(os.Stderr, re.Stack)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	return 1
}

// Usage prints a usage line and returns the conventional usage status 2.
func Usage(line string) int {
	fmt.Fprintln(os.Stderr, "usage: "+line)
	return 2
}

// ExitStatus funnels a simulated program's exit code into a shell exit
// status (low seven bits, matching wait semantics).
func ExitStatus(code uint64) int { return int(code) & 0x7f }

// ParseSize maps a -size flag value onto a workload scale.
func ParseSize(s string) (workloads.Size, error) {
	switch s {
	case "test":
		return workloads.SizeTest, nil
	case "ref":
		return workloads.SizeRef, nil
	default:
		return 0, fmt.Errorf("unknown size %q (test|ref)", s)
	}
}

// SplitList splits a comma-separated flag value into trimmed, non-empty
// elements (nil for an empty value). The list-valued flags on levbench and
// levfuzz (-exp, -policies, -profile) share this so "a, b," and "a,b" parse
// identically everywhere.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// SimFlags is the common simulation flag group: policy, core overrides, run
// mode, deadline and profile destinations. levsim registers it wholesale;
// levserve accepts the same knobs per request over HTTP.
type SimFlags struct {
	Policy    *string
	ROB       *int
	MaxCycles *uint64
	Stats     *bool
	Ref       *bool
	Trace     *bool
	Deadline  *time.Duration
	Profiles  *prof.Flags
}

// RegisterSim adds the simulation flag group to fs.
func RegisterSim(fs *flag.FlagSet) *SimFlags {
	return &SimFlags{
		Policy:    fs.String("policy", engine.BaselinePolicy(), engine.PolicyUsage()),
		ROB:       fs.Int("rob", 0, "override ROB size"),
		MaxCycles: fs.Uint64("max-cycles", 1_000_000_000, "cycle limit"),
		Stats:     fs.Bool("stats", false, "print detailed statistics"),
		Ref:       fs.Bool("ref", false, "run on the functional reference model instead"),
		Trace:     fs.Bool("trace", false, "write a per-commit pipeline trace to stderr (slow)"),
		Deadline:  fs.Duration("deadline", 0, "wall-clock bound on the simulation (0 = none)"),
		Profiles:  prof.Register(fs),
	}
}

// Request translates the parsed flag group into a normalized engine request
// (the caller fills in the program input). Normalization is the same
// engine.Overrides.Normalize the levserve JSON path runs, so a flag value
// rejected here is rejected identically over HTTP.
func (f *SimFlags) Request(name string) (engine.Request, error) {
	req := engine.Request{
		Name:   name,
		UseRef: *f.Ref,
		Overrides: engine.Overrides{
			Policy:    *f.Policy,
			ROBSize:   *f.ROB,
			MaxCycles: *f.MaxCycles,
			Deadline:  *f.Deadline,
		},
	}
	if *f.Trace {
		req.Trace = os.Stderr
	}
	if err := req.Normalize(); err != nil {
		return req, err
	}
	return req, nil
}

// RegisterMetrics adds the -metrics flag: dump every metric the run recorded
// (engine stage histograms, sweep counters, ...) to stderr at exit in the
// Prometheus text format — the offline twin of levserve's GET /metrics.
func RegisterMetrics(fs *flag.FlagSet) *bool {
	return fs.Bool("metrics", false, "dump collected metrics (Prometheus text) to stderr at exit")
}

// DumpMetrics writes the process-wide obs registry to stderr when enabled.
// Tools call it on their deferred exit path, after the run recorded.
func DumpMetrics(tool string, enabled bool) {
	if !enabled {
		return
	}
	fmt.Fprintf(os.Stderr, "# %s: metrics snapshot\n", tool)
	if err := obs.Default().WriteProm(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "%s: metrics dump failed: %v\n", tool, err)
	}
}

// BuildFlags is the common build-tool flag group shared by levc and levas.
type BuildFlags struct {
	Out        *string
	NoAnnotate *bool
	Listing    *bool
}

// RegisterBuild adds the build flag group to fs.
func RegisterBuild(fs *flag.FlagSet) *BuildFlags {
	return &BuildFlags{
		Out:        fs.String("o", "", "output path (default: input with the matching suffix)"),
		NoAnnotate: fs.Bool("no-annotate", false, "skip the Levioso annotation pass"),
		Listing:    fs.Bool("l", false, "print a disassembly listing to stdout"),
	}
}

// DefaultOut derives an output path from the input by swapping suffixes.
func DefaultOut(in, oldSuffix, newSuffix string) string {
	return strings.TrimSuffix(in, oldSuffix) + newSuffix
}

// WriteOut writes a build product to out (or def when out is empty) and
// reports the destination the way the build tools always have.
func WriteOut(tool, out, def string, data []byte) error {
	if out == "" {
		out = def
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: wrote %s (%d bytes)\n", tool, out, len(data))
	return nil
}
