package isa

import "strings"

// RegMask is a bitset over the 32 architectural registers. The Levioso
// compiler uses it to annotate each branch with the set of registers that may
// be written inside the branch's control-dependent region (between the branch
// and its reconvergence point); the hardware uses it to seed data-dependency
// tracking.
type RegMask uint32

// Set returns m with register r added.
func (m RegMask) Set(r Reg) RegMask { return m | 1<<uint(r) }

// Has reports whether register r is in the mask.
func (m RegMask) Has(r Reg) bool { return m&(1<<uint(r)) != 0 }

// Union returns the union of m and o.
func (m RegMask) Union(o RegMask) RegMask { return m | o }

// Count returns the number of registers in the mask.
func (m RegMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String lists the registers in the mask, e.g. "{a0,t1}".
func (m RegMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for r := Reg(0); r < NumRegs; r++ {
		if m.Has(r) {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(r.String())
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}
