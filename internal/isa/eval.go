package isa

// This file holds the pure (register-only) semantics of LEV64, shared by the
// functional reference interpreter and the out-of-order core's execute stage.
// Memory, control flow and system effects are handled by the callers.

// EvalALU computes the result of a register-register or register-immediate
// ALU/MUL/DIV instruction given its (already read) operand values. For
// immediate forms, pass the immediate as b.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case ADD, ADDI:
		return a + b
	case SUB:
		return a - b
	case AND, ANDI:
		return a & b
	case OR, ORI:
		return a | b
	case XOR, XORI:
		return a ^ b
	case SLL, SLLI:
		return a << (b & 63)
	case SRL, SRLI:
		return a >> (b & 63)
	case SRA, SRAI:
		return uint64(int64(a) >> (b & 63))
	case SLT, SLTI:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case SLTU, SLTIU:
		if a < b {
			return 1
		}
		return 0
	case LUI:
		// rd <- imm << 12, the canonical upper-immediate constructor.
		return b << 12
	case MUL:
		return a * b
	case MULH:
		return mulh(int64(a), int64(b))
	case DIV:
		if b == 0 {
			return ^uint64(0) // -1, RISC-V division-by-zero semantics
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // overflow: result is the dividend
		}
		return uint64(int64(a) / int64(b))
	case DIVU:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case REM:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case REMU:
		if b == 0 {
			return a
		}
		return a % b
	default:
		panic("isa: EvalALU on non-ALU op " + op.String())
	}
}

// mulh returns the high 64 bits of the 128-bit signed product a*b.
func mulh(a, b int64) uint64 {
	// Split into 32-bit halves and recombine; avoids math/bits dependence on
	// signedness handling.
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := umul128(ua, ub)
	if neg {
		// Negate the 128-bit value (two's complement).
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	_ = lo
	return hi
}

// umul128 returns the 128-bit product of a and b as (hi, lo).
func umul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al * bl
	lo = t & mask
	c := t >> 32
	t = ah*bl + c
	c = t >> 32
	t2 := al*bh + t&mask
	lo |= t2 << 32
	hi = ah*bh + c + t2>>32
	return hi, lo
}

// EvalBranch returns whether a conditional branch with operand values a and b
// is taken.
func EvalBranch(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	default:
		panic("isa: EvalBranch on non-branch op " + op.String())
	}
}

// ExtendLoad sign- or zero-extends a raw little-endian load value of the
// given op's width to 64 bits.
func ExtendLoad(op Op, raw uint64) uint64 {
	switch op {
	case LB:
		return uint64(int64(int8(raw)))
	case LBU:
		return raw & 0xff
	case LH:
		return uint64(int64(int16(raw)))
	case LHU:
		return raw & 0xffff
	case LW:
		return uint64(int64(int32(raw)))
	case LWU:
		return raw & 0xffffffff
	case LD:
		return raw
	default:
		panic("isa: ExtendLoad on non-load op " + op.String())
	}
}
