package isa

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Standard memory layout for LEV64 programs. Addresses are small enough that
// every label fits a 32-bit immediate, which keeps la/li single instructions.
const (
	TextBase uint64 = 0x1000     // first instruction
	DataBase uint64 = 0x100000   // start of .data (gp points here at reset)
	StackTop uint64 = 0x8000000  // initial sp (grows down)
	MemLimit uint64 = 0x10000000 // simulated physical memory ceiling
)

// BranchHint is the per-branch annotation the Levioso compiler embeds in the
// binary: the branch's reconvergence PC (its immediate post-dominator — the
// first instruction that executes regardless of the branch outcome) and the
// set of architectural registers that may be written on any path between the
// branch and that reconvergence point.
//
// An instruction is *truly dependent* on an in-flight branch iff it precedes
// the branch's reconvergence point (control dependence) or it transitively
// consumes a register in the branch's write set defined after the branch
// (data dependence). Levioso hardware gates transmitters on exactly this set.
type BranchHint struct {
	ReconvPC uint64  // 0 means "unknown": hardware must be conservative
	WriteSet RegMask // registers possibly written before reconvergence
}

// SecretRange marks [Base, Base+Len) as holding secret-typed data. Programs
// declare these with the `.secret` assembler directive (or a `secret var` in
// the language); ProSpeCT-style policies protect exactly these bytes and
// nothing else.
type SecretRange struct {
	Base uint64
	Len  uint64
}

// Contains reports whether any byte of [addr, addr+size) falls in the range.
func (s SecretRange) Contains(addr, size uint64) bool {
	if size == 0 {
		return false
	}
	return addr < s.Base+s.Len && s.Base < addr+size
}

// Program is a loadable LEV64 binary image: text, initialized data, entry
// point, symbols for diagnostics, and the Levioso annotation table.
type Program struct {
	Text    []Inst            // instructions, Text[i] at TextBase + i*InstBytes
	Data    []byte            // initialized data at DataBase
	Entry   uint64            // initial PC
	Symbols map[string]uint64 // label -> address (text and data)
	Hints   map[uint64]BranchHint
	// Secrets lists the secret-typed memory regions, if any (sorted by
	// base address). Only secret-aware policies consult them.
	Secrets []SecretRange
	// SrcLines optionally maps instruction index to a source description
	// (assembler line or compiler statement) for listings and debugging.
	SrcLines map[int]string
}

// NewProgram returns an empty program with the standard entry point.
func NewProgram() *Program {
	return &Program{
		Entry:    TextBase,
		Symbols:  make(map[string]uint64),
		Hints:    make(map[uint64]BranchHint),
		SrcLines: make(map[int]string),
	}
}

// InstIndex converts a text address to an instruction index.
// ok is false if pc is outside the text segment or misaligned.
func (p *Program) InstIndex(pc uint64) (int, bool) {
	if pc < TextBase || (pc-TextBase)%InstBytes != 0 {
		return 0, false
	}
	i := int((pc - TextBase) / InstBytes)
	if i >= len(p.Text) {
		return 0, false
	}
	return i, true
}

// InstAt fetches the instruction at pc.
func (p *Program) InstAt(pc uint64) (Inst, bool) {
	i, ok := p.InstIndex(pc)
	if !ok {
		return Inst{}, false
	}
	return p.Text[i], true
}

// PCOf converts an instruction index to its address.
func (p *Program) PCOf(i int) uint64 { return TextBase + uint64(i)*InstBytes }

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 { return TextBase + uint64(len(p.Text))*InstBytes }

// SymbolAt returns the name of the symbol at exactly addr, if any.
// When several labels share an address the lexically smallest is returned,
// keeping listings deterministic.
func (p *Program) SymbolAt(addr uint64) (string, bool) {
	best := ""
	for name, a := range p.Symbols {
		if a == addr && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

// NearestSymbol returns the closest symbol at or before addr and the offset
// from it, for diagnostics ("qsort+0x18").
func (p *Program) NearestSymbol(addr uint64) (string, uint64, bool) {
	type sym struct {
		name string
		addr uint64
	}
	var syms []sym
	for name, a := range p.Symbols {
		if a <= addr {
			syms = append(syms, sym{name, a})
		}
	}
	if len(syms) == 0 {
		return "", 0, false
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr > syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	return syms[0].name, addr - syms[0].addr, true
}

// Validate checks structural invariants: entry in text, control-flow targets
// inside the text segment, hints keyed at branch PCs with in-range
// reconvergence points. Workload and compiler tests run this on every binary.
func (p *Program) Validate() error {
	if _, ok := p.InstIndex(p.Entry); !ok {
		return fmt.Errorf("program: entry %#x outside text", p.Entry)
	}
	for i, in := range p.Text {
		pc := p.PCOf(i)
		if in.Op.IsBranch() || in.Op == JAL {
			tgt := in.BranchTarget(pc)
			if _, ok := p.InstIndex(tgt); !ok {
				return fmt.Errorf("program: %#x %v: target %#x outside text", pc, in, tgt)
			}
		}
	}
	for pc, h := range p.Hints {
		in, ok := p.InstAt(pc)
		if !ok {
			return fmt.Errorf("program: hint at %#x: no such instruction", pc)
		}
		if !in.Op.IsBranch() {
			return fmt.Errorf("program: hint at %#x: %v is not a branch", pc, in)
		}
		if h.ReconvPC != 0 {
			if _, ok := p.InstIndex(h.ReconvPC); !ok && h.ReconvPC != p.TextEnd() {
				return fmt.Errorf("program: hint at %#x: reconvergence %#x outside text", pc, h.ReconvPC)
			}
		}
	}
	for _, s := range p.Secrets {
		if s.Len == 0 {
			return fmt.Errorf("program: secret range at %#x has zero length", s.Base)
		}
		if s.Base+s.Len < s.Base || s.Base+s.Len > MemLimit {
			return fmt.Errorf("program: secret range [%#x,+%d) outside memory", s.Base, s.Len)
		}
	}
	return nil
}

// Binary image serialization. The format is a simple sectioned container:
//
//	magic "LEV64\x00" | version u16 | entry u64
//	text: count u32, then count*8 bytes of instructions
//	data: len u32, bytes
//	syms: count u32, then (nameLen u16, name, addr u64)*
//	hints: count u32, then (pc u64, reconv u64, writeset u32)*
//	secrets (version 2 only): count u32, then (base u64, len u64)*
//
// A program without secret ranges marshals as version 1, byte-identical to
// images written before secrets existed, so binary hashes and cache keys of
// all pre-existing programs are unchanged. UnmarshalBinary accepts both.
//
// This is what cmd/levas writes and cmd/levsim reads.

const (
	magic          = "LEV64\x00"
	version        = 1
	versionSecrets = 2
)

// MarshalBinary serializes the program image (source lines are not kept).
func (p *Program) MarshalBinary() ([]byte, error) {
	v := uint16(version)
	if len(p.Secrets) > 0 {
		v = versionSecrets
	}
	var out []byte
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, v)
	out = binary.LittleEndian.AppendUint64(out, p.Entry)

	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Text)))
	var buf [InstBytes]byte
	for _, in := range p.Text {
		if err := in.Encode(buf[:]); err != nil {
			return nil, err
		}
		out = append(out, buf[:]...)
	}

	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
	out = append(out, p.Data...)

	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
	for _, n := range names {
		if len(n) > 1<<16-1 {
			return nil, fmt.Errorf("program: symbol name too long: %q", n[:32])
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(n)))
		out = append(out, n...)
		out = binary.LittleEndian.AppendUint64(out, p.Symbols[n])
	}

	pcs := make([]uint64, 0, len(p.Hints))
	for pc := range p.Hints {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pcs)))
	for _, pc := range pcs {
		h := p.Hints[pc]
		out = binary.LittleEndian.AppendUint64(out, pc)
		out = binary.LittleEndian.AppendUint64(out, h.ReconvPC)
		out = binary.LittleEndian.AppendUint32(out, uint32(h.WriteSet))
	}

	if v >= versionSecrets {
		secrets := append([]SecretRange(nil), p.Secrets...)
		sort.Slice(secrets, func(i, j int) bool { return secrets[i].Base < secrets[j].Base })
		out = binary.LittleEndian.AppendUint32(out, uint32(len(secrets)))
		for _, s := range secrets {
			out = binary.LittleEndian.AppendUint64(out, s.Base)
			out = binary.LittleEndian.AppendUint64(out, s.Len)
		}
	}
	return out, nil
}

// UnmarshalBinary parses a serialized program image.
func (p *Program) UnmarshalBinary(b []byte) error {
	r := reader{b: b}
	if string(r.bytes(len(magic))) != magic {
		return fmt.Errorf("program: bad magic")
	}
	v := r.u16()
	if v != version && v != versionSecrets {
		return fmt.Errorf("program: unsupported version %d", v)
	}
	p.Entry = r.u64()

	n := int(r.u32())
	p.Text = make([]Inst, 0, n)
	for i := 0; i < n; i++ {
		in, err := Decode(r.bytes(InstBytes))
		if err != nil {
			return fmt.Errorf("program: text[%d]: %w", i, err)
		}
		p.Text = append(p.Text, in)
	}

	dn := int(r.u32())
	p.Data = append([]byte(nil), r.bytes(dn)...)

	sn := int(r.u32())
	p.Symbols = make(map[string]uint64, sn)
	for i := 0; i < sn; i++ {
		nl := int(r.u16())
		name := string(r.bytes(nl))
		p.Symbols[name] = r.u64()
	}

	hn := int(r.u32())
	p.Hints = make(map[uint64]BranchHint, hn)
	for i := 0; i < hn; i++ {
		pc := r.u64()
		p.Hints[pc] = BranchHint{ReconvPC: r.u64(), WriteSet: RegMask(r.u32())}
	}

	p.Secrets = nil
	if v >= versionSecrets {
		cn := int(r.u32())
		for i := 0; i < cn; i++ {
			p.Secrets = append(p.Secrets, SecretRange{Base: r.u64(), Len: r.u64()})
		}
	}
	if p.SrcLines == nil {
		p.SrcLines = make(map[int]string)
	}
	if r.err {
		return fmt.Errorf("program: truncated image")
	}
	return nil
}

// reader is a tiny cursor over a byte slice that records overruns instead of
// panicking, so UnmarshalBinary can return a single error at the end.
type reader struct {
	b   []byte
	err bool
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || len(r.b) < n {
		r.err = true
		return make([]byte, n&^(-1<<20)) // bounded zero buffer on error
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
