package isa

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := INVALID + 1; op < numOps; op++ {
		if opTable[op].name == "" {
			t.Errorf("op %d has no table entry", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := INVALID + 1; op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) succeeded")
	}
}

func TestRegNames(t *testing.T) {
	cases := map[string]Reg{
		"zero": 0, "x0": 0, "ra": 1, "sp": 2, "fp": 8, "s0": 8,
		"a0": 10, "t6": 31, "x31": 31,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("RegByName(x32) succeeded")
	}
	if Reg(10).String() != "a0" {
		t.Errorf("Reg(10).String() = %q, want a0", Reg(10).String())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(opRaw%uint8(numOps-1)) + 1 // valid op
		in := Inst{Op: op, Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: int64(imm)}
		var b [InstBytes]byte
		if err := in.Encode(b[:]); err != nil {
			t.Logf("encode error: %v", err)
			return false
		}
		out, err := Decode(b[:])
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	var b [InstBytes]byte
	if err := (Inst{Op: INVALID}).Encode(b[:]); err == nil {
		t.Error("encoding INVALID succeeded")
	}
	if err := (Inst{Op: ADD, Rd: 40}).Encode(b[:]); err == nil {
		t.Error("encoding out-of-range register succeeded")
	}
	if err := (Inst{Op: ADDI, Imm: 1 << 40}).Encode(b[:]); err == nil {
		t.Error("encoding oversized immediate succeeded")
	}
	if err := (Inst{Op: ADD}).Encode(b[:2]); err == nil {
		t.Error("encoding into short buffer succeeded")
	}
	if _, err := Decode(b[:3]); err == nil {
		t.Error("decoding short buffer succeeded")
	}
	b[0] = byte(numOps)
	if _, err := Decode(b[:]); err == nil {
		t.Error("decoding invalid opcode succeeded")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{ADD, 2, 3, 5},
		{SUB, 2, 3, ^uint64(0)},
		{AND, 0b1100, 0b1010, 0b1000},
		{OR, 0b1100, 0b1010, 0b1110},
		{XOR, 0b1100, 0b1010, 0b0110},
		{SLL, 1, 63, 1 << 63},
		{SLL, 1, 64, 1}, // shift amount masked to 6 bits
		{SRL, 1 << 63, 63, 1},
		{SRA, uint64(0x8000000000000000), 63, ^uint64(0)},
		{SLT, uint64(0xffffffffffffffff), 0, 1}, // -1 < 0 signed
		{SLTU, uint64(0xffffffffffffffff), 0, 0},
		{LUI, 0, 5, 5 << 12},
		{MUL, 7, 6, 42},
		{DIV, ^uint64(7) + 1, 2, ^uint64(3) + 1}, // -7/2 = -3
		{DIV, 7, 0, ^uint64(0)},
		{DIVU, 7, 0, ^uint64(0)},
		{REM, 7, 0, 7},
		{REM, ^uint64(7) + 1, 2, ^uint64(0)}, // -7%2 = -1
		{REMU, 7, 3, 1},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestDivOverflow(t *testing.T) {
	minInt := uint64(1) << 63
	if got := EvalALU(DIV, minInt, ^uint64(0)); got != minInt {
		t.Errorf("DIV overflow = %#x, want %#x", got, minInt)
	}
	if got := EvalALU(REM, minInt, ^uint64(0)); got != 0 {
		t.Errorf("REM overflow = %#x, want 0", got)
	}
}

func TestMulhAgainstBits(t *testing.T) {
	f := func(a, b int64) bool {
		got := EvalALU(MULH, uint64(a), uint64(b))
		// Reference: signed high multiply via math/bits unsigned plus
		// correction terms.
		hi, _ := bits.Mul64(uint64(a), uint64(b))
		if a < 0 {
			hi -= uint64(b)
		}
		if b < 0 {
			hi -= uint64(a)
		}
		return got == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{BEQ, 5, 5, true},
		{BEQ, 5, 6, false},
		{BNE, 5, 6, true},
		{BLT, ^uint64(0), 0, true}, // -1 < 0
		{BLTU, ^uint64(0), 0, false},
		{BGE, 0, ^uint64(0), true}, // 0 >= -1
		{BGEU, 0, ^uint64(0), false},
	}
	for _, c := range cases {
		if got := EvalBranch(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalBranch(%v, %#x, %#x) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestExtendLoad(t *testing.T) {
	cases := []struct {
		op   Op
		raw  uint64
		want uint64
	}{
		{LB, 0x80, 0xffffffffffffff80},
		{LBU, 0x80, 0x80},
		{LH, 0x8000, 0xffffffffffff8000},
		{LHU, 0x8000, 0x8000},
		{LW, 0x80000000, 0xffffffff80000000},
		{LWU, 0x80000000, 0x80000000},
		{LD, 0x1234567890abcdef, 0x1234567890abcdef},
	}
	for _, c := range cases {
		if got := ExtendLoad(c.op, c.raw); got != c.want {
			t.Errorf("ExtendLoad(%v, %#x) = %#x, want %#x", c.op, c.raw, got, c.want)
		}
	}
}

func TestTransmitterSet(t *testing.T) {
	for op := INVALID + 1; op < numOps; op++ {
		want := op.Class() == ClassLoad || op.Class() == ClassDiv || op == CFLUSH
		if got := op.IsTransmitter(); got != want {
			t.Errorf("%v.IsTransmitter() = %v, want %v", op, got, want)
		}
	}
}

func TestSrcDestRegs(t *testing.T) {
	in := Inst{Op: ADD, Rd: RegA0, Rs1: RegA1, Rs2: RegA2}
	if rd, ok := in.DestReg(); !ok || rd != RegA0 {
		t.Errorf("DestReg = %v, %v", rd, ok)
	}
	srcs := in.SrcRegs(nil)
	if len(srcs) != 2 || srcs[0] != RegA1 || srcs[1] != RegA2 {
		t.Errorf("SrcRegs = %v", srcs)
	}
	// x0 reads and writes are elided.
	in = Inst{Op: ADD, Rd: RegZero, Rs1: RegZero, Rs2: RegZero}
	if _, ok := in.DestReg(); ok {
		t.Error("DestReg of x0 write reported a destination")
	}
	if srcs := in.SrcRegs(nil); len(srcs) != 0 {
		t.Errorf("SrcRegs with x0 sources = %v", srcs)
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: BEQ, Imm: -16}
	if got := in.BranchTarget(0x100); got != 0xf0 {
		t.Errorf("BranchTarget = %#x, want 0xf0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BranchTarget on ADD did not panic")
		}
	}()
	(Inst{Op: ADD}).BranchTarget(0)
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: RegA0, Rs1: RegA1, Rs2: RegA2}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: RegA0, Rs1: RegA1, Imm: -4}, "addi a0, a1, -4"},
		{Inst{Op: LD, Rd: RegA0, Rs1: RegSP, Imm: 8}, "ld a0, 8(sp)"},
		{Inst{Op: SD, Rs1: RegSP, Rs2: RegA0, Imm: 8}, "sd a0, 8(sp)"},
		{Inst{Op: BEQ, Rs1: RegA0, Rs2: RegA1, Imm: 16}, "beq a0, a1, 16"},
		{Inst{Op: JAL, Rd: RegRA, Imm: 32}, "jal ra, 32"},
		{Inst{Op: JALR, Rd: RegZero, Rs1: RegRA, Imm: 0}, "jalr zero, 0(ra)"},
		{Inst{Op: FENCE}, "fence"},
		{Inst{Op: RDCYCLE, Rd: RegT0}, "rdcycle t0"},
		{Inst{Op: HALT, Rs1: RegA0}, "halt a0"},
		{Inst{Op: CFLUSH, Rs1: RegA0, Imm: 64}, "cflush 64(a0)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramMarshalRoundTripQuick(t *testing.T) {
	f := func(nInst uint8, data []byte, entryIdx uint8, symSeed uint8) bool {
		p := NewProgram()
		n := int(nInst%40) + 1
		for i := 0; i < n; i++ {
			p.Text = append(p.Text, Inst{Op: ADDI, Rd: Reg(i % 32), Rs1: Reg((i + 7) % 32), Imm: int64(i) * 3})
		}
		p.Data = data
		p.Entry = TextBase + uint64(int(entryIdx)%n)*InstBytes
		p.Symbols["main"] = p.Entry
		p.Symbols[string(rune('a'+symSeed%26))] = DataBase + uint64(symSeed)
		// A hint on the first instruction is invalid (not a branch) for
		// Validate, but serialization must round-trip it regardless.
		p.Hints[p.PCOf(0)] = BranchHint{ReconvPC: p.PCOf(n - 1), WriteSet: RegMask(symSeed)}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q := new(Program)
		if err := q.UnmarshalBinary(b); err != nil {
			return false
		}
		if q.Entry != p.Entry || len(q.Text) != len(p.Text) || string(q.Data) != string(p.Data) {
			return false
		}
		for i := range p.Text {
			if q.Text[i] != p.Text[i] {
				return false
			}
		}
		for k, v := range p.Symbols {
			if q.Symbols[k] != v {
				return false
			}
		}
		for k, v := range p.Hints {
			if q.Hints[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalNeverPanicsOnGarbage(t *testing.T) {
	f := func(b []byte) bool {
		// Must return an error or a structurally valid program — never panic.
		p := new(Program)
		_ = p.UnmarshalBinary(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// And with a valid prefix + truncation.
	p := NewProgram()
	p.Text = []Inst{{Op: HALT}}
	img, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(img); cut++ {
		_ = new(Program).UnmarshalBinary(img[:cut])
	}
}

func TestNearestSymbol(t *testing.T) {
	p := NewProgram()
	p.Symbols["f"] = 0x1000
	p.Symbols["g"] = 0x1100
	if name, off, ok := p.NearestSymbol(0x1108); !ok || name != "g" || off != 8 {
		t.Errorf("NearestSymbol = %s+%d, %v", name, off, ok)
	}
	if name, _, ok := p.NearestSymbol(0x1000); !ok || name != "f" {
		t.Errorf("exact NearestSymbol = %s", name)
	}
	if _, _, ok := p.NearestSymbol(0x500); ok {
		t.Error("symbol before all addresses found")
	}
}
