package isa

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded LEV64 instruction.
//
// The immediate is stored sign-extended to 64 bits but must fit in 32 bits to
// encode; branch and JAL immediates are PC-relative byte offsets.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Encode writes the 8-byte encoding of in into b.
// It returns an error if the instruction is malformed (invalid opcode,
// register out of range, or immediate outside int32).
func (in Inst) Encode(b []byte) error {
	if len(b) < InstBytes {
		return fmt.Errorf("isa: encode buffer too small (%d bytes)", len(b))
	}
	if !in.Op.Valid() {
		return fmt.Errorf("isa: encode invalid opcode %d", in.Op)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return fmt.Errorf("isa: encode %s: register out of range", in.Op)
	}
	if in.Imm < -1<<31 || in.Imm > 1<<31-1 {
		return fmt.Errorf("isa: encode %s: immediate %d does not fit in 32 bits", in.Op, in.Imm)
	}
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs1)
	b[3] = byte(in.Rs2)
	binary.LittleEndian.PutUint32(b[4:8], uint32(int32(in.Imm)))
	return nil
}

// Decode reads one instruction from b.
func Decode(b []byte) (Inst, error) {
	if len(b) < InstBytes {
		return Inst{}, fmt.Errorf("isa: decode buffer too small (%d bytes)", len(b))
	}
	in := Inst{
		Op:  Op(b[0]),
		Rd:  Reg(b[1]),
		Rs1: Reg(b[2]),
		Rs2: Reg(b[3]),
		Imm: int64(int32(binary.LittleEndian.Uint32(b[4:8]))),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode invalid opcode %d", b[0])
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return Inst{}, fmt.Errorf("isa: decode %s: register out of range", in.Op)
	}
	return in, nil
}

// String renders the instruction in assembler syntax. Branch/JAL immediates
// are shown as raw byte offsets (the disassembler in the asm package resolves
// them to labels).
func (in Inst) String() string {
	info := opTable[in.Op]
	switch {
	case in.Op.IsLoad(), in.Op == JALR, in.Op == CFLUSH && info.hasRd:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op == CFLUSH:
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Op == JAL:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op == LUI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case info.hasRd && info.hasRs1 && info.hasRs2:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case info.hasRd && info.hasRs1 && info.hasImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case info.hasRd && !info.hasRs1 && !info.hasRs2 && !info.hasImm:
		return fmt.Sprintf("%s %s", in.Op, in.Rd)
	case info.hasRs1 && !info.hasRd && !info.hasRs2 && !info.hasImm:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	default:
		return in.Op.String()
	}
}

// DestReg returns the architectural register written by in, or (0, false) if
// the instruction writes no register (writes to x0 also count as none).
func (in Inst) DestReg() (Reg, bool) {
	if in.Op.HasRd() && in.Rd != RegZero {
		return in.Rd, true
	}
	return 0, false
}

// SrcRegs appends the architectural registers read by in to dst and returns
// the result. Reads of x0 are omitted (x0 is constant).
func (in Inst) SrcRegs(dst []Reg) []Reg {
	if in.Op.HasRs1() && in.Rs1 != RegZero {
		dst = append(dst, in.Rs1)
	}
	if in.Op.HasRs2() && in.Rs2 != RegZero {
		dst = append(dst, in.Rs2)
	}
	return dst
}

// BranchTarget returns the taken-path target of a branch or JAL at pc.
// It panics if the instruction is not PC-relative control flow.
func (in Inst) BranchTarget(pc uint64) uint64 {
	if !in.Op.IsBranch() && in.Op != JAL {
		panic("isa: BranchTarget on non-PC-relative instruction " + in.Op.String())
	}
	return uint64(int64(pc) + in.Imm)
}
