// Package isa defines LEV64, the 64-bit RISC instruction set executed by the
// simulator and targeted by the assembler and the LevC compiler.
//
// LEV64 is deliberately close to the RV64I+M subset used by the Levioso paper's
// evaluation vehicle: 32 integer registers, load/store architecture,
// compare-and-branch control flow. Two extensions exist purely to support the
// security evaluation inside the simulator: RDCYCLE (read the core cycle
// counter) and CFLUSH (evict a cache line), which stand in for the timing and
// flush primitives a real attacker has.
//
// Instructions use a fixed 8-byte encoding (opcode, rd, rs1, rs2, imm32) so
// binaries are trivially seekable; PC advances by 8 (isa.InstBytes) per
// instruction.
package isa

import "fmt"

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Reg identifies an architectural register x0..x31. x0 is hardwired to zero.
type Reg uint8

// Op enumerates LEV64 opcodes.
type Op uint8

// Opcode space. The order groups instructions by class; metadata lives in the
// opInfo table below, never in the numeric value.
const (
	INVALID Op = iota

	// Register-register ALU.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	MULH
	DIV
	DIVU
	REM
	REMU

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU
	LUI

	// Loads: rd <- mem[rs1+imm].
	LB
	LBU
	LH
	LHU
	LW
	LWU
	LD

	// Stores: mem[rs1+imm] <- rs2.
	SB
	SH
	SW
	SD

	// Conditional branches: if cmp(rs1, rs2) then PC += imm.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Unconditional control flow.
	JAL  // rd <- PC+8; PC += imm
	JALR // rd <- PC+8; PC <- (rs1+imm) &^ 1

	// System / simulator support.
	FENCE   // speculation barrier: drains all older unresolved branches
	HALT    // stop simulation; exit code in rs1
	PUTC    // write low byte of rs1 to the simulated console
	PUTI    // write decimal value of rs1 to the simulated console
	RDCYCLE // rd <- current core cycle count (attacker timing primitive)
	CFLUSH  // evict cache line containing rs1+imm from all cache levels

	numOps
)

// NumOps is the number of defined opcodes (exported for table sizing).
const NumOps = int(numOps)

// Class partitions opcodes by the functional unit and scheduling behaviour
// they need in the out-of-order core.
type Class uint8

const (
	ClassALU    Class = iota // single-cycle integer ops
	ClassMul                 // pipelined multiplier
	ClassDiv                 // unpipelined, variable-latency divider
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional branch
	ClassJump                // JAL/JALR
	ClassSystem              // FENCE, HALT, console, RDCYCLE, CFLUSH
)

type opInfo struct {
	name  string
	class Class
	// hasRd/hasRs1/hasRs2/hasImm describe which fields the op uses; the
	// assembler and disassembler key off these.
	hasRd, hasRs1, hasRs2, hasImm bool
	// memBytes is the access size for loads/stores, 0 otherwise.
	memBytes int
	// unsigned marks loads that zero-extend and compares that are unsigned.
	unsigned bool
}

var opTable = [numOps]opInfo{
	INVALID: {name: "invalid"},

	ADD:  {name: "add", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SUB:  {name: "sub", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	AND:  {name: "and", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	OR:   {name: "or", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	XOR:  {name: "xor", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SLL:  {name: "sll", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SRL:  {name: "srl", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SRA:  {name: "sra", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SLT:  {name: "slt", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true},
	SLTU: {name: "sltu", class: ClassALU, hasRd: true, hasRs1: true, hasRs2: true, unsigned: true},
	MUL:  {name: "mul", class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	MULH: {name: "mulh", class: ClassMul, hasRd: true, hasRs1: true, hasRs2: true},
	DIV:  {name: "div", class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	DIVU: {name: "divu", class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true, unsigned: true},
	REM:  {name: "rem", class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true},
	REMU: {name: "remu", class: ClassDiv, hasRd: true, hasRs1: true, hasRs2: true, unsigned: true},

	ADDI:  {name: "addi", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	ANDI:  {name: "andi", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	ORI:   {name: "ori", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	XORI:  {name: "xori", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	SLLI:  {name: "slli", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	SRLI:  {name: "srli", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	SRAI:  {name: "srai", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	SLTI:  {name: "slti", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true},
	SLTIU: {name: "sltiu", class: ClassALU, hasRd: true, hasRs1: true, hasImm: true, unsigned: true},
	LUI:   {name: "lui", class: ClassALU, hasRd: true, hasImm: true},

	LB:  {name: "lb", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 1},
	LBU: {name: "lbu", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 1, unsigned: true},
	LH:  {name: "lh", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 2},
	LHU: {name: "lhu", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 2, unsigned: true},
	LW:  {name: "lw", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 4},
	LWU: {name: "lwu", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 4, unsigned: true},
	LD:  {name: "ld", class: ClassLoad, hasRd: true, hasRs1: true, hasImm: true, memBytes: 8},

	SB: {name: "sb", class: ClassStore, hasRs1: true, hasRs2: true, hasImm: true, memBytes: 1},
	SH: {name: "sh", class: ClassStore, hasRs1: true, hasRs2: true, hasImm: true, memBytes: 2},
	SW: {name: "sw", class: ClassStore, hasRs1: true, hasRs2: true, hasImm: true, memBytes: 4},
	SD: {name: "sd", class: ClassStore, hasRs1: true, hasRs2: true, hasImm: true, memBytes: 8},

	BEQ:  {name: "beq", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true},
	BNE:  {name: "bne", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true},
	BLT:  {name: "blt", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true},
	BGE:  {name: "bge", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true},
	BLTU: {name: "bltu", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true, unsigned: true},
	BGEU: {name: "bgeu", class: ClassBranch, hasRs1: true, hasRs2: true, hasImm: true, unsigned: true},

	JAL:  {name: "jal", class: ClassJump, hasRd: true, hasImm: true},
	JALR: {name: "jalr", class: ClassJump, hasRd: true, hasRs1: true, hasImm: true},

	FENCE:   {name: "fence", class: ClassSystem},
	HALT:    {name: "halt", class: ClassSystem, hasRs1: true},
	PUTC:    {name: "putc", class: ClassSystem, hasRs1: true},
	PUTI:    {name: "puti", class: ClassSystem, hasRs1: true},
	RDCYCLE: {name: "rdcycle", class: ClassSystem, hasRd: true},
	CFLUSH:  {name: "cflush", class: ClassSystem, hasRs1: true, hasImm: true},
}

// Valid reports whether op is a defined opcode other than INVALID.
func (op Op) Valid() bool { return op > INVALID && op < numOps }

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the scheduling class of op.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassSystem
	}
	return opTable[op].class
}

// HasRd reports whether op writes a destination register.
func (op Op) HasRd() bool { return op < numOps && opTable[op].hasRd }

// HasRs1 reports whether op reads rs1.
func (op Op) HasRs1() bool { return op < numOps && opTable[op].hasRs1 }

// HasRs2 reports whether op reads rs2.
func (op Op) HasRs2() bool { return op < numOps && opTable[op].hasRs2 }

// HasImm reports whether op uses the immediate field.
func (op Op) HasImm() bool { return op < numOps && opTable[op].hasImm }

// MemBytes returns the memory access size for loads and stores, 0 otherwise.
func (op Op) MemBytes() int {
	if op >= numOps {
		return 0
	}
	return opTable[op].memBytes
}

// Unsigned reports whether the op's comparison or load extension is unsigned.
func (op Op) Unsigned() bool { return op < numOps && opTable[op].unsigned }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return op.Class() == ClassJump }

// IsControl reports whether op can redirect the PC.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsTransmitter reports whether speculatively executing op can modulate
// microarchitectural state observable by an attacker: loads perturb the cache
// by address, and the unpipelined divider's occupancy depends on operand
// values. This is the instruction set every secure-speculation policy in
// internal/secure gates.
func (op Op) IsTransmitter() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassDiv || op == CFLUSH
}

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := INVALID + 1; op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
