package isa

import "fmt"

// ABI register aliases, following the RISC-V calling convention the LevC
// compiler targets.
const (
	RegZero Reg = 0 // hardwired zero
	RegRA   Reg = 1 // return address
	RegSP   Reg = 2 // stack pointer
	RegGP   Reg = 3 // global pointer (base of .data)
	RegTP   Reg = 4 // thread pointer (unused, reserved)
	RegT0   Reg = 5 // temporaries t0..t2
	RegT1   Reg = 6
	RegT2   Reg = 7
	RegS0   Reg = 8 // saved registers / frame pointer
	RegFP   Reg = 8
	RegS1   Reg = 9
	RegA0   Reg = 10 // arguments / return values a0..a7
	RegA1   Reg = 11
	RegA2   Reg = 12
	RegA3   Reg = 13
	RegA4   Reg = 14
	RegA5   Reg = 15
	RegA6   Reg = 16
	RegA7   Reg = 17
	RegS2   Reg = 18 // saved registers s2..s11
	RegS3   Reg = 19
	RegS4   Reg = 20
	RegS5   Reg = 21
	RegS6   Reg = 22
	RegS7   Reg = 23
	RegS8   Reg = 24
	RegS9   Reg = 25
	RegS10  Reg = 26
	RegS11  Reg = 27
	RegT3   Reg = 28 // temporaries t3..t6
	RegT4   Reg = 29
	RegT5   Reg = 30
	RegT6   Reg = 31
)

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "a0", "sp").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// RegByName parses a register name: either an ABI alias ("a0", "sp", "fp")
// or the numeric form ("x0".."x31").
func RegByName(name string) (Reg, bool) {
	if r, ok := regByName[name]; ok {
		return r, true
	}
	return 0, false
}

var regByName = func() map[string]Reg {
	m := make(map[string]Reg, NumRegs*2)
	for i, n := range regNames {
		m[n] = Reg(i)
		m[fmt.Sprintf("x%d", i)] = Reg(i)
	}
	m["fp"] = RegFP
	return m
}()
