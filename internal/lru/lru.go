// Package lru is a small, generic, mutex-guarded least-recently-used cache
// shared by every result-caching tier in the repository: the levserve
// per-process cache (internal/serve) and the dispatch coordinator's shared
// content-addressed cache (internal/dispatch). The simulator is a
// deterministic pure function, so cached entries never go stale — capacity is
// the only eviction pressure, which is why one tiny LRU covers every tier.
//
// Hit, miss and eviction counters are updated under the same mutex as the
// cache structure itself, so a snapshot taken with Stats is always internally
// consistent: hits+misses equals the number of Get calls, and evictions never
// run ahead of insertions. (The previous per-call-site atomic counters could
// drift from the cache state they described under concurrent access.)
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map. A nil *Cache is a valid, always-miss
// cache (capacity <= 0 disables caching), so call sites never branch.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[K]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache holding at most max entries; max <= 0 returns nil (a
// disabled cache whose methods are all cheap no-ops).
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		return nil
	}
	return &Cache[K, V]{max: max, order: list.New(), items: make(map[K]*list.Element)}
}

// Get returns a copy of the cached value and promotes the entry. The hit or
// miss is counted under the cache lock, consistent with the lookup itself.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts (or refreshes) an entry, evicting the least recently used
// entry past capacity.
func (c *Cache[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	if c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry[K, V]).key)
		c.evictions++
	}
}

// Len reports the current entry count.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// Stats snapshots the counters and entry count atomically with respect to
// every Get/Put — the numbers always describe one consistent cache state.
func (c *Cache[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}

// Keys returns the cache keys from most to least recently used — the
// eviction order read backwards. Exposed for the eviction-order regression
// test; not a hot path.
func (c *Cache[K, V]) Keys() []K {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[K, V]).key)
	}
	return keys
}
