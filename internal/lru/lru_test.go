package lru

import (
	"fmt"
	"sync"
	"testing"
)

// TestEvictionOrder is the eviction-order regression test: entries must be
// evicted strictly least-recently-used first, where both Get and Put refresh
// recency, and a Put over an existing key must update in place (no duplicate
// entry, no size growth).
func TestEvictionOrder(t *testing.T) {
	c := New[string, int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)

	// Touch order: a (Get), then refresh b (Put) — LRU is now c.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("b", 22)
	if got := c.Keys(); fmt.Sprint(got) != "[b a c]" {
		t.Fatalf("recency order = %v, want [b a c]", got)
	}

	c.Put("d", 4) // must evict c, the LRU — not a or b
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted")
	}
	for _, k := range []string{"a", "b", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if v, _ := c.Get("b"); v != 22 {
		t.Fatalf("refreshed b = %d, want 22", v)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}

	// Keep evicting: order must stay strict LRU.
	c.Put("e", 5) // evicts the LRU after the loop of Gets above: a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted second")
	}
}

// TestCounterConsistency proves hits+misses always equals the number of Get
// calls even under heavy concurrent access — the counters are updated under
// the same lock as the lookup they describe.
func TestCounterConsistency(t *testing.T) {
	c := New[int, int](8)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := (seed*31 + i) % 16 // half the keys fit, guaranteeing misses
				if _, ok := c.Get(k); !ok {
					c.Put(k, k)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if got := st.Hits + st.Misses; got != workers*perW {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d Get calls",
			st.Hits, st.Misses, got, workers*perW)
	}
	if st.Entries > 8 {
		t.Fatalf("entries = %d exceeds capacity", st.Entries)
	}
}

// TestDisabled pins the nil-cache contract every call site relies on.
func TestDisabled(t *testing.T) {
	var c *Cache[string, string] = New[string, string](-1)
	if c != nil {
		t.Fatal("non-positive capacity should return a nil cache")
	}
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) || c.Keys() != nil {
		t.Fatal("nil cache methods not inert")
	}
}
