package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"levioso/internal/attack"
	"levioso/internal/core"
	"levioso/internal/cpu"
	"levioso/internal/engine"
	"levioso/internal/mem"
	"levioso/internal/secure"
	"levioso/internal/simerr"
	"levioso/internal/stats"
	"levioso/internal/workloads"
)

// RunOpts carries the sweep-level robustness knobs shared by every
// experiment — scale, retry policy, per-run deadline, journal — and collects
// the failed cells so callers can render a degraded report plus a failure
// table instead of losing all completed work to one bad run.
type RunOpts struct {
	Size       workloads.Size
	Retries    int           // transient-failure retries per cell
	RunTimeout time.Duration // wall-clock bound per attempt; 0 = none
	Journal    *Journal      // optional resume journal

	mu       sync.Mutex
	failures []Failure
}

// NewRunOpts returns options for the given scale with no retries, no
// deadline and no journal — the strict profile the tests and benchmarks use.
func NewRunOpts(size workloads.Size) *RunOpts { return &RunOpts{Size: size} }

// Failures returns every failed cell collected so far, in sweep order.
func (o *RunOpts) Failures() []Failure {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Failure(nil), o.failures...)
}

// addFailure records one failed cell (experiments that fail outside a
// supervised sweep — e.g. a build-only experiment — report through this, so
// every experiment degrades the same way).
func (o *RunOpts) addFailure(f Failure) {
	o.mu.Lock()
	o.failures = append(o.failures, f)
	o.mu.Unlock()
}

// sweep supervises spec under the options, collects its failures, and
// returns the completed runs. tag namespaces the journal entries. ctx
// cancellation (an interrupted levbench run) stops the sweep between cells;
// cells already completed are in the journal, so a re-run resumes.
func (o *RunOpts) sweep(ctx context.Context, spec Spec, tag string) ([]Run, error) {
	spec.Tag = tag
	spec.Retries = o.Retries
	spec.RunTimeout = o.RunTimeout
	spec.Journal = o.Journal
	res, err := Supervise(ctx, spec)
	if err != nil {
		return nil, err
	}
	if len(res.Failures) > 0 {
		o.mu.Lock()
		o.failures = append(o.failures, res.Failures...)
		o.mu.Unlock()
	}
	return res.Runs, nil
}

// Experiment IDs (see DESIGN.md's experiment index).
const (
	ExpConfigID     = "config"     // T1
	ExpCharactID    = "charact"    // T1b: workload characterization
	ExpOverheadID   = "overhead"   // F1 (headline)
	ExpRestrictedID = "restricted" // F2
	ExpROBID        = "rob"        // F3
	ExpMispredictID = "mispredict" // F4
	ExpSecurityID   = "security"   // T2
	ExpAblationID   = "ablation"   // F5
	ExpBDTID        = "bdt"        // F6: Branch Dependency Table size
	ExpCompilerID   = "compiler"   // T3
)

// ExperimentIDs lists all experiments in presentation order.
func ExperimentIDs() []string {
	return []string{
		ExpConfigID, ExpCharactID, ExpOverheadID, ExpRestrictedID, ExpROBID,
		ExpMispredictID, ExpSecurityID, ExpAblationID, ExpBDTID, ExpCompilerID,
	}
}

// RunExperiment runs one experiment by ID and returns its rendered report.
// Failed sweep cells degrade the report (rows render "n/a") and are
// collected on opt; check opt.Failures() after the call. Cancelling ctx
// (SIGINT in levbench) stops the underlying sweeps between cells.
func RunExperiment(ctx context.Context, id string, opt *RunOpts) (string, error) {
	switch id {
	case ExpConfigID:
		return ExpConfig(cpu.DefaultConfig()), nil
	case ExpCharactID:
		return ExpCharacterization(ctx, opt)
	case ExpOverheadID:
		return ExpOverhead(ctx, opt)
	case ExpRestrictedID:
		return ExpRestricted(ctx, opt)
	case ExpROBID:
		return ExpROBSweep(ctx, opt, []int{64, 96, 128, 192, 256, 384})
	case ExpMispredictID:
		return ExpMispredict(ctx, opt, []float64{0, 0.02, 0.05, 0.10, 0.20})
	case ExpSecurityID:
		return ExpSecurity()
	case ExpAblationID:
		return ExpAblation(ctx, opt)
	case ExpBDTID:
		return ExpBDTSweep(ctx, opt, []int{4, 8, 16, 32, 64})
	case ExpCompilerID:
		return ExpCompiler(ctx, opt)
	default:
		return "", fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
}

// RunAll runs every experiment, streaming reports to w. Partial failures
// degrade the affected tables and accumulate on opt; a failure table is
// appended after any experiment that lost cells. Cancellation stops before
// the next experiment starts and surfaces as the context's error.
func RunAll(ctx context.Context, w io.Writer, opt *RunOpts) error {
	for _, id := range ExperimentIDs() {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(w, "==> experiment %s\n", id)
		before := len(opt.Failures())
		rep, err := RunExperiment(ctx, id, opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		if fs := opt.Failures(); len(fs) > before {
			fmt.Fprintln(w, RenderFailures(fs[before:]))
		}
	}
	return nil
}

// ExpConfig renders T1: the simulated core configuration table.
func ExpConfig(cfg cpu.Config) string {
	t := stats.NewTable("T1: simulated core configuration", "parameter", "value")
	t.Add("pipeline width (F/R/I/C)", fmt.Sprintf("%d/%d/%d/%d",
		cfg.FetchWidth, cfg.RenameWidth, cfg.IssueWidth, cfg.CommitWidth))
	t.Add("ROB / IQ / LQ / SQ", fmt.Sprintf("%d / %d / %d / %d",
		cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize))
	t.Add("physical registers", fmt.Sprint(cfg.NumPhysRegs))
	t.Add("ALUs / MULs / mem ports", fmt.Sprintf("%d / %d / %d",
		cfg.NumALU, cfg.NumMul, cfg.NumMemPorts))
	t.Add("mul / div latency", fmt.Sprintf("%d / %d..%d", cfg.MulLatency,
		cfg.DivLatencyBase, cfg.DivLatencyBase+cfg.DivLatencyRange))
	t.Add("branch predictor", fmt.Sprintf("gshare 2^%d, %d-bit history, %d-entry BTB, %d-deep RAS",
		cfg.Predictor.GShareBits, cfg.Predictor.HistoryBits,
		cfg.Predictor.BTBEntries, cfg.Predictor.RASDepth))
	t.Add("redirect penalty", fmt.Sprintf("%d cycles", cfg.RedirectPenalty))
	t.Add("L1I", cacheLine(cfg.Hier.L1I))
	t.Add("L1D", cacheLine(cfg.Hier.L1D))
	t.Add("L2", cacheLine(cfg.Hier.L2))
	t.Add("inclusive invisible-load support", "expose-at-commit (InvisiSpec-style)")
	t.Add("memory latency", fmt.Sprintf("%d cycles", cfg.Hier.MemLatency))
	t.Add("branch dependency table", fmt.Sprintf("%d entries", core.NumSlots))
	return t.String()
}

func cacheLine(c mem.CacheConfig) string {
	return fmt.Sprintf("%d KiB, %d-way, %dB lines, %d-cycle",
		c.SizeBytes()/1024, c.Ways, c.LineBytes, c.Latency)
}

// ExpCharacterization renders T1b: per-workload behaviour on the unprotected
// core — the numbers that explain the per-workload overhead texture in F1.
func ExpCharacterization(ctx context.Context, opt *RunOpts) (string, error) {
	spec := DefaultSpec()
	spec.Size = opt.Size
	spec.Policies = []string{secure.BaselineName()}
	runs, err := opt.sweep(ctx, spec, ExpCharactID)
	if err != nil {
		return "", err
	}
	t := stats.NewTable("T1b: workload characterization (unsafe baseline)",
		"workload", "class", "insts", "IPC", "br-miss%", "L1D-MPKI", "L2-MPKI", "spec-transmit%")
	for _, r := range runs {
		w, _ := workloads.ByName(r.Workload)
		st := r.Stats
		mpki := func(miss uint64) string {
			return fmt.Sprintf("%.1f", 1000*float64(miss)/float64(st.Committed))
		}
		t.Add(r.Workload, w.Class,
			fmt.Sprint(st.Committed),
			fmt.Sprintf("%.2f", st.IPC()),
			fmt.Sprintf("%.1f", 100*st.MispredictRate()),
			mpki(st.L1DMisses), mpki(st.L2Misses),
			stats.Pct(st.SpecFrac()))
	}
	return t.String(), nil
}

// ExpOverhead renders F1 (the headline figure): per-workload and geomean
// execution-time overhead of each defense relative to the unprotected core.
func ExpOverhead(ctx context.Context, opt *RunOpts) (string, error) {
	spec := DefaultSpec()
	spec.Size = opt.Size
	runs, err := opt.sweep(ctx, spec, ExpOverheadID)
	if err != nil {
		return "", err
	}
	return renderOverhead("F1: execution-time overhead vs unsafe (lower is better)",
		NewIndex(runs), spec.Policies), nil
}

func renderOverhead(title string, ix *Index, policies []string) string {
	headers := append([]string{"workload"}, policies[1:]...)
	t := stats.NewTable(title, headers...)
	for _, w := range ix.Workloads {
		row := []string{w}
		for _, p := range policies[1:] {
			// Failed cells degrade to "n/a" instead of discarding the table.
			if ov, ok := ix.Overhead(w, p, policies[0]); ok {
				row = append(row, stats.Pct(ov))
			} else {
				row = append(row, "n/a")
			}
		}
		t.Add(row...)
	}
	row := []string{"geomean"}
	var gms []float64
	for _, p := range policies[1:] {
		gm := ix.GeoMeanOverhead(p, policies[0])
		gms = append(gms, gm)
		row = append(row, stats.Pct(gm))
	}
	t.Add(row...)
	var b strings.Builder
	b.WriteString(t.String())
	// Figure-style bars for the geomean.
	b.WriteString("\ngeomean overhead:\n")
	maxOv := 0.0
	for _, gm := range gms {
		if gm > maxOv {
			maxOv = gm
		}
	}
	for i, p := range policies[1:] {
		fmt.Fprintf(&b, "  %-10s %7s %s\n", p, stats.Pct(gms[i]), stats.Bar(gms[i], maxOv, 40))
	}
	return b.String()
}

// ExpRestricted renders F2: the fraction of dynamic transmitters each policy
// actually delayed, against the fraction a conservative scheme must delay
// (transmitters issued under at least one unresolved branch).
func ExpRestricted(ctx context.Context, opt *RunOpts) (string, error) {
	spec := DefaultSpec()
	spec.Size = opt.Size
	spec.Policies = []string{secure.BaselineName(), "delay", "levioso"}
	runs, err := opt.sweep(ctx, spec, ExpRestrictedID)
	if err != nil {
		return "", err
	}
	ix := NewIndex(runs)
	t := stats.NewTable(
		"F2: fraction of dynamic transmitters restricted",
		"workload", "speculative@issue(unsafe)", "delay-restricted", "levioso-restricted", "bdt-stalls")
	var spec_, del, lev []float64
	for _, w := range ix.Workloads {
		u, ok1 := ix.Stats(w, secure.BaselineName())
		d, ok2 := ix.Stats(w, "delay")
		l, ok3 := ix.Stats(w, "levioso")
		if !ok1 || !ok2 || !ok3 {
			t.Add(w, "n/a", "n/a", "n/a", "n/a")
			continue
		}
		spec_ = append(spec_, u.SpecFrac())
		del = append(del, d.RestrictedFrac())
		lev = append(lev, l.RestrictedFrac())
		t.Add(w, stats.Pct(u.SpecFrac()), stats.Pct(d.RestrictedFrac()),
			stats.Pct(l.RestrictedFrac()), fmt.Sprint(l.BDTAllocStalls))
	}
	t.Add("mean", stats.Pct(stats.Mean(spec_)), stats.Pct(stats.Mean(del)), stats.Pct(stats.Mean(lev)), "")
	return t.String(), nil
}

// SensitivityWorkloads is the six-kernel subset used by the sensitivity
// sweeps (F3, F4): two Levioso-friendly (pchase, hashjoin), two adversarial
// (bsearch, treesearch), one branchy-recursive (qsort) and one predictable
// (matmul). Running sweeps on a representative subset keeps the full
// reference-scale regeneration tractable, as sensitivity studies in the
// paper's venue usually do.
func SensitivityWorkloads() []workloads.Workload {
	var out []workloads.Workload
	for _, name := range []string{"pchase", "qsort", "bsearch", "hashjoin", "matmul", "treesearch"} {
		w, ok := workloads.ByName(name)
		if !ok {
			panic("harness: missing sensitivity workload " + name)
		}
		out = append(out, w)
	}
	return out
}

// ExpROBSweep renders F3: geomean overhead of each policy as the window
// (ROB) scales — bigger windows widen the speculation shadow, growing the
// gap between conservative schemes and Levioso.
func ExpROBSweep(ctx context.Context, opt *RunOpts, robs []int) (string, error) {
	policies := secure.EvalNames()
	t := stats.NewTable("F3: geomean overhead vs ROB size (6-workload subset)",
		append([]string{"ROB"}, policies[1:]...)...)
	for _, rob := range robs {
		cfg := defaultRunConfig()
		cfg.ROBSize = rob
		cfg.IQSize = rob / 3
		cfg.LQSize = rob / 4
		cfg.SQSize = rob / 6
		cfg.NumPhysRegs = 32 + rob + 76
		spec := Spec{
			Workloads: SensitivityWorkloads(), Policies: policies,
			Size: opt.Size, Config: cfg, Verify: false,
		}
		runs, err := opt.sweep(ctx, spec, fmt.Sprintf("rob=%d", rob))
		if err != nil {
			return "", err
		}
		ix := NewIndex(runs)
		row := []string{fmt.Sprint(rob)}
		for _, p := range policies[1:] {
			row = append(row, stats.Pct(ix.GeoMeanOverhead(p, policies[0])))
		}
		t.Add(row...)
	}
	return t.String(), nil
}

// ExpMispredict renders F4: geomean overhead as predictor quality degrades
// (forced extra misprediction rate). Worse prediction means more and longer
// speculation shadows: all defenses get more expensive, Levioso least.
func ExpMispredict(ctx context.Context, opt *RunOpts, rates []float64) (string, error) {
	policies := secure.EvalNames()
	t := stats.NewTable("F4: geomean overhead vs forced extra mispredict rate (6-workload subset)",
		append([]string{"rate"}, policies[1:]...)...)
	for _, rate := range rates {
		cfg := defaultRunConfig()
		cfg.Predictor.ForceMispredictRate = rate
		spec := Spec{
			Workloads: SensitivityWorkloads(), Policies: policies,
			Size: opt.Size, Config: cfg, Verify: false,
		}
		runs, err := opt.sweep(ctx, spec, fmt.Sprintf("mispredict=%g", rate))
		if err != nil {
			return "", err
		}
		ix := NewIndex(runs)
		row := []string{fmt.Sprintf("%.0f%%", 100*rate)}
		for _, p := range policies[1:] {
			row = append(row, stats.Pct(ix.GeoMeanOverhead(p, policies[0])))
		}
		t.Add(row...)
	}
	return t.String(), nil
}

// ExpSecurity renders T2: the attack matrix over four attacks — Spectre-V1
// (control-dependent gadget, declared secret), its data-dependence variant
// (transmitter after reconvergence consuming a region-produced value),
// Spectre-CT (non-speculatively loaded secret), and the undeclared-secret V1
// variant that probes the secret-typed contract's public half. The policy set
// is the registry sweep (every family, parameterized families at every
// level), and each row's verdict compares the observed leaks against the
// coverage contract's expectation matrix.
func ExpSecurity() (string, error) {
	outcomes, err := attack.Run(secure.SweepSpecs(), nil)
	if err != nil {
		return "", err
	}
	t := stats.NewTable("T2: secrets recovered (of trials) per attack",
		"policy", "v1 (ctrl gadget)", "ct-data (post-reconv)", "ct (non-spec secret)", "v1-public (undeclared)", "verdict")
	for _, o := range outcomes {
		exp, err := attack.ExpectedLeaks(o.Policy)
		if err != nil {
			return "", err
		}
		verdict := "as contracted"
		if got := o.Leaks(); got != exp {
			verdict = fmt.Sprintf("CONTRACT VIOLATED: got %+v, want %+v", got, exp)
		}
		t.Add(o.Policy,
			fmt.Sprintf("%d/%d", o.V1Correct, o.V1Trials),
			fmt.Sprintf("%d/%d", o.CTDCorrect, o.CTDTrials),
			fmt.Sprintf("%d/%d", o.CTCorrect, o.CTTrials),
			fmt.Sprintf("%d/%d", o.PubCorrect, o.PubTrials),
			verdict)
	}
	return t.String(), nil
}

// ExpAblation renders F5: Levioso component ablation — control-only
// annotations (unsound, cheaper) vs the full control+data design, plus the
// taint baseline for calibration.
func ExpAblation(ctx context.Context, opt *RunOpts) (string, error) {
	spec := DefaultSpec()
	spec.Size = opt.Size
	spec.Policies = secure.AblationNames()
	runs, err := opt.sweep(ctx, spec, ExpAblationID)
	if err != nil {
		return "", err
	}
	out := renderOverhead("F5: Levioso ablation+extension (levioso-ctrl drops data tracking — UNSOUND, cost attribution only; levioso-ghost runs dependent loads invisibly — extension beyond the paper)",
		NewIndex(runs), spec.Policies)
	return out, nil
}

// ExpBDTSweep renders F6: Levioso overhead and rename stalls as the Branch
// Dependency Table shrinks — the hardware-cost knob. The table is sized so
// capacity stalls are rare at 64 entries; this sweep shows where the knee is.
func ExpBDTSweep(ctx context.Context, opt *RunOpts, sizes []int) (string, error) {
	t := stats.NewTable("F6: levioso geomean overhead vs Branch Dependency Table size (6-workload subset)",
		"BDT entries", "levioso overhead", "alloc stalls")
	for _, n := range sizes {
		cfg := defaultRunConfig()
		cfg.BDTEntries = n
		spec := Spec{
			Workloads: SensitivityWorkloads(),
			Policies:  []string{secure.BaselineName(), "levioso"},
			Size:      opt.Size, Config: cfg, Verify: false,
		}
		runs, err := opt.sweep(ctx, spec, fmt.Sprintf("bdt=%d", n))
		if err != nil {
			return "", err
		}
		ix := NewIndex(runs)
		var stalls uint64
		for _, r := range runs {
			if r.Policy == "levioso" {
				stalls += r.Stats.BDTAllocStalls
			}
		}
		t.Add(fmt.Sprint(n),
			stats.Pct(ix.GeoMeanOverhead("levioso", spec.Policies[0])),
			fmt.Sprint(stalls))
	}
	return t.String(), nil
}

// ExpCompiler renders T3: per-workload Levioso compiler pass statistics. It
// takes *RunOpts like every other experiment, so it shares the scale knob
// and the degrade-instead-of-abort failure plumbing: a workload whose build
// or annotation fails renders as "n/a" and is collected on opt instead of
// discarding the whole table.
func ExpCompiler(ctx context.Context, opt *RunOpts) (string, error) {
	t := stats.NewTable("T3: compiler annotation statistics",
		"workload", "branches", "annotated", "conservative", "avg region (blocks)", "avg writeset", "table bytes")
	for _, w := range workloads.All() {
		prog, err := w.Build(opt.Size)
		if err == nil {
			var st core.AnnotateStats
			if st, err = engine.Annotate(prog); err == nil {
				t.Add(w.Name, fmt.Sprint(st.Branches), fmt.Sprint(st.Annotated),
					fmt.Sprint(st.Conservative),
					fmt.Sprintf("%.1f", st.AvgRegionBlocks()),
					fmt.Sprintf("%.1f", st.AvgWriteRegs()),
					fmt.Sprint(st.TableBytes))
				continue
			}
		}
		opt.addFailure(Failure{
			Workload: w.Name, Policy: "-", Attempts: 1,
			Err: simerr.WithRun(&simerr.RunError{
				Kind: simerr.KindBuild, Detail: "compiler statistics failed", Err: err,
			}, w.Name, "-", 1),
		})
		t.Add(w.Name, "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
	}
	return t.String(), nil
}
