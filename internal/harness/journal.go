package harness

import (
	"encoding/json"
	"fmt"
	"sync"

	"levioso/internal/cpu"
	"levioso/internal/journal"
)

// Journal is an append-only JSON-lines record of completed sweep cells. Each
// line is one journalEntry; a sweep that was interrupted (crash, ^C, power
// loss) reopens the same file and resumes, skipping every cell already
// recorded. Entries are keyed (tag, workload, policy): the tag namespaces
// the sweeps inside one experiment run (e.g. "overhead" vs "rob=128"), so
// one journal file can carry a whole levbench invocation.
//
// The journal deliberately stores the run's statistics, not just its
// identity, so resumed cells rebuild their reports without re-simulating.
// Durability mechanics (single-write appends, fsync per record, torn-tail
// healing) live in internal/journal; this wrapper owns the cell schema.
type Journal struct {
	mu   sync.Mutex
	f    *journal.File
	seen map[journalKey]Run
}

type journalKey struct{ tag, workload, policy string }

type journalEntry struct {
	Tag      string    `json:"tag,omitempty"`
	Workload string    `json:"workload"`
	Policy   string    `json:"policy"`
	ExitCode uint64    `json:"exit"`
	Stats    cpu.Stats `json:"stats"`
}

// OpenJournal opens (creating if absent) the run journal at path and loads
// every completed cell recorded by earlier invocations.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{seen: make(map[journalKey]Run)}
	f, err := journal.Open(path, func(line []byte) {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return // foreign line: ignore, the cell just re-runs
		}
		j.seen[journalKey{e.Tag, e.Workload, e.Policy}] = Run{
			Workload: e.Workload, Policy: e.Policy,
			Stats: e.Stats, ExitCode: e.ExitCode,
		}
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the recorded run for a cell, if any.
func (j *Journal) Lookup(tag, workload, policy string) (Run, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.seen[journalKey{tag, workload, policy}]
	return r, ok
}

// Record appends one completed cell and remembers it for Lookup. Safe for
// concurrent use by the sweep goroutines; the append is fsynced before
// Record returns, so a power loss can lose at most the entry being written —
// never previously recorded cells.
func (j *Journal) Record(tag string, r Run) error {
	if err := j.f.Append(journalEntry{
		Tag: tag, Workload: r.Workload, Policy: r.Policy,
		ExitCode: r.ExitCode, Stats: r.Stats,
	}); err != nil {
		return err
	}
	j.mu.Lock()
	j.seen[journalKey{tag, r.Workload, r.Policy}] = r
	j.mu.Unlock()
	return nil
}

// Sync flushes the journal to stable storage. Record already fsyncs after
// every append; Sync exists for callers that want an explicit durability
// point (e.g. before reporting a sweep as resumable).
func (j *Journal) Sync() error { return j.f.Sync() }

// Len returns the number of recorded cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
