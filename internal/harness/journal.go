package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"levioso/internal/cpu"
)

// Journal is an append-only JSON-lines record of completed sweep cells. Each
// line is one journalEntry; a sweep that was interrupted (crash, ^C, power
// loss) reopens the same file and resumes, skipping every cell already
// recorded. Entries are keyed (tag, workload, policy): the tag namespaces
// the sweeps inside one experiment run (e.g. "overhead" vs "rob=128"), so
// one journal file can carry a whole levbench invocation.
//
// The journal deliberately stores the run's statistics, not just its
// identity, so resumed cells rebuild their reports without re-simulating.
// A torn trailing line (the write the crash interrupted) is skipped on
// load rather than poisoning the resume.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[journalKey]Run
}

type journalKey struct{ tag, workload, policy string }

type journalEntry struct {
	Tag      string    `json:"tag,omitempty"`
	Workload string    `json:"workload"`
	Policy   string    `json:"policy"`
	ExitCode uint64    `json:"exit"`
	Stats    cpu.Stats `json:"stats"`
}

// OpenJournal opens (creating if absent) the run journal at path and loads
// every completed cell recorded by earlier invocations.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open journal: %w", err)
	}
	j := &Journal{f: f, seen: make(map[journalKey]Run)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn or foreign line: ignore, the cell just re-runs
		}
		j.seen[journalKey{e.Tag, e.Workload, e.Policy}] = Run{
			Workload: e.Workload, Policy: e.Policy,
			Stats: e.Stats, ExitCode: e.ExitCode,
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: read journal: %w", err)
	}
	// Heal a torn tail: if the crash left an unterminated line, append a
	// newline so the next Record starts on a fresh line instead of merging
	// into the garbage (which would lose that entry on the following load).
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("harness: heal journal tail: %w", err)
			}
		}
	}
	return j, nil
}

// Lookup returns the recorded run for a cell, if any.
func (j *Journal) Lookup(tag, workload, policy string) (Run, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.seen[journalKey{tag, workload, policy}]
	return r, ok
}

// Record appends one completed cell and remembers it for Lookup. Safe for
// concurrent use by the sweep goroutines; each entry is a single write so
// an interruption can tear at most the final line, and each write is fsynced
// before Record returns, so a power loss can lose at most the entry being
// written — never previously recorded cells.
func (j *Journal) Record(tag string, r Run) error {
	b, err := json.Marshal(journalEntry{
		Tag: tag, Workload: r.Workload, Policy: r.Policy,
		ExitCode: r.ExitCode, Stats: r.Stats,
	})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.seen[journalKey{tag, r.Workload, r.Policy}] = r
	return nil
}

// Sync flushes the journal to stable storage. Record already fsyncs after
// every append; Sync exists for callers that write through the file by other
// means or want an explicit durability point (e.g. before reporting a sweep
// as resumable).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Len returns the number of recorded cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
