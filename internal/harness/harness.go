// Package harness runs the paper's experiments: it sweeps the workload suite
// across secure-speculation policies and core configurations and renders the
// tables and figures indexed in DESIGN.md (T1–T3, F1–F5). cmd/levbench and
// the repository benchmarks are thin wrappers over this package.
package harness

import (
	"runtime"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/faultinject"
	"levioso/internal/secure"
	"levioso/internal/stats"
	"levioso/internal/workloads"
)

// Run is one (workload, policy) simulation result.
type Run struct {
	Workload string
	Policy   string
	Stats    cpu.Stats
	ExitCode uint64
}

// Spec describes a sweep.
type Spec struct {
	Workloads []workloads.Workload
	Policies  []string
	Size      workloads.Size
	Config    cpu.Config
	// Verify cross-checks every run against the reference interpreter
	// (exit code and console output) and fails on divergence.
	Verify bool

	// Tag namespaces this sweep's cells in the run journal, so parameter
	// sweeps that reuse (workload, policy) keys under different core
	// configurations (e.g. "rob=128" vs "rob=256") do not collide.
	Tag string
	// Retries is how many times the supervisor re-runs a cell after a
	// transient failure (deadline, panic); permanent failures — watchdog,
	// cycle limit, divergence — never retry. 0 means one attempt only.
	Retries int
	// RetryBackoff is the base of the capped exponential backoff between
	// attempts (default 10ms, doubling per attempt, capped at 64x base).
	RetryBackoff time.Duration
	// RunTimeout bounds each attempt's wall-clock time; 0 = unbounded.
	// Expiry surfaces as simerr.ErrDeadline, classified transient.
	RunTimeout time.Duration
	// Journal, when non-nil, records each completed cell and lets an
	// interrupted sweep resume without re-executing them.
	Journal *Journal
	// Faults, when non-nil, returns the fault plan to inject into a cell's
	// core (nil = run clean). Used by robustness tests to prove the
	// watchdog, limits and classification fire.
	Faults func(workload, policy string) *faultinject.Plan

	// testOnRun observes every executed attempt (test instrumentation; the
	// journal-resume tests count re-executions through it).
	testOnRun func(workload, policy string, attempt int)
}

// DefaultSpec sweeps the full suite over the headline policies at reference
// scale on the default core.
func DefaultSpec() Spec {
	return Spec{
		Workloads: workloads.All(),
		Policies:  secure.EvalNames(),
		Size:      workloads.SizeRef,
		Config:    defaultRunConfig(),
		Verify:    true,
	}
}

func defaultRunConfig() cpu.Config {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 500_000_000
	return cfg
}

// Sweep is the strict form of Supervise: it runs every (workload, policy)
// pair in parallel and aborts on the first failed cell. Results are ordered
// workload-major, matching Spec order.
//
// One program build is shared by all concurrent runs of a workload. This is
// safe because a built *isa.Program is immutable during simulation: cpu.New
// copies prog.Data into the core's own physical memory, the branch table
// only reads the Hints map, and nothing writes Text or Symbols after the
// compiler returns (TestSweepSharedProgramImmutable pins this down, and the
// race detector watches every concurrent sweep in the test suite).
func Sweep(spec Spec) ([]Run, error) {
	res, err := Supervise(nil, spec)
	if err != nil {
		return nil, err
	}
	if len(res.Failures) > 0 {
		return nil, res.Failures[0].Err
	}
	return res.Runs, nil
}

func maxParallel() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// Index organizes runs for table rendering: byWP[workload][policy].
type Index struct {
	Workloads []string
	Policies  []string
	byWP      map[string]map[string]cpu.Stats
}

// NewIndex builds an index over runs.
func NewIndex(runs []Run) *Index {
	ix := &Index{byWP: make(map[string]map[string]cpu.Stats)}
	seenW := map[string]bool{}
	seenP := map[string]bool{}
	for _, r := range runs {
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			ix.Workloads = append(ix.Workloads, r.Workload)
		}
		if !seenP[r.Policy] {
			seenP[r.Policy] = true
			ix.Policies = append(ix.Policies, r.Policy)
		}
		m := ix.byWP[r.Workload]
		if m == nil {
			m = make(map[string]cpu.Stats)
			ix.byWP[r.Workload] = m
		}
		m[r.Policy] = r.Stats
	}
	return ix
}

// Stats returns the run statistics for (workload, policy).
func (ix *Index) Stats(w, p string) (cpu.Stats, bool) {
	s, ok := ix.byWP[w][p]
	return s, ok
}

// Overhead returns policy p's execution-time overhead on workload w relative
// to the baseline policy (normalized cycles - 1).
func (ix *Index) Overhead(w, p, baseline string) (float64, bool) {
	base, ok1 := ix.byWP[w][baseline]
	s, ok2 := ix.byWP[w][p]
	if !ok1 || !ok2 || base.Cycles == 0 {
		return 0, false
	}
	return float64(s.Cycles)/float64(base.Cycles) - 1, true
}

// GeoMeanOverhead aggregates a policy's overhead across all workloads using
// the geometric mean of normalized runtimes (the paper's metric).
func (ix *Index) GeoMeanOverhead(p, baseline string) float64 {
	var ratios []float64
	for _, w := range ix.Workloads {
		ov, ok := ix.Overhead(w, p, baseline)
		if !ok {
			continue
		}
		ratios = append(ratios, 1+ov)
	}
	if len(ratios) == 0 {
		return 0
	}
	return stats.GeoMean(ratios) - 1
}
