// Package harness runs the paper's experiments: it sweeps the workload suite
// across secure-speculation policies and core configurations and renders the
// tables and figures indexed in DESIGN.md (T1–T3, F1–F5). cmd/levbench and
// the repository benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"levioso/internal/cpu"
	"levioso/internal/ref"
	"levioso/internal/secure"
	"levioso/internal/stats"
	"levioso/internal/workloads"
)

// Run is one (workload, policy) simulation result.
type Run struct {
	Workload string
	Policy   string
	Stats    cpu.Stats
	ExitCode uint64
}

// Spec describes a sweep.
type Spec struct {
	Workloads []workloads.Workload
	Policies  []string
	Size      workloads.Size
	Config    cpu.Config
	// Verify cross-checks every run against the reference interpreter
	// (exit code and console output) and fails on divergence.
	Verify bool
}

// DefaultSpec sweeps the full suite over the headline policies at reference
// scale on the default core.
func DefaultSpec() Spec {
	return Spec{
		Workloads: workloads.All(),
		Policies:  secure.EvalNames(),
		Size:      workloads.SizeRef,
		Config:    defaultRunConfig(),
		Verify:    true,
	}
}

func defaultRunConfig() cpu.Config {
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 500_000_000
	return cfg
}

// Sweep runs every (workload, policy) pair, in parallel across workloads.
// Results are ordered workload-major, matching Spec order.
func Sweep(spec Spec) ([]Run, error) {
	type cell struct {
		run Run
		err error
	}
	n := len(spec.Workloads) * len(spec.Policies)
	cells := make([]cell, n)
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for wi, w := range spec.Workloads {
		prog, err := w.Build(spec.Size)
		if err != nil {
			return nil, err
		}
		var want ref.Result
		if spec.Verify {
			want, err = ref.Run(prog, ref.Limits{})
			if err != nil {
				return nil, fmt.Errorf("harness: %s: reference run: %w", w.Name, err)
			}
		}
		for pi, pol := range spec.Policies {
			wg.Add(1)
			go func(idx int, wname, pol string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Each run gets its own program build to keep per-run state
				// (memory image, hint tables) independent.
				c, err := cpu.New(prog, spec.Config, secure.MustNew(pol))
				if err != nil {
					cells[idx] = cell{err: err}
					return
				}
				res, err := c.Run()
				if err != nil {
					cells[idx] = cell{err: fmt.Errorf("harness: %s/%s: %w", wname, pol, err)}
					return
				}
				if spec.Verify && (res.ExitCode != want.ExitCode || res.Output != want.Output) {
					cells[idx] = cell{err: fmt.Errorf(
						"harness: %s/%s: architectural divergence: got exit %d output %q, want %d %q",
						wname, pol, res.ExitCode, res.Output, want.ExitCode, want.Output)}
					return
				}
				cells[idx] = cell{run: Run{Workload: wname, Policy: pol, Stats: res.Stats, ExitCode: res.ExitCode}}
			}(wi*len(spec.Policies)+pi, w.Name, pol)
		}
	}
	wg.Wait()
	out := make([]Run, 0, n)
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		out = append(out, c.run)
	}
	return out, nil
}

func maxParallel() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// Index organizes runs for table rendering: byWP[workload][policy].
type Index struct {
	Workloads []string
	Policies  []string
	byWP      map[string]map[string]cpu.Stats
}

// NewIndex builds an index over runs.
func NewIndex(runs []Run) *Index {
	ix := &Index{byWP: make(map[string]map[string]cpu.Stats)}
	seenW := map[string]bool{}
	seenP := map[string]bool{}
	for _, r := range runs {
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			ix.Workloads = append(ix.Workloads, r.Workload)
		}
		if !seenP[r.Policy] {
			seenP[r.Policy] = true
			ix.Policies = append(ix.Policies, r.Policy)
		}
		m := ix.byWP[r.Workload]
		if m == nil {
			m = make(map[string]cpu.Stats)
			ix.byWP[r.Workload] = m
		}
		m[r.Policy] = r.Stats
	}
	return ix
}

// Stats returns the run statistics for (workload, policy).
func (ix *Index) Stats(w, p string) (cpu.Stats, bool) {
	s, ok := ix.byWP[w][p]
	return s, ok
}

// Overhead returns policy p's execution-time overhead on workload w relative
// to the baseline policy (normalized cycles - 1).
func (ix *Index) Overhead(w, p, baseline string) (float64, bool) {
	base, ok1 := ix.byWP[w][baseline]
	s, ok2 := ix.byWP[w][p]
	if !ok1 || !ok2 || base.Cycles == 0 {
		return 0, false
	}
	return float64(s.Cycles)/float64(base.Cycles) - 1, true
}

// GeoMeanOverhead aggregates a policy's overhead across all workloads using
// the geometric mean of normalized runtimes (the paper's metric).
func (ix *Index) GeoMeanOverhead(p, baseline string) float64 {
	var ratios []float64
	for _, w := range ix.Workloads {
		ov, ok := ix.Overhead(w, p, baseline)
		if !ok {
			continue
		}
		ratios = append(ratios, 1+ov)
	}
	if len(ratios) == 0 {
		return 0
	}
	return stats.GeoMean(ratios) - 1
}
