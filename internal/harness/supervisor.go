package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"levioso/internal/engine"
	"levioso/internal/faultinject"
	"levioso/internal/isa"
	"levioso/internal/obs"
	"levioso/internal/ref"
	"levioso/internal/simerr"
	"levioso/internal/stats"
)

// Failure is one (workload, policy) cell the supervisor could not complete.
type Failure struct {
	Workload string
	Policy   string
	Attempts int
	Err      error // a *simerr.RunError carrying the classification
}

// SweepResult is the partial outcome of a supervised sweep: every cell that
// completed, every cell that failed, and how many were restored from the
// journal instead of re-executed. Runs keeps workload-major Spec order with
// failed cells skipped, so NewIndex works directly on it.
type SweepResult struct {
	Runs     []Run
	Failures []Failure
	Resumed  int
}

// cell is one (workload, policy) slot of the sweep.
type cell struct {
	run      Run
	err      error
	attempts int
	done     bool
}

// Supervise runs every (workload, policy) pair, in parallel across cells,
// and degrades instead of aborting: a per-run panic is recovered into
// simerr.ErrPanic, each attempt is bounded by Spec.RunTimeout, transient
// failures are retried with capped exponential backoff, and one bad cell
// becomes a Failure entry while every other cell still returns its Run.
// With Spec.Journal set, completed cells are recorded as they finish and an
// interrupted sweep resumes without re-executing them.
//
// The returned error is reserved for sweep-level problems (a cancelled
// context, a journal write failure); per-cell errors are in Failures.
func Supervise(ctx context.Context, spec Spec) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	np := len(spec.Policies)
	cells := make([]cell, len(spec.Workloads)*np)

	resumed := 0
	if spec.Journal != nil {
		for wi, w := range spec.Workloads {
			for pi, pol := range spec.Policies {
				if run, ok := spec.Journal.Lookup(spec.Tag, w.Name, pol); ok {
					cells[wi*np+pi] = cell{run: run, done: true}
					resumed++
				}
			}
		}
	}

	var journalErr error
	var journalMu sync.Mutex
	// Cells are dispatched to a fixed pool of workers draining one queue
	// (the same shape as cpu.RunBatch, one tier up): a worker finishes a
	// whole cell before taking the next, so at most maxParallel simulator
	// working sets are live at once, instead of one goroutine per cell all
	// fighting for the scheduler.
	type cellJob struct {
		idx   int
		wname string
		pol   string
		prog  *isa.Program
		want  ref.Result
	}
	var jobs []cellJob
	for wi, w := range spec.Workloads {
		pending := false
		for pi := range spec.Policies {
			if !cells[wi*np+pi].done {
				pending = true
			}
		}
		if !pending {
			continue // fully resumed: skip the build too
		}
		prog, err := w.Build(spec.Size)
		if err != nil {
			failWorkload(cells[wi*np:wi*np+np], spec, w.Name, &simerr.RunError{
				Kind: simerr.KindBuild, Detail: "workload build failed", Err: err,
			})
			continue
		}
		var want ref.Result
		if spec.Verify {
			want, err = engine.Reference(ctx, prog, ref.Limits{})
			if err != nil {
				failWorkload(cells[wi*np:wi*np+np], spec, w.Name, &simerr.RunError{
					Kind: simerr.KindBuild, Detail: "reference run failed", Err: err,
				})
				continue
			}
		}
		for pi, pol := range spec.Policies {
			idx := wi*np + pi
			if cells[idx].done {
				continue
			}
			jobs = append(jobs, cellJob{idx: idx, wname: w.Name, pol: pol, prog: prog, want: want})
		}
	}
	workers := maxParallel()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	queue := make(chan cellJob, len(jobs))
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				run, attempts, err := superviseCell(ctx, spec, j.prog, j.want, j.wname, j.pol)
				if err != nil {
					cells[j.idx] = cell{err: err, attempts: attempts}
					continue
				}
				cells[j.idx] = cell{run: run, attempts: attempts, done: true}
				if spec.Journal != nil {
					if jerr := spec.Journal.Record(spec.Tag, run); jerr != nil {
						journalMu.Lock()
						if journalErr == nil {
							journalErr = jerr
						}
						journalMu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	// An interrupted sweep is a sweep-level abort, not a pile of per-cell
	// failures: completed cells are already journaled, so the caller's
	// resume path is the recovery story.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if journalErr != nil {
		return nil, fmt.Errorf("harness: journal: %w", journalErr)
	}

	res := &SweepResult{Resumed: resumed}
	cellsTotal := obs.FromContext(ctx).CounterVec("harness_cells_total",
		"sweep cells by final disposition", "outcome")
	cellsTotal.With("resumed").Add(uint64(resumed))
	for i, c := range cells {
		if c.err != nil {
			cellsTotal.With("failed").Inc()
			res.Failures = append(res.Failures, Failure{
				Workload: spec.Workloads[i/np].Name,
				Policy:   spec.Policies[i%np],
				Attempts: c.attempts,
				Err:      c.err,
			})
			continue
		}
		if c.attempts > 0 {
			cellsTotal.With("ok").Inc()
		}
		res.Runs = append(res.Runs, c.run)
	}
	return res, nil
}

// failWorkload marks every policy cell of one workload failed with the same
// pre-simulation cause (build or reference-run failure).
func failWorkload(cells []cell, spec Spec, wname string, cause *simerr.RunError) {
	for pi, pol := range spec.Policies {
		if cells[pi].done {
			continue
		}
		cells[pi] = cell{err: simerr.WithRun(cause, wname, pol, 1), attempts: 1}
	}
}

// superviseCell drives one cell through the attempt loop: run, classify,
// and retry transient failures with capped exponential backoff. Every
// attempt records into ctx's obs registry: a harness.cell span (the
// harness_stage_seconds histogram, outcome "ok" or the failure kind),
// harness_attempts_total, and — for
// attempts beyond the first — harness_retries_total, so a sweep's retry and
// deadline pressure is visible without reading the failure table.
func superviseCell(ctx context.Context, spec Spec, prog *isa.Program, want ref.Result, wname, pol string) (Run, int, error) {
	reg := obs.FromContext(ctx)
	backoff := spec.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var lastErr error
	attempt := 1
	for ; ; attempt++ {
		if spec.testOnRun != nil {
			spec.testOnRun(wname, pol, attempt)
		}
		reg.Counter("harness_attempts_total", "executed sweep cell attempts").Inc()
		if attempt > 1 {
			reg.Counter("harness_retries_total", "cell attempts beyond the first (transient-failure retries)").Inc()
		}
		sp := obs.StartSpan(ctx, "harness.cell")
		run, err := runCell(ctx, spec, prog, want, wname, pol, attempt)
		if err == nil {
			sp.End(obs.OutcomeOK)
			return run, attempt, nil
		}
		kind := simerr.KindOf(err)
		sp.End(kind.String())
		if kind == simerr.KindDeadline {
			reg.Counter("harness_deadlines_total", "cell attempts that hit the per-run wall-clock deadline").Inc()
		}
		lastErr = simerr.WithRun(err, wname, pol, attempt)
		if !simerr.Transient(lastErr) || attempt > spec.Retries {
			break
		}
		d := backoff << (attempt - 1)
		if lim := backoff << 6; d > lim {
			d = lim
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return Run{}, attempt, lastErr
		}
	}
	return Run{}, attempt, lastErr
}

// runCell executes one attempt of one cell through the shared pipeline: an
// engine.Run over the pre-built program under the cell's policy, with any
// injected faults attached to the configuration and the per-run deadline and
// reference cross-check handled by the engine. The engine recovers panics
// anywhere inside the simulation into simerr.ErrPanic; the extra recover
// here also covers a panicking fault-plan callback, so one bad cell cannot
// take down the whole sweep.
func runCell(ctx context.Context, spec Spec, prog *isa.Program, want ref.Result, wname, pol string, attempt int) (run Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &simerr.RunError{
				Kind:   simerr.KindPanic,
				Detail: fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	cfg := spec.Config
	if spec.Faults != nil {
		if plan := spec.Faults(wname, pol); plan != nil {
			faultinject.New(*plan, attempt).Attach(&cfg)
			obs.FromContext(ctx).Counter("harness_faults_injected_total",
				"cell attempts executed with an attached fault-injection plan").Inc()
		}
	}
	req := engine.Request{
		Name:    wname,
		Program: prog,
		Config:  &cfg,
		Verify:  spec.Verify,
		Overrides: engine.Overrides{
			Policy:   pol,
			Deadline: spec.RunTimeout,
		},
	}
	if spec.Verify {
		req.Want = &want
	}
	res, err := engine.Run(ctx, req)
	if err != nil {
		return Run{}, err
	}
	return Run{Workload: wname, Policy: pol, Stats: res.Stats, ExitCode: res.ExitCode}, nil
}

// RenderFailures formats a failure table for reports (empty string when
// there is nothing to report).
func RenderFailures(fs []Failure) string {
	if len(fs) == 0 {
		return ""
	}
	t := stats.NewTable("failed cells", "workload", "policy", "kind", "attempts", "error")
	for _, f := range fs {
		msg := f.Err.Error()
		if len(msg) > 90 {
			msg = msg[:87] + "..."
		}
		t.Add(f.Workload, f.Policy, simerr.KindOf(f.Err).String(), fmt.Sprint(f.Attempts), msg)
	}
	return t.String()
}
