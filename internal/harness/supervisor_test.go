package harness

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"levioso/internal/cpu"
	"levioso/internal/faultinject"
	"levioso/internal/obs"
	"levioso/internal/secure"
	"levioso/internal/simerr"
	"levioso/internal/workloads"
)

// smallSpec is a 2x2 sweep (4 cells) cheap enough for per-test supervision
// scenarios. The watchdog is tightened so injected hangs fail fast.
func smallSpec(t *testing.T) Spec {
	t.Helper()
	var ws []workloads.Workload
	for _, name := range []string{"pchase", "matmul"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		ws = append(ws, w)
	}
	cfg := defaultRunConfig()
	cfg.WatchdogCycles = 2_000
	return Spec{
		Workloads: ws,
		Policies:  []string{"unsafe", "fence"},
		Size:      workloads.SizeTest,
		Config:    cfg,
		Verify:    true,
	}
}

// TestSupervisorDegradesAndResumes is the PR's acceptance scenario: a commit
// stall injected into exactly one cell must surface as one classified
// ErrWatchdog failure while every other cell still completes, and a journaled
// re-run must resume without re-executing the completed cells.
func TestSupervisorDegradesAndResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	spec := smallSpec(t)
	spec.Tag = "accept"
	spec.Journal = j
	spec.Faults = func(w, p string) *faultinject.Plan {
		if w == "pchase" && p == "fence" {
			return &faultinject.Plan{Faults: []faultinject.Fault{
				{Kind: faultinject.CommitStall, Start: 100}, // held forever
			}}
		}
		return nil
	}

	res, err := Supervise(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want exactly 1 failed cell, got %d: %+v", len(res.Failures), res.Failures)
	}
	f := res.Failures[0]
	if f.Workload != "pchase" || f.Policy != "fence" {
		t.Errorf("wrong cell failed: %s/%s", f.Workload, f.Policy)
	}
	if !errors.Is(f.Err, simerr.ErrWatchdog) {
		t.Errorf("want ErrWatchdog, got %v", f.Err)
	}
	if f.Attempts != 1 {
		t.Errorf("permanent failure retried: %d attempts", f.Attempts)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("want 3 completed cells, got %d", len(res.Runs))
	}
	if tab := RenderFailures(res.Failures); tab == "" {
		t.Error("failure table empty")
	}
	if j.Len() != 3 {
		t.Errorf("journal recorded %d cells, want 3", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second invocation: same journal, fault gone (the "flaky host" fixed).
	// Only the previously failed cell may execute.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	spec2 := smallSpec(t)
	spec2.Tag = "accept"
	spec2.Journal = j2
	var mu sync.Mutex
	var executed []string
	spec2.testOnRun = func(w, p string, attempt int) {
		mu.Lock()
		executed = append(executed, w+"/"+p)
		mu.Unlock()
	}
	res2, err := Supervise(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 3 {
		t.Errorf("resumed %d cells, want 3", res2.Resumed)
	}
	if len(executed) != 1 || executed[0] != "pchase/fence" {
		t.Errorf("re-executed %v, want only pchase/fence", executed)
	}
	if len(res2.Failures) != 0 {
		t.Errorf("clean re-run still failed: %+v", res2.Failures)
	}
	if len(res2.Runs) != 4 {
		t.Errorf("want all 4 cells after resume, got %d", len(res2.Runs))
	}
	if j2.Len() != 4 {
		t.Errorf("journal holds %d cells after resume, want 4", j2.Len())
	}
}

// TestSupervisorRetriesTransient proves the retry loop: a panic injected only
// into the first attempt is recovered, classified transient, and the retry
// (with the fault disarmed via FirstAttempts) succeeds.
func TestSupervisorRetriesTransient(t *testing.T) {
	spec := smallSpec(t)
	spec.Retries = 1
	spec.RetryBackoff = time.Millisecond
	spec.Faults = func(w, p string) *faultinject.Plan {
		if w == "matmul" && p == "unsafe" {
			return &faultinject.Plan{Faults: []faultinject.Fault{
				{Kind: faultinject.Panic, Start: 100, FirstAttempts: 1},
			}}
		}
		return nil
	}
	var mu sync.Mutex
	attempts := map[string]int{}
	spec.testOnRun = func(w, p string, attempt int) {
		mu.Lock()
		if attempt > attempts[w+"/"+p] {
			attempts[w+"/"+p] = attempt
		}
		mu.Unlock()
	}
	res, err := Supervise(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("transient panic not retried to success: %+v", res.Failures)
	}
	if len(res.Runs) != 4 {
		t.Errorf("want 4 runs, got %d", len(res.Runs))
	}
	if attempts["matmul/unsafe"] != 2 {
		t.Errorf("faulted cell ran %d attempts, want 2", attempts["matmul/unsafe"])
	}
	if attempts["pchase/unsafe"] != 1 {
		t.Errorf("clean cell retried: %d attempts", attempts["pchase/unsafe"])
	}
}

// TestSupervisorDeadlineExhaustsRetries: an unmeetable per-run deadline is
// transient, so the supervisor retries it the configured number of times and
// then reports KindDeadline with the attempt count.
func TestSupervisorDeadlineExhaustsRetries(t *testing.T) {
	spec := smallSpec(t)
	w, _ := workloads.ByName("pchase")
	spec.Workloads = []workloads.Workload{w}
	spec.Policies = []string{"unsafe"}
	spec.Retries = 2
	spec.RetryBackoff = time.Millisecond
	spec.RunTimeout = time.Nanosecond
	res, err := Supervise(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("want 1 failure, got %+v", res.Failures)
	}
	f := res.Failures[0]
	if !errors.Is(f.Err, simerr.ErrDeadline) {
		t.Errorf("want ErrDeadline, got %v", f.Err)
	}
	if f.Attempts != 3 {
		t.Errorf("deadline retried %d attempts, want 3 (1 + 2 retries)", f.Attempts)
	}
	var re *simerr.RunError
	if !errors.As(f.Err, &re) || re.Workload != "pchase" || re.Attempt != 3 {
		t.Errorf("run context missing on failure: %+v", re)
	}
}

// TestSupervisorMetrics pins the supervisor's instrumentation: a sweep run
// with an isolated registry in the context must record attempts, retries
// (one injected transient), the per-attempt harness.cell span histogram, and
// per-outcome cell dispositions — without touching the process default
// registry.
func TestSupervisorMetrics(t *testing.T) {
	spec := smallSpec(t)
	spec.Retries = 1
	spec.RetryBackoff = time.Millisecond
	spec.Faults = func(w, p string) *faultinject.Plan {
		if w == "matmul" && p == "unsafe" {
			return &faultinject.Plan{Faults: []faultinject.Fault{
				{Kind: faultinject.Panic, Start: 100, FirstAttempts: 1},
			}}
		}
		return nil
	}
	reg := obs.NewRegistry()
	res, err := Supervise(obs.WithRegistry(context.Background(), reg), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("unexpected failures: %+v", res.Failures)
	}
	// 4 cells, one of which needed a retry after the injected panic.
	if got := reg.Counter("harness_attempts_total", "").Value(); got != 5 {
		t.Errorf("harness_attempts_total = %d, want 5", got)
	}
	if got := reg.Counter("harness_retries_total", "").Value(); got != 1 {
		t.Errorf("harness_retries_total = %d, want 1", got)
	}
	if got := reg.Counter("harness_faults_injected_total", "").Value(); got != 2 {
		t.Errorf("harness_faults_injected_total = %d, want 2 (both attempts carried a plan)", got)
	}
	cells := reg.CounterVec("harness_cells_total", "", "outcome")
	if got := cells.With("ok").Value(); got != 4 {
		t.Errorf(`harness_cells_total{outcome="ok"} = %d, want 4`, got)
	}
	if got := cells.With("failed").Value(); got != 0 {
		t.Errorf(`harness_cells_total{outcome="failed"} = %d, want 0`, got)
	}
	spans := reg.HistogramVec("harness_stage_seconds", "", obs.LatencyBuckets(), "stage", "outcome")
	if got := spans.With("cell", "ok").Snapshot().Count; got != 4 {
		t.Errorf(`harness_stage_seconds{stage="cell",outcome="ok"} count = %d, want 4`, got)
	}
	if got := spans.With("cell", "panic").Snapshot().Count; got != 1 {
		t.Errorf(`harness_stage_seconds{stage="cell",outcome="panic"} count = %d, want 1`, got)
	}
}

// TestSupervisorCancelled pins the interrupt contract levbench relies on:
// cancelling the sweep context (what SIGINT does) surfaces as a sweep-level
// context.Canceled — not a pile of per-cell failures — while cells completed
// before the interrupt stay journaled for the resume path.
func TestSupervisorCancelled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	spec := smallSpec(t)
	spec.Tag = "interrupt"
	spec.Journal = j
	var once sync.Once
	spec.testOnRun = func(w, p string, attempt int) {
		once.Do(cancel) // the "SIGINT" lands while the first cell is starting
	}
	res, err := Supervise(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%+v err=%v", res, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The resumed run completes only what the interrupted one did not.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	already := j2.Len()
	spec2 := smallSpec(t)
	spec2.Tag = "interrupt"
	spec2.Journal = j2
	res2, err := Supervise(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != already {
		t.Errorf("resumed %d cells, journal held %d", res2.Resumed, already)
	}
	if len(res2.Runs) != 4 || len(res2.Failures) != 0 {
		t.Errorf("resume incomplete: %d runs, %+v", len(res2.Runs), res2.Failures)
	}
}

// TestSupervisorResumesPastCrashMidFsync simulates the worst-case interrupt:
// the process dies while fsyncing the journal's final record, leaving it
// torn. The next run must heal the torn tail, keep every intact record, and
// re-execute only the cell whose record was lost — never a completed one.
func TestSupervisorResumesPastCrashMidFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(t)
	spec.Tag = "crash"
	spec.Journal = j
	res, err := Supervise(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 || j.Len() != 4 {
		t.Fatalf("clean sweep: %d runs, %d journaled", len(res.Runs), j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record in half, as a crash mid-fsync would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], nil), last[:len(last)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("journal after torn tail: %d entries, want 3", j2.Len())
	}
	spec2 := smallSpec(t)
	spec2.Tag = "crash"
	spec2.Journal = j2
	var mu sync.Mutex
	var executed []string
	spec2.testOnRun = func(w, p string, attempt int) {
		mu.Lock()
		executed = append(executed, w+"/"+p)
		mu.Unlock()
	}
	res2, err := Supervise(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 3 {
		t.Errorf("resumed %d cells, want 3", res2.Resumed)
	}
	if len(executed) != 1 {
		t.Fatalf("re-executed %v, want exactly the torn cell", executed)
	}
	if _, ok := j2.Lookup("crash", res.Runs[0].Workload, res.Runs[0].Policy); len(res.Runs) > 0 && !ok {
		// Sanity only: at least one completed cell must still resolve.
		t.Errorf("completed cell lost from healed journal")
	}
	if len(res2.Runs) != 4 || len(res2.Failures) != 0 {
		t.Errorf("post-crash sweep incomplete: %d runs, %+v", len(res2.Runs), res2.Failures)
	}
	if j2.Len() != 4 {
		t.Errorf("journal holds %d after re-run, want 4", j2.Len())
	}
}

// TestSweepStrictOnFailure pins Sweep's contract: any failed cell turns into
// an error (the legacy all-or-nothing behaviour tests and benches rely on).
func TestSweepStrictOnFailure(t *testing.T) {
	spec := smallSpec(t)
	spec.Faults = func(w, p string) *faultinject.Plan {
		if w == "pchase" && p == "unsafe" {
			return &faultinject.Plan{Faults: []faultinject.Fault{
				{Kind: faultinject.CommitStall, Start: 100},
			}}
		}
		return nil
	}
	if _, err := Sweep(spec); !errors.Is(err, simerr.ErrWatchdog) {
		t.Fatalf("strict Sweep must surface the cell error, got %v", err)
	}
}

// TestSweepSharedProgramImmutable pins the property the Sweep doc comment
// claims: one built program can back many concurrent cores because nothing
// in simulation mutates it. The byte-exact marshal comparison catches direct
// writes; the race detector (tier-1 runs with -race) catches unsynchronized
// ones.
func TestSweepSharedProgramImmutable(t *testing.T) {
	w, ok := workloads.ByName("pchase")
	if !ok {
		t.Fatal("missing workload pchase")
	}
	prog := w.MustBuild(workloads.SizeTest)
	before, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	policies := []string{"unsafe", "fence", "delay", "levioso"}
	var wg sync.WaitGroup
	errs := make([]error, len(policies))
	for i, pol := range policies {
		wg.Add(1)
		go func(i int, pol string) {
			defer wg.Done()
			c, err := cpu.New(prog, defaultRunConfig(), secure.MustNew(pol))
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = c.Run()
		}(i, pol)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", policies[i], err)
		}
	}

	after, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("shared program mutated by concurrent simulation")
	}
}

func TestJournalTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	good := Run{Workload: "w1", Policy: "p1", ExitCode: 7, Stats: cpu.Stats{Cycles: 123}}
	if err := j.Record("t", good); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn, unterminated half-entry.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"tag":"t","workload":"w2","poli`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("want 1 surviving entry, got %d", j2.Len())
	}
	rec, ok := j2.Lookup("t", "w1", "p1")
	if !ok || rec.ExitCode != 7 || rec.Stats.Cycles != 123 {
		t.Errorf("surviving entry corrupted: %+v ok=%v", rec, ok)
	}
	if _, ok := j2.Lookup("t", "w2", "p1"); ok {
		t.Error("torn entry resurrected")
	}
	// The journal must still be appendable after loading past a torn tail:
	// OpenJournal heals the unterminated line, so a record written now must
	// survive the next load instead of merging into the garbage.
	if err := j2.Record("t", Run{Workload: "w3", Policy: "p1"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, ok := j3.Lookup("t", "w3", "p1"); !ok {
		t.Error("entry appended after torn tail lost on reload")
	}
}

func TestJournalTagNamespacing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("rob=128", Run{Workload: "w", Policy: "p", Stats: cpu.Stats{Cycles: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("rob=256", Run{Workload: "w", Policy: "p", Stats: cpu.Stats{Cycles: 2}}); err != nil {
		t.Fatal(err)
	}
	a, ok1 := j.Lookup("rob=128", "w", "p")
	b, ok2 := j.Lookup("rob=256", "w", "p")
	if !ok1 || !ok2 || a.Stats.Cycles != 1 || b.Stats.Cycles != 2 {
		t.Errorf("tags collided: %+v / %+v", a, b)
	}
	if _, ok := j.Lookup("", "w", "p"); ok {
		t.Error("untagged lookup matched tagged entry")
	}
}

// Record fsyncs each entry and Sync is exposed for explicit barriers (a
// supervisor checkpointing before a risky phase): after either, a fresh
// reader of the file — not the same handle — must see the entry complete.
func TestJournalRecordDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("t", Run{Workload: "w1", Policy: "p1", ExitCode: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// Reopen the path independently while the writer is still open: the
	// synced entry must already be complete on disk.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec, ok := j2.Lookup("t", "w1", "p1"); !ok || rec.ExitCode != 3 {
		t.Fatalf("synced entry not visible to a fresh reader: %+v ok=%v", rec, ok)
	}
}
