package harness

import (
	"context"
	"strings"
	"testing"

	"levioso/internal/cpu"
	"levioso/internal/workloads"
)

func TestSweepAndOverheads(t *testing.T) {
	spec := DefaultSpec()
	spec.Size = workloads.SizeTest
	runs, err := Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(spec.Workloads)*len(spec.Policies) {
		t.Fatalf("got %d runs", len(runs))
	}
	ix := NewIndex(runs)
	for _, p := range []string{"fence", "delay", "invisible", "levioso"} {
		gm := ix.GeoMeanOverhead(p, "unsafe")
		t.Logf("%-10s geomean overhead %.1f%%", p, 100*gm)
		if gm < 0 {
			t.Errorf("%s geomean overhead negative: %f", p, gm)
		}
	}
	lev := ix.GeoMeanOverhead("levioso", "unsafe")
	del := ix.GeoMeanOverhead("delay", "unsafe")
	fen := ix.GeoMeanOverhead("fence", "unsafe")
	if !(lev < del && del < fen) {
		t.Errorf("ordering violated: levioso %.3f, delay %.3f, fence %.3f", lev, del, fen)
	}
}

func TestExpConfigRenders(t *testing.T) {
	out := ExpConfig(cpu.DefaultConfig())
	for _, want := range []string{"ROB", "gshare", "L1D", "branch dependency table"} {
		if !strings.Contains(out, want) {
			t.Errorf("config table missing %q:\n%s", want, out)
		}
	}
}

func TestExpCompilerRenders(t *testing.T) {
	opt := NewRunOpts(workloads.SizeTest)
	out, err := ExpCompiler(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.Names() {
		if !strings.Contains(out, w) {
			t.Errorf("compiler table missing %q", w)
		}
	}
	if fs := opt.Failures(); len(fs) != 0 {
		t.Errorf("clean suite reported failures: %v", fs)
	}
	if strings.Contains(out, "n/a") {
		t.Errorf("clean suite rendered degraded rows:\n%s", out)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment(context.Background(), "bogus", NewRunOpts(workloads.SizeTest)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIndexHelpers(t *testing.T) {
	runs := []Run{
		{Workload: "w", Policy: "unsafe", Stats: cpu.Stats{Cycles: 100}},
		{Workload: "w", Policy: "x", Stats: cpu.Stats{Cycles: 150}},
	}
	ix := NewIndex(runs)
	ov, ok := ix.Overhead("w", "x", "unsafe")
	if !ok || ov < 0.49 || ov > 0.51 {
		t.Errorf("overhead = %f, %v", ov, ok)
	}
	if gm := ix.GeoMeanOverhead("x", "unsafe"); gm < 0.49 || gm > 0.51 {
		t.Errorf("geomean = %f", gm)
	}
	if _, ok := ix.Overhead("nope", "x", "unsafe"); ok {
		t.Error("missing workload reported ok")
	}
}
