package simerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindWatchdog, ErrWatchdog},
		{KindCycleLimit, ErrCycleLimit},
		{KindInstLimit, ErrInstLimit},
		{KindDivergence, ErrDivergence},
		{KindPanic, ErrPanic},
		{KindDeadline, ErrDeadline},
		{KindMemFault, ErrMemFault},
		{KindBuild, ErrBuild},
		{KindTransport, ErrTransport},
		{KindShed, ErrShed},
	}
	for _, c := range cases {
		err := New(c.kind, "boom")
		if !errors.Is(err, c.want) {
			t.Errorf("kind %v: errors.Is against its sentinel failed", c.kind)
		}
		for _, other := range cases {
			if other.kind != c.kind && errors.Is(err, other.want) {
				t.Errorf("kind %v matched foreign sentinel %v", c.kind, other.kind)
			}
		}
		// Matching survives fmt wrapping.
		if !errors.Is(fmt.Errorf("outer: %w", err), c.want) {
			t.Errorf("kind %v: sentinel match lost through wrapping", c.kind)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	for _, k := range []Kind{KindDeadline, KindPanic, KindTransport, KindShed} {
		if !k.Transient() {
			t.Errorf("%v should be transient", k)
		}
	}
	for _, k := range []Kind{KindWatchdog, KindCycleLimit, KindInstLimit,
		KindDivergence, KindMemFault, KindBuild, KindUnknown} {
		if k.Transient() {
			t.Errorf("%v should be permanent", k)
		}
	}
	if Transient(errors.New("plain")) {
		t.Error("foreign error classified transient")
	}
	if !Transient(New(KindDeadline, "slow")) {
		t.Error("deadline RunError not transient through helper")
	}
}

func TestWithRunAnnotation(t *testing.T) {
	orig := New(KindWatchdog, "head stuck")
	orig.Cycle = 1234
	ann := WithRun(fmt.Errorf("wrapped: %w", orig), "qsort", "levioso", 2)
	if ann.Workload != "qsort" || ann.Policy != "levioso" || ann.Attempt != 2 {
		t.Errorf("context not applied: %+v", ann)
	}
	if ann.Cycle != 1234 || ann.Kind != KindWatchdog {
		t.Errorf("original context lost: %+v", ann)
	}
	if orig.Workload != "" {
		t.Error("WithRun mutated the original error")
	}
	if !errors.Is(ann, ErrWatchdog) {
		t.Error("annotated error lost sentinel identity")
	}

	foreign := WithRun(errors.New("disk on fire"), "w", "p", 1)
	if foreign.Kind != KindUnknown || !errors.Is(foreign, foreign.Err) {
		t.Errorf("foreign error not normalized: %+v", foreign)
	}
}

// TestParseKindRoundTrip pins the wire contract the dispatch protocol relies
// on: every kind's String() parses back to itself, and foreign names degrade
// to KindUnknown instead of failing.
func TestParseKindRoundTrip(t *testing.T) {
	for k := KindUnknown; k <= KindShed; k++ {
		if got := ParseKind(k.String()); got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if ParseKind("from-the-future") != KindUnknown {
		t.Error("unrecognized kind name did not degrade to KindUnknown")
	}
}

func TestKindOfAndError(t *testing.T) {
	err := WithRun(New(KindDivergence, "exit 1 != 0"), "fsm", "fence", 1)
	if KindOf(err) != KindDivergence {
		t.Errorf("KindOf = %v", KindOf(err))
	}
	if KindOf(errors.New("x")) != KindUnknown {
		t.Error("foreign KindOf != unknown")
	}
	msg := err.Error()
	for _, want := range []string{"fsm/fence", "divergence", "exit 1 != 0"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}
