// Package simerr defines the typed failure taxonomy for simulation runs.
// Every way a run can fail — the core's watchdog, the cycle/instruction
// limits, architectural divergence against the reference model, a recovered
// panic, a wall-clock deadline — maps to one Kind with a matching sentinel
// error, and the concrete *RunError carries the run context (workload,
// policy, attempt, simulated cycle) the sweep supervisor needs to report and
// classify it. Kinds are classified transient (worth retrying: the failure
// can depend on wall-clock scheduling or non-deterministic process state) or
// permanent (deterministic for a given program and configuration).
//
// Callers match failures with errors.Is against the sentinels:
//
//	if errors.Is(err, simerr.ErrWatchdog) { ... }
//
// and recover the full context with errors.As into *RunError.
package simerr

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a simulation failure.
type Kind int

const (
	// KindUnknown is any failure the taxonomy does not cover.
	KindUnknown Kind = iota
	// KindWatchdog is the core's no-commit-progress watchdog: a scheduling
	// deadlock in the model (or an injected commit stall / stuck response).
	KindWatchdog
	// KindCycleLimit is Config.MaxCycles exhaustion.
	KindCycleLimit
	// KindInstLimit is Config.MaxInsts exhaustion.
	KindInstLimit
	// KindDivergence is an architectural mismatch against the reference
	// interpreter (exit code or console output).
	KindDivergence
	// KindPanic is a panic recovered from a run goroutine.
	KindPanic
	// KindDeadline is a per-run wall-clock deadline (context) expiring.
	KindDeadline
	// KindMemFault is an architectural memory fault: a committed access
	// outside simulated memory, or a reference-model step failure (bad PC,
	// misaligned or out-of-range access).
	KindMemFault
	// KindBuild is a failure before simulation started: workload compilation,
	// reference pre-run, or core construction.
	KindBuild
	// KindTransport is a distributed-execution transport failure: a worker
	// process died, hung past its attempt deadline, or returned a truncated
	// or corrupted frame. The simulation itself may have completed fine on
	// the other side — the result just never arrived — so transport failures
	// are always transient: the cell is safely retryable on another worker
	// (the simulator is a deterministic pure function).
	KindTransport
	// KindShed is an admission-control rejection: the coordinator's queue was
	// full and the request was turned away before any work happened. Shed
	// requests are transient by construction — backing off and retrying
	// against a drained queue succeeds.
	KindShed
)

// Sentinel errors, one per Kind. errors.Is(err, ErrX) matches any *RunError
// of the corresponding kind anywhere in err's chain.
var (
	ErrWatchdog   = errors.New("simerr: watchdog (no commit progress)")
	ErrCycleLimit = errors.New("simerr: cycle limit exceeded")
	ErrInstLimit  = errors.New("simerr: instruction limit exceeded")
	ErrDivergence = errors.New("simerr: architectural divergence")
	ErrPanic      = errors.New("simerr: panic during simulation")
	ErrDeadline   = errors.New("simerr: run deadline exceeded")
	ErrMemFault   = errors.New("simerr: memory fault")
	ErrBuild      = errors.New("simerr: build failed")
	ErrTransport  = errors.New("simerr: worker transport failed")
	ErrShed       = errors.New("simerr: request shed by admission control")
)

func (k Kind) String() string {
	switch k {
	case KindWatchdog:
		return "watchdog"
	case KindCycleLimit:
		return "cycle-limit"
	case KindInstLimit:
		return "inst-limit"
	case KindDivergence:
		return "divergence"
	case KindPanic:
		return "panic"
	case KindDeadline:
		return "deadline"
	case KindMemFault:
		return "mem-fault"
	case KindBuild:
		return "build"
	case KindTransport:
		return "transport"
	case KindShed:
		return "shed"
	default:
		return "unknown"
	}
}

// ParseKind is the inverse of Kind.String: it reconstitutes a Kind from its
// wire name, so a failure serialized by a worker process round-trips through
// the dispatch protocol with its classification intact. Unrecognized names
// map to KindUnknown (a newer worker's kind degrades gracefully on an older
// coordinator instead of failing the frame).
func ParseKind(s string) Kind {
	for k := KindWatchdog; k <= KindShed; k++ {
		if k.String() == s {
			return k
		}
	}
	return KindUnknown
}

// sentinel returns the package sentinel for k (nil for KindUnknown).
func (k Kind) sentinel() error {
	switch k {
	case KindWatchdog:
		return ErrWatchdog
	case KindCycleLimit:
		return ErrCycleLimit
	case KindInstLimit:
		return ErrInstLimit
	case KindDivergence:
		return ErrDivergence
	case KindPanic:
		return ErrPanic
	case KindDeadline:
		return ErrDeadline
	case KindMemFault:
		return ErrMemFault
	case KindBuild:
		return ErrBuild
	case KindTransport:
		return ErrTransport
	case KindShed:
		return ErrShed
	default:
		return nil
	}
}

// Transient reports whether failures of this kind are worth retrying. The
// simulator is deterministic, so watchdog, limit, divergence and memory
// faults reproduce on every attempt; wall-clock deadlines (machine load),
// panics (which may stem from non-deterministic process state), transport
// failures (the worker died, not the simulation) and admission-control sheds
// (the queue drains) are classified transient.
func (k Kind) Transient() bool {
	return k == KindDeadline || k == KindPanic || k == KindTransport || k == KindShed
}

// RunError is a classified simulation failure carrying run context. The
// zero-value fields are simply omitted from Error(); Kind alone is enough
// for classification.
type RunError struct {
	Kind     Kind
	Workload string // sweep cell, when known
	Policy   string
	Attempt  int    // 1-based supervisor attempt, when supervised
	Cycle    uint64 // simulated cycle at failure, when the core got that far
	PC       uint64 // fetch PC at failure, when meaningful
	Detail   string // human-readable specifics (deadlock info, diff, ...)
	Stack    string // captured goroutine stack, for KindPanic
	Err      error  // underlying cause, if any
}

// New builds a RunError of kind k with a formatted detail string.
func New(k Kind, format string, args ...any) *RunError {
	return &RunError{Kind: k, Detail: fmt.Sprintf(format, args...)}
}

func (e *RunError) Error() string {
	var b strings.Builder
	b.WriteString("simerr: ")
	if e.Workload != "" || e.Policy != "" {
		fmt.Fprintf(&b, "%s/%s: ", e.Workload, e.Policy)
	}
	if e.Attempt > 1 {
		fmt.Fprintf(&b, "attempt %d: ", e.Attempt)
	}
	b.WriteString(e.Kind.String())
	if e.Cycle > 0 {
		fmt.Fprintf(&b, " at cycle %d", e.Cycle)
	}
	if e.PC > 0 {
		fmt.Fprintf(&b, " pc=%#x", e.PC)
	}
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *RunError) Unwrap() error { return e.Err }

// Is matches the sentinel of e's kind, so errors.Is(err, ErrWatchdog) works
// regardless of what cause e wraps.
func (e *RunError) Is(target error) bool { return target == e.Kind.sentinel() }

// Transient reports whether this failure is worth retrying.
func (e *RunError) Transient() bool { return e.Kind.Transient() }

// KindOf extracts the failure kind from anywhere in err's chain
// (KindUnknown if err carries no RunError).
func KindOf(err error) Kind {
	var re *RunError
	if errors.As(err, &re) {
		return re.Kind
	}
	return KindUnknown
}

// IsLimit reports whether err is a resource-limit failure: the core's
// no-progress watchdog or a cycle/instruction limit. Fuzzing oracles use the
// predicate to fold the three exhaustion kinds into one "limits" verdict.
func IsLimit(err error) bool {
	switch KindOf(err) {
	case KindWatchdog, KindCycleLimit, KindInstLimit:
		return true
	}
	return false
}

// Transient reports whether err is classified transient (retryable).
// Errors outside the taxonomy are permanent.
func Transient(err error) bool {
	var re *RunError
	if errors.As(err, &re) {
		return re.Transient()
	}
	return false
}

// WithRun annotates err with sweep-cell context, normalizing foreign errors
// into the taxonomy as KindUnknown. The original RunError is not mutated
// (cells may share cached errors across goroutines).
func WithRun(err error, workload, policy string, attempt int) *RunError {
	var re *RunError
	if errors.As(err, &re) {
		cp := *re
		cp.Workload, cp.Policy, cp.Attempt = workload, policy, attempt
		return &cp
	}
	return &RunError{
		Kind: KindUnknown, Workload: workload, Policy: policy,
		Attempt: attempt, Err: err,
	}
}
