package asm

import (
	"strings"
	"testing"

	"levioso/internal/isa"
	"levioso/internal/ref"
)

func run(t *testing.T, src string) ref.Result {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := ref.Run(p, ref.Limits{MaxInsts: 1_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestMinimalProgram(t *testing.T) {
	res := run(t, `
main:
	li a0, 42
	halt a0
`)
	if res.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", res.ExitCode)
	}
	if res.Insts != 2 {
		t.Errorf("insts = %d, want 2", res.Insts)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	res := run(t, `
main:
	li t0, 10
	li t1, 0
loop:
	add t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	halt t1
`)
	if res.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", res.ExitCode)
	}
}

func TestDataSection(t *testing.T) {
	res := run(t, `
main:
	la t0, vals
	ld a0, 0(t0)
	ld a1, 8(t0)
	add a0, a0, a1
	lb a2, 0(t0)   # low byte of first quad
	add a0, a0, a2
	halt a0
	.data
vals:	.quad 100, 200
`)
	if res.ExitCode != 100+200+100 {
		t.Errorf("exit = %d, want 400", res.ExitCode)
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble("t.s", `
main:	halt zero
	.data
b:	.byte 1, 2, 0xff
h:	.half 0x1234
	.align 4
w:	.word -1
q:	.quad str
s:	.space 3
str:	.asciz "a\n\x41"
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	d := p.Data
	if d[0] != 1 || d[1] != 2 || d[2] != 0xff {
		t.Errorf(".byte wrong: % x", d[:3])
	}
	if d[3] != 0x34 || d[4] != 0x12 {
		t.Errorf(".half wrong: % x", d[3:5])
	}
	// .align 4 pads from offset 5 to 8.
	if p.Symbols["w"] != isa.DataBase+8 {
		t.Errorf("w at %#x, want %#x", p.Symbols["w"], isa.DataBase+8)
	}
	if d[8] != 0xff || d[11] != 0xff {
		t.Errorf(".word -1 wrong: % x", d[8:12])
	}
	strAddr := p.Symbols["str"]
	if strAddr != isa.DataBase+8+4+8+3 {
		t.Errorf("str at %#x", strAddr)
	}
	// .quad str holds str's absolute address.
	var got uint64
	for i := 0; i < 8; i++ {
		got |= uint64(d[12+i]) << (8 * i)
	}
	if got != strAddr {
		t.Errorf(".quad str = %#x, want %#x", got, strAddr)
	}
	off := int(strAddr - isa.DataBase)
	if string(d[off:off+3]) != "a\nA" || d[off+3] != 0 {
		t.Errorf("asciz wrong: % x", d[off:off+4])
	}
}

func TestPseudoInstructions(t *testing.T) {
	res := run(t, `
main:
	li t0, 7
	mv t1, t0        # 7
	neg t2, t0       # -7
	add t3, t1, t2   # 0
	seqz a0, t3      # 1
	snez a1, t0      # 1
	not a2, zero     # -1
	add a0, a0, a1   # 2
	sub a0, a0, a2   # 3
	halt a0
`)
	if res.ExitCode != 3 {
		t.Errorf("exit = %d, want 3", res.ExitCode)
	}
}

func TestCallRet(t *testing.T) {
	res := run(t, `
main:
	li a0, 5
	call double
	call double
	halt a0
double:
	add a0, a0, a0
	ret
`)
	if res.ExitCode != 20 {
		t.Errorf("exit = %d, want 20", res.ExitCode)
	}
}

func TestBranchPseudos(t *testing.T) {
	res := run(t, `
main:
	li a0, 0
	li t0, 5
	li t1, 3
	ble t1, t0, l1   # taken
	halt zero
l1:	bgt t0, t1, l2   # taken
	halt zero
l2:	bleu t0, t1, bad # not taken
	bgtu t1, t0, bad # not taken
	li t2, -1
	bltz t2, l3      # taken
	halt zero
l3:	bgez t0, l4      # taken
	halt zero
l4:	blez zero, l5    # taken
	halt zero
l5:	bgtz t0, l6      # taken
	halt zero
l6:	li a0, 1
	halt a0
bad:	halt zero
`)
	if res.ExitCode != 1 {
		t.Errorf("exit = %d, want 1", res.ExitCode)
	}
}

func TestConsoleOutput(t *testing.T) {
	res := run(t, `
main:
	li t0, 'H'
	putc t0
	li t0, 'i'
	putc t0
	li t0, '\n'
	putc t0
	li t1, -42
	puti t1
	halt zero
`)
	if res.Output != "Hi\n-42" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestLiWide(t *testing.T) {
	res := run(t, `
main:
	li a0, 0x123456789a   # needs lui+addi
	li a1, -0x123456789a
	add a0, a0, a1
	halt a0
`)
	if res.ExitCode != 0 {
		t.Errorf("exit = %d, want 0", res.ExitCode)
	}
}

func TestEquAndExpressions(t *testing.T) {
	res := run(t, `
	.equ N, 6
	.equ N2, N+4
main:
	li a0, N2-1      # 9
	li a1, 'A'+1     # 66
	sub a1, a1, a0   # 57
	add a0, a0, a1   # 66
	halt a0
`)
	if res.ExitCode != 66 {
		t.Errorf("exit = %d, want 66", res.ExitCode)
	}
}

func TestMemOperandForms(t *testing.T) {
	res := run(t, `
main:
	la t0, v
	ld a0, (t0)      # bare (reg)
	ld a1, v         # bare symbol
	ld a2, v+8       # symbol+offset
	add a0, a0, a1
	add a0, a0, a2
	halt a0
	.data
v:	.quad 3, 4
`)
	if res.ExitCode != 10 {
		t.Errorf("exit = %d, want 10", res.ExitCode)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	res := run(t, `
main:
	li t0, 0x1122334455667788
	la t1, buf
	sd t0, 0(t1)
	lw a0, 0(t1)     # 0x55667788 sign-extended (positive)
	lh a1, 0(t1)     # 0x7788
	lbu a2, 7(t1)    # 0x11
	halt a2
	.data
buf:	.space 8
`)
	if res.ExitCode != 0x11 {
		t.Errorf("exit = %#x, want 0x11", res.ExitCode)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown-inst", "main: frob a0\n\thalt zero", "unknown instruction"},
		{"unknown-directive", ".bogus 3", "unknown directive"},
		{"bad-reg", "main: add a0, a1, q9\n\thalt zero", "bad register"},
		{"undef-sym", "main: li a0, nosuch\n\thalt zero", "undefined symbol"},
		{"redefined", "x: halt zero\nx: halt zero", "redefined"},
		{"data-inst", ".data\n\tadd a0, a0, a0", "in .data"},
		{"bad-operand-count", "main: add a0, a1\n\thalt zero", "wants"},
		{"align-npo2", ".data\n.align 3", "power of two"},
		{"branch-out", "main: beq a0, a1, 0x999999\nhalt zero", "outside text"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t.s", c.src)
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Assemble("file.s", "\n\n\tfrob\n")
	if err == nil || !strings.HasPrefix(err.Error(), "file.s:3:") {
		t.Errorf("error = %v, want file.s:3: prefix", err)
	}
}

func TestEntryPointSelection(t *testing.T) {
	p := MustAssemble("t.s", "foo:\n\tnop\nmain:\n\thalt zero\n")
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry = %#x, want main %#x", p.Entry, p.Symbols["main"])
	}
	p = MustAssemble("t.s", "foo:\n\tnop\n_start:\n\thalt zero\nmain:\n\thalt zero\n")
	if p.Entry != p.Symbols["_start"] {
		t.Errorf("entry = %#x, want _start", p.Entry)
	}
	p = MustAssemble("t.s", "foo:\n\thalt zero\n")
	if p.Entry != isa.TextBase {
		t.Errorf("entry = %#x, want TextBase", p.Entry)
	}
}

func TestCommentsAndLabels(t *testing.T) {
	res := run(t, `
# full line comment
main: li a0, 1 # trailing
	; semicolon comment
a: b: halt a0   # two labels one line
`)
	if res.ExitCode != 1 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := MustAssemble("t.s", `
main:
	li a0, 7
	beq a0, zero, done
	addi a0, a0, 1
done:	halt a0
	.data
v:	.quad 9
`)
	p.Hints[p.Symbols["main"]+isa.InstBytes] = isa.BranchHint{
		ReconvPC: p.Symbols["done"],
		WriteSet: isa.RegMask(0).Set(isa.RegA0),
	}
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var q isa.Program
	if err := q.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if q.Entry != p.Entry || len(q.Text) != len(p.Text) || string(q.Data) != string(p.Data) {
		t.Errorf("round trip mismatch")
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Errorf("text[%d] = %v, want %v", i, q.Text[i], p.Text[i])
		}
	}
	for name, addr := range p.Symbols {
		if q.Symbols[name] != addr {
			t.Errorf("symbol %s = %#x, want %#x", name, q.Symbols[name], addr)
		}
	}
	for pc, h := range p.Hints {
		if q.Hints[pc] != h {
			t.Errorf("hint at %#x = %+v, want %+v", pc, q.Hints[pc], h)
		}
	}
	// Corrupt image must fail, not panic.
	if err := new(isa.Program).UnmarshalBinary(b[:10]); err == nil {
		t.Error("truncated unmarshal succeeded")
	}
	if err := new(isa.Program).UnmarshalBinary([]byte("XXXXXXXXXXXX")); err == nil {
		t.Error("bad magic unmarshal succeeded")
	}
}

func TestListing(t *testing.T) {
	p := MustAssemble("t.s", `
main:
	li a0, 1
	beq a0, zero, done
	addi a0, a0, 1
done:	halt a0
`)
	l := Listing(p)
	for _, want := range []string{"main:", "done:", "beq a0, zero,", "<done>"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestJalrIndirect(t *testing.T) {
	res := run(t, `
main:
	la t0, fn
	jalr ra, 0(t0)
	halt a0
fn:
	li a0, 77
	ret
`)
	if res.ExitCode != 77 {
		t.Errorf("exit = %d, want 77", res.ExitCode)
	}
}

func TestRdcycleMonotonic(t *testing.T) {
	res := run(t, `
main:
	rdcycle t0
	nop
	nop
	rdcycle t1
	sltu a0, t0, t1
	halt a0
`)
	if res.ExitCode != 1 {
		t.Errorf("rdcycle not monotonic")
	}
}

func TestValidateCatchesHintErrors(t *testing.T) {
	p := MustAssemble("t.s", "main:\n\tnop\n\thalt zero\n")
	p.Hints[p.Entry] = isa.BranchHint{} // nop is not a branch
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted hint on non-branch")
	}
}

func TestDottedLocalLabels(t *testing.T) {
	res := run(t, `
main:
	li a0, 0
.Lloop:
	addi a0, a0, 1
	li t0, 4
	blt a0, t0, .Lloop
	halt a0
`)
	if res.ExitCode != 4 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestLi64BitEdges(t *testing.T) {
	cases := []struct {
		lit  string
		want uint64
	}{
		{"0x7fffffffffffffff", 0x7fffffffffffffff},
		{"-0x8000000000000000", 0x8000000000000000},
		{"0x123456789abcdef0", 0x123456789abcdef0},
		{"-1", 0xffffffffffffffff},
		{"2147483647", 0x7fffffff},
		{"-2147483648", 0xffffffff80000000},
		{"4294967296", 1 << 32},
	}
	for _, c := range cases {
		res := run(t, "main:\n\tli a0, "+c.lit+"\n\thalt a0\n")
		if res.ExitCode != c.want {
			t.Errorf("li %s = %#x, want %#x", c.lit, res.ExitCode, c.want)
		}
	}
}

func TestNegativeDataValues(t *testing.T) {
	res := run(t, `
main:
	ld a0, v
	halt a0
	.data
v:	.quad -5
`)
	if int64(res.ExitCode) != -5 {
		t.Errorf("got %d", int64(res.ExitCode))
	}
}

func TestListingShowsHints(t *testing.T) {
	p := MustAssemble("t.s", `
main:
	beq a0, zero, done
	addi t0, t0, 1
done:	halt zero
`)
	p.Hints[p.Symbols["main"]] = isa.BranchHint{
		ReconvPC: p.Symbols["done"],
		WriteSet: isa.RegMask(0).Set(isa.RegT0),
	}
	l := Listing(p)
	if !strings.Contains(l, "reconv=") || !strings.Contains(l, "{t0}") {
		t.Errorf("listing missing hint annotations:\n%s", l)
	}
}

func TestCharLiteralOperands(t *testing.T) {
	res := run(t, `
main:
	li a0, 'A'
	li a1, '\n'
	li a2, '\''
	add a0, a0, a1
	add a0, a0, a2
	halt a0
`)
	if res.ExitCode != 'A'+'\n'+'\'' {
		t.Errorf("exit = %d", res.ExitCode)
	}
}
