package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// expr is an unresolved immediate expression: a sum of terms, each a literal,
// a character constant or a symbol reference, with an optional sign.
type expr interface {
	eval(a *assembler) (int64, error)
}

type litExpr int64

func (e litExpr) eval(*assembler) (int64, error) { return int64(e), nil }

type symExpr struct {
	name string
}

func (e symExpr) eval(a *assembler) (int64, error) {
	sv, ok := a.symbols[e.name]
	if !ok {
		return 0, a.errf("undefined symbol %q", e.name)
	}
	return sv.val, nil
}

type sumExpr struct {
	terms []expr
	signs []int // +1 or -1, parallel to terms
}

func (e sumExpr) eval(a *assembler) (int64, error) {
	var total int64
	for i, t := range e.terms {
		v, err := t.eval(a)
		if err != nil {
			return 0, err
		}
		total += int64(e.signs[i]) * v
	}
	return total, nil
}

// parseExpr parses "term ((+|-) term)*" where term is an integer literal
// (decimal, 0x hex, 0b binary, 0o octal), a character literal, or a symbol.
func (a *assembler) parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, a.errf("empty expression")
	}
	var sum sumExpr
	sign := +1
	i := 0
	expectTerm := true
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case expectTerm && (c == '+' || c == '-'):
			if c == '-' {
				sign = -sign
			}
			i++
		case !expectTerm && (c == '+' || c == '-'):
			sign = +1
			if c == '-' {
				sign = -1
			}
			expectTerm = true
			i++
		case !expectTerm:
			return nil, a.errf("unexpected %q in expression %q", string(c), s)
		case c == '\'':
			end := i + 1
			var val int64
			if end < len(s) && s[end] == '\\' {
				if end+1 >= len(s) {
					return nil, a.errf("unterminated character literal in %q", s)
				}
				r, err := unescapeChar(s[end+1])
				if err != nil {
					return nil, a.errf("%v in %q", err, s)
				}
				val = int64(r)
				end += 2
			} else if end < len(s) {
				val = int64(s[end])
				end++
			}
			if end >= len(s) || s[end] != '\'' {
				return nil, a.errf("unterminated character literal in %q", s)
			}
			sum.terms = append(sum.terms, litExpr(val))
			sum.signs = append(sum.signs, sign)
			sign = +1
			expectTerm = false
			i = end + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && isNumChar(s[j]) {
				j++
			}
			v, err := strconv.ParseInt(s[i:j], 0, 64)
			if err != nil {
				// Retry as unsigned for values like 0xffffffffffffffff.
				u, uerr := strconv.ParseUint(s[i:j], 0, 64)
				if uerr != nil {
					return nil, a.errf("bad integer literal %q", s[i:j])
				}
				v = int64(u)
			}
			sum.terms = append(sum.terms, litExpr(v))
			sum.signs = append(sum.signs, sign)
			sign = +1
			expectTerm = false
			i = j
		default:
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			if j == i {
				return nil, a.errf("unexpected %q in expression %q", string(c), s)
			}
			sum.terms = append(sum.terms, symExpr{name: s[i:j]})
			sum.signs = append(sum.signs, sign)
			sign = +1
			expectTerm = false
			i = j
		}
	}
	if expectTerm {
		return nil, a.errf("expression %q ends with operator", s)
	}
	if len(sum.terms) == 1 && sum.signs[0] == 1 {
		return sum.terms[0], nil
	}
	return sum, nil
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' ||
		c == 'x' || c == 'X' || c == 'o' || c == 'O' || c == 'b' || c == 'B'
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// constExpr evaluates e immediately if it contains no symbols.
// ok is false if symbols are present.
func constValue(e expr) (int64, bool) {
	switch t := e.(type) {
	case litExpr:
		return int64(t), true
	case sumExpr:
		var total int64
		for i, term := range t.terms {
			v, ok := constValue(term)
			if !ok {
				return 0, false
			}
			total += int64(t.signs[i]) * v
		}
		return total, true
	default:
		return 0, false
	}
}

func unescapeChar(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, fmt.Errorf("unknown escape \\%c", c)
	}
}

// parseString parses a double-quoted string literal with escapes.
func (a *assembler) parseString(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, a.errf("expected string literal, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, a.errf("trailing backslash in string")
		}
		if body[i] == 'x' {
			if i+2 >= len(body) {
				return nil, a.errf("truncated \\x escape")
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return nil, a.errf("bad \\x escape: %v", err)
			}
			out = append(out, byte(v))
			i += 2
			continue
		}
		b, err := unescapeChar(body[i])
		if err != nil {
			return nil, a.errf("%v", err)
		}
		out = append(out, b)
	}
	return out, nil
}
