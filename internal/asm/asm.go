// Package asm implements a two-pass assembler for LEV64 assembly, producing
// loadable isa.Program images.
//
// Syntax summary (RISC-V flavoured):
//
//	        .text
//	main:   li   t0, 100          # pseudo-instructions expand automatically
//	loop:   addi t0, t0, -1
//	        bnez t0, loop
//	        ld   a0, 8(gp)
//	        halt
//	        .data
//	val:    .quad 1, 2, 3
//	msg:    .asciz "hi\n"
//	buf:    .space 64
//
// Labels may appear in .text and .data. Immediate operands are expressions
// over integer literals, character literals, label addresses and constants
// defined with .equ, combined with + and -. Branch and jal targets are labels
// (or absolute addresses), converted to PC-relative offsets by the assembler.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"levioso/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Assemble translates LEV64 assembly source into a program image.
// name is used in error messages only.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		file:    name,
		symbols: make(map[string]symval),
		prog:    isa.NewProgram(),
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

// MustAssemble is Assemble for known-good embedded sources (workloads,
// tests); it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type symval struct {
	val  int64
	line int
}

// pending is an instruction whose immediate may reference symbols; it is
// finalized in pass 2 once every label has an address.
type pending struct {
	in     isa.Inst
	imm    expr // nil if in.Imm is already final
	pcrel  bool // immediate is a branch/jal target: encode target - pc
	hiPart bool // immediate is the lui half of a two-instruction li
	line   int
	src    string
}

// dataPatch is a .byte/.half/.word/.quad cell whose expression may reference
// symbols.
type dataPatch struct {
	off  int
	size int
	e    expr
	line int
}

// secretPatch is a .secret directive whose addr/len expressions may reference
// labels; it resolves to an isa.SecretRange in pass 2.
type secretPatch struct {
	addr expr
	len  expr
	line int
}

type assembler struct {
	file    string
	line    int
	symbols map[string]symval
	prog    *isa.Program
	insts   []pending
	data    []byte
	patches []dataPatch
	secrets []secretPatch
	inData  bool
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{File: a.file, Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) define(name string, val int64) error {
	if old, ok := a.symbols[name]; ok {
		return a.errf("symbol %q redefined (first defined on line %d)", name, old.line)
	}
	a.symbols[name] = symval{val: val, line: a.line}
	return nil
}

func (a *assembler) pc() uint64 {
	return isa.TextBase + uint64(len(a.insts))*isa.InstBytes
}

// pass1 parses every line, expands pseudo-instructions, lays out data and
// assigns every label an address.
func (a *assembler) pass1(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := stripComment(raw)
		// Peel off leading labels.
		for {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" {
				line = ""
				break
			}
			colon := strings.Index(trimmed, ":")
			if colon < 0 || !isIdent(trimmed[:colon]) {
				line = trimmed
				break
			}
			name := trimmed[:colon]
			var addr int64
			if a.inData {
				addr = int64(isa.DataBase) + int64(len(a.data))
			} else {
				addr = int64(a.pc())
			}
			if err := a.define(name, addr); err != nil {
				return err
			}
			line = trimmed[colon+1:]
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if a.inData {
			return a.errf("instruction %q in .data section", line)
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

// pass2 resolves all symbol references and builds the final program.
func (a *assembler) pass2() error {
	p := a.prog
	for idx := range a.insts {
		pi := &a.insts[idx]
		a.line = pi.line
		in := pi.in
		if pi.imm != nil {
			v, err := pi.imm.eval(a)
			if err != nil {
				return err
			}
			switch {
			case pi.pcrel:
				pc := isa.TextBase + uint64(idx)*isa.InstBytes
				in.Imm = v - int64(pc)
			case pi.hiPart:
				in.Imm = v >> 12
			default:
				in.Imm = v
			}
		}
		var buf [isa.InstBytes]byte
		if err := in.Encode(buf[:]); err != nil {
			return a.errf("%v", err)
		}
		p.Text = append(p.Text, in)
		p.SrcLines[idx] = pi.src
	}
	for _, dp := range a.patches {
		a.line = dp.line
		v, err := dp.e.eval(a)
		if err != nil {
			return err
		}
		for i := 0; i < dp.size; i++ {
			a.data[dp.off+i] = byte(v >> (8 * i))
		}
	}
	p.Data = a.data
	for _, sp := range a.secrets {
		a.line = sp.line
		addr, err := sp.addr.eval(a)
		if err != nil {
			return err
		}
		n, err := sp.len.eval(a)
		if err != nil {
			return err
		}
		if n <= 0 {
			return a.errf(".secret wants a positive length, got %d", n)
		}
		p.Secrets = append(p.Secrets, isa.SecretRange{Base: uint64(addr), Len: uint64(n)})
	}
	sort.Slice(p.Secrets, func(i, j int) bool { return p.Secrets[i].Base < p.Secrets[j].Base })
	for name, sv := range a.symbols {
		p.Symbols[name] = uint64(sv.val)
	}
	switch {
	case a.hasSym("_start"):
		p.Entry = uint64(a.symbols["_start"].val)
	case a.hasSym("main"):
		p.Entry = uint64(a.symbols["main"].val)
	default:
		p.Entry = isa.TextBase
	}
	return p.Validate()
}

func (a *assembler) hasSym(name string) bool {
	_, ok := a.symbols[name]
	return ok
}

// emit queues one concrete instruction.
func (a *assembler) emit(in isa.Inst, imm expr, pcrel, hiPart bool, src string) {
	a.insts = append(a.insts, pending{in: in, imm: imm, pcrel: pcrel, hiPart: hiPart, line: a.line, src: src})
}

func stripComment(s string) string {
	// Comments start with '#' or ';' outside string literals.
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '#' || s[i] == ';':
			return s[:i]
		}
	}
	return s
}

// isIdent accepts assembler symbol names, including compiler-local labels
// like ".Lmain_3" (leading dot allowed, but a bare "." is not a name).
func isIdent(s string) bool {
	if s == "" || s == "." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' ||
			'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			'0' <= c && c <= '9' && i > 0
		if !ok {
			return false
		}
	}
	return true
}

// Listing renders a disassembly listing of p with symbolic labels, one
// instruction per line, for debugging and golden tests.
func Listing(p *isa.Program) string {
	// Build reverse symbol map for text addresses.
	labels := make(map[uint64][]string)
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, ns := range labels {
		sort.Strings(ns)
	}
	var b strings.Builder
	for i, in := range p.Text {
		pc := p.PCOf(i)
		for _, l := range labels[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %06x  %s", pc, in)
		if in.Op.IsBranch() || in.Op == isa.JAL {
			tgt := in.BranchTarget(pc)
			if ls := labels[tgt]; len(ls) > 0 {
				fmt.Fprintf(&b, "  <%s>", ls[0])
			}
		}
		if h, ok := p.Hints[pc]; ok {
			fmt.Fprintf(&b, "  ; reconv=%#x writes=%s", h.ReconvPC, h.WriteSet)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
